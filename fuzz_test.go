package wmstream

import (
	"bytes"
	"reflect"
	"testing"

	"wmstream/internal/bench"
	"wmstream/internal/sim"
)

// FuzzCompile feeds arbitrary text through the whole compiler at every
// optimization level.  Invalid programs must be rejected with an error;
// nothing the frontend accepts may panic any later stage (the pass
// sandbox converts optimizer faults into degradations, so a crash here
// means a frontend, expander, or required-pass bug).
func FuzzCompile(f *testing.F) {
	for _, p := range append(bench.Programs(), bench.Livermore5(32)) {
		f.Add(p.Source)
	}
	f.Add("int main(void) { return 0; }")
	f.Add("double x[8];\nint main(void) { int i; for (i = 0; i < 8; i++) x[i] = i * 0.5; putd(x[7]); return 0; }")
	f.Add("int main(void) { puti(1 +); }") // syntactically broken seed
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		for lvl := O0; lvl <= O3; lvl++ {
			p, err := Compile(src, lvl)
			if err == nil && p == nil {
				t.Fatalf("O%d: nil program without error", lvl)
			}
		}
	})
}

// FuzzFastEngine compiles arbitrary Mini-C at every optimization level
// and runs whatever compiles through both simulation engines with a
// tight cycle budget, cross-checking every observable: statistics
// (including per-unit telemetry), program output, and error text.  Any
// divergence is a fast-engine soundness bug — the event-stepped skips
// must be invisible.
func FuzzFastEngine(f *testing.F) {
	for _, p := range append(bench.Programs(), bench.Livermore5(32)) {
		f.Add(p.Source)
	}
	f.Add("int main(void) { int i; for (i = 0; i < 100; i++) ; return 0; }")
	f.Add("double a[64];\nint main(void) { int i; double s; for (i = 0; i < 64; i++) a[i] = i * 0.5; s = 0.0; for (i = 0; i < 64; i++) s = s + a[i]; putd(s); return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		for lvl := O0; lvl <= O3; lvl++ {
			p, err := Compile(src, lvl)
			if err != nil {
				continue
			}
			img, err := sim.Link(p.rtl)
			if err != nil {
				continue
			}
			exec := func(eng sim.Engine) (sim.Stats, string, string) {
				cfg := sim.DefaultConfig()
				cfg.MaxCycles = 50_000
				cfg.WatchdogSlack = 200
				cfg.Engine = eng
				var out bytes.Buffer
				cfg.Output = &out
				stats, rerr := sim.New(img, cfg).Run()
				es := ""
				if rerr != nil {
					es = rerr.Error()
				}
				return stats, out.String(), es
			}
			refStats, refOut, refErr := exec(sim.EngineReference)
			fastStats, fastOut, fastErr := exec(sim.EngineFast)
			if refErr != fastErr {
				t.Fatalf("O%d: engines disagree on error:\nreference: %s\nfast:      %s",
					lvl, refErr, fastErr)
			}
			if !reflect.DeepEqual(refStats, fastStats) {
				t.Fatalf("O%d: engines disagree on stats:\nreference: %+v\nfast:      %+v",
					lvl, refStats, fastStats)
			}
			if refOut != fastOut {
				t.Fatalf("O%d: engines disagree on output: %q vs %q", lvl, refOut, fastOut)
			}
		}
	})
}

// FuzzAssemble feeds arbitrary bytes to the assembler: it must either
// parse and validate or return an error — never panic, and never hand
// back a program with dangling branches.
func FuzzAssemble(f *testing.F) {
	if p, err := Compile("int main(void) { puti(6 * 7); return 0; }", O3); err == nil {
		f.Add(p.Listing())
	}
	f.Add(".entry main\n.func main\nr2 := 1\nhalt\n.end\n")
	f.Add(".entry main\n.func main\njump L_missing\n.end\n")
	f.Add("bogus !!")
	f.Fuzz(func(t *testing.T, asm string) {
		if len(asm) > 1<<16 {
			t.Skip("oversized input")
		}
		p, err := Assemble(asm)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
	})
}
