// Public-API fuzzers.  The fast-vs-reference engine differential
// fuzzer lives with the rest of the differential harness in
// internal/bench (FuzzFastEngine); this file fuzzes only the exported
// surface: Compile and Assemble.
package wmstream

import (
	"testing"

	"wmstream/internal/bench"
)

// FuzzCompile feeds arbitrary text through the whole compiler at every
// optimization level.  Invalid programs must be rejected with an error;
// nothing the frontend accepts may panic any later stage (the pass
// sandbox converts optimizer faults into degradations, so a crash here
// means a frontend, expander, or required-pass bug).
func FuzzCompile(f *testing.F) {
	for _, p := range append(bench.Programs(), bench.Livermore5(32)) {
		f.Add(p.Source)
	}
	f.Add("int main(void) { return 0; }")
	f.Add("double x[8];\nint main(void) { int i; for (i = 0; i < 8; i++) x[i] = i * 0.5; putd(x[7]); return 0; }")
	f.Add("int main(void) { puti(1 +); }") // syntactically broken seed
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		for lvl := O0; lvl <= O3; lvl++ {
			p, err := Compile(src, lvl)
			if err == nil && p == nil {
				t.Fatalf("O%d: nil program without error", lvl)
			}
		}
	})
}

// FuzzAssemble feeds arbitrary bytes to the assembler: it must either
// parse and validate or return an error — never panic, and never hand
// back a program with dangling branches.
func FuzzAssemble(f *testing.F) {
	if p, err := Compile("int main(void) { puti(6 * 7); return 0; }", O3); err == nil {
		f.Add(p.Listing())
	}
	f.Add(".entry main\n.func main\nr2 := 1\nhalt\n.end\n")
	f.Add(".entry main\n.func main\njump L_missing\n.end\n")
	f.Add("bogus !!")
	f.Fuzz(func(t *testing.T, asm string) {
		if len(asm) > 1<<16 {
			t.Skip("oversized input")
		}
		p, err := Assemble(asm)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
	})
}
