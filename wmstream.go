// Package wmstream reproduces the compiler and architecture described
// in Benitez & Davidson, "Code Generation for Streaming: an
// Access/Execute Mechanism" (ASPLOS 1991): an optimizing Mini-C
// compiler whose recurrence-detection and streaming algorithms target
// the WM decoupled access/execute architecture, plus a cycle-level WM
// simulator and the scalar machine models used by the paper's Table I.
//
// The high-level flow:
//
//	prog, _ := wmstream.Compile(src, wmstream.O3)   // Mini-C -> optimized WM RTL
//	res, _  := wmstream.Run(prog, wmstream.DefaultMachine())
//	fmt.Println(res.Cycles, res.Output)
//
// Optimization levels: O0 naive code (register assignment only), O1
// classic scalar optimizations, O2 adds the paper's recurrence
// optimization, O3 adds streaming (the full pipeline).
package wmstream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"wmstream/internal/acode"
	"wmstream/internal/diag"
	"wmstream/internal/exec"
	"wmstream/internal/minic"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// Optimization levels.
const (
	O0 = 0 // naive code
	O1 = 1 // standard scalar optimizations
	O2 = 2 // + recurrence detection and optimization
	O3 = 3 // + streaming
)

// Program is a compiled WM program.
type Program struct {
	rtl *rtl.Program
}

// Options gives fine-grained control over the optimizer for ablation
// studies; most callers use Compile with a level instead.
type Options struct {
	Standard       bool  // classic scalar optimizations
	Recurrence     bool  // the paper's recurrence algorithm
	Stream         bool  // the paper's streaming algorithm
	StrengthReduce bool  // induction-variable strength reduction
	Combine        bool  // dual-operation instruction combining
	MinTrip        int64 // smallest trip count worth streaming (default 4)
	// MaxRecurrenceDegree bounds how many registers a recurrence may
	// consume — the paper: a recurrence of degree d needs d+1 registers
	// (default 4).
	MaxRecurrenceDegree int64
}

// LevelOptions returns the Options corresponding to an optimization
// level.
func LevelOptions(level int) Options {
	o := opt.Level(level)
	return Options{
		Standard:            o.Standard,
		Recurrence:          o.Recurrence,
		Stream:              o.Stream,
		StrengthReduce:      o.StrengthReduce,
		Combine:             o.Combine,
		MinTrip:             o.MinTrip,
		MaxRecurrenceDegree: o.MaxRecurrenceDegree,
	}
}

func (o Options) optOptions() opt.Options {
	return opt.Options{
		Standard:            o.Standard,
		Recurrence:          o.Recurrence,
		Stream:              o.Stream,
		StrengthReduce:      o.StrengthReduce,
		Combine:             o.Combine,
		MinTrip:             o.MinTrip,
		MaxRecurrenceDegree: o.MaxRecurrenceDegree,
	}
}

// PassStat is one pass's aggregate over a compilation: how often it
// ran, how often it changed the code, its wall time, the cumulative
// instruction-count delta it caused, and (for fixpoint groups, whose
// names are bracketed) the rounds needed to converge.
type PassStat struct {
	Name       string
	Calls      int
	Fires      int
	Time       time.Duration
	InstrDelta int
	Rounds     int
}

// CompileStats reports per-pass instrumentation for one compilation.
type CompileStats struct {
	Passes []PassStat    // in first-invocation order
	Funcs  int           // functions optimized
	Total  time.Duration // summed pass time (over all workers)

	table string // pre-rendered per-pass table
}

// Table renders the statistics as an aligned per-pass table (the
// output of wmcc -stats), slowest pass first.
func (s *CompileStats) Table() string { return s.table }

// Severity orders diagnostics from informational to fatal.  The values
// mirror the internal diagnostics layer (package internal/diag).
type Severity int

const (
	// SeverityNote is informational.
	SeverityNote Severity = Severity(diag.Note)
	// SeverityWarning flags something suspicious that does not affect
	// the compiled code.
	SeverityWarning Severity = Severity(diag.Warning)
	// SeverityDegraded means the compiler contained a faulty
	// optimization pass — the function was rolled back to its last
	// good state, so the output is correct but less optimized.  Strict
	// compilation promotes Degraded to an error.
	SeverityDegraded Severity = Severity(diag.Degraded)
	// SeverityError means compilation failed.
	SeverityError Severity = Severity(diag.Error)
)

func (s Severity) String() string { return diag.Severity(s).String() }

// Diagnostic is one structured compilation event.  Zero-valued fields
// are unknown: a frontend error has Line/Col but no Pass; an optimizer
// degradation has Pass and Func but no source position.
type Diagnostic struct {
	Severity  Severity
	Stage     string // "frontend", "expand", "opt"
	Line, Col int    // 1-based source position (0 when not tied to source)
	Pass      string // optimizer pass or fixpoint group
	Func      string // function provenance
	Msg       string
}

// String renders the diagnostic in a compact single-line form, e.g.
// "degraded: opt: main: pass Combine panicked: index out of range".
func (d Diagnostic) String() string {
	return diag.Diagnostic{
		Sev:   diag.Severity(d.Severity),
		Stage: d.Stage,
		Pos:   minic.Pos{Line: d.Line, Col: d.Col},
		Pass:  d.Pass,
		Func:  d.Func,
		Msg:   d.Msg,
	}.String()
}

// CompileConfig bundles everything CompileWithConfig needs beyond the
// source text.
type CompileConfig struct {
	// Options selects the optimizations (see LevelOptions).
	Options Options
	// Strict promotes Degraded diagnostics — optimization passes the
	// fault-containment layer rolled back — to compilation errors.
	Strict bool
	// Debug, when non-nil, receives vpo-style RTL dumps and enables the
	// per-pass invariant checker (as CompileWithStats).
	Debug io.Writer
	// PassBudget overrides the sandbox's per-pass wall-clock budget
	// (zero uses the default).
	PassBudget time.Duration
}

// CompileResult is the full outcome of a compilation: the program (nil
// when compilation failed), per-pass statistics, and every structured
// diagnostic the pipeline emitted.  Degraded diagnostics mean some
// optimization was rolled back — the program is correct, just less
// optimized than requested.
type CompileResult struct {
	Program     *Program
	Stats       *CompileStats
	Diagnostics []Diagnostic
}

// Compile translates Mini-C source to an optimized WM program.
func Compile(src string, level int) (*Program, error) {
	return CompileOptions(src, LevelOptions(level))
}

// CompileOptions is Compile with explicit optimizer options.
func CompileOptions(src string, o Options) (*Program, error) {
	res, err := CompileWithConfig(src, CompileConfig{Options: o})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// CompileWithStats is CompileOptions with per-pass instrumentation.
// When debug is non-nil it receives vpo-style RTL dumps (each
// function's listing before optimization and after every pass that
// changed it) and the RTL invariant checker runs after every pass.
func CompileWithStats(src string, o Options, debug io.Writer) (*Program, *CompileStats, error) {
	res, err := CompileWithConfig(src, CompileConfig{Options: o, Debug: debug})
	if err != nil {
		return nil, nil, err
	}
	return res.Program, res.Stats, nil
}

// CompileWithConfig compiles with full control and reporting: the
// result carries the structured diagnostics of every stage, and under
// Strict a contained-but-degraded optimization fails the compilation
// instead of being reported and tolerated.
func CompileWithConfig(src string, cfg CompileConfig) (*CompileResult, error) {
	return CompileContext(context.Background(), src, cfg)
}

// CompileContext is CompileWithConfig with cooperative cancellation:
// the optimizer checks ctx between passes (and between fixpoint
// rounds), so a canceled or expired context aborts the compilation
// promptly with ctx's error.  This is the entry point the serving
// layer uses to enforce per-request deadlines.
func CompileContext(ctx context.Context, src string, cfg CompileConfig) (*CompileResult, error) {
	res := &CompileResult{}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	ast, err := minic.Compile(src)
	if err != nil {
		d := Diagnostic{Severity: SeverityError, Stage: "frontend", Msg: err.Error()}
		var me *minic.Error
		if errors.As(err, &me) {
			d.Line, d.Col, d.Msg = me.Pos.Line, me.Pos.Col, me.Msg
		}
		res.Diagnostics = append(res.Diagnostics, d)
		return res, fmt.Errorf("frontend: %w", err)
	}
	p, err := acode.Gen(ast)
	if err != nil {
		res.Diagnostics = append(res.Diagnostics,
			Diagnostic{Severity: SeverityError, Stage: "expand", Msg: err.Error()})
		return res, fmt.Errorf("expand: %w", err)
	}
	octx := opt.NewContext(cfg.Options.optOptions())
	octx.Debug = cfg.Debug
	octx.Verify = cfg.Debug != nil
	octx.PassBudget = cfg.PassBudget
	octx.Ctx = ctx
	if err := opt.WMPipeline(octx.Opts).Run(p, octx); err != nil {
		res.Diagnostics = append(res.Diagnostics,
			Diagnostic{Severity: SeverityError, Stage: "opt", Msg: err.Error()})
		return res, err
	}
	for _, d := range octx.Diags() {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			Severity: Severity(d.Sev),
			Stage:    d.Stage,
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Pass:     d.Pass,
			Func:     d.Func,
			Msg:      d.Msg,
		})
	}
	st := octx.Stats()
	res.Stats = &CompileStats{Funcs: st.Funcs, Total: st.Total, table: st.Table()}
	for _, ps := range st.Passes() {
		res.Stats.Passes = append(res.Stats.Passes, PassStat{
			Name:       ps.Name,
			Calls:      ps.Calls,
			Fires:      ps.Fires,
			Time:       ps.Time,
			InstrDelta: ps.InstrDelta,
			Rounds:     ps.Rounds,
		})
	}
	res.Program = &Program{rtl: p}
	if cfg.Strict {
		for _, d := range res.Diagnostics {
			if d.Severity >= SeverityDegraded {
				return res, fmt.Errorf("strict: %s", d)
			}
		}
	}
	return res, nil
}

// Assemble parses a program in WM assembler syntax (the format Listing
// emits), for running hand-written code on the simulator.  The parsed
// program is validated against the RTL structural invariants, so a
// branch to a label the program never defines is reported here rather
// than surfacing as a simulator fault.
func Assemble(asm string) (*Program, error) {
	p, err := rtl.Parse(asm)
	if err != nil {
		return nil, err
	}
	if err := rtl.CheckProgram(p, true); err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	return &Program{rtl: p}, nil
}

// Listing renders the program as annotated assembly in the style of
// the paper's figures.
func (p *Program) Listing() string { return p.rtl.String() }

// ListingDebug is Listing with "@line" debug annotations (the output
// of wmcc -g); Assemble reads them back, so the source-level profiler
// works across an assembly round trip.
func (p *Program) ListingDebug() string { return p.rtl.StringDebug() }

// FuncListing renders one function, or "" if absent.
func (p *Program) FuncListing(name string) string {
	f := p.rtl.Func(name)
	if f == nil {
		return ""
	}
	return f.Listing()
}

// Machine configures the simulated WM implementation.
type Machine struct {
	MemLatency    int   // cycles from memory request to data arrival
	MemPorts      int   // memory requests accepted per cycle
	FIFODepth     int   // entries per data FIFO
	QueueDepth    int   // entries per unit instruction queue
	NumSCU        int   // stream control units
	WatchdogSlack int   // no-progress cycles beyond MemLatency before a deadlock is declared
	MaxCycles     int64 // simulated-cycle bound before a runaway run traps (0 = default)
	// Engine selects the simulation loop: "" or "auto" picks the
	// translated engine whenever tracing permits, "translated" requests
	// it explicitly, "fast" the event-stepped interpreter, "reference"
	// the plain cycle-by-cycle interpreter.  All engines produce
	// identical results; the knob exists so cross-engine identity
	// (including checkpoint/resume across engines) can be asserted
	// from the outside, and so benchmarks can pin a loop.
	Engine string
}

// DefaultMachine returns the configuration used by the reproduction
// experiments.
func DefaultMachine() Machine {
	c := sim.DefaultConfig()
	return Machine{
		MemLatency:    c.MemLatency,
		MemPorts:      c.MemPorts,
		FIFODepth:     c.FIFODepth,
		QueueDepth:    c.QueueDepth,
		NumSCU:        c.NumSCU,
		WatchdogSlack: c.WatchdogSlack,
		MaxCycles:     c.MaxCycles,
	}
}

// Typed simulator failures, re-exported from the simulator so callers
// can dissect a failed Run with errors.As:
//
//	var dl *wmstream.DeadlockError
//	if errors.As(err, &dl) { fmt.Println(dl.Snapshot) }
//
// A DeadlockError means the machine made no forward progress for
// WatchdogSlack cycles beyond the memory latency; its Snapshot names
// the blocked unit, the FIFO it is waiting on, and the instruction at
// each queue head.  A TrapError is a machine fault (memory access out
// of range, bad return address, cycle-bound exhaustion).
type (
	DeadlockError = sim.DeadlockError
	TrapError     = sim.TrapError
	Snapshot      = sim.Snapshot
)

// WallBudgetError reports a run stopped by SimOptions.MaxWall before
// the program finished; the partial statistics collected so far are
// still returned alongside it.
type WallBudgetError = exec.WallBudgetError

// RunProgress is a point-in-time snapshot of a running simulation,
// delivered through SimOptions.Progress.
type RunProgress = exec.Progress

// TransCacheStats reports the process-wide translated-engine cache:
// how many compiled translations are resident, the LRU capacity, and
// cumulative hit/miss/eviction counts since process start.
type TransCacheStats = sim.TransCacheStats

// TranslationCacheStats snapshots the translation cache counters, for
// exporters and debug pages.
func TranslationCacheStats() TransCacheStats { return sim.TranslationCacheStats() }

// ResolveEngine names the engine a Machine.Engine value actually runs:
// "" and "auto" resolve to "translated"; other values name themselves.
func ResolveEngine(engine string) string {
	switch engine {
	case "", "auto":
		return "translated"
	default:
		return engine
	}
}

// Result reports a simulation run.
type Result struct {
	Cycles       int64
	Instructions int64
	MemReads     int64
	MemWrites    int64
	StreamElems  int64
	Output       string
}

// simConfig maps the public Machine knobs onto a simulator Config.
func simConfig(m Machine) sim.Config {
	cfg := sim.DefaultConfig()
	if m.MemLatency > 0 {
		cfg.MemLatency = m.MemLatency
	}
	if m.MemPorts > 0 {
		cfg.MemPorts = m.MemPorts
	}
	if m.FIFODepth > 0 {
		cfg.FIFODepth = m.FIFODepth
	}
	if m.QueueDepth > 0 {
		cfg.QueueDepth = m.QueueDepth
	}
	if m.NumSCU > 0 {
		cfg.NumSCU = m.NumSCU
	}
	if m.WatchdogSlack > 0 {
		cfg.WatchdogSlack = m.WatchdogSlack
	}
	if m.MaxCycles > 0 {
		cfg.MaxCycles = m.MaxCycles
	}
	switch m.Engine {
	case "fast":
		cfg.Engine = sim.EngineFast
	case "reference":
		cfg.Engine = sim.EngineReference
	case "translated":
		cfg.Engine = sim.EngineTranslated
	default:
		cfg.Engine = sim.EngineAuto
	}
	return cfg
}

// Run executes the program to completion on the simulated WM machine.
func Run(p *Program, m Machine) (Result, error) {
	return RunContext(context.Background(), p, m)
}

// RunContext is Run with cooperative cancellation: the simulator polls
// ctx every few thousand simulated cycles, so a canceled or expired
// context aborts even a runaway simulation promptly with ctx's error
// (which errors.Is-matches context.Canceled / context.DeadlineExceeded
// rather than the simulator's own DeadlockError/TrapError).
func RunContext(ctx context.Context, p *Program, m Machine) (Result, error) {
	img, err := sim.Link(p.rtl)
	if err != nil {
		return Result{}, err
	}
	cfg := simConfig(m)
	cfg.Ctx = ctx
	var out bytes.Buffer
	cfg.Output = &out
	// Machines come from the recycling pool: a serving process running
	// the same image repeatedly reuses memory and telemetry arrays
	// instead of reallocating them per request.
	machine := sim.Acquire(img, cfg)
	defer sim.Release(machine)
	stats, err := exec.Run(ctx, machine, exec.Options{})
	if err != nil {
		return Result{Output: out.String()}, err
	}
	return Result{
		Cycles:       stats.Cycles,
		Instructions: stats.Instructions,
		MemReads:     stats.MemReads,
		MemWrites:    stats.MemWrites,
		StreamElems:  stats.StreamElems,
		Output:       out.String(),
	}, nil
}
