// Package wmstream reproduces the compiler and architecture described
// in Benitez & Davidson, "Code Generation for Streaming: an
// Access/Execute Mechanism" (ASPLOS 1991): an optimizing Mini-C
// compiler whose recurrence-detection and streaming algorithms target
// the WM decoupled access/execute architecture, plus a cycle-level WM
// simulator and the scalar machine models used by the paper's Table I.
//
// The high-level flow:
//
//	prog, _ := wmstream.Compile(src, wmstream.O3)   // Mini-C -> optimized WM RTL
//	res, _  := wmstream.Run(prog, wmstream.DefaultMachine())
//	fmt.Println(res.Cycles, res.Output)
//
// Optimization levels: O0 naive code (register assignment only), O1
// classic scalar optimizations, O2 adds the paper's recurrence
// optimization, O3 adds streaming (the full pipeline).
package wmstream

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"wmstream/internal/acode"
	"wmstream/internal/minic"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// Optimization levels.
const (
	O0 = 0 // naive code
	O1 = 1 // standard scalar optimizations
	O2 = 2 // + recurrence detection and optimization
	O3 = 3 // + streaming
)

// Program is a compiled WM program.
type Program struct {
	rtl *rtl.Program
}

// Options gives fine-grained control over the optimizer for ablation
// studies; most callers use Compile with a level instead.
type Options struct {
	Standard       bool  // classic scalar optimizations
	Recurrence     bool  // the paper's recurrence algorithm
	Stream         bool  // the paper's streaming algorithm
	StrengthReduce bool  // induction-variable strength reduction
	Combine        bool  // dual-operation instruction combining
	MinTrip        int64 // smallest trip count worth streaming (default 4)
	// MaxRecurrenceDegree bounds how many registers a recurrence may
	// consume — the paper: a recurrence of degree d needs d+1 registers
	// (default 4).
	MaxRecurrenceDegree int64
}

// LevelOptions returns the Options corresponding to an optimization
// level.
func LevelOptions(level int) Options {
	o := opt.Level(level)
	return Options{
		Standard:            o.Standard,
		Recurrence:          o.Recurrence,
		Stream:              o.Stream,
		StrengthReduce:      o.StrengthReduce,
		Combine:             o.Combine,
		MinTrip:             o.MinTrip,
		MaxRecurrenceDegree: o.MaxRecurrenceDegree,
	}
}

func (o Options) optOptions() opt.Options {
	return opt.Options{
		Standard:            o.Standard,
		Recurrence:          o.Recurrence,
		Stream:              o.Stream,
		StrengthReduce:      o.StrengthReduce,
		Combine:             o.Combine,
		MinTrip:             o.MinTrip,
		MaxRecurrenceDegree: o.MaxRecurrenceDegree,
	}
}

// PassStat is one pass's aggregate over a compilation: how often it
// ran, how often it changed the code, its wall time, the cumulative
// instruction-count delta it caused, and (for fixpoint groups, whose
// names are bracketed) the rounds needed to converge.
type PassStat struct {
	Name       string
	Calls      int
	Fires      int
	Time       time.Duration
	InstrDelta int
	Rounds     int
}

// CompileStats reports per-pass instrumentation for one compilation.
type CompileStats struct {
	Passes []PassStat    // in first-invocation order
	Funcs  int           // functions optimized
	Total  time.Duration // summed pass time (over all workers)

	table string // pre-rendered per-pass table
}

// Table renders the statistics as an aligned per-pass table (the
// output of wmcc -stats), slowest pass first.
func (s *CompileStats) Table() string { return s.table }

// Compile translates Mini-C source to an optimized WM program.
func Compile(src string, level int) (*Program, error) {
	return CompileOptions(src, LevelOptions(level))
}

// CompileOptions is Compile with explicit optimizer options.
func CompileOptions(src string, o Options) (*Program, error) {
	p, _, err := compile(src, o, nil, false)
	return p, err
}

// CompileWithStats is CompileOptions with per-pass instrumentation.
// When debug is non-nil it receives vpo-style RTL dumps (each
// function's listing before optimization and after every pass that
// changed it) and the RTL invariant checker runs after every pass.
func CompileWithStats(src string, o Options, debug io.Writer) (*Program, *CompileStats, error) {
	return compile(src, o, debug, true)
}

func compile(src string, o Options, debug io.Writer, wantStats bool) (*Program, *CompileStats, error) {
	ast, err := minic.Compile(src)
	if err != nil {
		return nil, nil, fmt.Errorf("frontend: %w", err)
	}
	p, err := acode.Gen(ast)
	if err != nil {
		return nil, nil, fmt.Errorf("expand: %w", err)
	}
	ctx := opt.NewContext(o.optOptions())
	ctx.Debug = debug
	ctx.Verify = debug != nil
	if err := opt.WMPipeline(ctx.Opts).Run(p, ctx); err != nil {
		return nil, nil, err
	}
	if !wantStats {
		return &Program{rtl: p}, nil, nil
	}
	st := ctx.Stats()
	cs := &CompileStats{Funcs: st.Funcs, Total: st.Total, table: st.Table()}
	for _, ps := range st.Passes() {
		cs.Passes = append(cs.Passes, PassStat{
			Name:       ps.Name,
			Calls:      ps.Calls,
			Fires:      ps.Fires,
			Time:       ps.Time,
			InstrDelta: ps.InstrDelta,
			Rounds:     ps.Rounds,
		})
	}
	return &Program{rtl: p}, cs, nil
}

// Assemble parses a program in WM assembler syntax (the format Listing
// emits), for running hand-written code on the simulator.
func Assemble(asm string) (*Program, error) {
	p, err := rtl.Parse(asm)
	if err != nil {
		return nil, err
	}
	return &Program{rtl: p}, nil
}

// Listing renders the program as annotated assembly in the style of
// the paper's figures.
func (p *Program) Listing() string { return p.rtl.String() }

// FuncListing renders one function, or "" if absent.
func (p *Program) FuncListing(name string) string {
	f := p.rtl.Func(name)
	if f == nil {
		return ""
	}
	return f.Listing()
}

// Machine configures the simulated WM implementation.
type Machine struct {
	MemLatency int // cycles from memory request to data arrival
	MemPorts   int // memory requests accepted per cycle
	FIFODepth  int // entries per data FIFO
	QueueDepth int // entries per unit instruction queue
	NumSCU     int // stream control units
}

// DefaultMachine returns the configuration used by the reproduction
// experiments.
func DefaultMachine() Machine {
	c := sim.DefaultConfig()
	return Machine{
		MemLatency: c.MemLatency,
		MemPorts:   c.MemPorts,
		FIFODepth:  c.FIFODepth,
		QueueDepth: c.QueueDepth,
		NumSCU:     c.NumSCU,
	}
}

// Result reports a simulation run.
type Result struct {
	Cycles       int64
	Instructions int64
	MemReads     int64
	MemWrites    int64
	StreamElems  int64
	Output       string
}

// Run executes the program to completion on the simulated WM machine.
func Run(p *Program, m Machine) (Result, error) {
	img, err := sim.Link(p.rtl)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultConfig()
	if m.MemLatency > 0 {
		cfg.MemLatency = m.MemLatency
	}
	if m.MemPorts > 0 {
		cfg.MemPorts = m.MemPorts
	}
	if m.FIFODepth > 0 {
		cfg.FIFODepth = m.FIFODepth
	}
	if m.QueueDepth > 0 {
		cfg.QueueDepth = m.QueueDepth
	}
	if m.NumSCU > 0 {
		cfg.NumSCU = m.NumSCU
	}
	var out bytes.Buffer
	cfg.Output = &out
	machine := sim.New(img, cfg)
	stats, err := machine.Run()
	if err != nil {
		return Result{Output: out.String()}, err
	}
	return Result{
		Cycles:       stats.Cycles,
		Instructions: stats.Instructions,
		MemReads:     stats.MemReads,
		MemWrites:    stats.MemWrites,
		StreamElems:  stats.StreamElems,
		Output:       out.String(),
	}, nil
}
