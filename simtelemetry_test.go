package wmstream

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const telemetrySrc = `
double a[256], b[256];
int main(void) {
    int i;
    double sum;
    for (i = 0; i < 256; i++) {
        a[i] = (i & 3) * 1.5;
        b[i] = (i & 7) * 0.5;
    }
    sum = 0.0;
    for (i = 0; i < 256; i++)
        sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}
`

// TestRunWithTelemetry drives the full telemetry surface in one run:
// stall attribution, Chrome trace, compile spans, and the source
// profile.
func TestRunWithTelemetry(t *testing.T) {
	res, err := CompileWithConfig(telemetrySrc, CompileConfig{Options: LevelOptions(3)})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var trace bytes.Buffer
	sr, err := RunWithTelemetry(res.Program, DefaultMachine(), SimOptions{
		TraceJSON:    &trace,
		CompileStats: res.Stats,
		Profile:      true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sr.Output == "" {
		t.Error("no program output")
	}

	// Attribution invariant at the public API level.
	if len(sr.Units) < 4 {
		t.Fatalf("got %d unit breakdowns, want IFU+IEU+FEU+SCUs", len(sr.Units))
	}
	for _, u := range sr.Units {
		sum := u.Issued + u.Idle
		for _, n := range u.Stalls {
			sum += n
		}
		if sum != u.Total || u.Total != sr.Cycles {
			t.Errorf("%s: issued+idle+stalls = %d, Total = %d, Cycles = %d", u.Unit, sum, u.Total, sr.Cycles)
		}
	}
	if !strings.Contains(sr.UnitTable(), "unit") || !strings.Contains(sr.UnitTable(), "IEU") {
		t.Errorf("UnitTable malformed:\n%s", sr.UnitTable())
	}

	// The trace must be valid JSON containing both the compile and the
	// machine process.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("trace pids = %v, want both compile (1) and sim (2)", pids)
	}

	// The profile must attribute at least 90% of retirements (the
	// acceptance bar) and carry source text for the hot line.
	if sr.Profile == nil || sr.Profile.TotalRetires == 0 {
		t.Fatal("no profile collected")
	}
	if pct := sr.Profile.AttributedPct(); pct < 90 {
		t.Errorf("profile attributes %.1f%% of retirements, want >= 90%%\n%s", pct, sr.Profile.Report(0))
	}
	if len(sr.Profile.Lines) == 0 || sr.Profile.Lines[0].Text == "" {
		t.Errorf("profile has no source text:\n%s", sr.Profile.Report(5))
	}
	if !strings.Contains(sr.Profile.Report(5), "retires") {
		t.Errorf("report header malformed:\n%s", sr.Profile.Report(5))
	}
}

// TestProfileAttributionAcrossLevels: the >= 90% attribution bar holds
// at every optimization level, not just -O3 — passes must preserve
// debug lines as they rewrite code.
func TestProfileAttributionAcrossLevels(t *testing.T) {
	for level := 0; level <= 3; level++ {
		p, err := Compile(telemetrySrc, level)
		if err != nil {
			t.Fatalf("compile -O%d: %v", level, err)
		}
		sr, err := RunWithTelemetry(p, DefaultMachine(), SimOptions{Profile: true})
		if err != nil {
			t.Fatalf("run -O%d: %v", level, err)
		}
		if pct := sr.Profile.AttributedPct(); pct < 90 {
			t.Errorf("-O%d: %.1f%% attributed, want >= 90%%", level, pct)
		}
	}
}

// TestProfileSurvivesAssemblyRoundTrip: wmcc -g output fed to the
// assembler still profiles (the @line annotations carry the table).
func TestProfileSurvivesAssemblyRoundTrip(t *testing.T) {
	p, err := Compile(telemetrySrc, 3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p2, err := Assemble(p.ListingDebug())
	if err != nil {
		t.Fatalf("assemble debug listing: %v", err)
	}
	sr, err := RunWithTelemetry(p2, DefaultMachine(), SimOptions{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if pct := sr.Profile.AttributedPct(); pct < 90 {
		t.Errorf("after round trip: %.1f%% attributed, want >= 90%%", pct)
	}
	// Without -g the same program yields no attribution.
	p3, err := Assemble(p.Listing())
	if err != nil {
		t.Fatalf("assemble plain listing: %v", err)
	}
	sr3, err := RunWithTelemetry(p3, DefaultMachine(), SimOptions{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sr3.Profile.Attributed != 0 {
		t.Errorf("plain listing attributed %d retirements, want 0", sr3.Profile.Attributed)
	}
}

// TestTelemetryOnDeadlock: a run that faults still returns the
// telemetry collected up to the fault and writes the trace.
func TestTelemetryOnDeadlock(t *testing.T) {
	p, err := Assemble(`
.entry main
.func main
r2 := r0
halt
.end
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := DefaultMachine()
	m.WatchdogSlack = 50
	var trace bytes.Buffer
	sr, err := RunWithTelemetry(p, m, SimOptions{TraceJSON: &trace})
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	if len(sr.Units) == 0 {
		t.Error("no unit attribution returned on fault")
	}
	if !json.Valid(trace.Bytes()) {
		t.Error("trace written on fault is not valid JSON")
	}
}
