package wmstream

import (
	"errors"
	"strings"
	"testing"

	"wmstream/internal/bench"
	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

// faultProgram exercises enough of the optimizer that every O2/O3 pass
// has something to do, and prints a checksum so degraded and
// full-strength builds can be compared by output.
const faultProgram = `
double x[256], y[256];
int main(void) {
    int i, s;
    double acc;
    for (i = 0; i < 256; i++) { x[i] = i * 0.5; y[i] = i * 0.25; }
    acc = 0.0;
    for (i = 0; i < 256; i++) acc = acc + x[i] * y[i];
    s = 0;
    for (i = 0; i < 256; i++) s = s + i * 3;
    putd(acc);
    puti(s);
    return 0;
}
`

func runOutput(t *testing.T, p *Program) string {
	t.Helper()
	res, err := Run(p, DefaultMachine())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output
}

// injectEverywhere makes every sandboxed pass invocation fail in the
// given mode for the duration of the test.
func injectEverywhere(t *testing.T, mode string) {
	t.Helper()
	opt.InjectFault = func(pass, fn string) string { return mode }
	t.Cleanup(func() { opt.InjectFault = nil })
}

// TestFaultContainmentEndToEnd forces every optimization pass to fail
// and checks the contract of the containment layer: compilation still
// succeeds, the program's simulated output equals the O0 build's, and
// the degradations are reported as diagnostics naming pass and
// function.
func TestFaultContainmentEndToEnd(t *testing.T) {
	ref, err := Compile(faultProgram, O0)
	if err != nil {
		t.Fatal(err)
	}
	want := runOutput(t, ref)

	injectEverywhere(t, "panic")
	res, err := CompileWithConfig(faultProgram, CompileConfig{Options: LevelOptions(O3)})
	if err != nil {
		t.Fatalf("compilation with all passes faulty errored: %v", err)
	}
	if got := runOutput(t, res.Program); got != want {
		t.Errorf("degraded build output %q != O0 output %q", got, want)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("no diagnostics despite every pass failing")
	}
	sawMain := false
	for _, d := range res.Diagnostics {
		if d.Severity != SeverityDegraded {
			t.Errorf("diagnostic %v has severity %v, want Degraded", d, d.Severity)
		}
		if d.Pass == "" || d.Func == "" {
			t.Errorf("diagnostic %v missing pass or function provenance", d)
		}
		if d.Func == "main" {
			sawMain = true
		}
		if !strings.Contains(d.String(), "degraded") {
			t.Errorf("rendered diagnostic %q does not state its severity", d)
		}
	}
	if !sawMain {
		t.Errorf("no diagnostic names function main: %v", res.Diagnostics)
	}
}

// TestFaultContainmentModes drives the other injected failure shapes
// through the full compiler: each must degrade, not error, and the
// output must stay correct.
func TestFaultContainmentModes(t *testing.T) {
	ref, err := Compile(faultProgram, O0)
	if err != nil {
		t.Fatal(err)
	}
	want := runOutput(t, ref)
	for _, mode := range []string{"error", "corrupt"} {
		t.Run(mode, func(t *testing.T) {
			injectEverywhere(t, mode)
			res, err := CompileWithConfig(faultProgram, CompileConfig{Options: LevelOptions(O3)})
			if err != nil {
				t.Fatalf("mode %s errored: %v", mode, err)
			}
			if got := runOutput(t, res.Program); got != want {
				t.Errorf("mode %s: output %q != O0 output %q", mode, got, want)
			}
			if len(res.Diagnostics) == 0 {
				t.Errorf("mode %s: no diagnostics", mode)
			}
		})
	}
}

// TestStrictPromotesDegradation checks that -strict semantics turn a
// contained fault into a compilation error while still reporting the
// diagnostics.
func TestStrictPromotesDegradation(t *testing.T) {
	injectEverywhere(t, "panic")
	res, err := CompileWithConfig(faultProgram, CompileConfig{Options: LevelOptions(O3), Strict: true})
	if err == nil {
		t.Fatal("strict compilation succeeded despite degradations")
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("strict error %q does not identify itself", err)
	}
	if len(res.Diagnostics) == 0 {
		t.Error("strict failure lost the diagnostics")
	}
}

// TestFrontendDiagnosticPosition checks that a syntax error surfaces as
// a structured diagnostic with its source position.
func TestFrontendDiagnosticPosition(t *testing.T) {
	res, err := CompileWithConfig("int main(void) {\n    retur 0;\n}\n", CompileConfig{})
	if err == nil {
		t.Fatal("bad program compiled")
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Severity != SeverityError || d.Stage != "frontend" {
		t.Errorf("diagnostic %+v, want frontend error", d)
	}
	if d.Line != 2 {
		t.Errorf("diagnostic line = %d, want 2", d.Line)
	}
}

// TestAssembleRejectsUnknownLabel checks that hand-written assembly
// with a dangling branch is caught at assembly time, not as a
// simulator fault.
func TestAssembleRejectsUnknownLabel(t *testing.T) {
	_, err := Assemble(`
.entry main
.func main
jump L_missing
.end
`)
	if err == nil {
		t.Fatal("Assemble accepted a branch to an undefined label")
	}
	for _, want := range []string{"main", "L_missing"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRunReturnsTypedDeadlock checks the public surface of the
// simulator forensics: a deadlocking program returns a
// *wmstream.DeadlockError identifying the blocked unit and FIFO.
func TestRunReturnsTypedDeadlock(t *testing.T) {
	p, err := Assemble(`
.entry main
.func main
r2 := r0
halt
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	m.WatchdogSlack = 100
	_, err = Run(p, m)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %T (%v), want *DeadlockError", err, err)
	}
	if got := dl.Snapshot.Units[0].BlockedOn; !strings.Contains(got, "input FIFO r0") {
		t.Errorf("snapshot blames %q, want input FIFO r0", got)
	}
	// The same value must also match as the internal type, so code
	// holding either name works.
	var sdl *sim.DeadlockError
	if !errors.As(err, &sdl) {
		t.Error("alias does not match the underlying *sim.DeadlockError")
	}
}

// TestDifferentialO0vsO3 compiles every benchmark of the paper's suite
// at O0 and O3 and requires identical simulated output — the
// end-to-end correctness check the fault-containment layer leans on
// (any contained degradation must land on a point of this lattice).
func TestDifferentialO0vsO3(t *testing.T) {
	progs := append(bench.Programs(), bench.Livermore5(100))
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			var out [2]string
			for k, lvl := range []int{O0, O3} {
				prog, err := Compile(p.Source, lvl)
				if err != nil {
					t.Fatalf("O%d: %v", lvl, err)
				}
				out[k] = runOutput(t, prog)
			}
			if out[0] != out[1] {
				t.Errorf("O3 output %q differs from O0 output %q", out[1], out[0])
			}
			if p.Expect != "" && out[0] != p.Expect {
				t.Errorf("O0 output %q, want %q", out[0], p.Expect)
			}
		})
	}
}
