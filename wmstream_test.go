package wmstream

import (
	"strings"
	"testing"
)

// TestCompileRunLevels drives the public API end to end: a scalar
// reduction computed identically at every optimization level, with
// cycles monotonically improving from O0 to O1.
func TestCompileRunLevels(t *testing.T) {
	src := `
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++) s = s + i;
    puti(s);
    return 0;
}`
	var o0 int64
	for lvl := O0; lvl <= O3; lvl++ {
		p, err := Compile(src, lvl)
		if err != nil {
			t.Fatalf("O%d compile: %v", lvl, err)
		}
		res, err := Run(p, DefaultMachine())
		if err != nil {
			t.Fatalf("O%d run: %v\n%s", lvl, err, p.Listing())
		}
		if res.Output != "45" {
			t.Fatalf("O%d output = %q\n%s", lvl, res.Output, p.Listing())
		}
		if lvl == O0 {
			o0 = res.Cycles
		} else if res.Cycles > o0 {
			t.Errorf("O%d (%d cycles) slower than O0 (%d)", lvl, res.Cycles, o0)
		}
	}
}

// TestLivermoreAllLevels is the paper's running example through the
// public API: identical numeric results at every level, recurrence
// optimization removing memory reads at O2, streams appearing at O3.
func TestLivermoreAllLevels(t *testing.T) {
	src := `
double x[200], y[200], z[200];
int n = 200;
int main(void) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = (i % 9) * 0.5;
        y[i] = (i % 7) * 0.25;
        z[i] = (i % 5) * 0.125;
    }
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
    putd(x[n-1]);
    return 0;
}`
	var ref string
	var readsO1, readsO2 int64
	var cyclesPrev int64
	for lvl := O0; lvl <= O3; lvl++ {
		p, err := Compile(src, lvl)
		if err != nil {
			t.Fatalf("O%d: %v", lvl, err)
		}
		res, err := Run(p, DefaultMachine())
		if err != nil {
			t.Fatalf("O%d run: %v\n%s", lvl, err, p.Listing())
		}
		if lvl == O0 {
			ref = res.Output
		} else if res.Output != ref {
			t.Fatalf("O%d output %q != O0 %q", lvl, res.Output, ref)
		}
		switch lvl {
		case O1:
			readsO1 = res.MemReads
		case O2:
			readsO2 = res.MemReads
			if readsO2 >= readsO1 {
				t.Errorf("recurrence optimization removed no reads: O1=%d O2=%d", readsO1, readsO2)
			}
		case O3:
			if res.StreamElems == 0 {
				t.Errorf("no streaming at O3:\n%s", p.FuncListing("main"))
			}
			if !strings.Contains(p.FuncListing("main"), "sin64f") {
				t.Errorf("no stream-in instruction at O3:\n%s", p.FuncListing("main"))
			}
		}
		if lvl >= O1 && cyclesPrev > 0 && res.Cycles > cyclesPrev {
			t.Errorf("O%d (%d cycles) slower than previous level (%d)", lvl, res.Cycles, cyclesPrev)
		}
		cyclesPrev = res.Cycles
	}
}

// TestAssembleRoundTrip feeds Listing output back through Assemble.
func TestAssembleRoundTrip(t *testing.T) {
	p, err := Compile(`int main(void) { puti(6 * 7); return 0; }`, O3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Assemble(p.Listing())
	if err != nil {
		t.Fatalf("Assemble: %v\n%s", err, p.Listing())
	}
	res, err := Run(q, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42" {
		t.Errorf("output = %q", res.Output)
	}
}

// TestMachineKnobs verifies Machine configuration reaches the
// simulator.
func TestMachineKnobs(t *testing.T) {
	src := `
double a[512];
int main(void) {
    int i;
    double s;
    for (i = 0; i < 512; i++) a[i] = i * 0.5;
    s = 0.0;
    for (i = 0; i < 512; i++) s = s + a[i];
    putd(s);
    return 0;
}`
	p, err := Compile(src, O2) // scalar loads, latency-sensitive
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultMachine()
	fast.MemLatency = 1
	slow := DefaultMachine()
	slow.MemLatency = 30
	rf, err := Run(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(p, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Output != rs.Output {
		t.Fatalf("outputs differ: %q vs %q", rf.Output, rs.Output)
	}
	if rs.Cycles <= rf.Cycles {
		t.Errorf("latency knob ignored: slow=%d fast=%d", rs.Cycles, rf.Cycles)
	}
}

// TestCompileErrors surfaces front-end diagnostics through the API.
func TestCompileErrors(t *testing.T) {
	if _, err := Compile(`int main(void) { return q; }`, O3); err == nil {
		t.Error("undefined name accepted")
	}
	if _, err := Compile(`int f(void) { return 1; }`, O3); err == nil {
		t.Error("missing main accepted")
	}
	if _, err := Assemble("bogus !!"); err == nil {
		t.Error("bad assembly accepted")
	}
}

// TestMaxRecurrenceDegree verifies the degree bound reaches the
// recurrence pass: a degree-2 recurrence (x[i] uses x[i-2]) is
// register-carried under the default bound but left in memory when the
// caller lowers the bound below 2.
func TestMaxRecurrenceDegree(t *testing.T) {
	src := `
double x[300], y[300];
int n = 300;
int main(void) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = (i % 9) * 0.5;
        y[i] = (i % 7) * 0.25;
    }
    for (i = 2; i < n; i++)
        x[i] = y[i] - x[i-2];
    putd(x[n-1]);
    return 0;
}`
	o := LevelOptions(O2)
	reads := map[int64]int64{}
	outputs := map[int64]string{}
	for _, deg := range []int64{1, 4} {
		o.MaxRecurrenceDegree = deg
		p, err := CompileOptions(src, o)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		res, err := Run(p, DefaultMachine())
		if err != nil {
			t.Fatalf("degree %d run: %v", deg, err)
		}
		reads[deg] = res.MemReads
		outputs[deg] = res.Output
	}
	if outputs[1] != outputs[4] {
		t.Fatalf("outputs differ: degree 1 %q, degree 4 %q", outputs[1], outputs[4])
	}
	if reads[4] >= reads[1] {
		t.Errorf("degree bound not plumbed: reads at degree 4 (%d) not below degree 1 (%d)",
			reads[4], reads[1])
	}
}

// TestCompileWithStats exercises the instrumented entry point: the
// per-pass table must cover the pipeline, and a debug writer must
// receive vpo-style dumps while the invariant checker stays quiet.
func TestCompileWithStats(t *testing.T) {
	src := `
double x[100];
int n = 100;
int main(void) {
    int i;
    for (i = 0; i < n; i++) x[i] = i * 0.5;
    putd(x[n-1]);
    return 0;
}`
	var debug strings.Builder
	p, stats, err := CompileWithStats(src, LevelOptions(O3), &debug)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Funcs == 0 {
		t.Fatalf("no stats collected: %+v", stats)
	}
	byName := map[string]PassStat{}
	for _, ps := range stats.Passes {
		byName[ps.Name] = ps
	}
	for _, name := range []string{"Fold", "DeadCode", "RegAlloc", "[standard]"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("pass %q missing from stats", name)
		}
	}
	if g := byName["[standard]"]; g.Rounds == 0 {
		t.Errorf("fixpoint group recorded no rounds: %+v", g)
	}
	if stats.Total <= 0 {
		t.Errorf("total time not recorded: %v", stats.Total)
	}
	if !strings.Contains(stats.Table(), "Fold") {
		t.Errorf("table missing pass rows:\n%s", stats.Table())
	}
	if !strings.Contains(debug.String(), "after") {
		t.Error("debug writer received no pass dumps")
	}
	res, err := Run(p, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == "" {
		t.Error("instrumented compile produced a silent program")
	}
}

// TestLevelOptions spot-checks the option sets.
func TestLevelOptions(t *testing.T) {
	o1 := LevelOptions(O1)
	if !o1.Standard || o1.Recurrence || o1.Stream {
		t.Errorf("O1 options wrong: %+v", o1)
	}
	o3 := LevelOptions(O3)
	if !o3.Standard || !o3.Recurrence || !o3.Stream || !o3.Combine {
		t.Errorf("O3 options wrong: %+v", o3)
	}
}
