package wmstream_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"wmstream"
)

// infiniteSrc never terminates at O0 (no optimization rewrites the
// loop), so only cooperative cancellation can stop its simulation.
const infiniteSrc = `int main(void) {
    int i;
    i = 0;
    while (i < 1) { i = 0; }
    return 0;
}`

func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := wmstream.CompileContext(ctx, "int main(void) { return 0; }", wmstream.CompileConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	p, err := wmstream.Compile(infiniteSrc, 0)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = wmstream.RunContext(ctx, p, wmstream.DefaultMachine())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", d)
	}
}

func TestRunWithTelemetryContextDeadline(t *testing.T) {
	p, err := wmstream.Compile(infiniteSrc, 0)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = wmstream.RunWithTelemetryContext(ctx, p, wmstream.DefaultMachine(), wmstream.SimOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCompletedUnaffected pins that a context that never
// fires leaves results identical to the context-free path.
func TestRunContextCompletedUnaffected(t *testing.T) {
	src := `int main(void) { int i, s; s = 0; for (i = 0; i < 50; i++) s = s + i; puti(s); return 0; }`
	p, err := wmstream.Compile(src, 3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	plain, err := wmstream.Run(p, wmstream.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	withCtx, err := wmstream.RunContext(ctx, p, wmstream.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Fatalf("results differ:\nplain:   %+v\nwithCtx: %+v", plain, withCtx)
	}
}
