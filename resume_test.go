package wmstream

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
)

// resumeSrc produces output both before and after any mid-run
// checkpoint, so resume tests exercise the output-splicing envelope.
const resumeSrc = `
double a[256];
int main(void) {
    int i, r;
    double sum;
    for (i = 0; i < 256; i++)
        a[i] = (i & 15) * 0.25;
    sum = 0.0;
    for (r = 0; r < 400; r++) {
        for (i = 0; i < 256; i++)
            sum = sum + a[i];
        if ((r & 63) == 0) puti(r);
    }
    putd(sum);
    return 0;
}
`

// TestCheckpointResumeIdentity interrupts a run at a checkpoint and
// resumes it — same engine and across engines — requiring final
// statistics and output byte-identical to an uninterrupted run.
func TestCheckpointResumeIdentity(t *testing.T) {
	prog, err := Compile(resumeSrc, O3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, tc := range []struct {
		name          string
		first, second string // Engine knob for the interrupted and resumed halves
	}{
		{"auto", "auto", "auto"},
		{"fast-to-reference", "fast", "reference"},
		{"reference-to-fast", "reference", "fast"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := DefaultMachine()
			m.Engine = tc.second
			want, err := RunWithTelemetry(prog, m, SimOptions{})
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}

			// Interrupted half: cancel the context from the first
			// checkpoint callback, keeping the freshest blob.
			var blob []byte
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			mi := DefaultMachine()
			mi.Engine = tc.first
			_, err = RunWithTelemetryContext(ctx, prog, mi, SimOptions{
				CheckpointEvery: 300,
				OnCheckpoint: func(state []byte, p RunProgress) error {
					blob = state
					cancel()
					return nil
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run error = %v, want context.Canceled", err)
			}
			if blob == nil {
				t.Fatal("no checkpoint captured")
			}

			got, err := RunWithTelemetry(prog, m, SimOptions{ResumeState: blob})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(got.Result, want.Result) {
				t.Errorf("resumed result differs:\nuninterrupted: %+v\nresumed:       %+v", want.Result, got.Result)
			}
		})
	}
}

// TestFinalCheckpointOnCancel: with FinalCheckpoint set, cancellation
// itself produces a resumable blob even when no periodic checkpoint
// interval elapsed.
func TestFinalCheckpointOnCancel(t *testing.T) {
	prog, err := Compile(resumeSrc, O3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := RunWithTelemetry(prog, DefaultMachine(), SimOptions{})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	var blob []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunWithTelemetryContext(ctx, prog, DefaultMachine(), SimOptions{
		// Enormous interval: only the final-on-cancel checkpoint fires.
		CheckpointEvery: 1 << 40,
		FinalCheckpoint: true,
		ProgressEvery:   1, // emit on the first slice
		Progress: func(p RunProgress) {
			if !p.Done && p.Cycles > 0 {
				cancel()
			}
		},
		OnCheckpoint: func(state []byte, p RunProgress) error {
			blob = state
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	if blob == nil {
		t.Fatal("FinalCheckpoint produced no blob on cancellation")
	}
	got, err := RunWithTelemetry(prog, DefaultMachine(), SimOptions{ResumeState: blob})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("resumed result differs:\nuninterrupted: %+v\nresumed:       %+v", want.Result, got.Result)
	}
}

// TestResumeStateCorrupt: damaged or foreign blobs surface as a typed
// *ResumeError before any cycle simulates; they never panic.
func TestResumeStateCorrupt(t *testing.T) {
	prog, err := Compile(resumeSrc, O3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var blob []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	RunWithTelemetryContext(ctx, prog, DefaultMachine(), SimOptions{
		CheckpointEvery: 300,
		OnCheckpoint: func(state []byte, p RunProgress) error {
			blob = state
			cancel()
			return nil
		},
	})
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}
	for _, tc := range []struct {
		name string
		bad  []byte
	}{
		{"foreign", []byte("junk that is no envelope")},
		{"truncated", blob[:len(blob)/3]},
		// A flipped bit in the envelope's length word; flips deeper in
		// the value stream are the durable store's job (SHA-256 content
		// addressing), not the decoder's.
		{"bit-flip", func() []byte {
			b := append([]byte(nil), blob...)
			b[10] ^= 0x40 // high byte of the output-length word
			return b
		}()},
		{"empty", []byte{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunWithTelemetry(prog, DefaultMachine(), SimOptions{ResumeState: tc.bad})
			var re *ResumeError
			if !errors.As(err, &re) {
				t.Fatalf("error = %v, want *ResumeError", err)
			}
		})
	}
}

// TestEngineKnob: the Machine.Engine string selects real engines and
// both produce identical results.
func TestEngineKnob(t *testing.T) {
	prog, err := Compile(resumeSrc, O3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var outs []Result
	for _, eng := range []string{"auto", "fast", "reference", ""} {
		m := DefaultMachine()
		m.Engine = eng
		res, err := Run(prog, m)
		if err != nil {
			t.Fatalf("engine %q: %v", eng, err)
		}
		outs = append(outs, res)
	}
	for i := 1; i < len(outs); i++ {
		if !reflect.DeepEqual(outs[0], outs[i]) {
			t.Errorf("engine results diverge: %+v vs %+v", outs[0], outs[i])
		}
	}
	if !bytes.Contains([]byte(outs[0].Output), []byte("192000")) {
		// 400 rounds over 256 elements of (i&15)*0.25 sum to 192000.
		t.Errorf("unexpected output %q", outs[0].Output)
	}
}
