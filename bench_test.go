// Public-API benchmarks.  The paper's tables and figures are
// benchmarked where they live — internal/experiments — and the
// machine-parameter ablations in internal/bench; this file keeps only
// what exercises the exported wmstream surface.
package wmstream

import (
	"fmt"
	"testing"
)

// BenchmarkDotProductCycles measures the streamed dot product's cycles
// per element (the paper's "dot product in N clock cycles" claim)
// through the public Compile/Run API.
func BenchmarkDotProductCycles(b *testing.B) {
	src := `
double a[8192], b[8192];
int n = 8192;
int main(void) {
    int i, p;
    double sum;
    for (i = 0; i < n; i++) { a[i] = (i & 15) * 0.5; b[i] = (i & 7) * 0.25; }
    sum = 0.0;
    for (p = 0; p < 9; p++)
        for (i = 0; i < n; i++)
            sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}`
	for n := 0; n < b.N; n++ {
		p1, err := Compile(src, O3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(p1, DefaultMachine())
		if err != nil {
			b.Fatal(err)
		}
		// Attribute everything beyond one pass to the other eight.
		b.ReportMetric(float64(res.Cycles)/float64(9*8192), "cycles/elem_upper_bound")
	}
}

// BenchmarkCompilePublic measures the exported entry point end to end
// (frontend, expander, optimizer, diagnostics plumbing) at each level.
func BenchmarkCompilePublic(b *testing.B) {
	src := `
double a[256], acc[256];
int main(void) {
    int i; double s;
    s = 0.0;
    for (i = 0; i < 256; i++) a[i] = i * 0.5;
    for (i = 0; i < 256; i++) s = s + a[i] * a[i];
    for (i = 1; i < 256; i++) acc[i] = acc[i-1] + a[i];
    putd(s + acc[255]);
    return 0;
}`
	for _, lvl := range []int{O0, O3} {
		lvl := lvl
		b.Run(levelName(lvl), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := Compile(src, lvl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func levelName(lvl int) string { return fmt.Sprintf("O%d", lvl) }
