// Benchmarks regenerating each of the paper's tables and figures, plus
// ablations over the design parameters called out in DESIGN.md.  Each
// benchmark reports the paper's metric via b.ReportMetric, so
// `go test -bench . -benchmem` reproduces the whole evaluation:
//
//	BenchmarkFig4/5/6/7       figure listings (compile-time cost)
//	BenchmarkTable1           percent improvement from recurrence opt
//	BenchmarkTable2/<prog>    percent cycle reduction from streaming
//	BenchmarkTable34          optimizer-quality geometric means
//	BenchmarkDotProductCycles the Θ(N) streamed dot product
//	BenchmarkAblation*        FIFO depth / ports / latency / min-trip /
//	                          combining sweeps
package wmstream

import (
	"fmt"
	"strings"
	"testing"

	"wmstream/internal/bench"
	"wmstream/internal/experiments"
	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

func BenchmarkFig4(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFig5(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFig7(b *testing.B) { benchFigure(b, 7) }

func benchFigure(b *testing.B, stage int) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure(stage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I at a reduced size (the full
// 100,000-element run is cmd/wmrepro's job) and reports each machine's
// percent improvement.
func BenchmarkTable1(b *testing.B) {
	for n := 0; n < b.N; n++ {
		rows, err := experiments.Table1(5000, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			unit := strings.NewReplacer(" ", "", "/", "_").Replace(r.Machine) + "_%improve"
			b.ReportMetric(r.Percent, unit)
		}
	}
}

// BenchmarkTable2 runs each of the nine programs with and without
// streaming and reports the percent reduction in cycles.
func BenchmarkTable2(b *testing.B) {
	for _, p := range bench.Programs() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				without, with, pct, err := bench.StreamingReduction(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pct, "%reduction")
				b.ReportMetric(float64(without), "cycles_O2")
				b.ReportMetric(float64(with), "cycles_O3")
			}
		})
	}
}

func BenchmarkTable34(b *testing.B) {
	for n := 0; n < b.N; n++ {
		_, g1, g3, err := experiments.Table34()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g1, "geomean_O1")
		b.ReportMetric(g3, "geomean_O3")
	}
}

// BenchmarkDotProductCycles measures the streamed dot product's cycles
// per element (the paper's "dot product in N clock cycles" claim).
func BenchmarkDotProductCycles(b *testing.B) {
	src := `
double a[8192], b[8192];
int n = 8192;
int main(void) {
    int i, p;
    double sum;
    for (i = 0; i < n; i++) { a[i] = (i & 15) * 0.5; b[i] = (i & 7) * 0.25; }
    sum = 0.0;
    for (p = 0; p < 9; p++)
        for (i = 0; i < n; i++)
            sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}`
	for n := 0; n < b.N; n++ {
		p1, err := Compile(src, O3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(p1, DefaultMachine())
		if err != nil {
			b.Fatal(err)
		}
		// Attribute everything beyond one pass to the other eight.
		b.ReportMetric(float64(res.Cycles)/float64(9*8192), "cycles/elem_upper_bound")
	}
}

// --- ablations -------------------------------------------------------------

// benchConfigured runs the Livermore program under a machine variant.
func benchConfigured(b *testing.B, level int, mutate func(*sim.Config)) int64 {
	b.Helper()
	p, err := bench.Compile(bench.Livermore5(2000), level)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	stats, _, err := bench.Run(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return stats.Cycles
}

// BenchmarkAblationFIFODepth sweeps the FIFO depth: shallow FIFOs
// throttle the stream units' ability to run ahead.
func BenchmarkAblationFIFODepth(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16, 64} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := benchConfigured(b, 3, func(cfg *sim.Config) { cfg.FIFODepth = depth })
				b.ReportMetric(float64(c), "cycles")
			}
		})
	}
}

// BenchmarkAblationMemPorts sweeps memory ports: the streamed loop
// needs two reads and a write per iteration.
func BenchmarkAblationMemPorts(b *testing.B) {
	for _, ports := range []int{1, 2, 4} {
		ports := ports
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := benchConfigured(b, 3, func(cfg *sim.Config) { cfg.MemPorts = ports })
				b.ReportMetric(float64(c), "cycles")
			}
		})
	}
}

// BenchmarkAblationMemLatency shows the access/execute property: the
// decoupled, streamed code is far less sensitive to memory latency
// than the unstreamed code.
func BenchmarkAblationMemLatency(b *testing.B) {
	for _, level := range []int{1, 3} {
		for _, lat := range []int{1, 4, 8, 16} {
			level, lat := level, lat
			b.Run(fmt.Sprintf("O%d/latency=%d", level, lat), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					c := benchConfigured(b, level, func(cfg *sim.Config) { cfg.MemLatency = lat })
					b.ReportMetric(float64(c), "cycles")
				}
			})
		}
	}
}

// BenchmarkAblationMinTrip sweeps the paper's step-1 threshold on a
// program full of short loops.
func BenchmarkAblationMinTrip(b *testing.B) {
	src := `
int t[6];
int main(void) {
    int i, r, s;
    s = 0;
    for (r = 0; r < 2000; r++) {
        for (i = 0; i < 6; i++)
            t[i] = i + r;
        for (i = 0; i < 6; i++)
            s = s + t[i];
    }
    puti(s);
    return 0;
}`
	for _, minTrip := range []int64{1, 4, 16} {
		minTrip := minTrip
		b.Run(fmt.Sprintf("mintrip=%d", minTrip), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				o := opt.Level(3)
				o.MinTrip = minTrip
				p, err := bench.CompileOptions(bench.Program{Name: "short", Source: src}, o)
				if err != nil {
					b.Fatal(err)
				}
				stats, _, err := bench.Run(p, sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationCombine measures WM's dual-operation instruction
// combining (off vs on) on the recurrence-optimized Livermore loop.
func BenchmarkAblationCombine(b *testing.B) {
	for _, combine := range []bool{false, true} {
		combine := combine
		b.Run(fmt.Sprintf("combine=%v", combine), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				o := opt.Level(2)
				o.Combine = combine
				p, err := bench.CompileOptions(bench.Livermore5(2000), o)
				if err != nil {
					b.Fatal(err)
				}
				stats, _, err := bench.Run(p, sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationRecurrenceStream crosses the two headline passes:
// streaming is blocked where a memory recurrence survives (step 2a), so
// the combination matters.
func BenchmarkAblationRecurrenceStream(b *testing.B) {
	for _, rec := range []bool{false, true} {
		for _, stream := range []bool{false, true} {
			rec, stream := rec, stream
			b.Run(fmt.Sprintf("rec=%v/stream=%v", rec, stream), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					o := opt.Level(1)
					o.Recurrence = rec
					o.Stream = stream
					p, err := bench.CompileOptions(bench.Livermore5(2000), o)
					if err != nil {
						b.Fatal(err)
					}
					stats, _, err := bench.Run(p, sim.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(stats.Cycles), "cycles")
				}
			})
		}
	}
}

// BenchmarkCompiler measures raw compilation speed over the suite.
func BenchmarkCompiler(b *testing.B) {
	progs := bench.Programs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, p := range progs {
			if _, err := bench.Compile(p, 3); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulator measures simulator throughput (simulated
// instructions per second) on the quicksort benchmark.
func BenchmarkSimulator(b *testing.B) {
	p, err := bench.Compile(bench.Quicksort, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for n := 0; n < b.N; n++ {
		stats, _, err := bench.Run(p, sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		instrs += stats.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}
