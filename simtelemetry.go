package wmstream

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"wmstream/internal/exec"
	"wmstream/internal/sim"
	"wmstream/internal/telemetry"
)

// SimOptions selects the telemetry a RunWithTelemetry call collects on
// top of the plain Result.  The zero value collects only the per-unit
// stall attribution (always on — it is a handful of counter arrays).
type SimOptions struct {
	// TraceJSON, when non-nil, receives a Chrome trace-event JSON file
	// at the end of the run (load it in Perfetto or chrome://tracing):
	// one span track per functional unit, counter tracks for FIFO and
	// queue occupancies, cycle N at timestamp N-1 microseconds.
	TraceJSON io.Writer
	// CompileStats, when set together with TraceJSON, prepends one span
	// per optimizer pass to the trace, so a single timeline shows the
	// compile phases followed by the simulated execution.
	CompileStats *CompileStats
	// Profile collects the source-level hot-spot profile (requires the
	// program to carry debug info — compiled from Mini-C, or assembled
	// from a listing with @line annotations).
	Profile bool
	// MaxWall bounds the host wall-clock time of the simulation.  An
	// exhausted budget stops the run with a *WallBudgetError; the
	// statistics and telemetry collected so far are still returned.
	MaxWall time.Duration
	// Progress, when non-nil, receives periodic snapshots of the
	// running simulation (cycles, instructions, memory traffic) plus a
	// final one marked Done, all from the calling goroutine.
	Progress func(RunProgress)
	// ProgressEvery is the minimum interval between Progress calls
	// (zero uses the execution core's default of 500ms).
	ProgressEvery time.Duration
	// ResumeState, when non-nil, restores the run from a blob a prior
	// run's OnCheckpoint produced, so the run continues instead of
	// starting at cycle zero.  The blob must come from the same
	// program and machine configuration; one that fails to restore
	// aborts the run with a *ResumeError before any cycle simulates.
	// A resumed run's final statistics, output, and memory are
	// bit-identical to an uninterrupted run of the same program.
	ResumeState []byte
	// CheckpointEvery, when > 0, serializes the run roughly every that
	// many simulated cycles and hands the blob to OnCheckpoint.
	CheckpointEvery int64
	// OnCheckpoint receives each checkpoint blob — an opaque envelope
	// of the simulator state plus the output emitted so far, accepted
	// back via ResumeState.  A non-nil return aborts the run with that
	// error.  Checkpointing is incompatible with TraceJSON (recorder
	// state is unreplayable).
	OnCheckpoint func(state []byte, p RunProgress) error
	// FinalCheckpoint additionally takes one last checkpoint when the
	// run is stopped by context cancellation (a draining service), so
	// the run can resume after a restart.
	FinalCheckpoint bool
	// Gate, when non-nil, is held around each simulation slice.  Runs
	// sharing one gate (NewBatchGate) interleave slice-by-slice on a
	// single admission token — N concurrent simulations with one
	// worker's cache footprint.  Gating never changes results, only
	// host scheduling.
	Gate BatchGate
}

// BatchGate admits one simulation slice at a time across the runs that
// share it; see SimOptions.Gate.
type BatchGate = exec.Gate

// NewBatchGate builds a gate for one batch of runs.  Goroutines
// blocked on it are served in FIFO order, so a saturated batch
// rotates round-robin, one slice per run per turn.
func NewBatchGate() BatchGate { return exec.NewBatchGate() }

// ResumeError reports that SimOptions.ResumeState could not be
// restored — the blob was corrupt, from a different program, or from
// an incompatible machine configuration.  The simulation never
// started; the caller should fall back to an older checkpoint or a
// clean run.
type ResumeError struct {
	Err error
}

func (e *ResumeError) Error() string { return fmt.Sprintf("resuming from checkpoint: %v", e.Err) }
func (e *ResumeError) Unwrap() error { return e.Err }

// Checkpoint envelope: the simulator's SaveState blob captures machine
// state but not the putc/puti output already written, so a resumed
// run alone could not reproduce the full output byte-for-byte.  The
// envelope carries both: magic, a 4-byte little-endian output length,
// the output bytes, then the simulator blob.
const checkpointMagic = "wmckpt-1"

func encodeCheckpoint(output, state []byte) []byte {
	buf := make([]byte, 0, len(checkpointMagic)+4+len(output)+len(state))
	buf = append(buf, checkpointMagic...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(output)))
	buf = append(buf, n[:]...)
	buf = append(buf, output...)
	buf = append(buf, state...)
	return buf
}

func decodeCheckpoint(blob []byte) (output, state []byte, err error) {
	head := len(checkpointMagic) + 4
	if len(blob) < head || string(blob[:len(checkpointMagic)]) != checkpointMagic {
		return nil, nil, fmt.Errorf("not a %s checkpoint envelope", checkpointMagic)
	}
	n := int(binary.LittleEndian.Uint32(blob[len(checkpointMagic):]))
	if n < 0 || head+n > len(blob) {
		return nil, nil, fmt.Errorf("checkpoint envelope output length %d overruns the %d-byte blob", n, len(blob))
	}
	return blob[head : head+n], blob[head+n:], nil
}

// UnitBreakdown is one functional unit's cycle attribution: every
// simulated cycle charged to issued work, idleness, or a specific
// stall cause.  Issued + Idle + the Stalls values sum to Total, which
// equals the run's cycle count.
type UnitBreakdown struct {
	Unit        string
	Total       int64
	Issued      int64
	Idle        int64
	Utilization float64          // issued fraction of all cycles, percent
	Stalls      map[string]int64 // stall cause -> cycles
}

// LineCost is retirement work attributed to one source line.
type LineCost struct {
	Line    int
	Retires int64
	Text    string // the source line, when the program carries its text
}

// Profile is a source-level hot-spot profile: instruction retirements
// mapped back through the debug line table.
type Profile struct {
	TotalRetires int64      // all retirement events in the run
	Attributed   int64      // retirements whose instruction has a known line
	Lines        []LineCost // hottest first
}

// AttributedPct reports the fraction of retirements with a known
// source line, in percent.
func (p *Profile) AttributedPct() float64 {
	if p.TotalRetires == 0 {
		return 0
	}
	return 100 * float64(p.Attributed) / float64(p.TotalRetires)
}

// Report renders the top lines of the profile (top <= 0 means all).
func (p *Profile) Report(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %.1f%% of %d retirements attributed to source lines\n",
		p.AttributedPct(), p.TotalRetires)
	fmt.Fprintf(&b, "%10s %6s  %s\n", "retires", "line", "source")
	for n, l := range p.Lines {
		if top > 0 && n >= top {
			break
		}
		fmt.Fprintf(&b, "%10d %6d  %s\n", l.Retires, l.Line, l.Text)
	}
	return b.String()
}

// SimResult is Result plus the telemetry of the run.
type SimResult struct {
	Result
	// Units holds the per-unit cycle attribution: IFU, IEU, FEU, then
	// one entry per stream control unit.
	Units []UnitBreakdown
	// Profile is the source-level profile (nil unless requested).
	Profile *Profile

	unitTable string
}

// UnitTable renders the per-unit breakdown as a stable aligned table
// (the output of wmsim -stats).
func (r *SimResult) UnitTable() string { return r.unitTable }

// RunWithTelemetry executes the program like Run and additionally
// collects per-unit stall attribution, an optional Chrome trace, and an
// optional source-level profile.  On simulator errors the telemetry
// collected up to the fault is still returned (and the trace still
// written): the timeline leading into a deadlock is the forensic
// record.
func RunWithTelemetry(p *Program, m Machine, o SimOptions) (SimResult, error) {
	return RunWithTelemetryContext(context.Background(), p, m, o)
}

// RunWithTelemetryContext is RunWithTelemetry with cooperative
// cancellation (see RunContext): a canceled or expired context aborts
// the simulation promptly, and the telemetry collected up to that
// point is still returned.
func RunWithTelemetryContext(ctx context.Context, p *Program, m Machine, o SimOptions) (SimResult, error) {
	img, err := sim.Link(p.rtl)
	if err != nil {
		return SimResult{}, err
	}
	cfg := simConfig(m)
	cfg.Ctx = ctx
	var out bytes.Buffer
	cfg.Output = &out
	var tr *telemetry.Trace
	if o.TraceJSON != nil {
		tr = telemetry.NewTrace()
		if o.CompileStats != nil {
			emitCompileSpans(tr, o.CompileStats)
		}
		cfg.TraceSink = tr
	}
	cfg.Profile = o.Profile
	// Pooled when no per-cycle observer is attached (sim.Acquire
	// declines tracing/profiling configs itself).
	machine := sim.Acquire(img, cfg)
	defer sim.Release(machine)
	if o.ResumeState != nil {
		priorOut, state, derr := decodeCheckpoint(o.ResumeState)
		if derr != nil {
			return SimResult{}, &ResumeError{Err: derr}
		}
		if err := machine.RestoreState(state); err != nil {
			return SimResult{}, &ResumeError{Err: err}
		}
		// Replay the output the interrupted run already produced, so
		// the spliced run's Output is byte-identical to an
		// uninterrupted one.
		out.Write(priorOut)
	}
	var onCkpt func([]byte, exec.Progress) error
	if o.OnCheckpoint != nil {
		onCkpt = func(state []byte, p exec.Progress) error {
			// Called between slices on the Run goroutine, so out is
			// quiescent.
			return o.OnCheckpoint(encodeCheckpoint(out.Bytes(), state), p)
		}
	}
	stats, rerr := exec.Run(ctx, machine, exec.Options{
		MaxWall:         o.MaxWall,
		OnProgress:      o.Progress,
		ProgressEvery:   o.ProgressEvery,
		CheckpointEvery: o.CheckpointEvery,
		OnCheckpoint:    onCkpt,
		FinalCheckpoint: o.FinalCheckpoint,
		Gate:            o.Gate,
	})
	res := SimResult{
		Result: Result{
			Cycles:       stats.Cycles,
			Instructions: stats.Instructions,
			MemReads:     stats.MemReads,
			MemWrites:    stats.MemWrites,
			StreamElems:  stats.StreamElems,
			Output:       out.String(),
		},
		unitTable: telemetry.FormatUnits(stats.Units),
	}
	for _, u := range stats.Units {
		res.Units = append(res.Units, breakdown(u))
	}
	if o.Profile {
		res.Profile = buildProfile(img, machine.Retired(), p.rtl.Source)
	}
	if tr != nil {
		if _, werr := tr.WriteTo(o.TraceJSON); werr != nil && rerr == nil {
			rerr = fmt.Errorf("writing trace: %w", werr)
		}
	}
	return res, rerr
}

func breakdown(u telemetry.Unit) UnitBreakdown {
	b := UnitBreakdown{
		Unit:        u.Name,
		Total:       u.Total(),
		Issued:      u.Issued(),
		Idle:        u.Counts[telemetry.CauseIdle],
		Utilization: u.Utilization(),
		Stalls:      map[string]int64{},
	}
	for c := int(telemetry.CauseIdle) + 1; c < telemetry.NumCauses; c++ {
		if n := u.Counts[c]; n > 0 {
			b.Stalls[telemetry.Cause(c).String()] = n
		}
	}
	return b
}

// emitCompileSpans lays the per-pass compile times end to end on the
// compile track, advancing the trace cursor so simulator events start
// after them.
func emitCompileSpans(tr *telemetry.Trace, cs *CompileStats) {
	tr.ProcessName(telemetry.PidCompile, "wm compiler")
	tr.ThreadName(telemetry.PidCompile, 1, "passes")
	for _, ps := range cs.Passes {
		tr.CompileSpan(1, ps.Name, ps.Time.Microseconds())
	}
}

// buildProfile folds per-instruction retirement counts through the
// image's line table.
func buildProfile(img *sim.Image, retired []int64, source string) *Profile {
	p := &Profile{}
	byLine := map[int]int64{}
	for idx, n := range retired {
		if n == 0 {
			continue
		}
		p.TotalRetires += n
		if line := img.Line[idx]; line > 0 {
			p.Attributed += n
			byLine[line] += n
		}
	}
	var srcLines []string
	if source != "" {
		srcLines = strings.Split(source, "\n")
	}
	for line, n := range byLine {
		lc := LineCost{Line: line, Retires: n}
		if line-1 < len(srcLines) {
			lc.Text = strings.TrimSpace(srcLines[line-1])
		}
		p.Lines = append(p.Lines, lc)
	}
	sort.Slice(p.Lines, func(i, j int) bool {
		if p.Lines[i].Retires != p.Lines[j].Retires {
			return p.Lines[i].Retires > p.Lines[j].Retires
		}
		return p.Lines[i].Line < p.Lines[j].Line
	})
	return p
}
