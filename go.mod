module wmstream

go 1.22
