// Quickstart: compile a Mini-C program with the full optimization
// pipeline, run it on the simulated WM machine, and look at what the
// compiler did.
package main

import (
	"fmt"
	"log"

	"wmstream"
)

const src = `
double a[1000], b[1000];
int n = 1000;

int main(void) {
    int i;
    double sum;
    for (i = 0; i < n; i++) {
        a[i] = (i & 15) * 0.5;
        b[i] = (i & 7) * 0.25;
    }
    sum = 0.0;
    for (i = 0; i < n; i++)
        sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}
`

func main() {
	// Compile at two levels: O1 (classic optimizations only) and O3
	// (the full paper pipeline with recurrence optimization and
	// streaming).
	for _, level := range []int{wmstream.O1, wmstream.O3} {
		prog, err := wmstream.Compile(src, level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wmstream.Run(prog, wmstream.DefaultMachine())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("O%d: output=%s  cycles=%d  memory reads=%d  stream elements=%d\n",
			level, res.Output, res.Cycles, res.MemReads, res.StreamElems)
	}

	// Show the streamed code: the dot-product loop is one instruction
	// plus a zero-cost branch.
	prog, err := wmstream.Compile(src, wmstream.O3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOptimized WM code:")
	fmt.Print(prog.FuncListing("main"))
}
