// Dotproduct: reproduce the paper's headline claim — "with a
// relatively simple hardware implementation, the code will produce the
// dot product in N clock cycles".
//
// The whole program includes array setup, so the example measures the
// *marginal* cost of a dot-product pass: it runs the kernel once and
// eleven times, and divides the cycle difference by 10·N.  With
// streaming the loop is a single FEU instruction plus a zero-cost
// branch, and the marginal cost approaches one cycle per element.
package main

import (
	"fmt"
	"log"

	"wmstream"
)

func src(n, passes int) string {
	return fmt.Sprintf(`
double a[%d], b[%d];
int n = %d;

int main(void) {
    int i, p;
    double sum;
    for (i = 0; i < n; i++) {
        a[i] = (i & 15) * 0.5;
        b[i] = (i & 7) * 0.25;
    }
    sum = 0.0;
    for (p = 0; p < %d; p++)
        for (i = 0; i < n; i++)
            sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}
`, n, n, n, passes)
}

func cycles(n, passes, level int) int64 {
	prog, err := wmstream.Compile(src(n, passes), level)
	if err != nil {
		log.Fatal(err)
	}
	res, err := wmstream.Run(prog, wmstream.DefaultMachine())
	if err != nil {
		log.Fatal(err)
	}
	return res.Cycles
}

func main() {
	fmt.Println("Marginal cycles per element of one dot-product pass")
	fmt.Println("     N     unstreamed(O2)   streamed(O3)")
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		marginal := func(level int) float64 {
			c1 := cycles(n, 1, level)
			c11 := cycles(n, 11, level)
			return float64(c11-c1) / float64(10*n)
		}
		fmt.Printf("%6d       %8.2f       %8.2f\n", n, marginal(wmstream.O2), marginal(wmstream.O3))
	}

	prog, err := wmstream.Compile(src(4096, 1), wmstream.O3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe compiled program (the dot loop is one instruction + jnd):")
	fmt.Print(prog.FuncListing("main"))
}
