// Livermore: walk the paper's running example — the 5th Livermore loop
// (tri-diagonal elimination below the diagonal) — through the three
// optimization stages of Figures 4, 5 and 7, printing the code and the
// simulated cycle counts at each stage.
package main

import (
	"fmt"
	"log"

	"wmstream"
)

const src = `
double x[5000], y[5000], z[5000];
int n = 5000;

void setup(void) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = ((i & 7) + 1) * 0.25;
        y[i] = ((i & 3) + 1) * 0.5;
        z[i] = 0.001;
    }
}

void kernel(void) {
    int i;
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
}

int main(void) {
    setup();
    kernel();
    putd(x[n-1]);
    return 0;
}
`

func main() {
	stages := []struct {
		name string
		opts wmstream.Options
	}{
		{"Figure 4 (standard optimizations)", wmstream.Options{
			Standard: true, Combine: true}},
		{"Figure 5 (+ recurrence optimization)", wmstream.Options{
			Standard: true, Combine: true, Recurrence: true}},
		{"Figure 7 (+ streaming)", wmstream.Options{
			Standard: true, Combine: true, Recurrence: true,
			Stream: true, StrengthReduce: true}},
	}
	for _, st := range stages {
		prog, err := wmstream.CompileOptions(src, st.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wmstream.Run(prog, wmstream.DefaultMachine())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", st.name)
		fmt.Printf("cycles=%d  memory reads=%d  stream elements=%d  result=%s\n\n",
			res.Cycles, res.MemReads, res.StreamElems, res.Output)
		fmt.Print(prog.FuncListing("kernel"))
		fmt.Println()
	}
}
