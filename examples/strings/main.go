// Strings: the paper's "pleasant surprise" — streaming shows up in
// ordinary systems code, not just numeric kernels.  The Unix utilities
// it lists (cal, compact, od, sort, diff, nroff, yacc) used streams for
// copying strings and structures, searching, and initializing arrays.
// This example demonstrates those patterns: a string copy, a buffer
// fill, and a table scan, each of which the optimizer converts to
// stream instructions.
package main

import (
	"fmt"
	"log"
	"strings"

	"wmstream"
)

const src = `
char msg[64] = "streams are not just for matrix arithmetic";
char buf[64];
int tab[256];
int n = 256;

int copystr(void) {
    int i;
    for (i = 0; i < 64; i++)
        buf[i] = msg[i];
    return buf[0];
}

void filltab(void) {
    int i;
    for (i = 0; i < n; i++)
        tab[i] = i * 3;
}

int sumtab(void) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + tab[i];
    return s;
}

int main(void) {
    int i;
    copystr();
    filltab();
    puti(sumtab());
    putchar(10);
    for (i = 0; buf[i]; i++)
        putchar(buf[i]);
    putchar(10);
    return 0;
}
`

func main() {
	for _, level := range []int{wmstream.O2, wmstream.O3} {
		prog, err := wmstream.Compile(src, level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wmstream.Run(prog, wmstream.DefaultMachine())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("O%d: cycles=%d  stream elements=%d\n", level, res.Cycles, res.StreamElems)
		if level == wmstream.O3 {
			fmt.Printf("\nprogram output:\n%s\n", res.Output)
			listing := prog.FuncListing("copystr")
			fmt.Println("copystr compiles to a pair of byte streams:")
			fmt.Print(listing)
			if !strings.Contains(listing, "sin8") {
				fmt.Println("(unexpected: no byte stream found)")
			}
			main := prog.FuncListing("main")
			fmt.Println("\nand main's NUL-terminated scan loop uses *infinite*")
			fmt.Println("streams with stream-stops at the exit (paper step 2i):")
			fmt.Print(main)
			if !strings.Contains(main, "sstop") {
				fmt.Println("(unexpected: no infinite stream found)")
			}
		}
	}
}
