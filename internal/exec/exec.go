// Package exec is the engine-agnostic execution core shared by every
// consumer of the simulator: the wmsim CLI, the wmrepro benchmark
// harness, and wmserved's synchronous and asynchronous tiers all
// drive a sim.Machine through a Runner instead of hand-rolling a
// run-to-completion loop.
//
// A Runner advances the machine in bounded cycle slices.  Between
// slices — and only between slices, so the simulation itself stays
// bit-identical to an uninterrupted run — it can observe a wall-clock
// budget, publish progress snapshots, write checkpoints
// (sim.Machine.SaveState), honor cooperative pause/resume, and notice
// context cancellation even for machines without Config.Ctx wired.
package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wmstream/internal/obs"
	"wmstream/internal/sim"
)

// DefaultSlice is the per-slice cycle budget when Options.Slice is
// unset: large enough that slice bookkeeping vanishes against the
// cost of simulating, small enough that budgets, progress, and
// cancellation are checked many times per host second.
const DefaultSlice = 1 << 16

// DefaultProgressEvery is the progress-callback throttle when
// Options.ProgressEvery is unset.
const DefaultProgressEvery = 500 * time.Millisecond

// Progress is a point-in-time snapshot of a run.
type Progress struct {
	// Cycles is the live simulated clock (unlike sim.Stats.Cycles it
	// is populated while the run is still going).
	Cycles       int64
	Instructions int64
	MemReads     int64
	MemWrites    int64
	StreamElems  int64
	// Elapsed is host wall-clock time since Run started.
	Elapsed time.Duration
	// Done marks the final snapshot of a Run call — completion,
	// failure, cancellation, or budget exhaustion.  Every stop path
	// emits exactly one, so observers always see terminal counts.
	Done bool
}

// Options configures a Runner.  The zero value runs to completion
// with default slicing and no observers.
type Options struct {
	// Slice is the cycle budget of one slice (<= 0 uses DefaultSlice).
	Slice int64
	// MaxWall bounds host wall-clock time; when exceeded the run stops
	// with a *WallBudgetError and the partial statistics stand.
	MaxWall time.Duration
	// OnProgress, when non-nil, receives throttled progress snapshots
	// plus one final Done snapshot, all from the Run goroutine.
	OnProgress func(Progress)
	// ProgressEvery is the minimum interval between OnProgress calls
	// (<= 0 uses DefaultProgressEvery).
	ProgressEvery time.Duration
	// CheckpointEvery, when > 0, serializes machine state roughly
	// every that many simulated cycles and hands it to OnCheckpoint.
	CheckpointEvery int64
	// OnCheckpoint receives each checkpoint; a non-nil return aborts
	// the run with that error.
	OnCheckpoint func(state []byte, p Progress) error
	// FinalCheckpoint, together with OnCheckpoint, serializes one last
	// checkpoint when the run is stopped by context cancellation —
	// before the machine is finished — so a draining service can
	// resume the run after a restart instead of replaying it from
	// cycle zero.  Best effort: a failed final save never masks the
	// cancellation error.
	FinalCheckpoint bool
	// Gate, when non-nil, is held around each simulation slice.  A
	// group of runners sharing one gate (see NewBatchGate) interleaves
	// slice-by-slice on a single admission token instead of competing
	// for cores — the batch-mode seam.  Slicing already guarantees
	// bit-identity, so gating changes scheduling, never results.
	Gate Gate
}

// WallBudgetError reports a run stopped by Options.MaxWall.  The
// machine state is intact; the caller may resume it with another Run.
type WallBudgetError struct {
	Budget  time.Duration
	Elapsed time.Duration
	Cycles  int64 // simulated cycles completed when the budget expired
}

func (e *WallBudgetError) Error() string {
	return fmt.Sprintf("exec: wall-clock budget %v exhausted after %v (%d cycles simulated)",
		e.Budget, e.Elapsed.Round(time.Millisecond), e.Cycles)
}

// Runner drives one machine.  Run is single-shot per goroutine;
// Pause, Resume, and Progress may be called concurrently with it.
type Runner struct {
	m *sim.Machine
	o Options

	mu     sync.Mutex
	paused bool
	resume chan struct{}
	latest Progress
}

// New builds a Runner over the machine.
func New(m *sim.Machine, o Options) *Runner {
	if o.Slice <= 0 {
		o.Slice = DefaultSlice
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = DefaultProgressEvery
	}
	return &Runner{m: m, o: o}
}

// Run is shorthand for New(m, o).Run(ctx).
func Run(ctx context.Context, m *sim.Machine, o Options) (sim.Stats, error) {
	return New(m, o).Run(ctx)
}

// Run drives the machine until completion, failure, cancellation, or
// wall-budget exhaustion, and returns the machine's statistics as of
// the stop.  Abandoned runs (cancellation, budget) flush any trace
// sink so the partial timeline survives; their machine remains
// resumable unless it reached a terminal state itself.
func (r *Runner) Run(ctx context.Context) (sim.Stats, error) {
	start := time.Now()
	lastEmit := start
	lastCkpt := r.m.Progress().Cycles
	// When the context carries a request trace (internal/obs), each
	// slice and checkpoint becomes a child span; traceSpan is nil on
	// untraced runs and every obs call below no-ops.
	traceSpan := obs.FromContext(ctx)
	for {
		// Cooperative pause parks the loop between slices until Resume
		// or cancellation.
		if gate := r.pauseGate(); gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
		if err := ctx.Err(); err != nil {
			if r.o.FinalCheckpoint && r.o.OnCheckpoint != nil {
				// Snapshot before Finish: a finished machine refuses
				// SaveState.
				if state, serr := r.m.SaveState(); serr == nil {
					r.o.OnCheckpoint(state, r.snapshot(false, time.Since(start)))
				}
			}
			r.m.Finish()
			r.emit(r.snapshot(true, time.Since(start)))
			return r.m.Stats(), err
		}
		sliceStart := r.m.Progress().Cycles
		var sliceSpan *obs.Span
		if traceSpan != nil {
			sliceSpan = traceSpan.StartChild("sim.slice")
			sliceSpan.SetKind(obs.KindSim)
		}
		if r.o.Gate != nil {
			r.o.Gate.Acquire()
		}
		done, err := r.m.RunSlice(r.o.Slice)
		if r.o.Gate != nil {
			r.o.Gate.Release()
		}
		now := time.Now()
		p := r.snapshot(done || err != nil, now.Sub(start))
		if sliceSpan != nil {
			sliceSpan.SetAttrInt("cycles", p.Cycles-sliceStart)
			sliceSpan.SetAttrInt("cycle_start", sliceStart)
			if err != nil {
				sliceSpan.SetError(err.Error())
			}
			sliceSpan.End()
		}
		if done || err != nil {
			r.emit(p)
			return r.m.Stats(), err
		}
		if r.o.OnProgress != nil && now.Sub(lastEmit) >= r.o.ProgressEvery {
			lastEmit = now
			r.emit(p)
		}
		if r.o.CheckpointEvery > 0 && p.Cycles-lastCkpt >= r.o.CheckpointEvery {
			lastCkpt = p.Cycles
			ckptSpan := traceSpan.StartChild("checkpoint")
			state, serr := r.m.SaveState()
			if serr == nil && r.o.OnCheckpoint != nil {
				serr = r.o.OnCheckpoint(state, p)
			}
			ckptSpan.SetAttrInt("cycle", p.Cycles)
			if serr != nil {
				ckptSpan.SetError(serr.Error())
			}
			ckptSpan.End()
			if serr != nil {
				r.m.Finish()
				r.emit(r.snapshot(true, now.Sub(start)))
				return r.m.Stats(), fmt.Errorf("exec: checkpoint at cycle %d: %w", p.Cycles, serr)
			}
		}
		if r.o.MaxWall > 0 {
			if elapsed := now.Sub(start); elapsed > r.o.MaxWall {
				r.m.Finish()
				r.emit(r.snapshot(true, elapsed))
				return r.m.Stats(), &WallBudgetError{Budget: r.o.MaxWall, Elapsed: elapsed, Cycles: p.Cycles}
			}
		}
	}
}

// Progress returns the most recent snapshot (the zero Progress before
// the first slice completes).  Safe to call concurrently with Run.
func (r *Runner) Progress() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest
}

// Pause asks Run to park before its next slice.  Idempotent.
func (r *Runner) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.paused {
		r.paused = true
		r.resume = make(chan struct{})
	}
}

// Resume releases a paused Run.  Idempotent.
func (r *Runner) Resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.paused {
		r.paused = false
		close(r.resume)
		r.resume = nil
	}
}

// pauseGate returns the channel Run must wait on, or nil when not
// paused.
func (r *Runner) pauseGate() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.paused {
		return nil
	}
	return r.resume
}

func (r *Runner) snapshot(done bool, elapsed time.Duration) Progress {
	st := r.m.Progress()
	p := Progress{
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		MemReads:     st.MemReads,
		MemWrites:    st.MemWrites,
		StreamElems:  st.StreamElems,
		Elapsed:      elapsed,
		Done:         done,
	}
	r.mu.Lock()
	r.latest = p
	r.mu.Unlock()
	return p
}

func (r *Runner) emit(p Progress) {
	if r.o.OnProgress != nil {
		r.o.OnProgress(p)
	}
}
