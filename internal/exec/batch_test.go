package exec_test

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"wmstream/internal/exec"
	"wmstream/internal/sim"
)

// TestRunBatchBitIdentity: a batch of gated machines produces exactly
// the statistics and output of dedicated uninterrupted runs.
func TestRunBatchBitIdentity(t *testing.T) {
	const n = 300
	wantStats, wantOut := uninterrupted(t, n)

	const batch = 4
	ms := make([]*sim.Machine, batch)
	outs := make([]interface{ String() string }, batch)
	for k := range ms {
		m, out := machine(t, n)
		ms[k], outs[k] = m, out
	}
	results := exec.RunBatch(context.Background(), ms, exec.Options{Slice: 128})
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("machine %d: %v", k, r.Err)
		}
		if !reflect.DeepEqual(r.Stats, wantStats) {
			t.Errorf("machine %d stats mismatch:\ndedicated: %+v\nbatched:   %+v", k, wantStats, r.Stats)
		}
		if got := outs[k].String(); got != wantOut {
			t.Errorf("machine %d output %q, want %q", k, got, wantOut)
		}
	}
}

// TestGateSerializesSlices: with a shared gate, no two slices run
// concurrently.
func TestGateSerializesSlices(t *testing.T) {
	const n = 300
	var inSlice, maxInSlice atomic.Int32
	gate := exec.NewBatchGate()
	probe := countingGate{Gate: gate, in: &inSlice, max: &maxInSlice}

	ms := make([]*sim.Machine, 3)
	for k := range ms {
		ms[k], _ = machine(t, n)
	}
	done := make(chan struct{})
	for _, m := range ms {
		m := m
		go func() {
			defer func() { done <- struct{}{} }()
			if _, err := exec.Run(context.Background(), m, exec.Options{Slice: 64, Gate: probe}); err != nil {
				t.Errorf("gated run: %v", err)
			}
		}()
	}
	for range ms {
		<-done
	}
	if got := maxInSlice.Load(); got != 1 {
		t.Errorf("max concurrent slices = %d, want 1", got)
	}
}

type countingGate struct {
	exec.Gate
	in, max *atomic.Int32
}

func (g countingGate) Acquire() {
	g.Gate.Acquire()
	if v := g.in.Add(1); v > g.max.Load() {
		g.max.Store(v)
	}
}

func (g countingGate) Release() {
	g.in.Add(-1)
	g.Gate.Release()
}
