package exec_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"wmstream/internal/bench"
	"wmstream/internal/exec"
	"wmstream/internal/sim"
)

// The external test package lets these tests build machines through
// internal/bench (which itself runs through exec) without an import
// cycle.

// machine compiles the Livermore loop at O0 (the slowest code, so
// runs span many slices) and returns a fresh machine plus its output
// buffer.
func machine(t *testing.T, n int) (*sim.Machine, *bytes.Buffer) {
	t.Helper()
	rp, err := bench.Compile(bench.Livermore5(n), 0)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	cfg := sim.DefaultConfig()
	var out bytes.Buffer
	cfg.Output = &out
	return sim.New(img, cfg), &out
}

// uninterrupted is the baseline every sliced/budgeted/paused run must
// reproduce exactly.
func uninterrupted(t *testing.T, n int) (sim.Stats, string) {
	t.Helper()
	m, out := machine(t, n)
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return stats, out.String()
}

func TestRunMatchesUninterrupted(t *testing.T) {
	const n = 500
	wantStats, wantOut := uninterrupted(t, n)
	m, out := machine(t, n)
	stats, err := exec.Run(context.Background(), m, exec.Options{Slice: 64})
	if err != nil {
		t.Fatalf("exec.Run: %v", err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch:\nbaseline: %+v\nexec:     %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
}

// TestWallBudget: an exhausted budget stops the run with a
// *WallBudgetError carrying the partial cycle count, and the machine
// stays resumable — a second Run completes it bit-identically.
func TestWallBudget(t *testing.T) {
	const n = 2000
	wantStats, wantOut := uninterrupted(t, n)
	m, out := machine(t, n)
	_, err := exec.Run(context.Background(), m, exec.Options{Slice: 64, MaxWall: time.Nanosecond})
	var wb *exec.WallBudgetError
	if !errors.As(err, &wb) {
		t.Fatalf("err = %v, want *WallBudgetError", err)
	}
	if wb.Cycles <= 0 {
		t.Errorf("budget error reports %d cycles, want > 0", wb.Cycles)
	}
	if wb.Budget != time.Nanosecond {
		t.Errorf("budget error reports budget %v, want 1ns", wb.Budget)
	}
	stats, err := exec.Run(context.Background(), m, exec.Options{})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch after budget resume:\nbaseline: %+v\nresumed:  %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
}

// TestProgressEmission: snapshots are monotonic in cycles and the
// final one is marked Done with the terminal counts.
func TestProgressEmission(t *testing.T) {
	const n = 500
	m, _ := machine(t, n)
	var got []exec.Progress
	stats, err := exec.Run(context.Background(), m, exec.Options{
		Slice:         64,
		ProgressEvery: time.Nanosecond,
		OnProgress:    func(p exec.Progress) { got = append(got, p) },
	})
	if err != nil {
		t.Fatalf("exec.Run: %v", err)
	}
	if len(got) < 2 {
		t.Fatalf("got %d progress snapshots, want several", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Cycles < got[i-1].Cycles {
			t.Errorf("snapshot %d went backwards: %d after %d", i, got[i].Cycles, got[i-1].Cycles)
		}
		if got[i-1].Done {
			t.Errorf("snapshot %d arrived after a Done snapshot", i)
		}
	}
	last := got[len(got)-1]
	if !last.Done {
		t.Errorf("final snapshot not marked Done")
	}
	if last.Cycles != stats.Cycles || last.Instructions != stats.Instructions {
		t.Errorf("final snapshot (%d cycles, %d instr) disagrees with stats (%d, %d)",
			last.Cycles, last.Instructions, stats.Cycles, stats.Instructions)
	}
}

// TestCheckpointResume: a run resumed from its last mid-flight
// checkpoint finishes with the same statistics and memory as the
// original.
func TestCheckpointResume(t *testing.T) {
	const n = 2000
	rp, err := bench.Compile(bench.Livermore5(n), 0)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	cfg := sim.DefaultConfig()
	var out bytes.Buffer
	cfg.Output = &out
	m := sim.New(img, cfg)

	var lastState []byte
	var lastCkpt exec.Progress
	stats, err := exec.Run(context.Background(), m, exec.Options{
		Slice:           256,
		CheckpointEvery: 1000,
		OnCheckpoint: func(state []byte, p exec.Progress) error {
			lastState = append(lastState[:0], state...)
			lastCkpt = p
			return nil
		},
	})
	if err != nil {
		t.Fatalf("exec.Run: %v", err)
	}
	if lastState == nil {
		t.Fatal("no checkpoint was taken")
	}
	if lastCkpt.Cycles <= 0 || lastCkpt.Cycles >= stats.Cycles {
		t.Fatalf("last checkpoint at cycle %d, want mid-run (total %d)", lastCkpt.Cycles, stats.Cycles)
	}

	var out2 bytes.Buffer
	cfg2 := sim.DefaultConfig()
	cfg2.Output = &out2
	m2 := sim.New(img, cfg2)
	if err := m2.RestoreState(lastState); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	stats2, err := exec.Run(context.Background(), m2, exec.Options{})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(stats2, stats) {
		t.Errorf("stats mismatch:\noriginal: %+v\nresumed:  %+v", stats, stats2)
	}
	if !bytes.Equal(m.Mem(), m2.Mem()) {
		t.Errorf("final memory images differ")
	}
	// Livermore prints only at the end, after the checkpoint: the
	// resumed run must produce the identical tail.
	if out2.String() != out.String() {
		t.Errorf("output %q, want %q", out2.String(), out.String())
	}
}

// TestCheckpointCallbackError: a failing OnCheckpoint aborts the run
// with a wrapped error.
func TestCheckpointCallbackError(t *testing.T) {
	m, _ := machine(t, 2000)
	sentinel := errors.New("sink full")
	_, err := exec.Run(context.Background(), m, exec.Options{
		Slice:           256,
		CheckpointEvery: 500,
		OnCheckpoint:    func([]byte, exec.Progress) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestPauseResume: Pause parks the loop between slices (cycles stop
// advancing), Resume releases it, and the completed run is still
// bit-identical.
func TestPauseResume(t *testing.T) {
	const n = 4000
	wantStats, wantOut := uninterrupted(t, n)
	m, out := machine(t, n)
	r := exec.New(m, exec.Options{Slice: 64})
	r.Pause()

	var (
		stats sim.Stats
		rerr  error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, rerr = r.Run(context.Background())
	}()

	// Parked before the first slice: progress must stay at zero.
	time.Sleep(20 * time.Millisecond)
	if got := r.Progress().Cycles; got != 0 {
		t.Errorf("paused runner advanced to cycle %d", got)
	}
	r.Resume()
	wg.Wait()
	if rerr != nil {
		t.Fatalf("run: %v", rerr)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch:\nbaseline: %+v\npaused:   %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
}

// TestCancel: a canceled context stops the run between slices with the
// context's error; the machine remains resumable.
func TestCancel(t *testing.T) {
	const n = 4000
	wantStats, wantOut := uninterrupted(t, n)
	m, out := machine(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	_, err := exec.Run(ctx, m, exec.Options{
		Slice:         64,
		ProgressEvery: time.Nanosecond,
		OnProgress: func(p exec.Progress) {
			if !fired && !p.Done {
				fired = true
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	stats, err := exec.Run(context.Background(), m, exec.Options{})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch after cancel resume:\nbaseline: %+v\nresumed:  %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
}
