package exec

import (
	"context"

	"wmstream/internal/sim"
)

// Batch mode.  A serving process that dedicates one goroutine (and
// effectively one core) per simulation scales poorly when requests are
// plentiful and cores are not: each extra concurrent run adds
// scheduler pressure and cache thrash without adding throughput.
// Batch mode inverts the arrangement — N machines share one admission
// token and take turns, one bounded slice at a time, in FIFO order.
// One worker then sustains N interleaved simulations with the cache
// locality of sequential execution, and per-run progress, checkpoints
// and cancellation all keep working because they live between slices.
//
// The simulation results are bit-identical to dedicated execution:
// slicing never changes what a cycle does, only when the host runs it.

// Gate admits one slice at a time.  Acquire blocks until the token is
// free; Release returns it.  Implementations must be safe for
// concurrent use.
type Gate interface {
	Acquire()
	Release()
}

// batchGate is a one-token channel gate.  Goroutines blocked in
// Acquire are served in FIFO order (the runtime queues channel
// waiters), which yields the blocked round-robin rotation batch mode
// wants — no runner starves, and each runs exactly one slice per turn
// once the batch saturates.
type batchGate chan struct{}

// NewBatchGate builds a gate shared by one batch of runners.
func NewBatchGate() Gate {
	g := make(batchGate, 1)
	g <- struct{}{}
	return g
}

func (g batchGate) Acquire() { <-g }
func (g batchGate) Release() { g <- struct{}{} }

// BatchResult is one machine's outcome from RunBatch, index-matched
// with the input slice.
type BatchResult struct {
	Stats sim.Stats
	Err   error
}

// RunBatch drives every machine to completion on one shared gate and
// returns their outcomes in input order.  Options apply to each runner
// (callbacks, when set, are invoked from that machine's goroutine);
// o.Gate is overridden with the batch's own gate.
func RunBatch(ctx context.Context, ms []*sim.Machine, o Options) []BatchResult {
	gate := NewBatchGate()
	results := make([]BatchResult, len(ms))
	done := make(chan int)
	for k, m := range ms {
		k, m := k, m
		ro := o
		ro.Gate = gate
		go func() {
			st, err := Run(ctx, m, ro)
			results[k] = BatchResult{Stats: st, Err: err}
			done <- k
		}()
	}
	for range ms {
		<-done
	}
	return results
}
