package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoint blobs (sim.Machine.SaveState output) are spilled to a
// content-addressed directory: the file name is the SHA-256 of the
// blob, written via temp-file-plus-rename so a crash mid-spill leaves
// either the complete blob or nothing.  Loads re-hash the bytes, so
// any on-disk corruption — bit flip, truncation, a foreign file
// renamed into place — is detected before the simulator ever sees the
// blob, and the caller falls back to an older checkpoint or a clean
// restart.

// CheckpointRef names one spilled checkpoint.
type CheckpointRef struct {
	// Hash is the lowercase hex SHA-256 of the blob (also its file
	// name).
	Hash string `json:"hash"`
	// Cycles is the simulated clock at the checkpoint, so recovery can
	// report how much work resumption saved.
	Cycles int64 `json:"cycles"`
	// Bytes is the blob size.
	Bytes int64 `json:"bytes"`
}

const checkpointSubdir = "checkpoints"

func (s *Store) checkpointPath(hash string) string {
	return filepath.Join(s.dir, checkpointSubdir, hash+".ckpt")
}

// SaveCheckpoint spills one state blob and returns its reference.
// The write is fault-checked: the crash-restart harness tears
// checkpoint spills exactly like journal appends.
func (s *Store) SaveCheckpoint(blob []byte, cycles int64) (CheckpointRef, error) {
	if s == nil {
		return CheckpointRef{}, fmt.Errorf("durable: no store")
	}
	sum := sha256.Sum256(blob)
	ref := CheckpointRef{Hash: hex.EncodeToString(sum[:]), Cycles: cycles, Bytes: int64(len(blob))}
	path := s.checkpointPath(ref.Hash)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an identical blob is already durable.
		return ref, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return CheckpointRef{}, err
	}
	defer os.Remove(tmp.Name())
	if _, err := s.faults.write(tmp, blob); err != nil {
		tmp.Close()
		return CheckpointRef{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return CheckpointRef{}, err
	}
	if err := tmp.Close(); err != nil {
		return CheckpointRef{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return CheckpointRef{}, err
	}
	return ref, nil
}

// LoadCheckpoint reads a spilled blob back, verifying both the size
// and the content hash against the reference.
func (s *Store) LoadCheckpoint(ref CheckpointRef) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("durable: no store")
	}
	blob, err := os.ReadFile(s.checkpointPath(ref.Hash))
	if err != nil {
		return nil, err
	}
	if int64(len(blob)) != ref.Bytes {
		return nil, fmt.Errorf("durable: checkpoint %.12s is %d bytes, expected %d (truncated?)",
			ref.Hash, len(blob), ref.Bytes)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != ref.Hash {
		return nil, fmt.Errorf("durable: checkpoint %.12s fails content verification (corrupt blob)", ref.Hash)
	}
	return blob, nil
}

// RemoveCheckpoint deletes a blob that no live job references.  Best
// effort: a blob that lingers is reclaimed by the next boot's sweep.
func (s *Store) RemoveCheckpoint(ref CheckpointRef) {
	if s == nil || ref.Hash == "" {
		return
	}
	os.Remove(s.checkpointPath(ref.Hash))
}

// sweepCheckpoints removes blobs (and stray spill temp files) that no
// recovered record references.  Called once at open, after replay.
func (s *Store) sweepCheckpoints(live map[string]bool) (removed int) {
	dir := filepath.Join(s.dir, checkpointSubdir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".spill-"):
		case strings.HasSuffix(name, ".ckpt") && !live[strings.TrimSuffix(name, ".ckpt")]:
		default:
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}
