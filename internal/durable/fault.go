package durable

import (
	"fmt"
	"io"
	"sync"
)

// FaultPoints injects write failures at chosen points, driving the
// crash-restart harness: every journal append and checkpoint spill
// counts as one write op, and the nth op can be made to fail cleanly,
// write a short prefix, or tear mid-write and wedge the store as if
// the process had been killed at that instant.
//
// The zero value (and a nil *FaultPoints) injects nothing.
type FaultPoints struct {
	// FailAt makes the nth write op (1-based) return an error without
	// writing anything — an ordinary I/O failure the store survives by
	// degrading to memory-only mode.
	FailAt int
	// ShortAt makes the nth write op write roughly half its bytes and
	// then return an error — a disk-full spill.
	ShortAt int
	// TornAt makes the nth write op write roughly half its bytes and
	// wedge the store: it and every later op fail with ErrCrashed,
	// simulating kill -9 mid-write.  Recovery must truncate the torn
	// frame and lose nothing that was acknowledged.
	TornAt int

	mu      sync.Mutex
	ops     int
	crashed bool
}

// write performs one fault-checked write op.  A nil receiver writes
// straight through.
func (f *FaultPoints) write(w io.Writer, p []byte) (int, error) {
	if f == nil {
		return w.Write(p)
	}
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	f.ops++
	op := f.ops
	torn := f.TornAt > 0 && op == f.TornAt
	if torn {
		f.crashed = true
	}
	f.mu.Unlock()
	switch {
	case f.FailAt > 0 && op == f.FailAt:
		return 0, fmt.Errorf("durable: injected write failure at op %d", op)
	case f.ShortAt > 0 && op == f.ShortAt:
		n, _ := w.Write(p[:len(p)/2])
		return n, fmt.Errorf("durable: injected short write at op %d", op)
	case torn:
		n, _ := w.Write(p[:len(p)/2])
		return n, ErrCrashed
	}
	return w.Write(p)
}

// Kill wedges the store at a record boundary — kill -9 between
// writes.  Every subsequent operation fails with ErrCrashed.
func (f *FaultPoints) Kill() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Crashed reports whether a torn-write fault or Kill has fired.
func (f *FaultPoints) Crashed() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns how many write ops have been observed, so a harness can
// pick a randomized crash point within the real op range.
func (f *FaultPoints) Ops() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}
