package durable

import (
	"bytes"
	"testing"
)

// FuzzJournal feeds arbitrary bytes to the frame decoder.  The
// journal's contract is that any byte string — a crash can leave the
// file in any state — decodes to some clean prefix without panicking,
// and that every record it does return round-trips through the
// encoder.
func FuzzJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame([]byte(`{"id":"a","state":"queued"}`)))
	two := append(encodeFrame([]byte("first")), encodeFrame([]byte("second"))...)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	flipped := append([]byte(nil), two...)
	flipped[frameHeader+2] ^= 0x10 // corrupt first payload
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length word

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, corrupt := decodeFrames(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good = %d outside [0, %d]", good, len(data))
		}
		if corrupt < 0 {
			t.Fatalf("corrupt = %d", corrupt)
		}
		// Re-encoding the recovered records and decoding again must
		// yield the same records: recovery is idempotent.
		var rebuilt []byte
		for _, r := range recs {
			rebuilt = append(rebuilt, encodeFrame(r)...)
		}
		again, good2, corrupt2 := decodeFrames(rebuilt)
		if good2 != len(rebuilt) || corrupt2 != 0 || len(again) != len(recs) {
			t.Fatalf("re-encoded stream did not decode cleanly: good=%d/%d corrupt=%d recs=%d/%d",
				good2, len(rebuilt), corrupt2, len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], again[i]) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
	})
}
