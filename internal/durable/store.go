package durable

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
)

// Mode is the store's durability state.
type Mode int

const (
	// ModeDurable means appends reach the journal.
	ModeDurable Mode = iota
	// ModeDegraded means a write error demoted the store to
	// memory-only operation: the service keeps running, jobs keep
	// executing, but state transitions are no longer persisted and a
	// crash will lose them.  Health and metrics report the demotion.
	ModeDegraded
	// ModeCrashed means fault injection simulated a process death;
	// every operation fails with ErrCrashed.
	ModeCrashed
)

func (m Mode) String() string {
	switch m {
	case ModeDurable:
		return "durable"
	case ModeDegraded:
		return "degraded"
	default:
		return "crashed"
	}
}

// JobRecord is one journaled job state snapshot.  The journal is
// last-wins: every transition appends the job's full current state,
// and recovery reduces the record stream to the latest record per
// job.  State "deleted" tombstones a job out of the live set.
type JobRecord struct {
	Seq     int64  `json:"seq"` // submission order, preserved across restarts
	ID      string `json:"id"`
	State   string `json:"state"` // queued|running|done|failed|canceled|deleted
	Tenant  string `json:"tenant,omitempty"`
	Gen     int64  `json:"gen,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// TraceID carries the job's request trace across restarts, so a
	// crash-resumed job continues under the same end-to-end trace ID.
	TraceID string `json:"trace_id,omitempty"`
	// Request is the original POST /jobs body, re-runnable verbatim.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the terminal run response (state "done").
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Diags carry the terminal failure (state "failed").
	Error string          `json:"error,omitempty"`
	Diags json.RawMessage `json:"diags,omitempty"`
	// ExpiresUnixMs is the TTL deadline of a terminal record.
	ExpiresUnixMs int64 `json:"expires_unix_ms,omitempty"`
	// Checkpoint and PrevCheckpoint reference the newest and
	// second-newest spilled state blobs; resume tries them in order.
	Checkpoint     *CheckpointRef `json:"checkpoint,omitempty"`
	PrevCheckpoint *CheckpointRef `json:"prev_checkpoint,omitempty"`
}

// Options configures Open.
type Options struct {
	// Dir is the job-state directory (journal segments plus a
	// checkpoints/ subdirectory).  Required.
	Dir string
	// Fsync selects the journal flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// SegmentBytes is the journal rotation threshold (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// Faults injects write failures for the crash-restart harness.
	Faults *FaultPoints
	// Logger receives truncation/degradation warnings (default:
	// slog.Default).
	Logger *slog.Logger
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Jobs holds the latest record of every live (non-deleted) job, in
	// submission order.
	Jobs []JobRecord
	// Replay is the raw journal replay accounting.
	Replay ReplayStats
	// CheckpointsSwept counts orphaned checkpoint blobs removed.
	CheckpointsSwept int
	// MaxSeq is the highest submission sequence seen; the store issues
	// new records from MaxSeq+1.
	MaxSeq int64
}

// Store is the durable job state store: a WAL of JobRecords plus the
// checkpoint blob directory.  All methods are safe for concurrent
// use.  A Store survives its own write failures by degrading (see
// Mode); it never turns an I/O error into a service outage.
type Store struct {
	dir    string
	faults *FaultPoints
	logger *slog.Logger

	mu       sync.Mutex
	journal  *journal
	mode     Mode
	reason   string            // why the store degraded
	live     map[string][]byte // id -> latest marshaled record (for compaction)
	liveSeq  map[string]int64  // id -> seq (for compaction ordering)
	segMax   int64
	degraded int64 // appends dropped since degradation
}

// Open replays the journal under dir and returns the store plus what
// it recovered.  A fresh directory is created as needed.  Open fails
// only when the directory itself is unusable; per-record damage is
// absorbed into the Recovery counts.
func Open(o Options) (*Store, *Recovery, error) {
	if o.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(filepath.Join(o.Dir, checkpointSubdir), 0o755); err != nil {
		return nil, nil, err
	}
	j, raw, replay, err := openJournal(o.Dir, o.Fsync, o.SegmentBytes, o.Faults)
	if err != nil {
		return nil, nil, err
	}
	if replay.TruncatedTails > 0 || replay.CorruptRecords > 0 {
		o.Logger.Warn("durable: journal damage absorbed",
			"torn_tails", replay.TruncatedTails,
			"truncated_bytes", replay.TruncatedBytes,
			"corrupt_records", replay.CorruptRecords)
	}

	s := &Store{
		dir:     o.Dir,
		faults:  o.Faults,
		logger:  o.Logger,
		journal: j,
		live:    make(map[string][]byte),
		liveSeq: make(map[string]int64),
		segMax:  o.SegmentBytes,
	}
	rec := &Recovery{Replay: replay}

	// Last-wins reduction: later records overwrite earlier ones; a
	// "deleted" record tombstones the job.  Undecodable records are
	// counted as corrupt and skipped.
	for _, payload := range raw {
		var r JobRecord
		if err := json.Unmarshal(payload, &r); err != nil || r.ID == "" {
			rec.Replay.CorruptRecords++
			continue
		}
		if r.Seq > rec.MaxSeq {
			rec.MaxSeq = r.Seq
		}
		if r.State == "deleted" {
			delete(s.live, r.ID)
			delete(s.liveSeq, r.ID)
			continue
		}
		s.live[r.ID] = payload
		s.liveSeq[r.ID] = r.Seq
	}
	liveHashes := make(map[string]bool)
	for _, payload := range s.live {
		var r JobRecord
		json.Unmarshal(payload, &r)
		rec.Jobs = append(rec.Jobs, r)
		if r.Checkpoint != nil {
			liveHashes[r.Checkpoint.Hash] = true
		}
		if r.PrevCheckpoint != nil {
			liveHashes[r.PrevCheckpoint.Hash] = true
		}
	}
	sortJobsBySeq(rec.Jobs)
	rec.CheckpointsSwept = s.sweepCheckpoints(liveHashes)
	return s, rec, nil
}

func sortJobsBySeq(jobs []JobRecord) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].Seq < jobs[k-1].Seq; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

// Put journals one job state transition.  In degraded mode the write
// is silently dropped (counted); the only error a caller must act on
// is ErrCrashed, which means fault injection has simulated a process
// death and the acknowledgement must not be sent.
func (s *Store) Put(r JobRecord) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("durable: marshaling record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.mode {
	case ModeCrashed:
		return ErrCrashed
	case ModeDegraded:
		s.degraded++
		return nil
	}
	if err := s.journal.append(payload); err != nil {
		if err == ErrCrashed {
			s.mode = ModeCrashed
			return err
		}
		// An ordinary write failure (disk full, I/O error): degrade to
		// memory-only operation rather than failing the job tier.
		s.mode = ModeDegraded
		s.reason = err.Error()
		s.degraded++
		s.logger.Warn("durable: journal write failed; degrading to memory-only mode", "err", err)
		return nil
	}
	if r.State == "deleted" {
		delete(s.live, r.ID)
		delete(s.liveSeq, r.ID)
	} else {
		s.live[r.ID] = payload
		s.liveSeq[r.ID] = r.Seq
	}
	if seg, _ := s.journal.size(); seg > s.segMax {
		s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal down to the live set.  Caller
// holds s.mu.
func (s *Store) compactLocked() {
	type entry struct {
		seq     int64
		payload []byte
	}
	entries := make([]entry, 0, len(s.live))
	for id, payload := range s.live {
		entries = append(entries, entry{s.liveSeq[id], payload})
	}
	for i := 1; i < len(entries); i++ {
		for k := i; k > 0 && entries[k].seq < entries[k-1].seq; k-- {
			entries[k], entries[k-1] = entries[k-1], entries[k]
		}
	}
	recs := make([][]byte, len(entries))
	for i, e := range entries {
		recs[i] = e.payload
	}
	if err := s.journal.compact(recs); err != nil {
		if err == ErrCrashed {
			s.mode = ModeCrashed
			return
		}
		s.mode = ModeDegraded
		s.reason = err.Error()
		s.logger.Warn("durable: compaction failed; degrading to memory-only mode", "err", err)
	}
}

// Mode returns the store's durability state and, when degraded, the
// reason.
func (s *Store) Mode() (Mode, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode, s.reason
}

// DroppedWrites counts appends discarded since the store degraded.
func (s *Store) DroppedWrites() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Bytes reports the whole journal's on-disk size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	j := s.journal
	s.mu.Unlock()
	_, total := j.size()
	return total
}

// Close flushes and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.close()
}
