// Package durable is the crash-safety layer under wmserved's job
// tier: an append-only write-ahead journal of job state transitions
// plus a content-addressed directory of simulator checkpoints
// (sim.Machine.SaveState blobs), so acknowledged jobs survive a
// process death and long runs resume mid-flight instead of restarting
// from cycle zero.
//
// The design mirrors the paper's access/execute decoupling one level
// up: just as the WM architecture buffers outstanding memory work in
// FIFOs so the execute pipeline tolerates latency, the journal
// buffers accepted work on disk so the service tolerates restarts —
// acceptance (the 202) and execution are decoupled by a durable
// queue.  The recovery discipline is the bit-identity rule the rest
// of the repository already enforces for sliced and resumed runs:
// replayed work must be indistinguishable from uninterrupted work.
//
// Failure policy, in one line per layer:
//
//   - a torn or truncated journal tail (the signature of dying
//     mid-write) is truncated and warned about, never fatal;
//   - a CRC-corrupt record is dropped and counted, never fatal;
//   - a write error degrades the store to memory-only mode (reported
//     via Mode and counted) rather than taking the service down;
//   - a corrupt checkpoint blob fails hash verification on load and
//     the caller falls back to an older checkpoint or a clean
//     restart, never a panic.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy controls when journal appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncBatch syncs on a short timer (the default): a crash can
	// lose at most the last flush interval of acknowledgements.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways syncs every append before it is acknowledged —
	// maximum durability, one fsync per job state transition.
	FsyncAlways
	// FsyncNever leaves flushing to the operating system.
	FsyncNever
)

// ParseFsyncPolicy maps the -job-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "batch"
	}
}

// Frame layout: a 4-byte little-endian payload length, a 4-byte
// CRC32 (IEEE) of the payload, then the payload.  The CRC covers the
// payload only; a torn length word is caught by the length bound and
// the segment-size check, a torn payload by the CRC.
const frameHeader = 8

// maxRecordBytes bounds a single record so a corrupt length word
// cannot drive an enormous allocation during replay.
const maxRecordBytes = 16 << 20

// DefaultSegmentBytes is the rotation threshold: when the live
// segment exceeds it, the journal compacts into a fresh segment.
const DefaultSegmentBytes = 8 << 20

// batchSyncEvery is the flush cadence under FsyncBatch.
const batchSyncEvery = 50 * time.Millisecond

// ErrCrashed reports an operation refused because fault injection
// simulated a process death: the store wedges and every later
// operation fails, exactly as if the process had been killed at that
// instant.
var ErrCrashed = errors.New("durable: store crashed (fault injection)")

// ReplayStats reports what opening a journal found on disk.
type ReplayStats struct {
	Segments       int   // segment files replayed
	Records        int   // intact records recovered
	TruncatedTails int   // segments whose torn tail was cut off
	TruncatedBytes int64 // bytes discarded by tail truncation
	CorruptRecords int   // CRC-failed records dropped mid-segment
}

// journal is the segmented append-only record log.  It is an
// internal building block of Store; tests exercise it directly.
type journal struct {
	dir    string
	fsync  FsyncPolicy
	segMax int64
	faults *FaultPoints

	mu     sync.Mutex
	f      *os.File // active segment
	seq    int      // active segment number
	bytes  int64    // active segment size
	total  int64    // all segments
	dirty  bool     // unsynced appends under FsyncBatch
	closed bool

	syncStop chan struct{}
	syncDone chan struct{}
}

func segmentName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegmentName returns the sequence number of a journal segment
// file name, or -1.
func parseSegmentName(name string) int {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// openJournal replays every segment in order and returns the intact
// records in append order, ready for the store's last-wins reduction.
// Torn tails are truncated in place; corrupt interior records are
// skipped.  Neither is an error — the journal's contract is that a
// crash at any byte position yields a loadable prefix.
func openJournal(dir string, fsync FsyncPolicy, segMax int64, faults *FaultPoints) (*journal, [][]byte, ReplayStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, ReplayStats{}, err
	}
	if segMax <= 0 {
		segMax = DefaultSegmentBytes
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, ReplayStats{}, err
	}
	var segs []int
	for _, e := range entries {
		if n := parseSegmentName(e.Name()); n >= 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)

	var (
		stats   ReplayStats
		records [][]byte
		total   int64
	)
	for _, seq := range segs {
		path := filepath.Join(dir, segmentName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, stats, err
		}
		recs, good, corrupt := decodeFrames(data)
		records = append(records, recs...)
		stats.Segments++
		stats.Records += len(recs)
		stats.CorruptRecords += corrupt
		if good < len(data) {
			// Torn tail: cut the segment back to its last intact frame
			// so the next append extends a clean prefix.
			stats.TruncatedTails++
			stats.TruncatedBytes += int64(len(data) - good)
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, nil, stats, fmt.Errorf("truncating torn tail of %s: %w", path, err)
			}
		}
		total += int64(good)
	}

	seq := 0
	if len(segs) > 0 {
		seq = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, stats, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, stats, err
	}
	j := &journal{dir: dir, fsync: fsync, segMax: segMax, faults: faults, f: f, seq: seq, bytes: size, total: total}
	if fsync == FsyncBatch {
		j.syncStop = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, records, stats, nil
}

// decodeFrames walks a segment's bytes and returns the intact record
// payloads, the length of the decodable prefix (good), and how many
// interior records failed their CRC.  It never fails: anything
// undecodable past the last intact frame is torn tail by definition.
// A CRC-corrupt record whose frame is otherwise well-formed is
// skipped (counted in corrupt) and decoding continues, so one flipped
// bit does not orphan every later record.
func decodeFrames(data []byte) (recs [][]byte, good int, corrupt int) {
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 0 || n > maxRecordBytes || off+frameHeader+n > len(data) {
			// Implausible length or frame running past the end: torn
			// tail starts here.
			return recs, off, corrupt
		}
		want := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != want {
			// The frame is complete but its payload is damaged (bit
			// rot, or a torn rewrite): drop the record, keep walking.
			corrupt++
			off += frameHeader + n
			good = off
			continue
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += frameHeader + n
		good = off
	}
	return recs, good, corrupt
}

// encodeFrame renders one record in the on-disk framing.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// append writes one record to the active segment.  The caller decides
// what a returned error means (Store degrades; ErrCrashed wedges).
func (j *journal) append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	frame := encodeFrame(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("durable: journal is closed")
	}
	n, err := j.faults.write(j.f, frame)
	j.bytes += int64(n)
	j.total += int64(n)
	if err != nil {
		return err
	}
	if j.fsync == FsyncAlways {
		return j.f.Sync()
	}
	j.dirty = true
	return nil
}

// compact rewrites the journal as a single fresh segment holding only
// the given live records, then removes every older segment.  The new
// segment is fully written and synced before the old ones go away, so
// a crash at any point leaves either the old tail or the new one —
// never neither.
func (j *journal) compact(live [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("durable: journal is closed")
	}
	newSeq := j.seq + 1
	path := filepath.Join(j.dir, segmentName(newSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for _, rec := range live {
		frame := encodeFrame(rec)
		n, err := j.faults.write(f, frame)
		size += int64(n)
		if err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	old, oldSeq, oldBytes := j.f, j.seq, j.bytes
	j.f, j.seq, j.bytes = f, newSeq, size
	j.total += size
	old.Close()
	for s := oldSeq; s >= 0; s-- {
		p := filepath.Join(j.dir, segmentName(s))
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				break
			}
			// The new segment is durable; a lingering old file is
			// harmless (replay is last-wins) — report nothing fatal.
			break
		}
		if s == oldSeq {
			j.total -= oldBytes
		}
	}
	return nil
}

// size returns the active-segment and whole-journal byte counts.
func (j *journal) size() (segment, total int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes, j.total
}

func (j *journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(batchSyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.syncStop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				j.f.Sync()
				j.dirty = false
			}
			j.mu.Unlock()
		}
	}
}

func (j *journal) close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	if j.syncStop != nil {
		close(j.syncStop)
		<-j.syncDone
	}
	return err
}
