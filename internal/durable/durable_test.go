package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestStore(t *testing.T, dir string, faults *FaultPoints) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(Options{Dir: dir, Faults: faults})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

func record(seq int64, id, state string) JobRecord {
	return JobRecord{Seq: seq, ID: id, State: state, Request: json.RawMessage(`{"source":"x"}`)}
}

// TestStoreRoundTrip: records written are recovered last-wins in
// submission order, and tombstones remove jobs from the live set.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openTestStore(t, dir, nil)
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh dir recovered %d jobs", len(rec.Jobs))
	}
	for _, r := range []JobRecord{
		record(1, "a", "queued"),
		record(2, "b", "queued"),
		record(1, "a", "running"),
		record(3, "c", "queued"),
		record(2, "b", "done"),
		{Seq: 3, ID: "c", State: "deleted"},
	} {
		if err := s.Put(r); err != nil {
			t.Fatalf("Put(%s %s): %v", r.ID, r.State, err)
		}
	}
	s.Close()

	_, rec2 := openTestStore(t, dir, nil)
	if len(rec2.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(rec2.Jobs), rec2.Jobs)
	}
	if rec2.Jobs[0].ID != "a" || rec2.Jobs[0].State != "running" {
		t.Errorf("job[0] = %s/%s, want a/running", rec2.Jobs[0].ID, rec2.Jobs[0].State)
	}
	if rec2.Jobs[1].ID != "b" || rec2.Jobs[1].State != "done" {
		t.Errorf("job[1] = %s/%s, want b/done", rec2.Jobs[1].ID, rec2.Jobs[1].State)
	}
	if rec2.MaxSeq != 3 {
		t.Errorf("MaxSeq = %d, want 3", rec2.MaxSeq)
	}
	if rec2.Replay.TruncatedTails != 0 || rec2.Replay.CorruptRecords != 0 {
		t.Errorf("clean journal reported damage: %+v", rec2.Replay)
	}
}

// TestTornTailTruncated: a torn write at the journal tail is cut off
// on the next open; everything acknowledged before it survives.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	faults := &FaultPoints{TornAt: 3}
	s, _ := openTestStore(t, dir, faults)
	if err := s.Put(record(1, "a", "queued")); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	if err := s.Put(record(2, "b", "queued")); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	// Op 3 tears mid-frame and wedges the store.
	if err := s.Put(record(3, "c", "queued")); err != ErrCrashed {
		t.Fatalf("torn Put error = %v, want ErrCrashed", err)
	}
	if err := s.Put(record(4, "d", "queued")); err != ErrCrashed {
		t.Fatalf("post-crash Put error = %v, want ErrCrashed", err)
	}

	s2, rec := openTestStore(t, dir, nil)
	if rec.Replay.TruncatedTails != 1 || rec.Replay.TruncatedBytes == 0 {
		t.Errorf("expected one torn tail, got %+v", rec.Replay)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[0].ID != "a" || rec.Jobs[1].ID != "b" {
		t.Fatalf("recovered %+v, want jobs a and b", rec.Jobs)
	}
	// The truncated journal accepts new appends cleanly.
	if err := s2.Put(record(3, "c", "queued")); err != nil {
		t.Fatalf("Put after truncation: %v", err)
	}
	s2.Close()
	_, rec3 := openTestStore(t, dir, nil)
	if len(rec3.Jobs) != 3 {
		t.Fatalf("after re-append recovered %d jobs, want 3", len(rec3.Jobs))
	}
}

// TestCorruptRecordSkipped: a bit-flipped interior record is dropped
// and counted; records after it still replay.
func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	for n := int64(1); n <= 3; n++ {
		if err := s.Put(record(n, fmt.Sprintf("j%d", n), "queued")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s.Close()

	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record: frame 1 starts after
	// frame 0; corrupt a byte well inside frame 1's payload.
	frame0 := frameHeader + int(uint32(data[0])|uint32(data[1])<<8|uint32(data[2])<<16|uint32(data[3])<<24)
	data[frame0+frameHeader+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTestStore(t, dir, nil)
	if rec.Replay.CorruptRecords != 1 {
		t.Errorf("CorruptRecords = %d, want 1", rec.Replay.CorruptRecords)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[0].ID != "j1" || rec.Jobs[1].ID != "j3" {
		t.Fatalf("recovered %+v, want j1 and j3 (j2 dropped)", rec.Jobs)
	}
}

// TestDegradedMode: an ordinary write failure flips the store to
// memory-only operation instead of erroring every job transition.
func TestDegradedMode(t *testing.T) {
	dir := t.TempDir()
	faults := &FaultPoints{FailAt: 2}
	s, _ := openTestStore(t, dir, faults)
	if err := s.Put(record(1, "a", "queued")); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	if mode, _ := s.Mode(); mode != ModeDurable {
		t.Fatalf("mode %v before fault, want durable", mode)
	}
	// Op 2 fails; the store degrades and the Put reports success.
	if err := s.Put(record(2, "b", "queued")); err != nil {
		t.Fatalf("degrading Put returned %v, want nil", err)
	}
	mode, reason := s.Mode()
	if mode != ModeDegraded || reason == "" {
		t.Fatalf("mode %v (%q), want degraded with a reason", mode, reason)
	}
	if err := s.Put(record(3, "c", "queued")); err != nil {
		t.Fatalf("degraded Put returned %v, want nil", err)
	}
	if s.DroppedWrites() != 2 {
		t.Errorf("DroppedWrites = %d, want 2", s.DroppedWrites())
	}
	s.Close()
	_, rec := openTestStore(t, dir, nil)
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "a" {
		t.Fatalf("recovered %+v, want only pre-degradation job a", rec.Jobs)
	}
}

// TestCompaction: once the segment threshold trips, the journal is
// rewritten to the live set and shrinks.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := strings.Repeat("x", 512)
	// Many transitions of the same two jobs: live set stays tiny.
	for n := 0; n < 64; n++ {
		r := record(int64(n%2+1), fmt.Sprintf("job%d", n%2), "running")
		r.Request = json.RawMessage(fmt.Sprintf(`{"source":%q}`, big))
		if err := s.Put(r); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := s.Bytes(); got > 8192 {
		t.Errorf("journal holds %d bytes after compaction, want <= 8192", got)
	}
	s.Close()
	_, rec := openTestStore(t, dir, nil)
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs after compaction, want 2", len(rec.Jobs))
	}
}

// TestCheckpointRoundTrip: spill, load, verify, remove; corruption of
// the on-disk blob is detected by the content hash.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	blob := bytes.Repeat([]byte{0xab, 0xcd, 0x01}, 4096)
	ref, err := s.SaveCheckpoint(blob, 1234)
	if err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if ref.Cycles != 1234 || ref.Bytes != int64(len(blob)) {
		t.Fatalf("ref %+v", ref)
	}
	got, err := s.LoadCheckpoint(ref)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("LoadCheckpoint: %v (match=%v)", err, bytes.Equal(got, blob))
	}
	// Identical blob re-spills for free.
	if _, err := s.SaveCheckpoint(blob, 1234); err != nil {
		t.Fatalf("idempotent SaveCheckpoint: %v", err)
	}

	// On-disk corruption matrix: bit flip, truncation, foreign bytes.
	path := s.checkpointPath(ref.Hash)
	pristine, _ := os.ReadFile(path)
	for _, tc := range []struct {
		name    string
		corrupt []byte
	}{
		{"bit-flip", func() []byte { b := append([]byte(nil), pristine...); b[len(b)/2] ^= 0x40; return b }()},
		{"truncation", pristine[:len(pristine)/2]},
		{"foreign", []byte("not a checkpoint at all")},
	} {
		if err := os.WriteFile(path, tc.corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadCheckpoint(ref); err == nil {
			t.Errorf("%s: LoadCheckpoint accepted a corrupt blob", tc.name)
		}
	}
	os.WriteFile(path, pristine, 0o644)

	s.RemoveCheckpoint(ref)
	if _, err := s.LoadCheckpoint(ref); err == nil {
		t.Error("LoadCheckpoint succeeded after RemoveCheckpoint")
	}
}

// TestCheckpointSweep: blobs no live record references are removed at
// open; referenced ones survive.
func TestCheckpointSweep(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, nil)
	keep, err := s.SaveCheckpoint([]byte("keep-me"), 1)
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := s.SaveCheckpoint([]byte("orphan"), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := record(1, "a", "running")
	r.Checkpoint = &keep
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := openTestStore(t, dir, nil)
	if rec.CheckpointsSwept != 1 {
		t.Errorf("swept %d blobs, want 1", rec.CheckpointsSwept)
	}
	if _, err := s2.LoadCheckpoint(keep); err != nil {
		t.Errorf("referenced checkpoint was swept: %v", err)
	}
	if _, err := s2.LoadCheckpoint(orphan); err == nil {
		t.Error("orphan checkpoint survived the sweep")
	}
}

// TestKill: Kill wedges the store at a record boundary; recovery sees
// everything up to the kill.
func TestKill(t *testing.T) {
	dir := t.TempDir()
	faults := &FaultPoints{}
	s, _ := openTestStore(t, dir, faults)
	if err := s.Put(record(1, "a", "queued")); err != nil {
		t.Fatal(err)
	}
	faults.Kill()
	if err := s.Put(record(2, "b", "queued")); err != ErrCrashed {
		t.Fatalf("post-kill Put error = %v, want ErrCrashed", err)
	}
	if _, err := s.SaveCheckpoint([]byte("blob"), 1); err != ErrCrashed {
		t.Fatalf("post-kill SaveCheckpoint error = %v, want ErrCrashed", err)
	}
	_, rec := openTestStore(t, dir, nil)
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "a" {
		t.Fatalf("recovered %+v, want job a", rec.Jobs)
	}
}

// TestFsyncPolicies: every policy round-trips records (durability
// differences need a real power failure to observe; this asserts the
// code paths work).
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := Open(Options{Dir: dir, Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(record(1, "a", "queued")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			_, rec := openTestStore(t, dir, nil)
			if len(rec.Jobs) != 1 {
				t.Fatalf("recovered %d jobs, want 1", len(rec.Jobs))
			}
		})
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("ParseFsyncPolicy accepted bogus")
	}
	for _, s := range []string{"", "batch", "always", "never"} {
		if _, err := ParseFsyncPolicy(s); err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", s, err)
		}
	}
}
