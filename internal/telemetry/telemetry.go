// Package telemetry is the observability layer shared by the compiler
// and the simulator: cycle-accurate stall attribution per functional
// unit, and a Chrome trace-event builder (trace.go) whose output one
// Perfetto timeline can show compile passes followed by simulated
// execution.
//
// The simulator charges every cycle of every unit to exactly one
// Cause: the unit either issued (did work), was idle (had nothing to
// do), or was stalled by a specific hazard.  The invariant — for every
// unit, the Cause counts sum to the run's total cycles — is what makes
// the attribution trustworthy: no cycle is double-counted or lost.
package telemetry

import (
	"fmt"
	"strings"
)

// Cause classifies what one functional unit did (or why it could not
// do anything) during one cycle.
type Cause uint8

const (
	// CauseIssued: the unit did work this cycle (issued, retired,
	// dispatched, or moved a stream element).
	CauseIssued Cause = iota
	// CauseIdle: the unit had nothing to do (empty queue, no active
	// stream, machine halted).
	CauseIdle
	// CauseFIFOEmpty: blocked reading an input FIFO with no ready data.
	CauseFIFOEmpty
	// CauseFIFOFull: blocked writing a data FIFO at capacity.
	CauseFIFOFull
	// CauseCCWait: blocked on a condition-code FIFO (empty for the
	// consumer, full for the producer).
	CauseCCWait
	// CauseMemPort: blocked because all memory ports were taken.
	CauseMemPort
	// CauseResultLatency: blocked on a register whose producing
	// instruction has not completed (in-flight access or pipeline
	// forwarding distance).
	CauseResultLatency
	// CauseStreamBusy: blocked on stream machinery — a scalar access
	// interleaving with an active stream, or a stream start waiting for
	// queues to drain or a free stream control unit.
	CauseStreamBusy
	// CauseQueueFull: the IFU could not dispatch into a full unit queue.
	CauseQueueFull
	// CauseFetch: the IFU owed fetch cycles for a multi-word instruction.
	CauseFetch

	// NumCauses is the number of attribution buckets.
	NumCauses = int(CauseFetch) + 1
)

var causeNames = [NumCauses]string{
	CauseIssued:        "issued",
	CauseIdle:          "idle",
	CauseFIFOEmpty:     "fifo-empty",
	CauseFIFOFull:      "fifo-full",
	CauseCCWait:        "cc-wait",
	CauseMemPort:       "mem-port",
	CauseResultLatency: "result-latency",
	CauseStreamBusy:    "stream-busy",
	CauseQueueFull:     "queue-full",
	CauseFetch:         "fetch",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Unit is one functional unit's cycle attribution for a run.
type Unit struct {
	Name   string
	Counts [NumCauses]int64
}

// Add charges one cycle to the cause.
func (u *Unit) Add(c Cause) { u.Counts[c]++ }

// Total is the number of cycles attributed (equals the run's cycle
// count by the accounting invariant).
func (u Unit) Total() int64 {
	var t int64
	for _, n := range u.Counts {
		t += n
	}
	return t
}

// Issued is the number of cycles the unit did work.
func (u Unit) Issued() int64 { return u.Counts[CauseIssued] }

// Stalled is the number of cycles the unit wanted to work but could
// not (everything except issued and idle).
func (u Unit) Stalled() int64 {
	return u.Total() - u.Counts[CauseIssued] - u.Counts[CauseIdle]
}

// Utilization is the issued fraction of all cycles, in percent.
func (u Unit) Utilization() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(u.Counts[CauseIssued]) / float64(t)
}

// FormatUnits renders the per-unit breakdown as an aligned table with a
// fixed column set, so the output is stable and goldenable:
//
//	unit    util%   issued     idle  fifo-empty ... fetch
//	IFU      41.2      412      583           5 ...     0
func FormatUnits(units []Unit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %6s %10s", "unit", "util%", "issued")
	for c := int(CauseIdle); c < NumCauses; c++ {
		fmt.Fprintf(&b, " %*s", columnWidth(Cause(c)), Cause(c))
	}
	b.WriteByte('\n')
	for _, u := range units {
		fmt.Fprintf(&b, "%-5s %6.1f %10d", u.Name, u.Utilization(), u.Counts[CauseIssued])
		for c := int(CauseIdle); c < NumCauses; c++ {
			fmt.Fprintf(&b, " %*d", columnWidth(Cause(c)), u.Counts[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// columnWidth keeps every numeric column at least 10 wide (cycle counts
// get large) without truncating long cause names.
func columnWidth(c Cause) int {
	if n := len(c.String()); n > 10 {
		return n
	}
	return 10
}
