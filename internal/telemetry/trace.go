package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Trace builds a Chrome trace-event JSON file (the format Perfetto and
// chrome://tracing load).  One simulated cycle maps to one microsecond
// of trace time, so cycle numbers read directly off the timeline.
//
// Events are rendered to their final JSON text as they are added and
// emitted in insertion order, with no timestamps or map iteration
// involved, so two identical runs produce byte-identical files — the
// property the determinism test locks in.
//
// The cursor separates clock domains sharing one timeline: compile
// spans advance it past their wall-clock extent, and the simulator
// records its cycles relative to wherever the cursor points, so a
// single Perfetto view shows compile passes followed by execution.
type Trace struct {
	events []string
	cursor int64
}

// Process/track IDs used by the compiler, simulator, and serving-layer
// recorders.
const (
	PidCompile = 1 // compile-phase spans (one track per pipeline)
	PidSim     = 2 // simulator spans and counters (one track per unit)
	PidService = 3 // serving-layer request/job spans (internal/obs)
)

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Cursor returns the current timeline position in microseconds.
func (t *Trace) Cursor() int64 { return t.cursor }

// Advance moves the cursor forward (never backward).
func (t *Trace) Advance(d int64) {
	if d > 0 {
		t.cursor += d
	}
}

// Events reports how many events have been recorded.
func (t *Trace) Events() int { return len(t.events) }

// ProcessName labels a pid in the trace viewer.
func (t *Trace) ProcessName(pid int, name string) {
	t.events = append(t.events, fmt.Sprintf(
		`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
		pid, quote(name)))
}

// ThreadName labels a (pid, tid) track in the trace viewer.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.events = append(t.events, fmt.Sprintf(
		`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
		pid, tid, quote(name)))
}

// Span records a complete ("X") event of dur microseconds at ts.
func (t *Trace) Span(pid, tid int, ts, dur int64, name string) {
	if dur < 1 {
		dur = 1
	}
	t.events = append(t.events, fmt.Sprintf(
		`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s}`,
		pid, tid, ts, dur, quote(name)))
}

// Counter records a counter ("C") sample; the viewer draws one counter
// track per name interpolating between samples.
func (t *Trace) Counter(pid int, ts int64, name string, value int64) {
	t.events = append(t.events, fmt.Sprintf(
		`{"ph":"C","pid":%d,"tid":0,"ts":%d,"name":%s,"args":{"value":%d}}`,
		pid, ts, quote(name), value))
}

// CompileSpan appends a compile-phase span at the cursor and advances
// the cursor past it, laying passes end to end.
func (t *Trace) CompileSpan(tid int, name string, durMicros int64) {
	if durMicros < 1 {
		durMicros = 1
	}
	t.Span(PidCompile, tid, t.cursor, durMicros, name)
	t.cursor += durMicros
}

// WriteTo renders the whole trace as a JSON object.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		k, err := io.WriteString(w, s)
		n += int64(k)
		return err
	}
	if err := write("{\"traceEvents\":[\n"); err != nil {
		return n, err
	}
	for i, e := range t.events {
		sep := ",\n"
		if i == len(t.events)-1 {
			sep = "\n"
		}
		if err := write(e + sep); err != nil {
			return n, err
		}
	}
	return n, write("]}\n")
}

// quote JSON-encodes a string without importing encoding/json (keeps
// output formatting under our control, byte for byte).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
