package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCauseNames(t *testing.T) {
	// Every cause has a distinct, non-placeholder name; the names are
	// part of the -stats / JSON report surface.
	seen := map[string]bool{}
	for c := 0; c < NumCauses; c++ {
		name := Cause(c).String()
		if name == "" || strings.HasPrefix(name, "cause(") {
			t.Errorf("cause %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate cause name %q", name)
		}
		seen[name] = true
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Errorf("out-of-range cause = %q", got)
	}
}

func TestUnitMath(t *testing.T) {
	var u Unit
	u.Name = "IEU"
	for i := 0; i < 3; i++ {
		u.Add(CauseIssued)
	}
	u.Add(CauseIdle)
	u.Add(CauseFIFOEmpty)
	u.Add(CauseFIFOEmpty)
	u.Add(CauseResultLatency)
	u.Add(CauseCCWait)
	if got := u.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	if got := u.Issued(); got != 3 {
		t.Errorf("Issued = %d, want 3", got)
	}
	if got := u.Stalled(); got != 4 {
		t.Errorf("Stalled = %d, want 4", got)
	}
	if got := u.Utilization(); got != 37.5 {
		t.Errorf("Utilization = %g, want 37.5", got)
	}
	if got := (Unit{}).Utilization(); got != 0 {
		t.Errorf("empty Utilization = %g, want 0", got)
	}
}

func TestFormatUnitsGolden(t *testing.T) {
	units := []Unit{
		{Name: "IFU"},
		{Name: "IEU"},
	}
	units[0].Counts[CauseIssued] = 412
	units[0].Counts[CauseIdle] = 583
	units[0].Counts[CauseQueueFull] = 5
	units[1].Counts[CauseIssued] = 250
	units[1].Counts[CauseFIFOEmpty] = 750
	got := FormatUnits(units)
	want := "" +
		"unit   util%     issued       idle fifo-empty  fifo-full    cc-wait   mem-port result-latency stream-busy queue-full      fetch\n" +
		"IFU     41.2        412        583          0          0          0          0              0           0          5          0\n" +
		"IEU     25.0        250          0        750          0          0          0              0           0          0          0\n"
	if got != want {
		t.Errorf("FormatUnits mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName(PidSim, "wm machine")
	tr.ThreadName(PidSim, 1, "IFU")
	tr.Span(PidSim, 1, 5, 0, `add "x"\y`) // dur clamps to 1, name escapes
	tr.Counter(PidSim, 7, "fifo.in.r0", 3)

	var b strings.Builder
	n, err := tr.WriteTo(&b)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := b.String()
	if int64(len(out)) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, len(out))
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) != 4 || tr.Events() != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["dur"] != float64(1) || span["ts"] != float64(5) {
		t.Errorf("span event wrong: %v", span)
	}
	if span["name"] != `add "x"\y` {
		t.Errorf("span name did not round-trip: %q", span["name"])
	}
	if ctr := doc.TraceEvents[3]; ctr["ph"] != "C" {
		t.Errorf("counter event wrong: %v", ctr)
	}
}

func TestTraceCursor(t *testing.T) {
	tr := NewTrace()
	if tr.Cursor() != 0 {
		t.Fatalf("fresh cursor = %d", tr.Cursor())
	}
	tr.CompileSpan(1, "Fold", 120)
	tr.CompileSpan(1, "CopyProp", 0) // clamps to 1
	if got := tr.Cursor(); got != 121 {
		t.Errorf("cursor after compile spans = %d, want 121", got)
	}
	tr.Advance(-5) // never backward
	tr.Advance(9)
	if got := tr.Cursor(); got != 130 {
		t.Errorf("cursor after Advance = %d, want 130", got)
	}
}

func TestQuoteControlChars(t *testing.T) {
	// Control characters become \u escapes so the JSON stays one line
	// per event.
	got := quote("a\nb\tc")
	if want := "\"a\\u000ab\\u0009c\""; got != want {
		t.Errorf("quote = %s, want %s", got, want)
	}
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil || s != "a\nb\tc" {
		t.Errorf("quote output does not round-trip: %q, %v", s, err)
	}
}
