// Package diag defines the structured diagnostics shared by every
// stage of the compiler: frontend errors carry source positions,
// optimizer degradation events carry pass/function provenance, and
// linker/simulator setup failures carry program provenance.  The
// public API (package wmstream) mirrors these values so tools like
// wmcc can render them uniformly and promote degradations to errors
// under -strict.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wmstream/internal/minic"
)

// Severity orders diagnostics from informational to fatal.
type Severity int

const (
	// Note is informational.
	Note Severity = iota
	// Warning flags something suspicious that does not affect the
	// compiled code.
	Warning
	// Degraded means the compiler gave up on an optimization (a pass
	// panicked, violated an IR invariant, overran its time budget, or
	// failed to converge) and rolled the function back to its last
	// good state: the output is correct but less optimized.  Strict
	// mode promotes Degraded to a compilation error.
	Degraded
	// Error means compilation (or setup of a run) failed.
	Error
)

var severityNames = [...]string{
	Note: "note", Warning: "warning", Degraded: "degraded", Error: "error",
}

func (s Severity) String() string {
	if s < 0 || int(s) >= len(severityNames) {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return severityNames[s]
}

// Diagnostic is one structured event.  Zero-valued fields are simply
// unknown: a frontend error has a Pos but no Pass; an optimizer
// degradation has Pass and Func but no Pos.
type Diagnostic struct {
	Sev   Severity
	Stage string    // "frontend", "opt", "link", "sim"
	Pos   minic.Pos // source position; zero when not tied to source
	Pass  string    // optimizer pass or fixpoint group name
	Func  string    // function provenance
	Msg   string
}

// String renders the diagnostic in a compact single-line form:
//
//	degraded: opt: main: pass Combine panicked: index out of range
//	error: frontend: 3:7: undefined variable "x"
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Sev.String())
	b.WriteString(": ")
	if d.Stage != "" {
		b.WriteString(d.Stage)
		b.WriteString(": ")
	}
	if d.Pos != (minic.Pos{}) {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	if d.Func != "" {
		b.WriteString(d.Func)
		b.WriteString(": ")
	}
	if d.Pass != "" {
		fmt.Fprintf(&b, "pass %s ", d.Pass)
	}
	b.WriteString(d.Msg)
	return b.String()
}

// Bag is a concurrency-safe diagnostic collector.
type Bag struct {
	mu   sync.Mutex
	list []Diagnostic
}

// Add appends a diagnostic.
func (b *Bag) Add(d Diagnostic) {
	b.mu.Lock()
	b.list = append(b.list, d)
	b.mu.Unlock()
}

// AddAll appends a batch of diagnostics.
func (b *Bag) AddAll(ds []Diagnostic) {
	b.mu.Lock()
	b.list = append(b.list, ds...)
	b.mu.Unlock()
}

// All returns a copy of the collected diagnostics, most severe first
// (stable within a severity, preserving insertion order).
func (b *Bag) All() []Diagnostic {
	b.mu.Lock()
	out := append([]Diagnostic(nil), b.list...)
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sev > out[j].Sev })
	return out
}

// Max returns the highest severity collected, or Note when empty.
func (b *Bag) Max() Severity {
	b.mu.Lock()
	defer b.mu.Unlock()
	max := Note
	for _, d := range b.list {
		if d.Sev > max {
			max = d.Sev
		}
	}
	return max
}

// Len returns the number of collected diagnostics.
func (b *Bag) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.list)
}
