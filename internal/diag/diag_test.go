package diag

import (
	"testing"

	"wmstream/internal/minic"
)

func TestDiagnosticString(t *testing.T) {
	cases := []struct {
		d    Diagnostic
		want string
	}{
		{
			Diagnostic{Sev: Degraded, Stage: "opt", Func: "main", Pass: "Combine", Msg: "panicked: index out of range"},
			"degraded: opt: main: pass Combine panicked: index out of range",
		},
		{
			Diagnostic{Sev: Error, Stage: "frontend", Pos: minic.Pos{Line: 3, Col: 7}, Msg: `undefined variable "x"`},
			`error: frontend: 3:7: undefined variable "x"`,
		},
		{
			Diagnostic{Sev: Note, Msg: "bare"},
			"note: bare",
		},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSeverityOrderAndNames(t *testing.T) {
	if !(Note < Warning && Warning < Degraded && Degraded < Error) {
		t.Fatal("severity ladder out of order")
	}
	if Degraded.String() != "degraded" || Severity(99).String() != "severity(99)" {
		t.Errorf("severity names wrong: %v %v", Degraded, Severity(99))
	}
}

func TestBagSortsMostSevereFirstStably(t *testing.T) {
	var b Bag
	b.Add(Diagnostic{Sev: Note, Msg: "n1"})
	b.AddAll([]Diagnostic{
		{Sev: Degraded, Msg: "d1"},
		{Sev: Error, Msg: "e1"},
		{Sev: Degraded, Msg: "d2"},
	})
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Max() != Error {
		t.Errorf("Max = %v, want Error", b.Max())
	}
	got := b.All()
	want := []string{"e1", "d1", "d2", "n1"}
	for i, w := range want {
		if got[i].Msg != w {
			t.Fatalf("order %v, want msgs %v", got, want)
		}
	}
	// All returns a copy: mutating it must not corrupt the bag.
	got[0].Msg = "clobbered"
	if b.All()[0].Msg != "e1" {
		t.Error("All exposes internal storage")
	}
}
