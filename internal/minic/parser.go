package minic

// Parser is a recursive-descent parser for Mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// ParseProgram tokenizes and parses src, returning the (unchecked) AST.
func ParseProgram(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty, name, namePos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if p.peekPunct("(") {
			fn, err := p.parseFuncRest(ty, name, namePos)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decls, err := p.parseVarDeclRest(base, ty, name, namePos)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decls...)
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TEOF }

func (p *Parser) advance() Token {
	t := p.cur()
	if t.Kind != TEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekPunct(s string) bool {
	t := p.cur()
	return t.Kind == TPunct && t.Text == s
}

func (p *Parser) peekKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TKeyword && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return errf(p.cur().Pos, "expected %q, found %s %q", s, p.cur().Kind, p.cur().Text)
	}
	return nil
}

func (p *Parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TKeyword {
		return false
	}
	switch t.Text {
	case "int", "char", "double", "void":
		return true
	}
	return false
}

func (p *Parser) parseBaseType() (*Type, error) {
	t := p.cur()
	if t.Kind != TKeyword {
		return nil, errf(t.Pos, "expected type, found %q", t.Text)
	}
	var ty *Type
	switch t.Text {
	case "int":
		ty = IntType
	case "char":
		ty = CharType
	case "double":
		ty = DoubleType
	case "void":
		ty = VoidType
	default:
		return nil, errf(t.Pos, "expected type, found %q", t.Text)
	}
	p.advance()
	return ty, nil
}

// parseDeclarator parses "*"* name ("[" int "]")?, returning the full
// type and the declared name.
func (p *Parser) parseDeclarator(base *Type) (*Type, string, Pos, error) {
	ty := base
	for p.acceptPunct("*") {
		ty = PointerTo(ty)
	}
	t := p.cur()
	if t.Kind != TIdent {
		return nil, "", t.Pos, errf(t.Pos, "expected identifier, found %q", t.Text)
	}
	p.advance()
	if p.acceptPunct("[") {
		// Empty brackets: length inferred from the initializer.
		if p.acceptPunct("]") {
			return ArrayOf(ty, -1), t.Text, t.Pos, nil
		}
		sz := p.cur()
		if sz.Kind != TIntLit {
			return nil, "", t.Pos, errf(sz.Pos, "array length must be an integer literal")
		}
		p.advance()
		if err := p.expectPunct("]"); err != nil {
			return nil, "", t.Pos, err
		}
		if sz.Int <= 0 {
			return nil, "", t.Pos, errf(sz.Pos, "array length must be positive")
		}
		return ArrayOf(ty, int(sz.Int)), t.Text, t.Pos, nil
	}
	return ty, t.Text, t.Pos, nil
}

// parseVarDeclRest parses the remainder of a declaration statement
// after the first declarator has been consumed.
func (p *Parser) parseVarDeclRest(base, firstTy *Type, firstName string, firstPos Pos) ([]*VarDecl, error) {
	var decls []*VarDecl
	ty, name, pos := firstTy, firstName, firstPos
	for {
		d := &VarDecl{Name: name, Ty: ty, Pos: pos}
		if p.acceptPunct("=") {
			if err := p.parseInitializer(d); err != nil {
				return nil, err
			}
		}
		if d.Ty.Kind == TypeArray && d.Ty.Len == -1 {
			switch {
			case d.InitStr != "":
				d.Ty = ArrayOf(d.Ty.Elem, len(d.InitStr)+1) // plus NUL
			case len(d.InitList) > 0:
				d.Ty = ArrayOf(d.Ty.Elem, len(d.InitList))
			default:
				return nil, errf(pos, "array %q needs an explicit length or initializer", name)
			}
		}
		decls = append(decls, d)
		if p.acceptPunct(",") {
			var err error
			ty, name, pos, err = p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return decls, nil
	}
}

func (p *Parser) parseInitializer(d *VarDecl) error {
	d.HasInit = true
	if p.acceptPunct("{") {
		for {
			e, err := p.parseAssign()
			if err != nil {
				return err
			}
			d.InitList = append(d.InitList, e)
			if p.acceptPunct(",") {
				if p.acceptPunct("}") { // trailing comma
					return nil
				}
				continue
			}
			return p.expectPunct("}")
		}
	}
	if p.cur().Kind == TStringLit && d.Ty.Kind == TypeArray && d.Ty.Elem.Kind == TypeChar {
		d.InitStr = p.cur().Str
		p.advance()
		return nil
	}
	e, err := p.parseAssign()
	if err != nil {
		return err
	}
	d.Init = e
	return nil
}

func (p *Parser) parseFuncRest(ret *Type, name string, pos Pos) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Pos: pos}
	if p.peekKeyword("void") && p.toks[p.pos+1].Kind == TPunct && p.toks[p.pos+1].Text == ")" {
		p.advance()
	}
	if !p.acceptPunct(")") {
		for {
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			ty, pname, ppos, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			// Array parameters decay to pointers, as in C.
			if ty.Kind == TypeArray {
				ty = PointerTo(ty.Elem)
			}
			fn.Params = append(fn.Params, &Param{Name: pname, Ty: ty, Pos: ppos})
			if p.acceptPunct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.acceptPunct("}") {
		if p.atEOF() {
			return nil, errf(p.cur().Pos, "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.peekPunct("{"):
		return p.parseBlock()
	case p.peekPunct(";"):
		p.advance()
		return &BlockStmt{}, nil
	case p.peekKeyword("if"):
		return p.parseIf()
	case p.peekKeyword("while"):
		return p.parseWhile()
	case p.peekKeyword("do"):
		return p.parseDoWhile()
	case p.peekKeyword("for"):
		return p.parseFor()
	case p.peekKeyword("return"):
		pos := p.advance().Pos
		if p.acceptPunct(";") {
			return &ReturnStmt{Pos: pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{X: e, Pos: pos}, p.expectPunct(";")
	case p.peekKeyword("break"):
		pos := p.advance().Pos
		return &BreakStmt{Pos: pos}, p.expectPunct(";")
	case p.peekKeyword("continue"):
		pos := p.advance().Pos
		return &ContinueStmt{Pos: pos}, p.expectPunct(";")
	case p.isTypeStart():
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		ty, name, pos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		decls, err := p.parseVarDeclRest(base, ty, name, pos)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Vars: decls}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, p.expectPunct(";")
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.peekKeyword("else") {
		p.advance()
		s.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	p.advance() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.peekKeyword("while") {
		return nil, errf(p.cur().Pos, "expected while after do body")
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, DoWhile: true}, p.expectPunct(";")
}

func (p *Parser) parseFor() (Stmt, error) {
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	var err error
	if !p.peekPunct(";") {
		s.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.peekPunct(";") {
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.peekPunct(")") {
		s.Post, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	s.Body, err = p.parseStmt()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// --- expressions --------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *Parser) parseAssign() (Expr, error) {
	l, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TPunct {
		if t.Text == "=" {
			p.advance()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			a := &Assign{L: l, R: r}
			a.P = t.Pos
			return a, nil
		}
		if op, ok := compoundOps[t.Text]; ok {
			p.advance()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			// l op= r expands to l = l op r.  The checker rejects
			// left-hand sides with side effects, so the double
			// evaluation is safe.
			bin := &Binary{Op: op, L: l, R: r}
			bin.P = t.Pos
			a := &Assign{L: l, R: bin}
			a.P = t.Pos
			return a, nil
		}
	}
	return l, nil
}

func (p *Parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.peekPunct("?") {
		pos := p.advance().Pos
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		e := &Cond{C: c, T2: t, F: f}
		e.P = pos
		return e, nil
	}
	return c, nil
}

// binary operator precedence levels, lowest binding first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TPunct || !contains(binLevels[level], t.Text) {
			return l, nil
		}
		p.advance()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: t.Text, L: l, R: r}
		b.P = t.Pos
		l = b
	}
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			u := &Unary{Op: t.Text, X: x}
			u.P = t.Pos
			return u, nil
		case "+":
			p.advance()
			return p.parseUnary()
		case "++", "--":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			u := &Unary{Op: t.Text + "pre", X: x}
			u.P = t.Pos
			return u, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TPunct {
			return e, nil
		}
		switch t.Text {
		case "[":
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			ix := &Index{Base: e, Idx: idx}
			ix.P = t.Pos
			e = ix
		case "(":
			id, ok := e.(*Ident)
			if !ok {
				return nil, errf(t.Pos, "only direct function calls are supported")
			}
			p.advance()
			call := &Call{Name: id.Name}
			call.P = id.P
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			e = call
		case "++", "--":
			p.advance()
			u := &Unary{Op: t.Text + "post", X: e}
			u.P = t.Pos
			e = u
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TIntLit, TCharLit:
		p.advance()
		e := &IntLit{V: t.Int}
		e.P = t.Pos
		return e, nil
	case TFloatLit:
		p.advance()
		e := &FloatLit{V: t.Flt}
		e.P = t.Pos
		return e, nil
	case TStringLit:
		p.advance()
		e := &StrLit{V: t.Str}
		e.P = t.Pos
		return e, nil
	case TIdent:
		p.advance()
		e := &Ident{Name: t.Text}
		e.P = t.Pos
		return e, nil
	case TPunct:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, errf(t.Pos, "unexpected token %q in expression", tokenText(t))
}

func tokenText(t Token) string {
	if t.Kind == TEOF {
		return "<eof>"
	}
	return t.Text
}
