package minic

import (
	"strconv"
	"strings"
)

// Lexer turns Mini-C source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return Token{Kind: TEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		word := l.takeWhile(isIdentPart)
		if keywords[word] {
			return Token{Kind: TKeyword, Text: word, Pos: start}, nil
		}
		return Token{Kind: TIdent, Text: word, Pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexChar(start)
	case c == '"':
		return l.lexString(start)
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return Token{Kind: TPunct, Text: p, Pos: start}, nil
		}
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

// Tokenize scans the entire input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	text := l.takeWhile(func(c byte) bool {
		return c >= '0' && c <= '9' || c == '.' || c == 'x' || c == 'X' ||
			c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	})
	// Exponent part: 1e10, 1.5e-3.
	if l.pos < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') &&
		!strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X") {
		text += string(l.peekByte())
		l.advance(1)
		if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
			text += string(l.peekByte())
			l.advance(1)
		}
		text += l.takeWhile(func(c byte) bool { return c >= '0' && c <= '9' })
	}
	if strings.ContainsAny(text, ".eE") && !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X") {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(start, "bad float literal %q", text)
		}
		return Token{Kind: TFloatLit, Text: text, Flt: v, Pos: start}, nil
	}
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return Token{}, errf(start, "bad integer literal %q", text)
	}
	return Token{Kind: TIntLit, Text: text, Int: v, Pos: start}, nil
}

func (l *Lexer) lexChar(start Pos) (Token, error) {
	l.advance(1) // opening quote
	if l.pos >= len(l.src) {
		return Token{}, errf(start, "unterminated character literal")
	}
	var v int64
	if l.peekByte() == '\\' {
		l.advance(1)
		if l.pos >= len(l.src) {
			return Token{}, errf(start, "unterminated escape")
		}
		e, ok := unescape(l.peekByte())
		if !ok {
			return Token{}, errf(start, "unknown escape \\%c", l.peekByte())
		}
		v = int64(e)
		l.advance(1)
	} else {
		v = int64(l.peekByte())
		l.advance(1)
	}
	if l.pos >= len(l.src) || l.peekByte() != '\'' {
		return Token{}, errf(start, "unterminated character literal")
	}
	l.advance(1)
	return Token{Kind: TCharLit, Int: v, Pos: start}, nil
}

func (l *Lexer) lexString(start Pos) (Token, error) {
	l.advance(1) // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) || l.peekByte() == '\n' {
			return Token{}, errf(start, "unterminated string literal")
		}
		c := l.peekByte()
		if c == '"' {
			l.advance(1)
			return Token{Kind: TStringLit, Str: sb.String(), Pos: start}, nil
		}
		if c == '\\' {
			l.advance(1)
			if l.pos >= len(l.src) {
				return Token{}, errf(start, "unterminated escape")
			}
			e, ok := unescape(l.peekByte())
			if !ok {
				return Token{}, errf(start, "unknown escape \\%c", l.peekByte())
			}
			sb.WriteByte(e)
			l.advance(1)
			continue
		}
		sb.WriteByte(c)
		l.advance(1)
	}
}

func unescape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return 0, false
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.advance(len(l.src) - l.pos)
				return
			}
			l.advance(end + 4)
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *Lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.advance(1)
	}
	return l.src[start:l.pos]
}

func (l *Lexer) peekByte() byte { return l.src[l.pos] }

func (l *Lexer) advance(n int) {
	for k := 0; k < n && l.pos < len(l.src); k++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
