package minic

// Node positions let diagnostics point at source; every expression also
// carries the type the checker computed for it.

// Expr is a Mini-C expression.  After Check succeeds, T holds the
// expression's type (arrays already decayed where C says they decay).
type Expr interface {
	Pos() Pos
	Type() *Type
	exprNode()
}

// exprBase provides Pos/Type storage for all expression nodes.
type exprBase struct {
	P Pos
	T *Type
}

func (e *exprBase) Pos() Pos     { return e.P }
func (e *exprBase) Type() *Type  { return e.T }
func (e *exprBase) exprNode()    {}
func (e *exprBase) setT(t *Type) { e.T = t }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	V float64
}

// StrLit is a string literal.  The checker assigns it a fresh global
// symbol (Sym) holding the NUL-terminated bytes.
type StrLit struct {
	exprBase
	V   string
	Sym *VarSym
}

// Ident is a name use, resolved by the checker to its symbol.
type Ident struct {
	exprBase
	Name string
	Sym  *VarSym
}

// Unary is -x, !x, ~x, *p, &lv, ++lv, --lv, lv++, lv--.
// Op spellings: "-", "!", "~", "*", "&", "++pre", "--pre", "++post", "--post".
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is l op r for the arithmetic, relational, shift, bitwise and
// logical (&&, ||) operators.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is l = r (plain assignment; compound assignments are expanded
// by the parser into Assign(l, Binary(op, l, r))).
type Assign struct {
	exprBase
	L, R Expr
}

// Cond is c ? t : f.
type Cond struct {
	exprBase
	C, T2, F Expr
}

// Call is a function call.
type Call struct {
	exprBase
	Name string
	Args []Expr
	Fn   *FuncDecl // resolved target, nil for builtins
}

// Index is base[idx].
type Index struct {
	exprBase
	Base, Idx Expr
}

// Conv is an implicit conversion the checker inserted.
type Conv struct {
	exprBase
	X Expr
}

// Stmt is a Mini-C statement.
type Stmt interface{ stmtNode() }

// DeclStmt declares local variables.
type DeclStmt struct {
	Vars []*VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// IfStmt is if (Cond) Then else Else (Else may be nil).
type IfStmt struct {
	Cond       Expr
	Then, Else Stmt
}

// WhileStmt is while (Cond) Body, or do Body while (Cond) when DoWhile.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is for (Init; Cond; Post) Body; any header part may be nil.
type ForStmt struct {
	Init, Post Expr
	Cond       Expr
	Body       Stmt
}

// ReturnStmt returns X (nil for void returns).
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// BlockStmt is { stmts... } with its own scope.
type BlockStmt struct{ List []Stmt }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*BlockStmt) stmtNode()    {}

// VarSym is the symbol for one declared variable (or string literal).
// The code generator assigns Frame offsets for locals.
type VarSym struct {
	Name   string
	Ty     *Type
	Global bool
	// Param marks function parameters and records their index.
	Param    bool
	ParamIdx int
	// Linked declaration for globals (initializer data).
	Decl *VarDecl
	// Unique assembly-level name (globals and string literals).
	AsmName string
}

// VarDecl is one declarator: a name, type, and optional initializer.
// Globals permit constant scalar initializers, brace lists for arrays,
// and string literals for char arrays.
type VarDecl struct {
	Name string
	Ty   *Type
	Pos  Pos

	Init     Expr   // scalar initializer (may be non-constant for locals)
	InitList []Expr // array initializer elements
	InitStr  string // char-array string initializer
	HasInit  bool

	Sym *VarSym // filled by the checker
}

// Param is a function parameter.
type Param struct {
	Name string
	Ty   *Type
	Pos  Pos
	Sym  *VarSym
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*Param
	Body   *BlockStmt
	Pos    Pos
}

// Program is a parsed compilation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl

	// Strings collects the string-literal symbols created during
	// checking, in order of appearance.
	Strings []*StrLit

	// Source is the text the program was parsed from; the code
	// generator forwards it so the profiler can print source lines.
	Source string
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
