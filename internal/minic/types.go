package minic

import (
	"fmt"
	"strings"
)

// TypeKind classifies Mini-C types.
type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeChar
	TypeDouble
	TypePointer
	TypeArray
	TypeFunc
)

// Type describes a Mini-C type.  Basic types are canonical singletons
// (VoidType etc.), so pointer equality works for them.
type Type struct {
	Kind TypeKind
	Elem *Type   // TypePointer, TypeArray
	Len  int     // TypeArray: element count
	Ret  *Type   // TypeFunc
	Par  []*Type // TypeFunc: parameter types
}

// Canonical basic types.
var (
	VoidType   = &Type{Kind: TypeVoid}
	IntType    = &Type{Kind: TypeInt}
	CharType   = &Type{Kind: TypeChar}
	DoubleType = &Type{Kind: TypeDouble}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns the type elem[n].
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: TypeArray, Elem: elem, Len: n} }

// Size returns the storage size in bytes.  Pointers are 8 bytes (the
// simulator's registers are 64-bit; the paper's 32-bit addresses would
// work identically at smaller scale).
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt:
		return 4
	case TypeDouble, TypePointer:
		return 8
	case TypeArray:
		return t.Elem.Size() * t.Len
	}
	return 0
}

// Align returns the required byte alignment.
func (t *Type) Align() int {
	if t.Kind == TypeArray {
		return t.Elem.Align()
	}
	if s := t.Size(); s > 0 {
		return s
	}
	return 1
}

// IsArith reports whether the type supports arithmetic (int, char,
// double).
func (t *Type) IsArith() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypeDouble
}

// IsInteger reports whether the type is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == TypeInt || t.Kind == TypeChar }

// IsScalar reports whether the type is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == TypePointer }

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypePointer:
		return t.Elem.Equal(u.Elem)
	case TypeArray:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case TypeFunc:
		if !t.Ret.Equal(u.Ret) || len(t.Par) != len(u.Par) {
			return false
		}
		for n := range t.Par {
			if !t.Par[n].Equal(u.Par[n]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeDouble:
		return "double"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TypeFunc:
		parts := make([]string, len(t.Par))
		for n, p := range t.Par {
			parts[n] = p.String()
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(parts, ","))
	}
	return "?"
}

// Decay converts array types to pointers to their element type (the C
// "array decays to pointer" rule applied in value contexts).
func (t *Type) Decay() *Type {
	if t.Kind == TypeArray {
		return PointerTo(t.Elem)
	}
	return t
}
