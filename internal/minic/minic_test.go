package minic

import (
	"strings"
	"testing"
)

// --- lexer ---------------------------------------------------------------

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`int x = 42; double d = 1.5e3; char c = 'a';`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TKeyword, TIdent, TPunct, TIntLit, TPunct,
		TKeyword, TIdent, TPunct, TFloatLit, TPunct,
		TKeyword, TIdent, TPunct, TCharLit, TPunct, TEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for n := range want {
		if kinds[n] != want[n] {
			t.Errorf("token %d kind = %v, want %v", n, kinds[n], want[n])
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("int literal = %d", toks[3].Int)
	}
	if toks[8].Flt != 1500 {
		t.Errorf("float literal = %g", toks[8].Flt)
	}
	if toks[13].Int != 'a' {
		t.Errorf("char literal = %d", toks[13].Int)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(`a <<= 1; b >>= 2; a << b >> c <= d >= e == f != g && h || i ++ -- += -=`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TPunct {
			ops = append(ops, tk.Text)
		}
	}
	for _, want := range []string{"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-="} {
		found := false
		for _, o := range ops {
			if o == want {
				found = true
			}
		}
		if !found {
			t.Errorf("operator %q not lexed: %v", want, ops)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("int /* block \n comment */ x; // line\nint y;")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, tk := range toks {
		if tk.Kind == TIdent {
			names = append(names, tk.Text)
		}
	}
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("idents = %v", names)
	}
}

func TestTokenizeString(t *testing.T) {
	toks, err := Tokenize(`"hi\n\t\"q\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Str != "hi\n\t\"q\"" {
		t.Errorf("string = %q", toks[0].Str)
	}
}

func TestTokenizeHex(t *testing.T) {
	toks, err := Tokenize("0x1f")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TIntLit || toks[0].Int != 31 {
		t.Errorf("hex = %+v", toks[0])
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"'", "'ab", `"unterminated`, "@", `'\q'`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

// --- parser --------------------------------------------------------------

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestParseLivermore5(t *testing.T) {
	prog := mustCompile(t, `
double x[100], y[100], z[100];
void kernel(int n) {
    int i;
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
}
int main(void) { kernel(100); return 0; }
`)
	if len(prog.Globals) != 3 || len(prog.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(prog.Globals), len(prog.Funcs))
	}
	k := prog.Func("kernel")
	if k == nil || len(k.Params) != 1 || k.Params[0].Ty != IntType {
		t.Fatalf("kernel signature wrong: %+v", k)
	}
	// Body: DeclStmt, ForStmt.
	if len(k.Body.List) != 2 {
		t.Fatalf("kernel body = %d stmts", len(k.Body.List))
	}
	fs, ok := k.Body.List[1].(*ForStmt)
	if !ok {
		t.Fatalf("second stmt is %T", k.Body.List[1])
	}
	as, ok := fs.Body.(*ExprStmt).X.(*Assign)
	if !ok {
		t.Fatalf("loop body is %T", fs.Body.(*ExprStmt).X)
	}
	if as.L.Type() != DoubleType {
		t.Errorf("x[i] type = %s", as.L.Type())
	}
}

func TestParsePointerDecls(t *testing.T) {
	prog := mustCompile(t, `
int *p;
double **q;
int f(int *a, char *s) { return a[0] + s[1]; }
`)
	if prog.Globals[0].Ty.Kind != TypePointer || prog.Globals[0].Ty.Elem != IntType {
		t.Errorf("p type = %s", prog.Globals[0].Ty)
	}
	if prog.Globals[1].Ty.Elem.Kind != TypePointer {
		t.Errorf("q type = %s", prog.Globals[1].Ty)
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	prog := mustCompile(t, `int a, b = 3, c[4];`)
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	if !prog.Globals[1].HasInit {
		t.Error("b lost initializer")
	}
	if prog.Globals[2].Ty.Kind != TypeArray || prog.Globals[2].Ty.Len != 4 {
		t.Errorf("c type = %s", prog.Globals[2].Ty)
	}
}

func TestParseArrayInitializers(t *testing.T) {
	prog := mustCompile(t, `
int tab[3] = {1, 2, 3};
char msg[] = "hey";
double w[] = {1.5, 2.5};
`)
	if prog.Globals[1].Ty.Len != 4 {
		t.Errorf("msg len = %d, want 4 (incl NUL)", prog.Globals[1].Ty.Len)
	}
	if prog.Globals[2].Ty.Len != 2 {
		t.Errorf("w len = %d", prog.Globals[2].Ty.Len)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustCompile(t, `int f(int a, int b, int c) { return a + b * c; }`)
	ret := prog.Funcs[0].Body.List[0].(*ReturnStmt)
	add, ok := ret.X.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %v", ret.X)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("right op = %v", add.R)
	}
}

func TestParseCompoundAssign(t *testing.T) {
	prog := mustCompile(t, `int f(int a) { a += 2; a <<= 1; return a; }`)
	s := prog.Funcs[0].Body.List[0].(*ExprStmt)
	as, ok := s.X.(*Assign)
	if !ok {
		t.Fatalf("stmt = %T", s.X)
	}
	bin, ok := as.R.(*Binary)
	if !ok || bin.Op != "+" {
		t.Fatalf("compound RHS = %v", as.R)
	}
}

func TestParseIncDec(t *testing.T) {
	prog := mustCompile(t, `int f(int a) { int b; b = a++; b = ++a; a--; return b; }`)
	body := prog.Funcs[0].Body.List
	post := body[1].(*ExprStmt).X.(*Assign).R.(*Unary)
	if post.Op != "++post" {
		t.Errorf("op = %q", post.Op)
	}
	pre := body[2].(*ExprStmt).X.(*Assign).R.(*Unary)
	if pre.Op != "++pre" {
		t.Errorf("op = %q", pre.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	mustCompile(t, `
int f(int n) {
    int s, i;
    s = 0;
    i = 0;
    while (i < n) { s += i; i++; }
    do { s--; } while (s > 100);
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        if (s > 1000) break;
        s += i;
    }
    if (s < 0) s = -s; else s = s + 1;
    return s;
}`)
}

func TestParseTernary(t *testing.T) {
	prog := mustCompile(t, `int max(int a, int b) { return a > b ? a : b; }`)
	ret := prog.Funcs[0].Body.List[0].(*ReturnStmt)
	if _, ok := ret.X.(*Cond); !ok {
		t.Fatalf("not ternary: %T", ret.X)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int;",
		"int f( { }",
		"int f() { return }",
		"int f() { if (1 }",
		"int a[0];",
		"int a[x];",
		"xyz w;",
		"int f() { 3 = 4; }",
		"int f() { for (;;) }",
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			// Some only fail in Check.
			if _, err2 := Compile(src); err2 == nil {
				t.Errorf("Compile(%q) succeeded", src)
			}
		}
	}
}

// --- checker -------------------------------------------------------------

func TestCheckUndefined(t *testing.T) {
	for _, src := range []string{
		"int f() { return q; }",
		"int f() { g(); return 0; }",
		"int f(int a) { return a + b; }",
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want undefined error", src)
		}
	}
}

func TestCheckTypeErrors(t *testing.T) {
	bad := []string{
		"double d; int f() { return d % 2; }",
		"int a[3]; int f() { a = 0; return 0; }",
		"int f() { return *3; }",
		"int x; int f() { return x[2]; }",
		"void g() {} int f() { return g() + 1; }",
		"int f(int a) { return f(a, a); }",
		"int f() { break; }",
		"int f() { continue; }",
		"void f() { return 3; }",
		"int f() { return; }",
		"int f() { int a; int a; return 0; }",
		"int f() { return &3; }",
		"int f() { 4++; return 0; }",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want type error", src)
		}
	}
}

func TestCheckImplicitConversions(t *testing.T) {
	prog := mustCompile(t, `
double f(int a, double b) { return a + b; }
int g() { return 2.5; }
`)
	ret := prog.Funcs[0].Body.List[0].(*ReturnStmt)
	bin := ret.X.(*Binary)
	if bin.L.Type() != DoubleType || bin.R.Type() != DoubleType {
		t.Errorf("operand types %s, %s", bin.L.Type(), bin.R.Type())
	}
	if _, ok := bin.L.(*Conv); !ok {
		t.Errorf("int operand not converted: %T", bin.L)
	}
	ret2 := prog.Funcs[1].Body.List[0].(*ReturnStmt)
	if ret2.X.Type() != IntType {
		t.Errorf("return conv type = %s", ret2.X.Type())
	}
}

func TestCheckCharPromotion(t *testing.T) {
	prog := mustCompile(t, `char c; int f() { return c + 1; }`)
	ret := prog.Funcs[0].Body.List[0].(*ReturnStmt)
	bin := ret.X.(*Binary)
	if bin.L.Type() != IntType {
		t.Errorf("char operand type = %s", bin.L.Type())
	}
}

func TestCheckArrayDecay(t *testing.T) {
	prog := mustCompile(t, `
int a[10];
int *f() { return a; }
int g(int *p) { return p[0]; }
int h() { return g(a); }
`)
	ret := prog.Funcs[0].Body.List[0].(*ReturnStmt)
	if ret.X.Type().Kind != TypePointer {
		t.Errorf("decayed type = %s", ret.X.Type())
	}
}

func TestCheckPointerArith(t *testing.T) {
	prog := mustCompile(t, `
int a[10];
int f(int *p, int n) { return *(p + n) + (a + 2 - a); }
`)
	_ = prog
}

func TestCheckStringLiterals(t *testing.T) {
	prog := mustCompile(t, `
int puts2(char *s) { int i; i = 0; while (s[i]) { putchar(s[i]); i++; } return i; }
int main() { puts2("hello"); return 0; }
`)
	if len(prog.Strings) != 1 {
		t.Fatalf("strings = %d", len(prog.Strings))
	}
	s := prog.Strings[0]
	if s.Sym.Ty.Len != 6 {
		t.Errorf("string storage = %s", s.Sym.Ty)
	}
	if s.Type().Kind != TypePointer {
		t.Errorf("string value type = %s", s.Type())
	}
}

func TestCheckBuiltins(t *testing.T) {
	mustCompile(t, `
double f(double x) { return sqrt(x) + sin(x) * cos(x) + exp(log(x)) + atan(x) + fabs(-x); }
int main() { putchar(65); puti(42); putd(2.5); return 0; }
`)
	if _, err := Compile(`int sqrt(int x) { return x; }`); err == nil {
		t.Error("shadowing builtin should fail")
	}
	if _, err := Compile(`int f() { return sqrt(2.0, 3.0); }`); err == nil {
		t.Error("arity error should fail")
	}
}

func TestCheckGlobalInitConstness(t *testing.T) {
	if _, err := Compile(`int a; int b = a;`); err == nil {
		t.Error("non-constant global init should fail")
	}
	mustCompile(t, `int b = -5; double d = 2.5; int t[2] = {1, 2};`)
}

func TestCheckRecursion(t *testing.T) {
	mustCompile(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
`)
}

func TestCheckScopes(t *testing.T) {
	mustCompile(t, `
int x;
int f() {
    int x;
    x = 1;
    { int x; x = 2; }
    return x;
}`)
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Compile("int f() {\n  return q;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line: %v", err)
	}
}

func TestTypeHelpers(t *testing.T) {
	at := ArrayOf(DoubleType, 10)
	if at.Size() != 80 || at.Align() != 8 {
		t.Errorf("array size/align = %d/%d", at.Size(), at.Align())
	}
	pt := PointerTo(IntType)
	if pt.Size() != 8 {
		t.Errorf("pointer size = %d", pt.Size())
	}
	if !at.Decay().Equal(PointerTo(DoubleType)) {
		t.Errorf("decay = %s", at.Decay())
	}
	if IntType.String() != "int" || pt.String() != "int*" || at.String() != "double[10]" {
		t.Errorf("strings: %s %s %s", IntType, pt, at)
	}
	if !IntType.IsInteger() || !CharType.IsInteger() || DoubleType.IsInteger() {
		t.Error("IsInteger wrong")
	}
	if !pt.IsScalar() || at.IsScalar() {
		t.Error("IsScalar wrong")
	}
}
