// Package minic implements the front end of the compiler: a lexer,
// recursive-descent parser and type checker for Mini-C, the C subset in
// which the paper's benchmark programs are written.
//
// Mini-C covers what the ASPLOS'91 evaluation needs: int/char/double
// scalars, one-dimensional arrays, pointers with arithmetic, functions
// (including recursion, for quicksort), the full C expression grammar
// over those types, and if/while/for/do/break/continue/return control
// flow.  Structs, unions, typedefs, multi-dimensional arrays and the
// preprocessor are out of scope; the benchmark sources avoid them.
//
// The front end performs no optimization whatsoever — mirroring the
// paper's design, it produces a checked AST from which package acode
// generates naive but correct code, and every code-quality decision is
// delayed to the RTL optimizer.
package minic

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

const (
	TEOF TokKind = iota
	TIdent
	TIntLit
	TFloatLit
	TCharLit
	TStringLit
	TPunct   // operators and punctuation, Text holds the spelling
	TKeyword // reserved word, Text holds the spelling
)

var kindNames = map[TokKind]string{
	TEOF: "end of file", TIdent: "identifier", TIntLit: "integer",
	TFloatLit: "float", TCharLit: "char", TStringLit: "string",
	TPunct: "punctuation", TKeyword: "keyword",
}

func (k TokKind) String() string { return kindNames[k] }

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string  // identifier name, punct/keyword spelling, or raw literal
	Int  int64   // TIntLit, TCharLit
	Flt  float64 // TFloatLit
	Str  string  // TStringLit (decoded)
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic tied to a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{pos, fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"int": true, "char": true, "double": true, "void": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true,
}
