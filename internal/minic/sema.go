package minic

import "fmt"

// Builtins are the functions the runtime provides without declaration:
// simple output routines (the simulator implements them directly) and
// the FEU math operations used by the whetstone-like benchmark.
var Builtins = map[string]*Type{
	"putchar": {Kind: TypeFunc, Ret: IntType, Par: []*Type{IntType}},
	"puti":    {Kind: TypeFunc, Ret: VoidType, Par: []*Type{IntType}},
	"putd":    {Kind: TypeFunc, Ret: VoidType, Par: []*Type{DoubleType}},
	"sqrt":    {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"sin":     {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"cos":     {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"exp":     {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"log":     {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"atan":    {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
	"fabs":    {Kind: TypeFunc, Ret: DoubleType, Par: []*Type{DoubleType}},
}

// checker carries the state of one Check run.
type checker struct {
	prog    *Program
	scopes  []map[string]*VarSym
	curFn   *FuncDecl
	loop    int // nesting depth of loops (for break/continue)
	nextStr int
	funcs   map[string]*FuncDecl
}

// Check resolves names, computes types, inserts implicit conversions
// and validates the program.  It mutates the AST in place.
func Check(prog *Program) error {
	c := &checker{prog: prog, funcs: map[string]*FuncDecl{}}
	c.push()
	// Declare functions first so forward references and recursion work.
	for _, fn := range prog.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return errf(fn.Pos, "function %q redefined", fn.Name)
		}
		if Builtins[fn.Name] != nil {
			return errf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	// Globals.
	for _, d := range prog.Globals {
		if err := c.declareGlobal(d); err != nil {
			return err
		}
	}
	// Function bodies.
	for _, fn := range prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarSym{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *VarSym, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return errf(pos, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *VarSym {
	for n := len(c.scopes) - 1; n >= 0; n-- {
		if s := c.scopes[n][name]; s != nil {
			return s
		}
	}
	return nil
}

func (c *checker) declareGlobal(d *VarDecl) error {
	if d.Ty == VoidType {
		return errf(d.Pos, "variable %q has void type", d.Name)
	}
	sym := &VarSym{Name: d.Name, Ty: d.Ty, Global: true, Decl: d, AsmName: d.Name}
	d.Sym = sym
	if err := c.declare(sym, d.Pos); err != nil {
		return err
	}
	return c.checkInitializer(d, true)
}

func (c *checker) checkInitializer(d *VarDecl, global bool) error {
	if !d.HasInit {
		return nil
	}
	switch {
	case d.InitStr != "":
		if d.Ty.Kind != TypeArray || d.Ty.Elem.Kind != TypeChar {
			return errf(d.Pos, "string initializer requires a char array")
		}
		if len(d.InitStr)+1 > d.Ty.Size() {
			return errf(d.Pos, "string initializer too long for %q", d.Name)
		}
	case d.InitList != nil:
		if d.Ty.Kind != TypeArray {
			return errf(d.Pos, "brace initializer requires an array")
		}
		if len(d.InitList) > d.Ty.Len {
			return errf(d.Pos, "too many initializers for %q", d.Name)
		}
		for n, e := range d.InitList {
			ce, err := c.checkExpr(e)
			if err != nil {
				return err
			}
			ce, err = c.convertTo(ce, d.Ty.Elem)
			if err != nil {
				return err
			}
			if global && !isConstExpr(ce) {
				return errf(d.Pos, "global initializer element %d is not constant", n)
			}
			d.InitList[n] = ce
		}
	default:
		ce, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		if d.Ty.Kind == TypeArray {
			return errf(d.Pos, "cannot assign to array %q", d.Name)
		}
		ce, err = c.convertTo(ce, d.Ty)
		if err != nil {
			return err
		}
		if global && !isConstExpr(ce) {
			return errf(d.Pos, "global initializer for %q is not constant", d.Name)
		}
		d.Init = ce
	}
	return nil
}

// isConstExpr reports whether the (checked) expression is a literal,
// possibly behind conversions or a leading negation.
func isConstExpr(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *Conv:
		return isConstExpr(x.X)
	case *Unary:
		return x.Op == "-" && isConstExpr(x.X)
	}
	return false
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.curFn = fn
	c.push()
	defer c.pop()
	for n, p := range fn.Params {
		if p.Ty == VoidType {
			return errf(p.Pos, "parameter %q has void type", p.Name)
		}
		sym := &VarSym{Name: p.Name, Ty: p.Ty, Param: true, ParamIdx: n}
		p.Sym = sym
		if err := c.declare(sym, p.Pos); err != nil {
			return err
		}
	}
	return c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.List {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		for _, d := range st.Vars {
			if d.Ty == VoidType {
				return errf(d.Pos, "variable %q has void type", d.Name)
			}
			sym := &VarSym{Name: d.Name, Ty: d.Ty}
			d.Sym = sym
			if err := c.declare(sym, d.Pos); err != nil {
				return err
			}
			if err := c.checkInitializer(d, false); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		e, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		st.X = e
		return nil
	case *IfStmt:
		e, err := c.checkCond(st.Cond)
		if err != nil {
			return err
		}
		st.Cond = e
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		e, err := c.checkCond(st.Cond)
		if err != nil {
			return err
		}
		st.Cond = e
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *ForStmt:
		var err error
		if st.Init != nil {
			if st.Init, err = c.checkExpr(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if st.Cond, err = c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if st.Post, err = c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		if st.X == nil {
			if c.curFn.Ret != VoidType {
				return errf(st.Pos, "function %q must return %s", c.curFn.Name, c.curFn.Ret)
			}
			return nil
		}
		if c.curFn.Ret == VoidType {
			return errf(st.Pos, "void function %q returns a value", c.curFn.Name)
		}
		e, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		e, err = c.convertTo(e, c.curFn.Ret)
		if err != nil {
			return err
		}
		st.X = e
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// checkCond checks a boolean context expression: any scalar works.
func (c *checker) checkCond(e Expr) (Expr, error) {
	ce, err := c.checkExpr(e)
	if err != nil {
		return nil, err
	}
	if !ce.Type().Decay().IsScalar() {
		return nil, errf(ce.Pos(), "condition has non-scalar type %s", ce.Type())
	}
	return ce, nil
}

// checkExpr type-checks e and returns the (possibly rewritten)
// expression with its type set.
func (c *checker) checkExpr(e Expr) (Expr, error) {
	switch x := e.(type) {
	case *IntLit:
		x.setT(IntType)
		return x, nil
	case *FloatLit:
		x.setT(DoubleType)
		return x, nil
	case *StrLit:
		return c.checkStrLit(x)
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return nil, errf(x.P, "undefined name %q", x.Name)
		}
		x.Sym = sym
		x.setT(sym.Ty)
		return x, nil
	case *Unary:
		return c.checkUnary(x)
	case *Binary:
		return c.checkBinary(x)
	case *Assign:
		return c.checkAssign(x)
	case *Cond:
		return c.checkCondExpr(x)
	case *Call:
		return c.checkCall(x)
	case *Index:
		return c.checkIndex(x)
	case *Conv:
		return x, nil // already checked
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (c *checker) checkStrLit(x *StrLit) (Expr, error) {
	name := fmt.Sprintf("Lstr%d", c.nextStr)
	c.nextStr++
	sym := &VarSym{
		Name:    name,
		Ty:      ArrayOf(CharType, len(x.V)+1),
		Global:  true,
		AsmName: name,
	}
	x.Sym = sym
	x.setT(PointerTo(CharType))
	c.prog.Strings = append(c.prog.Strings, x)
	return x, nil
}

// decayVal converts array-typed values to pointers by wrapping them in
// a Conv node (codegen produces the array's address).
func decayVal(e Expr) Expr {
	if e.Type().Kind == TypeArray {
		cv := &Conv{X: e}
		cv.P = e.Pos()
		cv.setT(PointerTo(e.Type().Elem))
		return cv
	}
	return e
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Type().Kind != TypeArray && x.Type().Kind != TypeFunc
	case *Index:
		return true
	case *Unary:
		return x.Op == "*"
	}
	return false
}

// hasSideEffects reports whether evaluating e could write state (used
// to reject double-evaluating compound-assignment targets).
func hasSideEffects(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *StrLit, *Ident:
		return false
	case *Unary:
		if x.Op == "++pre" || x.Op == "--pre" || x.Op == "++post" || x.Op == "--post" {
			return true
		}
		return hasSideEffects(x.X)
	case *Binary:
		return hasSideEffects(x.L) || hasSideEffects(x.R)
	case *Assign, *Call:
		return true
	case *Cond:
		return hasSideEffects(x.C) || hasSideEffects(x.T2) || hasSideEffects(x.F)
	case *Index:
		return hasSideEffects(x.Base) || hasSideEffects(x.Idx)
	case *Conv:
		return hasSideEffects(x.X)
	}
	return true
}

func (c *checker) checkUnary(x *Unary) (Expr, error) {
	inner, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		v := decayVal(inner)
		if !v.Type().IsArith() {
			return nil, errf(x.P, "unary - requires arithmetic type, got %s", v.Type())
		}
		x.X = promote(v)
		x.setT(x.X.Type())
		return x, nil
	case "~":
		v := decayVal(inner)
		if !v.Type().IsInteger() {
			return nil, errf(x.P, "~ requires integer type, got %s", v.Type())
		}
		x.X = promote(v)
		x.setT(IntType)
		return x, nil
	case "!":
		v := decayVal(inner)
		if !v.Type().IsScalar() {
			return nil, errf(x.P, "! requires scalar type, got %s", v.Type())
		}
		x.X = v
		x.setT(IntType)
		return x, nil
	case "*":
		v := decayVal(inner)
		if v.Type().Kind != TypePointer {
			return nil, errf(x.P, "cannot dereference %s", v.Type())
		}
		x.X = v
		x.setT(v.Type().Elem)
		return x, nil
	case "&":
		if !isLvalue(inner) && inner.Type().Kind != TypeArray {
			return nil, errf(x.P, "& requires an lvalue")
		}
		x.X = inner
		if inner.Type().Kind == TypeArray {
			x.setT(PointerTo(inner.Type().Elem))
		} else {
			x.setT(PointerTo(inner.Type()))
		}
		return x, nil
	case "++pre", "--pre", "++post", "--post":
		if !isLvalue(inner) {
			return nil, errf(x.P, "%s requires an lvalue", x.Op[:2])
		}
		t := inner.Type()
		if !t.IsScalar() {
			return nil, errf(x.P, "%s requires scalar type, got %s", x.Op[:2], t)
		}
		x.X = inner
		x.setT(t)
		return x, nil
	}
	return nil, errf(x.P, "unknown unary operator %q", x.Op)
}

// promote applies the integer promotions: char widens to int.
func promote(e Expr) Expr {
	if e.Type().Kind == TypeChar {
		cv := &Conv{X: e}
		cv.P = e.Pos()
		cv.setT(IntType)
		return cv
	}
	return e
}

// convertTo coerces e to type want, inserting a Conv when the types
// differ but conversion is allowed.
func (c *checker) convertTo(e Expr, want *Type) (Expr, error) {
	e = decayVal(e)
	have := e.Type()
	if have.Equal(want) {
		return e, nil
	}
	switch {
	case have.IsArith() && want.IsArith():
		cv := &Conv{X: e}
		cv.P = e.Pos()
		cv.setT(want)
		return cv, nil
	case want.Kind == TypePointer && have.Kind == TypePointer:
		// Allow any pointer-to-pointer conversion (the benchmarks use
		// only matching types; this mirrors pre-ANSI C laxity).
		cv := &Conv{X: e}
		cv.P = e.Pos()
		cv.setT(want)
		return cv, nil
	case want.Kind == TypePointer && isZeroLit(e):
		cv := &Conv{X: e}
		cv.P = e.Pos()
		cv.setT(want)
		return cv, nil
	}
	return nil, errf(e.Pos(), "cannot convert %s to %s", have, want)
}

func isZeroLit(e Expr) bool {
	l, ok := e.(*IntLit)
	return ok && l.V == 0
}

func (c *checker) checkBinary(x *Binary) (Expr, error) {
	l, err := c.checkExpr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.checkExpr(x.R)
	if err != nil {
		return nil, err
	}
	l, r = decayVal(l), decayVal(r)
	lt, rt := l.Type(), r.Type()
	switch x.Op {
	case "&&", "||":
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, errf(x.P, "%s requires scalar operands", x.Op)
		}
		x.L, x.R = l, r
		x.setT(IntType)
		return x, nil
	case "==", "!=", "<", "<=", ">", ">=":
		if lt.Kind == TypePointer || rt.Kind == TypePointer {
			if lt.Kind != TypePointer {
				l, err = c.convertTo(l, rt)
			} else if rt.Kind != TypePointer {
				r, err = c.convertTo(r, lt)
			}
			if err != nil {
				return nil, err
			}
			x.L, x.R = l, r
			x.setT(IntType)
			return x, nil
		}
		if !lt.IsArith() || !rt.IsArith() {
			return nil, errf(x.P, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.L, x.R = usualConversions(l, r)
		x.setT(IntType)
		return x, nil
	case "+", "-":
		// Pointer arithmetic.
		if lt.Kind == TypePointer && rt.IsInteger() {
			x.L, x.R = l, promote(r)
			x.setT(lt)
			return x, nil
		}
		if x.Op == "+" && lt.IsInteger() && rt.Kind == TypePointer {
			// Normalize to pointer-first.
			x.L, x.R = r, promote(l)
			x.setT(rt)
			return x, nil
		}
		if x.Op == "-" && lt.Kind == TypePointer && rt.Kind == TypePointer {
			if !lt.Elem.Equal(rt.Elem) {
				return nil, errf(x.P, "pointer subtraction of different types")
			}
			x.L, x.R = l, r
			x.setT(IntType)
			return x, nil
		}
		fallthrough
	case "*", "/":
		if !lt.IsArith() || !rt.IsArith() {
			return nil, errf(x.P, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.L, x.R = usualConversions(l, r)
		x.setT(x.L.Type())
		return x, nil
	case "%", "<<", ">>", "&", "|", "^":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, errf(x.P, "%s requires integer operands, got %s and %s", x.Op, lt, rt)
		}
		x.L, x.R = promote(l), promote(r)
		x.setT(IntType)
		return x, nil
	}
	return nil, errf(x.P, "unknown binary operator %q", x.Op)
}

// usualConversions applies the usual arithmetic conversions to a pair
// of arithmetic operands.
func usualConversions(l, r Expr) (Expr, Expr) {
	if l.Type().Kind == TypeDouble || r.Type().Kind == TypeDouble {
		return toDouble(l), toDouble(r)
	}
	return promote(l), promote(r)
}

func toDouble(e Expr) Expr {
	if e.Type().Kind == TypeDouble {
		return e
	}
	cv := &Conv{X: e}
	cv.P = e.Pos()
	cv.setT(DoubleType)
	return cv
}

func (c *checker) checkAssign(x *Assign) (Expr, error) {
	l, err := c.checkExpr(x.L)
	if err != nil {
		return nil, err
	}
	if !isLvalue(l) {
		return nil, errf(x.P, "assignment target is not an lvalue")
	}
	if hasSideEffects(l) {
		// Compound assignments expand to double evaluation of the
		// target; forbid targets where that could matter.
		if _, isBin := x.R.(*Binary); isBin {
			if bin := x.R.(*Binary); sameLvalue(bin.L, x.L) {
				return nil, errf(x.P, "compound assignment target has side effects")
			}
		}
	}
	r, err := c.checkExpr(x.R)
	if err != nil {
		return nil, err
	}
	r, err = c.convertTo(r, l.Type())
	if err != nil {
		return nil, err
	}
	x.L, x.R = l, r
	x.setT(l.Type())
	return x, nil
}

// sameLvalue reports whether two pre-check AST nodes are the same
// syntactic lvalue (the parser aliases them for compound assignment).
func sameLvalue(a, b Expr) bool { return a == b }

func (c *checker) checkCondExpr(x *Cond) (Expr, error) {
	cond, err := c.checkCond(x.C)
	if err != nil {
		return nil, err
	}
	t, err := c.checkExpr(x.T2)
	if err != nil {
		return nil, err
	}
	f, err := c.checkExpr(x.F)
	if err != nil {
		return nil, err
	}
	t, f = decayVal(t), decayVal(f)
	if t.Type().IsArith() && f.Type().IsArith() {
		t, f = usualConversions(t, f)
	} else if !t.Type().Equal(f.Type()) {
		return nil, errf(x.P, "mismatched ?: arms: %s and %s", t.Type(), f.Type())
	}
	x.C, x.T2, x.F = cond, t, f
	x.setT(t.Type())
	return x, nil
}

func (c *checker) checkCall(x *Call) (Expr, error) {
	var sig *Type
	if fn := c.funcs[x.Name]; fn != nil {
		x.Fn = fn
		par := make([]*Type, len(fn.Params))
		for n, p := range fn.Params {
			par[n] = p.Ty
		}
		sig = &Type{Kind: TypeFunc, Ret: fn.Ret, Par: par}
	} else if b := Builtins[x.Name]; b != nil {
		sig = b
	} else {
		return nil, errf(x.P, "call to undefined function %q", x.Name)
	}
	if len(x.Args) != len(sig.Par) {
		return nil, errf(x.P, "%q expects %d arguments, got %d", x.Name, len(sig.Par), len(x.Args))
	}
	for n, a := range x.Args {
		ca, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		ca, err = c.convertTo(ca, sig.Par[n])
		if err != nil {
			return nil, err
		}
		x.Args[n] = ca
	}
	x.setT(sig.Ret)
	return x, nil
}

func (c *checker) checkIndex(x *Index) (Expr, error) {
	base, err := c.checkExpr(x.Base)
	if err != nil {
		return nil, err
	}
	idx, err := c.checkExpr(x.Idx)
	if err != nil {
		return nil, err
	}
	bt := base.Type()
	if bt.Kind != TypeArray && bt.Kind != TypePointer {
		return nil, errf(x.P, "cannot index %s", bt)
	}
	if !idx.Type().Decay().IsInteger() {
		return nil, errf(x.P, "array index must be integer, got %s", idx.Type())
	}
	x.Base = base
	x.Idx = promote(decayVal(idx))
	x.setT(bt.Elem)
	return x, nil
}

// Compile is a convenience: parse then check.
func Compile(src string) (*Program, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	prog.Source = src
	return prog, nil
}
