package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Peer is one configured cluster member: a stable identity plus the
// base URL of its internal peer listener.
type Peer struct {
	ID   string
	Addr string
}

// ParsePeers parses the -cluster-peers flag format: comma-separated
// id=addr pairs ("a=host:1234,b=http://host:1235").  Addresses without
// a scheme get "http://".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		peers = append(peers, Peer{ID: id, Addr: strings.TrimSuffix(addr, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// Config configures a Cluster.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, including Self.
	Peers []Peer
	// VNodes is the virtual-node count per node (default DefaultVNodes).
	VNodes int
	// ProbeEvery is the health-probe period (default 2s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe's HTTP round trip (default 1s).
	ProbeTimeout time.Duration
	// Client is the HTTP client for probes and forwards (default: a
	// dedicated client with sane connection reuse).
	Client *http.Client
}

// peerState is the live health record of one remote peer.
type peerState struct {
	id, addr string
	up       atomic.Bool

	mu        sync.Mutex
	lastErr   string
	lastProbe time.Time
	probes    int64
	failures  int64
}

// PeerStatus is the externally visible snapshot of one peer, rendered
// into /healthz and /debug/statusz.
type PeerStatus struct {
	ID        string  `json:"id"`
	Addr      string  `json:"addr"`
	Up        bool    `json:"up"`
	LastError string  `json:"last_error,omitempty"`
	AgeSec    float64 `json:"last_probe_age_seconds,omitempty"`
	Probes    int64   `json:"probes"`
	Failures  int64   `json:"failures"`
}

// Health is the cluster section of /healthz.
type Health struct {
	Self          string       `json:"self"`
	Nodes         int          `json:"nodes"`
	VNodes        int          `json:"vnodes"`
	OwnedFraction float64      `json:"owned_fraction"`
	PeersUp       int          `json:"peers_up"`
	Peers         []PeerStatus `json:"peers"`
}

// Route is the ownership decision for one key.
type Route struct {
	ID    string // owning node
	Addr  string // owner's peer address ("" when Local)
	Local bool   // this node owns the key
	Up    bool   // owner believed healthy (true when Local)
}

// Cluster is one node's view of the mesh: the shared ring plus live
// health state for every remote peer.  All methods are safe for
// concurrent use.
type Cluster struct {
	self      string
	selfAddr  string
	ring      *Ring
	peers     []*peerState // remote peers only, sorted by ID
	byID      map[string]*peerState
	client    *http.Client
	ownedFrac float64

	probeEvery   time.Duration
	probeTimeout time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  atomic.Bool
}

// New validates the membership and builds the node's cluster view.
// Peers start optimistically up; the probe loop (Start) and passive
// forward failures (MarkDown) correct that within one probe period.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self node ID required")
	}
	ids := make([]string, 0, len(cfg.Peers))
	byID := make(map[string]*peerState, len(cfg.Peers))
	var selfAddr string
	selfSeen := false
	for _, p := range cfg.Peers {
		if p.ID == "" || p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer with empty ID or address")
		}
		if _, dup := byID[p.ID]; dup || (p.ID == cfg.Self && selfSeen) {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			selfSeen = true
			selfAddr = p.Addr
			continue
		}
		ps := &peerState{id: p.ID, addr: strings.TrimSuffix(p.Addr, "/")}
		ps.up.Store(true)
		byID[p.ID] = ps
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: self %q not in peer list", cfg.Self)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	peers := make([]*peerState, 0, len(byID))
	for _, ps := range byID {
		peers = append(peers, ps)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].id < peers[j].id })
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return &Cluster{
		self:         cfg.Self,
		selfAddr:     selfAddr,
		ring:         ring,
		peers:        peers,
		byID:         byID,
		client:       client,
		ownedFrac:    ring.OwnedFraction(cfg.Self),
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: cfg.ProbeTimeout,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}, nil
}

// Self is this node's ID.
func (c *Cluster) Self() string { return c.self }

// SelfAddr is this node's advertised peer address.
func (c *Cluster) SelfAddr() string { return c.selfAddr }

// Nodes is the full sorted membership (including self).
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// OwnedFraction is the share of the key space this node owns.
func (c *Cluster) OwnedFraction() float64 { return c.ownedFrac }

// Do issues an HTTP request on the cluster's shared client (forwards
// reuse the same connection pool the prober warms).
func (c *Cluster) Do(req *http.Request) (*http.Response, error) { return c.client.Do(req) }

// Route decides where a key's request should execute.
func (c *Cluster) Route(key []byte) Route {
	owner := c.ring.Owner(key)
	if owner == c.self {
		return Route{ID: owner, Local: true, Up: true}
	}
	ps := c.byID[owner]
	return Route{ID: owner, Addr: ps.addr, Up: ps.up.Load()}
}

// PeerUp reports whether the peer is currently believed healthy (true
// for self).
func (c *Cluster) PeerUp(id string) bool {
	if id == c.self {
		return true
	}
	ps, ok := c.byID[id]
	return ok && ps.up.Load()
}

// MarkDown records a passive failure observation (a forward that could
// not reach the peer), flipping it down immediately instead of waiting
// for the next probe.  The probe loop brings it back up.
func (c *Cluster) MarkDown(id, reason string) {
	ps, ok := c.byID[id]
	if !ok {
		return
	}
	ps.up.Store(false)
	ps.mu.Lock()
	ps.lastErr = reason
	ps.failures++
	ps.mu.Unlock()
}

// Start launches the background probe loop.  Idempotent; Close stops
// it.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		// Prime health immediately rather than serving a whole period
		// on optimistic state.
		c.Probe(context.Background())
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Probe(context.Background())
			}
		}
	}()
}

// Close stops the probe loop (if started) and waits for it to exit.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

// Probe runs one synchronous health round: every remote peer's
// /healthz is fetched in parallel and its up/down state updated.  A
// peer is up only when it answers 200 within the probe timeout — a
// draining peer (503) is down for routing purposes, which is exactly
// what a load balancer would conclude.
func (c *Cluster) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ps := range c.peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			c.probeOne(ctx, ps)
		}(ps)
	}
	wg.Wait()
}

func (c *Cluster) probeOne(ctx context.Context, ps *peerState) {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	var errMsg string
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.addr+"/healthz", nil)
	if err != nil {
		errMsg = err.Error()
	} else {
		resp, err := c.client.Do(req)
		switch {
		case err != nil:
			errMsg = err.Error()
		case resp.StatusCode != http.StatusOK:
			errMsg = "healthz status " + resp.Status
		}
		if err == nil {
			resp.Body.Close()
		}
	}
	ps.up.Store(errMsg == "")
	ps.mu.Lock()
	ps.lastProbe = time.Now()
	ps.probes++
	ps.lastErr = errMsg
	if errMsg != "" {
		ps.failures++
	}
	ps.mu.Unlock()
}

// Snapshot renders the node's current cluster view for /healthz,
// /metrics, and /debug/statusz.
func (c *Cluster) Snapshot() Health {
	h := Health{
		Self:          c.self,
		Nodes:         len(c.ring.Nodes()),
		VNodes:        c.ring.VNodes(),
		OwnedFraction: c.ownedFrac,
	}
	for _, ps := range c.peers {
		ps.mu.Lock()
		st := PeerStatus{
			ID:        ps.id,
			Addr:      ps.addr,
			Up:        ps.up.Load(),
			LastError: ps.lastErr,
			Probes:    ps.probes,
			Failures:  ps.failures,
		}
		if !ps.lastProbe.IsZero() {
			st.AgeSec = time.Since(ps.lastProbe).Seconds()
		}
		ps.mu.Unlock()
		if st.Up {
			h.PeersUp++
		}
		h.Peers = append(h.Peers, st)
	}
	return h
}
