// Package cluster promotes a single wmserved node to a member of a
// multi-node cluster.  It supplies the three distributed-systems
// primitives the serving layer composes:
//
//   - a consistent-hash ring (this file) mapping content-addressed
//     cache keys to owning nodes, stable under membership change:
//     adding or removing one node remaps only the keys that node
//     gains or loses, so the rest of the cluster's caches stay warm;
//   - node identity and static membership (cluster.go): a peer list
//     configured up front, with per-peer health probing and passive
//     failure detection feeding an up/down state;
//   - the routing decision (Cluster.Route): local, forward to a
//     healthy owner, or degrade to local execution when the owner is
//     down.
//
// The ring and the membership model are deliberately independent: the
// ring is a pure function of the configured node IDs, NOT of health
// state.  A down node keeps its arcs — requests for its keys degrade
// to local execution at whichever node received them — so a flapping
// peer does not churn ownership (and therefore cache placement) across
// the whole cluster.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per physical node.  128
// points per node keeps the maximum ownership imbalance under ~1.35x
// the fair share (enforced by TestRingDistribution) while ring
// construction stays microseconds-cheap.
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the physical node that owns the arc ending at it.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over a fixed node set.  It is
// immutable after construction and safe for concurrent use; membership
// changes build a new Ring.
type Ring struct {
	vnodes int
	nodes  []string // sorted, deduplicated
	points []ringPoint
}

// KeyHash reduces an arbitrary key to its position on the hash circle.
// SHA-256 (truncated to 64 bits) keeps placement uniform regardless of
// key structure and — unlike anything seeded or map-ordered — is
// identical in every process, which is what makes ownership a
// cluster-wide agreement rather than a per-node opinion.
func KeyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:8])
}

// pointHash positions one virtual node on the circle.
func pointHash(node string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the node IDs with vnodes virtual nodes
// each (DefaultVNodes when <= 0).  The input order is irrelevant:
// nodes are sorted and deduplicated, and hash ties are broken by node
// name, so every process configured with the same membership computes
// the same ring.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	points := make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	return &Ring{vnodes: vnodes, nodes: uniq, points: points}, nil
}

// Nodes returns the ring's membership in sorted order.  The slice is
// shared; callers must not modify it.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes reports the virtual-node count per physical node.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner maps a key to its owning node: the first virtual node at or
// clockwise of the key's hash position (wrapping past the top of the
// circle).
func (r *Ring) Owner(key []byte) string { return r.ownerAt(KeyHash(key)) }

// OwnerString is Owner for string keys.
func (r *Ring) OwnerString(key string) string { return r.ownerAt(KeyHash([]byte(key))) }

func (r *Ring) ownerAt(h uint64) string {
	pts := r.points
	idx := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if idx == len(pts) {
		idx = 0
	}
	return pts[idx].node
}

// OwnedFraction is the exact share of the 64-bit hash circle owned by
// the node: the summed widths of the arcs ending at its virtual nodes,
// over 2^64.  Across all members the fractions sum to 1; with enough
// virtual nodes each sits near 1/len(Nodes()).
func (r *Ring) OwnedFraction(node string) float64 {
	pts := r.points
	if len(pts) == 0 {
		return 0
	}
	var owned uint64
	prev := pts[len(pts)-1].hash // the arc to pts[0] wraps past zero, mod 2^64
	for _, p := range pts {
		if p.node == node {
			owned += p.hash - prev
		}
		prev = p.hash
	}
	return float64(owned) / (1 << 63) / 2
}
