package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// testKeys builds n deterministic pseudo-random keys (the production
// keys are SHA-256 content addresses, i.e. uniform; these are too,
// after KeyHash's own hashing).
func testKeys(n int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 16)
		binary.BigEndian.PutUint64(k, rng.Uint64())
		binary.BigEndian.PutUint64(k[8:], uint64(i))
		keys[i] = k
	}
	return keys
}

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatalf("NewRing(%v): %v", nodes, err)
	}
	return r
}

// TestRingDistribution enforces the load-balance bound the ISSUE asks
// for: across 100k keys with 128 vnodes, no node owns more than 1.35x
// its fair share — at several cluster sizes.
func TestRingDistribution(t *testing.T) {
	keys := testKeys(100_000)
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		r := mustRing(t, nodes, 128)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			got := float64(counts[node])
			if got > 1.35*fair {
				t.Errorf("%d nodes: %s owns %.0f keys, > 1.35x fair share %.0f", n, node, got, fair)
			}
			if got < fair/1.35 {
				t.Errorf("%d nodes: %s owns %.0f keys, < fair share %.0f / 1.35", n, node, got, fair)
			}
		}
		// The analytic arc fractions must agree with the empirical key
		// counts (within sampling noise) and sum to 1.
		var sum float64
		for _, node := range nodes {
			f := r.OwnedFraction(node)
			sum += f
			emp := float64(counts[node]) / float64(len(keys))
			if diff := f - emp; diff > 0.01 || diff < -0.01 {
				t.Errorf("%d nodes: %s arc fraction %.4f vs empirical %.4f", n, node, f, emp)
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%d nodes: arc fractions sum to %.6f, want 1", n, sum)
		}
	}
}

// TestRingMinimalRemapOnAdd: growing the cluster by one node moves
// only keys that the new node gains — never between existing nodes —
// and about 1/(n+1) of them.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	keys := testKeys(100_000)
	before := mustRing(t, []string{"a", "b", "c"}, 128)
	after := mustRing(t, []string{"a", "b", "c", "d"}, 128)
	moved := 0
	for _, k := range keys {
		was, now := before.Owner(k), after.Owner(k)
		if was == now {
			continue
		}
		moved++
		if now != "d" {
			t.Fatalf("key moved %s -> %s: remap between surviving nodes", was, now)
		}
	}
	want := float64(len(keys)) / 4
	if f := float64(moved); f > 1.35*want || f < want/1.35 {
		t.Errorf("moved %d keys on add, want about %.0f", moved, want)
	}
}

// TestRingMinimalRemapOnRemove: removing a node moves only the keys it
// owned.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	keys := testKeys(100_000)
	before := mustRing(t, []string{"a", "b", "c"}, 128)
	after := mustRing(t, []string{"a", "c"}, 128)
	moved := 0
	for _, k := range keys {
		was, now := before.Owner(k), after.Owner(k)
		if was == now {
			continue
		}
		moved++
		if was != "b" {
			t.Fatalf("key moved %s -> %s though %s survives", was, now, was)
		}
	}
	want := float64(len(keys)) / 3
	if f := float64(moved); f > 1.35*want || f < want/1.35 {
		t.Errorf("moved %d keys on remove, want about %.0f", moved, want)
	}
}

// TestRingDeterministicOwnership: ownership is a pure function of the
// membership set — independent of configuration order and of the
// process computing it.  The hard-coded hash pins the algorithm (node
// label scheme, SHA-256 truncation) so a refactor cannot silently
// remap every key in a live cluster.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := testKeys(100_000)
	a := mustRing(t, []string{"a", "b", "c"}, 128)
	b := mustRing(t, []string{"c", "a", "b", "a"}, 128) // shuffled + duplicate
	for _, k := range keys {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("order-dependent ownership: %q vs %q", ao, bo)
		}
	}
	if got := pointHash("a", 0); got != 0xa090a256cb93456a {
		t.Errorf("pointHash(a#0) = %#x: the ring hash changed; this remaps every key in a rolling upgrade", got)
	}
	if got := KeyHash([]byte("wmstream")); got != 0xf5c5855e3757a4df {
		t.Errorf("KeyHash(wmstream) = %#x: the key hash changed; this remaps every key in a rolling upgrade", got)
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 128); err == nil {
		t.Error("NewRing(nil) succeeded")
	}
	if _, err := NewRing([]string{""}, 128); err == nil {
		t.Error("NewRing with empty ID succeeded")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, _ := NewRing([]string{"a", "b", "c", "d", "e"}, 128)
	key := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(key)
	}
}
