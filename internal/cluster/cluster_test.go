package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=host:1, b=http://other:2/ ,c=https://third:3")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	want := []Peer{
		{ID: "a", Addr: "http://host:1"},
		{ID: "b", Addr: "http://other:2"},
		{ID: "c", Addr: "https://third:3"},
	}
	if len(peers) != len(want) {
		t.Fatalf("got %v", peers)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %+v, want %+v", i, peers[i], want[i])
		}
	}
	for _, bad := range []string{"", "noequals", "=addr", "id=", ","} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) succeeded", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	peers := []Peer{{ID: "a", Addr: "http://x:1"}, {ID: "b", Addr: "http://x:2"}}
	if _, err := New(Config{Self: "z", Peers: peers}); err == nil {
		t.Error("self outside peer list accepted")
	}
	if _, err := New(Config{Self: "a", Peers: append(peers, Peer{ID: "b", Addr: "http://x:3"})}); err == nil {
		t.Error("duplicate peer ID accepted")
	}
	c, err := New(Config{Self: "a", Peers: peers})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Self() != "a" || c.SelfAddr() != "http://x:1" {
		t.Errorf("self = %q addr %q", c.Self(), c.SelfAddr())
	}
	if !c.PeerUp("b") {
		t.Error("peers should start optimistically up")
	}
}

// TestProbeFlipsState: a probe marks a dead peer down and a revived
// peer back up; MarkDown flips immediately without waiting for a
// probe.
func TestProbeFlipsState(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c, err := New(Config{
		Self: "self",
		Peers: []Peer{
			{ID: "self", Addr: "http://unused:1"},
			{ID: "peer", Addr: ts.URL},
		},
		ProbeTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	c.Probe(context.Background())
	if !c.PeerUp("peer") {
		t.Fatalf("healthy peer probed down: %+v", c.Snapshot())
	}

	healthy.Store(false) // draining: healthz says 503 -> down for routing
	c.Probe(context.Background())
	if c.PeerUp("peer") {
		t.Fatal("draining peer still up after probe")
	}

	healthy.Store(true)
	c.Probe(context.Background())
	if !c.PeerUp("peer") {
		t.Fatal("revived peer still down after probe")
	}

	c.MarkDown("peer", "connection refused")
	if c.PeerUp("peer") {
		t.Fatal("MarkDown did not flip the peer down")
	}
	snap := c.Snapshot()
	if snap.PeersUp != 0 || len(snap.Peers) != 1 || snap.Peers[0].LastError != "connection refused" {
		t.Errorf("snapshot after MarkDown: %+v", snap)
	}
	if snap.OwnedFraction <= 0 || snap.OwnedFraction >= 1 {
		t.Errorf("owned fraction %v for a 2-node cluster", snap.OwnedFraction)
	}
}

// TestRouteAgreesAcrossNodes: every node in a cluster computes the
// same owner for the same key, and exactly one of them calls it local.
func TestRouteAgreesAcrossNodes(t *testing.T) {
	peers := []Peer{
		{ID: "n0", Addr: "http://h:1"},
		{ID: "n1", Addr: "http://h:2"},
		{ID: "n2", Addr: "http://h:3"},
	}
	views := make([]*Cluster, len(peers))
	for i, p := range peers {
		c, err := New(Config{Self: p.ID, Peers: peers})
		if err != nil {
			t.Fatalf("New(%s): %v", p.ID, err)
		}
		views[i] = c
	}
	for _, key := range [][]byte{[]byte("k1"), []byte("k2"), []byte("k3"), []byte("k4"), []byte("k5")} {
		owner := views[0].Route(key).ID
		locals := 0
		for _, v := range views {
			rt := v.Route(key)
			if rt.ID != owner {
				t.Fatalf("node %s routes %q to %s, node n0 to %s", v.Self(), key, rt.ID, owner)
			}
			if rt.Local {
				locals++
				if v.Self() != owner {
					t.Fatalf("node %s claims key owned by %s", v.Self(), owner)
				}
				if rt.Addr != "" {
					t.Errorf("local route carries addr %q", rt.Addr)
				}
			} else if !rt.Up || rt.Addr == "" {
				t.Errorf("remote route %+v: want up with addr", rt)
			}
		}
		if locals != 1 {
			t.Fatalf("%d nodes claim key %q", locals, key)
		}
	}
}

// TestStartClose: the probe loop runs and shuts down cleanly, and a
// never-started cluster can still be closed.
func TestStartClose(t *testing.T) {
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c, err := New(Config{
		Self:       "self",
		Peers:      []Peer{{ID: "self", Addr: "http://unused:1"}, {ID: "peer", Addr: ts.URL}},
		ProbeEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	if probes.Load() < 2 {
		t.Fatalf("probe loop fired %d times", probes.Load())
	}

	idle, err := New(Config{Self: "a", Peers: []Peer{{ID: "a", Addr: "http://x:1"}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idle.Close() // must not hang without Start
}
