package experiments

import (
	"strings"
	"testing"

	"wmstream/internal/bench"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// TestFiguresShape checks each figure against the structural properties
// the paper's listings exhibit.
func TestFiguresShape(t *testing.T) {
	fig4, err := Figure(4)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: four memory references in the loop (3 loads + 1 store),
	// no streams, no recurrence registers.
	if got := strings.Count(fig4, "l64f"); got != 3 {
		t.Errorf("figure 4 float loads = %d, want 3\n%s", got, fig4)
	}
	if strings.Contains(fig4, "sin64f") || strings.Contains(fig4, "recurrence") {
		t.Errorf("figure 4 must not contain streams or recurrence code:\n%s", fig4)
	}

	fig5, err := Figure(5)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5: the x[i-1] load is gone from the loop (one preload
	// remains in the preheader) and a recurrence register carries it.
	if got := strings.Count(fig5, "l64f"); got != 3 { // z, y in loop + preload
		t.Errorf("figure 5 float loads = %d, want 3\n%s", got, fig5)
	}
	if !strings.Contains(fig5, "preload recurrence value") {
		t.Errorf("figure 5 missing recurrence preload:\n%s", fig5)
	}

	fig7, err := Figure(7)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(fig7, "sin64f") != 2 || strings.Count(fig7, "sout64f") != 1 {
		t.Errorf("figure 7 should stream z,y in and x out:\n%s", fig7)
	}
	if !strings.Contains(fig7, "jnd") {
		t.Errorf("figure 7 missing jump-not-done:\n%s", fig7)
	}
	// The streamed loop body: compute + enqueue + jnd between the loop
	// label and the exit label.
	body := fig7[strings.Index(fig7, "L2:"):]
	body = body[:strings.Index(body, "L4:")]
	lines := 0
	for _, ln := range strings.Split(body, "\n") {
		if strings.Contains(ln, ":=") || strings.Contains(ln, "jnd") {
			lines++
		}
	}
	if lines > 3 {
		t.Errorf("figure 7 loop body has %d instructions, want <= 3:\n%s", lines, body)
	}

	fig6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6, "fmoved") || !strings.Contains(fig6, "@+") {
		t.Errorf("figure 6 missing 68020 auto-increment loads:\n%s", fig6)
	}
}

// TestTable1Shape runs Table I at reduced size and checks the paper's
// ordering: the Sun (coprocessor FP) gains most among conventional
// machines, the VAX least, and every machine improves.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1(3000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Machine] = r
		if r.Percent <= 0 {
			t.Errorf("%s: no improvement (%f%%)", r.Machine, r.Percent)
		}
		if r.Percent > 40 {
			t.Errorf("%s: implausible improvement (%f%%)", r.Machine, r.Percent)
		}
	}
	if byName["Sun 3/280"].Percent <= byName["HP 9000/345"].Percent {
		t.Errorf("Sun (%f) should beat HP (%f)", byName["Sun 3/280"].Percent, byName["HP 9000/345"].Percent)
	}
	if byName["VAX 8600"].Percent >= byName["HP 9000/345"].Percent {
		t.Errorf("VAX (%f) should trail HP (%f)", byName["VAX 8600"].Percent, byName["HP 9000/345"].Percent)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "WM") || !strings.Contains(out, "%") {
		t.Errorf("formatting broken:\n%s", out)
	}
	t.Logf("\n%s", out)
}

// TestTable2Subset verifies the streaming measurement on the
// fastest-running subset, including the paper's key shape points: the
// dot product gains a lot, quicksort almost nothing.
func TestTable2Subset(t *testing.T) {
	dot, _ := bench.ByName("dot-product")
	_, _, dotPct, err := bench.StreamingReduction(dot)
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := bench.ByName("quicksort")
	_, _, qsPct, err := bench.StreamingReduction(qs)
	if err != nil {
		t.Fatal(err)
	}
	if dotPct < 30 {
		t.Errorf("dot-product reduction = %.1f%%, want large", dotPct)
	}
	if qsPct > 10 {
		t.Errorf("quicksort reduction = %.1f%%, want small", qsPct)
	}
	if dotPct <= qsPct {
		t.Errorf("shape violated: dot %.1f%% <= quicksort %.1f%%", dotPct, qsPct)
	}
}

// TestScalarPipeline checks the conventional-machine path end to end:
// scalar code must contain no stream instructions and still compute the
// same value as the WM path.
func TestScalarPipeline(t *testing.T) {
	src := kernelSource(100)
	p, err := parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.OptimizeScalar(p, true); err != nil {
		t.Fatal(err)
	}
	text := p.String()
	if strings.Contains(text, "sin") || strings.Contains(text, "sout") {
		t.Errorf("scalar pipeline emitted streams:\n%s", text)
	}
	// And the recurrence pass must have removed the x[i-1] load from
	// the loop: exactly 2 float loads inside L-labeled loop body plus 1
	// preload.
	k := p.Func("kernel")
	loads := 0
	for _, i := range k.Code {
		if i.Kind == rtl.KLoad && i.MemClass == rtl.Float {
			loads++
		}
	}
	if loads != 3 {
		t.Errorf("scalar recurrence listing has %d float loads, want 3:\n%s", loads, k.Listing())
	}
}

// TestWMRowScaleInvariance: the simulator's cycle accounting must not
// depend on problem size (per-iteration cost identical at two sizes).
func TestWMRowScaleInvariance(t *testing.T) {
	perIter := func(size int) float64 {
		src := tableISource(size, 4)
		o := opt.Options{Standard: true, Combine: true, StrengthReduce: true,
			Recurrence: true, MinTrip: 4, MaxRecurrenceDegree: 4}
		p, err := compileWM(src, o)
		if err != nil {
			t.Fatal(err)
		}
		stats, _, err := bench.Run(p, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return float64(stats.Cycles) / float64((size-2)*4)
	}
	a, b := perIter(2000), perIter(8000)
	if diff := a - b; diff > 0.6 || diff < -0.6 {
		t.Errorf("per-iteration cost varies with size: %.2f vs %.2f", a, b)
	}
}

// TestTable34Substitute sanity-checks the appendix substitute: the full
// pipeline must beat plain optimization on geometric mean.
func TestTable34Substitute(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, g1, g3, err := Table34()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	if g3 <= g1 {
		t.Errorf("O3 geomean (%.2f) should exceed O1 (%.2f)", g3, g1)
	}
	for _, r := range rows {
		if r.O1 < 1 || r.O3 < 1 {
			t.Errorf("%s: optimization made things worse: O1=%.2f O3=%.2f", r.Program, r.O1, r.O3)
		}
	}
}
