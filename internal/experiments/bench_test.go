// Benchmarks regenerating each of the paper's tables and figures.
// Each reports the paper's metric via b.ReportMetric, so
// `go test -bench . ./internal/experiments` reproduces the evaluation:
//
//	BenchmarkFig4/5/6/7   figure listings (compile-time cost)
//	BenchmarkTable1       percent improvement from recurrence opt
//	BenchmarkTable2/<p>   percent cycle reduction from streaming
//	BenchmarkTable34      optimizer-quality geometric means
package experiments_test

import (
	"strings"
	"testing"

	"wmstream/internal/bench"
	"wmstream/internal/experiments"
)

func BenchmarkFig4(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFig5(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFig7(b *testing.B) { benchFigure(b, 7) }

func benchFigure(b *testing.B, stage int) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure(stage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I at a reduced size (the full
// 100,000-element run is cmd/wmrepro's job) and reports each machine's
// percent improvement.
func BenchmarkTable1(b *testing.B) {
	for n := 0; n < b.N; n++ {
		rows, err := experiments.Table1(5000, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			unit := strings.NewReplacer(" ", "", "/", "_").Replace(r.Machine) + "_%improve"
			b.ReportMetric(r.Percent, unit)
		}
	}
}

// BenchmarkTable2 runs each of the nine programs with and without
// streaming and reports the percent reduction in cycles.
func BenchmarkTable2(b *testing.B) {
	for _, p := range bench.Programs() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				without, with, pct, err := bench.StreamingReduction(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pct, "%reduction")
				b.ReportMetric(float64(without), "cycles_O2")
				b.ReportMetric(float64(with), "cycles_O3")
			}
		})
	}
}

func BenchmarkTable34(b *testing.B) {
	for n := 0; n < b.N; n++ {
		_, g1, g3, err := experiments.Table34()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g1, "geomean_O1")
		b.ReportMetric(g3, "geomean_O3")
	}
}
