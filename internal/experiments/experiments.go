// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Figure 4  unoptimized WM code for the 5th Livermore loop
//	Figure 5  the same loop with recurrences optimized
//	Figure 6  Motorola 68020 code with recurrences optimized
//	Figure 7  the same loop with stream instructions
//	Table I   percent improvement from recurrence optimization on
//	          five machines (four modeled conventional machines plus
//	          the simulated WM)
//	Table II  percent reduction in cycles from streaming for nine
//	          programs on the simulated WM
//	Tables III/IV  (substitute) optimizer-quality ratios over the
//	          benchmark suite — SPEC Release 1.0 sources are licensed
//	          and unavailable, so the geometric-mean methodology is
//	          applied to this suite instead
//
// cmd/wmrepro prints them; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"wmstream/internal/bench"
	"wmstream/internal/machine"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/scalarsim"
	"wmstream/internal/sim"
)

// kernelSource is the figure program: the 5th Livermore loop in its
// own function so listings stay readable.
func kernelSource(n int) string {
	return `
double x[` + fmt.Sprint(n) + `], y[` + fmt.Sprint(n) + `], z[` + fmt.Sprint(n) + `];
int n = ` + fmt.Sprint(n) + `;

void kernel(void) {
    int i;
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
}

int main(void) {
    kernel();
    return 0;
}
`
}

// tableISource repeats the kernel so that, as in the paper's timing
// runs, the loop dominates total execution.
func tableISource(n, reps int) string {
	return `
double x[` + fmt.Sprint(n) + `], y[` + fmt.Sprint(n) + `], z[` + fmt.Sprint(n) + `];
int n = ` + fmt.Sprint(n) + `;

void setup(void) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = ((i & 7) + 1) * 0.25;
        y[i] = ((i & 3) + 1) * 0.5;
        z[i] = 0.001;
    }
}

void kernel(void) {
    int i;
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
}

int main(void) {
    int r;
    setup();
    for (r = 0; r < ` + fmt.Sprint(reps) + `; r++)
        kernel();
    putd(x[n-1]);
    return 0;
}
`
}

func compileWM(src string, o opt.Options) (*rtl.Program, error) {
	return bench.CompileOptions(bench.Program{Name: "fig", Source: src}, o)
}

// figOptions returns the option sets for each figure stage.
func figOptions(stage int) opt.Options {
	o := opt.Options{Standard: true, Combine: true, MinTrip: 4, MaxRecurrenceDegree: 4}
	if stage >= 5 {
		o.Recurrence = true
	}
	if stage >= 7 {
		o.Stream = true
		o.StrengthReduce = true
	}
	return o
}

// Figure returns the listing for figure 4, 5 or 7 (WM code at the
// three optimization stages).
func Figure(stage int) (string, error) {
	p, err := compileWM(kernelSource(100), figOptions(stage))
	if err != nil {
		return "", err
	}
	f := p.Func("kernel")
	if f == nil {
		return "", fmt.Errorf("kernel function missing")
	}
	title := map[int]string{
		4: "Figure 4: unoptimized WM code for the 5th Livermore loop",
		5: "Figure 5: WM code with recurrences optimized",
		7: "Figure 7: WM code with stream instructions",
	}[stage]
	return title + "\n" + f.Listing(), nil
}

// Figure6 returns the Motorola 68020 flavored listing with recurrences
// optimized.
func Figure6() (string, error) {
	ast, err := parse(kernelSource(100))
	if err != nil {
		return "", err
	}
	if err := opt.OptimizeScalar(ast, true); err != nil {
		return "", err
	}
	f := ast.Func("kernel")
	if f == nil {
		return "", fmt.Errorf("kernel function missing")
	}
	return "Figure 6: Motorola 68020 code with recurrences optimized\n" +
		machine.M68KListing(f), nil
}

func parse(src string) (*rtl.Program, error) {
	return bench.CompileNone(bench.Program{Name: "fig", Source: src})
}

// Table1Row is one machine's measurement.
type Table1Row struct {
	Machine   string
	Without   int64 // cycles without recurrence optimization
	With      int64
	Percent   float64
	PaperPct  float64
	Simulated bool // true for the WM row (cycle-level simulation)
}

var paperTable1 = map[string]float64{
	"Sun 3/280": 19, "HP 9000/345": 12, "VAX 8600": 6,
	"Motorola 88100": 7, "WM": 18,
}

// Table1 reproduces Table I: the effect of recurrence optimization on
// the 5th Livermore loop across five machines.  size is the array
// length (the paper used 100,000); reps repeats the kernel so it
// dominates setup.
func Table1(size, reps int) ([]Table1Row, error) {
	src := tableISource(size, reps)
	var rows []Table1Row
	maxInstr := int64(size) * int64(reps) * 600

	// Conventional machines: scalar pipeline + cost models.
	var without, with *rtl.Program
	for _, rec := range []bool{false, true} {
		p, err := parse(src)
		if err != nil {
			return nil, err
		}
		if err := opt.OptimizeScalar(p, rec); err != nil {
			return nil, err
		}
		if rec {
			with = p
		} else {
			without = p
		}
	}
	var refOut string
	for _, cm := range machine.TableIMachines() {
		s0, err := scalarsim.Run(without, cm, maxInstr)
		if err != nil {
			return nil, fmt.Errorf("%s without: %w", cm.Name, err)
		}
		s1, err := scalarsim.Run(with, cm, maxInstr)
		if err != nil {
			return nil, fmt.Errorf("%s with: %w", cm.Name, err)
		}
		if s0.Output != s1.Output {
			return nil, fmt.Errorf("%s: outputs differ: %q vs %q", cm.Name, s0.Output, s1.Output)
		}
		if refOut == "" {
			refOut = s0.Output
		}
		rows = append(rows, Table1Row{
			Machine: cm.Name, Without: s0.Cycles, With: s1.Cycles,
			Percent:  100 * float64(s0.Cycles-s1.Cycles) / float64(s0.Cycles),
			PaperPct: paperTable1[cm.Name],
		})
	}

	// WM row: cycle-level simulation, streaming off in both configs
	// (Table I isolates the recurrence optimization).
	wmOpts := opt.Options{Standard: true, Combine: true, StrengthReduce: true, MinTrip: 4, MaxRecurrenceDegree: 4}
	p0, err := compileWM(src, wmOpts)
	if err != nil {
		return nil, err
	}
	wmOpts.Recurrence = true
	p1, err := compileWM(src, wmOpts)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	st0, out0, err := bench.Run(p0, cfg)
	if err != nil {
		return nil, fmt.Errorf("WM without: %w", err)
	}
	st1, out1, err := bench.Run(p1, cfg)
	if err != nil {
		return nil, fmt.Errorf("WM with: %w", err)
	}
	if out0 != out1 || (refOut != "" && out0 != refOut) {
		return nil, fmt.Errorf("WM outputs differ: %q vs %q vs %q", out0, out1, refOut)
	}
	rows = append(rows, Table1Row{
		Machine: "WM", Without: st0.Cycles, With: st1.Cycles,
		Percent:  100 * float64(st0.Cycles-st1.Cycles) / float64(st0.Cycles),
		PaperPct: paperTable1["WM"], Simulated: true,
	})
	return rows, nil
}

// FormatTable1 renders rows in the paper's Table I format.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I. Effect of Recurrence Optimization on Execution Time\n")
	b.WriteString("Machine           Cycles w/o     Cycles w/   % Improvement   (paper)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d %12d   %6.1f          %4.0f\n",
			r.Machine, r.Without, r.With, r.Percent, r.PaperPct)
	}
	return b.String()
}

// Table2Row is one program's streaming measurement.
type Table2Row struct {
	Program  string
	Without  int64 // cycles with full optimization except streaming (O2)
	With     int64 // cycles with streaming (O3)
	Percent  float64
	PaperPct float64
}

var paperTable2 = map[string]float64{
	"banner": 5, "bubblesort": 18, "cal": 17, "dhrystone": 39,
	"dot-product": 43, "iir": 13, "quicksort": 1, "sieve": 18,
	"whetstone": 3,
}

// Table2 reproduces Table II: percent reduction in cycles executed
// with streaming enabled, for the nine benchmark programs.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, p := range bench.Programs() {
		without, with, pct, err := bench.StreamingReduction(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Program: p.Name, Without: without, With: with,
			Percent: pct, PaperPct: paperTable2[p.Name],
		})
	}
	return rows, nil
}

// FormatTable2 renders rows in the paper's Table II format.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II. Execution Performance Improvements by Streaming\n")
	b.WriteString("Program        Cycles w/o     Cycles w/   % Reduction   (paper)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %12d   %6.1f        %4.0f\n",
			r.Program, r.Without, r.With, r.Percent, r.PaperPct)
	}
	return b.String()
}

// SpecRow is one program of the Tables III/IV substitute.
type SpecRow struct {
	Program string
	Ref     int64   // O0 cycles ("reference machine")
	O1      float64 // ratio ref/O1
	O3      float64 // ratio ref/O3
}

// Table34 is the substitute for the appendix SPEC tables: SPEC Release
// 1.0 sources are licensed and unavailable, so the same
// geometric-mean-of-ratios methodology is applied to this suite, with
// unoptimized (O0) cycles as the reference time.  Table III's analog is
// the O1 column (a conventional optimizer), Table IV's the O3 column
// (the full vpo-style pipeline with recurrences and streaming).
func Table34() ([]SpecRow, float64, float64, error) {
	var rows []SpecRow
	g1, g3 := 1.0, 1.0
	for _, p := range bench.Programs() {
		r0, err := bench.Measure(p, 0)
		if err != nil {
			return nil, 0, 0, err
		}
		r1, err := bench.Measure(p, 1)
		if err != nil {
			return nil, 0, 0, err
		}
		r3, err := bench.Measure(p, 3)
		if err != nil {
			return nil, 0, 0, err
		}
		row := SpecRow{
			Program: p.Name,
			Ref:     r0.Stats.Cycles,
			O1:      float64(r0.Stats.Cycles) / float64(r1.Stats.Cycles),
			O3:      float64(r0.Stats.Cycles) / float64(r3.Stats.Cycles),
		}
		rows = append(rows, row)
		g1 *= row.O1
		g3 *= row.O3
	}
	n := float64(len(rows))
	return rows, math.Pow(g1, 1/n), math.Pow(g3, 1/n), nil
}

// FormatTable34 renders the substitute appendix tables.
func FormatTable34(rows []SpecRow, geo1, geo3 float64) string {
	var b strings.Builder
	b.WriteString("Tables III/IV (substitute). Optimizer-quality ratios vs naive code\n")
	b.WriteString("(SPEC Release 1.0 is unavailable; same geometric-mean methodology,\n")
	b.WriteString(" reference time = unoptimized cycles on the simulated WM)\n")
	b.WriteString("Program        Ref cycles    ratio O1    ratio O3\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d     %6.2f      %6.2f\n", r.Program, r.Ref, r.O1, r.O3)
	}
	fmt.Fprintf(&b, "Geometric means:                %6.2f      %6.2f\n", geo1, geo3)
	return b.String()
}
