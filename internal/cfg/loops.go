package cfg

import "sort"

// Loop is a natural loop: a header block plus the set of blocks that can
// reach one of its back edges without passing through the header.
type Loop struct {
	Header  *Block
	Blocks  map[*Block]bool // includes Header
	Latches []*Block        // blocks with a back edge to Header

	// Exits are blocks inside the loop with at least one successor
	// outside; ExitTargets are those outside successors.
	Exits       []*Block
	ExitTargets []*Block

	// Preheader is the unique predecessor of the header outside the
	// loop, when one exists (nil otherwise).  The optimizer creates one
	// on demand.
	Preheader *Block

	// Parent is the innermost enclosing loop, Depth its nesting depth
	// (outermost loops have depth 1).
	Parent *Loop
	Depth  int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// BlockList returns the loop's blocks ordered by position in the
// function.  Transformations must iterate this, not the Blocks map:
// map order would make the emitted code depend on the iteration seed,
// breaking deterministic (and parallel) compilation.
func (l *Loop) BlockList() []*Block {
	out := make([]*Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ContainsInstr reports whether instruction index n of the owning
// function falls inside the loop.
func (l *Loop) ContainsInstr(g *Graph, n int) bool {
	b := g.BlockOf(n)
	return b != nil && l.Blocks[b]
}

// NaturalLoops detects all natural loops.  Dominators must have been
// computed.  Back edges with the same header are merged into a single
// loop, and nesting (Parent/Depth) is derived from block containment.
// Loops are returned innermost-first (deepest nesting first).
func (g *Graph) NaturalLoops() []*Loop {
	byHeader := map[*Block]*Loop{}
	for _, b := range g.ReversePostorder() {
		for _, s := range b.Succs {
			if g.Dominates(s, b) {
				// b -> s is a back edge.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				l.collectBody(b)
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		l.findExits()
		l.findPreheader()
		loops = append(loops, l)
	}
	// Nesting: loop A is nested in B when B contains A's header and
	// A != B.  The innermost enclosing loop is the smallest such B.
	for _, a := range loops {
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] || len(b.Blocks) <= len(a.Blocks) {
				continue
			}
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				a.Parent = b
			}
		}
	}
	for _, l := range loops {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth
		}
		return loops[i].Header.Index < loops[j].Header.Index
	})
	return loops
}

// collectBody walks predecessors from the latch back to the header,
// adding every block on the way.
func (l *Loop) collectBody(latch *Block) {
	stack := []*Block{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Blocks[b] {
			continue
		}
		l.Blocks[b] = true
		for _, p := range b.Preds {
			if !l.Blocks[p] {
				stack = append(stack, p)
			}
		}
	}
}

func (l *Loop) findExits() {
	for b := range l.Blocks {
		exit := false
		for _, s := range b.Succs {
			if !l.Blocks[s] {
				exit = true
				l.ExitTargets = appendUnique(l.ExitTargets, s)
			}
		}
		if exit {
			l.Exits = append(l.Exits, b)
		}
	}
	sort.Slice(l.Exits, func(i, j int) bool { return l.Exits[i].Index < l.Exits[j].Index })
	sort.Slice(l.ExitTargets, func(i, j int) bool { return l.ExitTargets[i].Index < l.ExitTargets[j].Index })
}

func (l *Loop) findPreheader() {
	var outside []*Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outside = appendUnique(outside, p)
		}
	}
	// A usable preheader is a unique outside predecessor whose only
	// successor is the header (so code placed there runs exactly when
	// the loop is entered).
	if len(outside) == 1 && len(outside[0].Succs) == 1 {
		l.Preheader = outside[0]
	}
}

func appendUnique(s []*Block, b *Block) []*Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}
