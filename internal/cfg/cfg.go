// Package cfg provides control-flow analysis over RTL functions: basic
// blocks, the flow graph, dominators, natural-loop detection and
// register liveness.  The optimizer (package opt) runs every
// transformation against these structures, rebuilding them after each
// phase — mirroring the paper's vpo design where analysis is cheap to
// recompute so phases can be reinvoked in any order.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"wmstream/internal/rtl"
)

// Block is a maximal straight-line sequence of instructions.  Start and
// End delimit the half-open index range [Start, End) into the owning
// function's Code slice.
type Block struct {
	Index      int
	Start, End int
	Succs      []*Block
	Preds      []*Block

	// Liveness results, filled in by Graph.Liveness.
	LiveIn  RegSet
	LiveOut RegSet
}

// Instrs returns the block's instructions.
func (b *Block) Instrs(f *rtl.Func) []*rtl.Instr { return f.Code[b.Start:b.End] }

// Graph is the control-flow graph of one function.
type Graph struct {
	F      *rtl.Func
	Blocks []*Block
	Entry  *Block

	labelBlock map[string]*Block
	idom       []*Block // immediate dominator per block index, nil until Dominators
}

// Build constructs the control-flow graph of f.  Unreachable trailing
// code still gets blocks (they simply have no predecessors).  A branch
// whose target label does not exist in the function is reported as an
// error (reachable from user input: hand-written assembly accepted by
// rtl.Parse can name labels it never defines).
func Build(f *rtl.Func) (*Graph, error) {
	g := &Graph{F: f, labelBlock: map[string]*Block{}}
	if len(f.Code) == 0 {
		g.Entry = &Block{}
		g.Blocks = []*Block{g.Entry}
		return g, nil
	}
	// Find leaders.
	leader := make([]bool, len(f.Code)+1)
	leader[0] = true
	for n, i := range f.Code {
		switch {
		case i.Kind == rtl.KLabel:
			leader[n] = true
		case i.IsBranch():
			leader[n+1] = true
		}
	}
	// Carve blocks.
	start := 0
	for n := 1; n <= len(f.Code); n++ {
		if n == len(f.Code) || leader[n] {
			b := &Block{Index: len(g.Blocks), Start: start, End: n}
			g.Blocks = append(g.Blocks, b)
			start = n
			if n == len(f.Code) {
				break
			}
		}
	}
	// Map labels to blocks.
	for _, b := range g.Blocks {
		for _, i := range b.Instrs(f) {
			if i.Kind == rtl.KLabel {
				g.labelBlock[i.Name] = b
			}
		}
	}
	// Wire edges.
	for n, b := range g.Blocks {
		last := f.Code[b.End-1]
		addFallthrough := true
		switch last.Kind {
		case rtl.KJump:
			to := g.labelBlock[last.Target]
			if to == nil {
				return nil, fmt.Errorf("cfg: %s: branch to unknown label %q", f.Name, last.Target)
			}
			g.addEdge(b, to)
			addFallthrough = false
		case rtl.KCondJump, rtl.KJumpNotDone:
			to := g.labelBlock[last.Target]
			if to == nil {
				return nil, fmt.Errorf("cfg: %s: branch to unknown label %q", f.Name, last.Target)
			}
			g.addEdge(b, to)
		case rtl.KRet, rtl.KHalt:
			addFallthrough = false
		}
		if addFallthrough && n+1 < len(g.Blocks) {
			g.addEdge(b, g.Blocks[n+1])
		}
	}
	g.Entry = g.Blocks[0]
	return g, nil
}

func (g *Graph) addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// BlockOf returns the block containing instruction index n.
func (g *Graph) BlockOf(n int) *Block {
	for _, b := range g.Blocks {
		if n >= b.Start && n < b.End {
			return b
		}
	}
	return nil
}

// LabelBlock returns the block starting with the named label, or nil.
func (g *Graph) LabelBlock(name string) *Block { return g.labelBlock[name] }

// Dominators computes immediate dominators with the classic iterative
// data-flow algorithm (the graphs here are tiny).  The entry block's
// idom is itself.
func (g *Graph) Dominators() {
	n := len(g.Blocks)
	// Reverse postorder.
	order := g.ReversePostorder()
	rpoNum := make([]int, n)
	for k, b := range order {
		rpoNum[b.Index] = k
	}
	idom := make([]*Block, n)
	idom[g.Entry.Index] = g.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(idom, rpoNum, p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
}

func (g *Graph) intersect(idom []*Block, rpoNum []int, a, b *Block) *Block {
	for a != b {
		for rpoNum[a.Index] > rpoNum[b.Index] {
			a = idom[a.Index]
			if a == nil {
				return b
			}
		}
		for rpoNum[b.Index] > rpoNum[a.Index] {
			b = idom[b.Index]
			if b == nil {
				return a
			}
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry returns itself).
// Dominators must have been called.
func (g *Graph) Idom(b *Block) *Block {
	if g.idom == nil {
		panic("cfg: Dominators not computed")
	}
	return g.idom[b.Index]
}

// Dominates reports whether a dominates b (reflexively).
func (g *Graph) Dominates(a, b *Block) bool {
	if g.idom == nil {
		panic("cfg: Dominators not computed")
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b.Index]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder.
func (g *Graph) ReversePostorder() []*Block {
	visited := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// String renders the graph structure for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		var succ []string
		for _, s := range b.Succs {
			succ = append(succ, fmt.Sprint(s.Index))
		}
		sort.Strings(succ)
		fmt.Fprintf(&sb, "B%d [%d,%d) -> {%s}\n", b.Index, b.Start, b.End, strings.Join(succ, ","))
	}
	return sb.String()
}
