package cfg

import "wmstream/internal/rtl"

// trackable reports whether liveness tracks the register.  The zero
// registers read as constants and FIFO registers have queue semantics
// (their "value" lives in hardware queues, not in the cell), so neither
// participates in register liveness.
func trackable(r rtl.Reg) bool { return !r.IsZero() && !r.IsFIFO() }

// InstrUses calls fn for every trackable register the instruction
// reads, including the implicit reads of calls and returns.
func InstrUses(i *rtl.Instr, fn func(rtl.Reg)) {
	switch i.Kind {
	case rtl.KCall:
		for _, r := range i.Args {
			if trackable(r) {
				fn(r)
			}
		}
		fn(rtl.RegSP)
	case rtl.KRet:
		// The ABI returns results in r2/f2; without per-function result
		// annotations at every return we conservatively treat both as
		// read, plus the link register and stack pointer.
		fn(rtl.R(rtl.ResultReg))
		fn(rtl.F(rtl.ResultReg))
		fn(rtl.RegLR)
		fn(rtl.RegSP)
	default:
		for _, r := range i.Uses(nil) {
			if trackable(r) {
				fn(r)
			}
		}
	}
}

// InstrDefs calls fn for every trackable register the instruction
// writes.  Calls clobber every caller-saved register.
func InstrDefs(i *rtl.Instr, fn func(rtl.Reg)) {
	switch i.Kind {
	case rtl.KCall:
		rtl.CallClobbers(func(r rtl.Reg) {
			if trackable(r) {
				fn(r)
			}
		})
	case rtl.KAssign:
		if trackable(i.Dst) {
			fn(i.Dst)
		}
	}
}

// Liveness computes LiveIn/LiveOut for every block with the standard
// backward iterative data-flow algorithm.
func (g *Graph) Liveness() {
	f := g.F
	// Per-block use/def summaries.
	use := make([]RegSet, len(g.Blocks))
	def := make([]RegSet, len(g.Blocks))
	for _, b := range g.Blocks {
		u, d := NewRegSet(), NewRegSet()
		for _, i := range b.Instrs(f) {
			InstrUses(i, func(r rtl.Reg) {
				if !d.Has(r) {
					u.Add(r)
				}
			})
			InstrDefs(i, func(r rtl.Reg) { d.Add(r) })
		}
		use[b.Index], def[b.Index] = u, d
		b.LiveIn, b.LiveOut = NewRegSet(), NewRegSet()
	}
	changed := true
	for changed {
		changed = false
		// Backward over reverse postorder is fastest; correctness does
		// not depend on order.
		order := g.ReversePostorder()
		for k := len(order) - 1; k >= 0; k-- {
			b := order[k]
			out := NewRegSet()
			for _, s := range b.Succs {
				out.AddAll(s.LiveIn)
			}
			in := out.Clone()
			for r := range def[b.Index] {
				in.Remove(r)
			}
			in.AddAll(use[b.Index])
			if !in.Equal(b.LiveIn) || !out.Equal(b.LiveOut) {
				b.LiveIn, b.LiveOut = in, out
				changed = true
			}
		}
	}
}

// LiveAtEach walks block b backward and calls fn for every instruction
// with the set of registers live immediately *after* it.  Liveness must
// have been computed.  The set passed to fn is reused between calls;
// clone it to retain.
func (g *Graph) LiveAtEach(b *Block, fn func(idx int, i *rtl.Instr, liveAfter RegSet)) {
	live := b.LiveOut.Clone()
	for n := b.End - 1; n >= b.Start; n-- {
		i := g.F.Code[n]
		fn(n, i, live)
		InstrDefs(i, func(r rtl.Reg) { live.Remove(r) })
		InstrUses(i, func(r rtl.Reg) { live.Add(r) })
	}
}
