package cfg

import (
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// mustParse builds a function from assembler text.
func mustParse(t *testing.T, body string) *rtl.Func {
	t.Helper()
	p, err := rtl.Parse(".func t\n" + body + "\n.end\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Func("t")
}

func mustBuild(t *testing.T, f *rtl.Func) *Graph {
	t.Helper()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildStraightLine(t *testing.T) {
	f := mustParse(t, `
r2 := 1
r3 := 2
ret`)
	g := mustBuild(t, f)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1\n%s", len(g.Blocks), g)
	}
	if len(g.Entry.Succs) != 0 {
		t.Errorf("ret block has successors: %s", g)
	}
}

func TestBuildDiamond(t *testing.T) {
	f := mustParse(t, `
r31 := (r2 < r3)
jumpTr Lthen
r4 := 1
jump Lend
Lthen:
r4 := 2
Lend:
ret`)
	g := mustBuild(t, f)
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", len(g.Blocks), g)
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d", len(g.Entry.Succs))
	}
	end := g.LabelBlock("Lend")
	if end == nil || len(end.Preds) != 2 {
		t.Fatalf("Lend preds wrong: %s", g)
	}
	g.Dominators()
	if !g.Dominates(g.Entry, end) {
		t.Error("entry should dominate exit")
	}
	then := g.LabelBlock("Lthen")
	if g.Dominates(then, end) {
		t.Error("then branch must not dominate merge")
	}
	if g.Idom(end) != g.Entry {
		t.Errorf("idom(end) = B%d, want entry", g.Idom(end).Index)
	}
}

func TestBuildLoop(t *testing.T) {
	f := mustParse(t, `
r2 := 0
L1:
r2 := (r2 + 1)
r31 := (r2 < 10)
jumpTr L1
ret`)
	g := mustBuild(t, f)
	g.Dominators()
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(loops), g)
	}
	l := loops[0]
	if l.Header != g.LabelBlock("L1") {
		t.Error("wrong header")
	}
	if len(l.Blocks) != 1 {
		t.Errorf("loop blocks = %d, want 1", len(l.Blocks))
	}
	if l.Preheader == nil || l.Preheader != g.Entry {
		t.Errorf("preheader = %v", l.Preheader)
	}
	if len(l.Exits) != 1 || len(l.ExitTargets) != 1 {
		t.Errorf("exits = %d targets = %d", len(l.Exits), len(l.ExitTargets))
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("depth = %d parent = %v", l.Depth, l.Parent)
	}
}

func TestNestedLoops(t *testing.T) {
	f := mustParse(t, `
r2 := 0
Louter:
r3 := 0
Linner:
r3 := (r3 + 1)
r31 := (r3 < 10)
jumpTr Linner
r2 := (r2 + 1)
r31 := (r2 < 10)
jumpTr Louter
ret`)
	g := mustBuild(t, f)
	g.Dominators()
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	// Innermost first.
	inner, outer := loops[0], loops[1]
	if inner.Header != g.LabelBlock("Linner") || outer.Header != g.LabelBlock("Louter") {
		t.Fatalf("loop order wrong: inner=%v outer=%v", inner.Header.Index, outer.Header.Index)
	}
	if inner.Parent != outer || inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("nesting wrong: parent=%v depths=%d,%d", inner.Parent, inner.Depth, outer.Depth)
	}
	if !outer.Blocks[inner.Header] {
		t.Error("outer loop should contain inner header")
	}
}

func TestNoPreheaderWhenEntrySplits(t *testing.T) {
	// The outside predecessor also branches elsewhere, so it cannot act
	// as a preheader.
	f := mustParse(t, `
r31 := (r2 < r3)
jumpTr Lskip
L1:
r2 := (r2 + 1)
r31 := (r2 < 10)
jumpTr L1
Lskip:
ret`)
	g := mustBuild(t, f)
	g.Dominators()
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if loops[0].Preheader != nil {
		t.Errorf("unexpected preheader B%d", loops[0].Preheader.Index)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	f := mustParse(t, `
r3 := (r2 + 1)
r4 := (r3 + r5)
halt`)
	g := mustBuild(t, f)
	g.Liveness()
	in := g.Entry.LiveIn
	if !in.Has(rtl.R(2)) || !in.Has(rtl.R(5)) {
		t.Errorf("live-in = %v, want r2 and r5", in)
	}
	if in.Has(rtl.R(3)) || in.Has(rtl.R(4)) {
		t.Errorf("live-in = %v contains defined regs", in)
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	f := mustParse(t, `
r2 := 0
L1:
r2 := (r2 + r3)
r31 := (r2 < 10)
jumpTr L1
halt`)
	g := mustBuild(t, f)
	g.Liveness()
	loopB := g.LabelBlock("L1")
	if !loopB.LiveIn.Has(rtl.R(2)) || !loopB.LiveIn.Has(rtl.R(3)) {
		t.Errorf("loop live-in = %v", loopB.LiveIn)
	}
	if !loopB.LiveOut.Has(rtl.R(2)) {
		t.Errorf("loop live-out = %v, r2 should be live around the back edge", loopB.LiveOut)
	}
}

func TestLivenessCallClobbers(t *testing.T) {
	f := mustParse(t, `
r10 := 5
call foo
r11 := (r10 + 1)
halt`)
	g := mustBuild(t, f)
	g.Liveness()
	// Every allocatable register is caller-saved, so the call's clobber
	// def kills r10: the use after the call does NOT make r10 live
	// before it.  This is exactly the hazard that forbids keeping
	// values in registers across calls; the register assigner relies on
	// this shape of the liveness solution.
	live := map[int]RegSet{}
	g.LiveAtEach(g.Entry, func(idx int, i *rtl.Instr, after RegSet) {
		live[idx] = after.Clone()
	})
	if live[0].Has(rtl.R(10)) {
		t.Errorf("r10 live across call despite clobber: %v", live[0])
	}
	if !live[1].Has(rtl.R(10)) {
		t.Errorf("r10 not live after the call that (re)defines it: %v", live[1])
	}
	if g.Entry.LiveIn.Has(rtl.R(10)) {
		t.Errorf("live-in = %v", g.Entry.LiveIn)
	}
}

func TestFIFOAndZeroNotTracked(t *testing.T) {
	f := mustParse(t, `
f20 := f0
f0 := f20
r31 := (r2 < 1)
halt`)
	g := mustBuild(t, f)
	g.Liveness()
	if g.Entry.LiveIn.Has(rtl.F0) || g.Entry.LiveIn.Has(rtl.R31) {
		t.Errorf("live-in tracks FIFO/zero regs: %v", g.Entry.LiveIn)
	}
	if !g.Entry.LiveIn.Has(rtl.R(2)) {
		t.Errorf("live-in missing r2: %v", g.Entry.LiveIn)
	}
}

func TestLiveAtEachOrder(t *testing.T) {
	f := mustParse(t, `
r2 := 1
r3 := (r2 + 1)
halt`)
	g := mustBuild(t, f)
	g.Liveness()
	var idxs []int
	g.LiveAtEach(g.Entry, func(idx int, i *rtl.Instr, after RegSet) {
		idxs = append(idxs, idx)
		if idx == 0 && !after.Has(rtl.R(2)) {
			t.Errorf("r2 not live after its def: %v", after)
		}
	})
	if len(idxs) != 3 || idxs[0] != 2 || idxs[2] != 0 {
		t.Errorf("walk order = %v", idxs)
	}
}

func TestRegSetOps(t *testing.T) {
	s := NewRegSet()
	s.Add(rtl.R(1))
	s.Add(rtl.R(2))
	u := NewRegSet()
	u.Add(rtl.R(2))
	u.Add(rtl.F(3))
	if !s.AddAll(u) {
		t.Error("AddAll should report growth")
	}
	if s.AddAll(u) {
		t.Error("second AddAll should not grow")
	}
	if len(s) != 3 {
		t.Errorf("len = %d", len(s))
	}
	c := s.Clone()
	c.Remove(rtl.R(1))
	if !s.Has(rtl.R(1)) {
		t.Error("Clone aliases")
	}
	if s.Equal(c) {
		t.Error("Equal wrong")
	}
	if got := u.String(); got != "{f3 r2}" {
		t.Errorf("String = %q", got)
	}
}

func TestBlockOf(t *testing.T) {
	f := mustParse(t, `
r2 := 1
L1:
r3 := 2
ret`)
	g := mustBuild(t, f)
	if g.BlockOf(0) != g.Blocks[0] || g.BlockOf(2) != g.Blocks[1] {
		t.Errorf("BlockOf wrong: %s", g)
	}
	if g.BlockOf(99) != nil {
		t.Error("BlockOf out of range should be nil")
	}
}

func TestJumpNotDoneEdge(t *testing.T) {
	f := mustParse(t, `
sin64f f0, r2, r3, 8
L1:
f22 := (f0 + f22)
jnd f0, L1
halt`)
	g := mustBuild(t, f)
	g.Dominators()
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("stream loop not detected: %s", g)
	}
	if loops[0].Header != g.LabelBlock("L1") {
		t.Error("wrong stream loop header")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	f := mustParse(t, `
r31 := (r2 < r3)
jumpTr L2
L1:
r4 := 1
jump L3
L2:
r4 := 2
L3:
ret`)
	g := mustBuild(t, f)
	order := g.ReversePostorder()
	if order[0] != g.Entry {
		t.Error("rpo must start at entry")
	}
	seen := map[*Block]bool{}
	for _, b := range order {
		for _, p := range b.Preds {
			_ = p
		}
		seen[b] = true
	}
	if len(seen) != len(g.Blocks) {
		t.Errorf("rpo missed blocks: %d/%d", len(seen), len(g.Blocks))
	}
}

func TestBuildRejectsUnknownBranchTarget(t *testing.T) {
	f := mustParse(t, `
L1:
	r4 := r5
	jump L_missing
`)
	g, err := Build(f)
	if err == nil {
		t.Fatal("Build accepted a branch to an undefined label")
	}
	if g != nil {
		t.Error("Build returned a graph alongside the error")
	}
	for _, want := range []string{"t", "L_missing", "unknown label"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
