package cfg

import (
	"sort"
	"strings"

	"wmstream/internal/rtl"
)

// RegSet is a set of registers.  The zero value is usable as an empty
// set for reads; use NewRegSet (or Add, which allocates lazily via
// map assignment on a made set) before inserting.
type RegSet map[rtl.Reg]struct{}

// NewRegSet returns an empty set.
func NewRegSet() RegSet { return RegSet{} }

// Add inserts r.
func (s RegSet) Add(r rtl.Reg) { s[r] = struct{}{} }

// Remove deletes r.
func (s RegSet) Remove(r rtl.Reg) { delete(s, r) }

// Has reports membership.
func (s RegSet) Has(r rtl.Reg) bool {
	_, ok := s[r]
	return ok
}

// AddAll inserts every element of t and reports whether s grew.
func (s RegSet) AddAll(t RegSet) bool {
	grew := false
	for r := range t {
		if _, ok := s[r]; !ok {
			s[r] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Clone returns a copy.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}

// Equal reports set equality.
func (s RegSet) Equal(t RegSet) bool {
	if len(s) != len(t) {
		return false
	}
	for r := range s {
		if _, ok := t[r]; !ok {
			return false
		}
	}
	return true
}

func (s RegSet) String() string {
	names := make([]string, 0, len(s))
	for r := range s {
		names = append(names, r.String())
	}
	sort.Strings(names)
	return "{" + strings.Join(names, " ") + "}"
}
