package serve

import (
	"container/list"
	"sync"
)

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list element, key copy) charged against the byte budget on top of
// the body itself, so a budget of N bytes really bounds memory at
// roughly N.
const entryOverhead = 160

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

type cacheEntry struct {
	key  Key
	body []byte
}

// Cache is the content-addressed compilation cache: Key -> serialized
// response body, with LRU eviction under a byte budget.  Bodies are
// stored and returned by reference and must be treated as immutable by
// all parties (the server only ever writes them to sockets).
//
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = most recently used; values are *cacheEntry
	items  map[Key]*list.Element

	hits, misses, evictions int64
}

// NewCache returns a cache bounded by budget bytes (bodies plus
// per-entry overhead).  A non-positive budget disables storage: every
// Get misses and Put is a no-op, which keeps the serving path uniform.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		lru:    list.New(),
		items:  make(map[Key]*list.Element),
	}
}

// Get returns the cached body for the key, marking it most recently
// used.  The returned slice is shared: callers must not modify it.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores the body under the key and evicts least-recently-used
// entries until the budget holds again.  A body that alone exceeds the
// budget is not stored (it would evict everything for one entry).
func (c *Cache) Put(k Key, body []byte) {
	cost := int64(len(body)) + entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.budget {
		return
	}
	if el, ok := c.items[k]; ok {
		// Concurrent fill of the same key (e.g. two flights separated
		// by an eviction): keep the existing entry, the bodies are
		// identical by the content-address guarantee.
		c.lru.MoveToFront(el)
		return
	}
	c.items[k] = c.lru.PushFront(&cacheEntry{key: k, body: body})
	c.bytes += cost
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.body)) + entryOverhead
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   int64(c.lru.Len()),
		Bytes:     c.bytes,
	}
}
