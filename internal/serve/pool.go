package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Pool.Do when the submission queue is
// full; the server translates it to 429 + Retry-After (load shedding
// instead of unbounded queue growth).
var ErrOverloaded = errors.New("serve: queue full")

// ErrDraining is returned by Pool.Do once Close has begun; the server
// translates it to 503 (the daemon is shutting down).
var ErrDraining = errors.New("serve: draining")

type poolTask struct {
	ctx  context.Context
	fn   func(context.Context)
	done chan struct{}
	err  error
}

// Pool is a bounded worker pool with queue-depth admission control:
// a fixed number of workers drain a fixed-capacity queue, and a
// submission finding the queue full is rejected immediately rather
// than parked — the queue bound is the server's entire memory bound
// for pending work.
type Pool struct {
	queue    chan *poolTask
	workers  int
	mu       sync.RWMutex
	draining bool
	wg       sync.WaitGroup
	inflight atomic.Int64
}

// NewPool starts workers goroutines serving a queue of depth entries.
func NewPool(workers, depth int) *Pool {
	p := &Pool{queue: make(chan *poolTask, depth), workers: workers}
	p.wg.Add(workers)
	for n := 0; n < workers; n++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		// A task whose deadline passed while queued is skipped, not
		// run: its submitter has already been told to go away.
		if err := t.ctx.Err(); err != nil {
			t.err = err
		} else {
			p.inflight.Add(1)
			t.fn(t.ctx)
			p.inflight.Add(-1)
		}
		close(t.done)
	}
}

// Do runs fn(ctx) on a pool worker and waits for it to finish.  It
// returns ErrOverloaded without blocking when the queue is full,
// ErrDraining after Close has begun, and ctx's error when the deadline
// expired before a worker picked the task up.  fn itself is expected
// to honor ctx for prompt cancellation mid-run.
func (p *Pool) Do(ctx context.Context, fn func(context.Context)) error {
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.RLock()
	if p.draining {
		p.mu.RUnlock()
		return ErrDraining
	}
	select {
	case p.queue <- t:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return ErrOverloaded
	}
	<-t.done
	return t.err
}

// QueueDepth is the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// InFlight is the number of tasks currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Workers is the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close drains the pool gracefully: new submissions fail with
// ErrDraining, already-queued tasks still run (or are skipped if their
// deadline passed), and Close returns once every worker has exited.
// Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
