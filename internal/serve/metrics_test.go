package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file holds a strict exposition-format test for the hand-rolled
// Prometheus text exporter: every line must parse under the 0.0.4 line
// grammar, every sample family must be preceded by its HELP and TYPE,
// and counters must be monotone across scrapes.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels string // raw, inside the braces
	value  float64
	line   int
}

// promScrape is a parsed exposition payload.
type promScrape struct {
	types   map[string]string // family -> counter|gauge|histogram|...
	helps   map[string]string
	samples []promSample
}

// familyOf strips the histogram/summary suffixes a sample name may
// carry, yielding the declared family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

// parsePromText parses an exposition payload, failing the test on any
// grammar violation: bad names, malformed labels, unparsable values,
// samples before (or without) their HELP/TYPE headers, or duplicate
// header declarations.
func parsePromText(t *testing.T, text string) *promScrape {
	t.Helper()
	sc := &promScrape{types: map[string]string{}, helps: map[string]string{}}
	validTypes := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || parts[0] != "#" {
				t.Fatalf("line %d: malformed comment %q", n, line)
			}
			switch parts[1] {
			case "HELP":
				if !metricNameRe.MatchString(parts[2]) {
					t.Fatalf("line %d: bad metric name in HELP: %q", n, line)
				}
				if len(parts) < 4 || parts[3] == "" {
					t.Fatalf("line %d: empty HELP text: %q", n, line)
				}
				if _, dup := sc.helps[parts[2]]; dup {
					t.Fatalf("line %d: duplicate HELP for %s", n, parts[2])
				}
				sc.helps[parts[2]] = parts[3]
			case "TYPE":
				if !metricNameRe.MatchString(parts[2]) {
					t.Fatalf("line %d: bad metric name in TYPE: %q", n, line)
				}
				if len(parts) < 4 || !validTypes[parts[3]] {
					t.Fatalf("line %d: bad TYPE %q", n, line)
				}
				if _, dup := sc.types[parts[2]]; dup {
					t.Fatalf("line %d: duplicate TYPE for %s", n, parts[2])
				}
				if _, ok := sc.helps[parts[2]]; !ok {
					t.Fatalf("line %d: TYPE for %s precedes its HELP", n, parts[2])
				}
				sc.types[parts[2]] = parts[3]
			default:
				t.Fatalf("line %d: unknown comment keyword %q", n, line)
			}
			continue
		}
		sample := parseSampleLine(t, n, line)
		fam := familyOf(sample.name)
		typ, ok := sc.types[fam]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE for family %s", n, sample.name, fam)
		}
		if sample.name != fam && typ != "histogram" && typ != "summary" {
			t.Fatalf("line %d: suffixed sample %s under non-histogram family %s", n, sample.name, fam)
		}
		sc.samples = append(sc.samples, sample)
	}
	return sc
}

// parseSampleLine validates `name{label="v",...} value` (labels
// optional) and returns the parsed sample.
func parseSampleLine(t *testing.T, n int, line string) promSample {
	t.Helper()
	rest := line
	name := rest
	labels := ""
	if open := strings.IndexByte(rest, '{'); open >= 0 {
		name = rest[:open]
		closeIdx := strings.LastIndexByte(rest, '}')
		if closeIdx < open {
			t.Fatalf("line %d: unbalanced braces: %q", n, line)
		}
		labels = rest[open+1 : closeIdx]
		rest = name + rest[closeIdx+1:]
		parseLabels(t, n, labels)
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		t.Fatalf("line %d: want `name value`, got %q", n, line)
	}
	name = strings.TrimSuffix(fields[0], "{}")
	if !metricNameRe.MatchString(name) {
		t.Fatalf("line %d: bad sample name %q", n, name)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", n, fields[1], err)
	}
	return promSample{name: name, labels: labels, value: v, line: n}
}

// parseLabels validates a comma-separated `key="value"` list.  The
// exporter never emits escaped quotes except via %q, so a simple
// quote-aware scan suffices.
func parseLabels(t *testing.T, n int, labels string) {
	t.Helper()
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			t.Fatalf("line %d: label pair missing '=': %q", n, labels)
		}
		key := rest[:eq]
		if !labelNameRe.MatchString(key) {
			t.Fatalf("line %d: bad label name %q", n, key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			t.Fatalf("line %d: label %s value not quoted: %q", n, key, labels)
		}
		end := 1
		for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
			end++
		}
		if end >= len(rest) {
			t.Fatalf("line %d: unterminated label value: %q", n, labels)
		}
		rest = rest[end+1:]
		if rest != "" {
			if rest[0] != ',' {
				t.Fatalf("line %d: label pairs not comma-separated: %q", n, labels)
			}
			rest = rest[1:]
		}
	}
}

func scrape(t *testing.T, ts *httptest.Server) *promScrape {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	return parsePromText(t, string(body))
}

// TestMetricsExpositionGrammar drives real traffic, then validates the
// whole /metrics payload line by line.
func TestMetricsExpositionGrammar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(1)})
	post(t, ts, "/run", &Request{Source: streamSrc, Level: intp(3)})
	postRaw(t, ts, "/compile", []byte("{not json"))

	sc := scrape(t, ts)
	if len(sc.samples) == 0 {
		t.Fatal("no samples parsed")
	}
	for _, fam := range []string{
		"wmserved_requests_total",
		"wmserved_request_duration_seconds",
		"wmserved_longpoll_wait_seconds",
		"wmserved_slow_requests_total",
		"wmserved_traces_started_total",
		"wmserved_traces_retained_total",
		"wmserved_traces_active",
		"wmserved_go_goroutines",
		"wmserved_go_heap_bytes",
		"wmserved_go_gc_pause_seconds_total",
	} {
		if _, ok := sc.types[fam]; !ok {
			t.Errorf("family %s not declared", fam)
		}
	}
	if typ := sc.types["wmserved_longpoll_wait_seconds"]; typ != "histogram" {
		t.Errorf("longpoll wait type %q, want histogram", typ)
	}
	if typ := sc.types["wmserved_go_goroutines"]; typ != "gauge" {
		t.Errorf("goroutines type %q, want gauge", typ)
	}

	// Histogram buckets must be cumulative and agree with _count.
	var lastCum float64 = -1
	var infCum, count float64
	for _, s := range sc.samples {
		if s.name == "wmserved_request_duration_seconds_bucket" && strings.Contains(s.labels, `endpoint="compile"`) {
			if s.value < lastCum {
				t.Fatalf("line %d: bucket not cumulative (%g after %g)", s.line, s.value, lastCum)
			}
			lastCum = s.value
			if strings.Contains(s.labels, `le="+Inf"`) {
				infCum = s.value
			}
		}
		if s.name == "wmserved_request_duration_seconds_count" && strings.Contains(s.labels, `endpoint="compile"`) {
			count = s.value
		}
	}
	if infCum != count || count == 0 {
		t.Fatalf("+Inf bucket %g != count %g (or zero)", infCum, count)
	}

	// Runtime gauges carry live values.
	for _, s := range sc.samples {
		if s.name == "wmserved_go_goroutines" && s.value < 1 {
			t.Fatalf("goroutines gauge %g", s.value)
		}
		if s.name == "wmserved_go_heap_bytes" && s.value <= 0 {
			t.Fatalf("heap gauge %g", s.value)
		}
	}
}

// TestMetricsCountersMonotone scrapes, adds traffic, scrapes again,
// and requires every sample declared as a counter to be non-decreasing
// (histogram buckets and sums included).
func TestMetricsCountersMonotone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(0)})
	first := scrape(t, ts)

	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(0)}) // hit
	post(t, ts, "/run", &Request{Source: streamSrc, Level: intp(2)})
	second := scrape(t, ts)

	key := func(s promSample) string { return s.name + "{" + s.labels + "}" }
	prev := map[string]float64{}
	for _, s := range first.samples {
		if first.types[familyOf(s.name)] == "counter" || first.types[familyOf(s.name)] == "histogram" {
			prev[key(s)] = s.value
		}
	}
	checked := 0
	for _, s := range second.samples {
		typ := second.types[familyOf(s.name)]
		if typ != "counter" && typ != "histogram" {
			continue
		}
		before, seen := prev[key(s)]
		if !seen {
			continue // new label set this scrape
		}
		if s.value < before {
			t.Errorf("%s went backwards: %g -> %g", key(s), before, s.value)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no counter samples compared")
	}
	// And the second scrape must reflect the traffic in between.
	total := func(sc *promScrape, name string) (sum float64) {
		for _, s := range sc.samples {
			if s.name == name {
				sum += s.value
			}
		}
		return sum
	}
	if total(second, "wmserved_requests_total") <= total(first, "wmserved_requests_total") {
		t.Fatal("request counter did not advance across scrapes")
	}
}

// TestMetricsSlowExemplar forces a request over a tiny slow threshold
// and checks both the counter and the trace-info breadcrumb appear.
func TestMetricsSlowExemplar(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSlowThreshold: time.Nanosecond})
	post(t, ts, "/run", &Request{Source: streamSrc, Level: intp(2)})

	sc := scrape(t, ts)
	var slowCount float64
	var traceInfo string
	for _, s := range sc.samples {
		if s.name == "wmserved_slow_requests_total" && strings.Contains(s.labels, `endpoint="run"`) {
			slowCount = s.value
		}
		if s.name == "wmserved_slow_request_trace_info" && strings.Contains(s.labels, `endpoint="run"`) {
			traceInfo = s.labels
		}
	}
	if slowCount < 1 {
		t.Fatal("slow request not counted")
	}
	m := regexp.MustCompile(`trace_id="([0-9a-f]{32})"`).FindStringSubmatch(traceInfo)
	if m == nil {
		t.Fatalf("trace exemplar missing or malformed: %q", traceInfo)
	}
	// The breadcrumb must resolve in /debug/traces.
	resp, err := http.Get(ts.URL + "/debug/traces/" + m[1])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace %s not retrievable: %d", m[1], resp.StatusCode)
	}
}

// TestMetricsLongpollWaitSeparated submits a job, long-polls it with a
// generous wait, and checks the parked time lands in the wait
// histogram — not the service-latency histogram the p99 is built from.
func TestMetricsLongpollWaitSeparated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res := post(t, ts, "/jobs", &Request{Source: helloSrc, Level: intp(1)})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.status, res.body)
	}
	var jr JobResponse
	if err := json.Unmarshal(res.body, &jr); err != nil {
		t.Fatal(err)
	}
	// Poll from gen 0 until terminal; waits ride the ?wait= park.
	gen := jr.Gen
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?gen=%d&wait=2s", ts.URL, jr.ID, gen))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatalf("poll body %s: %v", body, err)
		}
		gen = jr.Gen
		if jr.State == "done" || jr.State == "failed" || jr.State == "canceled" {
			break
		}
	}
	// One more poll at the terminal generation: nothing will change, so
	// the request parks for the full wait before reporting — a
	// guaranteed long-poll park even when the job itself was instant.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?gen=%d&wait=50ms", ts.URL, jr.ID, gen))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sc := scrape(t, ts)
	var waitCount, waitSum float64
	for _, s := range sc.samples {
		if s.name == "wmserved_longpoll_wait_seconds_count" {
			waitCount = s.value
		}
		if s.name == "wmserved_longpoll_wait_seconds_sum" {
			waitSum = s.value
		}
	}
	if waitCount == 0 {
		t.Fatal("no long-poll waits recorded")
	}
	_ = waitSum
}
