package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wmstream"
)

// wmstreamLevelOptions spells out a canonical level as explicit wire
// options.
func wmstreamLevelOptions(level int) Options {
	o := wmstream.LevelOptions(level)
	return Options{
		Standard:            o.Standard,
		Recurrence:          o.Recurrence,
		Stream:              o.Stream,
		StrengthReduce:      o.StrengthReduce,
		Combine:             o.Combine,
		MinTrip:             o.MinTrip,
		MaxRecurrenceDegree: o.MaxRecurrenceDegree,
	}
}

// newTestServer builds a Server plus an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

type reply struct {
	status int
	cache  string // X-Cache header
	retry  string // Retry-After header
	body   []byte
}

func post(t *testing.T, ts *httptest.Server, endpoint string, req *Request) reply {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return postRaw(t, ts, endpoint, body)
}

func postRaw(t *testing.T, ts *httptest.Server, endpoint string, body []byte) reply {
	t.Helper()
	resp, err := http.Post(ts.URL+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", endpoint, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return reply{
		status: resp.StatusCode,
		cache:  resp.Header.Get("X-Cache"),
		retry:  resp.Header.Get("Retry-After"),
		body:   b,
	}
}

func intp(n int) *int { return &n }

const helloSrc = `int main(void) { int i, s; s = 0; for (i = 0; i < 10; i++) s = s + i; puti(s); return 0; }`

// streamSrc exercises the streaming path so /run responses carry
// nonzero stream counters.
const streamSrc = `double a[64];
int main(void) {
    int i; double s;
    for (i = 0; i < 64; i++) a[i] = i * 1.0;
    s = 0.0;
    for (i = 0; i < 64; i++) s = s + a[i];
    putd(s);
    return 0;
}`

func TestCompileMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &Request{Source: helloSrc, Level: intp(2)}

	cold := post(t, ts, "/compile", req)
	if cold.status != http.StatusOK {
		t.Fatalf("cold: status %d, body %s", cold.status, cold.body)
	}
	if cold.cache != "miss" {
		t.Fatalf("cold: X-Cache = %q, want miss", cold.cache)
	}
	var cr CompileResponse
	if err := json.Unmarshal(cold.body, &cr); err != nil {
		t.Fatalf("cold: bad JSON: %v", err)
	}
	if !strings.Contains(cr.Listing, ".func main") {
		t.Fatalf("cold: listing missing main:\n%s", cr.Listing)
	}

	hit := post(t, ts, "/compile", req)
	if hit.status != http.StatusOK || hit.cache != "hit" {
		t.Fatalf("hit: status %d X-Cache %q, want 200 hit", hit.status, hit.cache)
	}
	if !bytes.Equal(cold.body, hit.body) {
		t.Fatalf("hit body differs from cold body:\ncold: %s\nhit:  %s", cold.body, hit.body)
	}
}

// TestByteIdenticalAcrossLevels pins the core cache-soundness claim:
// for every optimization level and both endpoints, the cached response
// is byte-identical to the cold one.
func TestByteIdenticalAcrossLevels(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, endpoint := range []string{"/compile", "/run"} {
		for level := 0; level <= 3; level++ {
			req := &Request{Source: streamSrc, Level: intp(level)}
			cold := post(t, ts, endpoint, req)
			if cold.status != http.StatusOK || cold.cache != "miss" {
				t.Fatalf("%s O%d cold: status %d X-Cache %q, body %s",
					endpoint, level, cold.status, cold.cache, cold.body)
			}
			for n := 0; n < 3; n++ {
				hit := post(t, ts, endpoint, req)
				if hit.status != http.StatusOK || hit.cache != "hit" {
					t.Fatalf("%s O%d hit %d: status %d X-Cache %q", endpoint, level, n, hit.status, hit.cache)
				}
				if !bytes.Equal(cold.body, hit.body) {
					t.Fatalf("%s O%d: cached body differs from cold", endpoint, level)
				}
			}
		}
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res := post(t, ts, "/run", &Request{Source: helloSrc})
	if res.status != http.StatusOK {
		t.Fatalf("status %d, body %s", res.status, res.body)
	}
	var rr RunResponse
	if err := json.Unmarshal(res.body, &rr); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rr.Output != "45" {
		t.Fatalf("output %q, want 45", rr.Output)
	}
	if rr.Cycles <= 0 || rr.Instructions <= 0 {
		t.Fatalf("missing stats: cycles=%d instructions=%d", rr.Cycles, rr.Instructions)
	}

	// Distinct machine config must be a distinct cache entry with its
	// own simulation result.
	slow := post(t, ts, "/run", &Request{Source: helloSrc, Machine: &MachineSpec{MemLatency: 40}})
	if slow.status != http.StatusOK || slow.cache != "miss" {
		t.Fatalf("slow machine: status %d X-Cache %q", slow.status, slow.cache)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 256})
	cases := []struct {
		name   string
		body   []byte
		status int
	}{
		{"bad json", []byte(`{"source": 12`), http.StatusBadRequest},
		{"missing source", []byte(`{}`), http.StatusBadRequest},
		{"level out of range", []byte(`{"source":"int main(void){return 0;}","level":7}`), http.StatusBadRequest},
		{"source too large", []byte(fmt.Sprintf(`{"source":%q}`, strings.Repeat("x", 300))), http.StatusRequestEntityTooLarge},
		{"compile error", []byte(`{"source":"int main(void){ return y; }"}`), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := postRaw(t, ts, "/compile", tc.body)
			if res.status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", res.status, tc.status, res.body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(res.body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not ErrorResponse: %s", res.body)
			}
		})
	}

	// The compile error must carry structured diagnostics.
	res := postRaw(t, ts, "/compile", []byte(`{"source":"int main(void){ return y; }"}`))
	var er ErrorResponse
	if err := json.Unmarshal(res.body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Diagnostics) == 0 || er.Diagnostics[0].Severity != "error" {
		t.Fatalf("want error diagnostics, got %+v", er.Diagnostics)
	}
}

// TestSingleflightCollapse holds the one real compile hostage while N
// identical requests pile up, then verifies exactly one execution
// served all of them with identical bytes.
func TestSingleflightCollapse(t *testing.T) {
	const n = 16
	var executions atomic.Int64
	var entered atomic.Int64
	release := make(chan struct{})
	srv, _ := newTestServer(t, Config{
		CompileHook: func(Key) {
			executions.Add(1)
			<-release
		},
	})
	// Count arrivals at the handler so the leader is released only
	// after every request is inside the server.
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		srv.ServeHTTP(w, r)
	}))
	defer counting.Close()

	req := &Request{Source: helloSrc, Level: intp(3)}
	results := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(t, counting, "/compile", req)
		}(i)
	}
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the last arrivals reach the flight group
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	var misses, coalesced int
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d: body differs from request 0", i)
		}
		switch r.cache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		case "hit": // a straggler that arrived after the fill is fine
		default:
			t.Fatalf("request %d: X-Cache %q", i, r.cache)
		}
	}
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (coalesced %d)", misses, coalesced)
	}
	if coalesced == 0 {
		t.Fatalf("no request was coalesced")
	}
}

// TestQueueOverflow saturates a 1-worker, depth-1 pool and checks the
// next request is shed with 429 + Retry-After rather than queued.
func TestQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 2 * time.Second,
		CompileHook: func(Key) {
			<-release
		},
	})
	defer close(release)

	// Distinct sources so nothing coalesces.
	src := func(n int) *Request {
		return &Request{Source: fmt.Sprintf(`int main(void) { puti(%d); return 0; }`, n)}
	}
	done := make(chan reply, 2)
	go func() { done <- post(t, ts, "/compile", src(0)) }() // occupies the worker
	waitFor(t, "worker busy", func() bool { return srv.pool.InFlight() == 1 })
	go func() { done <- post(t, ts, "/compile", src(1)) }() // occupies the queue slot
	waitFor(t, "queue full", func() bool { return srv.pool.QueueDepth() == 1 })

	shed := post(t, ts, "/compile", src(2))
	if shed.status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", shed.status, shed.body)
	}
	if shed.retry != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", shed.retry)
	}

	release <- struct{}{}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if r := <-done; r.status != http.StatusOK {
			t.Fatalf("blocked request %d: status %d, body %s", i, r.status, r.body)
		}
	}
	if srv.metrics.shed.value() != 1 {
		t.Fatalf("shed counter = %d, want 1", srv.metrics.shed.value())
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentMixed fires 64 concurrent requests mixing endpoints,
// levels, and hit/miss traffic; run under -race this is the
// subsystem's core concurrency check.
func TestConcurrentMixed(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 256})
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			endpoint := "/compile"
			if i%2 == 0 {
				endpoint = "/run"
			}
			src := helloSrc // half the traffic shares one program
			if i%4 < 2 {
				src = fmt.Sprintf(`int main(void) { int i, s; s = %d; for (i = 0; i < 20; i++) s = s + i; puti(s); return 0; }`, i)
			}
			res := post(t, ts, endpoint, &Request{Source: src, Level: intp(i % 4)})
			if res.status != http.StatusOK {
				errs <- fmt.Errorf("request %d (%s): status %d, body %s", i, endpoint, res.status, res.body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheHitSpeedup is the acceptance check that a cache hit is at
// least 10x faster than a cold compile of the same request.
func TestCacheHitSpeedup(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A source big enough that a cold O3 compile-and-run costs
	// milliseconds; variants keep each cold sample a genuine miss.
	bigSource := func(tag int) string {
		var b strings.Builder
		fmt.Fprintf(&b, "double a[256], acc[256];\n")
		for fn := 0; fn < 12; fn++ {
			fmt.Fprintf(&b, `double work%d(void) {
    int i; double s;
    s = %d.0;
    for (i = 0; i < 256; i++) a[i] = i * %d.0;
    for (i = 0; i < 256; i++) s = s + a[i] * a[i];
    for (i = 1; i < 256; i++) acc[i] = acc[i-1] + a[i];
    return s + acc[255];
}
`, fn, tag, fn+1)
		}
		b.WriteString("int main(void) { double s; s = 0.0;\n")
		for fn := 0; fn < 12; fn++ {
			fmt.Fprintf(&b, "    s = s + work%d();\n", fn)
		}
		b.WriteString("    putd(s);\n    return 0;\n}\n")
		return b.String()
	}

	var cold, hit time.Duration
	for sample := 0; sample < 3; sample++ {
		req := &Request{Source: bigSource(sample), Level: intp(3)}
		start := time.Now()
		res := post(t, ts, "/run", req)
		d := time.Since(start)
		if res.status != http.StatusOK || res.cache != "miss" {
			t.Fatalf("cold %d: status %d X-Cache %q, body %.200s", sample, res.status, res.cache, res.body)
		}
		if sample == 0 || d < cold {
			cold = d
		}
		for n := 0; n < 5; n++ {
			start := time.Now()
			res := post(t, ts, "/run", req)
			d := time.Since(start)
			if res.status != http.StatusOK || res.cache != "hit" {
				t.Fatalf("hit: status %d X-Cache %q", res.status, res.cache)
			}
			if hit == 0 || d < hit {
				hit = d
			}
		}
	}
	if cold < 10*hit {
		t.Fatalf("cache hit not >=10x faster: best cold %v, best hit %v", cold, hit)
	}
	t.Logf("best cold %v, best hit %v (%.0fx)", cold, hit, float64(cold)/float64(hit))
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Version: "test-v1"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Version != "test-v1" {
		t.Fatalf("healthz: code %d, body %+v", resp.StatusCode, h)
	}

	srv.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: code %d, want 503", resp.StatusCode)
	}
}

func TestClosedServerSheds(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.Close()
	res := post(t, ts, "/compile", &Request{Source: helloSrc})
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 after Close", res.status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(1)})
	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(1)}) // hit
	post(t, ts, "/run", &Request{Source: streamSrc, Level: intp(3)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	for _, want := range []string{
		`wmserved_requests_total{endpoint="compile",code="200"} 2`,
		`wmserved_requests_total{endpoint="run",code="200"} 1`,
		`wmserved_compiles_total{level="O1"} 1`,
		`wmserved_compiles_total{level="O3"} 1`,
		"wmserved_cache_hits_total 1",
		"wmserved_cache_misses_total 2",
		"wmserved_request_duration_seconds_bucket",
		"wmserved_workers",
		`wmserved_sim_unit_cycles_total{unit=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSoak reuses the wmload generator against an in-process server.
// The default duration keeps `go test` quick; CI's race-soak job sets
// WMSERVE_SOAK=30s.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak in -short mode")
	}
	dur := 2 * time.Second
	if env := os.Getenv("WMSERVE_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad WMSERVE_SOAK %q: %v", env, err)
		}
		dur = d
	}
	_, ts := newTestServer(t, Config{QueueDepth: 512})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Duration:    dur,
		Concurrency: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	ok := rep.ByStatus[http.StatusOK]
	if float64(ok) < 0.9*float64(rep.Requests) {
		t.Fatalf("only %d/%d requests succeeded", ok, rep.Requests)
	}
	if rep.ByCache["hit"] == 0 {
		t.Fatal("soak produced no cache hits")
	}
}

func TestCacheKeyResolvesEquivalentRequests(t *testing.T) {
	// `"level": 2` and the equivalent explicit options must share a
	// content address; different levels must not.
	o2 := &Request{Source: helloSrc, Level: intp(2)}
	lv := wmstreamLevelOptions(2)
	explicit := &Request{Source: helloSrc, Options: &lv}
	if o2.cacheKey(kindCompile) != explicit.cacheKey(kindCompile) {
		t.Fatal("equivalent requests hash to different keys")
	}
	o3 := &Request{Source: helloSrc, Level: intp(3)}
	if o2.cacheKey(kindCompile) == o3.cacheKey(kindCompile) {
		t.Fatal("O2 and O3 share a key")
	}
	// The same request targets distinct entries per endpoint, and the
	// machine configuration only matters for /run.
	if o2.cacheKey(kindCompile) == o2.cacheKey(kindRun) {
		t.Fatal("compile and run share a key")
	}
	mach := &Request{Source: helloSrc, Level: intp(2), Machine: &MachineSpec{MemLatency: 99}}
	if o2.cacheKey(kindCompile) != mach.cacheKey(kindCompile) {
		t.Fatal("machine config leaked into the compile key")
	}
	if o2.cacheKey(kindRun) == mach.cacheKey(kindRun) {
		t.Fatal("machine config ignored in the run key")
	}
}
