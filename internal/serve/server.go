// Package serve is the network-facing subsystem: it exposes the
// compiler and simulator as a concurrent HTTP/JSON service with a
// content-addressed compilation cache, request coalescing, bounded
// concurrency with load shedding, and Prometheus-format observability.
//
// The serving pipeline for POST /compile and POST /run:
//
//  1. The request is reduced to a content address — the SHA-256 of the
//     endpoint, the resolved optimizer options, the resolved machine
//     configuration, and the source (protocol.go).  Compilation and
//     simulation are deterministic, so the address fully determines
//     the success response, byte for byte.
//  2. The cache (cache.go) is consulted; a hit is served immediately
//     from the stored body (X-Cache: hit).
//  3. Concurrent identical misses are coalesced (singleflight.go):
//     one leader executes, everyone else shares its bytes (X-Cache:
//     coalesced).
//  4. The leader submits to a bounded worker pool (pool.go).  A full
//     queue sheds the request with 429 + Retry-After instead of
//     queueing without bound; the per-request deadline is plumbed as a
//     context.Context through wmstream.CompileContext and
//     RunWithTelemetryContext, so the optimizer pass loop and the
//     simulator engine loops abandon work whose requester has given
//     up.
//  5. Successful bodies enter the cache; every outcome feeds the
//     /metrics counters and the structured request log.
//
// Every request is additionally traced end to end (internal/obs): a
// W3C traceparent is accepted inbound and a span tree — admission,
// queue wait, compile (with per-pass children), sim slices, journal
// writes — is retained in a bounded ring, browsable at /debug/traces
// and /debug/statusz, with per-stage timings echoed in a Server-Timing
// response header and the trace ID in X-WM-Trace-Id.
//
// In cluster mode (Config.Cluster) a routing decision precedes step 2:
// the content address is mapped through a consistent-hash ring to an
// owning node, and requests owned by a healthy peer are forwarded to
// it instead of executing locally — see forward.go for the peer
// protocol and internal/cluster for ring and membership.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmstream"
	"wmstream/internal/cluster"
	"wmstream/internal/durable"
	"wmstream/internal/obs"
)

// Endpoint kinds; also the label values used in metrics.
const (
	kindCompile   = "compile"
	kindRun       = "run"
	kindJobs      = "jobs"
	kindJobPoll   = "jobs-poll"
	kindJobCancel = "jobs-cancel"
)

// Config configures a Server.  The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers bounds concurrent compilations/simulations (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker; a submission
	// beyond it is shed with 429 (default 64).
	QueueDepth int
	// CacheBytes is the compilation cache budget (default 64 MiB;
	// <= 0 after defaulting disables caching).
	CacheBytes int64
	// RequestTimeout is the per-request execution deadline (default
	// 30s).
	RequestTimeout time.Duration
	// MaxSourceBytes bounds the source text (default 1 MiB).
	MaxSourceBytes int64
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// Logger receives structured request logs (default: discard).
	Logger *slog.Logger
	// Version is reported by /healthz.
	Version string
	// CompileHook, when non-nil, is called once per actual execution
	// (cache misses that reach a worker), with the request's content
	// address.  Tests use it to assert that coalescing and caching
	// collapse N identical requests into one compile.
	CompileHook func(key Key)

	// JobWorkers bounds concurrently executing asynchronous jobs
	// (default 2): the job tier gets its own small pool so long jobs
	// never starve synchronous traffic.
	JobWorkers int
	// JobBatch is how many queued jobs one job worker interleaves at a
	// time (default 1 — dedicated execution).  Above 1, a worker claims
	// up to JobBatch jobs and runs them on one shared admission gate:
	// simulation slices execute one at a time in FIFO rotation, so N
	// jobs progress together with the cache locality of sequential
	// execution.  Results are bit-identical either way; only host
	// scheduling changes.
	JobBatch int
	// JobQueueDepth bounds queued jobs across all tenants; a
	// submission beyond it is shed with 429 (default 32).
	JobQueueDepth int
	// JobTenantQueue bounds queued jobs per tenant (default 8), so one
	// tenant cannot occupy the whole queue.
	JobTenantQueue int
	// JobTimeout is the per-job execution wall-clock budget (default
	// 5m — jobs exist precisely to outlive RequestTimeout).
	JobTimeout time.Duration
	// JobTTL is how long a terminal job remains pollable before the
	// janitor deletes it (default 5m).
	JobTTL time.Duration
	// JobPollMax caps the long-poll wait of GET /jobs/{id} (default
	// 30s).
	JobPollMax time.Duration
	// JobProgressEvery is the minimum interval between progress
	// generation bumps of a running job (default 250ms).
	JobProgressEvery time.Duration

	// JobDir, when set, makes the job tier durable: every job state
	// transition is journaled under it (write-ahead, CRC-framed) and
	// running jobs spill periodic checkpoints, so acknowledged jobs
	// survive a process death and resume on the next boot.  Empty
	// keeps the tier memory-only.
	JobDir string
	// JobFsync selects the journal flush policy: "batch" (default,
	// sync on a short timer), "always" (sync every append), "never".
	JobFsync string
	// JobRetries caps transient-failure retries per job (default 3;
	// negative disables retries).
	JobRetries int
	// JobCheckpointEvery is the simulated-cycle interval between
	// checkpoint spills of a running job (default 5,000,000).
	JobCheckpointEvery int64
	// JobRetryBase is the first retry backoff delay (default 100ms);
	// later retries double it, capped at 64x, with jitter.
	JobRetryBase time.Duration
	// JobFaults injects journal/checkpoint write failures — the
	// crash-restart harness's hook.  Nil in production.
	JobFaults *durable.FaultPoints

	// Cluster, when non-nil, makes this node a member of a wmserved
	// cluster: synchronous requests whose content address hashes to a
	// healthy peer are forwarded to it (see forward.go for the peer
	// protocol and the decision table); requests this node owns — and
	// every forwarded request — run through the local pipeline.  The
	// caller owns the Cluster's probe-loop lifecycle (Start/Close).
	Cluster *cluster.Cluster

	// TraceRing caps the in-memory ring of completed request traces
	// (default 256; negative disables tracing entirely).
	TraceRing int
	// TraceSlowThreshold classifies a request as slow by its busy time
	// (duration minus intentional long-poll waits): slow traces bypass
	// head sampling into the tail-keep ring and increment
	// wmserved_slow_requests_total (default 500ms).
	TraceSlowThreshold time.Duration
	// TraceHeadRate keeps 1 in N ordinary completed traces (default 1:
	// keep all until the ring evicts them).  Slow and errored traces
	// are always kept.
	TraceHeadRate int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobBatch <= 0 {
		c.JobBatch = 1
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 32
	}
	if c.JobTenantQueue <= 0 {
		c.JobTenantQueue = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 5 * time.Minute
	}
	if c.JobPollMax <= 0 {
		c.JobPollMax = 30 * time.Second
	}
	if c.JobProgressEvery <= 0 {
		c.JobProgressEvery = 250 * time.Millisecond
	}
	if c.JobRetries == 0 {
		c.JobRetries = 3
	} else if c.JobRetries < 0 {
		c.JobRetries = 0
	}
	if c.JobCheckpointEvery <= 0 {
		c.JobCheckpointEvery = 5_000_000
	}
	if c.JobRetryBase <= 0 {
		c.JobRetryBase = 100 * time.Millisecond
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.TraceSlowThreshold <= 0 {
		c.TraceSlowThreshold = 500 * time.Millisecond
	}
	if c.TraceHeadRate <= 0 {
		c.TraceHeadRate = 1
	}
	return c
}

// Server is the compile-and-run service.  It implements http.Handler;
// construct with New, shut down with Close.
type Server struct {
	cfg      Config
	cache    *Cache
	pool     *Pool
	jobs     *jobManager
	flights  flightGroup
	metrics  *metrics
	traces   *obs.Collector
	mux      *http.ServeMux
	start    time.Time
	base     context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	// drainCh closes when Drain is first called, waking long-polls so
	// they answer promptly instead of stalling the graceful shutdown.
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Every log line carrying a request context gains the trace/span
	// IDs, so logs correlate with /debug/traces without call-site
	// plumbing.
	cfg.Logger = slog.New(obs.WrapHandler(cfg.Logger.Handler()))
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheBytes),
		pool:    NewPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(),
		traces: obs.NewCollector(obs.CollectorOptions{
			Ring:          cfg.TraceRing,
			HeadRate:      cfg.TraceHeadRate,
			SlowThreshold: cfg.TraceSlowThreshold,
		}),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		drainCh: make(chan struct{}),
	}
	s.base, s.cancel = context.WithCancel(context.Background())
	s.jobs = newJobManager(s)
	if cfg.JobDir != "" {
		// Recovery before workers: every journaled job is back in its
		// queue before anything can race it.
		s.jobs.openStore()
	}
	s.jobs.start()
	s.mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) {
		s.handleSync(w, r, kindCompile)
	})
	s.mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		s.handleSync(w, r, kindRun)
	})
	s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.traces.HandleIndex)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.traces.HandleGet)
	s.mux.HandleFunc("GET /debug/statusz", s.handleStatusz)
	return s
}

// startTrace begins (or, with an inbound traceparent, continues) a
// trace for the request and returns the request context carrying the
// root span.  With tracing disabled both returns are nil-safe no-ops.
func (s *Server) startTrace(r *http.Request, name string) (context.Context, *obs.Span) {
	if s.traces == nil {
		return r.Context(), nil
	}
	tid, parent, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tid, parent = obs.TraceID{}, obs.SpanID{}
	}
	_, root := s.traces.Start(name, tid, parent)
	root.SetAttr("remote", r.RemoteAddr)
	return obs.ContextWith(r.Context(), root), root
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips /healthz to "draining" (503) so load balancers stop
// sending traffic, without yet refusing requests, and wakes every
// held-open job long-poll so GET /jobs/{id}?wait= answers promptly
// instead of stalling http.Server.Shutdown.  Called at the start of a
// graceful shutdown, before http.Server.Shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Close shuts the execution layer down: in-flight and queued work
// finishes (or is skipped once its deadline passes), new submissions
// fail with 503.  Call after the HTTP listener has stopped accepting.
func (s *Server) Close() {
	s.Drain()
	s.cancel()
	s.jobs.close()
	s.pool.Close()
}

// crash simulates kill -9 for the crash-restart harness: running
// simulations abort via the canceled base context, workers exit
// without journaling graceful-shutdown transitions (the harness has
// already wedged the store with fault injection, so attempted writes
// fail), and file handles are released so a fresh Server can recover
// from the same JobDir in-process.  Test-only by being unexported.
func (s *Server) crash() {
	s.Drain()
	s.cancel()
	s.jobs.crash()
	s.pool.Close()
}

// Recovery reports what boot-time journal replay reconstructed, plus
// the store's current mode ("durable", "degraded", "crashed", or
// "memory" when no JobDir is configured).
func (s *Server) Recovery() (RecoveryInfo, string) {
	mode := "memory"
	if st := s.jobs.store; st != nil {
		m, _ := st.Mode()
		mode = m.String()
	}
	return s.jobs.rec, mode
}

// handleSync fronts the synchronous /compile and /run endpoints: it
// decodes the request, lets the cluster layer (when configured) route
// it — local, forward to the owning peer, or degraded-local when the
// owner is down — and otherwise runs the local cache → coalesce →
// pool → execute pipeline.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request, kind string) {
	start := time.Now()
	ctx, root := s.startTrace(r, "POST /"+kind)
	r = r.WithContext(ctx)
	req, raw, errResp, status := s.decodeRequest(w, r)
	if errResp != nil {
		root.SetError(errResp.Error)
		s.finish(w, r, kind, start, status, mustJSON(errResp), "")
		return
	}

	// The execution budget: the configured per-request deadline, capped
	// by whatever deadline a forwarding front node propagated — the
	// client's clock keeps running while a request hops nodes.
	budget := s.cfg.RequestTimeout
	if dl, ok := parseDeadline(r.Header.Get(headerDeadline)); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}

	key := req.cacheKey(kind)
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(headerNode, cl.Self())
		if from := r.Header.Get(headerForwarded); from != "" {
			// An internal forward: always executed here, never
			// re-forwarded, so routing is one hop and loop-free.
			root.SetAttr("peer", from)
			s.metrics.forwardedIn.add(fmt.Sprintf(`peer=%q`, from), 1)
		} else if rt := cl.Route(key[:]); !rt.Local {
			root.SetAttr("owner", rt.ID)
			if rt.Up {
				if fw, ok := s.forwardSync(r.Context(), kind, raw, rt, budget, root); ok {
					if fw.node != "" {
						w.Header().Set(headerNode, fw.node)
					}
					s.finish(w, r, kind, start, fw.status, fw.body, fw.cache)
					return
				}
			} else {
				s.metrics.forwards.add(fmt.Sprintf(`peer=%q,outcome=%q`, rt.ID, forwardDown), 1)
			}
			// Owner unreachable: serve locally so the cluster keeps
			// answering, marked degraded (the key is temporarily compiled
			// on more than one node; responses stay byte-identical because
			// they are a pure function of the content address).
			w.Header().Set(headerDegraded, "owner "+rt.ID+" down")
			root.SetAttr("degraded_owner", rt.ID)
		}
	}

	s.localSync(w, r, kind, start, key, req, budget)
}

// localSync is the node-local cache → coalesce → pool → execute
// pipeline.
func (s *Server) localSync(w http.ResponseWriter, r *http.Request, kind string, start time.Time, key Key, req *Request, budget time.Duration) {
	root := obs.FromContext(r.Context())
	lookup := root.StartChild("cache.lookup")
	body, ok := s.cache.Get(key)
	lookup.End()
	if ok {
		s.finish(w, r, kind, start, http.StatusOK, body, "hit")
		return
	}

	flightStart := time.Now()
	res, shared, leader := s.flights.Do(key, root.Trace().ID().String(), func() flightResult {
		var fr flightResult
		ctx, cancel := context.WithTimeout(s.base, budget)
		defer cancel()
		// The leader executes under the server's base context (so a
		// client disconnect cannot poison coalesced followers) but
		// carries its own request trace.
		ctx = obs.ContextWith(ctx, root)
		qspan := root.StartChild("queue.wait")
		err := s.pool.Do(ctx, func(ctx context.Context) {
			qspan.End()
			fr = s.execute(ctx, kind, key, req)
		})
		qspan.EndErr(err) // no-op when the worker already ended it
		switch {
		case err == nil:
		case errors.Is(err, ErrOverloaded):
			s.metrics.shed.inc()
			fr = flightResult{
				status: http.StatusTooManyRequests,
				body:   mustJSON(&ErrorResponse{Error: "overloaded: request queue is full, retry later"}),
			}
		case errors.Is(err, ErrDraining):
			fr = flightResult{
				status: http.StatusServiceUnavailable,
				body:   mustJSON(&ErrorResponse{Error: "server is shutting down"}),
			}
		default: // deadline passed while queued
			fr = flightResult{
				status: http.StatusGatewayTimeout,
				body:   mustJSON(&ErrorResponse{Error: "deadline exceeded while queued: " + err.Error()}),
			}
		}
		return fr
	})

	cacheState := "miss"
	if shared {
		cacheState = "coalesced"
		s.metrics.coalesced.inc()
		// The leader's trace holds the execution spans; this trace
		// records only that it attached, and to whom.
		attach := root.AddChildAt("singleflight.attach", obs.KindService,
			flightStart, time.Since(flightStart))
		attach.SetAttr("leader_trace", leader)
	} else if res.status == http.StatusOK {
		fill := root.StartChild("cache.fill")
		s.cache.Put(key, res.body)
		fill.End()
	}
	s.finish(w, r, kind, start, res.status, res.body, cacheState)
}

// decodeRequest parses and validates the body, also returning the raw
// bytes so a cluster forward can relay the request verbatim.  On
// failure it returns a non-nil error response plus its status.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, []byte, *ErrorResponse, int) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes+64<<10))
	if err != nil {
		return nil, nil, &ErrorResponse{Error: "reading body: " + err.Error()}, http.StatusRequestEntityTooLarge
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, &ErrorResponse{Error: "bad request JSON: " + err.Error()}, http.StatusBadRequest
	}
	if err := req.validate(s.cfg.MaxSourceBytes); err != nil {
		status := http.StatusBadRequest
		if int64(len(req.Source)) > s.cfg.MaxSourceBytes {
			status = http.StatusRequestEntityTooLarge
		}
		return nil, nil, &ErrorResponse{Error: err.Error()}, status
	}
	return &req, body, nil, 0
}

// runOutcome is the result of one compile(-and-run) execution in a
// structured form both the synchronous handlers (which render it to
// bytes) and the job tier (which stores it) consume.
type runOutcome struct {
	status  int
	run     *RunResponse
	comp    *CompileResponse
	errResp *ErrorResponse
	// resumeErr marks a run that never started because its
	// SimOptions.ResumeState would not restore; the job tier treats it
	// as transient (drop the candidate, retry).
	resumeErr error
}

// body renders the outcome deterministically: identical requests
// produce identical bytes whether served cold, from the cache, or by
// coalescing.
func (o runOutcome) body() []byte {
	switch {
	case o.run != nil:
		return mustJSON(o.run)
	case o.comp != nil:
		return mustJSON(o.comp)
	default:
		return mustJSON(o.errResp)
	}
}

// execute adapts perform for the synchronous pipeline.  The
// handler-local wall budget is the context deadline, delegated to the
// execution core (internal/exec) as a MaxWall budget rather than
// enforced here.
func (s *Server) execute(ctx context.Context, kind string, key Key, req *Request) flightResult {
	if h := s.cfg.CompileHook; h != nil {
		h(key)
	}
	var simOpts wmstream.SimOptions
	if dl, ok := ctx.Deadline(); ok {
		simOpts.MaxWall = time.Until(dl)
	}
	out := s.perform(ctx, kind, req, simOpts)
	return flightResult{status: out.status, body: out.body()}
}

// perform compiles (and for run kinds simulates) the request under
// ctx.  Simulation runs through the shared execution core via
// wmstream.RunWithTelemetryContext with the given SimOptions — the
// job tier passes progress callbacks and its own wall budget here.
func (s *Server) perform(ctx context.Context, kind string, req *Request, simOpts wmstream.SimOptions) runOutcome {
	s.metrics.compiles.add(fmt.Sprintf("level=%q", req.levelLabel()), 1)

	cctx, csp := obs.StartSpan(ctx, "compile")
	csp.SetKind(obs.KindCompile)
	csp.SetAttr("level", req.levelLabel())
	cres, err := wmstream.CompileContext(cctx, req.Source, wmstream.CompileConfig{Options: req.options()})
	bridgePassSpans(csp, cres.Stats)
	csp.EndErr(err)
	diags := toWireDiags(cres.Diagnostics)
	if err != nil {
		if ctx.Err() != nil {
			return timeoutOutcome(ctx)
		}
		return runOutcome{
			status:  http.StatusBadRequest,
			errResp: &ErrorResponse{Error: "compile: " + err.Error(), Diagnostics: diags},
		}
	}
	listing := cres.Program.ListingDebug()
	if kind == kindCompile {
		return runOutcome{
			status: http.StatusOK,
			comp:   &CompileResponse{Listing: listing, Diagnostics: diags},
		}
	}

	sctx, ssp := obs.StartSpan(ctx, "sim")
	machine := req.machine()
	sres, err := wmstream.RunWithTelemetryContext(sctx, cres.Program, machine, simOpts)
	ssp.SetAttrInt("cycles", sres.Cycles)
	ssp.SetUnits(toUnitCycles(sres.Units))
	ssp.EndErr(err)
	s.metrics.addSimUnits(sres.Units)
	s.metrics.observeEngineRun(machine.Engine)
	if err != nil {
		if ctx.Err() != nil {
			return timeoutOutcome(ctx)
		}
		var re *wmstream.ResumeError
		if errors.As(err, &re) {
			// The checkpoint would not restore: no cycle simulated.  Not
			// a property of the program — the caller retries with an
			// older candidate or a clean start.
			return runOutcome{
				status:    http.StatusInternalServerError,
				resumeErr: re,
				errResp:   &ErrorResponse{Error: "resume: " + err.Error()},
			}
		}
		var wb *wmstream.WallBudgetError
		if errors.As(err, &wb) {
			// Deterministic body: the elapsed/cycle details vary run to
			// run and must not reach coalesced followers.
			return runOutcome{
				status:  http.StatusGatewayTimeout,
				errResp: &ErrorResponse{Error: "request deadline exceeded: simulation wall-clock budget exhausted"},
			}
		}
		// A deadlock or trap is a property of the (valid) program, not
		// of the server: 422 with the simulator's diagnostic.
		return runOutcome{
			status:  http.StatusUnprocessableEntity,
			errResp: &ErrorResponse{Error: "run: " + err.Error(), Diagnostics: diags},
		}
	}
	return runOutcome{
		status: http.StatusOK,
		run: &RunResponse{
			Listing:      listing,
			Diagnostics:  diags,
			Cycles:       sres.Cycles,
			Instructions: sres.Instructions,
			MemReads:     sres.MemReads,
			MemWrites:    sres.MemWrites,
			StreamElems:  sres.StreamElems,
			Output:       sres.Output,
		},
	}
}

// bridgePassSpans synthesizes per-pass compile child spans from the
// compiler's pass statistics, laid end to end from the compile span's
// start.  Pass times are summed across parallel optimizer workers, so
// the bridged row can extend past the compile span's wall time; the
// relative pass widths are what the timeline is for.
func bridgePassSpans(csp *obs.Span, stats *wmstream.CompileStats) {
	if csp == nil || stats == nil {
		return
	}
	at := csp.StartTime()
	for _, ps := range stats.Passes {
		sp := csp.AddChildAt("pass:"+ps.Name, obs.KindCompile, at, ps.Time)
		sp.SetAttrInt("fires", int64(ps.Fires))
		at = at.Add(ps.Time)
	}
}

// toUnitCycles converts the simulator's per-unit breakdown into the
// span attachment form, with stall causes in deterministic order.
func toUnitCycles(units []wmstream.UnitBreakdown) []obs.UnitCycles {
	if len(units) == 0 {
		return nil
	}
	out := make([]obs.UnitCycles, 0, len(units))
	for _, u := range units {
		uc := obs.UnitCycles{Unit: u.Unit, Issued: u.Issued, Idle: u.Idle}
		causes := make([]string, 0, len(u.Stalls))
		for c := range u.Stalls {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			uc.Stalls = append(uc.Stalls, obs.CauseCycles{Cause: c, Cycles: u.Stalls[c]})
		}
		out = append(out, uc)
	}
	return out
}

func timeoutOutcome(ctx context.Context) runOutcome {
	return runOutcome{
		status:  http.StatusGatewayTimeout,
		errResp: &ErrorResponse{Error: "request deadline exceeded: " + ctx.Err().Error()},
	}
}

// finish writes the response, records metrics, and emits the request
// log line.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, kind string, start time.Time, status int, body []byte, cacheState string) {
	s.finishWait(w, r, kind, start, 0, status, body, cacheState)
}

// finishWait is finish for endpoints that park intentionally (the job
// long-poll): waited is excluded from the endpoint latency histogram —
// a client asking to wait 30s is not a 30s-slow server — and recorded
// in its own wait histogram instead.  The busy remainder also drives
// slow-request classification.
func (s *Server) finishWait(w http.ResponseWriter, r *http.Request, kind string, start time.Time, waited time.Duration, status int, body []byte, cacheState string) {
	dur := time.Since(start)
	busy := dur - waited
	if busy < 0 {
		busy = 0
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if cacheState != "" {
		h.Set("X-Cache", cacheState)
	}
	if status == http.StatusTooManyRequests {
		h.Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}

	sp := obs.FromContext(r.Context())
	var traceID string
	if sp != nil {
		tr := sp.Trace()
		traceID = tr.ID().String()
		h.Set("X-WM-Trace-Id", traceID)
		h.Set("Traceparent", obs.FormatTraceparent(tr.ID(), sp.ID(), true))
		if st := serverTiming(tr, dur, cacheState); st != "" {
			h.Set("Server-Timing", st)
		}
		sp.SetAttrInt("status", int64(status))
		if cacheState != "" {
			sp.SetAttr("cache", cacheState)
		}
		if waited > 0 {
			sp.SetAttrInt("waited_us", waited.Microseconds())
		}
		if status >= http.StatusInternalServerError {
			sp.SetError(http.StatusText(status))
		}
	}
	w.WriteHeader(status)
	w.Write(body)

	s.metrics.observeRequest(kind, status, busy.Seconds())
	if waited > 0 {
		s.metrics.observeWait(kind, waited.Seconds())
	}
	if busy >= s.cfg.TraceSlowThreshold {
		s.metrics.observeSlow(kind, traceID)
	}
	s.cfg.Logger.InfoContext(r.Context(), "request",
		"endpoint", kind,
		"status", status,
		"cache", cacheState,
		"dur_ms", float64(dur.Microseconds())/1000,
		"busy_ms", float64(busy.Microseconds())/1000,
		"bytes", len(body),
		"remote", r.RemoteAddr,
	)
	if sp != nil {
		sp.End()
		if sp.IsRoot() {
			// Handler spans that are children of a longer-lived job trace
			// end here but leave the trace to the job's terminal
			// transition.
			tr := sp.Trace()
			tr.SetBusy(busy)
			tr.Finish()
		}
	}
}

// timingStages maps span names to the Server-Timing metric names
// reported per request, in render order.
var timingStages = []struct{ span, metric string }{
	{"queue.wait", "queue"},
	{"singleflight.attach", "coalesce"},
	{"compile", "compile"},
	{"sim", "sim"},
	{"journal.append", "journal"},
	{"checkpoint.write", "checkpoint"},
}

// serverTiming renders the trace's per-stage breakdown as a
// Server-Timing header value (RFC 8941 style, dur in milliseconds).
func serverTiming(tr *obs.Trace, total time.Duration, cacheState string) string {
	durs := tr.DurationsByName()
	parts := make([]string, 0, len(timingStages)+2)
	if cacheState != "" {
		parts = append(parts, "cache;desc="+strconv.Quote(cacheState))
	}
	for _, st := range timingStages {
		if d, ok := durs[st.span]; ok {
			parts = append(parts, fmt.Sprintf("%s;dur=%.3f", st.metric, float64(d.Microseconds())/1000))
		}
	}
	parts = append(parts, fmt.Sprintf("total;dur=%.3f", float64(total.Microseconds())/1000))
	return strings.Join(parts, ", ")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	jobs := &JobsHealth{JournalMode: "memory", Recovery: s.jobs.rec}
	if st := s.jobs.store; st != nil {
		mode, reason := st.Mode()
		jobs.JournalMode = mode.String()
		jobs.JournalReason = reason
		jobs.JournalBytes = st.Bytes()
		jobs.DroppedWrites = st.DroppedWrites()
	} else if s.jobs.storeErr != "" {
		jobs.JournalMode = "degraded"
		jobs.JournalReason = s.jobs.storeErr
	}
	resp := &HealthResponse{
		Status:        status,
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    s.pool.QueueDepth(),
		InFlight:      s.pool.InFlight(),
		Cache:         s.cache.Stats(),
		Jobs:          jobs,
	}
	if cl := s.cfg.Cluster; cl != nil {
		snap := cl.Snapshot()
		resp.Cluster = &snap
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(mustJSON(resp))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	jq, jr, jh := s.jobs.counts()
	g := gauges{
		queueDepth:  s.pool.QueueDepth(),
		inFlight:    s.pool.InFlight(),
		workers:     s.pool.Workers(),
		cache:       s.cache.Stats(),
		uptime:      time.Since(s.start).Seconds(),
		jobsQueued:  jq,
		jobsRunning: jr,
		jobsHeld:    jh,
		journalMode: "memory",
	}
	if st := s.jobs.store; st != nil {
		mode, _ := st.Mode()
		g.journalMode = mode.String()
		g.journalBytes = st.Bytes()
		g.journalDropped = st.DroppedWrites()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g.goroutines = runtime.NumGoroutine()
	g.heapBytes = ms.HeapAlloc
	g.gcPauseTotal = float64(ms.PauseTotalNs) / 1e9
	g.openFDs = openFDCount()
	g.traces = s.traces.Stats()
	g.transCache = wmstream.TranslationCacheStats()
	if cl := s.cfg.Cluster; cl != nil {
		snap := cl.Snapshot()
		g.cluster = &snap
	}
	s.metrics.write(w, g)
}

// mustJSON marshals a response struct.  Marshaling these types cannot
// fail; the panic guards against a refactor introducing one that can.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshaling %T: %v", v, err))
	}
	return append(b, '\n')
}
