package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wmstream/internal/obs"
)

// LoadConfig parameterizes a load-generation run against a wmserved
// instance (used by cmd/wmload and the CI soak test).
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://localhost:8037".
	BaseURL string
	// BaseURLs, when set, sprays traffic across multiple nodes of a
	// wmserved cluster (overriding BaseURL); the report then breaks
	// latency and errors down per node in ByNode.  Target selection
	// follows Affinity.
	BaseURLs []string
	// Affinity selects the multi-endpoint target policy: "rr"
	// (default) round-robins every iteration across the endpoints;
	// "key" pins each distinct program to one endpoint (client-side
	// affinity — the node a key's requests land on stays fixed, the
	// way a session-affine load balancer would route).
	Affinity string
	// Duration bounds the run (default 10s).
	Duration time.Duration
	// Concurrency is the number of client goroutines (default 16).
	Concurrency int
	// HitFraction is the fraction of requests drawn from a small fixed
	// set of programs (cache-hit traffic); the rest are unique sources
	// that force cold compiles (default 0.7).
	HitFraction float64
	// RunFraction is the fraction of requests sent to /run rather than
	// /compile (default 0.5).
	RunFraction float64
	// JobFraction is the fraction of iterations that exercise the
	// asynchronous job API instead of a synchronous request: submit,
	// long-poll to a terminal state (or occasionally cancel midway).
	// Default 0 (sync traffic only).
	JobFraction float64
	// JobHeavy makes job traffic submit one fixed compute-heavy
	// program instead of the hit/miss mix, so simulation time (not
	// compile or queue time) dominates and completed jobs per second
	// becomes the headline number — the scenario for comparing
	// wmserved -batch settings.  Cancel probes are disabled so every
	// lifecycle counts toward throughput.
	JobHeavy bool
	// Seed makes the traffic mix reproducible (default 1).
	Seed int64
	// Retries is how many times a shed submission (429 or 503) is
	// retried with capped exponential backoff before counting as shed.
	// The server's Retry-After hint, when present, sets the floor of
	// each wait.  Default 0 (shed responses are final).
	Retries int
	// Trace sends a W3C traceparent header with every request, so each
	// one is traced end to end on the server, and aggregates the
	// per-stage breakdowns the server echoes back in Server-Timing
	// headers into LoadReport.ByStage.
	Trace bool
	// Client overrides the HTTP client (default: http.DefaultClient
	// with the run duration plus slack as overall timeout).
	Client *http.Client
}

// EndpointLatency is the per-endpoint slice of a load report.
type EndpointLatency struct {
	Requests int64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// NodeStats is the per-target-node slice of a multi-endpoint load
// report: request count, error count (transport failures plus 5xx
// responses), and latency percentiles.
type NodeStats struct {
	Requests int64
	Errors   int64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// StageTiming aggregates one Server-Timing stage across all traced
// responses that reported it.
type StageTiming struct {
	Count int64
	Total time.Duration
}

// Mean is the stage's average duration per reporting request.
func (s StageTiming) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests int64
	Errors   int64 // transport-level failures
	// Retries counts shed (429/503) responses that were retried; the
	// final outcome of each retried request is tallied once in
	// ByStatus like any other.
	Retries  int64
	ByStatus map[int]int64
	ByCache  map[string]int64 // X-Cache header: hit / miss / coalesced
	// ByEndpoint breaks latency down per endpoint (compile, run, jobs,
	// jobs-poll, jobs-cancel); the top-level percentiles aggregate all.
	ByEndpoint map[string]EndpointLatency
	// ByNode breaks the run down per target node (multi-endpoint mode
	// only), keyed by base URL.
	ByNode map[string]NodeStats
	// ByJobState counts job lifecycles by the terminal state observed
	// (done / failed / canceled), plus "shed" for 429'd submissions and
	// "abandoned" for lifecycles cut off by the end of the run.
	ByJobState map[string]int64
	// ByStage aggregates the server-side per-stage breakdowns (queue
	// wait, compile, sim, journal, ...) from Server-Timing response
	// headers.  Populated only with LoadConfig.Trace.
	ByStage map[string]StageTiming
	// SlowestTrace is the server trace ID of the slowest traced request
	// — the place to start in GET /debug/traces after a bad run.
	SlowestTrace string
	SlowestDur   time.Duration
	Elapsed      time.Duration
	P50          time.Duration
	P95          time.Duration
	P99          time.Duration
	Max          time.Duration
}

// RPS is the achieved request throughput.
func (r *LoadReport) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// JobsPerSec is the rate of job lifecycles that reached "done" — the
// throughput metric of the JobHeavy batch scenario.
func (r *LoadReport) JobsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ByJobState["done"]) / r.Elapsed.Seconds()
}

// String renders the report as an aligned summary table.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d in %v (%.1f req/s), %d transport errors\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.RPS(), r.Errors)
	if r.Retries > 0 {
		fmt.Fprintf(&b, "  retries (429/503 backoff): %d\n", r.Retries)
	}
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", c, r.ByStatus[c])
	}
	for _, k := range []string{"hit", "miss", "coalesced"} {
		if n := r.ByCache[k]; n > 0 {
			fmt.Fprintf(&b, "  cache %-9s %d\n", k+":", n)
		}
	}
	if len(r.ByJobState) > 0 {
		states := make([]string, 0, len(r.ByJobState))
		for s := range r.ByJobState {
			states = append(states, s)
		}
		sort.Strings(states)
		for _, s := range states {
			fmt.Fprintf(&b, "  jobs %-10s %d\n", s+":", r.ByJobState[s])
		}
		if r.ByJobState["done"] > 0 {
			fmt.Fprintf(&b, "  jobs throughput: %.2f done/s\n", r.JobsPerSec())
		}
	}
	if len(r.ByStage) > 0 {
		stages := make([]string, 0, len(r.ByStage))
		for s := range r.ByStage {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		b.WriteString("  server stages (mean per reporting request):\n")
		for _, s := range stages {
			st := r.ByStage[s]
			fmt.Fprintf(&b, "    %-10s %v over %d requests\n", s, st.Mean().Round(time.Microsecond), st.Count)
		}
	}
	if r.SlowestTrace != "" {
		fmt.Fprintf(&b, "  slowest traced request: %v, trace %s (GET /debug/traces/%s)\n",
			r.SlowestDur.Round(time.Microsecond), r.SlowestTrace, r.SlowestTrace)
	}
	fmt.Fprintf(&b, "  latency p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	eps := make([]string, 0, len(r.ByEndpoint))
	for e := range r.ByEndpoint {
		eps = append(eps, e)
	}
	sort.Strings(eps)
	for _, e := range eps {
		el := r.ByEndpoint[e]
		fmt.Fprintf(&b, "  %-12s %6d reqs  p50 %v  p95 %v  p99 %v  max %v\n",
			e, el.Requests,
			el.P50.Round(time.Microsecond), el.P95.Round(time.Microsecond),
			el.P99.Round(time.Microsecond), el.Max.Round(time.Microsecond))
	}
	if len(r.ByNode) > 0 {
		nodes := make([]string, 0, len(r.ByNode))
		for u := range r.ByNode {
			nodes = append(nodes, u)
		}
		sort.Strings(nodes)
		b.WriteString("  per node:\n")
		for _, u := range nodes {
			ns := r.ByNode[u]
			fmt.Fprintf(&b, "    %-28s %6d reqs  %d errors  p50 %v  p95 %v  p99 %v  max %v\n",
				u, ns.Requests, ns.Errors,
				ns.P50.Round(time.Microsecond), ns.P95.Round(time.Microsecond),
				ns.P99.Round(time.Microsecond), ns.Max.Round(time.Microsecond))
		}
	}
	return b.String()
}

// hitPrograms is the fixed set reused by hit traffic: small but real
// programs exercising scalar code, recurrences, and streaming.
var hitPrograms = []string{
	`int main(void) { int i, s; s = 0; for (i = 0; i < 100; i++) s = s + i; puti(s); return 0; }`,
	`double a[64];
int main(void) {
    int i; double s;
    for (i = 0; i < 64; i++) a[i] = i * 0.5;
    s = 0.0;
    for (i = 0; i < 64; i++) s = s + a[i];
    putd(s);
    return 0;
}`,
	`int v[128];
int main(void) {
    int i, s;
    for (i = 0; i < 128; i++) v[i] = i * 3;
    s = 0;
    for (i = 2; i < 128; i++) s = s + v[i] - v[i-2];
    puti(s);
    return 0;
}`,
	`double x[96], y[96];
int main(void) {
    int i; double s;
    for (i = 0; i < 96; i++) { x[i] = (i & 7) * 0.25; y[i] = (i & 3) * 0.5; }
    s = 0.0;
    for (i = 0; i < 96; i++) s = s + x[i] * y[i];
    putd(s);
    return 0;
}`,
}

// heavyJobProgram is the fixed workload of the JobHeavy scenario:
// enough simulated cycles that one job spans many execution slices,
// so batch-mode interleaving (wmserved -batch) has something to
// rotate over, while still completing in well under a second of host
// time per job.
const heavyJobProgram = `int main(void) {
    int i; double s;
    s = 0.0;
    for (i = 0; i < 300000; i++) s = s + i * 0.5;
    putd(s);
    return 0;
}`

// missProgram builds a unique source (cold-compile traffic): the
// constant is baked into the text, so every n has a distinct content
// address.
func missProgram(n int64) string {
	return fmt.Sprintf(`int main(void) { int i, s; s = %d; for (i = 0; i < 50; i++) s = s + i * %d; puti(s); return 0; }`,
		n, n%17+1)
}

// loadShard is one client goroutine's private tallies, merged at the
// end (no cross-goroutine contention on the hot path).
type loadShard struct {
	requests, errors int64
	retries          int64
	maxRetries       int
	trace            bool
	byStatus         map[int]int64
	byCache          map[string]int64
	byJobState       map[string]int64
	byStage          map[string]StageTiming
	slowestTrace     string
	slowestDur       time.Duration
	lat              map[string][]time.Duration // endpoint -> samples
	retryAfter       time.Duration              // Retry-After from the last shed response

	// Multi-endpoint targeting: urls is the node list, node the target
	// of the current iteration (all of a job lifecycle's requests count
	// against the node that accepted the submit).
	urls     []string
	affinity string
	rr       uint64
	node     string
	nodeLat  map[string][]time.Duration
	nodeErr  map[string]int64
}

// target picks the base URL for one iteration and records it as the
// shard's current node.
func (sh *loadShard) target(src string) string {
	if len(sh.urls) == 1 {
		sh.node = sh.urls[0]
		return sh.node
	}
	var idx int
	if sh.affinity == "key" {
		// FNV-1a over the program text: each distinct program sticks to
		// one node, like a session-affine front balancer.
		h := uint32(2166136261)
		for i := 0; i < len(src); i++ {
			h = (h ^ uint32(src[i])) * 16777619
		}
		idx = int(h % uint32(len(sh.urls)))
	} else {
		idx = int(sh.rr % uint64(len(sh.urls)))
		sh.rr++
	}
	sh.node = sh.urls[idx]
	return sh.node
}

// observe records one completed HTTP exchange.
func (sh *loadShard) observe(endpoint string, resp *http.Response, dur time.Duration) {
	sh.requests++
	sh.byStatus[resp.StatusCode]++
	if len(sh.urls) > 1 {
		sh.nodeLat[sh.node] = append(sh.nodeLat[sh.node], dur)
		if resp.StatusCode >= http.StatusInternalServerError {
			sh.nodeErr[sh.node]++
		}
	}
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		sh.byCache[xc]++
	}
	sh.retryAfter = 0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			sh.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if sh.trace {
		for stage, d := range parseServerTiming(resp.Header.Get("Server-Timing")) {
			st := sh.byStage[stage]
			st.Count++
			st.Total += d
			sh.byStage[stage] = st
		}
		if tid := resp.Header.Get("X-WM-Trace-Id"); tid != "" && dur > sh.slowestDur {
			sh.slowestDur, sh.slowestTrace = dur, tid
		}
	}
	sh.lat[endpoint] = append(sh.lat[endpoint], dur)
}

// parseServerTiming extracts the dur= metrics from a Server-Timing
// header ("queue;dur=0.123, compile;dur=4.5, cache;desc=hit").
// Metrics without a dur (like the cache state) are skipped.
func parseServerTiming(h string) map[string]time.Duration {
	if h == "" {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) < 2 || parts[0] == "" {
			continue
		}
		for _, p := range parts[1:] {
			if ms, ok := strings.CutPrefix(strings.TrimSpace(p), "dur="); ok {
				if v, err := strconv.ParseFloat(ms, 64); err == nil {
					out[parts[0]] = time.Duration(v * float64(time.Millisecond))
				}
			}
		}
	}
	return out
}

// post issues one JSON POST — retrying shed (429/503) responses up to
// maxRetries times with capped exponential backoff, never below the
// server's Retry-After hint — and returns the final status and body;
// (0, nil) on transport error.
func (sh *loadShard) post(ctx context.Context, client *http.Client, endpoint, url string, payload any) (int, []byte) {
	body, err := json.Marshal(payload)
	if err != nil {
		sh.errors++
		return 0, nil
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			sh.errors++
			return 0, nil
		}
		req.Header.Set("Content-Type", "application/json")
		status, rb := sh.do(client, endpoint, req)
		if (status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable) ||
			attempt >= sh.maxRetries {
			return status, rb
		}
		sh.retries++
		wait := shedBackoff(attempt)
		if sh.retryAfter > wait {
			wait = sh.retryAfter
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return status, rb
		}
	}
}

// shedBackoff is the nth (0-based) retry wait: 50ms doubling, capped
// at 2s.
func shedBackoff(attempt int) time.Duration {
	if attempt > 5 {
		attempt = 5
	}
	return 50 * time.Millisecond << attempt
}

func (sh *loadShard) do(client *http.Client, endpoint string, req *http.Request) (int, []byte) {
	if sh.trace {
		req.Header.Set("traceparent", obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID(), true))
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if req.Context().Err() == nil {
			sh.errors++
			if len(sh.urls) > 1 {
				sh.nodeErr[sh.node]++
			}
		}
		return 0, nil
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sh.observe(endpoint, resp, time.Since(start))
	return resp.StatusCode, rb
}

// syncIteration fires one /compile-or-/run request.
func (sh *loadShard) syncIteration(ctx context.Context, client *http.Client, cfg LoadConfig, rng *rand.Rand, w int, n int64) {
	src := hitPrograms[rng.Intn(len(hitPrograms))]
	if rng.Float64() >= cfg.HitFraction {
		src = missProgram(int64(w)<<32 | n)
	}
	endpoint := kindCompile
	if rng.Float64() < cfg.RunFraction {
		endpoint = kindRun
	}
	level := rng.Intn(4)
	base := sh.target(src)
	sh.post(ctx, client, endpoint, base+"/"+endpoint, &Request{Source: src, Level: &level})
}

// jobIteration drives one full job lifecycle: submit, then either
// cancel midway (1 in 8) or long-poll generations to a terminal state.
func (sh *loadShard) jobIteration(ctx context.Context, client *http.Client, cfg LoadConfig, rng *rand.Rand, w int, n int64) {
	src := hitPrograms[rng.Intn(len(hitPrograms))]
	if rng.Float64() >= cfg.HitFraction {
		src = missProgram(int64(w)<<32 | n)
	}
	level := rng.Intn(4)
	if cfg.JobHeavy {
		src = heavyJobProgram
		level = 3
	}
	// The whole lifecycle — submit, polls, cancel — stays on one node:
	// job IDs are node-local state, not content-addressed.
	base := sh.target(src)
	status, body := sh.post(ctx, client, kindJobs, base+"/jobs",
		&JobRequest{Request: Request{Source: src, Level: &level}, Tenant: fmt.Sprintf("t%d", w%4)})
	if status != http.StatusAccepted {
		if status == http.StatusTooManyRequests {
			sh.byJobState["shed"]++
		}
		return
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		sh.errors++
		return
	}

	if !cfg.JobHeavy && rng.Intn(8) == 0 {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/jobs/"+jr.ID, nil)
		if err != nil {
			sh.errors++
			return
		}
		if st, _ := sh.do(client, kindJobCancel, req); st == http.StatusOK {
			sh.byJobState["canceled"]++
		}
		return
	}

	gen := jr.Gen
	for ctx.Err() == nil {
		url := fmt.Sprintf("%s/jobs/%s?gen=%d&wait=1s", base, jr.ID, gen)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			sh.errors++
			return
		}
		status, body := sh.do(client, kindJobPoll, req)
		if status != http.StatusOK {
			return
		}
		var poll JobResponse
		if err := json.Unmarshal(body, &poll); err != nil {
			sh.errors++
			return
		}
		gen = poll.Gen
		switch poll.State {
		case "done", "failed", "canceled":
			sh.byJobState[poll.State]++
			return
		}
	}
	sh.byJobState["abandoned"]++
}

// RunLoad fires mixed hit/miss compile/run (and, with JobFraction > 0,
// job-lifecycle) traffic at the server until the duration (or ctx)
// expires and reports what came back.  It fails only on configuration
// errors; transport errors are counted, not fatal, so a report is
// produced even against a flaky target.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	urls := cfg.BaseURLs
	if len(urls) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("loadgen: BaseURL or BaseURLs required")
		}
		urls = []string{cfg.BaseURL}
	}
	for _, u := range urls {
		if u == "" {
			return nil, fmt.Errorf("loadgen: empty base URL in BaseURLs")
		}
	}
	switch cfg.Affinity {
	case "", "rr", "key":
	default:
		return nil, fmt.Errorf("loadgen: Affinity must be rr or key, got %q", cfg.Affinity)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.HitFraction == 0 {
		cfg.HitFraction = 0.7
	}
	if cfg.RunFraction == 0 {
		cfg.RunFraction = 0.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Duration + 30*time.Second}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	shards := make([]loadShard, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			sh.maxRetries = cfg.Retries
			sh.trace = cfg.Trace
			sh.byStatus = make(map[int]int64)
			sh.byCache = make(map[string]int64)
			sh.byJobState = make(map[string]int64)
			sh.byStage = make(map[string]StageTiming)
			sh.lat = make(map[string][]time.Duration)
			sh.urls = urls
			sh.affinity = cfg.Affinity
			sh.rr = uint64(w) // stagger shards so round-robin spreads instantly
			sh.nodeLat = make(map[string][]time.Duration)
			sh.nodeErr = make(map[string]int64)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for n := int64(0); ctx.Err() == nil; n++ {
				if rng.Float64() < cfg.JobFraction {
					sh.jobIteration(ctx, client, cfg, rng, w, n)
				} else {
					sh.syncIteration(ctx, client, cfg, rng, w, n)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{
		ByStatus:   make(map[int]int64),
		ByCache:    make(map[string]int64),
		ByEndpoint: make(map[string]EndpointLatency),
		ByJobState: make(map[string]int64),
		ByStage:    make(map[string]StageTiming),
		Elapsed:    time.Since(start),
	}
	var all []time.Duration
	perEndpoint := make(map[string][]time.Duration)
	perNode := make(map[string][]time.Duration)
	nodeErr := make(map[string]int64)
	for w := range shards {
		sh := &shards[w]
		rep.Requests += sh.requests
		rep.Errors += sh.errors
		rep.Retries += sh.retries
		for c, n := range sh.byStatus {
			rep.ByStatus[c] += n
		}
		for k, n := range sh.byCache {
			rep.ByCache[k] += n
		}
		for k, n := range sh.byJobState {
			rep.ByJobState[k] += n
		}
		for stage, st := range sh.byStage {
			agg := rep.ByStage[stage]
			agg.Count += st.Count
			agg.Total += st.Total
			rep.ByStage[stage] = agg
		}
		if sh.slowestDur > rep.SlowestDur {
			rep.SlowestDur, rep.SlowestTrace = sh.slowestDur, sh.slowestTrace
		}
		for e, lat := range sh.lat {
			perEndpoint[e] = append(perEndpoint[e], lat...)
			all = append(all, lat...)
		}
		for u, lat := range sh.nodeLat {
			perNode[u] = append(perNode[u], lat...)
		}
		for u, n := range sh.nodeErr {
			nodeErr[u] += n
		}
	}
	rep.P50, rep.P95, rep.P99, rep.Max = latencySummary(all)
	for e, lat := range perEndpoint {
		el := EndpointLatency{Requests: int64(len(lat))}
		el.P50, el.P95, el.P99, el.Max = latencySummary(lat)
		rep.ByEndpoint[e] = el
	}
	if len(urls) > 1 {
		rep.ByNode = make(map[string]NodeStats, len(urls))
		for _, u := range urls {
			lat := perNode[u]
			ns := NodeStats{Requests: int64(len(lat)), Errors: nodeErr[u]}
			ns.P50, ns.P95, ns.P99, ns.Max = latencySummary(lat)
			rep.ByNode[u] = ns
		}
	}
	return rep, nil
}

// latencySummary sorts the samples (in place) and extracts the
// percentile points.
func latencySummary(lat []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		return lat[int(p*float64(len(lat)-1))]
	}
	return pct(0.50), pct(0.95), pct(0.99), lat[len(lat)-1]
}
