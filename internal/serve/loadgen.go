package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig parameterizes a load-generation run against a wmserved
// instance (used by cmd/wmload and the CI soak test).
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://localhost:8037".
	BaseURL string
	// Duration bounds the run (default 10s).
	Duration time.Duration
	// Concurrency is the number of client goroutines (default 16).
	Concurrency int
	// HitFraction is the fraction of requests drawn from a small fixed
	// set of programs (cache-hit traffic); the rest are unique sources
	// that force cold compiles (default 0.7).
	HitFraction float64
	// RunFraction is the fraction of requests sent to /run rather than
	// /compile (default 0.5).
	RunFraction float64
	// Seed makes the traffic mix reproducible (default 1).
	Seed int64
	// Client overrides the HTTP client (default: http.DefaultClient
	// with the run duration plus slack as overall timeout).
	Client *http.Client
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests int64
	Errors   int64 // transport-level failures
	ByStatus map[int]int64
	ByCache  map[string]int64 // X-Cache header: hit / miss / coalesced
	Elapsed  time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// RPS is the achieved request throughput.
func (r *LoadReport) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// String renders the report as an aligned summary table.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d in %v (%.1f req/s), %d transport errors\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.RPS(), r.Errors)
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", c, r.ByStatus[c])
	}
	for _, k := range []string{"hit", "miss", "coalesced"} {
		if n := r.ByCache[k]; n > 0 {
			fmt.Fprintf(&b, "  cache %-9s %d\n", k+":", n)
		}
	}
	fmt.Fprintf(&b, "  latency p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	return b.String()
}

// hitPrograms is the fixed set reused by hit traffic: small but real
// programs exercising scalar code, recurrences, and streaming.
var hitPrograms = []string{
	`int main(void) { int i, s; s = 0; for (i = 0; i < 100; i++) s = s + i; puti(s); return 0; }`,
	`double a[64];
int main(void) {
    int i; double s;
    for (i = 0; i < 64; i++) a[i] = i * 0.5;
    s = 0.0;
    for (i = 0; i < 64; i++) s = s + a[i];
    putd(s);
    return 0;
}`,
	`int v[128];
int main(void) {
    int i, s;
    for (i = 0; i < 128; i++) v[i] = i * 3;
    s = 0;
    for (i = 2; i < 128; i++) s = s + v[i] - v[i-2];
    puti(s);
    return 0;
}`,
	`double x[96], y[96];
int main(void) {
    int i; double s;
    for (i = 0; i < 96; i++) { x[i] = (i & 7) * 0.25; y[i] = (i & 3) * 0.5; }
    s = 0.0;
    for (i = 0; i < 96; i++) s = s + x[i] * y[i];
    putd(s);
    return 0;
}`,
}

// missProgram builds a unique source (cold-compile traffic): the
// constant is baked into the text, so every n has a distinct content
// address.
func missProgram(n int64) string {
	return fmt.Sprintf(`int main(void) { int i, s; s = %d; for (i = 0; i < 50; i++) s = s + i * %d; puti(s); return 0; }`,
		n, n%17+1)
}

// RunLoad fires mixed hit/miss compile/run traffic at the server until
// the duration (or ctx) expires and reports what came back.  It fails
// only on configuration errors; transport errors are counted, not
// fatal, so a report is produced even against a flaky target.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.HitFraction == 0 {
		cfg.HitFraction = 0.7
	}
	if cfg.RunFraction == 0 {
		cfg.RunFraction = 0.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Duration + 30*time.Second}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	type shard struct {
		requests, errors int64
		byStatus         map[int]int64
		byCache          map[string]int64
		lat              []time.Duration
	}
	shards := make([]shard, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			sh.byStatus = make(map[int]int64)
			sh.byCache = make(map[string]int64)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for n := int64(0); ctx.Err() == nil; n++ {
				src := hitPrograms[rng.Intn(len(hitPrograms))]
				if rng.Float64() >= cfg.HitFraction {
					src = missProgram(int64(w)<<32 | n)
				}
				endpoint := "/compile"
				if rng.Float64() < cfg.RunFraction {
					endpoint = "/run"
				}
				level := rng.Intn(4)
				body, err := json.Marshal(&Request{Source: src, Level: &level})
				if err != nil {
					sh.errors++
					continue
				}
				reqStart := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.BaseURL+endpoint, bytes.NewReader(body))
				if err != nil {
					sh.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					sh.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				sh.requests++
				sh.byStatus[resp.StatusCode]++
				if xc := resp.Header.Get("X-Cache"); xc != "" {
					sh.byCache[xc]++
				}
				sh.lat = append(sh.lat, time.Since(reqStart))
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{
		ByStatus: make(map[int]int64),
		ByCache:  make(map[string]int64),
		Elapsed:  time.Since(start),
	}
	var all []time.Duration
	for w := range shards {
		sh := &shards[w]
		rep.Requests += sh.requests
		rep.Errors += sh.errors
		for c, n := range sh.byStatus {
			rep.ByStatus[c] += n
		}
		for k, n := range sh.byCache {
			rep.ByCache[k] += n
		}
		all = append(all, sh.lat...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(all)-1))
			return all[idx]
		}
		rep.P50, rep.P95, rep.P99, rep.Max = pct(0.50), pct(0.95), pct(0.99), all[len(all)-1]
	}
	return rep, nil
}
