package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wmstream/internal/obs"
)

// End-to-end tracing tests: the acceptance bar is that one POST /jobs
// yields a single retrievable trace covering admission, queue wait,
// the run, per-pass compile children, at least one sim slice, and the
// durable-journal appends — and that the Perfetto export of it loads
// service and sim spans on one timeline.

func getTrace(t *testing.T, ts *httptest.Server, id string) obs.TraceSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: %d %s", id, resp.StatusCode, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, body)
	}
	return snap
}

// spansByName indexes a snapshot; multiple same-named spans keep the
// first, with the count in the second map.
func spansByName(snap obs.TraceSnapshot) (map[string]obs.SpanSnapshot, map[string]int) {
	byName := map[string]obs.SpanSnapshot{}
	counts := map[string]int{}
	for _, sp := range snap.Spans {
		if _, ok := byName[sp.Name]; !ok {
			byName[sp.Name] = sp
		}
		counts[sp.Name]++
	}
	return byName, counts
}

func TestJobTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{JobDir: t.TempDir()})

	res, jr := submitJob(t, ts, &JobRequest{
		Request: Request{Source: streamSrc, Level: intp(2)},
		Tenant:  "trace-test",
	})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.status, res.body)
	}
	if jr.TraceID == "" {
		t.Fatal("job response carries no trace_id")
	}
	final := waitTerminal(t, ts, jr.ID, jr.Gen)
	if final.State != "done" {
		t.Fatalf("job ended %q: %+v", final.State, final)
	}

	// The trace finishes on the terminal transition; it may still be
	// getting its final spans closed, so retry briefly.
	var snap obs.TraceSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap = getTrace(t, ts, jr.TraceID)
		if snap.Finished || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !snap.Finished {
		t.Fatalf("trace never finished: %+v", snap)
	}
	if snap.Name != "job" {
		t.Fatalf("trace name %q, want job", snap.Name)
	}

	byName, counts := spansByName(snap)
	for _, want := range []string{"admission", "queue.wait", "run", "compile", "sim", "sim.slice", "journal.append"} {
		if counts[want] == 0 {
			t.Errorf("trace missing span %q; have %v", want, counts)
		}
	}
	// Per-pass compile children bridged from the compiler's own stats.
	passes := 0
	for name := range counts {
		if strings.HasPrefix(name, "pass:") {
			passes += counts[name]
		}
	}
	if passes == 0 {
		t.Errorf("no pass:* compile children; spans: %v", counts)
	}
	if byName["sim.slice"].Kind != "sim" {
		t.Errorf("sim.slice kind %q, want sim", byName["sim.slice"].Kind)
	}
	if byName["compile"].Kind != "compile" {
		t.Errorf("compile kind %q, want compile", byName["compile"].Kind)
	}
	if got := snap.Spans[0].Attrs["job_id"]; got != jr.ID {
		t.Errorf("root job_id %q, want %q", got, jr.ID)
	}
	if got := snap.Spans[0].Attrs["tenant"]; got != "trace-test" {
		t.Errorf("root tenant %q, want trace-test", got)
	}
	if byName["journal.append"].Attrs["state"] == "" {
		t.Errorf("journal.append span lacks a state attr: %+v", byName["journal.append"])
	}
	// The root must record the terminal state.
	if got := snap.Spans[0].Attrs["state"]; got != "done" {
		t.Errorf("root state attr %q, want done", got)
	}

	// Perfetto export: valid trace-event JSON with service spans
	// (pid 3) and sim unit segments (pid 2) on one timeline.
	resp, err := http.Get(ts.URL + "/debug/traces/" + jr.TraceID + "?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto export: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(pbody, &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	pids := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid]++
		}
	}
	if pids[3] == 0 {
		t.Errorf("no service (pid 3) events: %v", pids)
	}
	if pids[2] == 0 {
		t.Errorf("no sim (pid 2) events: %v", pids)
	}
}

// TestJobTraceSurvivesRestart crashes the server mid-job and checks
// the restarted server continues the job under the SAME trace ID, with
// the resume marked, so one trace shows the whole lifecycle across the
// crash.
func TestJobTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv := New(durableCfg(dir, nil))
	ts := httptest.NewServer(srv)

	res, jr := submitJob(t, ts, crashJobReq("fast"))
	if res.status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.status, res.body)
	}
	if jr.TraceID == "" {
		t.Fatal("no trace_id on submit")
	}
	waitCycles(t, ts, jr.ID, 500_000)
	srv.crash()
	ts.Close()
	srv.Close()

	_, ts2 := newTestServer(t, durableCfg(dir, nil))
	done := waitTerminal(t, ts2, jr.ID, 0)
	if done.State != "done" {
		t.Fatalf("recovered job ended %q (%q)", done.State, done.Error)
	}
	if done.TraceID != jr.TraceID {
		t.Fatalf("trace ID changed across restart: %q -> %q", jr.TraceID, done.TraceID)
	}

	snap := getTrace(t, ts2, jr.TraceID)
	if !snap.Finished {
		t.Fatalf("resumed trace not finished: %+v", snap)
	}
	if snap.Spans[0].Attrs["resumed"] != "true" {
		t.Errorf("resumed trace lacks resumed=true on its root: %v", snap.Spans[0].Attrs)
	}
	if snap.Spans[0].Attrs["state"] != "done" {
		t.Errorf("resumed trace root state %q, want done", snap.Spans[0].Attrs["state"])
	}
	_, counts := spansByName(snap)
	for _, want := range []string{"queue.wait", "run", "sim.slice"} {
		if counts[want] == 0 {
			t.Errorf("resumed trace missing %q; have %v", want, counts)
		}
	}
}

// TestSyncTraceparentPropagation sends a sampled traceparent with a
// /run request and checks the response headers link back to the same
// trace, the retained trace is marked remote, and Server-Timing
// reports stage durations.
func TestSyncTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	tid := obs.NewTraceID()
	parent := obs.NewSpanID()
	body := `{"source":` + jsonString(streamSrc) + `,"level":2}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceparent(tid, parent, true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d", resp.StatusCode)
	}

	if got := resp.Header.Get("X-WM-Trace-Id"); got != tid.String() {
		t.Fatalf("X-WM-Trace-Id %q, want %q", got, tid)
	}
	rid, _, sampled, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || rid != tid || !sampled {
		t.Fatalf("response traceparent %q does not continue trace %s", resp.Header.Get("Traceparent"), tid)
	}
	st := resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "total;dur=") || !strings.Contains(st, "compile;dur=") {
		t.Fatalf("Server-Timing %q lacks stage durations", st)
	}
	stages := parseServerTiming(st)
	if stages["total"] <= 0 || stages["compile"] <= 0 {
		t.Fatalf("parsed stages %v", stages)
	}

	snap := getTrace(t, ts, tid.String())
	if !snap.Remote {
		t.Fatal("trace not marked remote despite inbound traceparent")
	}
	if snap.ParentSpan != parent.String() {
		t.Fatalf("parent span %q, want %q", snap.ParentSpan, parent)
	}
	byName, _ := spansByName(snap)
	if _, ok := byName["cache.lookup"]; !ok {
		t.Errorf("sync trace missing cache.lookup: %+v", snap.Spans)
	}
	if _, ok := byName["sim"]; !ok {
		t.Errorf("sync trace missing sim span: %+v", snap.Spans)
	}
}

// TestTraceIndexAndStatusz smoke-checks the two human entry points.
func TestTraceIndexAndStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/compile", &Request{Source: helloSrc, Level: intp(1)})

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	var idx obs.Index
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("bad index JSON: %v\n%s", err, body)
	}
	if idx.Stats.Started == 0 || len(idx.Recent) == 0 {
		t.Fatalf("index empty after traffic: %+v", idx.Stats)
	}

	resp, err = http.Get(ts.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/statusz: %d", resp.StatusCode)
	}
	for _, want := range []string{"wmserved", "Traces", "Cache", "Pool"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("statusz missing %q", want)
		}
	}
}

// TestTracingDisabled turns the collector off and checks the serve
// paths still work and the debug endpoints answer sanely.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: -1})
	res := post(t, ts, "/run", &Request{Source: helloSrc, Level: intp(1)})
	if res.status != http.StatusOK {
		t.Fatalf("/run with tracing off: %d %s", res.status, res.body)
	}
	_, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	if jr.ID == "" {
		t.Fatal("job submit failed with tracing off")
	}
	waitTerminal(t, ts, jr.ID, jr.Gen)
	if jr.TraceID != "" {
		t.Fatalf("job reported trace_id %q with tracing off", jr.TraceID)
	}
	// The index endpoint answers — a clear "disabled" rather than a
	// confusing empty payload.
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces with tracing off: %d, want 404", resp.StatusCode)
	}
}

// jsonString marshals s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
