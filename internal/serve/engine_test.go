package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRunEngineSelection: every engine name is accepted, every engine
// produces the same answer, and an unknown engine is rejected with a
// message naming the valid set.
func TestRunEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var want RunResponse
	for _, engine := range []string{"", "auto", "translated", "fast", "reference"} {
		req := &Request{Source: helloSrc}
		if engine != "" {
			req.Machine = &MachineSpec{Engine: engine}
		}
		res := post(t, ts, "/run", req)
		if res.status != http.StatusOK {
			t.Fatalf("engine %q: status %d, body %s", engine, res.status, res.body)
		}
		var rr RunResponse
		if err := json.Unmarshal(res.body, &rr); err != nil {
			t.Fatalf("engine %q: bad JSON: %v", engine, err)
		}
		if engine == "" {
			want = rr
			continue
		}
		if rr.Output != want.Output || rr.Cycles != want.Cycles || rr.Instructions != want.Instructions {
			t.Errorf("engine %q diverged: output=%q cycles=%d instrs=%d, want output=%q cycles=%d instrs=%d",
				engine, rr.Output, rr.Cycles, rr.Instructions, want.Output, want.Cycles, want.Instructions)
		}
	}

	res := post(t, ts, "/run", &Request{Source: helloSrc, Machine: &MachineSpec{Engine: "quantum"}})
	if res.status != http.StatusBadRequest {
		t.Fatalf("bad engine: status %d, want 400", res.status)
	}
	var er ErrorResponse
	if err := json.Unmarshal(res.body, &er); err != nil {
		t.Fatalf("bad engine error body: %v", err)
	}
	if !strings.Contains(er.Error, "translated") {
		t.Errorf("bad-engine message should name the valid engines, got %q", er.Error)
	}
}

// TestEngineRunsMetric: served runs show up in
// wmserved_engine_runs_total under the engine that actually executed
// them (auto resolves to translated), and the translation-cache
// families are exported.
func TestEngineRunsMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Two default-engine runs and one explicit fast run.  Distinct
	// machine configs defeat the response cache so each run executes.
	for _, spec := range []*MachineSpec{nil, {MemLatency: 17}, {MemLatency: 23, Engine: "fast"}} {
		res := post(t, ts, "/run", &Request{Source: helloSrc, Machine: spec})
		if res.status != http.StatusOK {
			t.Fatalf("run: status %d, body %s", res.status, res.body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)

	for _, want := range []string{
		`wmserved_engine_runs_total{engine="translated"} 2`,
		`wmserved_engine_runs_total{engine="fast"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	for _, family := range []string{
		"wmserved_translation_cache_entries",
		"wmserved_translation_cache_cap",
		"wmserved_translation_cache_hits_total",
		"wmserved_translation_cache_misses_total",
		"wmserved_translation_cache_evictions_total",
	} {
		if !strings.Contains(text, "\n"+family+" ") {
			t.Errorf("metrics missing family %s", family)
		}
	}
}

// TestJobBatchInterleaved: one worker with JobBatch=4 completes a
// burst of jobs whose results are identical to dedicated execution —
// the batch gate changes host scheduling, never simulation results.
func TestJobBatchInterleaved(t *testing.T) {
	// Heavy enough to span many slices (so the gate actually rotates),
	// light enough to finish promptly under the race detector.
	const batchSrc = `int main(void) {
    int i; double s;
    s = 0.0;
    for (i = 0; i < 200000; i++) s = s + i * 0.5;
    putd(s);
    return 0;
}`
	_, dedicated := newTestServer(t, Config{})
	want := post(t, dedicated, "/run", &Request{Source: batchSrc})
	if want.status != http.StatusOK {
		t.Fatalf("dedicated run: status %d, body %s", want.status, want.body)
	}
	var wantRR RunResponse
	if err := json.Unmarshal(want.body, &wantRR); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{JobWorkers: 1, JobBatch: 4})
	const jobs = 4
	ids := make([]string, jobs)
	for n := range ids {
		// Distinct tenants defeat nothing here (same program), but give
		// the fair scheduler several queues to rotate over.
		res, jr := submitJob(t, ts, &JobRequest{
			Request: Request{Source: batchSrc},
			Tenant:  fmt.Sprintf("t%d", n%2),
		})
		if res.status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, body %s", n, res.status, res.body)
		}
		ids[n] = jr.ID
	}
	for n, id := range ids {
		jr := waitTerminal(t, ts, id, 0)
		if jr.State != "done" {
			t.Fatalf("job %d state %q, want done (error %q)", n, jr.State, jr.Error)
		}
		if jr.Result == nil {
			t.Fatalf("job %d: no result", n)
		}
		if jr.Result.Output != wantRR.Output || jr.Result.Cycles != wantRR.Cycles {
			t.Errorf("job %d diverged from dedicated run: output=%q cycles=%d, want output=%q cycles=%d",
				n, jr.Result.Output, jr.Result.Cycles, wantRR.Output, wantRR.Cycles)
		}
	}
}
