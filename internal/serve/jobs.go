package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wmstream"
	"wmstream/internal/durable"
	"wmstream/internal/obs"
)

// The asynchronous job tier: POST /jobs accepts a /run request and
// returns immediately with a job ID; GET /jobs/{id} long-polls the
// job's progress generation; DELETE /jobs/{id} cancels (or, for a
// terminal job, deletes) it.  Jobs exist for simulations that outlive
// the synchronous RequestTimeout: they run on their own small worker
// pool under the JobTimeout wall budget, report periodic progress
// snapshots from the execution core, and keep their terminal result
// pollable for JobTTL before a janitor reclaims them.
//
// Scheduling is fair across tenants: each tenant has its own FIFO and
// the dispatcher round-robins over tenants with pending work, so one
// tenant queueing many jobs cannot starve another's first.  Admission
// is bounded twice — a total queue cap (JobQueueDepth) and a per-tenant
// cap (JobTenantQueue) — and over-cap submissions are shed with 429,
// reusing the synchronous tier's load-shedding discipline.

// Job queue admission errors; both unwrap to ErrOverloaded so callers
// can treat them as shed.
var (
	errJobQueueFull    = fmt.Errorf("%w: job queue is full", ErrOverloaded)
	errTenantQueueFull = fmt.Errorf("%w: tenant job queue is full", ErrOverloaded)
)

// jobState is the job lifecycle: queued → running → done|failed|canceled
// (queued jobs may also go directly to canceled).
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCanceled
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	default:
		return "canceled"
	}
}

// terminal reports whether the state is final (result retained until
// TTL expiry).
func (s jobState) terminal() bool { return s >= jobDone }

// job is one asynchronous run.  Lock ordering: jobManager.mu before
// job.mu; job.mu alone is enough for state reads and progress updates.
type job struct {
	id     string
	tenant string
	req    *Request
	seq    int64 // submission order, preserved across restarts

	mu    sync.Mutex
	state jobState
	// attempt counts transient-failure retries consumed; resume and
	// resumePrev are the newest and second-newest durable checkpoints
	// (tried in that order, then a clean start).
	attempt    int
	resume     *durable.CheckpointRef
	resumePrev *durable.CheckpointRef
	// gen increments on every observable change; changed is closed and
	// replaced at the same moment, so a poller holding (gen, changed)
	// wakes exactly when a newer generation exists.
	gen      int64
	changed  chan struct{}
	progress *JobProgress
	result   *RunResponse
	errMsg   string
	diags    []Diagnostic
	// cancel aborts the running simulation; cancelRequested marks a
	// cancel that arrived before the worker observed it.
	cancel          context.CancelFunc
	cancelRequested bool
	expires         time.Time // terminal states only: TTL deadline

	// trace is the job's end-to-end trace: opened at submission (under
	// the submit request's trace ID, so one trace covers POST /jobs
	// through the terminal state), finished at the terminal transition.
	// root is its "job" root span; qspan is the open queue-wait span
	// between enqueue and dispatch.  All nil when tracing is disabled.
	trace *obs.Trace
	root  *obs.Span
	qspan *obs.Span
}

// bumpLocked publishes a new generation.  Caller holds j.mu.
func (j *job) bumpLocked() {
	j.gen++
	close(j.changed)
	j.changed = make(chan struct{})
}

// update applies f under the job lock and publishes a generation bump.
func (j *job) update(f func()) {
	j.mu.Lock()
	f()
	j.bumpLocked()
	j.mu.Unlock()
}

// responseLocked renders the wire form.  Caller holds j.mu.
func (j *job) responseLocked(now time.Time) *JobResponse {
	resp := &JobResponse{
		ID:          j.id,
		State:       j.state.String(),
		Gen:         j.gen,
		Tenant:      j.tenant,
		Attempts:    j.attempt,
		Result:      j.result,
		Error:       j.errMsg,
		Diagnostics: j.diags,
	}
	if j.progress != nil {
		p := *j.progress
		resp.Progress = &p
	}
	if j.trace != nil {
		resp.TraceID = j.trace.ID().String()
	}
	if j.state.terminal() && !j.expires.IsZero() {
		if d := j.expires.Sub(now); d > 0 {
			resp.ExpiresInSeconds = d.Seconds()
		}
	}
	return resp
}

func (j *job) response(now time.Time) *JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.responseLocked(now)
}

// poll returns the current wire form plus the generation and the
// channel that closes on the next change, atomically.
func (j *job) poll(now time.Time) (*JobResponse, int64, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.responseLocked(now), j.gen, j.changed
}

// jobManager owns the job table, the per-tenant queues, the worker
// pool, and the TTL janitor.
type jobManager struct {
	srv *Server
	cfg Config

	mu      sync.Mutex
	closed  bool
	byID    map[string]*job
	pending map[string][]*job // tenant -> FIFO of queued jobs
	order   []string          // round-robin ring of tenants with pending work
	next    int               // ring cursor
	queued  int
	running int
	seq     int64 // last issued submission sequence (recovered from the journal)

	// store is the durable journal (nil: memory-only); rec reports
	// what boot-time recovery reconstructed; storeErr is why opening
	// the store failed, when it did.
	store    *durable.Store
	rec      RecoveryInfo
	storeErr string

	notify chan struct{} // buffered(1) work signal; workers re-scan until empty
	done   chan struct{}
	wg     sync.WaitGroup
}

// newJobManager builds the manager without starting it; the server
// runs recovery (openStore) first, then start, so every recovered job
// is enqueued before any worker looks for work.
func newJobManager(s *Server) *jobManager {
	return &jobManager{
		srv:     s,
		cfg:     s.cfg,
		byID:    make(map[string]*job),
		pending: make(map[string][]*job),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

func (jm *jobManager) start() {
	jm.wg.Add(jm.cfg.JobWorkers + 1)
	for range jm.cfg.JobWorkers {
		go jm.worker()
	}
	go jm.janitor()
}

// submit admits a job or sheds it.  The returned job is already
// visible to GET /jobs/{id}.  tr/root, when non-nil, become the job's
// end-to-end trace; the job takes ownership (finished at the terminal
// transition) only on successful admission.
func (jm *jobManager) submit(req *JobRequest, tr *obs.Trace, root *obs.Span) (*job, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return nil, ErrDraining
	}
	if jm.queued >= jm.cfg.JobQueueDepth {
		return nil, errJobQueueFull
	}
	if len(jm.pending[req.Tenant]) >= jm.cfg.JobTenantQueue {
		return nil, errTenantQueueFull
	}
	j := &job{
		id:      newJobID(),
		tenant:  req.Tenant,
		req:     &req.Request,
		seq:     jm.seq + 1,
		state:   jobQueued,
		changed: make(chan struct{}),
		trace:   tr,
		root:    root,
	}
	root.SetAttr("job_id", j.id)
	if j.tenant != "" {
		root.SetAttr("tenant", j.tenant)
	}
	// Journal before the job becomes visible: the 202 acknowledgement
	// implies the job survives a crash, so a record that cannot be
	// written (ErrCrashed under fault injection) must fail the submit
	// — no acknowledgement, no obligation.
	j.mu.Lock()
	rec := jm.recordLocked(j)
	j.mu.Unlock()
	jsp := root.StartChild("journal.append")
	jsp.SetAttr("state", "queued")
	if err := jm.put(rec); err != nil {
		jsp.EndErr(err)
		j.trace, j.root = nil, nil
		return nil, err
	}
	jsp.End()
	jm.seq = j.seq
	jm.byID[j.id] = j
	jm.enqueueLocked(j)
	j.qspan = root.StartChild("queue.wait")
	select {
	case jm.notify <- struct{}{}:
	default:
	}
	return j, nil
}

func (jm *jobManager) get(id string) *job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.byID[id]
}

// counts reports the queue gauges for /metrics.
func (jm *jobManager) counts() (queued, running, held int) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.queued, jm.running, len(jm.byID)
}

// popLocked dequeues the next job round-robin across tenants.  Caller
// holds jm.mu.  Every queued entry is live (cancel removes eagerly),
// so any non-empty tenant yields a job; drained tenants fall out of
// the ring.
func (jm *jobManager) popLocked() *job {
	for len(jm.order) > 0 {
		if jm.next >= len(jm.order) {
			jm.next = 0
		}
		t := jm.order[jm.next]
		q := jm.pending[t]
		if len(q) == 0 {
			jm.order = append(jm.order[:jm.next], jm.order[jm.next+1:]...)
			delete(jm.pending, t)
			continue
		}
		j := q[0]
		if len(q) == 1 {
			delete(jm.pending, t)
			jm.order = append(jm.order[:jm.next], jm.order[jm.next+1:]...)
		} else {
			jm.pending[t] = q[1:]
			jm.next++
		}
		return j
	}
	return nil
}

// removePendingLocked takes a still-queued job out of its tenant FIFO.
// Returns false if a worker already claimed it.  Caller holds jm.mu.
func (jm *jobManager) removePendingLocked(j *job) bool {
	q := jm.pending[j.tenant]
	for n, p := range q {
		if p == j {
			jm.pending[j.tenant] = append(q[:n:n], q[n+1:]...)
			return true
		}
	}
	return false
}

// worker drains the queue: claim up to JobBatch jobs, run them, repeat;
// sleep on the notify signal when empty.
func (jm *jobManager) worker() {
	defer jm.wg.Done()
	batch := jm.cfg.JobBatch
	if batch < 1 {
		batch = 1
	}
	for {
		jm.mu.Lock()
		var claimed []*job
		for len(claimed) < batch {
			j := jm.popLocked()
			if j == nil {
				break
			}
			jm.queued--
			jm.running++
			claimed = append(claimed, j)
		}
		if len(claimed) > 0 {
			jm.mu.Unlock()
			jm.runClaimed(claimed)
			jm.mu.Lock()
			jm.running -= len(claimed)
		}
		closed := jm.closed
		jm.mu.Unlock()
		if len(claimed) > 0 {
			continue
		}
		if closed {
			return
		}
		select {
		case <-jm.notify:
		case <-jm.done:
			return
		}
	}
}

// runClaimed executes one worker's claimed jobs.  A single job runs
// inline with no gate — the dedicated path is unchanged.  Several run
// as a batch: one goroutine each, simulation slices serialized on a
// shared admission gate in FIFO rotation, so the worker interleaves N
// jobs while still consuming roughly one core (internal/exec batch
// mode).  Per-job progress, checkpoints, and cancellation all keep
// working — they live between slices.
func (jm *jobManager) runClaimed(js []*job) {
	if len(js) == 1 {
		jm.runJob(js[0], nil)
		return
	}
	gate := wmstream.NewBatchGate()
	var wg sync.WaitGroup
	for _, j := range js {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jm.runJob(j, gate)
		}()
	}
	wg.Wait()
}

// runJob executes one job through the shared perform pipeline, feeding
// the execution core's progress snapshots into the job's generation
// stream.  With a durable store, the run checkpoints periodically and
// transient failures (a checkpoint that no longer verifies) retry
// with backoff, falling back candidate by candidate to a clean start.
// A non-nil gate serializes this job's slices with its batchmates.
func (jm *jobManager) runJob(j *job, gate wmstream.BatchGate) {
	ctx, cancel := context.WithTimeout(jm.srv.base, jm.cfg.JobTimeout)
	defer cancel()

	canceledEarly := false
	var rec durable.JobRecord
	var runSpan *obs.Span
	j.update(func() {
		j.qspan.End()
		j.qspan = nil
		if j.cancelRequested {
			canceledEarly = true
			j.state = jobCanceled
			j.expires = time.Now().Add(jm.cfg.JobTTL)
		} else {
			j.state = jobRunning
			j.cancel = cancel
			runSpan = j.root.StartChild("run")
		}
		rec = jm.recordLocked(j)
	})
	jm.putTraced(j, rec, rec.State)
	if canceledEarly {
		jm.srv.metrics.jobs.add(`event="canceled"`, 1)
		jm.finishTrace(j, "canceled")
		return
	}
	// The run span carries the execution through the shared pipeline:
	// compile passes, sim slices, and checkpoint spills all become its
	// children via the context.
	ctx = obs.ContextWith(ctx, runSpan)

	var out runOutcome
	for {
		out = jm.runOnce(ctx, j, gate)
		if out.resumeErr == nil || !jm.retryWait(j) {
			break
		}
	}

	event := ""
	var dropRefs []*durable.CheckpointRef
	j.update(func() {
		j.cancel = nil
		switch {
		case j.cancelRequested:
			j.state = jobCanceled
			event = `event="canceled"`
		case jm.srv.base.Err() != nil:
			// Server shutdown, not user cancellation.  With a journal
			// the job goes back to queued — the final checkpoint taken
			// on cancellation (or the last periodic one) resumes it on
			// the next boot.  Memory-only, it can only be canceled.
			if jm.store != nil {
				j.state = jobQueued
				event = `event="requeued"`
			} else {
				j.state = jobCanceled
				event = `event="canceled"`
			}
		case out.status == http.StatusOK && out.run != nil:
			j.state = jobDone
			j.result = out.run
			event = `event="completed"`
		default:
			j.state = jobFailed
			if out.errResp != nil {
				j.errMsg = out.errResp.Error
				j.diags = out.errResp.Diagnostics
			} else {
				j.errMsg = fmt.Sprintf("unexpected outcome (status %d)", out.status)
			}
			event = `event="failed"`
		}
		if j.state.terminal() {
			j.expires = time.Now().Add(jm.cfg.JobTTL)
			dropRefs = append(dropRefs, j.resume, j.resumePrev)
			j.resume, j.resumePrev = nil, nil
		}
		if j.state == jobFailed {
			runSpan.SetError(j.errMsg)
		}
		rec = jm.recordLocked(j)
	})
	runSpan.SetAttrInt("attempts", int64(rec.Attempt))
	runSpan.End()
	jm.putTraced(j, rec, rec.State)
	jm.removeRefs(dropRefs...)
	jm.srv.metrics.jobs.add(event, 1)
	j.mu.Lock()
	terminal := j.state.terminal()
	j.mu.Unlock()
	if terminal {
		jm.finishTrace(j, rec.State)
	}
}

// putTraced journals one record with a journal.append child span on
// the job's trace, so WAL writes show up on the job timeline.
func (jm *jobManager) putTraced(j *job, rec durable.JobRecord, state string) error {
	sp := j.root.StartChild("journal.append")
	sp.SetAttr("state", state)
	err := jm.put(rec)
	sp.EndErr(err)
	return err
}

// finishTrace closes the job's end-to-end trace at a terminal state.
func (jm *jobManager) finishTrace(j *job, state string) {
	j.mu.Lock()
	tr, root := j.trace, j.root
	j.mu.Unlock()
	if tr == nil {
		return
	}
	root.SetAttr("state", state)
	tr.Finish()
}

// runOnce is one attempt: load the best resume candidate, run through
// perform with checkpointing wired, and on a resume failure drop the
// candidate so the next attempt falls back.
func (jm *jobManager) runOnce(ctx context.Context, j *job, gate wmstream.BatchGate) runOutcome {
	opts := wmstream.SimOptions{
		MaxWall:       jm.cfg.JobTimeout,
		ProgressEvery: jm.cfg.JobProgressEvery,
		Gate:          gate,
		Progress: func(p wmstream.RunProgress) {
			j.update(func() {
				j.progress = &JobProgress{
					Cycles:         p.Cycles,
					Instructions:   p.Instructions,
					MemReads:       p.MemReads,
					MemWrites:      p.MemWrites,
					StreamElems:    p.StreamElems,
					ElapsedSeconds: p.Elapsed.Seconds(),
				}
			})
		},
	}
	if jm.store != nil {
		opts.ResumeState = jm.loadResume(j)
		opts.CheckpointEvery = jm.cfg.JobCheckpointEvery
		opts.FinalCheckpoint = true
		opts.OnCheckpoint = func(state []byte, p wmstream.RunProgress) error {
			jm.spill(j, state, p)
			return nil // a failed spill degrades; it never aborts the run
		}
	}
	out := jm.srv.perform(ctx, kindRun, j.req, opts)
	if out.resumeErr != nil {
		// The blob passed its content hash but would not decode into
		// the machine (e.g. a config drift): discard the candidate and
		// charge one retry.
		jm.cfg.Logger.Warn("jobs: checkpoint resume failed; discarding candidate",
			"job", j.id, "err", out.resumeErr)
		jm.srv.metrics.jobs.add(`event="resume_failed"`, 1)
		jm.dropResume(j)
		j.update(func() { j.attempt++ })
	}
	return out
}

// cancelJob implements DELETE semantics per state: terminal jobs are
// deleted immediately, queued jobs flip to canceled, running jobs get
// their context canceled (the state transition lands when the worker
// observes it).  Returns the job's wire form after the action.
func (jm *jobManager) cancelJob(j *job) *JobResponse {
	now := time.Now()
	var tomb *durable.JobRecord
	var canceledRec *durable.JobRecord
	var dropRefs []*durable.CheckpointRef
	defer func() {
		// Journal outside the locks: deletes become tombstones, queued
		// cancellations become terminal records.
		if tomb != nil {
			jm.put(*tomb)
			jm.removeRefs(dropRefs...)
		}
		if canceledRec != nil {
			jm.put(*canceledRec)
		}
	}()
	jm.mu.Lock()
	j.mu.Lock()
	switch {
	case j.state.terminal():
		delete(jm.byID, j.id)
		resp := j.responseLocked(now)
		resp.ExpiresInSeconds = 0 // deleted now, not at TTL
		tomb = &durable.JobRecord{Seq: j.seq, ID: j.id, State: "deleted"}
		dropRefs = append(dropRefs, j.resume, j.resumePrev)
		j.mu.Unlock()
		jm.mu.Unlock()
		return resp
	case j.state == jobQueued:
		if jm.removePendingLocked(j) {
			jm.queued--
			j.state = jobCanceled
			j.expires = now.Add(jm.cfg.JobTTL)
			j.qspan.SetAttr("outcome", "canceled")
			j.qspan.End()
			j.qspan = nil
			if j.trace != nil {
				j.root.SetAttr("state", "canceled")
				defer j.trace.Finish()
			}
			j.bumpLocked()
			r := jm.recordLocked(j)
			canceledRec = &r
			jm.srv.metrics.jobs.add(`event="canceled"`, 1)
		} else {
			// A worker claimed it between our lookup and now; it will
			// observe the flag before (or right after) starting.
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	default: // running
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	resp := j.responseLocked(now)
	j.mu.Unlock()
	jm.mu.Unlock()
	return resp
}

// close stops admission and waits for workers (whose running jobs
// have already had their base context canceled by Server.Close) and
// the janitor to exit.  Memory-only, still-queued jobs are canceled —
// there is nowhere for them to survive; with a journal they stay
// "queued" both in memory and on disk, and the next boot re-admits
// them with their original tenants and order.
func (jm *jobManager) close() {
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return
	}
	jm.closed = true
	now := time.Now()
	if jm.store == nil {
		for _, q := range jm.pending {
			for _, j := range q {
				j.update(func() {
					j.state = jobCanceled
					j.expires = now.Add(jm.cfg.JobTTL)
				})
				jm.srv.metrics.jobs.add(`event="canceled"`, 1)
			}
		}
	}
	jm.pending = make(map[string][]*job)
	jm.order = nil
	jm.queued = 0
	close(jm.done)
	jm.mu.Unlock()
	jm.wg.Wait()
	if jm.store != nil {
		jm.store.Close()
	}
}

// janitor deletes terminal jobs whose TTL has passed, so abandoned
// results do not accumulate.
func (jm *jobManager) janitor() {
	defer jm.wg.Done()
	interval := jm.cfg.JobTTL / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-jm.done:
			return
		case now := <-t.C:
			jm.sweep(now)
		}
	}
}

func (jm *jobManager) sweep(now time.Time) {
	var expired int64
	var tombs []durable.JobRecord
	var dropRefs []*durable.CheckpointRef
	jm.mu.Lock()
	for id, j := range jm.byID {
		j.mu.Lock()
		if j.state.terminal() && now.After(j.expires) {
			delete(jm.byID, id)
			tombs = append(tombs, durable.JobRecord{Seq: j.seq, ID: j.id, State: "deleted"})
			dropRefs = append(dropRefs, j.resume, j.resumePrev)
			expired++
		}
		j.mu.Unlock()
	}
	jm.mu.Unlock()
	for _, t := range tombs {
		jm.put(t)
	}
	jm.removeRefs(dropRefs...)
	if expired > 0 {
		jm.srv.metrics.jobs.add(`event="expired"`, expired)
	}
}

// newJobID returns a random 64-bit hex ID.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: reading random job id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// decodeJobRequest parses and validates a POST /jobs body (a /run
// request plus tenant metadata).
func (s *Server) decodeJobRequest(w http.ResponseWriter, r *http.Request) (*JobRequest, *ErrorResponse, int) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes+64<<10))
	if err != nil {
		return nil, &ErrorResponse{Error: "reading body: " + err.Error()}, http.StatusRequestEntityTooLarge
	}
	var req JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, &ErrorResponse{Error: "bad request JSON: " + err.Error()}, http.StatusBadRequest
	}
	if err := req.validate(s.cfg.MaxSourceBytes); err != nil {
		status := http.StatusBadRequest
		if int64(len(req.Source)) > s.cfg.MaxSourceBytes {
			status = http.StatusRequestEntityTooLarge
		}
		return nil, &ErrorResponse{Error: err.Error()}, status
	}
	return &req, nil, 0
}

// handleJobSubmit is POST /jobs: admit (202 with the queued job) or
// shed (429/503).  The trace opened here is the job's end-to-end
// trace: its root "job" span outlives this request (the job finishes
// it at its terminal transition), while the handler's own work is the
// "admission" child span.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx, root := s.startTrace(r, "job")
	adm := root.StartChild("admission")
	if adm != nil {
		ctx = obs.ContextWith(ctx, adm)
	}
	r = r.WithContext(ctx)
	handedOff := false
	defer func() {
		// Failed submissions never reach a worker; close the trace here.
		if !handedOff {
			root.Trace().Finish()
		}
	}()
	req, errResp, status := s.decodeJobRequest(w, r)
	if errResp != nil {
		adm.SetError(errResp.Error)
		s.finish(w, r, kindJobs, start, status, mustJSON(errResp), "")
		return
	}
	j, err := s.jobs.submit(req, root.Trace(), root)
	switch {
	case err == nil:
		handedOff = true
		s.metrics.jobs.add(`event="submitted"`, 1)
		s.finish(w, r, kindJobs, start, http.StatusAccepted, mustJSON(j.response(time.Now())), "")
	case errors.Is(err, ErrDraining):
		s.finish(w, r, kindJobs, start, http.StatusServiceUnavailable,
			mustJSON(&ErrorResponse{Error: "server is shutting down"}), "")
	case errors.Is(err, ErrOverloaded):
		s.metrics.jobs.add(`event="shed"`, 1)
		s.metrics.shed.inc()
		msg := "overloaded: job queue is full, retry later"
		if errors.Is(err, errTenantQueueFull) {
			msg = "overloaded: tenant job queue is full, retry later"
		}
		s.finish(w, r, kindJobs, start, http.StatusTooManyRequests,
			mustJSON(&ErrorResponse{Error: msg}), "")
	default:
		s.finish(w, r, kindJobs, start, http.StatusInternalServerError,
			mustJSON(&ErrorResponse{Error: err.Error()}), "")
	}
}

// handleJobGet is GET /jobs/{id}.  Without query parameters it returns
// the current state immediately.  With ?gen=N&wait=D it long-polls:
// the response is delayed (up to D, capped by JobPollMax) until the
// job's generation exceeds N, so pollers see every state transition
// without tight-looping.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	j := s.jobs.get(id)
	r, _ = s.jobRequestSpan(r, j, "GET /jobs/{id}", "poll")
	if j == nil {
		s.finish(w, r, kindJobPoll, start, http.StatusNotFound,
			mustJSON(&ErrorResponse{Error: "no such job: " + id}), "")
		return
	}
	q := r.URL.Query()
	sinceGen := int64(-1)
	if g := q.Get("gen"); g != "" {
		v, err := strconv.ParseInt(g, 10, 64)
		if err != nil {
			s.finish(w, r, kindJobPoll, start, http.StatusBadRequest,
				mustJSON(&ErrorResponse{Error: "bad gen: " + err.Error()}), "")
			return
		}
		sinceGen = v
	}
	var wait time.Duration
	if wq := q.Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil {
			s.finish(w, r, kindJobPoll, start, http.StatusBadRequest,
				mustJSON(&ErrorResponse{Error: "bad wait: " + err.Error()}), "")
			return
		}
		wait = min(d, s.cfg.JobPollMax)
	}
	deadline := time.Now().Add(wait)
	// waited accumulates time intentionally parked in the long-poll
	// select; finishWait excludes it from the endpoint latency
	// histogram (a client asking to wait 30s is not a slow server) and
	// records it in the wait histogram instead.
	var waited time.Duration
	for {
		resp, gen, changed := j.poll(time.Now())
		if s.draining.Load() {
			// Drain has begun: answer promptly with a terminal-for-now
			// snapshot instead of holding the poll open, and tell the
			// client to reconnect elsewhere.  http.Server.Shutdown waits
			// for in-flight requests, so a held-open long-poll would
			// stall the whole graceful exit for up to JobPollMax.
			w.Header().Set("Connection", "close")
			s.finishWait(w, r, kindJobPoll, start, waited, http.StatusOK, mustJSON(resp), "")
			return
		}
		if sinceGen < 0 || gen > sinceGen || wait <= 0 {
			s.finishWait(w, r, kindJobPoll, start, waited, http.StatusOK, mustJSON(resp), "")
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			// Poll window elapsed with no change: report current state.
			s.finishWait(w, r, kindJobPoll, start, waited, http.StatusOK, mustJSON(resp), "")
			return
		}
		timer := time.NewTimer(remain)
		parked := time.Now()
		select {
		case <-changed:
		case <-timer.C:
		case <-r.Context().Done():
		case <-s.drainCh:
		}
		timer.Stop()
		waited += time.Since(parked)
		if r.Context().Err() != nil {
			s.finishWait(w, r, kindJobPoll, start, waited, http.StatusOK, mustJSON(resp), "")
			return
		}
	}
}

// handleJobDelete is DELETE /jobs/{id}: cancel a queued or running
// job, or delete a terminal one.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	j := s.jobs.get(id)
	r, _ = s.jobRequestSpan(r, j, "DELETE /jobs/{id}", "cancel")
	if j == nil {
		s.finish(w, r, kindJobCancel, start, http.StatusNotFound,
			mustJSON(&ErrorResponse{Error: "no such job: " + id}), "")
		return
	}
	resp := s.jobs.cancelJob(j)
	s.finish(w, r, kindJobCancel, start, http.StatusOK, mustJSON(resp), "")
}

// jobRequestSpan attaches a poll/cancel request to the job's
// end-to-end trace as a child span when the job still has a live one,
// and falls back to a standalone request trace otherwise (no such
// job, trace already finished, or tracing disabled at submission).
func (s *Server) jobRequestSpan(r *http.Request, j *job, traceName, childName string) (*http.Request, *obs.Span) {
	if j != nil {
		j.mu.Lock()
		root := j.root
		j.mu.Unlock()
		if sp := root.StartChild(childName); sp != nil {
			sp.SetAttr("remote", r.RemoteAddr)
			return r.WithContext(obs.ContextWith(r.Context(), sp)), sp
		}
	}
	ctx, root := s.startTrace(r, traceName)
	return r.WithContext(ctx), root
}
