package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"wmstream/internal/durable"
)

// crashSrc runs tens of millions of naive-code cycles at O0 — long
// enough that the harness can observe it mid-run, let several
// checkpoints spill, and kill the process underneath it — while
// emitting output both early and late so the output-splicing path is
// exercised across the restart.
const crashSrc = `double a[128];
int main(void) {
    int i, r; double s;
    for (i = 0; i < 128; i++) a[i] = (i & 15) * 0.25;
    s = 0.0;
    for (r = 0; r < 15000; r++) {
        for (i = 0; i < 128; i++) s = s + a[i];
        if ((r & 4095) == 0) puti(r);
    }
    putd(s);
    return 0;
}`

func crashJobReq(engine string) *JobRequest {
	return &JobRequest{Request: Request{
		Source:  crashSrc,
		Level:   intp(0),
		Machine: &MachineSpec{Engine: engine},
	}}
}

// durableCfg is the job-tier configuration the durability tests share:
// a journal under dir, frequent checkpoints, and fast progress so the
// harness can watch cycles advance.
func durableCfg(dir string, faults *durable.FaultPoints) Config {
	return Config{
		JobDir:             dir,
		JobFaults:          faults,
		JobWorkers:         2,
		JobCheckpointEvery: 500_000,
		JobProgressEvery:   time.Millisecond,
		JobRetryBase:       5 * time.Millisecond,
	}
}

// baselineRun computes the uninterrupted result of a job request on a
// fresh memory-only server: the reference every recovered run must
// match byte for byte.
func baselineRun(t *testing.T, req *JobRequest) *RunResponse {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	res, jr := submitJob(t, ts, req)
	if res.status != http.StatusAccepted {
		t.Fatalf("baseline submit status %d: %s", res.status, res.body)
	}
	done := waitTerminal(t, ts, jr.ID, jr.Gen)
	if done.State != "done" || done.Result == nil {
		t.Fatalf("baseline run ended %q (error %q)", done.State, done.Error)
	}
	return done.Result
}

// waitCycles polls until the job has simulated at least n cycles,
// proving it is observably mid-run (and, for n well past the
// checkpoint interval, that checkpoints have spilled).
func waitCycles(t *testing.T, ts *httptest.Server, id string, n int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, jr := getJob(t, ts, id, "")
		if status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		switch jr.State {
		case "queued", "running":
			if jr.Progress != nil && jr.Progress.Cycles >= n {
				return
			}
		default:
			t.Fatalf("job %s reached %q before %d cycles", id, jr.State, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %d cycles", id, n)
}

func healthJobs(t *testing.T, ts *httptest.Server) *JobsHealth {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("bad health JSON: %v", err)
	}
	if h.Jobs == nil {
		t.Fatal("healthz carries no jobs section")
	}
	return h.Jobs
}

// TestJobCrashRestartHarness is the end-to-end durability harness: two
// rounds of traffic, each killed abruptly mid-run (fault injection
// wedges the journal exactly as a dying process would), then a clean
// boot.  Invariants: no acknowledged job is ever lost across any
// restart, and every recovered run — including the one resumed from a
// mid-flight checkpoint on a *different* engine — finishes with a
// result byte-identical to an uninterrupted run.
func TestJobCrashRestartHarness(t *testing.T) {
	dir := t.TempDir()
	engines := []string{"fast", "reference"}
	want := map[string]*RunResponse{}
	for _, e := range engines {
		want[e] = baselineRun(t, crashJobReq(e))
	}
	if !reflect.DeepEqual(want["fast"], want["reference"]) {
		t.Fatalf("engines disagree before any crash:\nfast:      %+v\nreference: %+v",
			want["fast"], want["reference"])
	}

	acked := map[string]string{} // job ID -> engine
	for round, engine := range engines {
		faults := &durable.FaultPoints{}
		srv := New(durableCfg(dir, faults))
		ts := httptest.NewServer(srv)

		// Every job acknowledged before a previous kill must still be
		// visible after the reboot.
		for id := range acked {
			if status, _ := getJob(t, ts, id, ""); status != http.StatusOK {
				t.Fatalf("round %d: acked job %s lost across restart (status %d)", round, id, status)
			}
		}
		if round > 0 {
			rec, mode := srv.Recovery()
			if mode != "durable" {
				t.Fatalf("round %d: journal mode %q, want durable", round, mode)
			}
			if rec.Requeued+rec.Resumed+rec.Restored == 0 {
				t.Fatalf("round %d: recovery reconstructed nothing: %+v", round, rec)
			}
			if rec.TornTails == 0 {
				t.Fatalf("round %d: torn tail not detected: %+v", round, rec)
			}
		}

		res, jr := submitJob(t, ts, crashJobReq(engine))
		if res.status != http.StatusAccepted {
			t.Fatalf("round %d: submit status %d: %s", round, res.status, res.body)
		}
		acked[jr.ID] = engine

		// Let it run well past several checkpoint intervals, then die.
		waitCycles(t, ts, jr.ID, 2_000_000)
		faults.Kill()
		srv.crash()
		ts.Close()
		srv.Close()

		// Simulate the torn tail a real kill -9 leaves: garbage bytes
		// mid-frame at the end of the newest segment.
		tearJournalTail(t, dir)
	}

	// Clean boot: everything acked must exist, resume, and finish
	// identically to the uninterrupted baseline.
	srv, ts := newTestServer(t, durableCfg(dir, nil))
	rec, mode := srv.Recovery()
	if mode != "durable" {
		t.Fatalf("final boot: journal mode %q, want durable", mode)
	}
	if rec.Resumed == 0 {
		t.Fatalf("final boot: no job resumed from a checkpoint: %+v", rec)
	}
	for id, engine := range acked {
		done := waitTerminal(t, ts, id, 0)
		if done.State != "done" {
			t.Fatalf("recovered job %s (engine %s) ended %q (error %q)", id, engine, done.State, done.Error)
		}
		if !reflect.DeepEqual(done.Result, want[engine]) {
			t.Errorf("recovered job %s (engine %s) diverged:\nuninterrupted: %+v\nrecovered:     %+v",
				id, engine, want[engine], done.Result)
		}
	}

	jh := healthJobs(t, ts)
	if jh.JournalMode != "durable" {
		t.Errorf("healthz journal mode %q, want durable", jh.JournalMode)
	}
	if jh.Recovery.Resumed == 0 {
		t.Errorf("healthz reports no resumed jobs: %+v", jh.Recovery)
	}
}

// tearJournalTail appends a partial frame to the newest WAL segment,
// as an interrupted write would.
func tearJournalTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	// A plausible length word with no payload behind it.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("tear tail: %v", err)
	}
	f.Close()
}

// TestJobQueuedSurviveRestart: queued jobs stopped behind a busy
// worker come back on the next boot with their tenants and order, and
// terminal results are restored still-pollable.
func TestJobQueuedSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir, nil)
	cfg.JobWorkers = 1
	srv := New(cfg)
	ts := httptest.NewServer(srv)

	// A finished job whose result must survive the restart.
	_, doneJob := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	finished := waitTerminal(t, ts, doneJob.ID, doneJob.Gen)
	if finished.State != "done" {
		t.Fatalf("setup job ended %q", finished.State)
	}

	// Occupy the single worker, then queue jobs behind it.
	_, blocker := submitJob(t, ts, crashJobReq("fast"))
	waitCycles(t, ts, blocker.ID, 100_000)
	var queued []JobResponse
	for n := 0; n < 3; n++ {
		res, jr := submitJob(t, ts, &JobRequest{
			Request: Request{Source: helloSrc},
			Tenant:  fmt.Sprintf("tenant-%d", n),
		})
		if res.status != http.StatusAccepted {
			t.Fatalf("submit status %d", res.status)
		}
		queued = append(queued, jr)
	}
	srv.crash()
	ts.Close()
	srv.Close()

	srv2, ts2 := newTestServer(t, durableCfg(dir, nil))
	rec, _ := srv2.Recovery()
	if got := rec.Requeued + rec.Resumed; got != 4 { // blocker + 3 queued
		t.Fatalf("recovered %d queued/running jobs, want 4 (%+v)", got, rec)
	}
	if rec.Restored != 1 {
		t.Fatalf("restored %d terminal jobs, want 1 (%+v)", rec.Restored, rec)
	}
	// The finished job's result is still pollable without re-running.
	status, again := getJob(t, ts2, doneJob.ID, "")
	if status != http.StatusOK || again.State != "done" {
		t.Fatalf("restored terminal job: status %d state %q", status, again.State)
	}
	if !reflect.DeepEqual(again.Result, finished.Result) {
		t.Fatalf("restored result differs:\nbefore: %+v\nafter:  %+v", finished.Result, again.Result)
	}
	// Every queued job keeps its tenant and runs to completion.
	for _, q := range queued {
		done := waitTerminal(t, ts2, q.ID, 0)
		if done.State != "done" || done.Result == nil || done.Result.Output != "45" {
			t.Fatalf("requeued job %s ended %q result %+v", q.ID, done.State, done.Result)
		}
		if done.Tenant != q.Tenant {
			t.Fatalf("requeued job %s tenant %q, want %q", q.ID, done.Tenant, q.Tenant)
		}
	}
}

// TestJobCheckpointCorruptFallback: when every on-disk checkpoint is
// bit-flipped while the server is down, recovery falls back to a clean
// restart — the job still completes with the uninterrupted result.
func TestJobCheckpointCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	want := baselineRun(t, crashJobReq("fast"))

	srv := New(durableCfg(dir, nil))
	ts := httptest.NewServer(srv)
	res, jr := submitJob(t, ts, crashJobReq("fast"))
	if res.status != http.StatusAccepted {
		t.Fatalf("submit status %d", res.status)
	}
	waitCycles(t, ts, jr.ID, 2_000_000)
	srv.crash()
	ts.Close()
	srv.Close()

	blobs, err := filepath.Glob(filepath.Join(dir, "checkpoints", "*.ckpt"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no checkpoints spilled (err %v)", err)
	}
	for _, path := range blobs {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		raw[len(raw)/2] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("corrupt %s: %v", path, err)
		}
	}

	_, ts2 := newTestServer(t, durableCfg(dir, nil))
	done := waitTerminal(t, ts2, jr.ID, 0)
	if done.State != "done" {
		t.Fatalf("job ended %q (error %q) after checkpoint corruption", done.State, done.Error)
	}
	if !reflect.DeepEqual(done.Result, want) {
		t.Errorf("clean-restart fallback diverged:\nuninterrupted: %+v\nrecovered:     %+v", want, done.Result)
	}
}

// TestJobJournalDegraded: an ordinary journal I/O failure degrades the
// tier to memory-only — submissions still ack, jobs still complete —
// and both /healthz and /metrics report the degradation.
func TestJobJournalDegraded(t *testing.T) {
	dir := t.TempDir()
	// The very first append fails (a full disk, say); everything after
	// is memory-only.
	faults := &durable.FaultPoints{FailAt: 1}
	_, ts := newTestServer(t, durableCfg(dir, faults))

	res, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	if res.status != http.StatusAccepted {
		t.Fatalf("degraded submit status %d: %s", res.status, res.body)
	}
	done := waitTerminal(t, ts, jr.ID, jr.Gen)
	if done.State != "done" || done.Result == nil || done.Result.Output != "45" {
		t.Fatalf("degraded job ended %q result %+v", done.State, done.Result)
	}

	jh := healthJobs(t, ts)
	if jh.JournalMode != "degraded" {
		t.Fatalf("healthz journal mode %q, want degraded (%+v)", jh.JournalMode, jh)
	}
	if jh.DroppedWrites == 0 {
		t.Fatal("healthz reports no dropped writes in degraded mode")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	body := string(raw)
	for _, w := range []string{
		`wmserved_journal_mode{mode="degraded"} 1`,
		`wmserved_journal_mode{mode="durable"} 0`,
		"wmserved_journal_dropped_writes_total",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}

// TestJobPollDrainReleases: a held-open long-poll answers promptly
// (with Connection: close) the moment drain begins, instead of pinning
// graceful shutdown for the rest of its wait window.
func TestJobPollDrainReleases(t *testing.T) {
	cfg := Config{JobWorkers: 1, JobProgressEvery: time.Hour}
	srv, ts := newTestServer(t, cfg)
	// Occupy the worker so the second job stays queued, its generation
	// frozen — the long-poll genuinely blocks.
	submitJob(t, ts, crashJobReq("fast"))
	_, queued := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})

	type pollResult struct {
		status  int
		close   bool
		elapsed time.Duration
		err     error
	}
	got := make(chan pollResult, 1)
	start := time.Now()
	go func() {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/jobs/%s?gen=%d&wait=20s", queued.ID, queued.Gen))
		r := pollResult{elapsed: time.Since(start), err: err}
		if err == nil {
			r.status = resp.StatusCode
			// The Go client consumes the hop-by-hop Connection: close
			// header into resp.Close.
			r.close = resp.Close
			resp.Body.Close()
		}
		got <- r
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park
	srv.Drain()
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("long-poll: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("long-poll status %d", r.status)
		}
		if r.elapsed > 5*time.Second {
			t.Fatalf("long-poll held %v past drain", r.elapsed)
		}
		if !r.close {
			t.Error("long-poll response did not ask to close the connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll still parked 10s after drain")
	}
}
