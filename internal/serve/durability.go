package serve

import (
	"encoding/json"
	"math/rand"
	"time"

	"wmstream"
	"wmstream/internal/durable"
	"wmstream/internal/obs"
)

// Durability layer of the job tier.  When Config.JobDir is set, every
// job state transition is journaled through a durable.Store before it
// is acknowledged, and running jobs periodically spill
// checkpoint blobs, so a process death loses no acknowledged job: on
// the next boot, queued jobs re-enter their tenants' queues in the
// original submission order and running jobs resume from their latest
// valid checkpoint (falling back to the previous one, then to a clean
// restart, when a blob fails verification).  Transient failures —
// a corrupt checkpoint discovered mid-resume, a failed spill — retry
// with capped exponential backoff up to Config.JobRetries; journal
// write failures degrade the store to memory-only mode rather than
// failing the job tier (reported via /healthz and /metrics).

// RecoveryInfo reports what boot-time journal replay reconstructed.
type RecoveryInfo struct {
	// Requeued counts queued/running jobs re-admitted without a
	// checkpoint; Resumed counts those re-admitted with one.
	Requeued int `json:"requeued_jobs"`
	Resumed  int `json:"resumed_jobs"`
	// Restored counts terminal jobs whose results were brought back
	// (still pollable until their TTL); Expired counts terminal jobs
	// already past TTL at boot.
	Restored int `json:"restored_jobs"`
	Expired  int `json:"expired_jobs"`
	// Abandoned counts records too damaged to act on (undecodable
	// request payloads); their jobs are tombstoned.
	Abandoned int `json:"abandoned_jobs"`
	// TornTails and CorruptRecords surface the journal replay damage
	// counts.
	TornTails      int `json:"journal_torn_tails,omitempty"`
	CorruptRecords int `json:"journal_corrupt_records,omitempty"`
}

// openStore opens the journal under Config.JobDir and rebuilds the
// job table from it.  Failure to open is absorbed: the tier runs
// memory-only exactly as it does with no JobDir, and health reports
// why.  Called before start(), so recovered jobs are enqueued before
// any worker looks.
func (jm *jobManager) openStore() {
	fsync, err := durable.ParseFsyncPolicy(jm.cfg.JobFsync)
	if err != nil {
		jm.cfg.Logger.Warn("jobs: bad fsync policy; using batch", "err", err)
		fsync = durable.FsyncBatch
	}
	store, rec, err := durable.Open(durable.Options{
		Dir:    jm.cfg.JobDir,
		Fsync:  fsync,
		Faults: jm.cfg.JobFaults,
		Logger: jm.cfg.Logger,
	})
	if err != nil {
		jm.cfg.Logger.Warn("jobs: opening job dir failed; jobs are memory-only",
			"dir", jm.cfg.JobDir, "err", err)
		jm.storeErr = err.Error()
		return
	}
	jm.store = store
	jm.recover(rec)
}

// recover replays one boot's Recovery into the job table.  Runs
// before workers start; jm.mu is held for form.
func (jm *jobManager) recover(rec *durable.Recovery) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	now := time.Now()
	jm.seq = rec.MaxSeq
	jm.rec.TornTails = rec.Replay.TruncatedTails
	jm.rec.CorruptRecords = rec.Replay.CorruptRecords
	for _, r := range rec.Jobs {
		switch r.State {
		case "queued", "running":
			// Both re-enter the queue: a job that was mid-run when the
			// process died restarts (from its checkpoint when one
			// verifies) exactly as if it had never been dispatched.
			var req Request
			if err := json.Unmarshal(r.Request, &req); err != nil || req.Source == "" {
				jm.abandonLocked(r)
				continue
			}
			j := &job{
				id:         r.ID,
				tenant:     r.Tenant,
				req:        &req,
				seq:        r.Seq,
				attempt:    r.Attempt,
				resume:     r.Checkpoint,
				resumePrev: r.PrevCheckpoint,
				state:      jobQueued,
				gen:        r.Gen + 1,
				changed:    make(chan struct{}),
			}
			// A journaled trace ID continues the job's end-to-end trace
			// across the restart: the resumed run records its spans under
			// the same ID the submitter was handed, marked resumed=true.
			if tid, err := obs.ParseTraceID(r.TraceID); err == nil {
				tr, root := jm.srv.traces.Start("job", tid, obs.SpanID{})
				root.SetAttr("job_id", j.id)
				root.SetAttr("resumed", "true")
				if j.tenant != "" {
					root.SetAttr("tenant", j.tenant)
				}
				j.trace, j.root = tr, root
				j.qspan = root.StartChild("queue.wait")
			}
			jm.byID[j.id] = j
			jm.enqueueLocked(j)
			if j.resume != nil {
				jm.rec.Resumed++
			} else {
				jm.rec.Requeued++
			}
		case "done", "failed", "canceled":
			if r.ExpiresUnixMs > 0 && now.After(time.UnixMilli(r.ExpiresUnixMs)) {
				jm.rec.Expired++
				jm.store.Put(durable.JobRecord{Seq: r.Seq, ID: r.ID, State: "deleted"})
				jm.removeRefs(r.Checkpoint, r.PrevCheckpoint)
				continue
			}
			j := &job{
				id:      r.ID,
				tenant:  r.Tenant,
				seq:     r.Seq,
				attempt: r.Attempt,
				gen:     r.Gen + 1,
				changed: make(chan struct{}),
				errMsg:  r.Error,
				expires: time.UnixMilli(r.ExpiresUnixMs),
			}
			switch r.State {
			case "done":
				j.state = jobDone
				var res RunResponse
				if err := json.Unmarshal(r.Result, &res); err != nil {
					jm.abandonLocked(r)
					continue
				}
				j.result = &res
			case "failed":
				j.state = jobFailed
				if len(r.Diags) > 0 {
					json.Unmarshal(r.Diags, &j.diags)
				}
			default:
				j.state = jobCanceled
			}
			jm.byID[j.id] = j
			jm.rec.Restored++
		default:
			jm.abandonLocked(r)
		}
	}
	counts := map[string]int{
		`outcome="requeued"`:  jm.rec.Requeued,
		`outcome="resumed"`:   jm.rec.Resumed,
		`outcome="restored"`:  jm.rec.Restored,
		`outcome="expired"`:   jm.rec.Expired,
		`outcome="abandoned"`: jm.rec.Abandoned,
	}
	for label, n := range counts {
		if n > 0 {
			jm.srv.metrics.recovered.add(label, int64(n))
		}
	}
}

// abandonLocked tombstones a record recovery cannot act on.
func (jm *jobManager) abandonLocked(r durable.JobRecord) {
	jm.rec.Abandoned++
	jm.cfg.Logger.Warn("jobs: abandoning undecodable journal record", "id", r.ID, "state", r.State)
	jm.store.Put(durable.JobRecord{Seq: r.Seq, ID: r.ID, State: "deleted"})
	jm.removeRefs(r.Checkpoint, r.PrevCheckpoint)
}

// enqueueLocked puts a queued job into its tenant FIFO and the
// round-robin ring.  Caller holds jm.mu.
func (jm *jobManager) enqueueLocked(j *job) {
	if len(jm.pending[j.tenant]) == 0 {
		jm.order = append(jm.order, j.tenant)
	}
	jm.pending[j.tenant] = append(jm.pending[j.tenant], j)
	jm.queued++
}

// put journals one record; a nil store journals nothing.  The only
// error that propagates is durable.ErrCrashed — fault injection has
// simulated a process death, and the caller must not acknowledge.
func (jm *jobManager) put(r durable.JobRecord) error {
	if jm.store == nil {
		return nil
	}
	return jm.store.Put(r)
}

// recordLocked renders the job's current state as a journal record.
// Caller holds j.mu.
func (jm *jobManager) recordLocked(j *job) durable.JobRecord {
	r := durable.JobRecord{
		Seq:            j.seq,
		ID:             j.id,
		State:          j.state.String(),
		Tenant:         j.tenant,
		Gen:            j.gen,
		Attempt:        j.attempt,
		Checkpoint:     j.resume,
		PrevCheckpoint: j.resumePrev,
	}
	if j.trace != nil {
		r.TraceID = j.trace.ID().String()
	}
	if !j.state.terminal() && j.req != nil {
		// Non-terminal records must be re-runnable: the journal is
		// last-wins, so each one carries the original request verbatim.
		r.Request, _ = json.Marshal(j.req)
	}
	if j.result != nil {
		r.Result, _ = json.Marshal(j.result)
	}
	r.Error = j.errMsg
	if len(j.diags) > 0 {
		r.Diags, _ = json.Marshal(j.diags)
	}
	if !j.expires.IsZero() {
		r.ExpiresUnixMs = j.expires.UnixMilli()
	}
	return r
}

// removeRefs deletes checkpoint blobs, deduplicating shared hashes.
func (jm *jobManager) removeRefs(refs ...*durable.CheckpointRef) {
	if jm.store == nil {
		return
	}
	seen := map[string]bool{}
	for _, ref := range refs {
		if ref == nil || seen[ref.Hash] {
			continue
		}
		seen[ref.Hash] = true
		jm.store.RemoveCheckpoint(*ref)
	}
}

// loadResume returns the job's best checkpoint blob, dropping (and
// counting) candidates that fail verification, or nil for a clean
// start.
func (jm *jobManager) loadResume(j *job) []byte {
	for {
		j.mu.Lock()
		ref := j.resume
		j.mu.Unlock()
		if ref == nil {
			return nil
		}
		blob, err := jm.store.LoadCheckpoint(*ref)
		if err == nil {
			return blob
		}
		jm.cfg.Logger.Warn("jobs: checkpoint failed verification; falling back",
			"job", j.id, "hash", ref.Hash[:12], "err", err)
		jm.srv.metrics.jobs.add(`event="checkpoint_corrupt"`, 1)
		jm.dropResume(j)
	}
}

// dropResume discards the job's newest checkpoint candidate,
// promoting the previous one.
func (jm *jobManager) dropResume(j *job) {
	j.mu.Lock()
	dropped := j.resume
	j.resume, j.resumePrev = j.resumePrev, nil
	keep := j.resume
	j.mu.Unlock()
	if dropped != nil && (keep == nil || keep.Hash != dropped.Hash) {
		if jm.store != nil {
			jm.store.RemoveCheckpoint(*dropped)
		}
	}
}

// spill persists one checkpoint blob and journals the job's new
// resume point.  Failures degrade — counted and logged, the run
// continues on its in-memory state — because a checkpoint is an
// optimization, never a correctness requirement.
func (jm *jobManager) spill(j *job, state []byte, p wmstream.RunProgress) {
	csp := j.root.StartChild("checkpoint.write")
	csp.SetAttrInt("bytes", int64(len(state)))
	csp.SetAttrInt("cycle", p.Cycles)
	ref, err := jm.store.SaveCheckpoint(state, p.Cycles)
	csp.EndErr(err)
	if err != nil {
		if err != durable.ErrCrashed {
			jm.cfg.Logger.Warn("jobs: checkpoint spill failed; run continues unprotected",
				"job", j.id, "err", err)
		}
		jm.srv.metrics.jobs.add(`event="spill_failed"`, 1)
		return
	}
	var rec durable.JobRecord
	var dropHash string
	j.mu.Lock()
	if j.resume == nil || j.resume.Hash != ref.Hash {
		if j.resumePrev != nil {
			dropHash = j.resumePrev.Hash
		}
		j.resumePrev = j.resume
		j.resume = &ref
		if dropHash != "" &&
			(dropHash == j.resume.Hash || (j.resumePrev != nil && dropHash == j.resumePrev.Hash)) {
			dropHash = "" // still referenced under content addressing
		}
	}
	rec = jm.recordLocked(j)
	j.mu.Unlock()
	jm.putTraced(j, rec, "running")
	if dropHash != "" {
		jm.store.RemoveCheckpoint(durable.CheckpointRef{Hash: dropHash})
	}
}

// retryWait decides whether a transiently failed attempt should run
// again, sleeping the backoff if so.  Capped exponential with jitter:
// base<<attempt up to 64x, half of it jittered.
func (jm *jobManager) retryWait(j *job) bool {
	j.mu.Lock()
	attempt := j.attempt
	canceled := j.cancelRequested
	j.mu.Unlock()
	if canceled || jm.srv.base.Err() != nil || attempt > jm.cfg.JobRetries {
		return false
	}
	jm.srv.metrics.jobs.add(`event="retried"`, 1)
	d := retryBackoff(jm.cfg.JobRetryBase, attempt)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-jm.srv.base.Done():
		return false
	case <-jm.done:
		return false
	}
}

// retryBackoff computes the nth (1-based) retry delay.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6 // cap at 64x base
	}
	d := base << shift
	// Full jitter on the upper half, so synchronized retries spread.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// crash simulates an abrupt process death for the crash-restart
// harness: workers are told to stop and waited for — their in-flight
// simulations abort via the already-canceled base context — but no
// graceful-shutdown state transitions are journaled (the harness has
// wedged the store with fault injection, so any attempted write fails
// with ErrCrashed).  The journal file handles are released so a new
// Server can recover from the same directory in-process.
func (jm *jobManager) crash() {
	jm.mu.Lock()
	if !jm.closed {
		jm.closed = true
		close(jm.done)
	}
	jm.pending = make(map[string][]*job)
	jm.order = nil
	jm.queued = 0
	jm.mu.Unlock()
	jm.wg.Wait()
	if jm.store != nil {
		jm.store.Close()
	}
}
