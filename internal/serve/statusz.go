package serve

import (
	"html/template"
	"net/http"
	"runtime"
	"time"

	"wmstream"
	"wmstream/internal/cluster"
	"wmstream/internal/obs"
)

// GET /debug/statusz: a human-readable, dependency-free snapshot of
// the server — build, pool, cache, job tier, journal, runtime, and
// trace-collector state, plus the most recent slow/errored traces
// with links into /debug/traces.  One page to open first when the
// service misbehaves.

var statuszTmpl = template.Must(template.New("statusz").Parse(`<!DOCTYPE html>
<html><head><title>wmserved statusz</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; font-size: 0.9em; }
th { background: #f0f0f0; }
code { background: #f6f6f6; padding: 1px 4px; }
.err { color: #b00; }
</style></head><body>
<h1>wmserved</h1>
<table>
<tr><th>version</th><td>{{.Version}}</td></tr>
<tr><th>uptime</th><td>{{.Uptime}}</td></tr>
<tr><th>status</th><td>{{.Status}}</td></tr>
<tr><th>goroutines</th><td>{{.Goroutines}}</td></tr>
<tr><th>heap</th><td>{{.HeapBytes}} bytes</td></tr>
</table>

<h2>Pool</h2>
<table>
<tr><th>workers</th><td>{{.Workers}}</td></tr>
<tr><th>in flight</th><td>{{.InFlight}}</td></tr>
<tr><th>queue depth</th><td>{{.QueueDepth}}</td></tr>
</table>

<h2>Cache</h2>
<table>
<tr><th>entries</th><td>{{.Cache.Entries}}</td></tr>
<tr><th>bytes</th><td>{{.Cache.Bytes}}</td></tr>
<tr><th>hits</th><td>{{.Cache.Hits}}</td></tr>
<tr><th>misses</th><td>{{.Cache.Misses}}</td></tr>
<tr><th>evictions</th><td>{{.Cache.Evictions}}</td></tr>
</table>

<h2>Translation cache</h2>
<table>
<tr><th>entries</th><td>{{.TransCache.Entries}} / {{.TransCache.Cap}}</td></tr>
<tr><th>hits</th><td>{{.TransCache.Hits}}</td></tr>
<tr><th>misses</th><td>{{.TransCache.Misses}}</td></tr>
<tr><th>evictions</th><td>{{.TransCache.Evictions}}</td></tr>
</table>

{{if .Cluster}}
<h2>Cluster</h2>
<table>
<tr><th>self</th><td><code>{{.Cluster.Self}}</code></td></tr>
<tr><th>nodes</th><td>{{.Cluster.Nodes}} ({{.Cluster.VNodes}} vnodes each)</td></tr>
<tr><th>owned key fraction</th><td>{{printf "%.4f" .Cluster.OwnedFraction}}</td></tr>
<tr><th>peers up</th><td>{{.Cluster.PeersUp}} / {{len .Cluster.Peers}}</td></tr>
</table>
<table>
<tr><th>peer</th><th>addr</th><th>state</th><th>probes</th><th>failures</th><th>last error</th></tr>
{{range .Cluster.Peers}}
<tr>
<td><code>{{.ID}}</code></td>
<td>{{.Addr}}</td>
<td>{{if .Up}}up{{else}}<span class="err">down</span>{{end}}</td>
<td>{{.Probes}}</td>
<td>{{.Failures}}</td>
<td class="err">{{.LastError}}</td>
</tr>
{{end}}
</table>
{{end}}

<h2>Jobs</h2>
<table>
<tr><th>queued</th><td>{{.JobsQueued}}</td></tr>
<tr><th>running</th><td>{{.JobsRunning}}</td></tr>
<tr><th>held</th><td>{{.JobsHeld}}</td></tr>
<tr><th>journal</th><td>{{.JournalMode}}{{if .JournalReason}} <span class="err">({{.JournalReason}})</span>{{end}}</td></tr>
<tr><th>journal bytes</th><td>{{.JournalBytes}}</td></tr>
</table>

<h2>Traces</h2>
<table>
<tr><th>active</th><td>{{.Traces.Active}}</td></tr>
<tr><th>started</th><td>{{.Traces.Started}}</td></tr>
<tr><th>finished</th><td>{{.Traces.Finished}}</td></tr>
<tr><th>kept (recent ring)</th><td>{{.Traces.KeptHead}}</td></tr>
<tr><th>kept (slow ring)</th><td>{{.Traces.KeptSlow}}</td></tr>
<tr><th>discarded</th><td>{{.Traces.Discarded}}</td></tr>
<tr><th>slow threshold</th><td>{{.SlowThreshold}}</td></tr>
</table>

<h2>Recent slow/errored traces</h2>
{{if .Slow}}
<table>
<tr><th>trace</th><th>name</th><th>start</th><th>duration</th><th>spans</th><th>error</th></tr>
{{range .Slow}}
<tr>
<td><a href="/debug/traces/{{.TraceID}}"><code>{{.TraceID}}</code></a></td>
<td>{{.Name}}</td>
<td>{{.Start.Format "15:04:05.000"}}</td>
<td>{{printf "%.3f" .DurMs}} ms</td>
<td>{{.Spans}}</td>
<td class="err">{{.Error}}</td>
</tr>
{{end}}
</table>
{{else}}<p>none retained.</p>{{end}}

<p><a href="/debug/traces">trace index</a> · <a href="/metrics">metrics</a> · <a href="/healthz">healthz</a></p>
</body></html>
`))

// statuszSlowRow is one row of the slow-trace table.
type statuszSlowRow struct {
	TraceID string
	Name    string
	Start   time.Time
	DurMs   float64
	Spans   int
	Error   string
}

type statuszData struct {
	Version    string
	Uptime     time.Duration
	Status     string
	Goroutines int
	HeapBytes  uint64

	Workers    int
	InFlight   int64
	QueueDepth int

	Cache      CacheStats
	TransCache wmstream.TransCacheStats
	Cluster    *cluster.Health

	JobsQueued    int
	JobsRunning   int
	JobsHeld      int
	JournalMode   string
	JournalReason string
	JournalBytes  int64

	Traces        obs.CollectorStats
	SlowThreshold time.Duration
	Slow          []statuszSlowRow
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	jq, jr, jh := s.jobs.counts()
	d := statuszData{
		Version:       s.cfg.Version,
		Uptime:        time.Since(s.start).Round(time.Second),
		Status:        "ok",
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     ms.HeapAlloc,
		Workers:       s.pool.Workers(),
		InFlight:      s.pool.InFlight(),
		QueueDepth:    s.pool.QueueDepth(),
		Cache:         s.cache.Stats(),
		TransCache:    wmstream.TranslationCacheStats(),
		JobsQueued:    jq,
		JobsRunning:   jr,
		JobsHeld:      jh,
		JournalMode:   "memory",
		Traces:        s.traces.Stats(),
		SlowThreshold: s.traces.SlowThreshold(),
	}
	if s.draining.Load() {
		d.Status = "draining"
	}
	if cl := s.cfg.Cluster; cl != nil {
		snap := cl.Snapshot()
		d.Cluster = &snap
	}
	if st := s.jobs.store; st != nil {
		mode, reason := st.Mode()
		d.JournalMode = mode.String()
		d.JournalReason = reason
		d.JournalBytes = st.Bytes()
	}
	for _, t := range s.traces.SlowTraces(20) {
		d.Slow = append(d.Slow, statuszSlowRow{
			TraceID: t.TraceID,
			Name:    t.Name,
			Start:   t.Start,
			DurMs:   float64(t.DurUs) / 1000,
			Spans:   t.Spans,
			Error:   t.Error,
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	statuszTmpl.Execute(w, d)
}
