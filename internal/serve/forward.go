package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wmstream/internal/cluster"
	"wmstream/internal/obs"
)

// Cluster mode: the peer protocol between wmserved nodes.
//
// Every node runs the same serving pipeline; what the cluster adds is
// a routing decision in front of it.  The content address (cache Key)
// of a synchronous request is mapped through the consistent-hash ring
// to an owning node:
//
//   - forwarded request (X-WM-Forwarded present)  -> execute locally,
//     always: a forward is never re-forwarded, so routing is one hop
//     and loop-free by construction;
//   - owner == self                               -> execute locally
//     under the node's cache + singleflight;
//   - owner is a healthy peer                     -> relay the raw
//     request bytes to the owner's peer listener and stream its
//     response back byte-identically, annotated with X-WM-Node (who
//     executed) and the owner's X-Cache state;
//   - owner is down (probe or passive failure)    -> degrade: execute
//     locally, mark the response X-WM-Degraded.  Correctness is
//     unaffected — responses are a pure function of the content
//     address — only the at-most-once-compiled economy is, and only
//     while the owner is down.
//
// Because all nodes agree on ownership, every concurrent request for
// one key converges on the owner, whose node-local singleflight then
// collapses them: a key is compiled at most once cluster-wide without
// any cross-node locking.
const (
	// headerForwarded marks an internal node-to-node forward and names
	// the node that forwarded; its presence forces local execution.
	headerForwarded = "X-WM-Forwarded"
	// headerDeadline propagates the front node's absolute request
	// deadline (unix microseconds) so the owner's execution budget is
	// the time the client actually has left, not a fresh window.
	headerDeadline = "X-WM-Deadline"
	// headerNode names the node that actually executed the request.
	headerNode = "X-WM-Node"
	// headerDegraded marks a response served by local fallback because
	// the owning node was unreachable.
	headerDegraded = "X-WM-Degraded"
)

// forward outcomes for wmserved_cluster_forwards_total.
const (
	forwardOK    = "ok"    // relayed a peer response
	forwardError = "error" // transport failure mid-forward; degraded to local
	forwardDown  = "down"  // owner already marked down; degraded to local
)

// parseDeadline decodes an X-WM-Deadline header (unix microseconds).
func parseDeadline(h string) (time.Time, bool) {
	if h == "" {
		return time.Time{}, false
	}
	us, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.UnixMicro(us), true
}

// forwarded is a relayed peer response.
type forwarded struct {
	status int
	body   []byte
	cache  string // owner's X-Cache annotation
	node   string // owner's X-WM-Node (who executed)
}

// forwardSync relays one synchronous request to the owning peer and
// returns its response for byte-identical relay.  ok is false on a
// transport failure, in which case the peer has been passively marked
// down and the caller degrades to local execution.
func (s *Server) forwardSync(ctx context.Context, kind string, raw []byte, rt cluster.Route, budget time.Duration, root *obs.Span) (forwarded, bool) {
	cl := s.cfg.Cluster
	fsp := root.StartChild("cluster.forward")
	fsp.SetKind(obs.KindService)
	fsp.SetAttr("peer", rt.ID)

	// The transport gets slack beyond the execution budget so the
	// owner's own 504 (same budget, enforced server-side) is relayed
	// rather than clipped into a transport error here.
	fctx, cancel := context.WithTimeout(ctx, budget+2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, rt.Addr+"/"+kind, bytes.NewReader(raw))
	if err != nil {
		return s.forwardFailed(ctx, rt, fsp, err), false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwarded, cl.Self())
	req.Header.Set(headerDeadline, strconv.FormatInt(time.Now().Add(budget).UnixMicro(), 10))
	if root != nil {
		// The owner's trace continues this one: same trace ID, parented
		// under the forward span, so /debug/traces/{id} on the owner
		// shows the execution as a child of this hop.
		req.Header.Set("traceparent", obs.FormatTraceparent(root.Trace().ID(), fsp.ID(), true))
	}

	resp, err := cl.Do(req)
	if err != nil {
		return s.forwardFailed(ctx, rt, fsp, err), false
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return s.forwardFailed(ctx, rt, fsp, err), false
	}
	s.metrics.forwards.add(fmt.Sprintf(`peer=%q,outcome=%q`, rt.ID, forwardOK), 1)
	fsp.SetAttrInt("status", int64(resp.StatusCode))
	fsp.SetAttr("cache", resp.Header.Get("X-Cache"))
	fsp.End()
	return forwarded{
		status: resp.StatusCode,
		body:   body,
		cache:  resp.Header.Get("X-Cache"),
		node:   resp.Header.Get(headerNode),
	}, true
}

// forwardFailed records a mid-forward transport failure: the peer is
// passively marked down (the probe loop brings it back) and the
// request degrades to local execution.  A failure caused by the
// requester's own cancellation says nothing about the peer's health —
// the owner may well have finished the work — so it is counted but
// never marks the peer down.
func (s *Server) forwardFailed(ctx context.Context, rt cluster.Route, fsp *obs.Span, err error) forwarded {
	if ctx.Err() == nil {
		s.cfg.Cluster.MarkDown(rt.ID, err.Error())
	}
	s.metrics.forwards.add(fmt.Sprintf(`peer=%q,outcome=%q`, rt.ID, forwardError), 1)
	fsp.EndErr(err)
	return forwarded{}
}
