package serve

import "sync"

// flightResult is the outcome one in-flight execution hands to every
// request coalesced onto it: an HTTP status and a fully rendered
// response body.
type flightResult struct {
	status int
	body   []byte
}

type flight struct {
	done   chan struct{}
	res    flightResult
	leader string // leader's trace ID, for followers' attach spans
}

// flightGroup coalesces concurrent requests for the same content
// address: the first caller for a key (the leader) runs fn, everyone
// arriving before it finishes blocks and shares the leader's result.
// The flight is forgotten before its result is published, so requests
// arriving after completion start fresh (and normally hit the cache
// instead).
type flightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

// Do returns fn's result for the key, executing fn at most once among
// concurrent callers.  shared is false for the leader that actually
// ran fn and true for coalesced waiters.  self is the caller's trace
// ID; followers get the leader's back, so their traces can point at
// the trace that actually holds the execution spans.
func (g *flightGroup) Do(k Key, self string, fn func() flightResult) (res flightResult, shared bool, leader string) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[Key]*flight)
	}
	if f, ok := g.flights[k]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, true, f.leader
	}
	f := &flight{done: make(chan struct{}), leader: self}
	g.flights[k] = f
	g.mu.Unlock()

	f.res = fn()

	g.mu.Lock()
	delete(g.flights, k)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, self
}
