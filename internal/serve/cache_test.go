package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func testKey(n byte) Key {
	var k Key
	k[0] = n
	return k
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(testKey(1), []byte("body"))
	got, ok := c.Get(testKey(1))
	if !ok || !bytes.Equal(got, []byte("body")) {
		t.Fatalf("get after put: %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestCacheEviction fills past the byte budget and checks the
// least-recently-used entries go first.
func TestCacheEviction(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 100)
	cost := int64(len(body)) + entryOverhead
	c := NewCache(3 * cost) // room for exactly three entries

	for n := byte(0); n < 3; n++ {
		c.Put(testKey(n), body)
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("prefill stats %+v", st)
	}

	// Touch 0 so 1 is the LRU entry, then overflow.
	c.Get(testKey(0))
	c.Put(testKey(3), body)

	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("post-evict stats %+v, want 3 entries, 1 eviction", st)
	}
	if st.Bytes > 3*cost {
		t.Fatalf("bytes %d over budget %d", st.Bytes, 3*cost)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, n := range []byte{0, 2, 3} {
		if _, ok := c.Get(testKey(n)); !ok {
			t.Fatalf("entry %d was evicted, want only entry 1 gone", n)
		}
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := NewCache(64)
	c.Put(testKey(1), bytes.Repeat([]byte("x"), 1024))
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized body cached: %+v", st)
	}
}

func TestCacheDuplicatePut(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put(testKey(1), []byte("body"))
	c.Put(testKey(1), []byte("body")) // same content address, same bytes
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("duplicate put created %d entries", st.Entries)
	}
	if want := int64(4) + entryOverhead; st.Bytes != want {
		t.Fatalf("bytes %d, want %d (no double count)", st.Bytes, want)
	}
}

func TestPoolOverload(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(1, 1)
	defer p.Close()
	defer close(release)

	started := make(chan struct{})
	errs := make(chan error, 2)
	go func() {
		errs <- p.Do(context.Background(), func(context.Context) {
			close(started)
			<-release
		})
	}()
	<-started // worker busy
	go func() {
		errs <- p.Do(context.Background(), func(context.Context) {})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never showed up")
		}
		time.Sleep(time.Millisecond)
	}

	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("blocked task %d: %v", i, err)
		}
	}
}

func TestPoolSkipsExpiredTasks(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(1, 4)
	defer p.Close()

	go p.Do(context.Background(), func(context.Context) { <-release })
	deadline := time.Now().Add(5 * time.Second)
	for p.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first task never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	errc := make(chan error, 1)
	go func() { errc <- p.Do(ctx, func(context.Context) { ran = true }) }()
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("expired task never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(release) // free the worker so it reaches the expired task
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("expired task body ran")
	}
}

func TestPoolDraining(t *testing.T) {
	p := NewPool(2, 4)
	var mu sync.Mutex
	ran := 0
	for n := 0; n < 4; n++ {
		go p.Do(context.Background(), func(context.Context) {
			mu.Lock()
			ran++
			mu.Unlock()
		})
	}
	p.Close()
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	p.Close() // idempotent
}

func TestFlightGroupSharing(t *testing.T) {
	var g flightGroup
	const n = 8
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	runs := 0

	var wg sync.WaitGroup
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, sh, _ := g.Do(testKey(1), "", func() flightResult {
				once.Do(func() { close(entered) })
				runs++
				<-release
				return flightResult{status: 200, body: []byte("shared")}
			})
			shared[i] = sh
			if res.status != 200 || string(res.body) != "shared" {
				t.Errorf("goroutine %d: got %d %q", i, res.status, res.body)
			}
		}(i)
	}
	<-entered
	time.Sleep(20 * time.Millisecond) // let the others reach the flight
	close(release)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	leaders := 0
	for _, sh := range shared {
		if !sh {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}

	// The flight is forgotten after completion: a later call runs fresh.
	fresh := false
	g.Do(testKey(1), "", func() flightResult {
		fresh = true
		return flightResult{}
	})
	if !fresh {
		t.Fatal("completed flight was not forgotten")
	}
}

func TestLoadReportString(t *testing.T) {
	rep := &LoadReport{
		Requests: 10,
		ByStatus: map[int]int64{200: 9, 429: 1},
		ByCache:  map[string]int64{"hit": 5, "miss": 4},
		Elapsed:  2 * time.Second,
		P50:      time.Millisecond,
		P95:      2 * time.Millisecond,
		P99:      3 * time.Millisecond,
		Max:      4 * time.Millisecond,
	}
	s := rep.String()
	for _, want := range []string{"status 200: 9", "status 429: 1", "hit", "p50 1ms"} {
		if !contains(s, want) {
			t.Errorf("report missing %q in:\n%s", want, s)
		}
	}
	if rep.RPS() != 5 {
		t.Fatalf("RPS = %g, want 5", rep.RPS())
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestMissProgramUnique(t *testing.T) {
	seen := map[string]bool{}
	for n := int64(0); n < 100; n++ {
		src := missProgram(n)
		if seen[src] {
			t.Fatalf("missProgram(%d) repeats", n)
		}
		seen[src] = true
	}
}
