package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// slowSrc simulates long enough (tens of millions of naive-code
// cycles at O0) that a job is observably running before it finishes.
const slowSrc = `int main(void) {
    int i; double s;
    s = 0.0;
    for (i = 0; i < 2000000; i++) s = s + i * 0.5;
    putd(s);
    return 0;
}`

func submitJob(t *testing.T, ts *httptest.Server, req *JobRequest) (reply, JobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal job request: %v", err)
	}
	res := postRaw(t, ts, "/jobs", body)
	var jr JobResponse
	if res.status == http.StatusAccepted {
		if err := json.Unmarshal(res.body, &jr); err != nil {
			t.Fatalf("bad job JSON: %v\n%s", err, res.body)
		}
	}
	return res, jr
}

func getJob(t *testing.T, ts *httptest.Server, id, query string) (int, JobResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + query)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("bad job JSON: %v", err)
		}
	}
	return resp.StatusCode, jr
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) (int, JobResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatalf("build DELETE: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("bad job JSON: %v", err)
		}
	}
	return resp.StatusCode, jr
}

// waitTerminal long-polls generations until the job reaches a terminal
// state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, gen int64) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, jr := getJob(t, ts, id, fmt.Sprintf("?gen=%d&wait=2s", gen))
		if status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		switch jr.State {
		case "done", "failed", "canceled":
			return jr
		}
		gen = jr.Gen
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobResponse{}
}

// TestJobLifecycle: submit → (queued|running) → long-poll to done →
// result carries the run response → delete removes it.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{JobProgressEvery: time.Millisecond})

	res, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit status %d, body %s", res.status, res.body)
	}
	if jr.ID == "" || (jr.State != "queued" && jr.State != "running") {
		t.Fatalf("submit returned %+v", jr)
	}

	done := waitTerminal(t, ts, jr.ID, jr.Gen)
	if done.State != "done" {
		t.Fatalf("terminal state %q (error %q), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Output != "45" {
		t.Fatalf("result %+v, want output 45", done.Result)
	}
	if done.Result.Cycles <= 0 || done.Result.Instructions <= 0 {
		t.Fatalf("result missing stats: %+v", done.Result)
	}
	if done.Progress == nil {
		t.Fatalf("terminal job carries no progress snapshot")
	}
	if done.Gen <= jr.Gen {
		t.Fatalf("gen did not advance: submit %d, terminal %d", jr.Gen, done.Gen)
	}
	if done.ExpiresInSeconds <= 0 {
		t.Fatalf("terminal job has no TTL: %+v", done)
	}

	// A plain GET (no long-poll) returns the same terminal state.
	if status, again := getJob(t, ts, jr.ID, ""); status != http.StatusOK || again.State != "done" {
		t.Fatalf("re-GET: status %d state %q", status, again.State)
	}

	// DELETE on a terminal job removes it immediately.
	if status, _ := deleteJob(t, ts, jr.ID); status != http.StatusOK {
		t.Fatalf("delete status %d", status)
	}
	if status, _ := getJob(t, ts, jr.ID, ""); status != http.StatusNotFound {
		t.Fatalf("status %d after delete, want 404", status)
	}
}

// TestJobFailure: a program that deadlocks surfaces as state "failed"
// with the simulator's diagnostic, not as an HTTP error.
func TestJobFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// MaxCycles traps mid-run: a property of the request, so the job
	// fails cleanly.
	res, jr := submitJob(t, ts, &JobRequest{
		Request: Request{Source: helloSrc, Machine: &MachineSpec{MaxCycles: 10}},
	})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit status %d", res.status)
	}
	done := waitTerminal(t, ts, jr.ID, jr.Gen)
	if done.State != "failed" {
		t.Fatalf("state %q, want failed", done.State)
	}
	if done.Error == "" || done.Result != nil {
		t.Fatalf("failed job: error %q result %+v", done.Error, done.Result)
	}
}

// TestJobCancelRunning: DELETE on a running job cancels the
// simulation promptly.
func TestJobCancelRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{JobProgressEvery: time.Millisecond})
	res, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: slowSrc, Level: intp(0)}})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit status %d", res.status)
	}
	// Wait for it to be observably running (or already finished on a
	// very fast host — then the test degenerates to terminal delete).
	gen := jr.Gen
	for {
		status, cur := getJob(t, ts, jr.ID, fmt.Sprintf("?gen=%d&wait=2s", gen))
		if status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		gen = cur.Gen
		if cur.State != "queued" {
			break
		}
	}
	start := time.Now()
	if status, _ := deleteJob(t, ts, jr.ID); status != http.StatusOK {
		t.Fatalf("delete status %d", status)
	}
	done := waitTerminal(t, ts, jr.ID, 0)
	if done.State != "canceled" && done.State != "done" {
		t.Fatalf("state %q after cancel, want canceled (or done on a fast host)", done.State)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
}

// TestJobCancelQueued: with a single busy worker, a queued job cancels
// without ever running.
func TestJobCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	_, blocker := submitJob(t, ts, &JobRequest{Request: Request{Source: slowSrc, Level: intp(0)}})
	res, queued := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	if res.status != http.StatusAccepted {
		t.Fatalf("submit status %d", res.status)
	}
	status, jr := deleteJob(t, ts, queued.ID)
	if status != http.StatusOK {
		t.Fatalf("delete status %d", status)
	}
	if jr.State != "canceled" {
		t.Fatalf("state %q after queued cancel, want canceled", jr.State)
	}
	deleteJob(t, ts, blocker.ID)
}

// TestJobAdmission: the total queue cap and the per-tenant cap both
// shed with 429, and the caps are independent.
func TestJobAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 2, JobTenantQueue: 1})
	// Occupy the single worker so subsequent submissions stay queued.
	_, blocker := submitJob(t, ts, &JobRequest{Request: Request{Source: slowSrc, Level: intp(0)}})
	waitState := func(id string, not string) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, cur := getJob(t, ts, id, ""); cur.State != not {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("job %s still %s", id, not)
	}
	waitState(blocker.ID, "queued")

	res, _ := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}, Tenant: "a"})
	if res.status != http.StatusAccepted {
		t.Fatalf("tenant a submit status %d", res.status)
	}
	// Tenant a is at its per-tenant cap.
	res, _ = submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}, Tenant: "a"})
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("tenant a over-cap status %d, want 429", res.status)
	}
	if !strings.Contains(string(res.body), "tenant") {
		t.Fatalf("over-cap body %s, want tenant message", res.body)
	}
	// A different tenant still gets in...
	res, _ = submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}, Tenant: "b"})
	if res.status != http.StatusAccepted {
		t.Fatalf("tenant b submit status %d", res.status)
	}
	// ...until the total cap (2 queued) sheds everyone.
	res, _ = submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}, Tenant: "c"})
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("over total cap status %d, want 429", res.status)
	}
	deleteJob(t, ts, blocker.ID)
}

// TestJobTTLExpiry: terminal jobs disappear after JobTTL.
func TestJobTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: 50 * time.Millisecond})
	_, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	done := waitTerminal(t, ts, jr.ID, jr.Gen)
	if done.State != "done" {
		t.Fatalf("state %q, want done", done.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if status, _ := getJob(t, ts, jr.ID, ""); status == http.StatusNotFound {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("terminal job never expired")
}

// TestSoakJobs drives the job tier with the wmload generator: every
// iteration submits, long-polls, and occasionally cancels.  The default
// duration keeps `go test` quick; CI's race-soak job sets
// WMSERVE_SOAK=30s.
func TestSoakJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak in -short mode")
	}
	dur := 2 * time.Second
	if env := os.Getenv("WMSERVE_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad WMSERVE_SOAK %q: %v", env, err)
		}
		dur = d
	}
	_, ts := newTestServer(t, Config{
		JobWorkers:       4,
		JobQueueDepth:    64,
		JobTenantQueue:   32,
		JobProgressEvery: time.Millisecond,
	})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Duration:    dur,
		Concurrency: 8,
		JobFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
	if rep.ByJobState["done"] == 0 {
		t.Fatal("soak completed no jobs")
	}
	if rep.ByEndpoint["jobs"].Requests == 0 || rep.ByEndpoint["jobs-poll"].Requests == 0 {
		t.Fatalf("per-endpoint latency missing job traffic: %+v", rep.ByEndpoint)
	}
}

// TestJobMetrics: the job tier shows up in /metrics.
func TestJobMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, jr := submitJob(t, ts, &JobRequest{Request: Request{Source: helloSrc}})
	waitTerminal(t, ts, jr.ID, jr.Gen)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		`wmserved_jobs_total{event="submitted"} 1`,
		`wmserved_jobs_total{event="completed"} 1`,
		"wmserved_jobs_queued",
		"wmserved_jobs_running",
		"wmserved_jobs_held",
		`wmserved_request_duration_seconds_count{endpoint="jobs"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
