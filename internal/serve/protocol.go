package serve

import (
	"crypto/sha256"
	"fmt"
	"io"

	"wmstream"
	"wmstream/internal/cluster"
)

// Request is the JSON body accepted by POST /compile and POST /run.
// Level selects a canonical optimization level (default 3); Options,
// when present, overrides Level with explicit optimizer switches.
// Machine overrides individual simulated-machine parameters and is
// meaningful only for /run.
type Request struct {
	Source  string       `json:"source"`
	Level   *int         `json:"level,omitempty"`
	Options *Options     `json:"options,omitempty"`
	Machine *MachineSpec `json:"machine,omitempty"`
}

// Options mirrors wmstream.Options for the wire.
type Options struct {
	Standard            bool  `json:"standard"`
	Recurrence          bool  `json:"recurrence"`
	Stream              bool  `json:"stream"`
	StrengthReduce      bool  `json:"strength_reduce"`
	Combine             bool  `json:"combine"`
	MinTrip             int64 `json:"min_trip,omitempty"`
	MaxRecurrenceDegree int64 `json:"max_recurrence_degree,omitempty"`
}

// MachineSpec mirrors wmstream.Machine for the wire; zero fields keep
// the server's defaults.
type MachineSpec struct {
	MemLatency    int   `json:"mem_latency,omitempty"`
	MemPorts      int   `json:"mem_ports,omitempty"`
	FIFODepth     int   `json:"fifo_depth,omitempty"`
	QueueDepth    int   `json:"queue_depth,omitempty"`
	NumSCU        int   `json:"num_scu,omitempty"`
	WatchdogSlack int   `json:"watchdog_slack,omitempty"`
	MaxCycles     int64 `json:"max_cycles,omitempty"`
	// Engine selects the simulation engine: "" or "auto" (default,
	// resolves to the translated engine), "translated", "fast", or
	// "reference".  All engines produce identical results; the knob
	// exists for validation and benchmarking.
	Engine string `json:"engine,omitempty"`
}

// JobRequest is the JSON body accepted by POST /jobs: a /run request
// plus scheduling metadata.  Tenant groups jobs for fair dispatch and
// per-tenant admission ("" is the anonymous tenant).
type JobRequest struct {
	Request
	Tenant string `json:"tenant,omitempty"`
}

// JobProgress is a point-in-time snapshot of a running job's
// simulation.
type JobProgress struct {
	Cycles         int64   `json:"cycles"`
	Instructions   int64   `json:"instructions"`
	MemReads       int64   `json:"mem_reads"`
	MemWrites      int64   `json:"mem_writes"`
	StreamElems    int64   `json:"stream_elems"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// JobResponse is the body of POST /jobs (202) and GET /jobs/{id}.
// Gen increments on every observable change (state transitions and
// progress updates); pollers pass it back as ?gen=N to long-poll for
// the next change.
type JobResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"` // queued | running | done | failed | canceled
	Gen    int64  `json:"gen"`
	Tenant string `json:"tenant,omitempty"`
	// Progress is present once the job has run at least one slice.
	Progress *JobProgress `json:"progress,omitempty"`
	// Result is present in state "done".
	Result *RunResponse `json:"result,omitempty"`
	// Error and Diagnostics are present in state "failed".
	Error       string       `json:"error,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	// ExpiresInSeconds is how long a terminal job remains pollable
	// before the TTL janitor deletes it.
	ExpiresInSeconds float64 `json:"expires_in_seconds,omitempty"`
	// Attempts counts executions of this job, including the current
	// one: >1 means the run was retried after a transient failure or
	// resumed after a restart.
	Attempts int `json:"attempts,omitempty"`
	// TraceID identifies the job's end-to-end trace (browsable at
	// GET /debug/traces/{trace_id}); stable across a crash-resume.
	TraceID string `json:"trace_id,omitempty"`
}

// Diagnostic is the wire form of wmstream.Diagnostic.
type Diagnostic struct {
	Severity string `json:"severity"`
	Stage    string `json:"stage,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Pass     string `json:"pass,omitempty"`
	Func     string `json:"func,omitempty"`
	Msg      string `json:"msg"`
}

// CompileResponse is the success body of POST /compile.  The listing
// carries "@line" debug annotations, so it round-trips through
// wmstream.Assemble with the source-level profiler intact.
type CompileResponse struct {
	Listing     string       `json:"listing"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// RunResponse is the success body of POST /run.
type RunResponse struct {
	Listing      string       `json:"listing"`
	Diagnostics  []Diagnostic `json:"diagnostics,omitempty"`
	Cycles       int64        `json:"cycles"`
	Instructions int64        `json:"instructions"`
	MemReads     int64        `json:"mem_reads"`
	MemWrites    int64        `json:"mem_writes"`
	StreamElems  int64        `json:"stream_elems"`
	Output       string       `json:"output"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error       string       `json:"error"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string      `json:"status"` // "ok" or "draining"
	Version       string      `json:"version"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	QueueDepth    int         `json:"queue_depth"`
	InFlight      int64       `json:"in_flight"`
	Cache         CacheStats  `json:"cache"`
	Jobs          *JobsHealth `json:"jobs,omitempty"`
	// Cluster reports this node's cluster view — membership, per-peer
	// up/down state, and the owned share of the key space — when the
	// server runs in cluster mode.
	Cluster *cluster.Health `json:"cluster,omitempty"`
}

// JobsHealth reports the durable job tier's state: which journal mode
// the store is in ("durable", "degraded" after an I/O failure,
// "crashed" under fault injection, or "memory" when no -job-dir is
// configured), and what the last boot recovered.
type JobsHealth struct {
	JournalMode   string       `json:"journal_mode"`
	JournalReason string       `json:"journal_reason,omitempty"`
	JournalBytes  int64        `json:"journal_bytes,omitempty"`
	DroppedWrites int64        `json:"dropped_writes,omitempty"`
	Recovery      RecoveryInfo `json:"recovery"`
}

// options resolves the request's optimizer configuration: explicit
// Options win; otherwise the level (default 3).
func (r *Request) options() wmstream.Options {
	if r.Options != nil {
		return wmstream.Options{
			Standard:            r.Options.Standard,
			Recurrence:          r.Options.Recurrence,
			Stream:              r.Options.Stream,
			StrengthReduce:      r.Options.StrengthReduce,
			Combine:             r.Options.Combine,
			MinTrip:             r.Options.MinTrip,
			MaxRecurrenceDegree: r.Options.MaxRecurrenceDegree,
		}
	}
	return wmstream.LevelOptions(r.level())
}

func (r *Request) level() int {
	if r.Level == nil {
		return 3
	}
	return *r.Level
}

// levelLabel names the request's optimization configuration for the
// per-O-level compile counters: "O0".."O3", or "custom" when explicit
// options are given.
func (r *Request) levelLabel() string {
	if r.Options != nil {
		return "custom"
	}
	return fmt.Sprintf("O%d", r.level())
}

// machine resolves the simulated machine configuration.
func (r *Request) machine() wmstream.Machine {
	m := wmstream.DefaultMachine()
	if s := r.Machine; s != nil {
		if s.MemLatency > 0 {
			m.MemLatency = s.MemLatency
		}
		if s.MemPorts > 0 {
			m.MemPorts = s.MemPorts
		}
		if s.FIFODepth > 0 {
			m.FIFODepth = s.FIFODepth
		}
		if s.QueueDepth > 0 {
			m.QueueDepth = s.QueueDepth
		}
		if s.NumSCU > 0 {
			m.NumSCU = s.NumSCU
		}
		if s.WatchdogSlack > 0 {
			m.WatchdogSlack = s.WatchdogSlack
		}
		if s.MaxCycles > 0 {
			m.MaxCycles = s.MaxCycles
		}
		if s.Engine != "" {
			m.Engine = s.Engine
		}
	}
	return m
}

// validate rejects requests the server will not attempt.
func (r *Request) validate(maxSource int64) error {
	if r.Source == "" {
		return fmt.Errorf("missing source")
	}
	if int64(len(r.Source)) > maxSource {
		return fmt.Errorf("source too large: %d bytes (limit %d)", len(r.Source), maxSource)
	}
	if r.Level != nil && (*r.Level < 0 || *r.Level > 3) {
		return fmt.Errorf("level must be 0..3, got %d", *r.Level)
	}
	if r.Machine != nil {
		switch r.Machine.Engine {
		case "", "auto", "translated", "fast", "reference":
		default:
			return fmt.Errorf("engine must be auto, translated, fast, or reference, got %q", r.Machine.Engine)
		}
	}
	return nil
}

// Key is a content address: the SHA-256 of everything that determines
// a response — the endpoint, the resolved optimizer options, the
// resolved machine configuration, and the source text.  Two requests
// with the same Key are guaranteed the same (byte-identical) success
// response, which is what makes the cache and the request coalescer
// sound.
type Key [sha256.Size]byte

func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// cacheKey computes the request's content address for one endpoint
// ("compile" or "run").  The resolved forms are hashed — a request
// saying `"level": 3` and one spelling out the equivalent options
// share an entry — and the encoding is versioned so a protocol change
// invalidates old entries rather than aliasing them.
func (r *Request) cacheKey(kind string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "wmserved/2\x00%s\x00opts=%+v\x00", kind, r.options())
	if kind == kindRun {
		fmt.Fprintf(h, "mach=%+v\x00", r.machine())
	}
	io.WriteString(h, r.Source)
	var k Key
	h.Sum(k[:0])
	return k
}

func toWireDiags(ds []wmstream.Diagnostic) []Diagnostic {
	if len(ds) == 0 {
		return nil
	}
	out := make([]Diagnostic, len(ds))
	for n, d := range ds {
		out[n] = Diagnostic{
			Severity: d.Severity.String(),
			Stage:    d.Stage,
			Line:     d.Line,
			Col:      d.Col,
			Pass:     d.Pass,
			Func:     d.Func,
			Msg:      d.Msg,
		}
	}
	return out
}
