package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wmstream/internal/cluster"
	"wmstream/internal/obs"

	"context"
)

// The in-process cluster harness: N full Servers, each fronted by an
// httptest listener, wired into one consistent-hash cluster.  The
// chicken-and-egg between "peer addresses exist only after the
// listeners start" and "a Server needs its Cluster at construction"
// is broken by a swappable handler: listeners come up first answering
// 503, then the real Servers are built against the now-known peer
// list and swapped in.

type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

type clusterNode struct {
	id  string
	srv *Server
	ts  *httptest.Server
	cl  *cluster.Cluster
}

type testCluster struct {
	nodes []*clusterNode

	mu       sync.Mutex
	compiles map[Key]int    // per-key executions, cluster-wide
	byNode   map[string]int // per-node executions
}

// newTestCluster brings up an n-node cluster.  mutate, when non-nil,
// adjusts one node's Config before construction (e.g. a short
// RequestTimeout on the front node of the deadline test).
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		compiles: make(map[Key]int),
		byNode:   make(map[string]int),
	}
	swaps := make([]*swapHandler, n)
	peers := make([]cluster.Peer, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), Addr: ts.URL}
		tc.nodes = append(tc.nodes, &clusterNode{id: peers[i].ID, ts: ts})
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{Self: peers[i].ID, Peers: peers})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		id := peers[i].ID
		cfg := Config{
			Cluster: cl,
			CompileHook: func(key Key) {
				tc.mu.Lock()
				tc.compiles[key]++
				tc.byNode[id]++
				tc.mu.Unlock()
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		swaps[i].h.Store(http.Handler(srv))
		tc.nodes[i].srv, tc.nodes[i].cl = srv, cl
		t.Cleanup(srv.Close)
		t.Cleanup(cl.Close)
	}
	return tc
}

// compileCount reads one key's cluster-wide execution count.
func (tc *testCluster) compileCount(key Key) int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.compiles[key]
}

// owner is the cluster-wide ownership decision for a request (all
// nodes agree, so any view answers).
func (tc *testCluster) owner(kind string, req *Request) string {
	key := req.cacheKey(kind)
	return tc.nodes[0].cl.Route(key[:]).ID
}

// requestOwnedBy searches the unique-program space for a run request
// whose content address lands on the wanted node.
func (tc *testCluster) requestOwnedBy(t *testing.T, kind, want string, salt int64) *Request {
	t.Helper()
	for n := int64(0); n < 4096; n++ {
		req := &Request{Source: missProgram(salt<<16 | n), Level: intp(2)}
		if tc.owner(kind, req) == want {
			return req
		}
	}
	t.Fatalf("no request owned by %s in 4096 candidates", want)
	return nil
}

type clusterReply struct {
	status   int
	cache    string // X-Cache
	node     string // X-WM-Node: who executed
	degraded string // X-WM-Degraded
	trace    string // X-WM-Trace-Id
	body     []byte
}

func (tc *testCluster) post(t *testing.T, nodeIdx int, endpoint string, req *Request, hdr http.Header) clusterReply {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, tc.nodes[nodeIdx].ts.URL+endpoint, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			hreq.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s via %s: %v", endpoint, tc.nodes[nodeIdx].id, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return clusterReply{
		status:   resp.StatusCode,
		cache:    resp.Header.Get("X-Cache"),
		node:     resp.Header.Get("X-WM-Node"),
		degraded: resp.Header.Get("X-WM-Degraded"),
		trace:    resp.Header.Get("X-WM-Trace-Id"),
		body:     b,
	}
}

// get fetches a URL from one node and returns status plus body.
func (tc *testCluster) get(t *testing.T, nodeIdx int, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(tc.nodes[nodeIdx].ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s via %s: %v", path, tc.nodes[nodeIdx].id, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// sumMetric sums every sample of a counter family whose label string
// contains all the given substrings.
func sumMetric(body []byte, name string, contains ...string) int64 {
	var total int64
scan:
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue // a different family sharing the prefix
		}
		for _, c := range contains {
			if !strings.Contains(rest, c) {
				continue scan
			}
		}
		fields := strings.Fields(rest)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total
}

// TestClusterByteIdenticalAnyEntryNode: the same request through every
// entry node returns the same bytes, executed by the one owning node,
// and is compiled exactly once cluster-wide.
func TestClusterByteIdenticalAnyEntryNode(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	for i, kind := range []string{kindCompile, kindRun, kindRun} {
		req := &Request{Source: missProgram(int64(7000 + i)), Level: intp(3)}
		owner := tc.owner(kind, req)
		key := req.cacheKey(kind)

		var bodies [][]byte
		for entry := range tc.nodes {
			rep := tc.post(t, entry, "/"+kind, req, nil)
			if rep.status != http.StatusOK {
				t.Fatalf("%s via %s: status %d, body %s", kind, tc.nodes[entry].id, rep.status, rep.body)
			}
			if rep.node != owner {
				t.Fatalf("%s via %s: executed on %q, ring owner is %q", kind, tc.nodes[entry].id, rep.node, owner)
			}
			if rep.degraded != "" {
				t.Fatalf("%s via %s: unexpected degraded marker %q", kind, tc.nodes[entry].id, rep.degraded)
			}
			bodies = append(bodies, rep.body)
		}
		for n := 1; n < len(bodies); n++ {
			if !bytes.Equal(bodies[0], bodies[n]) {
				t.Fatalf("%s: entry node %d returned different bytes:\n%s\nvs\n%s", kind, n, bodies[0], bodies[n])
			}
		}
		if got := tc.compileCount(key); got != 1 {
			t.Fatalf("%s key %s: compiled %d times across the cluster, want 1", kind, key, got)
		}
	}
}

// TestClusterCompileOnceUnderConcurrency: 64 concurrent clients spread
// over all three entry nodes, hammering a small set of unique keys;
// ownership plus the owner's singleflight must collapse every key to
// exactly one execution.
func TestClusterCompileOnceUnderConcurrency(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	const unique = 8
	reqs := make([]*Request, unique)
	keys := make([]Key, unique)
	for i := range reqs {
		reqs[i] = &Request{Source: missProgram(int64(9100 + i)), Level: intp(2)}
		keys[i] = reqs[i].cacheKey(kindRun)
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		got    = make(map[int][][]byte) // request index -> bodies seen
		failed atomic.Int64
	)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for n := 0; n < 4; n++ {
				ri := rng.Intn(unique)
				rep := tc.post(t, rng.Intn(len(tc.nodes)), "/run", reqs[ri], nil)
				if rep.status != http.StatusOK {
					failed.Add(1)
					continue
				}
				mu.Lock()
				got[ri] = append(got[ri], rep.body)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d requests failed", n)
	}
	for ri, bodies := range got {
		for n := 1; n < len(bodies); n++ {
			if !bytes.Equal(bodies[0], bodies[n]) {
				t.Fatalf("request %d: divergent bodies under concurrency", ri)
			}
		}
	}
	total := 0
	for i, key := range keys {
		c := tc.compileCount(key)
		if c != 1 {
			t.Errorf("key %d (%s): compiled %d times, want exactly 1", i, key, c)
		}
		total += c
	}
	if total != unique {
		t.Fatalf("total executions %d != unique keys %d", total, unique)
	}
}

// TestClusterOwnerDownDegrades: with the owning node dead, entry nodes
// fall back to local execution — marked degraded, still 200, still
// byte-identical everywhere — and service continues for keys owned by
// live nodes.
func TestClusterOwnerDownDegrades(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	victim := 2
	req := tc.requestOwnedBy(t, kindRun, "n2", 11)
	tc.nodes[victim].ts.Close()
	tc.nodes[victim].srv.Close()

	// First request from n0: the forward fails in transport, the peer is
	// passively marked down, and the request degrades to local.
	rep0 := tc.post(t, 0, "/run", req, nil)
	if rep0.status != http.StatusOK {
		t.Fatalf("degraded request: status %d, body %s", rep0.status, rep0.body)
	}
	if rep0.degraded == "" || !strings.Contains(rep0.degraded, "n2") {
		t.Fatalf("degraded request: X-WM-Degraded = %q, want owner n2 marker", rep0.degraded)
	}
	if rep0.node != "n0" {
		t.Fatalf("degraded request executed on %q, want local n0", rep0.node)
	}
	if tc.nodes[0].cl.PeerUp("n2") {
		t.Fatal("n2 still believed up after a failed forward")
	}

	// Second request from n0: the owner is already known down, so no
	// forward is attempted and the locally cached degraded body serves.
	rep0b := tc.post(t, 0, "/run", req, nil)
	if rep0b.status != http.StatusOK || rep0b.cache != "hit" {
		t.Fatalf("second degraded request: status %d cache %q, want 200 hit", rep0b.status, rep0b.cache)
	}

	// A different entry node degrades independently to identical bytes:
	// responses are a pure function of the content address.
	rep1 := tc.post(t, 1, "/run", req, nil)
	if rep1.status != http.StatusOK || rep1.degraded == "" {
		t.Fatalf("degraded via n1: status %d degraded %q", rep1.status, rep1.degraded)
	}
	if !bytes.Equal(rep0.body, rep1.body) {
		t.Fatalf("degraded fallbacks diverged:\n%s\nvs\n%s", rep0.body, rep1.body)
	}

	// Keys owned by live nodes still route normally.
	alive := tc.requestOwnedBy(t, kindRun, "n1", 12)
	repA := tc.post(t, 0, "/run", alive, nil)
	if repA.status != http.StatusOK || repA.node != "n1" || repA.degraded != "" {
		t.Fatalf("live-owner request: status %d node %q degraded %q", repA.status, repA.node, repA.degraded)
	}

	// The down outcome is visible in the entry node's metrics.
	_, metrics := tc.get(t, 0, "/metrics")
	if sumMetric(metrics, "wmserved_cluster_forwards_total", `peer="n2"`, `outcome="error"`) == 0 {
		t.Fatal("no forwards{n2,error} recorded for the failed forward")
	}
	if sumMetric(metrics, "wmserved_cluster_forwards_total", `peer="n2"`, `outcome="down"`) == 0 {
		t.Fatal("no forwards{n2,down} recorded for the known-down degrade")
	}
	if sumMetric(metrics, "wmserved_cluster_peer_up", `peer="n2"`) != 0 {
		t.Fatal("peer_up{n2} still 1 on /metrics")
	}
}

// TestClusterForwardPropagatesDeadline: the front node's deadline caps
// the owner's execution budget, so the owner returns the 504 (relayed
// verbatim) instead of burning its own full timeout.
func TestClusterForwardPropagatesDeadline(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.RequestTimeout = 30 * time.Millisecond
		}
	})
	req := tc.requestOwnedBy(t, kindRun, "n1", 13)
	// A simulation far too long for 30ms (but trivial next to the
	// owner's own 30s default, which must NOT be the budget used).
	req.Source = strings.Replace(heavyJobProgram, "300000", "200000000", 1)
	if owner := tc.owner(kindRun, req); owner != "n1" {
		// The source swap moved the key; find a heavy variant owned by n1.
		for n := int64(0); ; n++ {
			req.Source = fmt.Sprintf(`int main(void) { int i; double s; s = %d.0; for (i = 0; i < 200000000; i++) s = s + i * 0.5; putd(s); return 0; }`, n)
			if tc.owner(kindRun, req) == "n1" {
				break
			}
		}
	}

	start := time.Now()
	rep := tc.post(t, 0, "/run", req, nil)
	elapsed := time.Since(start)
	if rep.status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (body %s), want 504 from the propagated deadline", rep.status, rep.body)
	}
	if rep.node != "n1" {
		t.Fatalf("executed on %q, want the owner n1 to time out, not a local fallback", rep.node)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v: the owner used its own 30s budget, not the propagated one", elapsed)
	}
	// The forward itself succeeded — the 504 is the owner's answer, not
	// a transport failure.
	_, metrics := tc.get(t, 0, "/metrics")
	if sumMetric(metrics, "wmserved_cluster_forwards_total", `peer="n1"`, `outcome="ok"`) == 0 {
		t.Fatal("no forwards{n1,ok}: the 504 was not a relayed owner response")
	}
}

// TestClusterTraceAcrossForward: one trace ID spans both hops — the
// front node records the cluster.forward span, the owner continues the
// same trace with the origin peer attributed.
func TestClusterTraceAcrossForward(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	req := tc.requestOwnedBy(t, kindRun, "n2", 14)

	tid, sid := obs.NewTraceID(), obs.NewSpanID()
	hdr := http.Header{}
	hdr.Set("traceparent", obs.FormatTraceparent(tid, sid, true))
	rep := tc.post(t, 0, "/run", req, hdr)
	if rep.status != http.StatusOK {
		t.Fatalf("status %d, body %s", rep.status, rep.body)
	}
	if rep.trace != tid.String() {
		t.Fatalf("front node answered trace %q, want the client's %q", rep.trace, tid)
	}

	// Traces finish just after the response body is written; poll
	// briefly for both nodes to retain theirs.
	fetch := func(nodeIdx int) []byte {
		deadline := time.Now().Add(2 * time.Second)
		for {
			status, body := tc.get(t, nodeIdx, "/debug/traces/"+tid.String())
			if status == http.StatusOK {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never appeared on %s", tid, tc.nodes[nodeIdx].id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	front := fetch(0)
	if !bytes.Contains(front, []byte("cluster.forward")) {
		t.Fatalf("front trace has no cluster.forward span:\n%s", front)
	}
	if !bytes.Contains(front, []byte(`"peer": "n2"`)) {
		t.Fatalf("front trace's forward span not attributed to n2:\n%s", front)
	}
	owner := fetch(2)
	if !bytes.Contains(owner, []byte(`"peer": "n0"`)) {
		t.Fatalf("owner trace not attributed to forwarding peer n0:\n%s", owner)
	}
	if !bytes.Contains(owner, []byte(`"compile"`)) {
		t.Fatalf("owner trace missing the execution spans:\n%s", owner)
	}
}

// TestClusterHealthAndReconciliation: the cluster views exported by
// /healthz, /metrics, and /debug/statusz agree with each other — the
// owned fractions tile the key space, every peer is up, and the
// cluster-wide forward counters reconcile: every forward one node
// counted "ok" was counted "forwarded in" by exactly one peer.
func TestClusterHealthAndReconciliation(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 24; n++ {
		req := &Request{Source: missProgram(int64(15000 + n)), Level: intp(rng.Intn(4))}
		kind := kindCompile
		if n%2 == 0 {
			kind = kindRun
		}
		if rep := tc.post(t, rng.Intn(3), "/"+kind, req, nil); rep.status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", n, rep.status, rep.body)
		}
	}

	var fracSum float64
	var forwardsOK, forwardedIn int64
	for i, node := range tc.nodes {
		status, body := tc.get(t, i, "/healthz")
		if status != http.StatusOK {
			t.Fatalf("%s /healthz: status %d", node.id, status)
		}
		var h HealthResponse
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("%s /healthz: %v", node.id, err)
		}
		if h.Cluster == nil {
			t.Fatalf("%s /healthz has no cluster section", node.id)
		}
		if h.Cluster.Self != node.id || h.Cluster.Nodes != 3 || len(h.Cluster.Peers) != 2 {
			t.Fatalf("%s cluster view: %+v", node.id, h.Cluster)
		}
		if h.Cluster.PeersUp != 2 {
			t.Fatalf("%s sees %d peers up, want 2", node.id, h.Cluster.PeersUp)
		}
		fracSum += h.Cluster.OwnedFraction

		_, metrics := tc.get(t, i, "/metrics")
		if sumMetric(metrics, "wmserved_cluster_nodes") != 3 {
			t.Fatalf("%s /metrics: wmserved_cluster_nodes != 3", node.id)
		}
		if sumMetric(metrics, "wmserved_cluster_peer_up") != 2 {
			t.Fatalf("%s /metrics: peers_up sum != 2", node.id)
		}
		forwardsOK += sumMetric(metrics, "wmserved_cluster_forwards_total", `outcome="ok"`)
		forwardedIn += sumMetric(metrics, "wmserved_cluster_forwarded_in_total")

		status, statusz := tc.get(t, i, "/debug/statusz")
		if status != http.StatusOK || !bytes.Contains(statusz, []byte("Cluster")) {
			t.Fatalf("%s /debug/statusz missing cluster section (status %d)", node.id, status)
		}
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Fatalf("owned fractions sum to %v, want 1", fracSum)
	}
	if forwardsOK == 0 {
		t.Fatal("24 randomly owned requests produced no forwards at all")
	}
	if forwardsOK != forwardedIn {
		t.Fatalf("forward reconciliation broken: %d forwards ok != %d forwarded in", forwardsOK, forwardedIn)
	}
}

// TestLoadTargetSelection: the load generator's multi-endpoint policies
// — round-robin cycles; key affinity pins a program to one node.
func TestLoadTargetSelection(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	rr := &loadShard{urls: urls}
	seen := make(map[string]int)
	for n := 0; n < 9; n++ {
		seen[rr.target("src")]++
	}
	for _, u := range urls {
		if seen[u] != 3 {
			t.Fatalf("round-robin uneven: %v", seen)
		}
	}

	aff := &loadShard{urls: urls, affinity: "key"}
	first := aff.target("program-x")
	for n := 0; n < 5; n++ {
		if got := aff.target("program-x"); got != first {
			t.Fatalf("key affinity moved: %q then %q", first, got)
		}
	}
	single := &loadShard{urls: urls[:1]}
	if single.target("anything") != urls[0] {
		t.Fatal("single-URL mode must always pick the one URL")
	}
}

// TestRunLoadMultiEndpoint: a short multi-endpoint run against a live
// 3-node cluster reports per-node breakdowns and no failures.
func TestRunLoadMultiEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	urls := make([]string, len(tc.nodes))
	for i, n := range tc.nodes {
		urls[i] = n.ts.URL
	}
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    urls,
		Duration:    600 * time.Millisecond,
		Concurrency: 4,
		Retries:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors against a healthy cluster", rep.Errors)
	}
	if len(rep.ByNode) != 3 {
		t.Fatalf("ByNode has %d entries, want 3: %+v", len(rep.ByNode), rep.ByNode)
	}
	var byNodeTotal int64
	for u, ns := range rep.ByNode {
		if ns.Requests == 0 {
			t.Fatalf("node %s received no traffic under round-robin", u)
		}
		if ns.Errors > 0 {
			t.Fatalf("node %s: %d errors", u, ns.Errors)
		}
		byNodeTotal += ns.Requests
	}
	if byNodeTotal != rep.Requests {
		t.Fatalf("per-node requests %d != total %d", byNodeTotal, rep.Requests)
	}
	out := rep.String()
	if !strings.Contains(out, "per node:") {
		t.Fatalf("report missing per-node section:\n%s", out)
	}
}

// TestClusterSoak is the CI cluster soak (set WMSERVE_CLUSTER_SOAK=1):
// sustained multi-endpoint load over a 3-node cluster, one node killed
// mid-run and dropped from the client rotation the way a load
// balancer's health checks would, with zero failed requests (degraded
// fallbacks allowed) and forward counters that reconcile.
func TestClusterSoak(t *testing.T) {
	if os.Getenv("WMSERVE_CLUSTER_SOAK") == "" {
		t.Skip("set WMSERVE_CLUSTER_SOAK=1 to run the cluster soak")
	}
	tc := newTestCluster(t, 3, nil)
	urls := make([]string, len(tc.nodes))
	for i, n := range tc.nodes {
		urls[i] = n.ts.URL
	}

	assertClean := func(phase string, rep *LoadReport) {
		t.Helper()
		if rep.Requests == 0 {
			t.Fatalf("%s: no requests completed", phase)
		}
		if rep.Errors > 0 {
			t.Fatalf("%s: %d transport errors", phase, rep.Errors)
		}
		for code, n := range rep.ByStatus {
			if code >= http.StatusInternalServerError {
				t.Fatalf("%s: %d responses with status %d", phase, n, code)
			}
		}
		t.Logf("%s: %d requests, %.0f req/s, p99 %v", phase, rep.Requests, rep.RPS(), rep.P99)
	}

	// Phase 1: all three nodes in rotation.
	rep1, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    urls,
		Duration:    12 * time.Second,
		Concurrency: 16,
		Retries:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertClean("phase 1 (3 nodes)", rep1)

	// Every "ok" forward must have been counted "forwarded in" by its
	// owner.  The run's end cancels in-flight forwards after the owner
	// has already counted them, so forwardedIn may lead by at most one
	// per client goroutine.
	var forwardsOK, forwardedIn int64
	for i := range tc.nodes {
		_, metrics := tc.get(t, i, "/metrics")
		forwardsOK += sumMetric(metrics, "wmserved_cluster_forwards_total", `outcome="ok"`)
		forwardedIn += sumMetric(metrics, "wmserved_cluster_forwarded_in_total")
	}
	if forwardedIn < forwardsOK || forwardedIn-forwardsOK > 16 {
		t.Fatalf("reconciliation: %d forwards ok vs %d forwarded in", forwardsOK, forwardedIn)
	}
	if forwardsOK == 0 {
		t.Fatal("a 12s 3-node soak produced no forwards")
	}

	// Kill one node mid-run and drop it from the client rotation.
	tc.nodes[2].ts.Close()
	tc.nodes[2].srv.Close()

	rep2, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    urls[:2],
		Duration:    12 * time.Second,
		Concurrency: 16,
		Retries:     5,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertClean("phase 2 (n2 killed)", rep2)

	// The survivors must have degraded n2-owned keys locally.
	var downDegrades int64
	for i := 0; i < 2; i++ {
		_, metrics := tc.get(t, i, "/metrics")
		downDegrades += sumMetric(metrics, "wmserved_cluster_forwards_total", `peer="n2"`)
	}
	if downDegrades == 0 {
		t.Fatal("no forwards/degrades attributed to the killed node")
	}
}
