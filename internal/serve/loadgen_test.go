package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadShedRetries: the generator retries 429/503 with backoff
// (honoring Retry-After) instead of giving up, and reports how often.
func TestLoadShedRetries(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed two of every three requests, pointing at an immediate
		// retry so the test stays fast.
		if n.Add(1)%3 != 0 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Retries:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries recorded against a shedding server")
	}
	if rep.ByStatus[http.StatusOK] == 0 {
		t.Fatalf("retries never reached a 200: %+v", rep.ByStatus)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors", rep.Errors)
	}
}

// TestLoadShedNoRetries: with Retries 0 a shed response is final, so
// existing shed-accounting behavior is unchanged.
func TestLoadShedNoRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Duration:    100 * time.Millisecond,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 {
		t.Fatalf("%d retries recorded with retries disabled", rep.Retries)
	}
	if rep.ByStatus[http.StatusTooManyRequests] == 0 {
		t.Fatal("shed responses not tallied")
	}
}
