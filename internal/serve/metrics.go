package serve

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wmstream"
	"wmstream/internal/cluster"
	"wmstream/internal/obs"
)

// This file is a minimal, dependency-free Prometheus text-format
// (version 0.0.4) exporter: counters, labeled counter maps, and
// cumulative histograms, rendered in a stable sorted order so /metrics
// output is diffable and goldenable.

// counter is a monotonically increasing int64.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n int64)  { c.v.Add(n) }
func (c *counter) value() int64 { return c.v.Load() }

// labeledCounter is a counter family keyed by a rendered label string
// (e.g. `endpoint="compile",code="200"`).
type labeledCounter struct {
	mu   sync.Mutex
	vals map[string]*int64
}

func (l *labeledCounter) add(labels string, n int64) {
	l.mu.Lock()
	if l.vals == nil {
		l.vals = make(map[string]*int64)
	}
	p := l.vals[labels]
	if p == nil {
		p = new(int64)
		l.vals[labels] = p
	}
	*p += n
	l.mu.Unlock()
}

func (l *labeledCounter) snapshot() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.vals))
	for k, p := range l.vals {
		out[k] = *p
	}
	return out
}

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning cache hits (tens of microseconds) to heavy cold
// compile-and-run requests.
var latencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// histogram is a cumulative-bucket histogram in the Prometheus style.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // per upper bound, plus trailing +Inf bucket
	sum    float64
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	idx := len(latencyBuckets)
	for n, ub := range latencyBuckets {
		if v <= ub {
			idx = n
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// metrics aggregates everything wmserved exports.  Gauges (queue
// depth, in-flight, cache occupancy, uptime) are read live at render
// time from their owners rather than mirrored here.
type metrics struct {
	requests  labeledCounter        // endpoint + status code
	latency   map[string]*histogram // per endpoint, fixed keys
	compiles  labeledCounter        // per O-level (O0..O3, custom)
	coalesced counter
	shed      counter
	jobs      labeledCounter // job lifecycle events (submitted, completed, ...)
	recovered labeledCounter // boot recovery outcomes (requeued, resumed, ...)
	slow      labeledCounter // busy time over the slow threshold, by endpoint

	// engineRuns counts completed simulation runs by the engine that
	// actually executed them ("auto" is resolved before counting, so
	// the labels name real engines: translated, fast, reference).
	engineRuns labeledCounter

	// forwards counts cluster routing decisions that left this node,
	// by owning peer and outcome: "ok" (peer response relayed),
	// "error" (transport failure mid-forward, degraded to local),
	// "down" (owner already marked down, degraded to local).
	forwards labeledCounter
	// forwardedIn counts requests this node executed on behalf of a
	// forwarding peer; cluster-wide, sum(forwards{outcome="ok"}) ==
	// sum(forwardedIn) — the reconciliation the soak test enforces,
	// up to forwards whose requester vanished mid-relay (the owner has
	// counted those before the front gives up on them).
	forwardedIn labeledCounter

	// waits records intentional long-poll parking time, which finishWait
	// excludes from the latency histograms so p99 reflects service time.
	waits map[string]*histogram

	simMu     sync.Mutex
	simCycles map[string]int64 // `unit="..",cause=".."` -> cycles

	// slowTrace holds, per endpoint, the trace ID of the most recent
	// slow request — an exemplar-style breadcrumb from /metrics into
	// /debug/traces/{id} with bounded cardinality (last-wins per
	// endpoint, one series each).
	slowMu    sync.Mutex
	slowTrace map[string]string
}

func newMetrics() *metrics {
	return &metrics{
		latency: map[string]*histogram{
			kindCompile:   newHistogram(),
			kindRun:       newHistogram(),
			kindJobs:      newHistogram(),
			kindJobPoll:   newHistogram(),
			kindJobCancel: newHistogram(),
		},
		waits: map[string]*histogram{
			kindJobPoll: newHistogram(),
		},
		simCycles: make(map[string]int64),
		slowTrace: make(map[string]string),
	}
}

func (m *metrics) observeRequest(endpoint string, code int, seconds float64) {
	m.requests.add(fmt.Sprintf(`endpoint=%q,code="%d"`, endpoint, code), 1)
	if h := m.latency[endpoint]; h != nil {
		h.observe(seconds)
	}
}

// observeWait records time a request intentionally spent parked (the
// job long-poll) in the wait histogram.
func (m *metrics) observeWait(endpoint string, seconds float64) {
	if h := m.waits[endpoint]; h != nil {
		h.observe(seconds)
	}
}

// observeSlow counts a slow request and remembers its trace ID as the
// endpoint's exemplar.
func (m *metrics) observeSlow(endpoint, traceID string) {
	m.slow.add(fmt.Sprintf(`endpoint=%q`, endpoint), 1)
	if traceID != "" {
		m.slowMu.Lock()
		m.slowTrace[endpoint] = traceID
		m.slowMu.Unlock()
	}
}

// observeEngineRun counts one simulation run against the engine that
// executed it.
func (m *metrics) observeEngineRun(engine string) {
	m.engineRuns.add(fmt.Sprintf(`engine=%q`, wmstream.ResolveEngine(engine)), 1)
}

// addSimUnits folds one run's per-unit cycle attribution (the
// internal/telemetry cause sums) into the cumulative per-cause
// counters, giving fleet-wide stall attribution across all served
// simulations.
func (m *metrics) addSimUnits(units []wmstream.UnitBreakdown) {
	m.simMu.Lock()
	defer m.simMu.Unlock()
	for _, u := range units {
		m.simCycles[fmt.Sprintf(`unit=%q,cause="issued"`, u.Unit)] += u.Issued
		m.simCycles[fmt.Sprintf(`unit=%q,cause="idle"`, u.Unit)] += u.Idle
		for cause, n := range u.Stalls {
			m.simCycles[fmt.Sprintf(`unit=%q,cause=%q`, u.Unit, cause)] += n
		}
	}
}

// gauges are the live values the server passes in at render time.
type gauges struct {
	queueDepth int
	inFlight   int64
	workers    int
	cache      CacheStats
	uptime     float64

	jobsQueued  int
	jobsRunning int
	jobsHeld    int // jobs in the table, including terminal ones awaiting TTL

	journalMode    string // durable | degraded | crashed | memory
	journalBytes   int64
	journalDropped int64

	// transCache is the translated-engine cache snapshot, sampled at
	// scrape time.
	transCache wmstream.TransCacheStats

	// cluster is this node's cluster view, sampled at scrape time; nil
	// outside cluster mode (the cluster families are then omitted).
	cluster *cluster.Health

	// Go runtime health, sampled at scrape time.
	goroutines   int
	heapBytes    uint64
	gcPauseTotal float64 // cumulative GC stop-the-world pause, seconds
	openFDs      int     // -1 when the platform offers no cheap count

	traces obs.CollectorStats
}

// openFDCount counts this process's open file descriptors via
// /proc/self/fd; -1 where procfs is unavailable (the gauge is then
// omitted rather than reported as a lie).
func openFDCount() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The directory handle used for the listing is itself one entry.
	return len(ents) - 1
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one endpoint's cumulative buckets (the
// caller has already written the family HELP/TYPE header).
func writeHistogram(w io.Writer, name, endpoint string, h *histogram) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for n, ub := range latencyBuckets {
		cum += h.counts[n]
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n", name, endpoint, trimFloat(ub), cum)
	}
	cum += h.counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, endpoint, cum)
	fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", name, endpoint, h.sum)
	fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, endpoint, h.count)
}

func writeLabeled(w io.Writer, name, help string, lc *labeledCounter) {
	writeHeader(w, name, help, "counter")
	snap := lc.snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", name, k, snap[k])
	}
}

// write renders every metric in the Prometheus text format.
func (m *metrics) write(w io.Writer, g gauges) {
	writeLabeled(w, "wmserved_requests_total", "Requests served, by endpoint and status code.", &m.requests)

	writeHeader(w, "wmserved_request_duration_seconds",
		"Request service latency, by endpoint (intentional long-poll waits excluded).", "histogram")
	for _, endpoint := range []string{kindCompile, kindRun, kindJobs, kindJobPoll, kindJobCancel} {
		writeHistogram(w, "wmserved_request_duration_seconds", endpoint, m.latency[endpoint])
	}

	writeHeader(w, "wmserved_longpoll_wait_seconds",
		"Time requests intentionally spent parked in a long-poll, by endpoint.", "histogram")
	writeHistogram(w, "wmserved_longpoll_wait_seconds", kindJobPoll, m.waits[kindJobPoll])

	writeLabeled(w, "wmserved_compiles_total", "Cold compiles executed, by optimization level.", &m.compiles)

	writeHeader(w, "wmserved_coalesced_total", "Requests served by piggybacking on an identical in-flight request.", "counter")
	fmt.Fprintf(w, "wmserved_coalesced_total %d\n", m.coalesced.value())
	writeHeader(w, "wmserved_shed_total", "Requests rejected with 429 because the queue was full.", "counter")
	fmt.Fprintf(w, "wmserved_shed_total %d\n", m.shed.value())

	writeHeader(w, "wmserved_cache_hits_total", "Content-addressed cache hits.", "counter")
	fmt.Fprintf(w, "wmserved_cache_hits_total %d\n", g.cache.Hits)
	writeHeader(w, "wmserved_cache_misses_total", "Content-addressed cache misses.", "counter")
	fmt.Fprintf(w, "wmserved_cache_misses_total %d\n", g.cache.Misses)
	writeHeader(w, "wmserved_cache_evictions_total", "Entries evicted to hold the byte budget.", "counter")
	fmt.Fprintf(w, "wmserved_cache_evictions_total %d\n", g.cache.Evictions)
	writeHeader(w, "wmserved_cache_entries", "Entries currently cached.", "gauge")
	fmt.Fprintf(w, "wmserved_cache_entries %d\n", g.cache.Entries)
	writeHeader(w, "wmserved_cache_bytes", "Bytes currently cached (bodies plus overhead).", "gauge")
	fmt.Fprintf(w, "wmserved_cache_bytes %d\n", g.cache.Bytes)

	writeLabeled(w, "wmserved_engine_runs_total",
		"Completed simulation runs, by the engine that executed them.", &m.engineRuns)

	writeHeader(w, "wmserved_translation_cache_entries", "Translated programs resident in the process-wide cache.", "gauge")
	fmt.Fprintf(w, "wmserved_translation_cache_entries %d\n", g.transCache.Entries)
	writeHeader(w, "wmserved_translation_cache_cap", "Translation cache capacity (entries).", "gauge")
	fmt.Fprintf(w, "wmserved_translation_cache_cap %d\n", g.transCache.Cap)
	writeHeader(w, "wmserved_translation_cache_hits_total", "Translation cache hits.", "counter")
	fmt.Fprintf(w, "wmserved_translation_cache_hits_total %d\n", g.transCache.Hits)
	writeHeader(w, "wmserved_translation_cache_misses_total", "Translation cache misses (each one is a fresh translation).", "counter")
	fmt.Fprintf(w, "wmserved_translation_cache_misses_total %d\n", g.transCache.Misses)
	writeHeader(w, "wmserved_translation_cache_evictions_total", "Translations evicted to hold the entry cap.", "counter")
	fmt.Fprintf(w, "wmserved_translation_cache_evictions_total %d\n", g.transCache.Evictions)

	if g.cluster != nil {
		writeLabeled(w, "wmserved_cluster_forwards_total",
			"Requests routed to an owning peer, by peer and outcome (ok, error, down; error/down degraded to local execution).", &m.forwards)
		writeLabeled(w, "wmserved_cluster_forwarded_in_total",
			"Requests executed here on behalf of a forwarding peer, by origin peer.", &m.forwardedIn)
		writeHeader(w, "wmserved_cluster_peer_up", "Peer health as seen by this node: 1 up, 0 down.", "gauge")
		for _, p := range g.cluster.Peers {
			up := 0
			if p.Up {
				up = 1
			}
			fmt.Fprintf(w, "wmserved_cluster_peer_up{peer=%q} %d\n", p.ID, up)
		}
		writeHeader(w, "wmserved_cluster_owned_keys_fraction",
			"Share of the consistent-hash key space owned by this node.", "gauge")
		fmt.Fprintf(w, "wmserved_cluster_owned_keys_fraction %g\n", g.cluster.OwnedFraction)
		writeHeader(w, "wmserved_cluster_nodes", "Configured cluster size, including this node.", "gauge")
		fmt.Fprintf(w, "wmserved_cluster_nodes %d\n", g.cluster.Nodes)
	}

	writeLabeled(w, "wmserved_jobs_total", "Asynchronous job lifecycle events, by event.", &m.jobs)
	writeHeader(w, "wmserved_jobs_queued", "Jobs waiting for a job worker.", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_queued %d\n", g.jobsQueued)
	writeHeader(w, "wmserved_jobs_running", "Jobs currently executing.", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_running %d\n", g.jobsRunning)
	writeHeader(w, "wmserved_jobs_held", "Jobs retained in the table (queued, running, and terminal awaiting TTL).", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_held %d\n", g.jobsHeld)

	writeLabeled(w, "wmserved_jobs_recovered_total", "Jobs recovered from the journal at boot, by outcome.", &m.recovered)
	writeHeader(w, "wmserved_journal_mode", "Job journal state: 1 for the active mode, 0 otherwise.", "gauge")
	for _, mode := range []string{"durable", "degraded", "crashed", "memory"} {
		v := 0
		if g.journalMode == mode {
			v = 1
		}
		fmt.Fprintf(w, "wmserved_journal_mode{mode=%q} %d\n", mode, v)
	}
	writeHeader(w, "wmserved_journal_bytes", "Bytes in the job journal's live segments.", "gauge")
	fmt.Fprintf(w, "wmserved_journal_bytes %d\n", g.journalBytes)
	writeHeader(w, "wmserved_journal_dropped_writes_total", "Journal appends dropped while degraded to memory-only.", "counter")
	fmt.Fprintf(w, "wmserved_journal_dropped_writes_total %d\n", g.journalDropped)

	writeHeader(w, "wmserved_queue_depth", "Requests waiting for a worker.", "gauge")
	fmt.Fprintf(w, "wmserved_queue_depth %d\n", g.queueDepth)
	writeHeader(w, "wmserved_inflight", "Requests currently executing on a worker.", "gauge")
	fmt.Fprintf(w, "wmserved_inflight %d\n", g.inFlight)
	writeHeader(w, "wmserved_workers", "Worker pool size.", "gauge")
	fmt.Fprintf(w, "wmserved_workers %d\n", g.workers)
	writeHeader(w, "wmserved_uptime_seconds", "Seconds since the server started.", "gauge")
	fmt.Fprintf(w, "wmserved_uptime_seconds %g\n", g.uptime)

	writeHeader(w, "wmserved_sim_unit_cycles_total",
		"Simulated cycles across all served runs, by functional unit and telemetry cause.", "counter")
	m.simMu.Lock()
	keys := make([]string, 0, len(m.simCycles))
	for k := range m.simCycles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "wmserved_sim_unit_cycles_total{%s} %d\n", k, m.simCycles[k])
	}
	m.simMu.Unlock()

	writeLabeled(w, "wmserved_slow_requests_total",
		"Requests whose busy time crossed the slow-trace threshold, by endpoint.", &m.slow)
	writeHeader(w, "wmserved_slow_request_trace_info",
		"Trace ID of each endpoint's most recent slow request (always 1; follow the trace_id label to /debug/traces).", "gauge")
	m.slowMu.Lock()
	eps := make([]string, 0, len(m.slowTrace))
	for ep := range m.slowTrace {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		fmt.Fprintf(w, "wmserved_slow_request_trace_info{endpoint=%q,trace_id=%q} 1\n", ep, m.slowTrace[ep])
	}
	m.slowMu.Unlock()

	writeHeader(w, "wmserved_traces_started_total", "Traces started.", "counter")
	fmt.Fprintf(w, "wmserved_traces_started_total %d\n", g.traces.Started)
	writeHeader(w, "wmserved_traces_finished_total", "Traces finished.", "counter")
	fmt.Fprintf(w, "wmserved_traces_finished_total %d\n", g.traces.Finished)
	writeHeader(w, "wmserved_traces_retained_total",
		"Finished traces retained, by ring (slow keeps slow/errored traces, recent keeps head-sampled ordinary ones).", "counter")
	fmt.Fprintf(w, "wmserved_traces_retained_total{ring=\"recent\"} %d\n", g.traces.KeptHead)
	fmt.Fprintf(w, "wmserved_traces_retained_total{ring=\"slow\"} %d\n", g.traces.KeptSlow)
	writeHeader(w, "wmserved_traces_active", "Traces currently open.", "gauge")
	fmt.Fprintf(w, "wmserved_traces_active %d\n", g.traces.Active)

	writeHeader(w, "wmserved_go_goroutines", "Live goroutines.", "gauge")
	fmt.Fprintf(w, "wmserved_go_goroutines %d\n", g.goroutines)
	writeHeader(w, "wmserved_go_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).", "gauge")
	fmt.Fprintf(w, "wmserved_go_heap_bytes %d\n", g.heapBytes)
	writeHeader(w, "wmserved_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	fmt.Fprintf(w, "wmserved_go_gc_pause_seconds_total %g\n", g.gcPauseTotal)
	if g.openFDs >= 0 {
		writeHeader(w, "wmserved_open_fds", "Open file descriptors.", "gauge")
		fmt.Fprintf(w, "wmserved_open_fds %d\n", g.openFDs)
	}
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no trailing zeros, no scientific notation for these magnitudes).
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimPrefix(s, "+")
}
