package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wmstream"
)

// This file is a minimal, dependency-free Prometheus text-format
// (version 0.0.4) exporter: counters, labeled counter maps, and
// cumulative histograms, rendered in a stable sorted order so /metrics
// output is diffable and goldenable.

// counter is a monotonically increasing int64.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n int64)  { c.v.Add(n) }
func (c *counter) value() int64 { return c.v.Load() }

// labeledCounter is a counter family keyed by a rendered label string
// (e.g. `endpoint="compile",code="200"`).
type labeledCounter struct {
	mu   sync.Mutex
	vals map[string]*int64
}

func (l *labeledCounter) add(labels string, n int64) {
	l.mu.Lock()
	if l.vals == nil {
		l.vals = make(map[string]*int64)
	}
	p := l.vals[labels]
	if p == nil {
		p = new(int64)
		l.vals[labels] = p
	}
	*p += n
	l.mu.Unlock()
}

func (l *labeledCounter) snapshot() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.vals))
	for k, p := range l.vals {
		out[k] = *p
	}
	return out
}

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning cache hits (tens of microseconds) to heavy cold
// compile-and-run requests.
var latencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// histogram is a cumulative-bucket histogram in the Prometheus style.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // per upper bound, plus trailing +Inf bucket
	sum    float64
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	idx := len(latencyBuckets)
	for n, ub := range latencyBuckets {
		if v <= ub {
			idx = n
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// metrics aggregates everything wmserved exports.  Gauges (queue
// depth, in-flight, cache occupancy, uptime) are read live at render
// time from their owners rather than mirrored here.
type metrics struct {
	requests  labeledCounter        // endpoint + status code
	latency   map[string]*histogram // per endpoint, fixed keys
	compiles  labeledCounter        // per O-level (O0..O3, custom)
	coalesced counter
	shed      counter
	jobs      labeledCounter // job lifecycle events (submitted, completed, ...)
	recovered labeledCounter // boot recovery outcomes (requeued, resumed, ...)

	simMu     sync.Mutex
	simCycles map[string]int64 // `unit="..",cause=".."` -> cycles
}

func newMetrics() *metrics {
	return &metrics{
		latency: map[string]*histogram{
			kindCompile:   newHistogram(),
			kindRun:       newHistogram(),
			kindJobs:      newHistogram(),
			kindJobPoll:   newHistogram(),
			kindJobCancel: newHistogram(),
		},
		simCycles: make(map[string]int64),
	}
}

func (m *metrics) observeRequest(endpoint string, code int, seconds float64) {
	m.requests.add(fmt.Sprintf(`endpoint=%q,code="%d"`, endpoint, code), 1)
	if h := m.latency[endpoint]; h != nil {
		h.observe(seconds)
	}
}

// addSimUnits folds one run's per-unit cycle attribution (the
// internal/telemetry cause sums) into the cumulative per-cause
// counters, giving fleet-wide stall attribution across all served
// simulations.
func (m *metrics) addSimUnits(units []wmstream.UnitBreakdown) {
	m.simMu.Lock()
	defer m.simMu.Unlock()
	for _, u := range units {
		m.simCycles[fmt.Sprintf(`unit=%q,cause="issued"`, u.Unit)] += u.Issued
		m.simCycles[fmt.Sprintf(`unit=%q,cause="idle"`, u.Unit)] += u.Idle
		for cause, n := range u.Stalls {
			m.simCycles[fmt.Sprintf(`unit=%q,cause=%q`, u.Unit, cause)] += n
		}
	}
}

// gauges are the live values the server passes in at render time.
type gauges struct {
	queueDepth int
	inFlight   int64
	workers    int
	cache      CacheStats
	uptime     float64

	jobsQueued  int
	jobsRunning int
	jobsHeld    int // jobs in the table, including terminal ones awaiting TTL

	journalMode    string // durable | degraded | crashed | memory
	journalBytes   int64
	journalDropped int64
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeLabeled(w io.Writer, name, help string, lc *labeledCounter) {
	writeHeader(w, name, help, "counter")
	snap := lc.snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", name, k, snap[k])
	}
}

// write renders every metric in the Prometheus text format.
func (m *metrics) write(w io.Writer, g gauges) {
	writeLabeled(w, "wmserved_requests_total", "Requests served, by endpoint and status code.", &m.requests)

	writeHeader(w, "wmserved_request_duration_seconds", "Request latency, by endpoint.", "histogram")
	for _, endpoint := range []string{kindCompile, kindRun, kindJobs, kindJobPoll, kindJobCancel} {
		h := m.latency[endpoint]
		h.mu.Lock()
		cum := int64(0)
		for n, ub := range latencyBuckets {
			cum += h.counts[n]
			fmt.Fprintf(w, "wmserved_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				endpoint, trimFloat(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "wmserved_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, cum)
		fmt.Fprintf(w, "wmserved_request_duration_seconds_sum{endpoint=%q} %g\n", endpoint, h.sum)
		fmt.Fprintf(w, "wmserved_request_duration_seconds_count{endpoint=%q} %d\n", endpoint, h.count)
		h.mu.Unlock()
	}

	writeLabeled(w, "wmserved_compiles_total", "Cold compiles executed, by optimization level.", &m.compiles)

	writeHeader(w, "wmserved_coalesced_total", "Requests served by piggybacking on an identical in-flight request.", "counter")
	fmt.Fprintf(w, "wmserved_coalesced_total %d\n", m.coalesced.value())
	writeHeader(w, "wmserved_shed_total", "Requests rejected with 429 because the queue was full.", "counter")
	fmt.Fprintf(w, "wmserved_shed_total %d\n", m.shed.value())

	writeHeader(w, "wmserved_cache_hits_total", "Content-addressed cache hits.", "counter")
	fmt.Fprintf(w, "wmserved_cache_hits_total %d\n", g.cache.Hits)
	writeHeader(w, "wmserved_cache_misses_total", "Content-addressed cache misses.", "counter")
	fmt.Fprintf(w, "wmserved_cache_misses_total %d\n", g.cache.Misses)
	writeHeader(w, "wmserved_cache_evictions_total", "Entries evicted to hold the byte budget.", "counter")
	fmt.Fprintf(w, "wmserved_cache_evictions_total %d\n", g.cache.Evictions)
	writeHeader(w, "wmserved_cache_entries", "Entries currently cached.", "gauge")
	fmt.Fprintf(w, "wmserved_cache_entries %d\n", g.cache.Entries)
	writeHeader(w, "wmserved_cache_bytes", "Bytes currently cached (bodies plus overhead).", "gauge")
	fmt.Fprintf(w, "wmserved_cache_bytes %d\n", g.cache.Bytes)

	writeLabeled(w, "wmserved_jobs_total", "Asynchronous job lifecycle events, by event.", &m.jobs)
	writeHeader(w, "wmserved_jobs_queued", "Jobs waiting for a job worker.", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_queued %d\n", g.jobsQueued)
	writeHeader(w, "wmserved_jobs_running", "Jobs currently executing.", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_running %d\n", g.jobsRunning)
	writeHeader(w, "wmserved_jobs_held", "Jobs retained in the table (queued, running, and terminal awaiting TTL).", "gauge")
	fmt.Fprintf(w, "wmserved_jobs_held %d\n", g.jobsHeld)

	writeLabeled(w, "wmserved_jobs_recovered_total", "Jobs recovered from the journal at boot, by outcome.", &m.recovered)
	writeHeader(w, "wmserved_journal_mode", "Job journal state: 1 for the active mode, 0 otherwise.", "gauge")
	for _, mode := range []string{"durable", "degraded", "crashed", "memory"} {
		v := 0
		if g.journalMode == mode {
			v = 1
		}
		fmt.Fprintf(w, "wmserved_journal_mode{mode=%q} %d\n", mode, v)
	}
	writeHeader(w, "wmserved_journal_bytes", "Bytes in the job journal's live segments.", "gauge")
	fmt.Fprintf(w, "wmserved_journal_bytes %d\n", g.journalBytes)
	writeHeader(w, "wmserved_journal_dropped_writes_total", "Journal appends dropped while degraded to memory-only.", "counter")
	fmt.Fprintf(w, "wmserved_journal_dropped_writes_total %d\n", g.journalDropped)

	writeHeader(w, "wmserved_queue_depth", "Requests waiting for a worker.", "gauge")
	fmt.Fprintf(w, "wmserved_queue_depth %d\n", g.queueDepth)
	writeHeader(w, "wmserved_inflight", "Requests currently executing on a worker.", "gauge")
	fmt.Fprintf(w, "wmserved_inflight %d\n", g.inFlight)
	writeHeader(w, "wmserved_workers", "Worker pool size.", "gauge")
	fmt.Fprintf(w, "wmserved_workers %d\n", g.workers)
	writeHeader(w, "wmserved_uptime_seconds", "Seconds since the server started.", "gauge")
	fmt.Fprintf(w, "wmserved_uptime_seconds %g\n", g.uptime)

	writeHeader(w, "wmserved_sim_unit_cycles_total",
		"Simulated cycles across all served runs, by functional unit and telemetry cause.", "counter")
	m.simMu.Lock()
	keys := make([]string, 0, len(m.simCycles))
	for k := range m.simCycles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "wmserved_sim_unit_cycles_total{%s} %d\n", k, m.simCycles[k])
	}
	m.simMu.Unlock()
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no trailing zeros, no scientific notation for these magnitudes).
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimPrefix(s, "+")
}
