package acode

import (
	"fmt"

	"wmstream/internal/minic"
	"wmstream/internal/rtl"
)

// genExpr emits naive code computing e and returns the virtual register
// holding the value.
func (g *generator) genExpr(e minic.Expr) (rtl.Reg, error) {
	g.at(e.Pos())
	switch x := e.(type) {
	case *minic.IntLit:
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.I(x.V)))
		return t, nil

	case *minic.FloatLit:
		t := g.out.NewVirt(rtl.Float)
		g.emit(rtl.NewAssign(t, rtl.FImm{V: x.V}))
		return t, nil

	case *minic.StrLit:
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.Sym{Name: x.Sym.AsmName}))
		return t, nil

	case *minic.Ident:
		return g.genIdentValue(x)

	case *minic.Conv:
		return g.genConv(x)

	case *minic.Unary:
		return g.genUnary(x)

	case *minic.Binary:
		return g.genBinary(x)

	case *minic.Assign:
		return g.genAssign(x)

	case *minic.Cond:
		return g.genCond(x)

	case *minic.Call:
		return g.genCall(x)

	case *minic.Index:
		addr, err := g.genAddr(x)
		if err != nil {
			return rtl.Reg{}, err
		}
		size, c := memInfo(x.Type())
		return g.loadFrom(rtl.RX(addr), size, c), nil
	}
	return rtl.Reg{}, fmt.Errorf("acode: unknown expression %T", e)
}

func (g *generator) genIdentValue(x *minic.Ident) (rtl.Reg, error) {
	sym := x.Sym
	if r, ok := g.regs[sym]; ok {
		t := g.out.NewVirt(r.Class)
		g.emit(rtl.NewAssign(t, rtl.RX(r)))
		return t, nil
	}
	if sym.Ty.Kind == minic.TypeArray {
		return g.genAddr(x) // arrays evaluate to their address
	}
	addr, err := g.genAddr(x)
	if err != nil {
		return rtl.Reg{}, err
	}
	size, c := memInfo(sym.Ty)
	return g.loadFrom(rtl.RX(addr), size, c), nil
}

func (g *generator) genConv(x *minic.Conv) (rtl.Reg, error) {
	// Array decay: the value is the array's address.
	if x.X.Type().Kind == minic.TypeArray {
		return g.genAddr(x.X)
	}
	v, err := g.genExpr(x.X)
	if err != nil {
		return rtl.Reg{}, err
	}
	from, to := classOf(x.X.Type()), classOf(x.Type())
	if from == to {
		return v, nil // char<->int<->pointer: same register domain
	}
	t := g.out.NewVirt(to)
	g.emit(rtl.NewAssign(t, rtl.Cvt{To: to, X: rtl.RX(v)}))
	return t, nil
}

func (g *generator) genUnary(x *minic.Unary) (rtl.Reg, error) {
	switch x.Op {
	case "-":
		v, err := g.genExpr(x.X)
		if err != nil {
			return rtl.Reg{}, err
		}
		t := g.out.NewVirt(v.Class)
		g.emit(rtl.NewAssign(t, rtl.Un{Op: rtl.Neg, X: rtl.RX(v)}))
		return t, nil
	case "~":
		v, err := g.genExpr(x.X)
		if err != nil {
			return rtl.Reg{}, err
		}
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.Un{Op: rtl.Not, X: rtl.RX(v)}))
		return t, nil
	case "!":
		v, err := g.genExpr(x.X)
		if err != nil {
			return rtl.Reg{}, err
		}
		var zero rtl.Expr = rtl.I(0)
		if v.Class == rtl.Float {
			zero = rtl.FImm{V: 0}
		}
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.B(rtl.Eq, rtl.RX(v), zero)))
		return t, nil
	case "*":
		p, err := g.genExpr(x.X)
		if err != nil {
			return rtl.Reg{}, err
		}
		size, c := memInfo(x.Type())
		return g.loadFrom(rtl.RX(p), size, c), nil
	case "&":
		return g.genAddr(x.X)
	case "++pre", "--pre", "++post", "--post":
		return g.genIncDec(x)
	}
	return rtl.Reg{}, fmt.Errorf("acode: unknown unary %q", x.Op)
}

// genIncDec handles the four increment/decrement forms for both
// register-resident and memory-resident lvalues.  Pointers step by
// their element size.
func (g *generator) genIncDec(x *minic.Unary) (rtl.Reg, error) {
	op := rtl.Add
	if x.Op[0] == '-' {
		op = rtl.Sub
	}
	post := x.Op[2:] == "post"
	t := x.X.Type()
	var step rtl.Expr = rtl.I(1)
	if t.Kind == minic.TypePointer {
		step = rtl.I(int64(t.Elem.Size()))
	}
	if t == minic.DoubleType {
		step = rtl.FImm{V: 1}
	}

	if id, ok := x.X.(*minic.Ident); ok {
		if r, isReg := g.regs[id.Sym]; isReg {
			old := g.out.NewVirt(r.Class)
			g.emit(rtl.NewAssign(old, rtl.RX(r)))
			g.emit(rtl.NewAssign(r, rtl.B(op, rtl.RX(r), step)))
			if post {
				return old, nil
			}
			newv := g.out.NewVirt(r.Class)
			g.emit(rtl.NewAssign(newv, rtl.RX(r)))
			return newv, nil
		}
	}
	addr, err := g.genAddr(x.X)
	if err != nil {
		return rtl.Reg{}, err
	}
	size, c := memInfo(t)
	old := g.loadFrom(rtl.RX(addr), size, c)
	newv := g.out.NewVirt(c)
	g.emit(rtl.NewAssign(newv, rtl.B(op, rtl.RX(old), step)))
	g.storeTo(rtl.RX(addr), newv, size)
	if post {
		return old, nil
	}
	return newv, nil
}

var binOps = map[string]rtl.Op{
	"+": rtl.Add, "-": rtl.Sub, "*": rtl.Mul, "/": rtl.Div, "%": rtl.Rem,
	"<<": rtl.Shl, ">>": rtl.Shr, "&": rtl.And, "|": rtl.Or, "^": rtl.Xor,
	"==": rtl.Eq, "!=": rtl.Ne, "<": rtl.Lt, "<=": rtl.Le, ">": rtl.Gt, ">=": rtl.Ge,
}

func (g *generator) genBinary(x *minic.Binary) (rtl.Reg, error) {
	switch x.Op {
	case "&&", "||":
		// Materialize short-circuit logical values through branches.
		t := g.out.NewVirt(rtl.Int)
		falseL, endL := g.newLabel(), g.newLabel()
		if err := g.genBranch(x, falseL, false); err != nil {
			return rtl.Reg{}, err
		}
		g.emit(rtl.NewAssign(t, rtl.I(1)))
		g.emit(rtl.NewJump(endL))
		g.emit(rtl.NewLabel(falseL))
		g.emit(rtl.NewAssign(t, rtl.I(0)))
		g.emit(rtl.NewLabel(endL))
		return t, nil
	}

	lt, rt := x.L.Type(), x.R.Type()
	// Pointer arithmetic.
	if lt.Kind == minic.TypePointer && x.Op == "-" && rt.Kind == minic.TypePointer {
		l, err := g.genExpr(x.L)
		if err != nil {
			return rtl.Reg{}, err
		}
		r, err := g.genExpr(x.R)
		if err != nil {
			return rtl.Reg{}, err
		}
		diff := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(diff, rtl.B(rtl.Sub, rtl.RX(l), rtl.RX(r))))
		esz := lt.Elem.Size()
		if esz == 1 {
			return diff, nil
		}
		t := g.out.NewVirt(rtl.Int)
		if s := log2(esz); s >= 0 {
			g.emit(rtl.NewAssign(t, rtl.B(rtl.Shr, rtl.RX(diff), rtl.I(int64(s)))))
		} else {
			g.emit(rtl.NewAssign(t, rtl.B(rtl.Div, rtl.RX(diff), rtl.I(int64(esz)))))
		}
		return t, nil
	}
	if lt.Kind == minic.TypePointer && (x.Op == "+" || x.Op == "-") {
		p, err := g.genExpr(x.L)
		if err != nil {
			return rtl.Reg{}, err
		}
		idx, err := g.genExpr(x.R)
		if err != nil {
			return rtl.Reg{}, err
		}
		scaled := g.scaleIndex(idx, lt.Elem.Size())
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.B(binOps[x.Op], rtl.RX(p), rtl.RX(scaled))))
		return t, nil
	}

	l, err := g.genExpr(x.L)
	if err != nil {
		return rtl.Reg{}, err
	}
	r, err := g.genExpr(x.R)
	if err != nil {
		return rtl.Reg{}, err
	}
	op, ok := binOps[x.Op]
	if !ok {
		return rtl.Reg{}, fmt.Errorf("acode: unknown binary %q", x.Op)
	}
	t := g.out.NewVirt(classOf(x.Type()))
	g.emit(rtl.NewAssign(t, rtl.B(op, rtl.RX(l), rtl.RX(r))))
	return t, nil
}

func (g *generator) genAssign(x *minic.Assign) (rtl.Reg, error) {
	// Register-resident scalar target.
	if id, ok := x.L.(*minic.Ident); ok {
		if r, isReg := g.regs[id.Sym]; isReg {
			v, err := g.genExpr(x.R)
			if err != nil {
				return rtl.Reg{}, err
			}
			g.emit(rtl.NewAssign(r, rtl.RX(v)))
			return v, nil
		}
	}
	addr, err := g.genAddr(x.L)
	if err != nil {
		return rtl.Reg{}, err
	}
	v, err := g.genExpr(x.R)
	if err != nil {
		return rtl.Reg{}, err
	}
	size, _ := memInfo(x.L.Type())
	g.storeTo(rtl.RX(addr), v, size)
	return v, nil
}

func (g *generator) genCond(x *minic.Cond) (rtl.Reg, error) {
	t := g.out.NewVirt(classOf(x.Type()))
	falseL, endL := g.newLabel(), g.newLabel()
	if err := g.genBranch(x.C, falseL, false); err != nil {
		return rtl.Reg{}, err
	}
	tv, err := g.genExpr(x.T2)
	if err != nil {
		return rtl.Reg{}, err
	}
	g.emit(rtl.NewAssign(t, rtl.RX(tv)))
	g.emit(rtl.NewJump(endL))
	g.emit(rtl.NewLabel(falseL))
	fv, err := g.genExpr(x.F)
	if err != nil {
		return rtl.Reg{}, err
	}
	g.emit(rtl.NewAssign(t, rtl.RX(fv)))
	g.emit(rtl.NewLabel(endL))
	return t, nil
}

func (g *generator) genCall(x *minic.Call) (rtl.Reg, error) {
	// FEU math builtins expand inline.
	if op, ok := mathOps[x.Name]; ok {
		v, err := g.genExpr(x.Args[0])
		if err != nil {
			return rtl.Reg{}, err
		}
		t := g.out.NewVirt(rtl.Float)
		g.emit(rtl.NewAssign(t, rtl.Un{Op: op, X: rtl.RX(v)}))
		return t, nil
	}
	// Output builtins become put instructions.
	switch x.Name {
	case "putchar", "puti", "putd":
		v, err := g.genExpr(x.Args[0])
		if err != nil {
			return rtl.Reg{}, err
		}
		fmtByte := byte('c')
		if x.Name == "puti" {
			fmtByte = 'i'
		} else if x.Name == "putd" {
			fmtByte = 'd'
		}
		g.emit(&rtl.Instr{Kind: rtl.KPut, Fmt: fmtByte, Src: rtl.RX(v)})
		return v, nil // putchar's value is its argument
	}
	// Real call: evaluate arguments, move them to ABI registers, call,
	// then immediately copy out the result (r2/f2 are clobber-exposed).
	vals := make([]rtl.Reg, len(x.Args))
	for n, a := range x.Args {
		v, err := g.genExpr(a)
		if err != nil {
			return rtl.Reg{}, err
		}
		vals[n] = v
	}
	var abiRegs []rtl.Reg
	intArg, fltArg := rtl.FirstArgReg, rtl.FirstArgReg
	for _, v := range vals {
		var abi rtl.Reg
		if v.Class == rtl.Float {
			abi = rtl.F(fltArg)
			fltArg++
		} else {
			abi = rtl.R(intArg)
			intArg++
		}
		if abi.N > rtl.LastArgReg {
			return rtl.Reg{}, errPos(x.Pos(), "too many arguments to %q", x.Name)
		}
		g.emit(rtl.NewAssign(abi, rtl.RX(v)))
		abiRegs = append(abiRegs, abi)
	}
	g.emit(&rtl.Instr{Kind: rtl.KCall, Name: x.Name, Args: abiRegs})
	if x.Type() == minic.VoidType {
		return rtl.Reg{Class: rtl.Int, N: rtl.ZeroReg}, nil
	}
	c := classOf(x.Type())
	t := g.out.NewVirt(c)
	g.emit(rtl.NewAssign(t, rtl.RX(rtl.Reg{Class: c, N: rtl.ResultReg}))).Note = "call result"
	return t, nil
}

// genAddr emits code computing the address of an lvalue (or array) and
// returns the register holding it.
func (g *generator) genAddr(e minic.Expr) (rtl.Reg, error) {
	switch x := e.(type) {
	case *minic.Ident:
		sym := x.Sym
		if _, isReg := g.regs[sym]; isReg {
			return rtl.Reg{}, errPos(x.Pos(), "internal: address of register variable %q", sym.Name)
		}
		t := g.out.NewVirt(rtl.Int)
		if sym.Global {
			g.emit(rtl.NewAssign(t, rtl.Sym{Name: sym.AsmName})).Note = "address of " + sym.Name
			return t, nil
		}
		g.emit(rtl.NewAssign(t, g.spOff(g.slots[sym]))).Note = "address of " + sym.Name
		return t, nil

	case *minic.StrLit:
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.Sym{Name: x.Sym.AsmName}))
		return t, nil

	case *minic.Index:
		var base rtl.Reg
		var err error
		if x.Base.Type().Kind == minic.TypeArray {
			base, err = g.genAddr(x.Base)
		} else {
			base, err = g.genExpr(x.Base) // pointer value
		}
		if err != nil {
			return rtl.Reg{}, err
		}
		idx, err := g.genExpr(x.Idx)
		if err != nil {
			return rtl.Reg{}, err
		}
		scaled := g.scaleIndex(idx, x.Type().Size())
		t := g.out.NewVirt(rtl.Int)
		g.emit(rtl.NewAssign(t, rtl.B(rtl.Add, rtl.RX(scaled), rtl.RX(base))))
		return t, nil

	case *minic.Unary:
		if x.Op == "*" {
			return g.genExpr(x.X)
		}

	case *minic.Conv:
		if x.X.Type().Kind == minic.TypeArray {
			return g.genAddr(x.X)
		}
	}
	return rtl.Reg{}, fmt.Errorf("acode: cannot take address of %T", e)
}
