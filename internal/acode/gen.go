package acode

import (
	"fmt"

	"wmstream/internal/minic"
	"wmstream/internal/rtl"
)

// generator holds per-function code generation state.
type generator struct {
	prog *minic.Program
	fn   *minic.FuncDecl
	out  *rtl.Func

	nextLabel int
	curLine   int                       // source line stamped onto emitted instructions
	regs      map[*minic.VarSym]rtl.Reg // scalars promoted to virtual registers
	slots     map[*minic.VarSym]int     // frame offsets of memory-resident locals
	frame     int
	hasCalls  bool
	lrOff     int
	retLabel  string

	breakLbl []string
	contLbl  []string
}

// mathOps maps builtin math functions to their FEU operation.
var mathOps = map[string]rtl.Op{
	"sqrt": rtl.Sqrt, "sin": rtl.Sin, "cos": rtl.Cos, "exp": rtl.Exp,
	"log": rtl.Log, "atan": rtl.Atan, "fabs": rtl.Fabs,
}

func (g *generator) genFunc(fn *minic.FuncDecl) (*rtl.Func, error) {
	g.fn = fn
	g.out = rtl.NewFunc(fn.Name)
	g.regs = map[*minic.VarSym]rtl.Reg{}
	g.slots = map[*minic.VarSym]int{}
	g.retLabel = g.newLabel()
	g.out.UsesFloatResult = fn.Ret == minic.DoubleType

	addressed := map[*minic.VarSym]bool{}
	g.survey(fn.Body, addressed)

	// Frame layout: saved link register first (when this function makes
	// calls), then the memory-resident locals in declaration order.
	if g.hasCalls {
		g.lrOff = 0
		g.frame = 8
	}
	layout := func(sym *minic.VarSym) {
		a := sym.Ty.Align()
		g.frame = (g.frame + a - 1) &^ (a - 1)
		g.slots[sym] = g.frame
		g.frame += sym.Ty.Size()
	}
	classify := func(sym *minic.VarSym) {
		if sym.Ty.Kind == minic.TypeArray || addressed[sym] {
			layout(sym)
		} else {
			g.regs[sym] = g.out.NewVirt(classOf(sym.Ty))
		}
	}
	for _, p := range fn.Params {
		classify(p.Sym)
	}
	g.walkDecls(fn.Body, classify)
	g.frame = (g.frame + 7) &^ 7

	// Prologue.
	if g.frame > 0 {
		g.emit(rtl.NewAssign(rtl.RegSP, rtl.B(rtl.Sub, rtl.RX(rtl.RegSP), rtl.I(int64(g.frame))))).Note = "allocate frame"
	}
	if g.hasCalls {
		g.emit(rtl.NewAssign(rtl.R0, rtl.RX(rtl.RegLR))).Note = "save return address"
		g.emit(rtl.NewStore(rtl.R0, g.spOff(g.lrOff), 8))
	}
	intArg, fltArg := rtl.FirstArgReg, rtl.FirstArgReg
	for _, p := range fn.Params {
		var abi rtl.Reg
		if classOf(p.Ty) == rtl.Float {
			abi = rtl.F(fltArg)
			fltArg++
		} else {
			abi = rtl.R(intArg)
			intArg++
		}
		if abi.N > rtl.LastArgReg {
			return nil, errPos(p.Pos, "too many parameters in %q", fn.Name)
		}
		if r, ok := g.regs[p.Sym]; ok {
			g.emit(rtl.NewAssign(r, rtl.RX(abi))).Note = "param " + p.Name
		} else {
			g.storeTo(g.spOff(g.slots[p.Sym]), abi, p.Ty.Size())
		}
	}

	if err := g.genStmt(fn.Body); err != nil {
		return nil, err
	}

	// Epilogue.
	g.emit(rtl.NewLabel(g.retLabel))
	if g.hasCalls {
		g.emit(rtl.NewLoad(rtl.R0, g.spOff(g.lrOff), 8))
		g.emit(rtl.NewAssign(rtl.RegLR, rtl.RX(rtl.R0))).Note = "restore return address"
	}
	if g.frame > 0 {
		g.emit(rtl.NewAssign(rtl.RegSP, rtl.B(rtl.Add, rtl.RX(rtl.RegSP), rtl.I(int64(g.frame))))).Note = "release frame"
	}
	g.emit(&rtl.Instr{Kind: rtl.KRet})
	g.out.Frame = g.frame
	g.out.Renumber()
	return g.out, nil
}

// survey records address-taken locals and whether the function contains
// real calls (builtins expand inline and do not count).
func (g *generator) survey(s minic.Stmt, addressed map[*minic.VarSym]bool) {
	walkStmt(s, func(e minic.Expr) {
		switch x := e.(type) {
		case *minic.Unary:
			if x.Op == "&" {
				if id, ok := x.X.(*minic.Ident); ok {
					addressed[id.Sym] = true
				}
			}
		case *minic.Call:
			if x.Fn != nil {
				g.hasCalls = true
			}
		}
	})
}

// walkDecls calls fn for every local declaration in statement order.
func (g *generator) walkDecls(s minic.Stmt, fn func(*minic.VarSym)) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		for _, sub := range st.List {
			g.walkDecls(sub, fn)
		}
	case *minic.DeclStmt:
		for _, d := range st.Vars {
			fn(d.Sym)
		}
	case *minic.IfStmt:
		g.walkDecls(st.Then, fn)
		if st.Else != nil {
			g.walkDecls(st.Else, fn)
		}
	case *minic.WhileStmt:
		g.walkDecls(st.Body, fn)
	case *minic.ForStmt:
		g.walkDecls(st.Body, fn)
	}
}

// walkStmt visits every expression under s.
func walkStmt(s minic.Stmt, fn func(minic.Expr)) {
	var we func(e minic.Expr)
	we = func(e minic.Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *minic.Unary:
			we(x.X)
		case *minic.Binary:
			we(x.L)
			we(x.R)
		case *minic.Assign:
			we(x.L)
			we(x.R)
		case *minic.Cond:
			we(x.C)
			we(x.T2)
			we(x.F)
		case *minic.Call:
			for _, a := range x.Args {
				we(a)
			}
		case *minic.Index:
			we(x.Base)
			we(x.Idx)
		case *minic.Conv:
			we(x.X)
		}
	}
	switch st := s.(type) {
	case *minic.BlockStmt:
		for _, sub := range st.List {
			walkStmt(sub, fn)
		}
	case *minic.DeclStmt:
		for _, d := range st.Vars {
			we(d.Init)
			for _, e := range d.InitList {
				we(e)
			}
		}
	case *minic.ExprStmt:
		we(st.X)
	case *minic.IfStmt:
		we(st.Cond)
		walkStmt(st.Then, fn)
		if st.Else != nil {
			walkStmt(st.Else, fn)
		}
	case *minic.WhileStmt:
		we(st.Cond)
		walkStmt(st.Body, fn)
	case *minic.ForStmt:
		we(st.Init)
		we(st.Cond)
		we(st.Post)
		walkStmt(st.Body, fn)
	case *minic.ReturnStmt:
		we(st.X)
	}
}

// --- helpers -------------------------------------------------------------

func classOf(t *minic.Type) rtl.Class {
	if t.Kind == minic.TypeDouble {
		return rtl.Float
	}
	return rtl.Int
}

func fifoOf(c rtl.Class) rtl.Reg { return rtl.Reg{Class: c, N: rtl.FIFO0} }

func (g *generator) emit(i *rtl.Instr) *rtl.Instr {
	if i.Line == 0 {
		i.Line = g.curLine
	}
	return g.out.Append(i)
}

// at records the source line subsequent emits are attributed to.  Zero
// (unknown) positions keep the previous line, so compiler-synthesized
// code inherits the statement it expands.
func (g *generator) at(p minic.Pos) {
	if p.Line > 0 {
		g.curLine = p.Line
	}
}

func (g *generator) newLabel() string {
	g.nextLabel++
	return fmt.Sprintf("L%d", g.nextLabel)
}

func (g *generator) spOff(off int) rtl.Expr {
	if off == 0 {
		return rtl.RX(rtl.RegSP)
	}
	return rtl.B(rtl.Add, rtl.RX(rtl.RegSP), rtl.I(int64(off)))
}

// loadFrom emits a load/dequeue pair and returns the virtual register
// holding the loaded value.
func (g *generator) loadFrom(addr rtl.Expr, size int, c rtl.Class) rtl.Reg {
	g.emit(rtl.NewLoad(fifoOf(c), addr, size))
	t := g.out.NewVirt(c)
	g.emit(rtl.NewAssign(t, rtl.RX(fifoOf(c))))
	return t
}

// storeTo emits an enqueue/store pair.
func (g *generator) storeTo(addr rtl.Expr, val rtl.Reg, size int) {
	g.emit(rtl.NewAssign(fifoOf(val.Class), rtl.RX(val)))
	g.emit(rtl.NewStore(fifoOf(val.Class), addr, size))
}

func errPos(pos minic.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// memInfo returns the access size and register class for a scalar type.
func memInfo(t *minic.Type) (size int, c rtl.Class) {
	return t.Size(), classOf(t)
}

// log2 returns the base-2 logarithm of a power of two, or -1.
func log2(n int) int {
	for s := 0; s < 31; s++ {
		if 1<<s == n {
			return s
		}
	}
	return -1
}

// scaleIndex emits code computing idx*size naively.
func (g *generator) scaleIndex(idx rtl.Reg, size int) rtl.Reg {
	if size == 1 {
		return idx
	}
	t := g.out.NewVirt(rtl.Int)
	if s := log2(size); s >= 0 {
		g.emit(rtl.NewAssign(t, rtl.B(rtl.Shl, rtl.RX(idx), rtl.I(int64(s)))))
	} else {
		g.emit(rtl.NewAssign(t, rtl.B(rtl.Mul, rtl.RX(idx), rtl.I(int64(size)))))
	}
	return t
}
