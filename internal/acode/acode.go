// Package acode is the code expander: it lowers a checked Mini-C AST to
// naive but correct WM RTLs.
//
// Following the paper's compiler structure, this phase makes *no*
// code-quality decisions: every expression lands in a fresh virtual
// register, every global address is rematerialized at each use, and all
// loads/stores go through the architectural FIFO registers in the
// load/dequeue (store/enqueue) pairs the hardware requires.  All
// optimization is delayed to package opt, which operates on the emitted
// RTLs exactly as vpo does.
//
// One departure from strictly-naive code is folded in here: scalar
// locals whose address is never taken live in virtual registers rather
// than stack slots.  The paper performs the equivalent promotion during
// early optimization (its Figure 4 "unoptimized" listing already has i
// in r22); doing it during expansion avoids a separate pattern-matching
// pass without changing any downstream behaviour.
package acode

import (
	"encoding/binary"
	"fmt"
	"math"

	"wmstream/internal/minic"
	"wmstream/internal/rtl"
)

// Gen lowers a checked program to RTL.  The returned program's entry
// point is the synthetic function "_start", which calls main and halts.
func Gen(prog *minic.Program) (*rtl.Program, error) {
	if prog.Func("main") == nil {
		return nil, fmt.Errorf("acode: program has no main function")
	}
	out := &rtl.Program{Entry: "_start", Source: prog.Source}
	for _, d := range prog.Globals {
		item, err := globalData(d)
		if err != nil {
			return nil, err
		}
		out.AddGlobal(item)
	}
	for _, s := range prog.Strings {
		data := make([]byte, len(s.V)+1)
		copy(data, s.V)
		out.AddGlobal(&rtl.DataItem{Name: s.Sym.AsmName, Size: len(data), Align: 1, Init: data})
	}
	for _, fn := range prog.Funcs {
		g := &generator{prog: prog}
		rf, err := g.genFunc(fn)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, rf)
	}
	start := rtl.NewFunc("_start")
	start.Append(&rtl.Instr{Kind: rtl.KCall, Name: "main"})
	start.Append(&rtl.Instr{Kind: rtl.KHalt})
	out.Funcs = append(out.Funcs, start)
	return out, nil
}

// globalData converts a global declaration into an initialized data
// item.
func globalData(d *minic.VarDecl) (*rtl.DataItem, error) {
	item := &rtl.DataItem{Name: d.Sym.AsmName, Size: d.Ty.Size(), Align: d.Ty.Align()}
	if !d.HasInit {
		return item, nil
	}
	buf := make([]byte, item.Size)
	switch {
	case d.InitStr != "":
		copy(buf, d.InitStr)
	case d.InitList != nil:
		esz := d.Ty.Elem.Size()
		for n, e := range d.InitList {
			if err := encodeConst(buf[n*esz:], d.Ty.Elem, e); err != nil {
				return nil, err
			}
		}
	default:
		if err := encodeConst(buf, d.Ty, d.Init); err != nil {
			return nil, err
		}
	}
	item.Init = buf
	return item, nil
}

func encodeConst(buf []byte, ty *minic.Type, e minic.Expr) error {
	iv, fv, isFloat, ok := constValue(e)
	if !ok {
		return fmt.Errorf("acode: non-constant global initializer")
	}
	switch ty.Kind {
	case minic.TypeChar:
		if isFloat {
			iv = int64(fv)
		}
		buf[0] = byte(iv)
	case minic.TypeInt:
		if isFloat {
			iv = int64(fv)
		}
		binary.LittleEndian.PutUint32(buf, uint32(iv))
	case minic.TypeDouble:
		if !isFloat {
			fv = float64(iv)
		}
		binary.LittleEndian.PutUint64(buf, math.Float64bits(fv))
	default:
		return fmt.Errorf("acode: cannot initialize %s", ty)
	}
	return nil
}

func constValue(e minic.Expr) (iv int64, fv float64, isFloat, ok bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.V, 0, false, true
	case *minic.FloatLit:
		return 0, x.V, true, true
	case *minic.Conv:
		iv, fv, isFloat, ok = constValue(x.X)
		if !ok {
			return
		}
		if x.Type().Kind == minic.TypeDouble && !isFloat {
			return 0, float64(iv), true, true
		}
		if x.Type().IsInteger() && isFloat {
			return int64(fv), 0, false, true
		}
		return
	case *minic.Unary:
		if x.Op == "-" {
			iv, fv, isFloat, ok = constValue(x.X)
			return -iv, -fv, isFloat, ok
		}
	}
	return 0, 0, false, false
}
