package acode

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"wmstream/internal/minic"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// gen compiles Mini-C to naive RTL.
func gen(t *testing.T, src string) *rtl.Program {
	t.Helper()
	ast, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Gen(ast)
	if err != nil {
		t.Fatalf("acode: %v", err)
	}
	return p
}

// runO0 compiles, register-allocates (no optimization) and executes,
// returning the output text.
func runO0(t *testing.T, src string) string {
	t.Helper()
	p := gen(t, src)
	if err := opt.Optimize(p, opt.Options{}); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	img, err := sim.Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	cfg := sim.DefaultConfig()
	var out bytes.Buffer
	cfg.Output = &out
	if _, err := sim.New(img, cfg).Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, p.String())
	}
	return out.String()
}

func TestEntryPoint(t *testing.T) {
	p := gen(t, `int main(void) { return 0; }`)
	if p.Entry != "_start" {
		t.Errorf("entry = %q", p.Entry)
	}
	start := p.Func("_start")
	if start == nil || start.Code[0].Kind != rtl.KCall || start.Code[0].Name != "main" {
		t.Fatalf("_start shape wrong:\n%s", start.Listing())
	}
	if start.Code[1].Kind != rtl.KHalt {
		t.Error("_start must halt")
	}
}

func TestMissingMainRejected(t *testing.T) {
	ast, err := minic.Compile(`int f(void) { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gen(ast); err == nil {
		t.Fatal("program without main accepted")
	}
}

func TestGlobalInitializers(t *testing.T) {
	p := gen(t, `
int a = -5;
double d = 2.5;
char c = 'x';
int tab[3] = {7, 8, 9};
char s[8] = "hi";
int main(void) { return 0; }
`)
	g := p.Global("a")
	if g == nil || int32(binary.LittleEndian.Uint32(g.Init)) != -5 {
		t.Errorf("a init wrong: %+v", g)
	}
	gd := p.Global("d")
	if gd == nil || math.Float64frombits(binary.LittleEndian.Uint64(gd.Init)) != 2.5 {
		t.Errorf("d init wrong: %+v", gd)
	}
	gc := p.Global("c")
	if gc == nil || gc.Init[0] != 'x' {
		t.Errorf("c init wrong: %+v", gc)
	}
	gt := p.Global("tab")
	if gt == nil || binary.LittleEndian.Uint32(gt.Init[4:]) != 8 {
		t.Errorf("tab init wrong: %+v", gt)
	}
	gs := p.Global("s")
	if gs == nil || string(gs.Init[:2]) != "hi" || gs.Init[2] != 0 {
		t.Errorf("s init wrong: %+v", gs)
	}
}

func TestStringLiteralGlobals(t *testing.T) {
	p := gen(t, `
int f(char *s) { return s[0]; }
int main(void) { return f("abc"); }
`)
	found := false
	for _, g := range p.Globals {
		if strings.HasPrefix(g.Name, "Lstr") && len(g.Init) == 4 && string(g.Init[:3]) == "abc" {
			found = true
		}
	}
	if !found {
		t.Errorf("string literal global missing: %+v", p.Globals)
	}
}

func TestNaiveShapeLoadsViaFIFO(t *testing.T) {
	p := gen(t, `
double x[4];
int main(void) { putd(x[2]); return 0; }
`)
	f := p.Func("main")
	// Expect a KLoad followed by a dequeue from f0.
	for n, i := range f.Code {
		if i.Kind == rtl.KLoad && i.MemClass == rtl.Float {
			next := f.Code[n+1]
			rx, ok := next.Src.(rtl.RegX)
			if next.Kind != rtl.KAssign || !ok || !rx.Reg.IsFIFO() {
				t.Fatalf("load not followed by dequeue:\n%s", f.Listing())
			}
			return
		}
	}
	t.Fatalf("no float load emitted:\n%s", f.Listing())
}

func TestPrologueSavesLinkRegisterWhenCalling(t *testing.T) {
	p := gen(t, `
void g(void) {}
int main(void) { g(); return 0; }
`)
	f := p.Func("main")
	savesLR := false
	for _, i := range f.Code {
		if i.Kind == rtl.KAssign && i.Dst.IsFIFO() {
			if rx, ok := i.Src.(rtl.RegX); ok && rx.Reg == rtl.RegLR {
				savesLR = true
			}
		}
	}
	if !savesLR {
		t.Errorf("caller does not save link register:\n%s", f.Listing())
	}
	leaf := p.Func("g")
	for _, i := range leaf.Code {
		if i.Kind == rtl.KStore {
			t.Errorf("leaf function saves link register:\n%s", leaf.Listing())
		}
	}
}

// --- end-to-end semantics at O0 (pure code generator correctness) ---------

func TestArithmeticSemantics(t *testing.T) {
	out := runO0(t, `
int main(void) {
    puti(7 + 3 * 4 - 20 / 4 % 3);
    putchar(' ');
    puti((1 << 6) | (255 & 15) ^ 5);
    putchar(' ');
    puti(-(5 - 9));
    putchar(' ');
    puti(~0);
    return 0;
}`)
	if out != "17 74 4 -1" {
		t.Errorf("output = %q", out)
	}
}

func TestComparisonAndLogical(t *testing.T) {
	out := runO0(t, `
int main(void) {
    puti(3 < 4);
    puti(4 <= 3);
    puti(5 == 5);
    puti(5 != 5);
    puti(1 && 0);
    puti(1 || 0);
    puti(!42);
    return 0;
}`)
	if out != "1010010" {
		t.Errorf("output = %q, want 1010010", out)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	out := runO0(t, `
int hits;
int bump(int v) { hits = hits + 1; return v; }
int main(void) {
    hits = 0;
    if (bump(0) && bump(1)) putchar('x');
    if (bump(1) || bump(1)) putchar('y');
    puti(hits);
    return 0;
}`)
	if out != "y2" {
		t.Errorf("output = %q, want y2 (short circuit broken)", out)
	}
}

func TestIncDecSemantics(t *testing.T) {
	out := runO0(t, `
int a[3];
int main(void) {
    int i, x;
    i = 0;
    a[i++] = 10;
    a[i++] = 20;
    a[--i] = 21;
    x = ++i;
    puti(a[0]); putchar(' ');
    puti(a[1]); putchar(' ');
    puti(x); putchar(' ');
    puti(i);
    return 0;
}`)
	if out != "10 21 2 2" {
		t.Errorf("output = %q", out)
	}
}

func TestPointerSemantics(t *testing.T) {
	out := runO0(t, `
int v[4];
int sum(int *p, int n) {
    int s, i;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + *(p + i);
    return s;
}
int main(void) {
    int *q;
    int i;
    for (i = 0; i < 4; i++)
        v[i] = (i + 1) * 10;
    q = &v[1];
    puti(sum(v, 4)); putchar(' ');
    puti(q[1]); putchar(' ');
    puti(&v[3] - v);
    return 0;
}`)
	if out != "100 30 3" {
		t.Errorf("output = %q", out)
	}
}

func TestAddressedLocalGoesToStack(t *testing.T) {
	out := runO0(t, `
void set(int *p) { *p = 77; }
int main(void) {
    int local;
    local = 1;
    set(&local);
    puti(local);
    return 0;
}`)
	if out != "77" {
		t.Errorf("output = %q", out)
	}
}

func TestRecursionSemantics(t *testing.T) {
	out := runO0(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { puti(fib(15)); return 0; }`)
	if out != "610" {
		t.Errorf("fib(15) = %q", out)
	}
}

func TestDoubleSemantics(t *testing.T) {
	out := runO0(t, `
int main(void) {
    double a, b;
    a = 1.5;
    b = a * 4.0 + 0.25;
    putd(b / 2.0);
    putchar(' ');
    puti(b > a);
    putchar(' ');
    puti(b);
    return 0;
}`)
	if out != "3.125 1 6" {
		t.Errorf("output = %q", out)
	}
}

func TestCharTruncationAndSignExtension(t *testing.T) {
	out := runO0(t, `
char c;
int main(void) {
    c = 300;      /* truncates to 44 */
    puti(c); putchar(' ');
    c = -1;       /* 0xff, sign extends back to -1 */
    puti(c);
    return 0;
}`)
	if out != "44 -1" {
		t.Errorf("output = %q", out)
	}
}

func TestWhileDoWhileFor(t *testing.T) {
	out := runO0(t, `
int main(void) {
    int i, s;
    s = 0;
    i = 0;
    while (i < 3) { s = s + 1; i++; }
    do { s = s + 10; } while (0);
    for (i = 10; i > 8; i--) s = s + 100;
    puti(s);
    return 0;
}`)
	if out != "213" {
		t.Errorf("output = %q", out)
	}
}

func TestBreakContinue(t *testing.T) {
	out := runO0(t, `
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++) {
        if (i == 7) break;
        if (i % 2) continue;
        s = s + i;
    }
    puti(s);
    return 0;
}`)
	if out != "12" { // 0+2+4+6
		t.Errorf("output = %q", out)
	}
}

func TestTernarySemantics(t *testing.T) {
	out := runO0(t, `
int main(void) {
    int a;
    a = 5;
    puti(a > 3 ? a * 2 : a - 1);
    putchar(' ');
    puti(a < 3 ? a * 2 : a - 1);
    return 0;
}`)
	if out != "10 4" {
		t.Errorf("output = %q", out)
	}
}

func TestLocalArrayAndStringInit(t *testing.T) {
	out := runO0(t, `
int main(void) {
    int t[3] = {4, 5, 6};
    char s[4] = "ab";
    puti(t[0] + t[1] + t[2]);
    putchar(s[0]);
    putchar(s[1]);
    puti(s[2]);
    return 0;
}`)
	if out != "15ab0" {
		t.Errorf("output = %q", out)
	}
}

func TestMathBuiltinsInline(t *testing.T) {
	p := gen(t, `int main(void) { putd(sqrt(2.0)); return 0; }`)
	f := p.Func("main")
	for _, i := range f.Code {
		if i.Kind == rtl.KCall {
			t.Fatalf("math builtin compiled to a call:\n%s", f.Listing())
		}
	}
	out := runO0(t, `int main(void) { putd(sqrt(16.0) + fabs(-1.0)); return 0; }`)
	if out != "5" {
		t.Errorf("output = %q", out)
	}
}

func TestConversionSemantics(t *testing.T) {
	out := runO0(t, `
int main(void) {
    int i;
    double d;
    i = 7;
    d = i;         /* int -> double */
    d = d / 2.0;
    i = d;         /* double -> int truncates */
    puti(i);
    putchar(' ');
    putd(d);
    return 0;
}`)
	if out != "3 3.5" {
		t.Errorf("output = %q", out)
	}
}
