package acode

import (
	"fmt"

	"wmstream/internal/minic"
	"wmstream/internal/rtl"
)

func (g *generator) genStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		for _, sub := range st.List {
			if err := g.genStmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *minic.DeclStmt:
		for _, d := range st.Vars {
			if err := g.genLocalInit(d); err != nil {
				return err
			}
		}
		return nil

	case *minic.ExprStmt:
		_, err := g.genExpr(st.X)
		return err

	case *minic.IfStmt:
		elseL := g.newLabel()
		if err := g.genBranch(st.Cond, elseL, false); err != nil {
			return err
		}
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			endL := g.newLabel()
			g.emit(rtl.NewJump(endL))
			g.emit(rtl.NewLabel(elseL))
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
			g.emit(rtl.NewLabel(endL))
		} else {
			g.emit(rtl.NewLabel(elseL))
		}
		return nil

	case *minic.WhileStmt:
		// Rotated loop: guard at the top (skipped for do-while), test at
		// the bottom.  This is the shape the paper's Figure 4 shows and
		// gives the loop a preheader and a single latch.
		bodyL, contL, exitL := g.newLabel(), g.newLabel(), g.newLabel()
		if !st.DoWhile {
			if err := g.genBranch(st.Cond, exitL, false); err != nil {
				return err
			}
		}
		g.emit(rtl.NewLabel(bodyL))
		g.breakLbl = append(g.breakLbl, exitL)
		g.contLbl = append(g.contLbl, contL)
		err := g.genStmt(st.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.emit(rtl.NewLabel(contL))
		if err := g.genBranch(st.Cond, bodyL, true); err != nil {
			return err
		}
		g.emit(rtl.NewLabel(exitL))
		return nil

	case *minic.ForStmt:
		if st.Init != nil {
			if _, err := g.genExpr(st.Init); err != nil {
				return err
			}
		}
		bodyL, contL, exitL := g.newLabel(), g.newLabel(), g.newLabel()
		if st.Cond != nil {
			if err := g.genBranch(st.Cond, exitL, false); err != nil {
				return err
			}
		}
		g.emit(rtl.NewLabel(bodyL))
		g.breakLbl = append(g.breakLbl, exitL)
		g.contLbl = append(g.contLbl, contL)
		err := g.genStmt(st.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.emit(rtl.NewLabel(contL))
		if st.Post != nil {
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := g.genBranch(st.Cond, bodyL, true); err != nil {
				return err
			}
		} else {
			g.emit(rtl.NewJump(bodyL))
		}
		g.emit(rtl.NewLabel(exitL))
		return nil

	case *minic.ReturnStmt:
		g.at(st.Pos)
		if st.X != nil {
			v, err := g.genExpr(st.X)
			if err != nil {
				return err
			}
			if v.Class == rtl.Float {
				g.emit(rtl.NewAssign(rtl.F(rtl.ResultReg), rtl.RX(v))).Note = "return value"
			} else {
				g.emit(rtl.NewAssign(rtl.R(rtl.ResultReg), rtl.RX(v))).Note = "return value"
			}
		}
		g.emit(rtl.NewJump(g.retLabel))
		return nil

	case *minic.BreakStmt:
		g.at(st.Pos)
		g.emit(rtl.NewJump(g.breakLbl[len(g.breakLbl)-1]))
		return nil

	case *minic.ContinueStmt:
		g.at(st.Pos)
		g.emit(rtl.NewJump(g.contLbl[len(g.contLbl)-1]))
		return nil
	}
	return fmt.Errorf("acode: unknown statement %T", s)
}

// genLocalInit emits initialization code for one local declaration.
func (g *generator) genLocalInit(d *minic.VarDecl) error {
	if !d.HasInit {
		return nil
	}
	g.at(d.Pos)
	sym := d.Sym
	switch {
	case d.InitStr != "":
		off := g.slots[sym]
		for n := 0; n <= len(d.InitStr); n++ { // include NUL
			var b byte
			if n < len(d.InitStr) {
				b = d.InitStr[n]
			}
			t := g.out.NewVirt(rtl.Int)
			g.emit(rtl.NewAssign(t, rtl.I(int64(b))))
			g.storeTo(g.spOff(off+n), t, 1)
		}
		return nil
	case d.InitList != nil:
		off := g.slots[sym]
		esz := d.Ty.Elem.Size()
		for n, e := range d.InitList {
			v, err := g.genExpr(e)
			if err != nil {
				return err
			}
			g.storeTo(g.spOff(off+n*esz), v, esz)
		}
		return nil
	default:
		v, err := g.genExpr(d.Init)
		if err != nil {
			return err
		}
		if r, ok := g.regs[sym]; ok {
			g.emit(rtl.NewAssign(r, rtl.RX(v))).Note = "init " + d.Name
			return nil
		}
		g.storeTo(g.spOff(g.slots[sym]), v, d.Ty.Size())
		return nil
	}
}

// genBranch emits code branching to target when the truth value of e
// equals sense.  Relational and logical operators branch directly;
// anything else is compared against zero.
func (g *generator) genBranch(e minic.Expr, target string, sense bool) error {
	g.at(e.Pos())
	switch x := e.(type) {
	case *minic.Binary:
		switch x.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			l, err := g.genExpr(x.L)
			if err != nil {
				return err
			}
			r, err := g.genExpr(x.R)
			if err != nil {
				return err
			}
			op, err := relOp(x.Op)
			if err != nil {
				return err
			}
			cc := l.Class
			zero := rtl.Reg{Class: cc, N: rtl.ZeroReg}
			g.emit(rtl.NewAssign(zero, rtl.B(op, rtl.RX(l), rtl.RX(r))))
			g.emit(rtl.NewCondJump(target, sense, cc))
			return nil
		case "&&":
			if sense {
				skip := g.newLabel()
				if err := g.genBranch(x.L, skip, false); err != nil {
					return err
				}
				if err := g.genBranch(x.R, target, true); err != nil {
					return err
				}
				g.emit(rtl.NewLabel(skip))
				return nil
			}
			if err := g.genBranch(x.L, target, false); err != nil {
				return err
			}
			return g.genBranch(x.R, target, false)
		case "||":
			if sense {
				if err := g.genBranch(x.L, target, true); err != nil {
					return err
				}
				return g.genBranch(x.R, target, true)
			}
			skip := g.newLabel()
			if err := g.genBranch(x.L, skip, true); err != nil {
				return err
			}
			if err := g.genBranch(x.R, target, false); err != nil {
				return err
			}
			g.emit(rtl.NewLabel(skip))
			return nil
		}
	case *minic.Unary:
		if x.Op == "!" {
			return g.genBranch(x.X, target, !sense)
		}
	case *minic.IntLit:
		if (x.V != 0) == sense {
			g.emit(rtl.NewJump(target))
		}
		return nil
	}
	// General scalar: compare against zero.
	v, err := g.genExpr(e)
	if err != nil {
		return err
	}
	zero := rtl.Reg{Class: v.Class, N: rtl.ZeroReg}
	var zval rtl.Expr = rtl.I(0)
	if v.Class == rtl.Float {
		zval = rtl.FImm{V: 0}
	}
	g.emit(rtl.NewAssign(zero, rtl.B(rtl.Ne, rtl.RX(v), zval)))
	g.emit(rtl.NewCondJump(target, sense, v.Class))
	return nil
}

func relOp(op string) (rtl.Op, error) {
	switch op {
	case "<":
		return rtl.Lt, nil
	case "<=":
		return rtl.Le, nil
	case ">":
		return rtl.Gt, nil
	case ">=":
		return rtl.Ge, nil
	case "==":
		return rtl.Eq, nil
	case "!=":
		return rtl.Ne, nil
	}
	return 0, fmt.Errorf("acode: bad relational %q", op)
}
