// Package rtl defines the register transfer list (RTL) intermediate
// representation used throughout the compiler and consumed by the WM
// simulator.
//
// An RTL describes the effect of a single machine instruction as an
// assignment (or control transfer) over the hardware's storage cells, in
// the style of the vpo optimizer the paper is built on.  Any particular
// RTL is machine specific, but the *form* of an RTL is machine
// independent, which is what lets the optimization passes in package opt
// remain machine independent while transforming machine-level code.
//
// # Register model
//
// The WM machine has 32 integer registers (r0..r31) and 32 floating-point
// registers (f0..f31).  Registers with special architectural meaning:
//
//	r31, f31   always zero; writes are discarded
//	r0,  f0    FIFO registers: reading dequeues from the unit's input
//	           (load) FIFO, writing enqueues to the output (store) FIFO
//	r1,  f1    second FIFO pair, available in streaming mode
//	r29        stack pointer (ABI, grows down from 1 MiB)
//	r30        link register (ABI)
//
// Registers with numbers >= VirtualBase are virtual registers created by
// the code expander; the register assignment pass in package opt maps
// them onto r2..r27 / f2..f27.
//
// # Invented ABI
//
// The paper does not specify a calling convention, so this reproduction
// defines one: integer arguments in r2..r9, float arguments in f2..f9,
// integer results in r2, float results in f2, r30 holds the return
// address, r29 is the stack pointer, and all allocatable registers are
// caller-saved (the optimizer never keeps values live across calls).
// Globals are laid out from address 0x1000 upward.
//
// # Instruction forms
//
// The central WM instruction form is the dual-operation RTL
//
//	dst := (a op1 b) op2 c
//
// executed by a two-stage ALU pipeline; loads compute only an address
// (data arrives in the input FIFO), and stores pair an address with a
// value enqueued in the output FIFO.  Stream instructions direct a
// stream control unit to perform an entire strided access sequence.
// See the Instr type for the complete kind list.
package rtl
