package rtl

import (
	"strings"
	"testing"
)

func checkParse(t *testing.T, body string) *Func {
	t.Helper()
	p, err := Parse(".func t\n" + body + "\n.end\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Func("t")
}

func TestCheckFuncAcceptsWellFormed(t *testing.T) {
	f := checkParse(t, `
rv0 := 2
r31 := (rv0 < 10)
jumpTr L1
L1:
l32r r0, _x
r2 := r0
ret`)
	if err := CheckFunc(f, true); err != nil {
		t.Errorf("well-formed function rejected: %v", err)
	}
}

func TestCheckFuncRejectsUnresolvedTarget(t *testing.T) {
	f := checkParse(t, `
r31 := (1 < 2)
jumpTr L1
ret`)
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("unresolved target not caught: %v", err)
	}
}

func TestCheckFuncRejectsDuplicateLabel(t *testing.T) {
	f := checkParse(t, `
L1:
L1:
ret`)
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate label not caught: %v", err)
	}
}

func TestCheckFuncRejectsMissingSource(t *testing.T) {
	f := NewFunc("t")
	f.Append(&Instr{Kind: KAssign, Dst: R(2)}) // Src nil
	f.Append(&Instr{Kind: KRet})
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "without source") {
		t.Errorf("nil source not caught: %v", err)
	}
}

func TestCheckFuncRejectsOrphanCondJump(t *testing.T) {
	// A conditional jump consuming integer CCs with no integer compare
	// anywhere: the CC enqueue was erased (e.g. by over-aggressive
	// folding) and the branch would stall forever.
	f := checkParse(t, `
L1:
jumpTr L1
ret`)
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "no int compare") {
		t.Errorf("orphan conditional jump not caught: %v", err)
	}
}

func TestCheckFuncRejectsBadAccessSize(t *testing.T) {
	f := NewFunc("t")
	f.Append(&Instr{Kind: KLoad, FIFO: R0, MemClass: Int, MemSize: 3, Addr: Imm{V: 0}})
	f.Append(&Instr{Kind: KRet})
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("bad access size not caught: %v", err)
	}
}

func TestCheckFuncRejectsNonFIFOStream(t *testing.T) {
	f := NewFunc("t")
	f.Append(&Instr{Kind: KStreamIn, FIFO: R(5), MemClass: Int, MemSize: 4,
		Base: Imm{V: 0}, Count: Imm{V: 1}, Stride: Imm{V: 4}})
	f.Append(&Instr{Kind: KRet})
	err := CheckFunc(f, true)
	if err == nil || !strings.Contains(err.Error(), "FIFO") {
		t.Errorf("non-FIFO stream register not caught: %v", err)
	}
}

func TestCheckFuncVirtualRegisters(t *testing.T) {
	f := checkParse(t, `
rv0 := 1
r2 := rv0
ret`)
	if err := CheckFunc(f, true); err != nil {
		t.Errorf("virtual registers rejected before allocation: %v", err)
	}
	err := CheckFunc(f, false)
	if err == nil || !strings.Contains(err.Error(), "virtual") {
		t.Errorf("virtual register after allocation not caught: %v", err)
	}
}

func TestCheckProgramNamesFunction(t *testing.T) {
	p, err := Parse(".func good\nret\n.end\n.func bad\njump NOPE\nret\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	cerr := CheckProgram(p, true)
	if cerr == nil || !strings.Contains(cerr.Error(), "bad:") {
		t.Errorf("program check does not name the function: %v", cerr)
	}
}
