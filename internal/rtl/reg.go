package rtl

import "fmt"

// Class distinguishes the two scalar register files (and execution units)
// of the WM architecture: the integer unit (IEU) and the floating-point
// unit (FEU).
type Class uint8

const (
	// Int selects the integer register file / execution unit.
	Int Class = iota
	// Float selects the floating-point register file / execution unit.
	Float
)

// NumClasses is the number of register classes.
const NumClasses = 2

func (c Class) String() string {
	if c == Int {
		return "int"
	}
	return "float"
}

// Letter returns the register-name prefix for the class: "r" or "f".
func (c Class) Letter() string {
	if c == Int {
		return "r"
	}
	return "f"
}

// Architectural register numbers with special meaning.  Numbers at or
// above VirtualBase denote compiler-created virtual registers that exist
// only before register assignment.
const (
	// FIFO0 is register 0: the primary load/store FIFO pair of a unit.
	FIFO0 = 0
	// FIFO1 is register 1: the secondary FIFO pair, used in streaming mode.
	FIFO1 = 1
	// SP is the stack pointer (integer class only, by ABI).
	SP = 29
	// LR is the link register (integer class only, by ABI).
	LR = 30
	// ZeroReg is register 31: always zero, writes discarded.
	ZeroReg = 31
	// NumArchRegs is the number of architectural registers per class.
	NumArchRegs = 32
	// VirtualBase is the first virtual register number.
	VirtualBase = 32
)

// Reg names a single storage cell: a register of one of the two classes.
type Reg struct {
	Class Class
	N     int
}

// Convenience constructors for commonly used registers.
var (
	R0    = Reg{Int, FIFO0}
	R1    = Reg{Int, FIFO1}
	R31   = Reg{Int, ZeroReg}
	RegSP = Reg{Int, SP}
	RegLR = Reg{Int, LR}
	F0    = Reg{Float, FIFO0}
	F1    = Reg{Float, FIFO1}
	F31   = Reg{Float, ZeroReg}
)

// R returns the integer register rN.
func R(n int) Reg { return Reg{Int, n} }

// F returns the floating-point register fN.
func F(n int) Reg { return Reg{Float, n} }

// IsVirtual reports whether the register is a compiler-created virtual
// register (not yet assigned to hardware).
func (r Reg) IsVirtual() bool { return r.N >= VirtualBase }

// IsZero reports whether the register is the hardwired zero register of
// its class.
func (r Reg) IsZero() bool { return r.N == ZeroReg }

// IsFIFO reports whether the register is one of the architectural FIFO
// registers (r0/r1/f0/f1).  Reads and writes of FIFO registers have
// queue side effects and constrain the optimizer.
func (r Reg) IsFIFO() bool { return r.N == FIFO0 || r.N == FIFO1 }

func (r Reg) String() string {
	if r.IsVirtual() {
		return fmt.Sprintf("%sv%d", r.Class.Letter(), r.N-VirtualBase)
	}
	return fmt.Sprintf("%s%d", r.Class.Letter(), r.N)
}

// ParseReg parses a register name of the form r12, f3, rv7, fv0.
func ParseReg(s string) (Reg, bool) {
	if len(s) < 2 {
		return Reg{}, false
	}
	var c Class
	switch s[0] {
	case 'r':
		c = Int
	case 'f':
		c = Float
	default:
		return Reg{}, false
	}
	rest := s[1:]
	virtual := false
	if rest[0] == 'v' {
		virtual = true
		rest = rest[1:]
	}
	n := 0
	if rest == "" {
		return Reg{}, false
	}
	for _, ch := range rest {
		if ch < '0' || ch > '9' {
			return Reg{}, false
		}
		n = n*10 + int(ch-'0')
	}
	if virtual {
		n += VirtualBase
	} else if n >= NumArchRegs {
		return Reg{}, false
	}
	return Reg{c, n}, true
}
