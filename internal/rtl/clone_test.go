package rtl

import "testing"

func cloneFixture() *Func {
	f := NewFunc("fix")
	f.Frame = 16
	f.Append(NewLabel("L1"))
	f.Append(&Instr{Kind: KAssign, Dst: Reg{Class: Int, N: 4}, Src: Bin{Op: Add, L: RegX{Reg{Class: Int, N: 5}}, R: Imm{1}}})
	f.Append(&Instr{Kind: KCall, Name: "g", Args: []Reg{{Class: Int, N: 4}}})
	f.Append(&Instr{Kind: KJump, Target: "L1"})
	return f
}

func TestCloneIsDeep(t *testing.T) {
	f := cloneFixture()
	want := f.Listing()
	c := f.Clone()
	if c.Listing() != want {
		t.Fatalf("clone differs from original:\n%s\nwant:\n%s", c.Listing(), want)
	}
	// Mutate the clone every way a pass mutates a function: replace an
	// instruction's fields, edit a shared-slice element, append, and
	// change scalar metadata.
	c.Code[1].Dst = Reg{Class: Int, N: 9}
	c.Code[2].Args[0] = Reg{Class: Int, N: 9}
	c.Code = append(c.Code, &Instr{Kind: KRet})
	c.Frame = 99
	c.Name = "mutant"
	if got := f.Listing(); got != want {
		t.Errorf("mutating the clone changed the original:\n%s\nwant:\n%s", got, want)
	}
	if f.Frame != 16 || f.Name != "fix" {
		t.Errorf("clone shares metadata: Frame=%d Name=%q", f.Frame, f.Name)
	}
}

func TestRestoreRollsBack(t *testing.T) {
	f := cloneFixture()
	want := f.Listing()
	keep := f // an outstanding reference, as the pipeline holds one
	snap := f.Clone()
	f.Code = f.Code[:1]
	f.Code[0] = &Instr{Kind: KRet}
	f.Frame = 0
	f.Restore(snap)
	if got := f.Listing(); got != want {
		t.Errorf("restore did not roll back:\n%s\nwant:\n%s", got, want)
	}
	if keep.Listing() != want || keep.Frame != 16 {
		t.Errorf("outstanding reference sees stale state after restore")
	}
}
