package rtl

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program in the assembler syntax produced by
// Program.String / Func.Listing.  The format is line oriented:
//
//	.entry main
//	.data x 800000 align=8 [init=<hex>]
//	.func main frame=16
//	  3.     r22 := 2            -- optional comment
//	  4. L20:
//	  5.     l64f f0, ((r22 << 3) + r24)
//	.end
//
// Leading line numbers ("3.") are optional, as are comments introduced
// by "--" or ";".
func Parse(src string) (*Program, error) {
	p := &Program{}
	var cur *Func
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, ".entry"):
			p.Entry = strings.TrimSpace(strings.TrimPrefix(line, ".entry"))
		case strings.HasPrefix(line, ".data"):
			g, err := parseData(strings.TrimPrefix(line, ".data"))
			if err != nil {
				return nil, fail("%v", err)
			}
			p.AddGlobal(g)
		case strings.HasPrefix(line, ".func"):
			if cur != nil {
				return nil, fail("nested .func")
			}
			fields := strings.Fields(strings.TrimPrefix(line, ".func"))
			if len(fields) == 0 {
				return nil, fail(".func needs a name")
			}
			cur = NewFunc(fields[0])
			for _, f := range fields[1:] {
				if v, ok := strings.CutPrefix(f, "frame="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fail("bad frame: %v", err)
					}
					cur.Frame = n
				}
			}
		case line == ".end":
			if cur == nil {
				return nil, fail(".end without .func")
			}
			cur.Renumber()
			p.Funcs = append(p.Funcs, cur)
			cur = nil
		default:
			if cur == nil {
				return nil, fail("instruction outside .func: %q", line)
			}
			instr, err := ParseInstr(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			// Track virtual register high-water marks.
			noteVirts(cur, instr)
			cur.Code = append(cur.Code, instr)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("missing .end for function %s", cur.Name)
	}
	return p, nil
}

func noteVirts(f *Func, i *Instr) {
	seen := func(r Reg) {
		if r.IsVirtual() {
			f.SetNumVirt(r.Class, r.N-VirtualBase+1)
		}
	}
	if d, ok := i.Def(); ok {
		seen(d)
	}
	for _, r := range i.Uses(nil) {
		seen(r)
	}
}

func stripComment(line string) string {
	if idx := strings.Index(line, "--"); idx >= 0 {
		line = line[:idx]
	}
	if idx := strings.Index(line, ";"); idx >= 0 {
		line = line[:idx]
	}
	return line
}

func parseData(rest string) (*DataItem, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, fmt.Errorf(".data needs name and size")
	}
	size, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("bad size: %v", err)
	}
	g := &DataItem{Name: fields[0], Size: size, Align: 8}
	for _, f := range fields[2:] {
		if v, ok := strings.CutPrefix(f, "align="); ok {
			a, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad align: %v", err)
			}
			g.Align = a
		}
		if v, ok := strings.CutPrefix(f, "init="); ok {
			b, err := hex.DecodeString(v)
			if err != nil {
				return nil, fmt.Errorf("bad init: %v", err)
			}
			g.Init = b
		}
	}
	return g, nil
}

// ParseInstr parses a single instruction line (without comments).
// Optional leading line numbers of the form "12." are skipped, and a
// trailing "@N" token (the debug listing's source-line annotation) is
// absorbed into Instr.Line.
func ParseInstr(line string) (*Instr, error) {
	line = strings.TrimSpace(line)
	// Strip "NN." line number prefix.
	if dot := strings.Index(line, "."); dot > 0 {
		num := line[:dot]
		if _, err := strconv.Atoi(strings.TrimSpace(num)); err == nil {
			line = strings.TrimSpace(line[dot+1:])
		}
	}
	srcLine := 0
	if at := strings.LastIndex(line, "@"); at >= 0 {
		if n, err := strconv.Atoi(strings.TrimSpace(line[at+1:])); err == nil && n > 0 {
			srcLine = n
			line = strings.TrimSpace(line[:at])
		}
	}
	if line == "" {
		return nil, fmt.Errorf("empty instruction")
	}
	i, err := parseInstrBody(line)
	if err != nil {
		return nil, err
	}
	i.Line = srcLine
	return i, nil
}

func parseInstrBody(line string) (*Instr, error) {
	// Label?
	if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
		return NewLabel(strings.TrimSuffix(line, ":")), nil
	}
	// Assignment?
	if idx := strings.Index(line, ":="); idx >= 0 {
		dst, ok := ParseReg(strings.TrimSpace(line[:idx]))
		if !ok {
			return nil, fmt.Errorf("bad destination register %q", line[:idx])
		}
		src, err := parseExpr(strings.TrimSpace(line[idx+2:]))
		if err != nil {
			return nil, err
		}
		return NewAssign(dst, src), nil
	}
	// Mnemonic form.
	mnem, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch {
	case mnem == "jump":
		return NewJump(rest), nil
	case mnem == "ret":
		return &Instr{Kind: KRet}, nil
	case mnem == "halt":
		return &Instr{Kind: KHalt}, nil
	case mnem == "call":
		return &Instr{Kind: KCall, Name: rest}, nil
	case len(mnem) == 4 && strings.HasPrefix(mnem, "put"):
		src, err := parseExpr(rest)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: KPut, Fmt: mnem[3], Src: src}, nil
	case mnem == "sstop":
		r, ok := ParseReg(rest)
		if !ok {
			return nil, fmt.Errorf("bad sstop register %q", rest)
		}
		return &Instr{Kind: KStreamStop, FIFO: r}, nil
	case mnem == "jnd":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return nil, fmt.Errorf("jnd wants FIFO, label")
		}
		r, ok := ParseReg(parts[0])
		if !ok {
			return nil, fmt.Errorf("bad jnd register %q", parts[0])
		}
		return &Instr{Kind: KJumpNotDone, FIFO: r, Target: parts[1]}, nil
	case strings.HasPrefix(mnem, "jumpT") || strings.HasPrefix(mnem, "jumpF"):
		sense := mnem[4] == 'T'
		cc := Int
		if strings.HasSuffix(mnem, "f") {
			cc = Float
		}
		return NewCondJump(rest, sense, cc), nil
	case strings.HasPrefix(mnem, "l") || strings.HasPrefix(mnem, "s"):
		return parseMemOrStream(mnem, rest)
	}
	return nil, fmt.Errorf("unknown instruction %q", line)
}

// parseMemOrStream handles l<bits><r|f>, s<bits><r|f>, sin<bits><r|f>,
// sout<bits><r|f>.
func parseMemOrStream(mnem, rest string) (*Instr, error) {
	kind := KLoad
	body := ""
	switch {
	case strings.HasPrefix(mnem, "sin"):
		kind = KStreamIn
		body = mnem[3:]
	case strings.HasPrefix(mnem, "sout"):
		kind = KStreamOut
		body = mnem[4:]
	case mnem[0] == 'l':
		kind = KLoad
		body = mnem[1:]
	case mnem[0] == 's':
		kind = KStore
		body = mnem[1:]
	}
	if len(body) < 2 {
		return nil, fmt.Errorf("bad memory mnemonic %q", mnem)
	}
	clLetter := body[len(body)-1]
	bits, err := strconv.Atoi(body[:len(body)-1])
	if err != nil {
		return nil, fmt.Errorf("bad memory mnemonic %q", mnem)
	}
	cl := Int
	if clLetter == 'f' {
		cl = Float
	}
	size := bits / 8
	args := splitArgs(rest)
	switch kind {
	case KLoad, KStore:
		if len(args) != 2 {
			return nil, fmt.Errorf("%s wants FIFO, addr", mnem)
		}
		fifo, ok := ParseReg(args[0])
		if !ok {
			return nil, fmt.Errorf("bad FIFO register %q", args[0])
		}
		addr, err := parseExpr(args[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: kind, FIFO: fifo, Addr: addr, MemSize: size, MemClass: cl}, nil
	default:
		if len(args) != 4 {
			return nil, fmt.Errorf("%s wants FIFO, base, count, stride", mnem)
		}
		fifo, ok := ParseReg(args[0])
		if !ok {
			return nil, fmt.Errorf("bad FIFO register %q", args[0])
		}
		base, err := parseExpr(args[1])
		if err != nil {
			return nil, err
		}
		count, err := parseExpr(args[2])
		if err != nil {
			return nil, err
		}
		stride, err := parseExpr(args[3])
		if err != nil {
			return nil, fmt.Errorf("bad stride %q: %v", args[3], err)
		}
		return &Instr{Kind: kind, FIFO: fifo, Base: base, Count: count,
			Stride: stride, MemSize: size, MemClass: cl}, nil
	}
}

// splitArgs splits on top-level commas (commas inside parentheses or
// brackets do not split).
func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		out = append(out, last)
	}
	return out
}

// --- expression parser -------------------------------------------------

type exprParser struct {
	s   string
	pos int
}

func parseExpr(s string) (Expr, error) {
	p := &exprParser{s: s}
	e, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("trailing input in expression %q at %d", s, p.pos)
	}
	return e, nil
}

// binOps in precedence order (lowest first), matching the printer's
// fully parenthesized output but tolerant of hand-written input.
var precLevels = [][]Op{
	{Eq, Ne, Lt, Le, Gt, Ge},
	{Or},
	{Xor},
	{And},
	{Shl, Shr},
	{Add, Sub},
	{Mul, Div, Rem},
}

func (p *exprParser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op, ok := p.peekOp(precLevels[level])
		if !ok {
			return left, nil
		}
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = Bin{op, left, right}
	}
}

var opTokens = []struct {
	tok string
	op  Op
}{
	{"<<", Shl}, {">>", Shr}, {"==", Eq}, {"!=", Ne}, {"<=", Le},
	{">=", Ge}, {"<", Lt}, {">", Gt}, {"+", Add}, {"-", Sub},
	{"*", Mul}, {"/", Div}, {"%", Rem}, {"&", And}, {"|", Or}, {"^", Xor},
}

func (p *exprParser) peekOp(allowed []Op) (Op, bool) {
	for _, cand := range opTokens {
		if strings.HasPrefix(p.s[p.pos:], cand.tok) {
			for _, a := range allowed {
				if a == cand.op {
					p.pos += len(cand.tok)
					return cand.op, true
				}
			}
			return 0, false
		}
	}
	return 0, false
}

var unaryFuncs = map[string]Op{
	"neg": Neg, "not": Not, "sqrt": Sqrt, "sin": Sin, "cos": Cos,
	"exp": Exp, "log": Log, "atan": Atan, "fabs": Fabs,
}

func (p *exprParser) parseUnary() (Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("unexpected end of expression %q", p.s)
	}
	c := p.s[p.pos]
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return e, nil
	case c == '-':
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if im, ok := e.(Imm); ok {
			return Imm{-im.V}, nil
		}
		if fm, ok := e.(FImm); ok {
			return FImm{-fm.V}, nil
		}
		return Un{Neg, e}, nil
	case c == '_':
		return p.parseSym()
	case c == 'M':
		return p.parseMem()
	case c >= '0' && c <= '9':
		return p.parseNumber()
	default:
		return p.parseIdent()
	}
}

func (p *exprParser) parseIdent() (Expr, error) {
	start := p.pos
	for p.pos < len(p.s) && (isAlnum(p.s[p.pos])) {
		p.pos++
	}
	word := p.s[start:p.pos]
	if word == "" {
		return nil, fmt.Errorf("cannot parse expression %q at %d", p.s, start)
	}
	// cvtr(x) / cvtf(x)
	if word == "cvtr" || word == "cvtf" {
		if err := p.expect('('); err != nil {
			return nil, err
		}
		x, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		to := Int
		if word == "cvtf" {
			to = Float
		}
		return Cvt{to, x}, nil
	}
	if op, ok := unaryFuncs[word]; ok && p.pos < len(p.s) && p.s[p.pos] == '(' {
		p.pos++
		x, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Un{op, x}, nil
	}
	if r, ok := ParseReg(word); ok {
		return RegX{r}, nil
	}
	return nil, fmt.Errorf("unknown identifier %q in expression", word)
}

func (p *exprParser) parseSym() (Expr, error) {
	p.pos++ // skip _
	start := p.pos
	for p.pos < len(p.s) && isAlnum(p.s[p.pos]) {
		p.pos++
	}
	name := p.s[start:p.pos]
	off := int64(0)
	// Tight +N / -N offsets belong to the symbol only when the printer
	// produced them; we absorb them here and rely on folding otherwise.
	if p.pos < len(p.s) && (p.s[p.pos] == '+' || p.s[p.pos] == '-') &&
		p.pos+1 < len(p.s) && p.s[p.pos+1] >= '0' && p.s[p.pos+1] <= '9' {
		sign := int64(1)
		if p.s[p.pos] == '-' {
			sign = -1
		}
		p.pos++
		n, err := p.parseRawInt()
		if err != nil {
			return nil, err
		}
		off = sign * n
	}
	return Sym{name, off}, nil
}

func (p *exprParser) parseMem() (Expr, error) {
	// M<size-in-bytes><r|f>[addr]
	p.pos++ // skip M
	n, err := p.parseRawInt()
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("truncated memory operand")
	}
	cl := Int
	if p.s[p.pos] == 'f' {
		cl = Float
	}
	p.pos++
	if err := p.expect('['); err != nil {
		return nil, err
	}
	addr, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if err := p.expect(']'); err != nil {
		return nil, err
	}
	return Mem{addr, int(n), cl}, nil
}

func (p *exprParser) parseNumber() (Expr, error) {
	start := p.pos
	seenDot := false
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '.' {
			seenDot = true
			p.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			seenDot = true
			p.pos++
			if p.pos < len(p.s) && (p.s[p.pos] == '+' || p.s[p.pos] == '-') {
				p.pos++
			}
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		p.pos++
	}
	text := p.s[start:p.pos]
	// Trailing 'f' marks a float immediate.
	if p.pos < len(p.s) && p.s[p.pos] == 'f' {
		p.pos++
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, err
		}
		return FImm{v}, nil
	}
	if seenDot {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, err
		}
		return FImm{v}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, err
	}
	return Imm{v}, nil
}

func (p *exprParser) parseRawInt() (int64, error) {
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number at %d in %q", start, p.s)
	}
	return strconv.ParseInt(p.s[start:p.pos], 10, 64)
}

func (p *exprParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return fmt.Errorf("expected %q at %d in %q", string(c), p.pos, p.s)
	}
	p.pos++
	return nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
