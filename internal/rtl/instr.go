package rtl

import "fmt"

// Kind enumerates RTL instruction kinds.
type Kind uint8

const (
	// KLabel is a branch target.  Label gives the name.
	KLabel Kind = iota
	// KAssign is dst := src.  If the top operator of Src is relational,
	// the instruction is a compare: it additionally enqueues a condition
	// code into the CC FIFO of the executing unit (the unit of Dst).
	KAssign
	// KLoad computes an address and issues a memory read request; the
	// data arrives in the input FIFO of the unit selected by MemClass
	// (readable as r0/f0, or r1/f1 when FIFO.N == 1).  Dst is unused
	// (architecturally the address result is discarded into r31).
	KLoad
	// KStore computes an address and issues a memory write request; the
	// datum is the oldest entry of the unit's output FIFO (enqueued by a
	// prior write to r0/f0).
	KStore
	// KJump is an unconditional branch, executed by the IFU at zero cost.
	KJump
	// KCondJump dequeues a condition code from the CC FIFO of class
	// CCClass and branches to Target when the code equals Sense.
	KCondJump
	// KStreamIn directs a stream control unit to read Count elements of
	// MemSize bytes starting at Base with byte stride Stride into the
	// FIFO register FIFO.
	KStreamIn
	// KStreamOut is the store-side analog of KStreamIn.
	KStreamOut
	// KStreamStop terminates an active (possibly infinite) stream on FIFO.
	KStreamStop
	// KJumpNotDone branches to Target while the stream feeding FIFO is
	// not exhausted (the paper's jNIf0).  Executed by the IFU.
	KJumpNotDone
	// KCall transfers control to function Name with arguments already in
	// ABI registers; clobbers all allocatable registers and memory.
	KCall
	// KRet returns from the current function.
	KRet
	// KHalt stops the machine (end of program).
	KHalt
	// KPut writes a value to the output device: a character (Fmt 'c'),
	// a decimal integer ('i') or a floating value ('d').  Src is the
	// value.  Unlike KCall, KPut clobbers nothing, so loops containing
	// output remain optimizable.
	KPut
)

var kindNames = [...]string{
	KLabel: "label", KAssign: "assign", KLoad: "load", KStore: "store",
	KJump: "jump", KCondJump: "condjump", KStreamIn: "sin",
	KStreamOut: "sout", KStreamStop: "sstop", KJumpNotDone: "jnd",
	KCall: "call", KRet: "ret", KHalt: "halt", KPut: "put",
}

func (k Kind) String() string { return kindNames[k] }

// Instr is a single RTL.  Which fields are meaningful depends on Kind;
// see the Kind constants.
type Instr struct {
	ID   int // stable id for diagnostics and listings
	Kind Kind

	// Line is the 1-based source line the instruction was generated
	// from (0 = unknown).  The expander stamps it, optimization passes
	// preserve it through Clone, the debug listing renders it as "@N",
	// and the linker builds the image's line table from it — the chain
	// the source-level profiler walks back.
	Line int

	Dst Reg  // KAssign
	Src Expr // KAssign

	Addr     Expr  // KLoad, KStore: address expression
	MemSize  int   // KLoad/KStore/streams: access size in bytes
	MemClass Class // KLoad/KStore/streams: unit whose FIFO carries the data

	Target  string // jumps: destination label
	Sense   bool   // KCondJump: branch when CC == Sense
	CCClass Class  // KCondJump: which unit's CC FIFO to consume

	FIFO   Reg  // streams, KJumpNotDone: FIFO register (r0/r1/f0/f1)
	Base   Expr // streams: base address (register or immediate expr)
	Count  Expr // streams: element count (register or immediate)
	Stride Expr // streams: byte stride (register or immediate — the
	// hardware takes the stride from a register, so run-time strides
	// such as the sieve's prime step are expressible)

	Name string // KCall: callee; KLabel: label name
	Args []Reg  // KCall: ABI registers carrying live-in arguments
	Fmt  byte   // KPut: 'c' (char), 'i' (int) or 'd' (double)

	Note string // free-form comment carried into listings
}

// ABI register ranges.  Arguments travel in r2..r9/f2..f9; results
// return in r2/f2.  Every allocatable register is caller-saved, so a
// call clobbers r2..r28 and f2..f30 (see CallClobbers).
const (
	FirstArgReg = 2
	LastArgReg  = 9
	ResultReg   = 2
)

// CallClobbers calls fn for every register a call may overwrite: all
// allocatable registers of both classes plus the link register.  The
// stack pointer, zero registers and FIFO registers are preserved (FIFOs
// must be drained before a call by construction).
func CallClobbers(fn func(Reg)) {
	for n := FirstArgReg; n < ZeroReg; n++ {
		if n != SP {
			fn(Reg{Int, n})
		}
		fn(Reg{Float, n})
	}
}

// NewAssign builds dst := src.
func NewAssign(dst Reg, src Expr) *Instr {
	return &Instr{Kind: KAssign, Dst: dst, Src: src}
}

// NewLoad builds a load of size bytes whose data lands in the input FIFO
// fifo (r0/r1/f0/f1 — class selects the unit).
func NewLoad(fifo Reg, addr Expr, size int) *Instr {
	return &Instr{Kind: KLoad, FIFO: fifo, Addr: addr, MemSize: size, MemClass: fifo.Class}
}

// NewStore builds a store of size bytes whose datum comes from the
// output FIFO fifo.
func NewStore(fifo Reg, addr Expr, size int) *Instr {
	return &Instr{Kind: KStore, FIFO: fifo, Addr: addr, MemSize: size, MemClass: fifo.Class}
}

// NewLabel builds a label pseudo-instruction.
func NewLabel(name string) *Instr { return &Instr{Kind: KLabel, Name: name} }

// NewJump builds an unconditional jump.
func NewJump(target string) *Instr { return &Instr{Kind: KJump, Target: target} }

// NewCondJump builds a conditional jump consuming a CC of class cc.
func NewCondJump(target string, sense bool, cc Class) *Instr {
	return &Instr{Kind: KCondJump, Target: target, Sense: sense, CCClass: cc}
}

// IsCompare reports whether the instruction is a compare: an assignment
// to the zero register whose top operator is relational.  Only this
// form enqueues a condition code; a relational assignment to an
// ordinary register is a "set" instruction producing 0/1 with no CC
// side effect, so the compiler can use relational values freely.
func (i *Instr) IsCompare() bool {
	if i.Kind != KAssign || !i.Dst.IsZero() {
		return false
	}
	b, ok := i.Src.(Bin)
	return ok && b.Op.IsRelational()
}

// IsBranch reports whether the instruction transfers control.
func (i *Instr) IsBranch() bool {
	switch i.Kind {
	case KJump, KCondJump, KJumpNotDone, KRet, KHalt:
		return true
	}
	return false
}

// IsConditionalBranch reports whether the instruction may either branch
// or fall through.
func (i *Instr) IsConditionalBranch() bool {
	return i.Kind == KCondJump || i.Kind == KJumpNotDone
}

// Words is the number of 32-bit instruction words the RTL occupies on
// WM.  Materializing a 32-bit symbol address requires an llh/sll pair,
// so such assignments occupy two words; a 64-bit float immediate
// likewise costs two dispatch slots (the hardware would load it from a
// constant pool).
func (i *Instr) Words() int {
	if i.Kind == KAssign {
		switch i.Src.(type) {
		case Sym:
			return 2
		case FImm:
			if f := i.Src.(FImm); f.V != 0 {
				return 2
			}
		}
	}
	return 1
}

// HasFIFORead reports whether executing the instruction dequeues from an
// input FIFO (reads of r0/r1/f0/f1 inside Src, Addr, Base or Count).
func (i *Instr) HasFIFORead() bool {
	found := false
	i.EachUseExpr(func(e Expr) {
		ExprRegs(e, func(r Reg) {
			if r.IsFIFO() {
				found = true
			}
		})
	})
	return found
}

// HasFIFOWrite reports whether the instruction enqueues into an output
// FIFO (KAssign with a FIFO destination).
func (i *Instr) HasFIFOWrite() bool {
	return i.Kind == KAssign && i.Dst.IsFIFO()
}

// HasSideEffects reports whether the instruction has effects beyond
// writing Dst, so dead-code elimination must preserve it even when Dst
// is dead.
func (i *Instr) HasSideEffects() bool {
	switch i.Kind {
	case KAssign:
		return i.IsCompare() || i.Dst.IsFIFO() || i.HasFIFORead() || ExprHasMem(i.Src) || isMemDst(i)
	default:
		return true
	}
}

func isMemDst(i *Instr) bool { return false } // reserved: Mem destinations use KStore

// EachUseExpr calls fn for every expression operand read by the
// instruction.
func (i *Instr) EachUseExpr(fn func(Expr)) {
	if i.Src != nil {
		fn(i.Src)
	}
	if i.Addr != nil {
		fn(i.Addr)
	}
	if i.Base != nil {
		fn(i.Base)
	}
	if i.Count != nil {
		fn(i.Count)
	}
	if i.Stride != nil {
		fn(i.Stride)
	}
}

// MapExprs replaces every expression operand e with fn(e).
func (i *Instr) MapExprs(fn func(Expr) Expr) {
	if i.Src != nil {
		i.Src = fn(i.Src)
	}
	if i.Addr != nil {
		i.Addr = fn(i.Addr)
	}
	if i.Base != nil {
		i.Base = fn(i.Base)
	}
	if i.Count != nil {
		i.Count = fn(i.Count)
	}
	if i.Stride != nil {
		i.Stride = fn(i.Stride)
	}
}

// Uses appends to out every register read by the instruction and
// returns the result.  FIFO reads appear like ordinary register reads;
// callers that care about queue semantics should also consult
// HasFIFORead.  For KCall the uses are the ABI argument registers
// recorded in Args (plus SP).
func (i *Instr) Uses(out []Reg) []Reg {
	if i.Kind == KCall {
		out = append(out, i.Args...)
		return out
	}
	i.EachUseExpr(func(e Expr) {
		ExprRegs(e, func(r Reg) { out = append(out, r) })
	})
	return out
}

// Def returns the register written by the instruction and whether one
// exists.  Writes to the zero register still report a def (the value is
// discarded, but the instruction formally targets the cell).
func (i *Instr) Def() (Reg, bool) {
	if i.Kind == KAssign {
		return i.Dst, true
	}
	return Reg{}, false
}

// Clone returns a deep-enough copy of the instruction (expressions are
// immutable by convention and shared).
func (i *Instr) Clone() *Instr {
	c := *i
	return &c
}

func (i *Instr) String() string {
	s := formatInstr(i)
	if i.Note != "" {
		s += " ; " + i.Note
	}
	return s
}

func formatInstr(i *Instr) string {
	switch i.Kind {
	case KLabel:
		return i.Name + ":"
	case KAssign:
		return fmt.Sprintf("%s := %s", i.Dst, i.Src)
	case KLoad:
		return fmt.Sprintf("l%d%s %s, %s", i.MemSize*8, i.MemClass.Letter(), i.FIFO, i.Addr)
	case KStore:
		return fmt.Sprintf("s%d%s %s, %s", i.MemSize*8, i.MemClass.Letter(), i.FIFO, i.Addr)
	case KJump:
		return "jump " + i.Target
	case KCondJump:
		sense := "T"
		if !i.Sense {
			sense = "F"
		}
		return fmt.Sprintf("jump%s%s %s", sense, i.CCClass.Letter(), i.Target)
	case KStreamIn:
		return fmt.Sprintf("sin%d%s %s, %s, %s, %s", i.MemSize*8, i.MemClass.Letter(), i.FIFO, i.Base, i.Count, i.Stride)
	case KStreamOut:
		return fmt.Sprintf("sout%d%s %s, %s, %s, %s", i.MemSize*8, i.MemClass.Letter(), i.FIFO, i.Base, i.Count, i.Stride)
	case KStreamStop:
		return fmt.Sprintf("sstop %s", i.FIFO)
	case KJumpNotDone:
		return fmt.Sprintf("jnd %s, %s", i.FIFO, i.Target)
	case KCall:
		return "call " + i.Name
	case KRet:
		return "ret"
	case KHalt:
		return "halt"
	case KPut:
		return fmt.Sprintf("put%c %s", i.Fmt, i.Src)
	}
	return "?"
}
