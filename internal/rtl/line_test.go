package rtl

import (
	"strings"
	"testing"
)

// TestLineAnnotationRoundTrip: @N source-line annotations survive
// Parse → StringDebug → Parse unchanged, and the default listing stays
// free of them (the figure goldens depend on that).
func TestLineAnnotationRoundTrip(t *testing.T) {
	p, err := Parse(`
.entry main
.func main
r2 := 1 @4
r3 := (r2 + 1)
s32r r2, (r3 + 8) @6
halt @9
.end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	code := p.Funcs[0].Code
	wantLines := []int{4, 0, 6, 9}
	for n, w := range wantLines {
		if code[n].Line != w {
			t.Errorf("code[%d].Line = %d, want %d", n, code[n].Line, w)
		}
	}

	if plain := p.String(); strings.Contains(plain, "@") {
		t.Errorf("default listing leaks debug annotations:\n%s", plain)
	}
	debug := p.StringDebug()
	for _, want := range []string{"@4", "@6", "@9"} {
		if !strings.Contains(debug, want) {
			t.Errorf("debug listing missing %q:\n%s", want, debug)
		}
	}

	p2, err := Parse(debug)
	if err != nil {
		t.Fatalf("reparse of debug listing: %v", err)
	}
	code2 := p2.Funcs[0].Code
	if len(code2) != len(code) {
		t.Fatalf("reparse changed instruction count: %d vs %d", len(code2), len(code))
	}
	for n := range code {
		if code2[n].Line != code[n].Line {
			t.Errorf("round trip changed code[%d].Line: %d vs %d", n, code2[n].Line, code[n].Line)
		}
		if code2[n].String() != code[n].String() {
			t.Errorf("round trip changed code[%d]: %q vs %q", n, code2[n], code[n])
		}
	}
}

// TestCloneKeepsLine: the optimizer clones functions before rewriting
// them; debug info must not be lost in the copy.
func TestCloneKeepsLine(t *testing.T) {
	f := NewFunc("f")
	i := f.Append(NewAssign(R(2), Imm{V: 7}))
	i.Line = 12
	g := f.Clone()
	if got := g.Code[0].Line; got != 12 {
		t.Errorf("clone Line = %d, want 12", got)
	}
}
