package rtl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// --- operator algebra ------------------------------------------------------

func TestQuickNegateInvolution(t *testing.T) {
	rels := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(k uint8) bool {
		op := rels[int(k)%len(rels)]
		return op.Negate().Negate() == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSwapInvolution(t *testing.T) {
	rels := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(k uint8) bool {
		op := rels[int(k)%len(rels)]
		return op.Swap().Swap() == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Negate and Swap agree with evaluation semantics.
func TestQuickRelationalSemantics(t *testing.T) {
	rels := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(k uint8, a, b int64) bool {
		op := rels[int(k)%len(rels)]
		v, _ := EvalIntOp(op, a, b)
		nv, _ := EvalIntOp(op.Negate(), a, b)
		sv, _ := EvalIntOp(op.Swap(), b, a)
		return (v != 0) != (nv != 0) && (v != 0) == (sv != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- printer/parser round trip ---------------------------------------------

// randomInstr builds a random but printable instruction.
func randomInstr(r *rand.Rand) *Instr {
	reg := func(c Class) Reg {
		for {
			n := r.Intn(NumArchRegs)
			if n != FIFO0 && n != FIFO1 {
				return Reg{c, n}
			}
		}
	}
	expr := func(depth int) Expr {
		var build func(d int) Expr
		build = func(d int) Expr {
			if d == 0 || r.Intn(3) == 0 {
				switch r.Intn(3) {
				case 0:
					return I(int64(r.Intn(2001) - 1000))
				case 1:
					return RX(reg(Int))
				default:
					return Sym{Name: "g", Off: int64(r.Intn(64) * 8)}
				}
			}
			ops := []Op{Add, Sub, Mul, Shl, Shr, And, Or, Xor}
			return B(ops[r.Intn(len(ops))], build(d-1), build(d-1))
		}
		return build(depth)
	}
	fifo := Reg{Class(r.Intn(2)), r.Intn(2)}
	switch r.Intn(9) {
	case 0:
		return NewAssign(reg(Int), expr(2))
	case 1:
		return NewAssign(Reg{Int, ZeroReg}, B(Lt, RX(reg(Int)), RX(reg(Int))))
	case 2:
		return NewLoad(fifo, expr(1), []int{1, 4, 8}[r.Intn(3)])
	case 3:
		return NewStore(fifo, expr(1), []int{1, 4, 8}[r.Intn(3)])
	case 4:
		return NewJump("L1")
	case 5:
		return NewCondJump("L2", r.Intn(2) == 0, Class(r.Intn(2)))
	case 6:
		return &Instr{Kind: KStreamIn, FIFO: fifo, Base: RX(reg(Int)),
			Count: I(int64(r.Intn(100) + 1)), Stride: I(int64(r.Intn(16) + 1)),
			MemSize: 8, MemClass: fifo.Class}
	case 7:
		return &Instr{Kind: KJumpNotDone, FIFO: fifo, Target: "L3"}
	default:
		return &Instr{Kind: KPut, Fmt: []byte{'c', 'i', 'd'}[r.Intn(3)], Src: RX(reg(Int))}
	}
}

// TestQuickInstrRoundTrip: printing any instruction and parsing it back
// yields a structurally identical instruction.
func TestQuickInstrRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for k := 0; k < 2000; k++ {
		i := randomInstr(r)
		text := formatInstr(i)
		j, err := ParseInstr(text)
		if err != nil {
			t.Fatalf("round %d: parse %q: %v", k, text, err)
		}
		a, b := normInstr(i), normInstr(j)
		if !reflect.DeepEqual(a, b) {
			// Parsed trees may differ by folding-neutral structure
			// (e.g. parenthesization); compare by re-printing.
			if formatInstr(j) != text {
				t.Fatalf("round %d: %q -> %q", k, text, formatInstr(j))
			}
		}
	}
}

// TestQuickExprParsePrintFixpoint: print(parse(print(e))) == print(e).
func TestQuickExprParsePrintFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for k := 0; k < 2000; k++ {
		var build func(d int) Expr
		build = func(d int) Expr {
			if d == 0 || r.Intn(3) == 0 {
				switch r.Intn(4) {
				case 0:
					return I(int64(r.Intn(200) - 100))
				case 1:
					return RX(R(r.Intn(NumArchRegs)))
				case 2:
					return RX(F(r.Intn(NumArchRegs)))
				default:
					return Sym{Name: "sym", Off: int64(r.Intn(32))}
				}
			}
			ops := []Op{Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor, Lt, Ge}
			return B(ops[r.Intn(len(ops))], build(d-1), build(d-1))
		}
		e := build(3)
		text := e.String()
		p, err := parseExpr(text)
		if err != nil {
			t.Fatalf("round %d: parse %q: %v", k, text, err)
		}
		if p.String() != text {
			t.Fatalf("round %d: %q -> %q", k, text, p.String())
		}
	}
}

// TestQuickFoldSoundOnRegisters: folding an expression and then
// substituting constant register values gives the same result as
// substituting first and folding after.
func TestQuickFoldSoundOnRegisters(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for k := 0; k < 2000; k++ {
		regVals := map[Reg]int64{}
		for n := 2; n < 6; n++ {
			regVals[R(n)] = int64(r.Intn(41) - 20)
		}
		var build func(d int) Expr
		build = func(d int) Expr {
			if d == 0 || r.Intn(3) == 0 {
				if r.Intn(2) == 0 {
					return I(int64(r.Intn(17) - 8))
				}
				return RX(R(2 + r.Intn(4)))
			}
			ops := []Op{Add, Sub, Mul, And, Or, Xor, Lt, Ge, Eq}
			return B(ops[r.Intn(len(ops))], build(d-1), build(d-1))
		}
		e := build(3)
		subst := func(x Expr) Expr {
			return RenameRegsExpr(x, func(rg Reg) Expr {
				if v, ok := regVals[rg]; ok {
					return Imm{v}
				}
				return RegX{rg}
			})
		}
		direct := FoldExpr(subst(e))
		folded := FoldExpr(subst(FoldExpr(e)))
		dv, dok := direct.(Imm)
		fv, fok := folded.(Imm)
		if dok != fok || (dok && dv.V != fv.V) {
			t.Fatalf("round %d: %v: direct %v vs folded %v", k, e, direct, folded)
		}
	}
}
