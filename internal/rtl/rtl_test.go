package rtl

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R(0), "r0"},
		{R(31), "r31"},
		{F(2), "f2"},
		{Reg{Int, VirtualBase}, "rv0"},
		{Reg{Float, VirtualBase + 7}, "fv7"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestParseRegRoundTrip(t *testing.T) {
	regs := []Reg{R(0), R(1), R(29), R(31), F(0), F(31),
		{Int, VirtualBase}, {Float, VirtualBase + 123}}
	for _, r := range regs {
		got, ok := ParseReg(r.String())
		if !ok || got != r {
			t.Errorf("ParseReg(%q) = %v,%v want %v", r.String(), got, ok, r)
		}
	}
}

func TestParseRegRejects(t *testing.T) {
	for _, s := range []string{"", "r", "x3", "r32", "f99", "r-1", "rv", "r3x"} {
		if _, ok := ParseReg(s); ok {
			t.Errorf("ParseReg(%q) accepted, want reject", s)
		}
	}
}

func TestRegPredicates(t *testing.T) {
	if !R(31).IsZero() || R(30).IsZero() {
		t.Error("IsZero wrong")
	}
	if !R(0).IsFIFO() || !F(1).IsFIFO() || R(2).IsFIFO() {
		t.Error("IsFIFO wrong")
	}
	if !(Reg{Int, VirtualBase}).IsVirtual() || R(31).IsVirtual() {
		t.Error("IsVirtual wrong")
	}
}

func TestOpPredicates(t *testing.T) {
	if !Lt.IsRelational() || Add.IsRelational() {
		t.Error("IsRelational wrong")
	}
	if !Add.IsCommutative() || Sub.IsCommutative() || !Eq.IsCommutative() {
		t.Error("IsCommutative wrong")
	}
	if Lt.Negate() != Ge || Eq.Negate() != Ne || Le.Negate() != Gt {
		t.Error("Negate wrong")
	}
	if Lt.Swap() != Gt || Le.Swap() != Ge || Eq.Swap() != Eq {
		t.Error("Swap wrong")
	}
}

func TestExprString(t *testing.T) {
	e := B(Add, B(Shl, RX(R(22)), I(3)), RX(R(24)))
	if got := e.String(); got != "((r22 << 3) + r24)" {
		t.Errorf("String = %q", got)
	}
	m := Mem{B(Add, RX(R(2)), I(8)), 8, Float}
	if got := m.String(); got != "M8f[(r2 + 8)]" {
		t.Errorf("Mem String = %q", got)
	}
	s := Sym{"x", -8}
	if got := s.String(); got != "_x-8" {
		t.Errorf("Sym String = %q", got)
	}
}

func TestEqualExpr(t *testing.T) {
	a := B(Add, RX(R(1)), I(4))
	b := B(Add, RX(R(1)), I(4))
	c := B(Add, RX(R(2)), I(4))
	if !EqualExpr(a, b) {
		t.Error("equal exprs not equal")
	}
	if EqualExpr(a, c) {
		t.Error("different exprs equal")
	}
	if EqualExpr(a, I(4)) {
		t.Error("different kinds equal")
	}
}

func TestSubstReg(t *testing.T) {
	e := B(Add, RX(R(1)), B(Mul, RX(R(1)), RX(R(2))))
	got := SubstReg(e, R(1), I(7))
	want := B(Add, I(7), B(Mul, I(7), RX(R(2))))
	if !EqualExpr(got, want) {
		t.Errorf("SubstReg = %v, want %v", got, want)
	}
	// Original untouched.
	if !ExprUsesReg(e, R(1)) {
		t.Error("SubstReg mutated input")
	}
}

func TestExprSize(t *testing.T) {
	if n := ExprSize(RX(R(1))); n != 0 {
		t.Errorf("reg size = %d", n)
	}
	if n := ExprSize(B(Add, B(Shl, RX(R(1)), I(3)), RX(R(2)))); n != 2 {
		t.Errorf("two-op size = %d", n)
	}
	if n := ExprSize(Un{Neg, B(Add, RX(R(1)), I(1))}); n != 2 {
		t.Errorf("un+bin size = %d", n)
	}
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{B(Add, I(2), I(3)), I(5)},
		{B(Mul, I(4), I(8)), I(32)},
		{B(Shl, I(1), I(3)), I(8)},
		{B(Lt, I(2), I(3)), I(1)},
		{B(Add, RX(R(5)), I(0)), RX(R(5))},
		{B(Mul, RX(R(5)), I(1)), RX(R(5))},
		{B(Add, I(0), RX(R(5))), RX(R(5))},
		{B(Add, Sym{"x", 0}, I(8)), Sym{"x", 8}},
		{B(Sub, Sym{"x", 0}, I(8)), Sym{"x", -8}},
		{RX(R31), I(0)},
		{RX(F31), FImm{0}},
		{B(Add, FImm{1.5}, FImm{2.5}), FImm{4}},
		{Cvt{Float, I(3)}, FImm{3}},
		{Cvt{Int, FImm{3.7}}, I(3)},
		{Un{Neg, I(4)}, I(-4)},
	}
	for _, c := range cases {
		if got := FoldExpr(c.in); !EqualExpr(got, c.want) {
			t.Errorf("FoldExpr(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFoldDivByZeroPreserved(t *testing.T) {
	e := B(Div, I(4), I(0))
	got := FoldExpr(e)
	if _, ok := got.(Imm); ok {
		t.Errorf("div by zero folded to %v", got)
	}
}

func TestFoldCanonicalizesCommutative(t *testing.T) {
	got := FoldExpr(B(Add, I(4), RX(R(3))))
	want := B(Add, RX(R(3)), I(4))
	if !EqualExpr(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// Property: folding is idempotent and preserves the set of registers
// that can appear (it may only remove references, never invent them).
func TestFoldIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(rng, 4)
		f1 := FoldExpr(e)
		f2 := FoldExpr(f1)
		if !EqualExpr(f1, f2) {
			t.Fatalf("fold not idempotent: %v -> %v -> %v", e, f1, f2)
		}
	}
}

// Property: folding preserves the value of constant integer expressions
// under evaluation.
func TestFoldPreservesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		e := randomConstExpr(rng, 4)
		v1, ok1 := evalConst(e)
		f := FoldExpr(e)
		v2, ok2 := evalConst(f)
		if ok1 && ok2 && v1 != v2 {
			t.Fatalf("fold changed value of %v: %d -> %v=%d", e, v1, f, v2)
		}
	}
}

func evalConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case Imm:
		return x.V, true
	case Bin:
		l, ok := evalConst(x.L)
		if !ok {
			return 0, false
		}
		r, ok := evalConst(x.R)
		if !ok {
			return 0, false
		}
		return EvalIntOp(x.Op, l, r)
	case Un:
		v, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		return EvalUnInt(x.Op, v)
	}
	return 0, false
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return I(int64(rng.Intn(64) - 16))
		case 1:
			return RX(R(rng.Intn(32)))
		default:
			return Sym{"g", int64(rng.Intn(16) * 8)}
		}
	}
	ops := []Op{Add, Sub, Mul, Shl, Shr, And, Or, Xor, Lt, Ge}
	return B(ops[rng.Intn(len(ops))], randomExpr(rng, depth-1), randomExpr(rng, depth-1))
}

func randomConstExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return I(int64(rng.Intn(64) - 16))
	}
	ops := []Op{Add, Sub, Mul, Shl, And, Or, Xor, Lt, Ge, Eq}
	return B(ops[rng.Intn(len(ops))], randomConstExpr(rng, depth-1), randomConstExpr(rng, depth-1))
}

func TestEvalIntOpQuick(t *testing.T) {
	// a+b then -b round trips (wrapping arithmetic).
	f := func(a, b int64) bool {
		s, ok := EvalIntOp(Add, a, b)
		if !ok {
			return false
		}
		d, ok := EvalIntOp(Sub, s, b)
		return ok && d == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalFloatMath(t *testing.T) {
	if v, ok := EvalUnFloat(Sqrt, 9); !ok || v != 3 {
		t.Errorf("sqrt(9) = %v, %v", v, ok)
	}
	if v, ok := EvalUnFloat(Sin, 0); !ok || v != 0 {
		t.Errorf("sin(0) = %v, %v", v, ok)
	}
	if v, ok := EvalUnFloat(Exp, 1); !ok || math.Abs(v-math.E) > 1e-12 {
		t.Errorf("exp(1) = %v, %v", v, ok)
	}
}

func TestInstrPredicates(t *testing.T) {
	cmp := NewAssign(R31, B(Ge, I(2), RX(R(23))))
	if !cmp.IsCompare() {
		t.Error("compare not detected")
	}
	if !cmp.HasSideEffects() {
		t.Error("compare must have side effects (CC enqueue)")
	}
	plain := NewAssign(R(5), B(Add, RX(R(6)), I(1)))
	if plain.IsCompare() || plain.HasSideEffects() {
		t.Error("plain assign misclassified")
	}
	deq := NewAssign(F(20), RX(F0))
	if !deq.HasFIFORead() || !deq.HasSideEffects() {
		t.Error("FIFO dequeue misclassified")
	}
	enq := NewAssign(F0, RX(F(22)))
	if !enq.HasFIFOWrite() || !enq.HasSideEffects() {
		t.Error("FIFO enqueue misclassified")
	}
	if !NewJump("L1").IsBranch() || NewLabel("L1").IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !NewCondJump("L1", true, Int).IsConditionalBranch() {
		t.Error("IsConditionalBranch wrong")
	}
}

func TestInstrWords(t *testing.T) {
	if n := NewAssign(R(2), Sym{"x", 0}).Words(); n != 2 {
		t.Errorf("sym assign words = %d, want 2", n)
	}
	if n := NewAssign(R(2), I(5)).Words(); n != 1 {
		t.Errorf("imm assign words = %d, want 1", n)
	}
}

func TestUsesAndDef(t *testing.T) {
	i := NewAssign(R(5), B(Add, RX(R(6)), RX(R(7))))
	uses := i.Uses(nil)
	if len(uses) != 2 || uses[0] != R(6) || uses[1] != R(7) {
		t.Errorf("Uses = %v", uses)
	}
	d, ok := i.Def()
	if !ok || d != R(5) {
		t.Errorf("Def = %v, %v", d, ok)
	}
	ld := NewLoad(F0, B(Add, RX(R(2)), I(8)), 8)
	if _, ok := ld.Def(); ok {
		t.Error("load should not def")
	}
	if u := ld.Uses(nil); len(u) != 1 || u[0] != R(2) {
		t.Errorf("load uses = %v", u)
	}
}

func TestFuncVirtAllocation(t *testing.T) {
	f := NewFunc("t")
	a := f.NewVirt(Int)
	b := f.NewVirt(Int)
	c := f.NewVirt(Float)
	if a == b {
		t.Error("virtual registers not unique")
	}
	if a.Class != Int || c.Class != Float {
		t.Error("wrong class")
	}
	if f.NumVirt(Int) != 2 || f.NumVirt(Float) != 1 {
		t.Error("NumVirt wrong")
	}
}

func TestFuncInsertRemove(t *testing.T) {
	f := NewFunc("t")
	f.Append(NewLabel("L1"))
	f.Append(NewAssign(R(2), I(1)))
	f.Append(&Instr{Kind: KRet})
	f.Insert(1, NewAssign(R(3), I(2)), NewAssign(R(4), I(3)))
	if len(f.Code) != 5 {
		t.Fatalf("len = %d", len(f.Code))
	}
	if f.Code[1].Dst != R(3) || f.Code[2].Dst != R(4) {
		t.Error("insert order wrong")
	}
	f.Remove(1)
	if len(f.Code) != 4 || f.Code[1].Dst != R(4) {
		t.Error("remove wrong")
	}
}

func TestFindLabel(t *testing.T) {
	f := NewFunc("t")
	f.Append(NewAssign(R(2), I(1)))
	f.Append(NewLabel("L7"))
	if got := f.FindLabel("L7"); got != 1 {
		t.Errorf("FindLabel = %d", got)
	}
	if got := f.FindLabel("nope"); got != -1 {
		t.Errorf("FindLabel missing = %d", got)
	}
}

func TestParseInstrForms(t *testing.T) {
	cases := []string{
		"r22 := 2",
		"r31 := (2 >= r23)",
		"r20 := ((r22 - 1) << 3)",
		"f22 := ((f0 - f23) * f20)",
		"l64f f0, ((r22 << 3) + r24)",
		"s64f f0, ((r22 << 3) + r21)",
		"jump L16",
		"jumpTr L16",
		"jumpFf L20",
		"sin64f f1, r19, r24, 8",
		"sout64f f0, r19, r24, 8",
		"sin8r r0, r19, -1, r5",
		"sout32r r1, r19, r24, r5",
		"sstop f1",
		"jnd f1, L20",
		"call putchar",
		"ret",
		"halt",
		"L20:",
		"r2 := _x-8",
		"f2 := cvtf(r3)",
		"r2 := cvtr(f3)",
		"f3 := sqrt(f4)",
		"r2 := M4r[(r29 + 4)]",
		"f2 := 1.5f",
	}
	for _, src := range cases {
		i, err := ParseInstr(src)
		if err != nil {
			t.Errorf("ParseInstr(%q): %v", src, err)
			continue
		}
		// Round trip: print then reparse, compare structurally.
		printed := formatInstr(i)
		j, err := ParseInstr(printed)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", printed, src, err)
			continue
		}
		if !reflect.DeepEqual(normInstr(i), normInstr(j)) {
			t.Errorf("round trip mismatch: %q -> %q -> %q", src, printed, formatInstr(j))
		}
	}
}

func normInstr(i *Instr) Instr {
	c := *i
	c.ID = 0
	c.Note = ""
	return c
}

func TestParseInstrLineNumberPrefix(t *testing.T) {
	i, err := ParseInstr(" 14.     r22 := (r22 + 1)")
	if err != nil {
		t.Fatal(err)
	}
	if i.Kind != KAssign || i.Dst != R(22) {
		t.Errorf("got %v", i)
	}
}

func TestParseInstrErrors(t *testing.T) {
	bad := []string{
		"", "xyzzy L1", "r99 := 2", "jnd f1", "sin64f f1, r1, r2",
		"r2 := (r3 +", "r2 := bogus",
	}
	for _, src := range bad {
		if _, err := ParseInstr(src); err == nil {
			t.Errorf("ParseInstr(%q) succeeded, want error", src)
		}
	}
}

func TestProgramRoundTrip(t *testing.T) {
	f := NewFunc("main")
	f.Frame = 16
	f.Append(NewAssign(R(22), I(2)))
	f.Append(NewLabel("L20"))
	f.Append(NewLoad(F0, B(Add, B(Shl, RX(R(22)), I(3)), RX(R(24))), 8))
	f.Append(NewAssign(F(20), RX(F0)))
	f.Append(NewAssign(R(22), B(Add, RX(R(22)), I(1))))
	f.Append(NewAssign(R31, B(Le, RX(R(23)), RX(R(22)))))
	f.Append(NewCondJump("L20", false, Int))
	f.Append(&Instr{Kind: KHalt})
	p := &Program{
		Entry:   "main",
		Globals: []*DataItem{{Name: "x", Size: 800, Align: 8, Init: []byte{1, 2, 3}}},
		Funcs:   []*Func{f},
	}
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if q.Entry != "main" {
		t.Errorf("entry = %q", q.Entry)
	}
	g := q.Global("x")
	if g == nil || g.Size != 800 || g.Align != 8 || len(g.Init) != 3 || g.Init[2] != 3 {
		t.Errorf("global = %+v", g)
	}
	qf := q.Func("main")
	if qf == nil {
		t.Fatal("func main missing")
	}
	if qf.Frame != 16 {
		t.Errorf("frame = %d", qf.Frame)
	}
	if len(qf.Code) != len(f.Code) {
		t.Fatalf("code len = %d want %d\n%s", len(qf.Code), len(f.Code), text)
	}
	for n := range f.Code {
		if formatInstr(qf.Code[n]) != formatInstr(f.Code[n]) {
			t.Errorf("instr %d: %q != %q", n, formatInstr(qf.Code[n]), formatInstr(f.Code[n]))
		}
	}
}

func TestParseVirtualHighWater(t *testing.T) {
	src := ".func t\nrv5 := 1\nfv2 := 0f\nret\n.end\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Func("t")
	if f.NumVirt(Int) != 6 || f.NumVirt(Float) != 3 {
		t.Errorf("virts = %d/%d", f.NumVirt(Int), f.NumVirt(Float))
	}
}

func TestListingFormat(t *testing.T) {
	f := NewFunc("main")
	i := f.Append(NewAssign(R(22), I(2)))
	i.Note = "initialize i"
	f.Append(NewLabel("L20"))
	out := f.Listing()
	if !strings.Contains(out, "-- initialize i") {
		t.Errorf("note missing from listing:\n%s", out)
	}
	if !strings.Contains(out, "L20:") {
		t.Errorf("label missing from listing:\n%s", out)
	}
	if !strings.Contains(out, "  1.") || !strings.Contains(out, "  2.") {
		t.Errorf("line numbers missing:\n%s", out)
	}
}

func TestParseErrorsProgram(t *testing.T) {
	bad := []string{
		".func a\n.func b\n.end\n",
		".end\n",
		"r2 := 1\n",
		".func a\nr2 := 1\n", // missing .end
		".data x\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
