package rtl

import "fmt"

// CheckFunc verifies the structural invariants of a function's RTL.
// It is the optimizer's pass-boundary safety net: a transformation
// that corrupts the IR is reported here, at the pass that introduced
// the damage, instead of surfacing later as a simulator fault.
//
// Checked invariants:
//
//   - every instruction's operands are well-formed for its kind
//     (assignments have sources, loads/stores have addresses and a
//     power-of-two access size, streams have base/count/stride, ...);
//   - every branch target resolves to a label in the function, and
//     label names are unique;
//   - every register is representable (valid class, number within the
//     architectural file or virtual);
//   - a condition-code consumer (conditional jump) has a compare
//     producing codes of the same class somewhere in the function —
//     the observable half of "compares keep their relational
//     top-level op" (folding a compare's relational operator away
//     would erase the CC enqueue its branch consumes);
//   - with allowVirtual false (after register assignment), no virtual
//     registers remain.
func CheckFunc(f *Func, allowVirtual bool) error {
	labels := map[string]bool{}
	for _, i := range f.Code {
		if i.Kind == KLabel {
			if i.Name == "" {
				return fmt.Errorf("unnamed label")
			}
			if labels[i.Name] {
				return fmt.Errorf("duplicate label %q", i.Name)
			}
			labels[i.Name] = true
		}
	}

	hasCompare := [NumClasses]bool{}
	for _, i := range f.Code {
		if i.IsCompare() {
			hasCompare[i.Dst.Class] = true
		}
	}

	for n, i := range f.Code {
		if err := checkInstr(f, i, labels, allowVirtual); err != nil {
			return fmt.Errorf("instr %d (%s): %w", n, i, err)
		}
		if i.Kind == KCondJump && !hasCompare[i.CCClass] {
			return fmt.Errorf("instr %d (%s): conditional jump consumes %s condition codes but no %s compare exists",
				n, i, i.CCClass, i.CCClass)
		}
	}
	return nil
}

func checkInstr(f *Func, i *Instr, labels map[string]bool, allowVirtual bool) error {
	// Operand shape by kind.
	switch i.Kind {
	case KLabel:
		return nil
	case KAssign:
		if i.Src == nil {
			return fmt.Errorf("assignment without source")
		}
	case KLoad, KStore:
		if i.Addr == nil {
			return fmt.Errorf("memory access without address")
		}
		if !validMemSize(i.MemSize) {
			return fmt.Errorf("bad access size %d", i.MemSize)
		}
		if !i.FIFO.IsFIFO() {
			return fmt.Errorf("memory access data register %s is not a FIFO", i.FIFO)
		}
	case KStreamIn, KStreamOut:
		if i.Base == nil || i.Count == nil || i.Stride == nil {
			return fmt.Errorf("stream without base/count/stride")
		}
		if !validMemSize(i.MemSize) {
			return fmt.Errorf("bad element size %d", i.MemSize)
		}
		if !i.FIFO.IsFIFO() {
			return fmt.Errorf("stream register %s is not a FIFO", i.FIFO)
		}
	case KStreamStop:
		if !i.FIFO.IsFIFO() {
			return fmt.Errorf("stream-stop register %s is not a FIFO", i.FIFO)
		}
	case KJump, KCondJump:
		if !labels[i.Target] {
			return fmt.Errorf("unresolved branch target %q", i.Target)
		}
	case KJumpNotDone:
		if !labels[i.Target] {
			return fmt.Errorf("unresolved branch target %q", i.Target)
		}
		if !i.FIFO.IsFIFO() {
			return fmt.Errorf("jnd register %s is not a FIFO", i.FIFO)
		}
	case KCall:
		if i.Name == "" {
			return fmt.Errorf("call without callee")
		}
	case KPut:
		if i.Src == nil {
			return fmt.Errorf("put without value")
		}
		if i.Fmt != 'c' && i.Fmt != 'i' && i.Fmt != 'd' {
			return fmt.Errorf("bad put format %q", i.Fmt)
		}
	case KRet, KHalt:
	default:
		return fmt.Errorf("unknown instruction kind %d", i.Kind)
	}

	// Register validity across all operands.
	var bad error
	check := func(r Reg) {
		if bad != nil {
			return
		}
		if r.Class >= NumClasses {
			bad = fmt.Errorf("register with invalid class %d", r.Class)
			return
		}
		if r.N < 0 || (r.N >= NumArchRegs && r.N < VirtualBase) {
			bad = fmt.Errorf("register number %d out of range", r.N)
			return
		}
		if !allowVirtual && r.IsVirtual() {
			bad = fmt.Errorf("virtual register %s after register assignment", r)
		}
	}
	if d, ok := i.Def(); ok {
		check(d)
	}
	for _, r := range i.Uses(nil) {
		check(r)
	}
	return bad
}

func validMemSize(n int) bool { return n == 1 || n == 2 || n == 4 || n == 8 }

// CheckProgram runs CheckFunc over every function.
func CheckProgram(p *Program, allowVirtual bool) error {
	for _, f := range p.Funcs {
		if err := CheckFunc(f, allowVirtual); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}
