package rtl

import (
	"fmt"
	"strconv"
)

// Op enumerates the operators that may appear in RTL expressions.
type Op uint8

const (
	// Arithmetic and logical operators.
	Add Op = iota
	Sub
	Mul
	Div
	Rem
	Shl // shift left
	Shr // arithmetic shift right
	And
	Or
	Xor
	// Relational operators.  An assignment whose top operator is
	// relational is a compare: it produces 0/1 and enqueues a condition
	// code into the executing unit's CC FIFO.
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	// Unary operators (used with the Un expression).
	Neg
	Not  // bitwise complement
	Sqrt // FEU math operations (builtin, fixed latency)
	Sin
	Cos
	Exp
	Log
	Atan
	Fabs
)

var opNames = map[Op]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	Shl: "<<", Shr: ">>", And: "&", Or: "|", Xor: "^",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Neg: "neg", Not: "not", Sqrt: "sqrt", Sin: "sin", Cos: "cos",
	Exp: "exp", Log: "log", Atan: "atan", Fabs: "fabs",
}

func (o Op) String() string { return opNames[o] }

// IsRelational reports whether the operator is a comparison.
func (o Op) IsRelational() bool { return o >= Eq && o <= Ge }

// IsCommutative reports whether a op b == b op a.
func (o Op) IsCommutative() bool {
	switch o {
	case Add, Mul, And, Or, Xor, Eq, Ne:
		return true
	}
	return false
}

// Negate returns the relational operator with the opposite truth value
// (Lt -> Ge, etc.).  It panics for non-relational operators.
func (o Op) Negate() Op {
	switch o {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic("rtl: Negate of non-relational op " + o.String())
}

// Swap returns the relational operator that holds when the operands are
// exchanged (Lt -> Gt, etc.).  It panics for non-relational operators.
func (o Op) Swap() Op {
	switch o {
	case Eq, Ne:
		return o
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	panic("rtl: Swap of non-relational op " + o.String())
}

// Expr is an RTL expression tree.  Concrete types: RegX, Imm, FImm, Sym,
// Bin, Un, Cvt, Mem.
type Expr interface {
	// Class is the register class of the value the expression produces.
	Class() Class
	String() string
	exprNode()
}

// RegX is a register reference.
type RegX struct{ Reg Reg }

// Imm is an integer immediate.
type Imm struct{ V int64 }

// FImm is a floating-point immediate.  Real WM code materializes
// non-zero float constants from memory; the legalizer rewrites FImm
// accordingly, but earlier phases may use it freely.
type FImm struct{ V float64 }

// Sym is the address of a global symbol plus a constant byte offset.
// On real WM a 32-bit address is materialized by an llh/sll pair; a Sym
// assignment therefore costs two instruction words (see Instr.Words).
type Sym struct {
	Name string
	Off  int64
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// Un is a unary operation (Neg, Not, or an FEU math builtin).
type Un struct {
	Op Op
	X  Expr
}

// Cvt converts between the integer and floating-point domains.  On WM,
// conversions synchronize the execution units and are executed by the
// IFU.
type Cvt struct {
	To Class
	X  Expr
}

// Mem is a memory operand: the value at a byte address.  Mem never
// appears in final WM code (loads/stores are separate access
// instructions feeding FIFOs); it is used by the naive expansion and by
// the scalar-machine dialect that models conventional processors
// (Table I, Figure 6).
type Mem struct {
	Addr Expr
	Size int // 1, 4 or 8 bytes
	Cl   Class
}

func (RegX) exprNode() {}
func (Imm) exprNode()  {}
func (FImm) exprNode() {}
func (Sym) exprNode()  {}
func (Bin) exprNode()  {}
func (Un) exprNode()   {}
func (Cvt) exprNode()  {}
func (Mem) exprNode()  {}

// Class implementations.
func (e RegX) Class() Class { return e.Reg.Class }
func (e Imm) Class() Class  { return Int }
func (e FImm) Class() Class { return Float }
func (e Sym) Class() Class  { return Int }
func (e Bin) Class() Class {
	if e.Op.IsRelational() {
		return Int
	}
	return e.L.Class()
}
func (e Un) Class() Class  { return e.X.Class() }
func (e Cvt) Class() Class { return e.To }
func (e Mem) Class() Class { return e.Cl }

func (e RegX) String() string { return e.Reg.String() }
func (e Imm) String() string  { return strconv.FormatInt(e.V, 10) }
func (e FImm) String() string { return strconv.FormatFloat(e.V, 'g', -1, 64) + "f" }
func (e Sym) String() string {
	if e.Off == 0 {
		return "_" + e.Name
	}
	if e.Off < 0 {
		return fmt.Sprintf("_%s-%d", e.Name, -e.Off)
	}
	return fmt.Sprintf("_%s+%d", e.Name, e.Off)
}
func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e Un) String() string {
	return fmt.Sprintf("%s(%s)", e.Op, e.X)
}
func (e Cvt) String() string {
	return fmt.Sprintf("cvt%s(%s)", e.To.Letter(), e.X)
}
func (e Mem) String() string {
	return fmt.Sprintf("M%d%s[%s]", e.Size, e.Cl.Letter(), e.Addr)
}

// Convenience constructors.

// RX wraps a register in an expression node.
func RX(r Reg) Expr { return RegX{r} }

// I returns an integer immediate expression.
func I(v int64) Expr { return Imm{v} }

// B builds a binary expression.
func B(op Op, l, r Expr) Expr { return Bin{op, l, r} }

// EqualExpr reports whether two expression trees are structurally equal.
func EqualExpr(a, b Expr) bool {
	switch x := a.(type) {
	case RegX:
		y, ok := b.(RegX)
		return ok && x.Reg == y.Reg
	case Imm:
		y, ok := b.(Imm)
		return ok && x.V == y.V
	case FImm:
		y, ok := b.(FImm)
		return ok && x.V == y.V
	case Sym:
		y, ok := b.(Sym)
		return ok && x == y
	case Bin:
		y, ok := b.(Bin)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case Un:
		y, ok := b.(Un)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X)
	case Cvt:
		y, ok := b.(Cvt)
		return ok && x.To == y.To && EqualExpr(x.X, y.X)
	case Mem:
		y, ok := b.(Mem)
		return ok && x.Size == y.Size && x.Cl == y.Cl && EqualExpr(x.Addr, y.Addr)
	}
	return false
}

// WalkExpr calls fn for every node of the expression tree in prefix
// order.
func WalkExpr(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case Bin:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case Un:
		WalkExpr(x.X, fn)
	case Cvt:
		WalkExpr(x.X, fn)
	case Mem:
		WalkExpr(x.Addr, fn)
	}
}

// ExprRegs calls fn for every register referenced by the expression.
func ExprRegs(e Expr, fn func(Reg)) {
	WalkExpr(e, func(n Expr) {
		if r, ok := n.(RegX); ok {
			fn(r.Reg)
		}
	})
}

// ExprUsesReg reports whether the expression references the register.
func ExprUsesReg(e Expr, r Reg) bool {
	found := false
	ExprRegs(e, func(u Reg) {
		if u == r {
			found = true
		}
	})
	return found
}

// ExprHasMem reports whether the expression contains a memory operand.
func ExprHasMem(e Expr) bool {
	found := false
	WalkExpr(e, func(n Expr) {
		if _, ok := n.(Mem); ok {
			found = true
		}
	})
	return found
}

// SubstReg returns a copy of e with every reference to register from
// replaced by the expression to.
func SubstReg(e Expr, from Reg, to Expr) Expr {
	switch x := e.(type) {
	case RegX:
		if x.Reg == from {
			return to
		}
		return x
	case Bin:
		return Bin{x.Op, SubstReg(x.L, from, to), SubstReg(x.R, from, to)}
	case Un:
		return Un{x.Op, SubstReg(x.X, from, to)}
	case Cvt:
		return Cvt{x.To, SubstReg(x.X, from, to)}
	case Mem:
		return Mem{SubstReg(x.Addr, from, to), x.Size, x.Cl}
	default:
		return e
	}
}

// RenameRegs returns a copy of e with every register replaced by
// fn(reg).
func RenameRegs(e Expr, fn func(Reg) Reg) Expr {
	switch x := e.(type) {
	case RegX:
		return RegX{fn(x.Reg)}
	case Bin:
		return Bin{x.Op, RenameRegs(x.L, fn), RenameRegs(x.R, fn)}
	case Un:
		return Un{x.Op, RenameRegs(x.X, fn)}
	case Cvt:
		return Cvt{x.To, RenameRegs(x.X, fn)}
	case Mem:
		return Mem{RenameRegs(x.Addr, fn), x.Size, x.Cl}
	default:
		return e
	}
}

// RenameRegsExpr returns a copy of e with every register reference
// replaced by the expression fn(reg).
func RenameRegsExpr(e Expr, fn func(Reg) Expr) Expr {
	switch x := e.(type) {
	case RegX:
		return fn(x.Reg)
	case Bin:
		return Bin{x.Op, RenameRegsExpr(x.L, fn), RenameRegsExpr(x.R, fn)}
	case Un:
		return Un{x.Op, RenameRegsExpr(x.X, fn)}
	case Cvt:
		return Cvt{x.To, RenameRegsExpr(x.X, fn)}
	case Mem:
		return Mem{RenameRegsExpr(x.Addr, fn), x.Size, x.Cl}
	default:
		return e
	}
}

// ExprSize returns the number of operator nodes in the expression; the
// WM dual-operation format admits at most two.
func ExprSize(e Expr) int {
	n := 0
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case Bin, Un, Cvt:
			n++
		}
	})
	return n
}
