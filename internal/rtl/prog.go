package rtl

import (
	"fmt"
	"strings"
)

// DataItem is a global datum: a named, aligned region of memory with
// optional initial contents.
type DataItem struct {
	Name  string
	Size  int // bytes
	Align int // byte alignment (power of two)
	Init  []byte
}

// Func is a linear sequence of RTLs for one function, plus the metadata
// the optimizer and register assigner need.
type Func struct {
	Name  string
	Code  []*Instr
	Frame int // stack frame size in bytes

	// nextVirt counts allocated virtual registers per class.
	nextVirt [NumClasses]int

	// NumFloatParams and NumIntParams record the ABI registers holding
	// live-in arguments.
	NumIntParams   int
	NumFloatParams int

	// UsesFloatResult marks functions returning in f2 rather than r2.
	UsesFloatResult bool
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewVirt allocates a fresh virtual register of the class.
func (f *Func) NewVirt(c Class) Reg {
	r := Reg{c, VirtualBase + f.nextVirt[c]}
	f.nextVirt[c]++
	return r
}

// NumVirt returns how many virtual registers of the class have been
// allocated.
func (f *Func) NumVirt(c Class) int { return f.nextVirt[c] }

// SetNumVirt primes the virtual counter (used when reconstructing a
// function from parsed text).
func (f *Func) SetNumVirt(c Class, n int) {
	if n > f.nextVirt[c] {
		f.nextVirt[c] = n
	}
}

// Renumber assigns fresh sequential IDs to every instruction.  Listings
// use IDs as line numbers, mirroring the paper's figures.
func (f *Func) Renumber() {
	for n, i := range f.Code {
		i.ID = n + 1
	}
}

// Append adds an instruction at the end and returns it.
func (f *Func) Append(i *Instr) *Instr {
	f.Code = append(f.Code, i)
	return i
}

// Insert places instr before index pos.
func (f *Func) Insert(pos int, instrs ...*Instr) {
	f.Code = append(f.Code[:pos], append(append([]*Instr{}, instrs...), f.Code[pos:]...)...)
}

// Remove deletes the instruction at index pos.
func (f *Func) Remove(pos int) {
	f.Code = append(f.Code[:pos], f.Code[pos+1:]...)
}

// FindLabel returns the index of the label pseudo-instruction with the
// name, or -1.
func (f *Func) FindLabel(name string) int {
	for n, i := range f.Code {
		if i.Kind == KLabel && i.Name == name {
			return n
		}
	}
	return -1
}

// Listing renders the function in the paper's figure style: numbered
// lines, mnemonic column, RTL column, comment column.
func (f *Func) Listing() string { return f.listing(false) }

// ListingDebug is Listing with source-line annotations: every
// instruction with a known source line carries a "@N" token that Parse
// reads back, so debug info survives the assembly round trip.
func (f *Func) ListingDebug() string { return f.listing(true) }

func (f *Func) listing(debug bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".func %s frame=%d\n", f.Name, f.Frame)
	f.Renumber()
	for _, i := range f.Code {
		if i.Kind == KLabel {
			fmt.Fprintf(&b, "%3d. %s:\n", i.ID, i.Name)
			continue
		}
		line := fmt.Sprintf("%3d.     %s", i.ID, formatInstr(i))
		if debug && i.Line > 0 {
			line += fmt.Sprintf(" @%d", i.Line)
		}
		if i.Note != "" {
			if pad := 52 - len(line); pad > 0 {
				line += strings.Repeat(" ", pad)
			}
			line += " -- " + i.Note
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}

// Program is a complete compilation unit: global data plus functions.
type Program struct {
	Globals []*DataItem
	Funcs   []*Func
	Entry   string // name of the function where execution starts

	// Source is the original Mini-C text the program was compiled from
	// ("" when assembled from text or built by hand).  It is debug
	// info: the profiler uses it to print the source line a hot spot
	// attributes to, and it is not serialized by String.
	Source string
}

// Global returns the data item with the name, or nil.
func (p *Program) Global(name string) *DataItem {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the function with the name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddGlobal appends a data item, replacing any existing item with the
// same name.
func (p *Program) AddGlobal(g *DataItem) {
	for n, old := range p.Globals {
		if old.Name == g.Name {
			p.Globals[n] = g
			return
		}
	}
	p.Globals = append(p.Globals, g)
}

// String renders the whole program in assembler syntax accepted by
// Parse.
func (p *Program) String() string { return p.format(false) }

// StringDebug is String with "@N" source-line annotations on every
// instruction that has them (the output of wmcc -g).
func (p *Program) StringDebug() string { return p.format(true) }

func (p *Program) format(debug bool) string {
	var b strings.Builder
	if p.Entry != "" {
		fmt.Fprintf(&b, ".entry %s\n", p.Entry)
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&b, ".data %s %d align=%d", g.Name, g.Size, g.Align)
		if len(g.Init) > 0 {
			b.WriteString(" init=")
			for _, byt := range g.Init {
				fmt.Fprintf(&b, "%02x", byt)
			}
		}
		b.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		b.WriteString(f.listing(debug))
	}
	return b.String()
}
