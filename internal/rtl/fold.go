package rtl

import "math"

// EvalIntOp applies an integer binary operator to constants.  ok is
// false for division by zero or a non-integer operator.
func EvalIntOp(op Op, a, b int64) (v int64, ok bool) {
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case Rem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case Shl:
		if b < 0 || b >= 64 {
			return 0, false
		}
		return a << uint(b), true
	case Shr:
		if b < 0 || b >= 64 {
			return 0, false
		}
		return a >> uint(b), true
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Eq:
		return b2i(a == b), true
	case Ne:
		return b2i(a != b), true
	case Lt:
		return b2i(a < b), true
	case Le:
		return b2i(a <= b), true
	case Gt:
		return b2i(a > b), true
	case Ge:
		return b2i(a >= b), true
	}
	return 0, false
}

// EvalFloatOp applies a floating binary operator to constants.
// Relational operators yield 0/1 (as a float, callers convert).
func EvalFloatOp(op Op, a, b float64) (v float64, ok bool) {
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case Eq:
		return f2i(a == b), true
	case Ne:
		return f2i(a != b), true
	case Lt:
		return f2i(a < b), true
	case Le:
		return f2i(a <= b), true
	case Gt:
		return f2i(a > b), true
	case Ge:
		return f2i(a >= b), true
	}
	return 0, false
}

// EvalUnInt applies a unary operator in the integer domain.
func EvalUnInt(op Op, a int64) (int64, bool) {
	switch op {
	case Neg:
		return -a, true
	case Not:
		return ^a, true
	}
	return 0, false
}

// EvalUnFloat applies a unary operator in the floating domain,
// including the FEU math builtins.
func EvalUnFloat(op Op, a float64) (float64, bool) {
	switch op {
	case Neg:
		return -a, true
	case Sqrt:
		return math.Sqrt(a), true
	case Sin:
		return math.Sin(a), true
	case Cos:
		return math.Cos(a), true
	case Exp:
		return math.Exp(a), true
	case Log:
		return math.Log(a), true
	case Atan:
		return math.Atan(a), true
	case Fabs:
		return math.Abs(a), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func f2i(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FoldExpr simplifies an expression tree bottom-up: constant
// subexpressions are evaluated, algebraic identities involving 0, 1 and
// the zero registers are applied, and Sym offsets absorb added
// constants.  The result is semantically equal to the input.
func FoldExpr(e Expr) Expr {
	switch x := e.(type) {
	case Bin:
		l := FoldExpr(x.L)
		r := FoldExpr(x.R)
		return foldBin(x.Op, l, r)
	case Un:
		inner := FoldExpr(x.X)
		if c, ok := inner.(Imm); ok {
			if v, ok := EvalUnInt(x.Op, c.V); ok {
				return Imm{v}
			}
		}
		if c, ok := inner.(FImm); ok {
			if v, ok := EvalUnFloat(x.Op, c.V); ok {
				return FImm{v}
			}
		}
		return Un{x.Op, inner}
	case Cvt:
		inner := FoldExpr(x.X)
		if c, ok := inner.(Imm); ok && x.To == Float {
			return FImm{float64(c.V)}
		}
		if c, ok := inner.(FImm); ok && x.To == Int {
			return Imm{int64(c.V)}
		}
		if inner.Class() == x.To {
			return inner
		}
		return Cvt{x.To, inner}
	case Mem:
		return Mem{FoldExpr(x.Addr), x.Size, x.Cl}
	case RegX:
		// The zero registers read as constants.
		if x.Reg.IsZero() {
			if x.Reg.Class == Int {
				return Imm{0}
			}
			return FImm{0}
		}
		return x
	default:
		return e
	}
}

func foldBin(op Op, l, r Expr) Expr {
	// Constant-constant.
	if a, ok := l.(Imm); ok {
		if b, ok := r.(Imm); ok {
			if v, ok := EvalIntOp(op, a.V, b.V); ok {
				return Imm{v}
			}
		}
	}
	if a, ok := l.(FImm); ok {
		if b, ok := r.(FImm); ok {
			if v, ok := EvalFloatOp(op, a.V, b.V); ok {
				if op.IsRelational() {
					return Imm{int64(v)}
				}
				return FImm{v}
			}
		}
	}
	// Symbol arithmetic: _s + c, _s - c, c + _s.
	if s, ok := l.(Sym); ok {
		if c, ok := r.(Imm); ok {
			switch op {
			case Add:
				return Sym{s.Name, s.Off + c.V}
			case Sub:
				return Sym{s.Name, s.Off - c.V}
			}
		}
	}
	if c, ok := l.(Imm); ok {
		if s, ok := r.(Sym); ok && op == Add {
			return Sym{s.Name, s.Off + c.V}
		}
	}
	// Reassociate (x + c1) + c2 -> x + (c1+c2), and (x + c1) - c2
	// likewise, so chained constant offsets collapse.
	if c2, ok := r.(Imm); ok && (op == Add || op == Sub) {
		if lb, ok := l.(Bin); ok && lb.Op == Add {
			if c1, ok := lb.R.(Imm); ok {
				v := c1.V + c2.V
				if op == Sub {
					v = c1.V - c2.V
				}
				return foldBin(Add, lb.L, Imm{v})
			}
		}
	}
	// Canonicalize constant to the left operand's side early so the
	// identity checks below only need to consider constants on the
	// right, and later pattern matches (and CSE) see one form.
	if op.IsCommutative() {
		if _, ok := l.(Imm); ok {
			if _, isImm := r.(Imm); !isImm {
				l, r = r, l
			}
		}
		if _, ok := l.(FImm); ok {
			if _, isImm := r.(FImm); !isImm {
				l, r = r, l
			}
		}
	}
	// Identities.
	if isIntConst(r, 0) {
		switch op {
		case Add, Sub, Shl, Shr, Or, Xor:
			return l
		case Mul, And:
			if l.Class() == Int {
				return Imm{0}
			}
		}
	}
	if isIntConst(l, 0) && op == Add {
		return r
	}
	if isFloatConst(r, 0) && (op == Add || op == Sub) && l.Class() == Float {
		return l
	}
	if isFloatConst(l, 0) && op == Add && r.Class() == Float {
		return r
	}
	if isIntConst(r, 1) && (op == Mul || op == Div) {
		return l
	}
	if isIntConst(l, 1) && op == Mul {
		return r
	}
	if isFloatConst(r, 1) && (op == Mul || op == Div) {
		return l
	}
	return Bin{op, l, r}
}

func isIntConst(e Expr, v int64) bool {
	c, ok := e.(Imm)
	return ok && c.V == v
}

func isFloatConst(e Expr, v float64) bool {
	c, ok := e.(FImm)
	return ok && c.V == v
}
