package rtl

// Clone returns a deep copy of the function: the code slice and every
// instruction are fresh, so mutating the clone (or the original) never
// affects the other.  Expression trees are shared — they are immutable
// by convention (transformations replace operands via MapExprs rather
// than editing nodes in place), the same convention Instr.Clone relies
// on.  Clone is the snapshot primitive of the optimizer's pass sandbox:
// the pipeline clones a function before each pass so a faulty
// transformation can be rolled back.
func (f *Func) Clone() *Func {
	c := *f
	c.Code = make([]*Instr, len(f.Code))
	for n, i := range f.Code {
		c.Code[n] = i.Clone()
		if i.Args != nil {
			c.Code[n].Args = append([]Reg(nil), i.Args...)
		}
	}
	return &c
}

// Restore overwrites the function in place with the snapshot's state.
// The snapshot must not be used afterwards (the function takes
// ownership of its storage).  Restoring through the existing *Func
// keeps every outstanding reference to the function valid, which is
// what lets the pass sandbox roll back without re-threading pointers.
func (f *Func) Restore(snap *Func) { *f = *snap }
