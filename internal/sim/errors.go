package sim

import (
	"fmt"
	"strings"

	"wmstream/internal/rtl"
)

// Typed simulator failures.  A hung or trapped run returns a
// *DeadlockError or *TrapError (match with errors.As) carrying a
// Snapshot of the machine, so a FIFO-ordering bug in generated code is
// diagnosable from the error value alone — which unit is blocked, on
// which FIFO, and what it was trying to issue.

// UnitState describes one execution unit (IEU or FEU) and the FIFO
// machinery of its register class at snapshot time.
type UnitState struct {
	Unit      string // "IEU" or "FEU"
	QueueLen  int    // dispatched instructions waiting to issue
	HeadInstr string // the instruction at the head of the queue ("" when empty)
	HeadPC    int    // its code address (-1 when empty)
	BlockedOn string // why the head cannot issue ("" when not blocked)
	// FIFO occupancies for this class: input/output data FIFOs 0 and 1,
	// the condition-code FIFO, and stores awaiting a datum per FIFO.
	InFIFO          [2]int
	OutFIFO         [2]int
	CCFIFO          int
	UnmatchedStores [2]int
}

// StreamState describes one active stream control unit.
type StreamState struct {
	Input     bool
	FIFO      string // FIFO register the stream feeds or drains (r0, f1, ...)
	Base      int64
	Stride    int64
	Remaining int64 // elements left; negative = infinite
}

// Snapshot is the machine state embedded in simulator errors.
type Snapshot struct {
	Cycle        int64
	PC           int
	Func         string // function containing PC
	NextInstr    string // instruction at PC ("" when out of range)
	Halted       bool
	IFUBlockedOn string // why the IFU is not dispatching ("" when it is)
	Units        [2]UnitState
	Streams      []StreamState
	WriteQueue   int // memory writes awaiting a port
	LastRetired  string
	LastUnit     string // unit that retired it
	LastProgress int64  // cycle of the last forward progress
}

// String renders the snapshot as a compact multi-line report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d pc=%d (%s) halted=%v lastProgress=%d writeQ=%d",
		s.Cycle, s.PC, s.Func, s.Halted, s.LastProgress, s.WriteQueue)
	if s.NextInstr != "" {
		fmt.Fprintf(&b, "\n  ifu: next %q", s.NextInstr)
		if s.IFUBlockedOn != "" {
			fmt.Fprintf(&b, " blocked on %s", s.IFUBlockedOn)
		}
	}
	for _, u := range s.Units {
		fmt.Fprintf(&b, "\n  %s: queue=%d in=[%d %d] out=[%d %d] cc=%d stores=[%d %d]",
			u.Unit, u.QueueLen, u.InFIFO[0], u.InFIFO[1], u.OutFIFO[0], u.OutFIFO[1],
			u.CCFIFO, u.UnmatchedStores[0], u.UnmatchedStores[1])
		if u.HeadInstr != "" {
			fmt.Fprintf(&b, " head=%q@%d", u.HeadInstr, u.HeadPC)
			if u.BlockedOn != "" {
				fmt.Fprintf(&b, " blocked on %s", u.BlockedOn)
			}
		}
	}
	for _, st := range s.Streams {
		dir := "out"
		if st.Input {
			dir = "in"
		}
		fmt.Fprintf(&b, "\n  stream %s %s: base=%d stride=%d remaining=%d",
			dir, st.FIFO, st.Base, st.Stride, st.Remaining)
	}
	if s.LastRetired != "" {
		fmt.Fprintf(&b, "\n  last retired: %q (%s)", s.LastRetired, s.LastUnit)
	}
	return b.String()
}

// DeadlockError reports that the machine made no forward progress for
// longer than the watchdog allows (Config.WatchdogSlack beyond the
// memory latency).
type DeadlockError struct {
	Snapshot Snapshot
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d: %s", e.Snapshot.Cycle, e.Snapshot)
}

// TrapError reports a machine fault: a memory access out of range, a
// return to a bad address, an illegal instruction, or the MaxCycles
// bound.
type TrapError struct {
	Reason   string
	Snapshot Snapshot
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("sim: cycle %d: %s: %s", e.Snapshot.Cycle, e.Reason, e.Snapshot)
}

// snapshot captures the machine's forensic state.
func (m *Machine) snapshot() Snapshot {
	s := Snapshot{
		Cycle:        m.now,
		PC:           m.pc,
		Halted:       m.halted,
		WriteQueue:   m.writeQueue.n,
		LastUnit:     m.lastUnit,
		LastProgress: m.lastProgress,
	}
	if m.lastRetired >= 0 && m.lastRetired < len(m.img.Code) {
		s.LastRetired = m.img.Code[m.lastRetired].String()
	}
	if m.pc >= 0 && m.pc < len(m.img.Code) {
		s.Func = m.img.FuncOf[m.pc]
		s.NextInstr = m.img.Code[m.pc].String()
		if !m.halted {
			s.IFUBlockedOn = m.ifuBlockReason()
		}
	}
	names := [2]string{rtl.Int: "IEU", rtl.Float: "FEU"}
	for c := 0; c < 2; c++ {
		u := UnitState{Unit: names[c], QueueLen: m.queues[c].n, HeadPC: -1, CCFIFO: m.ccFIFO[c].n}
		for n := 0; n < 2; n++ {
			u.InFIFO[n] = m.inFIFO[c][n].n
			u.OutFIFO[n] = m.outFIFO[c][n].n
			u.UnmatchedStores[n] = m.unmatchedStores[c][n].n
		}
		if m.queues[c].n > 0 {
			d := m.queues[c].at(0)
			u.HeadInstr = d.i.String()
			u.HeadPC = d.idx
			if h := m.issueHazard(d); h.blocked() {
				u.BlockedOn = h.reason()
			}
		}
		s.Units[c] = u
	}
	for _, sc := range m.scus {
		if !sc.active {
			continue
		}
		s.Streams = append(s.Streams, StreamState{
			Input:     sc.input,
			FIFO:      rtl.Reg{Class: sc.class, N: sc.fifoN}.String(),
			Base:      sc.base,
			Stride:    sc.stride,
			Remaining: sc.remaining,
		})
	}
	return s
}

// ifuBlockReason names what is stalling the fetch unit, mirroring the
// stall paths of stepIFU.
func (m *Machine) ifuBlockReason() string {
	if m.ifuWait > 0 {
		return fmt.Sprintf("multi-word fetch (%d cycles left)", m.ifuWait)
	}
	i := m.img.Code[m.pc]
	switch i.Kind {
	case rtl.KCondJump:
		q := &m.ccFIFO[i.CCClass]
		if q.n == 0 {
			return fmt.Sprintf("CC FIFO %s (empty)", i.CCClass)
		}
		if q.at(0).ready > m.now {
			return fmt.Sprintf("CC FIFO %s (head not ready)", i.CCClass)
		}
	case rtl.KCall, rtl.KRet:
		if len(m.pend[rtl.Int][rtl.LR]) > 0 || m.readyAt[rtl.Int][rtl.LR] > m.now {
			return "link register (in-flight access)"
		}
	case rtl.KPut:
		if !m.regsQuietList(m.dec[m.pc].srcRegs) {
			return "operands (in-flight access or empty FIFO)"
		}
	case rtl.KStreamIn, rtl.KStreamOut:
		if m.queues[0].n > 0 || m.queues[1].n > 0 {
			return "unit queues draining before stream start"
		}
		if m.fifoBusy(i.MemClass, i.FIFO.N) {
			return fmt.Sprintf("FIFO %s busy before stream start", rtl.Reg{Class: i.MemClass, N: i.FIFO.N})
		}
		for _, s := range m.scus {
			if !s.active {
				return ""
			}
		}
		return "no free stream control unit"
	default:
		c := m.dec[m.pc].unit
		if m.queues[c].n >= m.cfg.QueueDepth {
			names := [2]string{rtl.Int: "IEU", rtl.Float: "FEU"}
			return fmt.Sprintf("%s queue (full)", names[c])
		}
	}
	return ""
}
