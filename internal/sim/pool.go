package sim

import (
	"crypto/sha256"
	"sync"

	"wmstream/internal/rtl"
)

// The machine pool.  A serving process runs the same handful of images
// over and over; building a Machine per request allocates its memory
// image, rings and telemetry arrays each time, which shows up as GC
// churn under load.  Acquire hands out a recycled machine — same image,
// same structural configuration — reset to power-on state, and Release
// returns it.  A rearmed machine is bit-identical to a fresh one (the
// pool tests assert it): rearm resets every mutable field New
// initializes and rewrites the memory image, keeping only the
// allocations (memory buffer, ring buffers, pend lists, telemetry
// arrays) and the shared decode/translation tables.
//
// Runs that attach per-cycle observers (Config.TraceSink, Config.Trace)
// or the profiler bypass the pool: their machines carry run-specific
// state (recorder, retirement counts) that is not worth recycling.

// poolKey identifies interchangeable machines: the image identity plus
// every configuration field that shapes allocations or behavior.  The
// per-run attachments (Ctx, Output) are excluded — Acquire reattaches
// them — and the observer attachments (Trace, TraceSink, Profile)
// bypass the pool entirely.
type poolKey struct {
	fp            [sha256.Size]byte
	memLatency    int
	memPorts      int
	fifoDepth     int
	ccDepth       int
	queueDepth    int
	numSCU        int
	divLatency    int
	mathLatency   int
	cvtLatency    int
	stackTop      int64
	memSize       int
	maxCycles     int64
	watchdogSlack int
	engine        Engine
}

var machinePools sync.Map // poolKey -> *sync.Pool of *Machine

// poolable reports whether the configuration admits recycling.
func poolable(cfg Config) bool {
	return cfg.TraceSink == nil && cfg.Trace == nil && !cfg.Profile
}

func keyFor(img *Image, cfg Config) poolKey {
	return poolKey{
		fp:            img.Fingerprint(),
		memLatency:    cfg.MemLatency,
		memPorts:      cfg.MemPorts,
		fifoDepth:     cfg.FIFODepth,
		ccDepth:       cfg.CCDepth,
		queueDepth:    cfg.QueueDepth,
		numSCU:        cfg.NumSCU,
		divLatency:    cfg.DivLatency,
		mathLatency:   cfg.MathLatency,
		cvtLatency:    cfg.CvtLatency,
		stackTop:      cfg.StackTop,
		memSize:       cfg.MemSize,
		maxCycles:     cfg.MaxCycles,
		watchdogSlack: cfg.WatchdogSlack,
		engine:        cfg.Engine,
	}
}

// Acquire returns a machine for the image and configuration, recycled
// from the pool when one is available and the configuration permits
// (no per-cycle observers), freshly built otherwise.  Pass the machine
// to Release when the run is finished; releasing is optional (an
// abandoned machine is simply collected).
func Acquire(img *Image, cfg Config) *Machine {
	if !poolable(cfg) {
		return New(img, cfg)
	}
	norm := normalizeConfig(img, cfg)
	key := keyFor(img, norm)
	p, ok := machinePools.Load(key)
	if !ok {
		p, _ = machinePools.LoadOrStore(key, &sync.Pool{})
	}
	if v := p.(*sync.Pool).Get(); v != nil {
		m := v.(*Machine)
		m.rearm(norm)
		return m
	}
	m := New(img, norm)
	m.pooled = true
	return m
}

// Release returns a machine obtained from Acquire to its pool.  Calling
// it with a machine built by New (or one Acquire declined to pool) is a
// no-op.  The machine must not be used after Release.
func Release(m *Machine) {
	if m == nil || !m.pooled {
		return
	}
	// Terminal observers were the caller's; drop them so the pooled
	// machine retains no references into the finished request.
	m.cfg.Ctx = nil
	m.cfg.Output = nil
	key := keyFor(m.img, m.cfg)
	if p, ok := machinePools.Load(key); ok {
		p.(*sync.Pool).Put(m)
	}
}

// rearm resets a recycled machine to New's power-on state under the
// (structurally identical) configuration, reusing every allocation.
func (m *Machine) rearm(cfg Config) {
	m.cfg = cfg

	m.now = 0
	m.pc = m.img.Entry
	m.halted = false
	m.ifuWait = 0

	m.regs = [2][rtl.NumArchRegs]uint64{}
	m.readyAt = [2][rtl.NumArchRegs]int64{}
	for c := 0; c < 2; c++ {
		for n := range m.pend[c] {
			m.pend[c][n] = m.pend[c][n][:0]
		}
	}
	m.seq = 0
	m.regs[rtl.Int][rtl.SP] = uint64(cfg.StackTop)

	for c := 0; c < 2; c++ {
		m.queues[c].reset()
		m.ccFIFO[c].reset()
		for n := 0; n < 2; n++ {
			m.inFIFO[c][n].reset()
			m.outFIFO[c][n].reset()
			m.unmatchedStores[c][n].reset()
		}
	}
	m.streamIter = [2][2]int64{}
	for _, s := range m.scus {
		*s = scu{}
	}
	m.activeSCUs = 0
	m.outStreams = [2][2]int{}
	m.writeQueue.reset()
	m.portsLeft = 0
	m.memSeq = 0
	m.unserved = 0

	m.lastProgress = 0
	m.lastRetired = -1
	m.lastUnit = ""
	m.stats = Stats{}
	m.err = nil
	m.finished = false
	m.termErr = nil
	m.flushed = false
	m.scuProgress = false
	m.otherProgress = false
	for u := range m.cycleCause {
		m.cycleCause[u] = 0
	}
	m.evalStack = m.evalStack[:0]
	for u := range m.unitCounts {
		for c := range m.unitCounts[u].Counts {
			m.unitCounts[u].Counts[c] = 0
		}
	}
	m.nextEv = 0
	m.readyMask = [2]uint32{}
	m.scuIdleDeferred = 0
	m.unitIdleDeferred = [2]int64{}
	m.scuCauseIdle = false
	m.unitCauseIdle = [2]bool{}

	// The memory image: clear and replay the initialized chunks
	// (compiles to a memclr; still far cheaper than a fresh allocation
	// plus the garbage of the old one).
	for i := range m.mem {
		m.mem[i] = 0
	}
	for _, c := range m.img.Init {
		copy(m.mem[c.addr:], c.data)
	}
}
