package sim

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	var r ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			r.push(i)
		}
		if r.n != 100 {
			t.Fatalf("round %d: n = %d, want 100", round, r.n)
		}
		for i := 0; i < 100; i++ {
			if got := *r.at(i); got != i {
				t.Fatalf("round %d: at(%d) = %d, want %d", round, i, got, i)
			}
		}
		for i := 0; i < 100; i++ {
			if got := r.pop(); got != i {
				t.Fatalf("round %d: pop = %d, want %d", round, got, i)
			}
		}
		if r.n != 0 {
			t.Fatalf("round %d: n = %d after draining", round, r.n)
		}
	}
}

// TestRingWrap drives the head around the buffer so pushes wrap past
// the end while entries are live.
func TestRingWrap(t *testing.T) {
	var r ring[int]
	r.reserve(8)
	if len(r.buf) != 8 {
		t.Fatalf("reserve(8): cap = %d, want 8", len(r.buf))
	}
	next := 0
	// Keep 5 live entries while cycling 1000 through.
	for i := 0; i < 5; i++ {
		r.push(i)
	}
	for i := 5; i < 1000; i++ {
		if got := r.pop(); got != next {
			t.Fatalf("pop = %d, want %d", got, next)
		}
		next++
		r.push(i)
	}
	if len(r.buf) != 8 {
		t.Fatalf("steady state reallocated: cap = %d, want 8", len(r.buf))
	}
	for r.n > 0 {
		if got := r.pop(); got != next {
			t.Fatalf("drain pop = %d, want %d", got, next)
		}
		next++
	}
}

func TestRingGrowPreservesOrder(t *testing.T) {
	var r ring[int]
	// Offset the head, then force repeated growth.
	for i := 0; i < 6; i++ {
		r.push(-1)
	}
	for i := 0; i < 6; i++ {
		r.pop()
	}
	for i := 0; i < 200; i++ {
		r.push(i)
	}
	for i := 0; i < 200; i++ {
		if got := r.pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
}

func TestRingAtPointerMutation(t *testing.T) {
	var r ring[struct{ v int }]
	r.push(struct{ v int }{1})
	r.push(struct{ v int }{2})
	r.at(1).v = 42
	r.pop()
	if got := r.pop().v; got != 42 {
		t.Fatalf("mutation through at() lost: got %d, want 42", got)
	}
}
