package sim

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"wmstream/internal/rtl"
)

// GlobalBase is the address where global data begins.
const GlobalBase = 0x1000

// Image is a linked program: all functions flattened into one code
// array with labels and calls resolved to instruction indices, and
// global data laid out at fixed addresses.
type Image struct {
	Code    []*rtl.Instr
	Target  []int // resolved branch target per instruction (-1 if none)
	Entry   int   // index of the first instruction
	Globals map[string]int64
	DataEnd int64
	Init    []initChunk
	// FuncOf maps an instruction index to its function name (for
	// diagnostics).
	FuncOf []string
	// Line maps an instruction index to its 1-based source line
	// (0 = unknown).  Within each function, instructions without their
	// own line inherit the nearest stamped neighbor (previous first,
	// else next), so compiler-synthesized prologue/epilogue code
	// attributes to the function rather than vanishing from profiles.
	Line []int

	fpOnce sync.Once
	fp     [sha256.Size]byte
}

// Fingerprint returns the content address of the image: a SHA-256 over
// everything that determines execution and diagnostics — the rendered
// instructions with their non-printing fields, resolved branch targets,
// the entry point, the global layout, initialized data, and the
// function/line debug tables.  Two images with equal fingerprints
// behave identically under any machine configuration, which is what
// makes the process-wide translation cache and the machine pool sound.
// Computed once per image and cached.
func (img *Image) Fingerprint() [sha256.Size]byte {
	img.fpOnce.Do(func() {
		h := sha256.New()
		fmt.Fprintf(h, "wmimg/1\x00entry=%d\x00dataend=%d\x00", img.Entry, img.DataEnd)
		names := make([]string, 0, len(img.Globals))
		for name := range img.Globals {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "g\x00%s\x00%d\x00", name, img.Globals[name])
		}
		for _, c := range img.Init {
			fmt.Fprintf(h, "init\x00%d\x00", c.addr)
			h.Write(c.data)
			h.Write([]byte{0})
		}
		for n, i := range img.Code {
			// String covers the operands; the numeric fields cover the
			// parts a rendering could conceivably alias.
			fmt.Fprintf(h, "i\x00%s\x00%d %d %d %d %d %d %t %d\x00",
				i.String(), img.Target[n], i.Kind, i.MemSize, i.MemClass,
				i.CCClass, i.Fmt, i.Sense, i.FIFO.N)
			fmt.Fprintf(h, "%s\x00%d\x00", img.FuncOf[n], img.Line[n])
		}
		h.Sum(img.fp[:0])
	})
	return img.fp
}

type initChunk struct {
	addr int64
	data []byte
}

// Link flattens and resolves a program.  Virtual registers must have
// been eliminated (register assignment is mandatory before simulation).
func Link(p *rtl.Program) (*Image, error) {
	img := &Image{Globals: map[string]int64{}}
	// Lay out globals.
	addr := int64(GlobalBase)
	for _, g := range p.Globals {
		a := int64(g.Align)
		if a <= 0 {
			a = 1
		}
		addr = (addr + a - 1) &^ (a - 1)
		img.Globals[g.Name] = addr
		if len(g.Init) > 0 {
			img.Init = append(img.Init, initChunk{addr, g.Init})
		}
		addr += int64(g.Size)
	}
	img.DataEnd = addr

	// Flatten code.
	funcEntry := map[string]int{}
	type pendingLabel struct {
		fn    string
		insAt int
	}
	labelAt := map[string]int{} // "fn.label" -> index
	for _, f := range p.Funcs {
		funcEntry[f.Name] = len(img.Code)
		fnStart := len(img.Code)
		for _, i := range f.Code {
			if err := checkNoVirtual(i, f.Name); err != nil {
				return nil, err
			}
			if i.Kind == rtl.KLabel {
				labelAt[f.Name+"."+i.Name] = len(img.Code)
				// Labels occupy no slot; record position of next
				// instruction.
				continue
			}
			img.Code = append(img.Code, i)
			img.FuncOf = append(img.FuncOf, f.Name)
			img.Line = append(img.Line, i.Line)
		}
		// A label at the very end of a function points past the code;
		// ensure something is there.
		img.Code = append(img.Code, &rtl.Instr{Kind: rtl.KRet})
		img.FuncOf = append(img.FuncOf, f.Name)
		img.Line = append(img.Line, 0)
		inheritLines(img.Line[fnStart:])
	}

	// Resolve branch targets and calls.
	img.Target = make([]int, len(img.Code))
	for n, i := range img.Code {
		img.Target[n] = -1
		switch i.Kind {
		case rtl.KJump, rtl.KCondJump, rtl.KJumpNotDone:
			key := img.FuncOf[n] + "." + i.Target
			t, ok := labelAt[key]
			if !ok {
				return nil, fmt.Errorf("sim: unresolved label %q in %s", i.Target, img.FuncOf[n])
			}
			img.Target[n] = t
		case rtl.KCall:
			t, ok := funcEntry[i.Name]
			if !ok {
				return nil, fmt.Errorf("sim: call to unknown function %q", i.Name)
			}
			img.Target[n] = t
		}
	}

	entryFn := p.Entry
	if entryFn == "" {
		entryFn = "main"
	}
	e, ok := funcEntry[entryFn]
	if !ok {
		return nil, fmt.Errorf("sim: entry function %q not found", entryFn)
	}
	img.Entry = e
	return img, nil
}

// inheritLines fills unknown (zero) entries of one function's line
// slice: each inherits the previous known line, and leading zeros take
// the first known line.  A function with no debug info stays all zero.
func inheritLines(lines []int) {
	last := 0
	for n, l := range lines {
		if l != 0 {
			last = l
		} else if last != 0 {
			lines[n] = last
		}
	}
	first := 0
	for _, l := range lines {
		if l != 0 {
			first = l
			break
		}
	}
	for n := 0; n < len(lines) && lines[n] == 0; n++ {
		lines[n] = first
	}
}

func checkNoVirtual(i *rtl.Instr, fn string) error {
	bad := false
	check := func(r rtl.Reg) {
		if r.IsVirtual() {
			bad = true
		}
	}
	if d, ok := i.Def(); ok {
		check(d)
	}
	for _, r := range i.Uses(nil) {
		check(r)
	}
	if bad {
		return fmt.Errorf("sim: %s contains unallocated virtual register in %q", fn, i)
	}
	return nil
}

// InitChunk is an initialized data region (exported for the scalar
// interpreter, which shares the linker).
type InitChunk struct {
	Addr int64
	Data []byte
}

// InitChunks returns the initialized data regions.
func (img *Image) InitChunks() []InitChunk {
	out := make([]InitChunk, len(img.Init))
	for n, c := range img.Init {
		out[n] = InitChunk{c.addr, c.data}
	}
	return out
}
