package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// maxZeroCostOps bounds the number of zero-cost control transfers the
// IFU performs per cycle (a self-jump would otherwise spin forever in
// simulated zero time).
const maxZeroCostOps = 64

// stepIFU advances the instruction fetch unit: it executes control
// transfers itself (unconditional branches free, conditional branches
// consuming condition codes, stream-count branches, calls and returns)
// and dispatches at most one instruction per cycle into a unit queue.
// Every cycle is charged to one telemetry cause; a cycle that executed
// any zero-cost op counts as issued even when a later op in the same
// cycle stalled.
func (m *Machine) stepIFU() {
	m.account(unitIFU, m.ifuCycle(), nil)
}

func (m *Machine) ifuCycle() telemetry.Cause {
	if m.halted {
		return telemetry.CauseIdle
	}
	if m.ifuWait > 0 {
		m.ifuWait--
		m.progress()
		return telemetry.CauseFetch
	}
	did := false
	stall := func(c telemetry.Cause) telemetry.Cause {
		if did {
			return telemetry.CauseIssued
		}
		return c
	}
	for zc := 0; zc < maxZeroCostOps; zc++ {
		if m.pc < 0 || m.pc >= len(m.img.Code) {
			m.fail("pc out of range: %d", m.pc)
			return stall(telemetry.CauseIdle)
		}
		i := m.img.Code[m.pc]
		target := m.img.Target[m.pc]
		switch i.Kind {
		case rtl.KJump:
			m.profTick(m.pc)
			m.pc = target
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KCondJump:
			q := m.ccFIFO[i.CCClass]
			if len(q) == 0 || q[0].ready > m.now {
				m.stats.BranchStalls++
				return stall(telemetry.CauseCCWait)
			}
			m.ccFIFO[i.CCClass] = q[1:]
			m.profTick(m.pc)
			if q[0].val == i.Sense {
				m.pc = target
			} else {
				m.pc++
			}
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KJumpNotDone:
			m.profTick(m.pc)
			cnt := m.streamIter[i.FIFO.Class][i.FIFO.N]
			if cnt < 0 { // infinite stream: always taken
				m.pc = target
			} else if cnt > 1 {
				m.streamIter[i.FIFO.Class][i.FIFO.N] = cnt - 1
				m.pc = target
			} else {
				m.streamIter[i.FIFO.Class][i.FIFO.N] = 0
				m.pc++
			}
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KCall:
			// The IFU writes the link register; wait out any in-flight
			// access to it.
			if len(m.pend[rtl.RegLR]) > 0 {
				return stall(telemetry.CauseResultLatency)
			}
			m.profTick(m.pc)
			m.regs[rtl.Int][rtl.LR] = uint64(m.pc + 1)
			m.readyAt[rtl.Int][rtl.LR] = m.now
			m.pc = target
			m.progress()
			did = true
			continue

		case rtl.KRet:
			if len(m.pend[rtl.RegLR]) > 0 || m.readyAt[rtl.Int][rtl.LR] > m.now {
				return stall(telemetry.CauseResultLatency)
			}
			ret := int(m.regs[rtl.Int][rtl.LR])
			if ret < 0 || ret >= len(m.img.Code) {
				m.fail("return to bad address %d", ret)
				return stall(telemetry.CauseIdle)
			}
			m.profTick(m.pc)
			m.pc = ret
			m.progress()
			did = true
			continue

		case rtl.KHalt:
			m.profTick(m.pc)
			m.halted = true
			m.progress()
			return telemetry.CauseIssued

		case rtl.KPut:
			if !m.regsQuiet(i.Src) {
				return stall(telemetry.CauseResultLatency)
			}
			val, ok := m.eval(i.Src)
			if !ok {
				return stall(telemetry.CauseIdle)
			}
			m.profTick(m.pc)
			m.put(i.Fmt, val, i.Src.Class())
			m.pc++
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued // consumes the dispatch slot

		case rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop:
			if !m.startStream(i) {
				return stall(telemetry.CauseStreamBusy)
			}
			m.profTick(m.pc)
			m.pc++
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued

		default:
			// Dispatch into a unit queue.
			c := unitOf(i)
			if len(m.queues[c]) >= m.cfg.QueueDepth {
				m.stats.IFUStallFull++
				return stall(telemetry.CauseQueueFull)
			}
			m.seq++
			d := &dispatched{idx: m.pc, i: i, seq: m.seq}
			m.queues[c] = append(m.queues[c], d)
			m.addPend(d)
			m.pc++
			m.stats.Dispatched++
			m.ifuWait = i.Words() - 1
			m.progress()
			return telemetry.CauseIssued
		}
	}
	return telemetry.CauseIssued // zero-cost budget exhausted mid-cycle
}

// regsQuiet reports whether every register in the expression is free of
// in-flight accesses and ready (the IFU synchronizes on its operands).
func (m *Machine) regsQuiet(e rtl.Expr) bool {
	ok := true
	rtl.ExprRegs(e, func(r rtl.Reg) {
		if r.IsZero() {
			return
		}
		if r.IsFIFO() {
			q := m.inFIFO[r.Class][r.N]
			if len(q) == 0 || !q[0].served || q[0].ready > m.now {
				ok = false
			}
			return
		}
		if len(m.pend[r]) > 0 || m.readyAt[r.Class][r.N] > m.now {
			ok = false
		}
	})
	return ok
}

// startStream activates an SCU for a stream instruction (or stops one).
// Returns false when the IFU must stall (operands not ready or no SCU
// free).
func (m *Machine) startStream(i *rtl.Instr) bool {
	if i.Kind == rtl.KStreamStop {
		for _, s := range m.scus {
			if s.active && s.class == i.FIFO.Class && s.fifoN == i.FIFO.N {
				s.active = false
			}
		}
		// Discard prefetched stream data the loop never consumed.
		// Scalar entries (seq != 0) belong to in-flight load/dequeue
		// pairs and survive, which makes a stop on an inactive stream
		// harmless — the compiler may place stops on exit paths that
		// can also be reached without ever starting the stream.
		q := m.inFIFO[i.FIFO.Class][i.FIFO.N]
		kept := q[:0]
		for _, e := range q {
			if e.seq != 0 {
				kept = append(kept, e)
			}
		}
		m.inFIFO[i.FIFO.Class][i.FIFO.N] = kept
		m.streamIter[i.FIFO.Class][i.FIFO.N] = 0
		return true
	}
	if !m.regsQuiet(i.Base) || !m.regsQuiet(i.Count) || !m.regsQuiet(i.Stride) {
		return false
	}
	// Program-order discipline: instructions dispatched before this
	// stream may still sit unexecuted in the unit queues; activating the
	// stream while an earlier same-FIFO access is pending would
	// interleave stream data with scalar data, and activating before
	// earlier loads have been sequenced breaks the load-vs-stream-store
	// ordering.  Hold the stream until both queues drain (a few cycles
	// at loop entry) and the FIFO has no leftover scalar traffic.
	if len(m.queues[0]) > 0 || len(m.queues[1]) > 0 {
		return false
	}
	if m.fifoBusy(i.MemClass, i.FIFO.N) {
		return false
	}
	var unit *scu
	for _, s := range m.scus {
		if !s.active {
			unit = s
			break
		}
	}
	if unit == nil {
		return false
	}
	base, ok := m.eval(i.Base)
	if !ok {
		return false
	}
	count, ok := m.eval(i.Count)
	if !ok {
		return false
	}
	stride, ok := m.eval(i.Stride)
	if !ok {
		return false
	}
	unit.active = true
	unit.input = i.Kind == rtl.KStreamIn
	unit.class = i.MemClass
	unit.fifoN = i.FIFO.N
	unit.base = int64(base)
	unit.stride = int64(stride)
	unit.size = i.MemSize
	unit.remaining = int64(count)
	m.streamIter[i.MemClass][i.FIFO.N] = int64(count)
	m.stats.StreamsOpened++
	return true
}

// fifoBusy reports whether any queued (dispatched, unexecuted)
// instruction references FIFO (c, n) — as a load/store channel or as a
// register operand/destination.
func (m *Machine) fifoBusy(c rtl.Class, n int) bool {
	fifo := rtl.Reg{Class: c, N: n}
	for u := 0; u < 2; u++ {
		for _, d := range m.queues[u] {
			i := d.i
			switch i.Kind {
			case rtl.KLoad, rtl.KStore:
				if i.MemClass == c && i.FIFO.N == n {
					return true
				}
			}
			if i.Kind == rtl.KAssign && i.Dst == fifo {
				return true
			}
			for _, r := range i.Uses(nil) {
				if r == fifo {
					return true
				}
			}
		}
	}
	// Unserved or unconsumed scalar entries already in the input FIFO
	// also belong to earlier instructions; wait for them too.
	for _, e := range m.inFIFO[c][n] {
		if e.seq != 0 {
			return true
		}
	}
	return len(m.unmatchedStores[c][n]) > 0
}

func (m *Machine) put(format byte, val uint64, c rtl.Class) {
	if m.cfg.Output == nil {
		return
	}
	switch format {
	case 'c':
		fmt.Fprintf(m.cfg.Output, "%c", byte(val))
	case 'i':
		fmt.Fprintf(m.cfg.Output, "%d", int64(val))
	case 'd':
		f := math.Float64frombits(val)
		if c == rtl.Int {
			f = float64(int64(val))
		}
		fmt.Fprintf(m.cfg.Output, "%g", f)
	}
}
