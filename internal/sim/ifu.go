package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// maxZeroCostOps bounds the number of zero-cost control transfers the
// IFU performs per cycle (a self-jump would otherwise spin forever in
// simulated zero time).
const maxZeroCostOps = 64

// stepIFU advances the instruction fetch unit: it executes control
// transfers itself (unconditional branches free, conditional branches
// consuming condition codes, stream-count branches, calls and returns)
// and dispatches at most one instruction per cycle into a unit queue.
// Every cycle is charged to one telemetry cause; a cycle that executed
// any zero-cost op counts as issued even when a later op in the same
// cycle stalled.
func (m *Machine) stepIFU() {
	m.account(unitIFU, m.ifuCycle(), nil)
}

func (m *Machine) ifuCycle() telemetry.Cause {
	if m.halted {
		return telemetry.CauseIdle
	}
	if m.ifuWait > 0 {
		m.ifuWait--
		m.progress()
		return telemetry.CauseFetch
	}
	did := false
	stall := func(c telemetry.Cause) telemetry.Cause {
		if did {
			return telemetry.CauseIssued
		}
		return c
	}
	for zc := 0; zc < maxZeroCostOps; zc++ {
		if m.pc < 0 || m.pc >= len(m.img.Code) {
			m.fail("pc out of range: %d", m.pc)
			return stall(telemetry.CauseIdle)
		}
		i := m.img.Code[m.pc]
		target := m.img.Target[m.pc]
		switch i.Kind {
		case rtl.KJump:
			m.profTick(m.pc)
			m.pc = target
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KCondJump:
			q := &m.ccFIFO[i.CCClass]
			if q.n == 0 || q.at(0).ready > m.now {
				m.stats.BranchStalls++
				return stall(telemetry.CauseCCWait)
			}
			cc := q.pop()
			m.profTick(m.pc)
			if cc.val == i.Sense {
				m.pc = target
			} else {
				m.pc++
			}
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KJumpNotDone:
			m.profTick(m.pc)
			cnt := m.streamIter[i.FIFO.Class][i.FIFO.N]
			if cnt < 0 { // infinite stream: always taken
				m.pc = target
			} else if cnt > 1 {
				m.streamIter[i.FIFO.Class][i.FIFO.N] = cnt - 1
				m.pc = target
			} else {
				m.streamIter[i.FIFO.Class][i.FIFO.N] = 0
				m.pc++
			}
			m.stats.Branches++
			m.progress()
			did = true
			continue

		case rtl.KCall:
			// The IFU writes the link register; wait out any in-flight
			// access to it.
			if len(m.pend[rtl.Int][rtl.LR]) > 0 {
				return stall(telemetry.CauseResultLatency)
			}
			m.profTick(m.pc)
			m.regs[rtl.Int][rtl.LR] = uint64(m.pc + 1)
			m.readyAt[rtl.Int][rtl.LR] = m.now
			m.pc = target
			m.progress()
			did = true
			continue

		case rtl.KRet:
			if len(m.pend[rtl.Int][rtl.LR]) > 0 || m.readyAt[rtl.Int][rtl.LR] > m.now {
				return stall(telemetry.CauseResultLatency)
			}
			ret := int(m.regs[rtl.Int][rtl.LR])
			if ret < 0 || ret >= len(m.img.Code) {
				m.fail("return to bad address %d", ret)
				return stall(telemetry.CauseIdle)
			}
			m.profTick(m.pc)
			m.pc = ret
			m.progress()
			did = true
			continue

		case rtl.KHalt:
			m.profTick(m.pc)
			m.halted = true
			m.progress()
			return telemetry.CauseIssued

		case rtl.KPut:
			dec := &m.dec[m.pc]
			if !m.regsQuietList(dec.srcRegs) {
				return stall(telemetry.CauseResultLatency)
			}
			val, ok := m.evalProg(dec.src)
			if !ok {
				return stall(telemetry.CauseIdle)
			}
			m.profTick(m.pc)
			m.put(i.Fmt, val, dec.srcClass)
			m.pc++
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued // consumes the dispatch slot

		case rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop:
			if !m.startStream(i, &m.dec[m.pc]) {
				return stall(telemetry.CauseStreamBusy)
			}
			m.profTick(m.pc)
			m.pc++
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued

		default:
			// Dispatch into a unit queue.
			dec := &m.dec[m.pc]
			c := dec.unit
			if m.queues[c].n >= m.cfg.QueueDepth {
				m.stats.IFUStallFull++
				return stall(telemetry.CauseQueueFull)
			}
			m.seq++
			d := dispatched{idx: m.pc, i: i, dec: dec, seq: m.seq}
			m.queues[c].push(d)
			m.addPend(&d)
			m.pc++
			m.stats.Dispatched++
			m.ifuWait = dec.words - 1
			m.progress()
			return telemetry.CauseIssued
		}
	}
	return telemetry.CauseIssued // zero-cost budget exhausted mid-cycle
}

// regsQuietList reports whether every listed register is free of
// in-flight accesses and ready (the IFU synchronizes on its operands).
// The lists come from the decode cache with zero registers filtered.
func (m *Machine) regsQuietList(regs []rtl.Reg) bool {
	for _, r := range regs {
		if r.IsFIFO() {
			q := &m.inFIFO[r.Class][r.N]
			if q.n == 0 || !q.at(0).served || q.at(0).ready > m.now {
				return false
			}
			continue
		}
		if len(m.pend[r.Class][r.N]) > 0 || m.readyAt[r.Class][r.N] > m.now {
			return false
		}
	}
	return true
}

// startStream activates an SCU for a stream instruction (or stops one).
// Returns false when the IFU must stall (operands not ready or no SCU
// free).
func (m *Machine) startStream(i *rtl.Instr, dec *decoded) bool {
	if i.Kind == rtl.KStreamStop {
		for _, s := range m.scus {
			if s.active && s.class == i.FIFO.Class && s.fifoN == i.FIFO.N {
				m.deactivate(s)
			}
		}
		// Discard prefetched stream data the loop never consumed.
		// Scalar entries (seq != 0) belong to in-flight load/dequeue
		// pairs and survive, which makes a stop on an inactive stream
		// harmless — the compiler may place stops on exit paths that
		// can also be reached without ever starting the stream.
		q := &m.inFIFO[i.FIFO.Class][i.FIFO.N]
		for k, live := 0, q.n; k < live; k++ {
			e := q.pop()
			if e.seq != 0 {
				q.push(e)
			}
		}
		m.streamIter[i.FIFO.Class][i.FIFO.N] = 0
		return true
	}
	if !m.regsQuietList(dec.baseRegs) || !m.regsQuietList(dec.countRegs) ||
		!m.regsQuietList(dec.strideRegs) {
		return false
	}
	// Program-order discipline: instructions dispatched before this
	// stream may still sit unexecuted in the unit queues; activating the
	// stream while an earlier same-FIFO access is pending would
	// interleave stream data with scalar data, and activating before
	// earlier loads have been sequenced breaks the load-vs-stream-store
	// ordering.  Hold the stream until both queues drain (a few cycles
	// at loop entry) and the FIFO has no leftover scalar traffic.
	if m.queues[0].n > 0 || m.queues[1].n > 0 {
		return false
	}
	if m.fifoBusy(i.MemClass, i.FIFO.N) {
		return false
	}
	var unit *scu
	for _, s := range m.scus {
		if !s.active {
			unit = s
			break
		}
	}
	if unit == nil {
		return false
	}
	base, ok := m.evalProg(dec.base)
	if !ok {
		return false
	}
	count, ok := m.evalProg(dec.count)
	if !ok {
		return false
	}
	stride, ok := m.evalProg(dec.stride)
	if !ok {
		return false
	}
	unit.active = true
	m.activeSCUs++
	unit.input = i.Kind == rtl.KStreamIn
	unit.class = i.MemClass
	unit.fifoN = i.FIFO.N
	unit.base = int64(base)
	unit.stride = int64(stride)
	unit.size = i.MemSize
	unit.remaining = int64(count)
	if !unit.input {
		m.outStreams[unit.class][unit.fifoN]++
	}
	m.streamIter[i.MemClass][i.FIFO.N] = int64(count)
	m.stats.StreamsOpened++
	return true
}

// fifoBusy reports whether any queued (dispatched, unexecuted)
// instruction references FIFO (c, n) — as a load/store channel or as a
// register operand/destination.
func (m *Machine) fifoBusy(c rtl.Class, n int) bool {
	for u := 0; u < 2; u++ {
		q := &m.queues[u]
		for k := 0; k < q.n; k++ {
			if q.at(k).dec.busyFIFO[c][n] {
				return true
			}
		}
	}
	// Unserved or unconsumed scalar entries already in the input FIFO
	// also belong to earlier instructions; wait for them too.
	in := &m.inFIFO[c][n]
	for k := 0; k < in.n; k++ {
		if in.at(k).seq != 0 {
			return true
		}
	}
	return m.unmatchedStores[c][n].n > 0
}

func (m *Machine) put(format byte, val uint64, c rtl.Class) {
	if m.cfg.Output == nil {
		return
	}
	switch format {
	case 'c':
		fmt.Fprintf(m.cfg.Output, "%c", byte(val))
	case 'i':
		fmt.Fprintf(m.cfg.Output, "%d", int64(val))
	case 'd':
		f := math.Float64frombits(val)
		if c == rtl.Int {
			f = float64(int64(val))
		}
		fmt.Fprintf(m.cfg.Output, "%g", f)
	}
}
