package sim

import (
	"math/bits"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// The fast engine.  It runs the same step() as the reference engine but
// recognizes two provable situations and fast-forwards through them:
//
//   - A cycle with no forward progress at all.  The only state such a
//     cycle changes is the clock, the per-unit attribution, and the
//     per-cycle stall statistics; every blocking predicate compares a
//     stored ready time against the clock.  The machine therefore
//     replays the cycle verbatim until just before the earliest ready
//     time can flip a predicate (outer operands compare against now+1,
//     so the skip stops two cycles short), the watchdog deadline, or
//     MaxCycles — and the skipped cycles are charged in bulk to the
//     causes the observed cycle was charged to.  Attribution still sums
//     to cycles by construction.
//
//   - A cycle whose only progress is SCU stream transfers.  scuHorizon
//     proves a window in which the IFU and both execution units remain
//     pinned in their observed stall states and the store matcher and
//     memory server remain no-ops; within it only the per-element SCU
//     code is replayed (so memory contents, port arbitration, stats and
//     faults stay exact), and the three stalled units are bulk-charged.
//
// Everything else — any cycle where a unit issues, the IFU dispatches,
// or memory is served — runs through the untouched per-cycle code, so
// the fast engine cannot drift from the reference on the hard parts.

const unboundedCycles = int64(1) << 62

// runFast advances the fast engine up to the absolute cycle limit.
// Slicing cannot change what the engine computes: a skip or batch
// window chopped at the limit resumes with a re-observed template
// cycle that — being a replay of the same stalled cycle — charges the
// same causes and stat deltas the unchopped window would have, so the
// bulk accounting stays linear across the cut.
func (m *Machine) runFast(limit int64) (bool, error) {
	slack := m.watchdogSlack()
	done := m.cancelDone()
	lastCheck := m.now
	for !m.done() {
		if m.now >= limit {
			return false, nil
		}
		m.now++
		if m.now > m.cfg.MaxCycles {
			return false, m.maxCyclesTrap()
		}
		// Poll cancellation on the same cycle grid as the reference
		// engine; the clock can jump, so track the last checked cycle
		// instead of masking.
		if done != nil && m.now-lastCheck >= cancelCheckInterval {
			lastCheck = m.now
			select {
			case <-done:
				return false, m.cfg.Ctx.Err()
			default:
			}
		}
		loadStalls := m.stats.LoadStalls
		branchStalls := m.stats.BranchStalls
		ifuFull := m.stats.IFUStallFull
		m.scuProgress = false
		m.otherProgress = false
		m.step()
		if m.err != nil {
			return false, m.err
		}
		if m.now-m.lastProgress > int64(m.cfg.MemLatency)+slack {
			return false, &DeadlockError{Snapshot: m.snapshot()}
		}
		if m.otherProgress {
			continue
		}
		// The cycle just evaluated is the template for what follows.
		dLoad := m.stats.LoadStalls - loadStalls
		dBranch := m.stats.BranchStalls - branchStalls
		dIFU := m.stats.IFUStallFull - ifuFull
		if m.scuProgress {
			if err := m.batchSCU(dLoad, dBranch, dIFU, limit); err != nil {
				return false, err
			}
		} else {
			m.idleSkip(dLoad, dBranch, dIFU, slack, limit)
		}
	}
	m.stats.Cycles = m.now
	return true, nil
}

// idleSkip fast-forwards over a stretch of fully stalled cycles.  The
// machine state is static except for the clock, so cycles now+1 ..
// target replicate the observed cycle exactly; they are charged in bulk
// and the clock jumps.  The cycle after the skip runs normally and is
// the one that observes the flipped predicate, fires the watchdog (that
// cycle is charged, so the skip stops at its eve), or trips MaxCycles
// (that cycle is not charged, so the skip may land on the bound).
// The slice limit caps the skip like MaxCycles does: the remainder of
// the stretch is re-proven and skipped by the next slice.
func (m *Machine) idleSkip(dLoad, dBranch, dIFU, slack, limit int64) {
	target := m.lastProgress + int64(m.cfg.MemLatency) + slack
	if ev := m.nextEvent(); ev > 0 {
		// Outer operands compare readyAt against now+1, so the last
		// cycle identical to the observed one is ev-2.
		target = minI64(target, ev-2)
	}
	target = minI64(target, m.cfg.MaxCycles)
	target = minI64(target, limit)
	k := target - m.now
	if k <= 0 {
		return
	}
	for u := range m.unitCounts {
		m.unitCounts[u].Counts[m.cycleCause[u]] += k
	}
	m.stats.LoadStalls += dLoad * k
	m.stats.BranchStalls += dBranch * k
	m.stats.IFUStallFull += dIFU * k
	m.now = target
}

// noteEvent feeds the next-event cache with a freshly stored ready
// time.  Every site that writes a future readyAt, FIFO-entry ready, or
// condition-code ready time calls it, so the cache never misses an
// event; consumed entries merely leave it stale-small, which only
// shortens an idle skip.  An unknown cache (0) stays unknown — the next
// nextEvent call rebuilds it by scanning.
func (m *Machine) noteEvent(t int64) {
	if t > m.now && m.nextEv != 0 && t < m.nextEv {
		m.nextEv = t
	}
}

// setReady stores a scalar register's result forwarding time, keeping
// the ready mask and the next-event cache fed.
func (m *Machine) setReady(c rtl.Class, n int, t int64) {
	m.readyAt[c][n] = t
	m.readyMask[c] |= 1 << uint(n)
	m.noteEvent(t)
}

// nextEvent returns a conservative bound on the earliest stored ready
// time strictly after now (0 when none exists): the cached bound when
// it is still in the future, else a full scan whose result re-seeds the
// cache.  These ready times are the only time-varying inputs of a
// no-progress cycle: scalar result forwarding times, in-flight FIFO
// data arrival times, and condition-code ready times.
func (m *Machine) nextEvent() int64 {
	if ev := m.nextEv; ev > m.now {
		if ev == unboundedCycles {
			return 0
		}
		return ev
	}
	ev := m.scanNextEvent()
	if ev == 0 {
		m.nextEv = unboundedCycles
	} else {
		m.nextEv = ev
	}
	return ev
}

// scanNextEvent derives the exact next event by scanning every stored
// ready time (the cache-rebuild slow path).
func (m *Machine) scanNextEvent() int64 {
	ev := unboundedCycles
	for c := 0; c < 2; c++ {
		// Visit only registers whose mask bit says a future readyAt may
		// be stored, clearing bits proven stale.
		for mask := m.readyMask[c]; mask != 0; mask &= mask - 1 {
			n := bits.TrailingZeros32(mask)
			if t := m.readyAt[c][n]; t > m.now {
				if t < ev {
					ev = t
				}
			} else {
				m.readyMask[c] &^= 1 << uint(n)
			}
		}
		for n := 0; n < 2; n++ {
			q := &m.inFIFO[c][n]
			for k := 0; k < q.n; k++ {
				e := q.at(k)
				if e.served && e.ready > m.now && e.ready < ev {
					ev = e.ready
				}
			}
		}
		cq := &m.ccFIFO[c]
		for k := 0; k < cq.n; k++ {
			if t := cq.at(k).ready; t > m.now && t < ev {
				ev = t
			}
		}
	}
	if ev == unboundedCycles {
		return 0
	}
	return ev
}

// batchSCU replays up to scuHorizon() cycles running only the clock,
// the port reset and the real per-element SCU code — memory mutation,
// port arbitration, stream bookkeeping, stats and fault semantics stay
// exact by construction.  The IFU and execution units are provably
// pinned in their observed stall states for the whole window, so they
// are bulk-charged to the observed causes, including for a cycle that
// faults partway (the reference charges every unit on a faulting cycle
// too).
func (m *Machine) batchSCU(dLoad, dBranch, dIFU, limit int64) error {
	k := minI64(m.scuHorizon(), m.cfg.MaxCycles-m.now)
	k = minI64(k, limit-m.now)
	if k <= 0 {
		return nil
	}
	done := int64(0)
	for j := int64(0); j < k; j++ {
		m.now++
		m.portsLeft = m.cfg.MemPorts
		m.stepSCUs()
		done++
		if m.err != nil {
			break
		}
	}
	for u := unitIFU; u <= unitFEU; u++ {
		m.unitCounts[u].Counts[m.cycleCause[u]] += done
	}
	m.stats.LoadStalls += dLoad * done
	m.stats.BranchStalls += dBranch * done
	m.stats.IFUStallFull += dIFU * done
	return m.err
}

// scuHorizon proves how many further cycles the machine outside the
// SCUs stays exactly in its observed state: the store matcher and the
// memory server remain no-ops, no SCU finishes its stream, and the IFU
// and both execution units keep stalling for the same cause.  Returns
// 0 when no such window can be established — the engine then simply
// runs cycle by cycle.
func (m *Machine) scuHorizon() int64 {
	// Unserved scalar loads or queued writes could be served mid-window
	// (the memory server would make progress); streams alone never
	// create either.
	if m.unserved > 0 || m.writeQueue.n > 0 {
		return 0
	}
	k := unboundedCycles
	// Stream-side bounds: no SCU may complete inside the window (a
	// completing stream frees an SCU, unblocks the store matcher and
	// removes a feeder/drainer), and at most one stream may touch each
	// FIFO (the per-unit bounds below assume one element per FIFO per
	// cycle).
	var feeders, drainers [2][2]int
	for _, s := range m.scus {
		if !s.active || s.remaining == 0 {
			continue
		}
		if s.input {
			feeders[s.class][s.fifoN]++
		} else {
			drainers[s.class][s.fifoN]++
		}
		if s.remaining > 0 {
			k = minI64(k, s.remaining-1)
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			if feeders[c][n] > 1 || drainers[c][n] > 1 {
				return 0
			}
		}
	}
	// Execution units: the observed head hazard must keep holding.  A
	// hazard with no entry here is either timeless while nothing issues
	// and nothing dispatches (pending accesses, full CC/input FIFOs, an
	// issuing stream) or disproves the window.
	for c := 0; c < 2; c++ {
		q := &m.queues[c]
		if q.n == 0 {
			continue // idle unit: nothing dispatches, stays idle
		}
		d := q.at(0)
		h := m.issueHazard(d)
		switch h.kind {
		case hzPendingWriter, hzDestPending, hzCCFull, hzLoadFull, hzLoadStream:
			// Static while no unit issues and the IFU is stalled.
		case hzResultWait:
			// Clears when readyAt reaches now (now+1 for outer
			// operands); stop one cycle earlier than the tightest case.
			k = minI64(k, int64(h.a)-2-m.now)
		case hzFIFOEmpty:
			// With a feeder the missing entries arrive at most one per
			// cycle and each rides out MemLatency before turning ready;
			// the stall (morphing into in-flight, same cause and same
			// LoadStalls accounting) outlives the window below.
			if m.inputStreamIssuing(h.reg.Class, h.reg.N) {
				k = minI64(k, int64(h.b-h.a)+int64(m.cfg.MemLatency)-1)
			}
			// No feeder: the FIFO cannot gain entries; static.
		case hzFIFOInFlight:
			// Holds until the youngest of the entries the head consumes
			// turns ready.
			need := d.dec.reads[h.reg.Class][h.reg.N]
			in := &m.inFIFO[h.reg.Class][h.reg.N]
			var maxReady int64
			for e := 0; e < need; e++ {
				maxReady = maxI64(maxReady, in.at(e).ready)
			}
			k = minI64(k, maxReady-1-m.now)
		case hzOutFull:
			// A draining output stream frees one slot per cycle at
			// most; without one the FIFO cannot drain at all.
			out := &m.outFIFO[h.reg.Class][h.reg.N]
			if drainers[h.reg.Class][h.reg.N] > 0 {
				k = minI64(k, int64(out.n)-int64(m.cfg.FIFODepth))
			}
		default:
			// hzNone: the unit would issue next cycle — no window.
			return 0
		}
	}
	// The IFU: bound by the observed stall cause.
	switch m.cycleCause[unitIFU] {
	case telemetry.CauseIdle:
		if !m.halted {
			return 0
		}
	case telemetry.CauseQueueFull:
		// Unit queues cannot drain while the units stall: static.
	case telemetry.CauseCCWait:
		i := m.img.Code[m.pc]
		cq := &m.ccFIFO[i.CCClass]
		if cq.n > 0 {
			k = minI64(k, cq.at(0).ready-1-m.now)
		}
		// Empty CC FIFO: no compare can execute; static.
	case telemetry.CauseResultLatency:
		switch m.img.Code[m.pc].Kind {
		case rtl.KCall:
			// Waiting on a pending LR access: static.
		case rtl.KRet:
			if len(m.pend[rtl.Int][rtl.LR]) == 0 {
				k = minI64(k, m.readyAt[rtl.Int][rtl.LR]-1-m.now)
			}
		case rtl.KPut:
			k = minI64(k, m.quietBound(m.dec[m.pc].srcRegs))
		default:
			return 0
		}
	case telemetry.CauseStreamBusy:
		dec := &m.dec[m.pc]
		k = minI64(k, m.quietBound(dec.baseRegs))
		k = minI64(k, m.quietBound(dec.countRegs))
		k = minI64(k, m.quietBound(dec.strideRegs))
	default:
		// Issued or Fetch would have been progress; anything else is
		// unexpected — no window.
		return 0
	}
	return k
}

// quietBound returns through how many further cycles regsQuietList over
// these registers is guaranteed to keep returning its observed value's
// blocking answer — i.e. a window in which no listed register *becomes*
// quiet.  Registers already quiet contribute no bound (some other
// register or condition is the blocker); statically un-quiet registers
// (pending accesses, an empty FIFO with no feeder) contribute no bound
// either.
func (m *Machine) quietBound(regs []rtl.Reg) int64 {
	b := unboundedCycles
	for _, r := range regs {
		if r.IsFIFO() {
			q := &m.inFIFO[r.Class][r.N]
			if q.n == 0 {
				if m.inputStreamIssuing(r.Class, r.N) {
					// The first fed entry can arrive next cycle and
					// turns ready MemLatency later.
					b = minI64(b, int64(m.cfg.MemLatency))
				}
				continue
			}
			if e := q.at(0); e.served && e.ready > m.now {
				b = minI64(b, e.ready-1-m.now)
			}
			continue
		}
		if len(m.pend[r.Class][r.N]) > 0 {
			continue // in-flight access: stays un-quiet while units stall
		}
		if t := m.readyAt[r.Class][r.N]; t > m.now {
			b = minI64(b, t-1-m.now)
		}
	}
	return b
}
