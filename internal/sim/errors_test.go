package sim

import (
	"errors"
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// runErr assembles and executes a program expected to fail, returning
// the error.
func runErr(t *testing.T, cfg Config, src string) error {
	t.Helper()
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := New(img, cfg)
	_, err = m.Run()
	if err == nil {
		t.Fatalf("run unexpectedly succeeded:\n%s", src)
	}
	return err
}

// The IEU reads input FIFO r0 that nothing ever fills: the head of the
// integer queue blocks forever and the watchdog must identify exactly
// that — the blocked unit, the instruction, and the FIFO it waits on.
const starvedFIFOProgram = `
.entry main
.func main
r2 := r0
halt
.end
`

func TestDeadlockErrorForensics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogSlack = 100
	err := runErr(t, cfg, starvedFIFOProgram)

	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T (%v), want *DeadlockError", err, err)
	}
	s := dl.Snapshot
	if s.Cycle <= 0 {
		t.Errorf("snapshot cycle = %d, want > 0", s.Cycle)
	}
	if s.Func != "main" {
		t.Errorf("snapshot function = %q, want main", s.Func)
	}
	ieu := s.Units[rtl.Int]
	if ieu.Unit != "IEU" || ieu.QueueLen != 1 {
		t.Errorf("IEU state = %+v, want queue of 1", ieu)
	}
	if !strings.Contains(ieu.HeadInstr, "r2 := r0") {
		t.Errorf("blocked head = %q, want the FIFO read", ieu.HeadInstr)
	}
	if !strings.Contains(ieu.BlockedOn, "input FIFO r0") {
		t.Errorf("BlockedOn = %q, want it to name input FIFO r0", ieu.BlockedOn)
	}
	if ieu.InFIFO[0] != 0 {
		t.Errorf("input FIFO r0 occupancy = %d, want 0 (starved)", ieu.InFIFO[0])
	}
	// The rendered error must carry the same forensics end to end.
	for _, want := range []string{"deadlock", "IEU", "input FIFO r0", "r2 := r0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error text missing %q:\n%s", want, err)
		}
	}
}

func TestWatchdogSlackConfigurable(t *testing.T) {
	short := DefaultConfig()
	short.WatchdogSlack = 50
	long := DefaultConfig()
	long.WatchdogSlack = 2000

	var dlShort, dlLong *DeadlockError
	if !errors.As(runErr(t, short, starvedFIFOProgram), &dlShort) {
		t.Fatal("short-slack run did not return *DeadlockError")
	}
	if !errors.As(runErr(t, long, starvedFIFOProgram), &dlLong) {
		t.Fatal("long-slack run did not return *DeadlockError")
	}
	if dlShort.Snapshot.Cycle >= dlLong.Snapshot.Cycle {
		t.Errorf("watchdog ignores WatchdogSlack: fired at cycle %d (slack 50) vs %d (slack 2000)",
			dlShort.Snapshot.Cycle, dlLong.Snapshot.Cycle)
	}
}

func TestTrapErrorCarriesSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	err := runErr(t, cfg, `
.entry main
.func main
r3 := 7
r4 := 0
r2 := (r3 / r4)
halt
.end
`)
	var tr *TrapError
	if !errors.As(err, &tr) {
		t.Fatalf("error is %T (%v), want *TrapError", err, err)
	}
	if !strings.Contains(tr.Reason, "division") {
		t.Errorf("trap reason = %q, want division failure", tr.Reason)
	}
	if tr.Snapshot.Func != "main" {
		t.Errorf("snapshot function = %q, want main", tr.Snapshot.Func)
	}
}

func TestMaxCyclesTrap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 500
	// A live loop: the machine keeps making progress, so only the cycle
	// bound (not the deadlock watchdog) can stop it.
	err := runErr(t, cfg, `
.entry main
.func main
r3 := 0
L1:
r3 := (r3 + 1)
jump L1
.end
`)
	var tr *TrapError
	if !errors.As(err, &tr) {
		t.Fatalf("error is %T (%v), want *TrapError", err, err)
	}
	if !strings.Contains(tr.Reason, "exceeded") {
		t.Errorf("trap reason = %q, want cycle-bound exhaustion", tr.Reason)
	}
	if dl := new(DeadlockError); errors.As(err, &dl) {
		t.Error("live loop misclassified as deadlock")
	}
}
