package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// Telemetry unit indices: the IFU, the two execution units, then one
// slot per stream control unit.  Every unit is charged exactly one
// telemetry.Cause per simulated cycle.
const (
	unitIFU = iota
	unitIEU
	unitFEU
	unitSCU0
)

// pendAccess records an in-flight (dispatched, not yet executed)
// register access, used for cross-unit hazard checks.
type pendAccess struct {
	seq   int64
	write bool
}

// dispatched is an instruction sitting in an execution unit's queue.
type dispatched struct {
	idx int
	i   *rtl.Instr
	seq int64
}

// fifoEntry is one datum in (or on its way to) an input FIFO.
type fifoEntry struct {
	val    uint64
	ready  int64
	served bool
	addr   int64
	size   int
	seq    int64 // memory program order; 0 for stream prefetches
}

// ccEntry is one condition code.
type ccEntry struct {
	val   bool
	ready int64
}

// storeReq is a store whose address is known but whose datum has not
// yet been matched with an output-FIFO entry.
type storeReq struct {
	addr int64
	size int
	seq  int64
}

// writeReq is a fully formed memory write awaiting a memory port.
type writeReq struct {
	addr int64
	size int
	val  uint64
	seq  int64
}

// scu is one stream control unit.
type scu struct {
	active    bool
	input     bool
	class     rtl.Class
	fifoN     int
	base      int64
	stride    int64
	size      int
	remaining int64
}

// Machine is a WM processor instance.
type Machine struct {
	cfg Config
	img *Image
	mem []byte

	now     int64
	pc      int
	halted  bool
	ifuWait int // extra fetch cycles owed for multi-word instructions

	regs    [2][rtl.NumArchRegs]uint64
	readyAt [2][rtl.NumArchRegs]int64
	pend    map[rtl.Reg][]pendAccess
	seq     int64

	queues  [2][]*dispatched
	inFIFO  [2][2][]*fifoEntry
	outFIFO [2][2][]uint64
	ccFIFO  [2][]ccEntry

	// streamIter tracks the per-FIFO iteration counter that the
	// jump-on-stream-not-exhausted instruction consumes; -1 denotes an
	// infinite stream.
	streamIter [2][2]int64

	scus []*scu

	unmatchedStores [2][2][]storeReq
	writeQueue      []writeReq
	portsLeft       int
	memSeq          int64 // orders scalar memory operations (IEU program order)

	lastProgress int64
	lastRetired  string // last instruction retired by a unit
	lastUnit     string // the unit that retired it
	stats        Stats
	err          error

	// unitCounts is the per-unit cycle attribution (always on: the
	// counters are flat array increments, allocated once here).
	unitCounts []telemetry.Unit
	// rec streams events into cfg.TraceSink; nil when tracing is off,
	// so the hot path pays one nil check.
	rec *recorder
	// retired counts issue events per code index for the source-level
	// profiler; nil unless cfg.Profile.
	retired []int64
}

// New builds a machine for the linked image.  When the image's global
// data would collide with the configured stack, the stack is relocated
// above the data and memory grows to fit.
func New(img *Image, cfg Config) *Machine {
	if img.DataEnd+65536 > cfg.StackTop {
		cfg.StackTop = ((img.DataEnd + 65536 + 4095) &^ 4095) + 1<<20
	}
	if int64(cfg.MemSize) < cfg.StackTop+4096 {
		cfg.MemSize = int(cfg.StackTop + 4096)
	}
	m := &Machine{cfg: cfg, img: img, pend: map[rtl.Reg][]pendAccess{}}
	m.mem = make([]byte, cfg.MemSize)
	for _, c := range img.Init {
		copy(m.mem[c.addr:], c.data)
	}
	m.regs[rtl.Int][rtl.SP] = uint64(cfg.StackTop)
	m.pc = img.Entry
	m.scus = make([]*scu, cfg.NumSCU)
	for n := range m.scus {
		m.scus[n] = &scu{}
	}
	m.unitCounts = make([]telemetry.Unit, unitSCU0+cfg.NumSCU)
	m.unitCounts[unitIFU].Name = "IFU"
	m.unitCounts[unitIEU].Name = "IEU"
	m.unitCounts[unitFEU].Name = "FEU"
	for n := 0; n < cfg.NumSCU; n++ {
		m.unitCounts[unitSCU0+n].Name = fmt.Sprintf("SCU%d", n)
	}
	if cfg.TraceSink != nil {
		m.rec = newRecorder(cfg.TraceSink, m.unitCounts)
	}
	if cfg.Profile {
		m.retired = make([]int64, len(img.Code))
	}
	return m
}

// account charges one cycle of unit u to the cause.  d carries the
// issuing instruction for execution units (nil elsewhere); the recorder
// names the trace span after it.
func (m *Machine) account(u int, c telemetry.Cause, d *dispatched) {
	m.unitCounts[u].Add(c)
	if m.rec != nil {
		var name string
		if d != nil {
			name = d.i.String()
		}
		m.rec.record(u, c, name, m.now)
	}
}

// profTick credits one retirement to the instruction at code index idx
// for the source-line profiler.
func (m *Machine) profTick(idx int) {
	if m.retired != nil && idx >= 0 && idx < len(m.retired) {
		m.retired[idx]++
	}
}

// Retired returns the per-instruction retirement counts collected when
// Config.Profile is set (nil otherwise).  Index = code address; combine
// with Image.Line for source-level attribution.
func (m *Machine) Retired() []int64 { return m.retired }

// Run simulates to completion and returns the statistics.  A machine
// fault returns a *TrapError; a watchdog expiry (no forward progress
// for MemLatency+WatchdogSlack cycles) returns a *DeadlockError.  Both
// carry a Snapshot of the stuck machine.
func (m *Machine) Run() (Stats, error) {
	st, err := m.run()
	// Even a failed run flushes the trace and reports attribution: the
	// timeline up to a deadlock is exactly the forensic record wanted.
	if m.rec != nil {
		m.rec.flush(m.now + 1)
	}
	st.Units = append([]telemetry.Unit(nil), m.unitCounts...)
	return st, err
}

func (m *Machine) run() (Stats, error) {
	slack := int64(m.cfg.WatchdogSlack)
	if slack <= 0 {
		slack = int64(DefaultConfig().WatchdogSlack)
	}
	for !m.done() {
		m.now++
		if m.now > m.cfg.MaxCycles {
			return m.stats, &TrapError{
				Reason:   fmt.Sprintf("exceeded %d cycles", m.cfg.MaxCycles),
				Snapshot: m.snapshot(),
			}
		}
		m.portsLeft = m.cfg.MemPorts
		m.matchStores()
		m.stepSCUs()
		m.serveMemory()
		m.stepUnit(rtl.Int)
		m.stepUnit(rtl.Float)
		m.stepIFU()
		if m.rec != nil {
			m.sampleCounters()
		}
		if m.err != nil {
			return m.stats, m.err
		}
		if m.now-m.lastProgress > int64(m.cfg.MemLatency)+slack {
			return m.stats, &DeadlockError{Snapshot: m.snapshot()}
		}
	}
	m.stats.Cycles = m.now
	return m.stats, nil
}

// sampleCounters feeds the occupancy gauges (FIFOs, CC queues, unit
// queues, memory write queue) to the trace recorder once per cycle.
func (m *Machine) sampleCounters() {
	k := 0
	sample := func(v int) {
		m.rec.counter(k, int64(v), m.now)
		k++
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			sample(len(m.inFIFO[c][n]))
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			sample(len(m.outFIFO[c][n]))
		}
	}
	sample(len(m.ccFIFO[0]))
	sample(len(m.ccFIFO[1]))
	sample(len(m.queues[0]))
	sample(len(m.queues[1]))
	sample(len(m.writeQueue))
}

// Mem returns the memory image (for tests to inspect results).
func (m *Machine) Mem() []byte { return m.mem }

// GlobalAddr returns the address of a global, or -1.
func (m *Machine) GlobalAddr(name string) int64 {
	if a, ok := m.img.Globals[name]; ok {
		return a
	}
	return -1
}

// Reg returns the raw bits of a register (for tests).
func (m *Machine) Reg(r rtl.Reg) uint64 { return m.regs[r.Class][r.N] }

func (m *Machine) done() bool {
	if !m.halted {
		return false
	}
	if len(m.queues[0]) > 0 || len(m.queues[1]) > 0 || len(m.writeQueue) > 0 {
		return false
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			if len(m.unmatchedStores[c][n]) > 0 {
				return false
			}
		}
	}
	for _, s := range m.scus {
		if s.active && (!s.input || s.remaining > 0) {
			// An unconsumed input stream may be abandoned; an output
			// stream must finish its writes.
			if !s.input {
				return false
			}
		}
	}
	return true
}

func (m *Machine) progress() { m.lastProgress = m.now }

// fail records a machine fault as a *TrapError (first fault wins).
func (m *Machine) fail(format string, args ...interface{}) {
	if m.err == nil {
		m.err = &TrapError{Reason: fmt.Sprintf(format, args...), Snapshot: m.snapshot()}
	}
}

// --- store matching and memory service ----------------------------------

func (m *Machine) matchStores() {
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			// Output FIFOs feeding an active output stream belong to the
			// SCU, not to the store matcher.
			if m.outputStreamActive(rtl.Class(c), n) {
				continue
			}
			for len(m.unmatchedStores[c][n]) > 0 && len(m.outFIFO[c][n]) > 0 {
				st := m.unmatchedStores[c][n][0]
				m.unmatchedStores[c][n] = m.unmatchedStores[c][n][1:]
				val := m.outFIFO[c][n][0]
				m.outFIFO[c][n] = m.outFIFO[c][n][1:]
				m.writeQueue = append(m.writeQueue, writeReq{st.addr, st.size, val, st.seq})
				m.progress()
			}
		}
	}
}

func (m *Machine) outputStreamActive(c rtl.Class, n int) bool {
	for _, s := range m.scus {
		if s.active && !s.input && s.class == c && s.fifoN == n {
			return true
		}
	}
	return false
}

func (m *Machine) stepSCUs() {
	for k, s := range m.scus {
		u := unitSCU0 + k
		if !s.active || s.remaining == 0 {
			m.account(u, telemetry.CauseIdle, nil)
			continue
		}
		if m.portsLeft == 0 {
			m.account(u, telemetry.CauseMemPort, nil)
			continue
		}
		if s.input {
			q := m.inFIFO[s.class][s.fifoN]
			if len(q) >= m.cfg.FIFODepth {
				m.account(u, telemetry.CauseFIFOFull, nil)
				continue
			}
			// Stream reads bypass the store-conflict interlock: this is
			// precisely the hazard that forbids streaming loops with
			// unresolved memory recurrences (paper step 2a).  An
			// infinite stream may also prefetch past mapped memory
			// before the loop exits and stops it; such reads deliver
			// zero rather than faulting (the hardware would fault
			// lazily, on consumption).
			var val uint64
			if s.base >= 0 && s.base+int64(s.size) <= int64(len(m.mem)) {
				v, ok := m.readMem(s.base, s.size, s.class)
				if !ok {
					return
				}
				val = v
			}
			m.inFIFO[s.class][s.fifoN] = append(q, &fifoEntry{
				val: val, ready: m.now + int64(m.cfg.MemLatency), served: true,
				addr: s.base, size: s.size,
			})
			m.stats.MemReads++
		} else {
			q := m.outFIFO[s.class][s.fifoN]
			if len(q) == 0 {
				m.account(u, telemetry.CauseFIFOEmpty, nil)
				continue
			}
			val := q[0]
			m.outFIFO[s.class][s.fifoN] = q[1:]
			if !m.writeMem(s.base, s.size, val) {
				return
			}
			m.stats.MemWrites++
		}
		m.account(u, telemetry.CauseIssued, nil)
		m.portsLeft--
		s.base += s.stride
		if s.remaining > 0 { // negative count = infinite stream
			s.remaining--
			if s.remaining == 0 {
				s.active = false
			}
		}
		m.stats.StreamElems++
		m.progress()
	}
}

func (m *Machine) serveMemory() {
	// Writes drain first (they unblock conflicting loads), but a write
	// must not overtake an older unserved load to the same address.
	for m.portsLeft > 0 && len(m.writeQueue) > 0 {
		w := m.writeQueue[0]
		if m.loadConflict(w) {
			break // keep write order; retry next cycle
		}
		m.writeQueue = m.writeQueue[1:]
		if !m.writeMem(w.addr, w.size, w.val) {
			return
		}
		m.portsLeft--
		m.stats.MemWrites++
		m.progress()
	}
	// Scalar loads, in per-FIFO order, with store-conflict interlock
	// against *older* stores only.
	for c := 0; c < 2 && m.portsLeft > 0; c++ {
		for n := 0; n < 2 && m.portsLeft > 0; n++ {
			for _, e := range m.inFIFO[c][n] {
				if e.served {
					continue
				}
				if m.portsLeft == 0 {
					break
				}
				if m.storeConflict(e.addr, e.size, e.seq) {
					break // preserve per-FIFO order
				}
				if m.outputStreamConflict(e.addr, e.size) {
					break // an active output stream covers this range
				}
				val, ok := m.readMem(e.addr, e.size, rtl.Class(c))
				if !ok {
					return
				}
				e.val = val
				e.served = true
				e.ready = m.now + int64(m.cfg.MemLatency)
				m.portsLeft--
				m.stats.MemReads++
				m.progress()
			}
		}
	}
}

// storeConflict reports whether [addr, addr+size) overlaps any store
// older than seq that has been issued but not yet applied to memory.
// seq < 0 checks against all pending stores.
func (m *Machine) storeConflict(addr int64, size int, seq int64) bool {
	overlap := func(a int64, asz int) bool {
		return addr < a+int64(asz) && a < addr+int64(size)
	}
	older := func(s int64) bool { return seq < 0 || s < seq }
	for _, w := range m.writeQueue {
		if older(w.seq) && overlap(w.addr, w.size) {
			return true
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			for _, st := range m.unmatchedStores[c][n] {
				if older(st.seq) && overlap(st.addr, st.size) {
					return true
				}
			}
		}
	}
	return false
}

// outputStreamConflict reports whether an active output stream's
// remaining address range overlaps [addr, addr+size): a scalar load
// must wait for the stream to pass the address (its data is still in
// flight through the output FIFO).
func (m *Machine) outputStreamConflict(addr int64, size int) bool {
	for _, s := range m.scus {
		if !s.active || s.input || s.remaining == 0 {
			continue
		}
		span := s.remaining
		if span < 0 {
			span = 1 << 30 // infinite stream: treat as unbounded
		}
		lo, hi := s.base, s.base+s.stride*span
		if s.stride < 0 {
			lo, hi = hi, lo
		}
		hi += int64(s.size)
		if addr < hi && lo < addr+int64(size) {
			return true
		}
	}
	return false
}

// loadConflict reports whether the write would overtake an older
// unserved load to an overlapping address.
func (m *Machine) loadConflict(w writeReq) bool {
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			for _, e := range m.inFIFO[c][n] {
				if e.served || e.seq == 0 || e.seq >= w.seq {
					continue
				}
				if w.addr < e.addr+int64(e.size) && e.addr < w.addr+int64(w.size) {
					return true
				}
			}
		}
	}
	return false
}

func (m *Machine) readMem(addr int64, size int, c rtl.Class) (uint64, bool) {
	if addr < 0 || addr+int64(size) > int64(len(m.mem)) {
		m.fail("memory read out of range: addr=%d size=%d", addr, size)
		return 0, false
	}
	var raw uint64
	for k := size - 1; k >= 0; k-- {
		raw = raw<<8 | uint64(m.mem[addr+int64(k)])
	}
	if c == rtl.Float {
		if size == 8 {
			return raw, true
		}
		// 32-bit float loads are unused by the compiler but defined.
		f := math.Float32frombits(uint32(raw))
		return math.Float64bits(float64(f)), true
	}
	// Sign extend integer loads.
	switch size {
	case 1:
		return uint64(int64(int8(raw))), true
	case 4:
		return uint64(int64(int32(raw))), true
	default:
		return raw, true
	}
}

func (m *Machine) writeMem(addr int64, size int, val uint64) bool {
	if addr < 0 || addr+int64(size) > int64(len(m.mem)) {
		m.fail("memory write out of range: addr=%d size=%d", addr, size)
		return false
	}
	if size == 8 {
		for k := 0; k < 8; k++ {
			m.mem[addr+int64(k)] = byte(val >> (8 * k))
		}
		return true
	}
	// Integer truncation (and 32-bit float narrowing, unused).
	for k := 0; k < size; k++ {
		m.mem[addr+int64(k)] = byte(val >> (8 * k))
	}
	return true
}
