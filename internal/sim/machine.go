package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// Telemetry unit indices: the IFU, the two execution units, then one
// slot per stream control unit.  Every unit is charged exactly one
// telemetry.Cause per simulated cycle.
const (
	unitIFU = iota
	unitIEU
	unitFEU
	unitSCU0
)

// pendAccess records an in-flight (dispatched, not yet executed)
// register access, used for cross-unit hazard checks.
type pendAccess struct {
	seq   int64
	write bool
}

// dispatched is an instruction sitting in an execution unit's queue.
type dispatched struct {
	idx int
	i   *rtl.Instr
	dec *decoded
	seq int64
	// fn caches the translated issue function for idx.  Set when the
	// translated IFU dispatches; nil when another engine dispatched or
	// after a checkpoint restore — runTranslated's prologue refills it
	// (the interpreting engines ignore it).
	fn issueFn
}

// fifoEntry is one datum in (or on its way to) an input FIFO.
type fifoEntry struct {
	val    uint64
	ready  int64
	served bool
	addr   int64
	size   int
	seq    int64 // memory program order; 0 for stream prefetches
}

// ccEntry is one condition code.
type ccEntry struct {
	val   bool
	ready int64
}

// storeReq is a store whose address is known but whose datum has not
// yet been matched with an output-FIFO entry.
type storeReq struct {
	addr int64
	size int
	seq  int64
}

// writeReq is a fully formed memory write awaiting a memory port.
type writeReq struct {
	addr int64
	size int
	val  uint64
	seq  int64
}

// scu is one stream control unit.
type scu struct {
	active    bool
	input     bool
	class     rtl.Class
	fifoN     int
	base      int64
	stride    int64
	size      int
	remaining int64
}

// Machine is a WM processor instance.
type Machine struct {
	cfg Config
	img *Image
	dec []decoded // per-instruction decode cache, index-matched with img.Code
	mem []byte

	now     int64
	pc      int
	halted  bool
	ifuWait int // extra fetch cycles owed for multi-word instructions

	regs    [2][rtl.NumArchRegs]uint64
	readyAt [2][rtl.NumArchRegs]int64
	pend    [2][rtl.NumArchRegs][]pendAccess
	seq     int64

	queues  [2]ring[dispatched]
	inFIFO  [2][2]ring[fifoEntry]
	outFIFO [2][2]ring[uint64]
	ccFIFO  [2]ring[ccEntry]

	// streamIter tracks the per-FIFO iteration counter that the
	// jump-on-stream-not-exhausted instruction consumes; -1 denotes an
	// infinite stream.
	streamIter [2][2]int64

	scus []*scu
	// activeSCUs counts SCUs with active=true so per-cycle checks that
	// scan for streams can skip the scan entirely in scalar code.
	activeSCUs int
	// outStreams counts active output streams per (class, fifo) so the
	// per-cycle store matcher avoids rescanning every SCU.
	outStreams [2][2]int

	unmatchedStores [2][2]ring[storeReq]
	writeQueue      ring[writeReq]
	portsLeft       int
	memSeq          int64 // orders scalar memory operations (IEU program order)
	unserved        int   // scalar load requests awaiting memory service

	lastProgress int64
	lastRetired  int    // code index of the last instruction retired by a unit (-1 = none)
	lastUnit     string // the unit that retired it
	stats        Stats
	err          error

	// Terminal run state: finished latches once the run completes,
	// faults, or is canceled inside an engine; termErr is the error the
	// terminal RunSlice returned, replayed by later calls.  flushed
	// guards the one-shot trace flush.
	finished bool
	termErr  error
	flushed  bool

	// Per-cycle progress classification for the fast engine: progress()
	// sets otherProgress, progressSCU (stream transfers only) sets
	// scuProgress.  A cycle with neither is a candidate for idle
	// skipping; a cycle with only SCU progress for transfer batching.
	scuProgress   bool
	otherProgress bool
	// cycleCause records the cause each unit was charged this cycle, so
	// a stalled stretch can be bulk-charged to the same buckets.
	cycleCause []telemetry.Cause

	// evalStack is the scratch operand stack for evalProg, reused
	// across evaluations so the hot path never allocates.
	evalStack []uint64

	// unitCounts is the per-unit cycle attribution (always on: the
	// counters are flat array increments, allocated once here).
	unitCounts []telemetry.Unit
	// rec streams events into cfg.TraceSink; nil when tracing is off,
	// so the hot path pays one nil check.
	rec *recorder
	// counterScratch is the reusable gauge buffer for sampleCounters.
	counterScratch []int64
	// retired counts issue events per code index for the source-level
	// profiler; nil unless cfg.Profile.
	retired []int64

	// nextEv caches a conservative lower bound on the earliest stored
	// ready time strictly after now: 0 = unknown (scan), unboundedCycles
	// = known none.  Every write of a future ready time goes through
	// noteEvent, so a cached value > now can never exceed the true next
	// event — stale (already consumed) entries only make it smaller,
	// which is safe (a short idle skip just re-observes the same cycle).
	nextEv int64
	// readyMask over-approximates, per class, the registers whose
	// readyAt may lie in the future; scanNextEvent visits only set bits
	// and clears the stale ones.  Bits are set where readyAt is written
	// and may go stale as time passes — never the reverse.
	readyMask [2]uint32

	// tr is the lazily attached translation (EngineTranslated /
	// EngineAuto); shared across machines via the process-wide cache.
	tr *translation

	// The translated engine defers per-cycle Idle charges — of fully
	// idle SCUs, and of each execution unit with an empty queue — into
	// counters, flushed into unitCounts wherever the counts become
	// observable (Stats, SaveState, a cycle where the unit works).  The
	// cause flags record that cycleCause already says Idle for the
	// covered slots, so the fast paths touch neither array.
	scuIdleDeferred  int64
	unitIdleDeferred [2]int64
	scuCauseIdle     bool
	unitCauseIdle    [2]bool

	// pooled marks a machine handed out by Acquire; Release refuses
	// machines built directly by New.
	pooled bool
}

// normalizeConfig resolves the configuration New actually builds with:
// when the image's global data would collide with the configured stack,
// the stack is relocated above the data and memory grows to fit.  The
// machine pool keys on the normalized form so two requests for the same
// image land in the same pool regardless of pre-adjustment values.
func normalizeConfig(img *Image, cfg Config) Config {
	if img.DataEnd+65536 > cfg.StackTop {
		cfg.StackTop = ((img.DataEnd + 65536 + 4095) &^ 4095) + 1<<20
	}
	if int64(cfg.MemSize) < cfg.StackTop+4096 {
		cfg.MemSize = int(cfg.StackTop + 4096)
	}
	return cfg
}

// New builds a machine for the linked image.  When the image's global
// data would collide with the configured stack, the stack is relocated
// above the data and memory grows to fit.
func New(img *Image, cfg Config) *Machine {
	cfg = normalizeConfig(img, cfg)
	m := &Machine{cfg: cfg, img: img, lastRetired: -1}
	// Runs headed for the translated engine (the default) attach their
	// translation here and share its decode cache — for a cached image,
	// machine construction skips decoding entirely.
	if cfg.TraceSink == nil && cfg.Engine != EngineFast && cfg.Engine != EngineReference {
		m.tr = translationFor(img, cfg)
		m.dec = m.tr.dec
	} else {
		m.dec = decodeImage(img, cfg)
	}
	m.mem = make([]byte, cfg.MemSize)
	for _, c := range img.Init {
		copy(m.mem[c.addr:], c.data)
	}
	m.regs[rtl.Int][rtl.SP] = uint64(cfg.StackTop)
	m.pc = img.Entry
	m.scus = make([]*scu, cfg.NumSCU)
	for n := range m.scus {
		m.scus[n] = &scu{}
	}
	for c := 0; c < 2; c++ {
		m.queues[c].reserve(cfg.QueueDepth)
		m.ccFIFO[c].reserve(cfg.CCDepth)
		for n := 0; n < 2; n++ {
			m.inFIFO[c][n].reserve(cfg.FIFODepth)
			m.outFIFO[c][n].reserve(cfg.FIFODepth)
		}
	}
	m.unitCounts = make([]telemetry.Unit, unitSCU0+cfg.NumSCU)
	m.unitCounts[unitIFU].Name = "IFU"
	m.unitCounts[unitIEU].Name = "IEU"
	m.unitCounts[unitFEU].Name = "FEU"
	for n := 0; n < cfg.NumSCU; n++ {
		m.unitCounts[unitSCU0+n].Name = fmt.Sprintf("SCU%d", n)
	}
	m.cycleCause = make([]telemetry.Cause, len(m.unitCounts))
	m.evalStack = make([]uint64, 0, 16)
	if cfg.TraceSink != nil {
		m.rec = newRecorder(cfg.TraceSink, m.unitCounts)
		m.counterScratch = make([]int64, numCounters)
	}
	if cfg.Profile {
		m.retired = make([]int64, len(img.Code))
	}
	return m
}

// account charges one cycle of unit u to the cause.  d carries the
// issuing instruction for execution units (nil elsewhere); the recorder
// names the trace span after it.
func (m *Machine) account(u int, c telemetry.Cause, d *dispatched) {
	m.unitCounts[u].Add(c)
	m.cycleCause[u] = c
	if m.rec != nil {
		var name string
		if d != nil {
			name = d.i.String()
		}
		m.rec.record(u, c, name, m.now)
	}
}

// profTick credits one retirement to the instruction at code index idx
// for the source-line profiler.
func (m *Machine) profTick(idx int) {
	if m.retired != nil && idx >= 0 && idx < len(m.retired) {
		m.retired[idx]++
	}
}

// Retired returns the per-instruction retirement counts collected when
// Config.Profile is set (nil otherwise).  Index = code address; combine
// with Image.Line for source-level attribution.
func (m *Machine) Retired() []int64 { return m.retired }

// Run simulates to completion and returns the statistics.  A machine
// fault returns a *TrapError; a watchdog expiry (no forward progress
// for MemLatency+WatchdogSlack cycles) returns a *DeadlockError.  Both
// carry a Snapshot of the stuck machine.
func (m *Machine) Run() (Stats, error) {
	_, err := m.RunSlice(unboundedCycles)
	return m.Stats(), err
}

// RunSlice advances the simulation by at most budget cycles and
// reports whether the program has run to completion.  A run chopped
// into arbitrary slices is bit-identical — statistics, output, memory
// image, telemetry attribution, and faults — to an uninterrupted run:
// the slice boundary only decides where the engine loop pauses, never
// what a cycle does.  Once the run is terminal (completed, faulted,
// deadlocked, or canceled via Config.Ctx) further calls return
// (true, the terminal error) without simulating.
func (m *Machine) RunSlice(budget int64) (bool, error) {
	if m.finished {
		return true, m.termErr
	}
	if budget <= 0 {
		return false, nil
	}
	limit := m.now + budget
	if limit < m.now { // overflow: treat as unbounded
		limit = unboundedCycles
	}
	var (
		done bool
		err  error
	)
	// The trace recorder observes every cycle, so it forces the
	// reference engine regardless of the requested engine.
	switch {
	case m.rec != nil || m.cfg.Engine == EngineReference:
		done, err = m.runRef(limit)
	case m.cfg.Engine == EngineFast:
		done, err = m.runFast(limit)
	default: // EngineAuto, EngineTranslated
		done, err = m.runTranslated(limit)
	}
	if done || err != nil {
		m.finished = true
		m.termErr = err
		// Even a failed run flushes the trace: the timeline up to a
		// deadlock is exactly the forensic record wanted.
		m.flushTrace()
	}
	return m.finished, err
}

// Stats returns the statistics accumulated so far, with the per-unit
// attribution copied out.  Stats.Cycles is set only once the program
// has run to completion (matching Run's historical contract: error
// paths leave it zero).
func (m *Machine) Stats() Stats {
	m.flushSCUIdle()
	st := m.stats
	st.Units = append([]telemetry.Unit(nil), m.unitCounts...)
	return st
}

// flushSCUIdle applies the translated engine's deferred Idle charges
// (no-op elsewhere).
func (m *Machine) flushSCUIdle() {
	if k := m.scuIdleDeferred; k != 0 {
		m.scuIdleDeferred = 0
		for u := unitSCU0; u < len(m.unitCounts); u++ {
			m.unitCounts[u].Counts[telemetry.CauseIdle] += k
		}
	}
	for c := 0; c < 2; c++ {
		if k := m.unitIdleDeferred[c]; k != 0 {
			m.unitIdleDeferred[c] = 0
			m.unitCounts[unitIEU+c].Counts[telemetry.CauseIdle] += k
		}
	}
}

// Progress returns the headline counters of the run so far without
// copying the per-unit attribution; Cycles is the live clock.  Cheap
// enough to call after every slice.
func (m *Machine) Progress() Stats {
	st := m.stats
	st.Cycles = m.now
	return st
}

// Finish flushes the trace recorder for a run abandoned between
// slices (wall-clock budget, external cancellation).  Runs that reach
// a terminal state inside RunSlice flush automatically; Finish is
// idempotent either way.
func (m *Machine) Finish() { m.flushTrace() }

func (m *Machine) flushTrace() {
	if m.rec != nil && !m.flushed {
		m.flushed = true
		m.rec.flush(m.now + 1)
	}
}

// cancelCheckInterval is how many simulated cycles the reference
// engine runs between polls of Config.Ctx.  A power of two so the
// check is a mask; small enough that a canceled request stops within
// microseconds of host time.
const cancelCheckInterval = 8192

// cancelDone returns the context's Done channel (nil when no context
// is attached, so the select below never fires).
func (m *Machine) cancelDone() <-chan struct{} {
	if m.cfg.Ctx == nil {
		return nil
	}
	return m.cfg.Ctx.Done()
}

// runRef is the reference engine: one full machine evaluation per
// simulated cycle, up to the absolute cycle limit.  It is the
// semantic definition the fast engine is differentially tested
// against.  Returns done=true only on clean completion; a false/nil
// return means the slice limit was reached with the run still live.
func (m *Machine) runRef(limit int64) (bool, error) {
	slack := m.watchdogSlack()
	rec := m.rec != nil
	done := m.cancelDone()
	for !m.done() {
		if m.now >= limit {
			return false, nil
		}
		m.now++
		if m.now > m.cfg.MaxCycles {
			return false, m.maxCyclesTrap()
		}
		if done != nil && m.now&(cancelCheckInterval-1) == 0 {
			select {
			case <-done:
				return false, m.cfg.Ctx.Err()
			default:
			}
		}
		m.step()
		if rec {
			m.sampleCounters()
		}
		if m.err != nil {
			return false, m.err
		}
		if m.now-m.lastProgress > int64(m.cfg.MemLatency)+slack {
			return false, &DeadlockError{Snapshot: m.snapshot()}
		}
	}
	m.stats.Cycles = m.now
	return true, nil
}

// step evaluates one machine cycle (everything but the cycle counter,
// the watchdog, and trace sampling — those belong to the engine loop).
func (m *Machine) step() {
	m.portsLeft = m.cfg.MemPorts
	m.matchStores()
	m.stepSCUs()
	m.serveMemory()
	m.stepUnit(rtl.Int)
	m.stepUnit(rtl.Float)
	m.stepIFU()
}

func (m *Machine) watchdogSlack() int64 {
	slack := int64(m.cfg.WatchdogSlack)
	if slack <= 0 {
		slack = int64(DefaultConfig().WatchdogSlack)
	}
	return slack
}

// maxCyclesTrap builds the runaway-simulation trap.  Kept out of the
// engine loops so their hot paths never touch fmt.
func (m *Machine) maxCyclesTrap() error {
	return &TrapError{
		Reason:   fmt.Sprintf("exceeded %d cycles", m.cfg.MaxCycles),
		Snapshot: m.snapshot(),
	}
}

// numCounters is the number of occupancy gauges sampleCounters feeds
// (must match counterNames in trace.go).
const numCounters = 13

// sampleCounters feeds the occupancy gauges (FIFOs, CC queues, unit
// queues, memory write queue) to the trace recorder once per cycle.
// The scratch buffer is preallocated; this path never allocates.
func (m *Machine) sampleCounters() {
	s := m.counterScratch
	k := 0
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			s[k] = int64(m.inFIFO[c][n].n)
			k++
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			s[k] = int64(m.outFIFO[c][n].n)
			k++
		}
	}
	s[k] = int64(m.ccFIFO[0].n)
	s[k+1] = int64(m.ccFIFO[1].n)
	s[k+2] = int64(m.queues[0].n)
	s[k+3] = int64(m.queues[1].n)
	s[k+4] = int64(m.writeQueue.n)
	for id, v := range s {
		m.rec.counter(id, v, m.now)
	}
}

// Mem returns the memory image (for tests to inspect results).
func (m *Machine) Mem() []byte { return m.mem }

// GlobalAddr returns the address of a global, or -1.
func (m *Machine) GlobalAddr(name string) int64 {
	if a, ok := m.img.Globals[name]; ok {
		return a
	}
	return -1
}

// Reg returns the raw bits of a register (for tests).
func (m *Machine) Reg(r rtl.Reg) uint64 { return m.regs[r.Class][r.N] }

func (m *Machine) done() bool {
	if !m.halted {
		return false
	}
	if m.queues[0].n > 0 || m.queues[1].n > 0 || m.writeQueue.n > 0 {
		return false
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			if m.unmatchedStores[c][n].n > 0 {
				return false
			}
		}
	}
	for _, s := range m.scus {
		if s.active && (!s.input || s.remaining > 0) {
			// An unconsumed input stream may be abandoned; an output
			// stream must finish its writes.
			if !s.input {
				return false
			}
		}
	}
	return true
}

func (m *Machine) progress() {
	m.lastProgress = m.now
	m.otherProgress = true
}

// progressSCU marks forward progress made by a stream transfer.  The
// fast engine batches cycles whose only progress is of this kind.
func (m *Machine) progressSCU() {
	m.lastProgress = m.now
	m.scuProgress = true
}

// fail records a machine fault as a *TrapError (first fault wins).
func (m *Machine) fail(format string, args ...interface{}) {
	if m.err == nil {
		m.err = &TrapError{Reason: fmt.Sprintf(format, args...), Snapshot: m.snapshot()}
	}
}

// --- store matching and memory service ----------------------------------

func (m *Machine) matchStores() {
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			// Output FIFOs feeding an active output stream belong to the
			// SCU, not to the store matcher.
			if m.outputStreamActive(rtl.Class(c), n) {
				continue
			}
			us := &m.unmatchedStores[c][n]
			of := &m.outFIFO[c][n]
			for us.n > 0 && of.n > 0 {
				st := us.pop()
				val := of.pop()
				m.writeQueue.push(writeReq{st.addr, st.size, val, st.seq})
				m.progress()
			}
		}
	}
}

func (m *Machine) outputStreamActive(c rtl.Class, n int) bool {
	return m.outStreams[c][n] > 0
}

// deactivate retires an SCU, keeping the output-stream census in sync.
// Every s.active=false in the machine goes through here.
func (m *Machine) deactivate(s *scu) {
	if s.active {
		m.activeSCUs--
		if !s.input {
			m.outStreams[s.class][s.fifoN]--
		}
	}
	s.active = false
}

func (m *Machine) stepSCUs() {
	for k, s := range m.scus {
		u := unitSCU0 + k
		if !s.active || s.remaining == 0 {
			m.account(u, telemetry.CauseIdle, nil)
			continue
		}
		if m.portsLeft == 0 {
			m.account(u, telemetry.CauseMemPort, nil)
			continue
		}
		if s.input {
			q := &m.inFIFO[s.class][s.fifoN]
			if q.n >= m.cfg.FIFODepth {
				m.account(u, telemetry.CauseFIFOFull, nil)
				continue
			}
			// Stream reads bypass the store-conflict interlock: this is
			// precisely the hazard that forbids streaming loops with
			// unresolved memory recurrences (paper step 2a).  An
			// infinite stream may also prefetch past mapped memory
			// before the loop exits and stops it; such reads deliver
			// zero rather than faulting (the hardware would fault
			// lazily, on consumption).
			var val uint64
			if s.base >= 0 && s.base+int64(s.size) <= int64(len(m.mem)) {
				v, ok := m.readMem(s.base, s.size, s.class)
				if !ok {
					return
				}
				val = v
			}
			ready := m.now + int64(m.cfg.MemLatency)
			q.push(fifoEntry{
				val: val, ready: ready, served: true,
				addr: s.base, size: s.size,
			})
			m.noteEvent(ready)
			m.stats.MemReads++
		} else {
			q := &m.outFIFO[s.class][s.fifoN]
			if q.n == 0 {
				m.account(u, telemetry.CauseFIFOEmpty, nil)
				continue
			}
			val := q.pop()
			if !m.writeMem(s.base, s.size, val) {
				return
			}
			m.stats.MemWrites++
		}
		m.account(u, telemetry.CauseIssued, nil)
		m.portsLeft--
		s.base += s.stride
		if s.remaining > 0 { // negative count = infinite stream
			s.remaining--
			if s.remaining == 0 {
				m.deactivate(s)
			}
		}
		m.stats.StreamElems++
		m.progressSCU()
	}
}

func (m *Machine) serveMemory() {
	// Writes drain first (they unblock conflicting loads), but a write
	// must not overtake an older unserved load to the same address.
	for m.portsLeft > 0 && m.writeQueue.n > 0 {
		w := m.writeQueue.at(0)
		if m.loadConflict(w) {
			break // keep write order; retry next cycle
		}
		ww := m.writeQueue.pop()
		if !m.writeMem(ww.addr, ww.size, ww.val) {
			return
		}
		m.portsLeft--
		m.stats.MemWrites++
		m.progress()
	}
	if m.unserved == 0 {
		return
	}
	// Scalar loads, in per-FIFO order, with store-conflict interlock
	// against *older* stores only.
	for c := 0; c < 2 && m.portsLeft > 0; c++ {
		for n := 0; n < 2 && m.portsLeft > 0; n++ {
			q := &m.inFIFO[c][n]
			for k := 0; k < q.n; k++ {
				e := q.at(k)
				if e.served {
					continue
				}
				if m.portsLeft == 0 {
					break
				}
				if m.storeConflict(e.addr, e.size, e.seq) {
					break // preserve per-FIFO order
				}
				if m.outputStreamConflict(e.addr, e.size) {
					break // an active output stream covers this range
				}
				val, ok := m.readMem(e.addr, e.size, rtl.Class(c))
				if !ok {
					return
				}
				e.val = val
				e.served = true
				e.ready = m.now + int64(m.cfg.MemLatency)
				m.noteEvent(e.ready)
				m.unserved--
				m.portsLeft--
				m.stats.MemReads++
				m.progress()
				if m.unserved == 0 {
					return // no unserved entries left anywhere
				}
			}
		}
	}
}

// storeConflict reports whether [addr, addr+size) overlaps any store
// older than seq that has been issued but not yet applied to memory.
// seq < 0 checks against all pending stores.
func (m *Machine) storeConflict(addr int64, size int, seq int64) bool {
	overlap := func(a int64, asz int) bool {
		return addr < a+int64(asz) && a < addr+int64(size)
	}
	older := func(s int64) bool { return seq < 0 || s < seq }
	for k := 0; k < m.writeQueue.n; k++ {
		w := m.writeQueue.at(k)
		if older(w.seq) && overlap(w.addr, w.size) {
			return true
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			us := &m.unmatchedStores[c][n]
			for k := 0; k < us.n; k++ {
				st := us.at(k)
				if older(st.seq) && overlap(st.addr, st.size) {
					return true
				}
			}
		}
	}
	return false
}

// outputStreamConflict reports whether an active output stream's
// remaining address range overlaps [addr, addr+size): a scalar load
// must wait for the stream to pass the address (its data is still in
// flight through the output FIFO).
func (m *Machine) outputStreamConflict(addr int64, size int) bool {
	if m.activeSCUs == 0 {
		return false
	}
	for _, s := range m.scus {
		if !s.active || s.input || s.remaining == 0 {
			continue
		}
		span := s.remaining
		if span < 0 {
			span = 1 << 30 // infinite stream: treat as unbounded
		}
		lo, hi := s.base, s.base+s.stride*span
		if s.stride < 0 {
			lo, hi = hi, lo
		}
		hi += int64(s.size)
		if addr < hi && lo < addr+int64(size) {
			return true
		}
	}
	return false
}

// loadConflict reports whether the write would overtake an older
// unserved load to an overlapping address.
func (m *Machine) loadConflict(w *writeReq) bool {
	if m.unserved == 0 {
		return false
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.inFIFO[c][n]
			for k := 0; k < q.n; k++ {
				e := q.at(k)
				if e.served || e.seq == 0 || e.seq >= w.seq {
					continue
				}
				if w.addr < e.addr+int64(e.size) && e.addr < w.addr+int64(w.size) {
					return true
				}
			}
		}
	}
	return false
}

func (m *Machine) readMem(addr int64, size int, c rtl.Class) (uint64, bool) {
	if addr < 0 || addr+int64(size) > int64(len(m.mem)) {
		m.fail("memory read out of range: addr=%d size=%d", addr, size)
		return 0, false
	}
	var raw uint64
	for k := size - 1; k >= 0; k-- {
		raw = raw<<8 | uint64(m.mem[addr+int64(k)])
	}
	if c == rtl.Float {
		if size == 8 {
			return raw, true
		}
		// 32-bit float loads are unused by the compiler but defined.
		f := math.Float32frombits(uint32(raw))
		return math.Float64bits(float64(f)), true
	}
	// Sign extend integer loads.
	switch size {
	case 1:
		return uint64(int64(int8(raw))), true
	case 4:
		return uint64(int64(int32(raw))), true
	default:
		return raw, true
	}
}

func (m *Machine) writeMem(addr int64, size int, val uint64) bool {
	if addr < 0 || addr+int64(size) > int64(len(m.mem)) {
		m.fail("memory write out of range: addr=%d size=%d", addr, size)
		return false
	}
	if size == 8 {
		for k := 0; k < 8; k++ {
			m.mem[addr+int64(k)] = byte(val >> (8 * k))
		}
		return true
	}
	// Integer truncation (and 32-bit float narrowing, unused).
	for k := 0; k < size; k++ {
		m.mem[addr+int64(k)] = byte(val >> (8 * k))
	}
	return true
}
