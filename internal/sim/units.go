package sim

import (
	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// operand is a register use together with its pipeline stage: outer
// operands (consumed by ALU2) forward one cycle earlier than inner
// operands (consumed by ALU1), per the dual-pipeline of Figure 2.
type operand struct {
	reg   rtl.Reg
	outer bool
}

// operandsOf classifies every register read by the instruction.
func operandsOf(i *rtl.Instr) []operand {
	var ops []operand
	add := func(e rtl.Expr, outer bool) {
		rtl.ExprRegs(e, func(r rtl.Reg) { ops = append(ops, operand{r, outer}) })
	}
	classify := func(e rtl.Expr) {
		switch x := e.(type) {
		case rtl.Bin:
			if l, ok := x.L.(rtl.Bin); ok {
				// (a op1 b) op2 c: a, b inner; c outer.
				add(l, false)
				add(x.R, true)
				return
			}
			if r, ok := x.R.(rtl.Bin); ok {
				add(x.L, true)
				add(r, false)
				return
			}
			// Single operation: routed through ALU2, operands outer.
			add(x.L, true)
			add(x.R, true)
		case rtl.Un:
			if _, ok := x.X.(rtl.RegX); ok {
				add(x.X, true)
			} else {
				add(x.X, false)
			}
		default:
			add(e, true)
		}
	}
	i.EachUseExpr(classify)
	return ops
}

// fifoReads counts the FIFO register reads of the instruction per
// (class, fifo number).
func fifoReads(i *rtl.Instr) [2][2]int {
	var counts [2][2]int
	i.EachUseExpr(func(e rtl.Expr) {
		rtl.ExprRegs(e, func(r rtl.Reg) {
			if r.IsFIFO() {
				counts[r.Class][r.N]++
			}
		})
	})
	return counts
}

func unitOf(i *rtl.Instr) rtl.Class {
	switch i.Kind {
	case rtl.KAssign:
		return i.Dst.Class
	case rtl.KLoad, rtl.KStore:
		// All loads and stores execute on the IEU (addresses are
		// integers); the datum travels through MemClass's FIFO.
		return rtl.Int
	}
	return rtl.Int
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (m *Machine) stepUnit(c rtl.Class) {
	u := unitIEU + int(c)
	q := &m.queues[c]
	if q.n == 0 {
		m.account(u, telemetry.CauseIdle, nil)
		return
	}
	d := q.at(0)
	if h := m.issueHazard(d); h.blocked() {
		cause := h.cause()
		if cause == telemetry.CauseFIFOEmpty {
			m.stats.LoadStalls++
		}
		m.account(u, cause, nil)
		return
	}
	// Copy out before executing: execute can push into this queue's
	// ring only via the IFU (it cannot), but at(0)'s pointer must not
	// outlive the pop in any case.
	dv := q.pop()
	m.removePend(&dv)
	m.account(u, telemetry.CauseIssued, &dv)
	m.execute(&dv, c)
	m.progress()
}

func (m *Machine) inputStreamIssuing(c rtl.Class, n int) bool {
	if m.activeSCUs == 0 {
		return false
	}
	for _, s := range m.scus {
		if s.active && s.input && s.class == c && s.fifoN == n && s.remaining != 0 {
			return true
		}
	}
	return false
}

func (m *Machine) pendingWriterBefore(r rtl.Reg, seq int64) bool {
	for _, p := range m.pend[r.Class][r.N] {
		if p.write && p.seq < seq {
			return true
		}
	}
	return false
}

func (m *Machine) pendingAccessBefore(r rtl.Reg, seq int64) bool {
	for _, p := range m.pend[r.Class][r.N] {
		if p.seq < seq {
			return true
		}
	}
	return false
}

func (m *Machine) addPend(d *dispatched) {
	dec := d.dec
	for _, op := range dec.ops {
		r := op.reg
		m.pend[r.Class][r.N] = append(m.pend[r.Class][r.N], pendAccess{d.seq, false})
	}
	if dec.hasDef {
		r := dec.def
		m.pend[r.Class][r.N] = append(m.pend[r.Class][r.N], pendAccess{d.seq, true})
	}
}

func (m *Machine) removePend(d *dispatched) {
	remove := func(r rtl.Reg) {
		list := m.pend[r.Class][r.N]
		out := list[:0]
		for _, p := range list {
			if p.seq != d.seq {
				out = append(out, p)
			}
		}
		m.pend[r.Class][r.N] = out
	}
	dec := d.dec
	for _, op := range dec.ops {
		remove(op.reg)
	}
	if dec.hasDef {
		remove(dec.def)
	}
}

// execute performs the instruction's effect at issue time.
func (m *Machine) execute(d *dispatched, c rtl.Class) {
	i := d.i
	dec := d.dec
	m.profTick(d.idx)
	m.stats.Instructions++
	m.lastRetired = d.idx
	if c == rtl.Int {
		m.stats.IntIssued++
		m.lastUnit = "IEU"
	} else {
		m.stats.FloatIssued++
		m.lastUnit = "FEU"
	}
	if m.cfg.Trace != nil {
		writeTrace(m.cfg.Trace, m.now, c.String(), i)
	}
	switch i.Kind {
	case rtl.KAssign:
		val, ok := m.evalProg(dec.src)
		if !ok {
			return
		}
		dst := i.Dst
		switch {
		case dec.isCompare:
			m.ccFIFO[dst.Class].push(ccEntry{val != 0, m.now + 1})
			m.noteEvent(m.now + 1)
		case dst.IsZero():
			// Discarded.
		case dst.IsFIFO():
			m.outFIFO[dst.Class][dst.N].push(val)
		default:
			m.regs[dst.Class][dst.N] = val
			m.setReady(dst.Class, dst.N, m.now+dec.latency)
		}
	case rtl.KLoad:
		addr, ok := m.evalProg(dec.addr)
		if !ok {
			return
		}
		m.memSeq++
		m.inFIFO[i.MemClass][i.FIFO.N].push(
			fifoEntry{addr: int64(addr), size: i.MemSize, seq: m.memSeq})
		m.unserved++
	case rtl.KStore:
		addr, ok := m.evalProg(dec.addr)
		if !ok {
			return
		}
		m.memSeq++
		m.unmatchedStores[i.MemClass][i.FIFO.N].push(
			storeReq{int64(addr), i.MemSize, m.memSeq})
	default:
		m.fail("unit cannot execute %s", i)
	}
}
