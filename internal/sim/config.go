// Package sim is a cycle-level simulator for the WM architecture — the
// reproduction of the "simulator capable of determining exact cycle
// counts (including memory delays)" that the paper's Table II uses.
//
// The model follows the paper's architecture description:
//
//   - An instruction fetch unit (IFU) dispatches one instruction per
//     cycle into per-unit FIFO queues and itself executes control
//     transfers: unconditional jumps are free, conditional jumps consume
//     an entry from the executing unit's condition-code FIFO (stalling
//     while it is empty), and jump-on-stream-not-exhausted tracks the
//     count of the stream bound to a FIFO register.
//   - The integer and floating-point execution units (IEU/FEU) issue in
//     order from their queues, one instruction per cycle, through the
//     two-stage ALU pipeline of Figure 2: a result is not available to
//     the *inner* operands of the next instruction (two-cycle distance)
//     but forwards to *outer* operands with one-cycle distance — the
//     property that lets the one-instruction dot-product loop run at one
//     element per cycle.
//   - Register 0 (and register 1 in streaming mode) of each unit is a
//     pair of FIFOs.  Loads compute an address on the IEU and the datum
//     arrives in the destination class's input FIFO after the memory
//     latency; reading r0/f0 dequeues.  Stores pair an output-FIFO datum
//     with an address.
//   - Stream control units (SCUs) execute sin/sout instructions,
//     generating one memory request per cycle per stream, subject to
//     FIFO backpressure and memory port limits.
//   - Memory is modeled with a configurable access latency and a
//     configurable number of request ports per cycle.  Scalar loads
//     check pending stores for address conflicts (store-queue
//     interlock); stream reads deliberately do not, reproducing the
//     hazard that makes the compiler refuse to stream loops with
//     leftover memory recurrences.
package sim

import (
	"context"
	"fmt"
	"io"

	"wmstream/internal/telemetry"
)

// Engine selects the simulation loop.  All engines produce identical
// cycle counts, statistics, telemetry attribution, memory images and
// faults (the differential tests in internal/bench assert this across
// the whole benchmark suite); the fast engine gets there sooner by
// skipping provably-stalled stretches and batching stream transfers,
// and the translated engine sooner still by running ahead-of-time
// compiled Go closures instead of decoding on every cycle.
type Engine uint8

const (
	// EngineAuto picks the translated engine unless a feature that needs
	// per-cycle observation (Config.TraceSink) forces the reference.
	EngineAuto Engine = iota
	// EngineFast requests the event-stepped engine (still demoted to
	// the reference when TraceSink is set — traces are per-cycle).
	EngineFast
	// EngineReference forces the plain cycle-by-cycle interpreter.
	EngineReference
	// EngineTranslated requests the binary-translating engine: the image
	// is lowered once to per-instruction Go closures (cached process-wide
	// by image fingerprint, see translate.go) and the hot loop runs no
	// decode, no expression interpretation and no hazard-kind dispatch.
	EngineTranslated
)

// String names the engine the way CLI flags and the wire protocol
// spell it.  EngineAuto reports "auto"; use Resolve when the name of
// the engine that actually runs is wanted.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineReference:
		return "reference"
	case EngineTranslated:
		return "translated"
	default:
		return "auto"
	}
}

// Resolve maps EngineAuto onto the engine it selects when nothing
// (tracing, recording) forces a demotion; concrete engines resolve to
// themselves.
func (e Engine) Resolve() Engine {
	if e == EngineAuto {
		return EngineTranslated
	}
	return e
}

// ParseEngine maps a flag or wire engine name onto an Engine ("" and
// "auto" are EngineAuto).
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "auto":
		return EngineAuto, nil
	case "translated":
		return EngineTranslated, nil
	case "fast":
		return EngineFast, nil
	case "reference":
		return EngineReference, nil
	default:
		return EngineAuto, fmt.Errorf("unknown engine %q (want auto, translated, fast, or reference)", name)
	}
}

// Config sets the machine parameters.  The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// MemLatency is the number of cycles between a memory read being
	// accepted and its datum entering the input FIFO.
	MemLatency int
	// MemPorts is how many memory requests (reads + writes) can be
	// accepted per cycle.
	MemPorts int
	// FIFODepth bounds each input/output data FIFO.
	FIFODepth int
	// CCDepth bounds each condition-code FIFO.
	CCDepth int
	// QueueDepth bounds each execution unit's instruction queue.
	QueueDepth int
	// NumSCU is the number of stream control units (concurrent streams).
	NumSCU int
	// DivLatency is the extra latency of divide/remainder.
	DivLatency int
	// MathLatency is the latency of the FEU math operations
	// (sqrt/sin/...).
	MathLatency int
	// CvtLatency is the latency of int<->float conversions.
	CvtLatency int
	// StackTop is the initial stack pointer.
	StackTop int64
	// MemSize is the size of simulated memory in bytes.
	MemSize int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// WatchdogSlack is how many cycles beyond MemLatency the machine
	// may go without forward progress before the run is declared
	// deadlocked (*DeadlockError).  Zero or negative uses the
	// DefaultConfig value.
	WatchdogSlack int
	// Output receives putc/puti/putd output (may be nil).
	Output io.Writer
	// Trace, when non-nil, receives a line per executed instruction.
	Trace io.Writer
	// TraceSink, when non-nil, receives Chrome trace events: one span
	// track per functional unit plus FIFO/queue occupancy counters.
	// When nil the hot path pays a single pointer check and allocates
	// nothing.
	TraceSink *telemetry.Trace
	// Profile enables per-instruction retirement counting for the
	// source-level profiler (Machine.Retired).
	Profile bool
	// Engine selects the simulation loop (see Engine).  The zero value
	// EngineAuto uses the translated engine whenever tracing permits.
	Engine Engine
	// Ctx, when non-nil, cancels the simulation cooperatively: the
	// engine loops poll its Done channel (every cancelCheckInterval
	// cycles in the reference engine, every event step in the fast
	// engine) and return its error, so a serving deadline bounds even a
	// runaway simulation.  Cancellation timing is engine-dependent; a
	// canceled run's partial statistics are not comparable across
	// engines (completed runs remain byte-identical).
	Ctx context.Context
}

// DefaultConfig returns the parameters used throughout the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		MemLatency:    6,
		MemPorts:      2,
		FIFODepth:     8,
		CCDepth:       8,
		QueueDepth:    8,
		NumSCU:        4,
		DivLatency:    10,
		MathLatency:   12,
		CvtLatency:    3,
		StackTop:      1 << 20,
		MemSize:       1<<20 + 4096,
		MaxCycles:     2_000_000_000,
		WatchdogSlack: 10000,
	}
}

// Stats reports what a run did.
type Stats struct {
	Cycles        int64
	Dispatched    int64 // instructions dispatched by the IFU
	IntIssued     int64 // instructions issued by the IEU
	FloatIssued   int64 // instructions issued by the FEU
	Branches      int64
	BranchStalls  int64 // cycles the IFU waited on an empty CC FIFO
	MemReads      int64
	MemWrites     int64
	StreamElems   int64 // elements moved by SCUs
	LoadStalls    int64 // issue attempts blocked on an empty input FIFO
	IFUStallFull  int64 // cycles the IFU waited on a full unit queue
	Instructions  int64 // total instructions executed (all units + IFU)
	StreamsOpened int64

	// Units is the per-unit cycle attribution (IFU, IEU, FEU, SCUs):
	// every simulated cycle of every unit charged to exactly one cause,
	// so each unit's counts sum to Cycles on a successful run.
	Units []telemetry.Unit
}
