package sim

import (
	"fmt"
	"io"
	"math"

	"wmstream/internal/rtl"
)

// eval computes the raw bits of an expression.  Integer-class values
// are int64 bit patterns, float-class values are Float64bits.  Reads of
// FIFO registers dequeue (availability was verified by canIssue);
// operand evaluation order is left-to-right, matching the hardware's
// in-order operand fetch.
func (m *Machine) eval(e rtl.Expr) (uint64, bool) {
	switch x := e.(type) {
	case rtl.RegX:
		r := x.Reg
		if r.IsZero() {
			return 0, true
		}
		if r.IsFIFO() {
			q := m.inFIFO[r.Class][r.N]
			if len(q) == 0 || !q[0].served || q[0].ready > m.now {
				m.fail("FIFO %s read with no available data", r)
				return 0, false
			}
			m.inFIFO[r.Class][r.N] = q[1:]
			return q[0].val, true
		}
		return m.regs[r.Class][r.N], true
	case rtl.Imm:
		return uint64(x.V), true
	case rtl.FImm:
		return math.Float64bits(x.V), true
	case rtl.Sym:
		addr, ok := m.img.Globals[x.Name]
		if !ok {
			m.fail("unknown symbol %q", x.Name)
			return 0, false
		}
		return uint64(addr + x.Off), true
	case rtl.Bin:
		l, ok := m.eval(x.L)
		if !ok {
			return 0, false
		}
		r, ok := m.eval(x.R)
		if !ok {
			return 0, false
		}
		return m.evalBin(x, l, r)
	case rtl.Un:
		v, ok := m.eval(x.X)
		if !ok {
			return 0, false
		}
		if x.X.Class() == rtl.Float {
			f, ok := rtl.EvalUnFloat(x.Op, math.Float64frombits(v))
			if !ok {
				m.fail("bad float unary %s", x.Op)
				return 0, false
			}
			return math.Float64bits(f), true
		}
		iv, ok := rtl.EvalUnInt(x.Op, int64(v))
		if !ok {
			m.fail("bad int unary %s", x.Op)
			return 0, false
		}
		return uint64(iv), true
	case rtl.Cvt:
		v, ok := m.eval(x.X)
		if !ok {
			return 0, false
		}
		if x.To == rtl.Float && x.X.Class() == rtl.Int {
			return math.Float64bits(float64(int64(v))), true
		}
		if x.To == rtl.Int && x.X.Class() == rtl.Float {
			return uint64(int64(math.Float64frombits(v))), true
		}
		return v, true
	case rtl.Mem:
		m.fail("memory operand %s in WM code (run legalization)", x)
		return 0, false
	}
	m.fail("cannot evaluate %T", e)
	return 0, false
}

func (m *Machine) evalBin(x rtl.Bin, l, r uint64) (uint64, bool) {
	if x.L.Class() == rtl.Float {
		fv, ok := rtl.EvalFloatOp(x.Op, math.Float64frombits(l), math.Float64frombits(r))
		if !ok {
			m.fail("float op %s failed (division by zero?)", x.Op)
			return 0, false
		}
		if x.Op.IsRelational() {
			return uint64(int64(fv)), true
		}
		return math.Float64bits(fv), true
	}
	iv, ok := rtl.EvalIntOp(x.Op, int64(l), int64(r))
	if !ok {
		m.fail("int op %s failed (division by zero or bad shift)", x.Op)
		return 0, false
	}
	return uint64(iv), true
}

func writeTrace(w io.Writer, now int64, unit string, i *rtl.Instr) {
	fmt.Fprintf(w, "%8d %-5s %s\n", now, unit, i)
}
