package sim

import (
	"fmt"
	"io"
	"math"

	"wmstream/internal/rtl"
)

// evalProg runs a compiled expression program (see decode.go) and
// returns the raw bits of the result.  Integer-class values are int64
// bit patterns, float-class values are Float64bits.  Reads of FIFO
// registers dequeue (availability was verified by the issue hazard
// check); operand evaluation order is the compiled left-to-right
// order, matching the hardware's in-order operand fetch.
//
// The operand stack lives in the machine and is reused across calls;
// fault messages were pre-formatted at decode time — this path never
// allocates and never touches fmt.
func (m *Machine) evalProg(p eprog) (uint64, bool) {
	st := m.evalStack[:0]
	for k := range p {
		s := &p[k]
		switch s.op {
		case eoConst:
			st = append(st, s.bits)
		case eoReg:
			st = append(st, m.regs[s.cls][s.n])
		case eoFIFO:
			q := &m.inFIFO[s.cls][s.n]
			if q.n == 0 || !q.at(0).served || q.at(0).ready > m.now {
				m.fail("%s", s.msg)
				m.evalStack = st[:0]
				return 0, false
			}
			st = append(st, q.pop().val)
		case eoBinInt:
			b := int64(st[len(st)-1])
			st = st[:len(st)-1]
			v, ok := rtl.EvalIntOp(s.rop, int64(st[len(st)-1]), b)
			if !ok {
				m.fail("%s", s.msg)
				m.evalStack = st[:0]
				return 0, false
			}
			st[len(st)-1] = uint64(v)
		case eoBinFloat, eoBinFloatRel:
			b := math.Float64frombits(st[len(st)-1])
			st = st[:len(st)-1]
			a := math.Float64frombits(st[len(st)-1])
			v, ok := rtl.EvalFloatOp(s.rop, a, b)
			if !ok {
				m.fail("%s", s.msg)
				m.evalStack = st[:0]
				return 0, false
			}
			if s.op == eoBinFloatRel {
				st[len(st)-1] = uint64(int64(v))
			} else {
				st[len(st)-1] = math.Float64bits(v)
			}
		case eoUnInt:
			v, ok := rtl.EvalUnInt(s.rop, int64(st[len(st)-1]))
			if !ok {
				m.fail("%s", s.msg)
				m.evalStack = st[:0]
				return 0, false
			}
			st[len(st)-1] = uint64(v)
		case eoUnFloat:
			v, ok := rtl.EvalUnFloat(s.rop, math.Float64frombits(st[len(st)-1]))
			if !ok {
				m.fail("%s", s.msg)
				m.evalStack = st[:0]
				return 0, false
			}
			st[len(st)-1] = math.Float64bits(v)
		case eoCvtIF:
			st[len(st)-1] = math.Float64bits(float64(int64(st[len(st)-1])))
		case eoCvtFI:
			st[len(st)-1] = uint64(int64(math.Float64frombits(st[len(st)-1])))
		default: // eoFail
			m.fail("%s", s.msg)
			m.evalStack = st[:0]
			return 0, false
		}
	}
	v := st[0]
	m.evalStack = st[:0]
	return v, true
}

func writeTrace(w io.Writer, now int64, unit string, i *rtl.Instr) {
	fmt.Fprintf(w, "%8d %-5s %s\n", now, unit, i)
}
