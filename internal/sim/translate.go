package sim

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// The translated engine.  An assembled image is lowered once — per
// (image fingerprint, latency parameters) — into flat tables of Go
// closures (see block.go), shared process-wide across every Machine
// running that image.  The run loop is the fast engine's (the same
// idle-skip and SCU-batch windows apply; they are properties of the
// machine state, not of how a cycle is evaluated), but each cycle walks
// the closure tables instead of decoding and interpreting: no kind
// switches, no expression interpretation, no hazard-kind dispatch, no
// fmt, no map lookups.
//
// The engine is bit-identical to the reference interpreter — same
// Stats, same output bytes, same memory image, same telemetry cycle
// attribution, same faults at the same cycles — which the differential
// matrix in internal/bench enforces.  Runs that must observe every
// cycle (a trace recorder attached) fall back to the reference engine
// in RunSlice; everything else (traps, deadlock detection, slice
// boundaries, checkpoint save/restore) behaves identically here.

// translation is the compiled form of one image under one set of baked
// latency parameters.
type translation struct {
	dec    []decoded // decode cache, shared with the machines (read-only)
	issue  []issueFn // unit-side step per code index (dispatched kinds only)
	ifu    []ifuFn   // IFU-side step per code index
	blocks int       // superblocks formed (introspection)
}

// translate lowers every superblock of the image.
func translate(img *Image, cfg Config) *translation {
	dec := decodeImage(img, cfg)
	tr := &translation{
		dec:   dec,
		issue: make([]issueFn, len(img.Code)),
		ifu:   make([]ifuFn, len(img.Code)),
	}
	for _, b := range superblocks(img) {
		tr.blocks++
		for k := b.start; k < b.end; k++ {
			i := img.Code[k]
			d := &dec[k]
			switch i.Kind {
			case rtl.KJump, rtl.KCondJump, rtl.KJumpNotDone, rtl.KCall,
				rtl.KRet, rtl.KHalt, rtl.KPut,
				rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop:
				// IFU-resident: never enters a unit queue.
			default:
				tr.issue[k] = makeIssue(k, i, d)
			}
			// After makeIssue so the dispatch closure can capture the
			// issue function for its own index.
			tr.ifu[k] = makeIFU(k, i, img.Target[k], d, len(img.Code), tr.issue[k])
		}
	}
	return tr
}

// --- the process-wide translation cache ----------------------------------

// transKey identifies a translation: the image fingerprint plus the
// only configuration parameters translation bakes in (the latencies
// the decode cache folds into per-instruction forwarding times).
// Structural parameters (FIFO depths, queue depths, memory geometry)
// are read from the machine at run time and do not key the cache.
type transKey struct {
	fp             [sha256.Size]byte
	div, math, cvt int
}

type transEntry struct {
	once sync.Once
	tr   *translation
	elem *list.Element // position in the LRU list (value: transKey)
}

type transCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[transKey]*transEntry
	lru       *list.List
	hits      int64
	misses    int64
	evictions int64
}

var translations = &transCache{
	cap:     64,
	entries: make(map[transKey]*transEntry),
	lru:     list.New(),
}

// translationFor returns the cached translation for the image under the
// configuration, translating on first use.  Translation runs outside
// the cache lock (per-entry sync.Once), so a slow translation of one
// image never blocks lookups of others; an entry evicted while still
// referenced by machines keeps working — eviction only forgets it.
func translationFor(img *Image, cfg Config) *translation {
	key := transKey{
		fp:   img.Fingerprint(),
		div:  cfg.DivLatency,
		math: cfg.MathLatency,
		cvt:  cfg.CvtLatency,
	}
	c := translations
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
	} else {
		c.misses++
		e = &transEntry{}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		c.evictLocked()
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr = translate(img, cfg) })
	return e.tr
}

func (c *transCache) evictLocked() {
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(transKey))
		c.lru.Remove(back)
		c.evictions++
	}
}

// TransCacheStats is a point-in-time view of the process-wide
// translation cache (exported for the serving layer's metrics).
type TransCacheStats struct {
	Entries   int
	Cap       int
	Hits      int64
	Misses    int64
	Evictions int64
}

// TranslationCacheStats reports the translation cache counters.
func TranslationCacheStats() TransCacheStats {
	c := translations
	c.mu.Lock()
	defer c.mu.Unlock()
	return TransCacheStats{
		Entries:   len(c.entries),
		Cap:       c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// SetTranslationCacheCap bounds the number of retained translations
// (n <= 0 removes the bound) and evicts down to the new cap.
func SetTranslationCacheCap(n int) {
	c := translations
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	c.evictLocked()
}

// --- the run loop --------------------------------------------------------

// runTranslated advances the translated engine up to the absolute cycle
// limit.  Structurally runFast with stepT in place of step; see fast.go
// for why slicing, skipping and batching preserve bit-identity.
func (m *Machine) runTranslated(limit int64) (bool, error) {
	if m.tr == nil {
		m.tr = translationFor(m.img, m.cfg)
	}
	// Another engine may have run the previous slice (a recorder can
	// force the reference engine) and rewritten cycleCause; make the
	// first idle cycle of each covered slot re-establish its cause.
	m.scuCauseIdle = false
	m.unitCauseIdle = [2]bool{}
	// Entries dispatched by another engine (or restored from a
	// checkpoint) carry no cached issue function; refill them.
	for c := range m.queues {
		q := &m.queues[c]
		for k := 0; k < q.n; k++ {
			if d := q.at(k); d.fn == nil {
				d.fn = m.tr.issue[d.idx]
			}
		}
	}
	slack := m.watchdogSlack()
	done := m.cancelDone()
	lastCheck := m.now
	for !m.done() {
		if m.now >= limit {
			return false, nil
		}
		m.now++
		if m.now > m.cfg.MaxCycles {
			return false, m.maxCyclesTrap()
		}
		if done != nil && m.now-lastCheck >= cancelCheckInterval {
			lastCheck = m.now
			select {
			case <-done:
				return false, m.cfg.Ctx.Err()
			default:
			}
		}
		loadStalls := m.stats.LoadStalls
		branchStalls := m.stats.BranchStalls
		ifuFull := m.stats.IFUStallFull
		m.scuProgress = false
		m.otherProgress = false
		m.stepT()
		if m.err != nil {
			return false, m.err
		}
		if m.now-m.lastProgress > int64(m.cfg.MemLatency)+slack {
			return false, &DeadlockError{Snapshot: m.snapshot()}
		}
		if m.otherProgress {
			continue
		}
		dLoad := m.stats.LoadStalls - loadStalls
		dBranch := m.stats.BranchStalls - branchStalls
		dIFU := m.stats.IFUStallFull - ifuFull
		if m.scuProgress {
			if err := m.batchSCU(dLoad, dBranch, dIFU, limit); err != nil {
				return false, err
			}
		} else {
			m.idleSkip(dLoad, dBranch, dIFU, slack, limit)
		}
	}
	m.stats.Cycles = m.now
	return true, nil
}

// stepT evaluates one machine cycle through the closure tables.  The
// phase order is step()'s; the store matcher and memory server are
// skipped outright on the (common) cycles where their queues are empty
// — on such cycles they are no-ops in the reference too.
func (m *Machine) stepT() {
	m.portsLeft = m.cfg.MemPorts
	if m.unmatchedStores[0][0].n|m.unmatchedStores[0][1].n|
		m.unmatchedStores[1][0].n|m.unmatchedStores[1][1].n != 0 {
		m.matchStores()
	}
	m.stepSCUsT()
	if m.writeQueue.n != 0 || m.unserved != 0 {
		m.serveMemory()
	}
	m.stepUnitT(0)
	m.stepUnitT(1)
	c := m.ifuCycleT()
	m.unitCounts[unitIFU].Add(c)
	m.cycleCause[unitIFU] = c
}

// stepSCUsT runs the SCUs, bulk-charging the all-idle case (no active
// stream with elements left — exactly the per-unit Idle condition of
// stepSCUs) without the per-unit scan bookkeeping.
func (m *Machine) stepSCUsT() {
	if m.activeSCUs != 0 {
		for _, s := range m.scus {
			if s.active && s.remaining != 0 {
				m.flushSCUIdle()
				m.scuCauseIdle = false
				m.stepSCUs()
				return
			}
		}
	}
	// All SCUs idle: defer the per-unit charge (flushed before the
	// counts are observed) and write the Idle causes only once per
	// stretch — idleSkip reads cycleCause every no-progress cycle.
	if !m.scuCauseIdle {
		for u := unitSCU0; u < len(m.unitCounts); u++ {
			m.cycleCause[u] = telemetry.CauseIdle
		}
		m.scuCauseIdle = true
	}
	m.scuIdleDeferred++
}

// stepUnitT is stepUnit through the issue table: the head's compiled
// issue function performs the hazard checks and (on issue) the
// instruction's effect, returning the cycle's cause for accounting.
func (m *Machine) stepUnitT(c int) {
	q := &m.queues[c]
	if q.n == 0 {
		// Empty queue: defer the Idle charge; write the cause once per
		// idle stretch (idleSkip and batchSCU read cycleCause).
		if !m.unitCauseIdle[c] {
			m.cycleCause[unitIEU+c] = telemetry.CauseIdle
			m.unitCauseIdle[c] = true
		}
		m.unitIdleDeferred[c]++
		return
	}
	u := unitIEU + c
	d := q.at(0)
	cause := d.fn(m, d)
	if cause == telemetry.CauseFIFOEmpty {
		m.stats.LoadStalls++
	}
	m.unitCauseIdle[c] = false
	m.unitCounts[u].Add(cause)
	m.cycleCause[u] = cause
}

// ifuCycleT is ifuCycle through the IFU table.  The zero-cost budget,
// the stall-after-progress promotion to Issued, and the out-of-range
// fault live here; everything per-instruction lives in the closures.
func (m *Machine) ifuCycleT() telemetry.Cause {
	if m.halted {
		return telemetry.CauseIdle
	}
	if m.ifuWait > 0 {
		m.ifuWait--
		m.progress()
		return telemetry.CauseFetch
	}
	ifu := m.tr.ifu
	did := false
	for zc := 0; zc < maxZeroCostOps; zc++ {
		pc := m.pc
		if pc < 0 || pc >= len(ifu) {
			m.fail("pc out of range: %d", pc)
			if did {
				return telemetry.CauseIssued
			}
			return telemetry.CauseIdle
		}
		cause, action := ifu[pc](m)
		switch action {
		case ifuCont:
			did = true
		case ifuStop:
			return cause
		default: // ifuStall
			if did {
				return telemetry.CauseIssued
			}
			return cause
		}
	}
	return telemetry.CauseIssued // zero-cost budget exhausted mid-cycle
}
