package sim

import (
	"encoding/binary"
	"fmt"

	"wmstream/internal/rtl"
)

// Machine state serialization: SaveState captures every bit of
// mutable simulation state mid-run, RestoreState loads it into a
// machine built from the same image and configuration.  The encoding
// is engine-independent — both engines mutate exactly the same state
// between cycles — so a run may be checkpointed under one engine and
// resumed under the other and still be bit-identical to an
// uninterrupted run (the differential tests in internal/bench enforce
// this across the benchmark suite).
//
// The format is a versioned little-endian byte stream.  A header
// echoes the machine parameters and the image shape; RestoreState
// refuses a checkpoint whose header does not match the target
// machine, since replaying state into a different machine would be
// silently wrong rather than loudly so.
//
// Deliberately not serialized, because a slice boundary (the only
// place SaveState is legal) makes them dead: portsLeft (reset at the
// top of every step), scuProgress/otherProgress (reset every fast-
// engine cycle before use), cycleCause (rewritten for every unit by
// every cycle's accounting before the fast engine reads it), and the
// evalProg scratch stack.  Queued dispatched entries are serialized
// by code index; their instruction and decode-cache pointers are
// reconstructed from the restoring machine's image.

// stateMagic identifies and versions the checkpoint encoding.
const stateMagic = "wmsim-state-1"

// stateMaxCount caps every element count read from a checkpoint, so a
// corrupt or adversarial stream cannot drive a multi-gigabyte
// allocation before the length checks catch it.
const stateMaxCount = 1 << 24

// SaveState serializes the complete simulation state of a live run.
// It fails on a machine that is tracing (Config.TraceSink holds
// unreplayable recorder state) or already terminal.
func (m *Machine) SaveState() ([]byte, error) {
	if m.rec != nil {
		return nil, fmt.Errorf("sim: cannot checkpoint a traced run (Config.TraceSink is set)")
	}
	if m.finished {
		return nil, fmt.Errorf("sim: cannot checkpoint a finished run")
	}
	e := &stateEnc{buf: make([]byte, 0, len(m.mem)+4096)}
	e.str(stateMagic)
	m.encodeHeader(e)

	e.i64(m.now)
	e.int(m.pc)
	e.bool(m.halted)
	e.int(m.ifuWait)
	e.i64(m.seq)
	e.i64(m.memSeq)
	e.int(m.unserved)
	e.i64(m.lastProgress)
	e.int(m.lastRetired)
	e.str(m.lastUnit)

	for c := 0; c < 2; c++ {
		for n := 0; n < rtl.NumArchRegs; n++ {
			e.u64(m.regs[c][n])
			e.i64(m.readyAt[c][n])
			pend := m.pend[c][n]
			e.int(len(pend))
			for _, p := range pend {
				e.i64(p.seq)
				e.bool(p.write)
			}
		}
	}

	for c := 0; c < 2; c++ {
		q := &m.queues[c]
		e.int(q.n)
		for k := 0; k < q.n; k++ {
			d := q.at(k)
			e.int(d.idx)
			e.i64(d.seq)
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.inFIFO[c][n]
			e.int(q.n)
			for k := 0; k < q.n; k++ {
				f := q.at(k)
				e.u64(f.val)
				e.i64(f.ready)
				e.bool(f.served)
				e.i64(f.addr)
				e.int(f.size)
				e.i64(f.seq)
			}
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.outFIFO[c][n]
			e.int(q.n)
			for k := 0; k < q.n; k++ {
				e.u64(*q.at(k))
			}
		}
	}
	for c := 0; c < 2; c++ {
		q := &m.ccFIFO[c]
		e.int(q.n)
		for k := 0; k < q.n; k++ {
			cc := q.at(k)
			e.bool(cc.val)
			e.i64(cc.ready)
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			e.i64(m.streamIter[c][n])
		}
	}

	for _, s := range m.scus {
		e.bool(s.active)
		e.bool(s.input)
		e.int(int(s.class))
		e.int(s.fifoN)
		e.i64(s.base)
		e.i64(s.stride)
		e.int(s.size)
		e.i64(s.remaining)
	}

	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.unmatchedStores[c][n]
			e.int(q.n)
			for k := 0; k < q.n; k++ {
				st := q.at(k)
				e.i64(st.addr)
				e.int(st.size)
				e.i64(st.seq)
			}
		}
	}
	{
		q := &m.writeQueue
		e.int(q.n)
		for k := 0; k < q.n; k++ {
			w := q.at(k)
			e.i64(w.addr)
			e.int(w.size)
			e.u64(w.val)
			e.i64(w.seq)
		}
	}

	m.flushSCUIdle()
	m.encodeStats(e)
	e.int(len(m.unitCounts))
	for _, u := range m.unitCounts {
		for _, n := range u.Counts {
			e.i64(n)
		}
	}
	if m.retired != nil {
		e.int(len(m.retired))
		for _, n := range m.retired {
			e.i64(n)
		}
	} else {
		e.int(0)
	}
	e.bytes(m.mem)
	return e.buf, nil
}

// RestoreState loads a SaveState checkpoint into this machine, which
// must have been built by New from the same image and configuration.
// Any prior state of the machine is overwritten.  On error the
// machine must be considered corrupt and discarded.
func (m *Machine) RestoreState(data []byte) error {
	if m.rec != nil {
		return fmt.Errorf("sim: cannot restore into a traced machine (Config.TraceSink is set)")
	}
	d := &stateDec{buf: data}
	if magic := d.str(); d.err == nil && magic != stateMagic {
		return fmt.Errorf("sim: not a machine checkpoint (bad magic %q)", magic)
	}
	if err := m.checkHeader(d); err != nil {
		return err
	}

	m.now = d.i64()
	m.pc = d.int()
	m.halted = d.bool()
	m.ifuWait = d.int()
	m.seq = d.i64()
	m.memSeq = d.i64()
	m.unserved = d.int()
	m.lastProgress = d.i64()
	m.lastRetired = d.int()
	m.lastUnit = d.str()

	for c := 0; c < 2; c++ {
		for n := 0; n < rtl.NumArchRegs; n++ {
			m.regs[c][n] = d.u64()
			m.readyAt[c][n] = d.i64()
			cnt := d.count()
			pend := m.pend[c][n][:0]
			for k := 0; k < cnt && d.err == nil; k++ {
				pend = append(pend, pendAccess{seq: d.i64(), write: d.bool()})
			}
			m.pend[c][n] = pend
		}
	}

	for c := 0; c < 2; c++ {
		q := &m.queues[c]
		resetRing(q)
		cnt := d.count()
		for k := 0; k < cnt; k++ {
			idx := d.int()
			seq := d.i64()
			if d.err == nil && (idx < 0 || idx >= len(m.img.Code)) {
				return fmt.Errorf("sim: checkpoint queue entry has code index %d out of range", idx)
			}
			if d.err == nil {
				q.push(dispatched{idx: idx, i: m.img.Code[idx], dec: &m.dec[idx], seq: seq})
			}
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.inFIFO[c][n]
			resetRing(q)
			cnt := d.count()
			for k := 0; k < cnt && d.err == nil; k++ {
				q.push(fifoEntry{
					val:    d.u64(),
					ready:  d.i64(),
					served: d.bool(),
					addr:   d.i64(),
					size:   d.int(),
					seq:    d.i64(),
				})
			}
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.outFIFO[c][n]
			resetRing(q)
			cnt := d.count()
			for k := 0; k < cnt && d.err == nil; k++ {
				q.push(d.u64())
			}
		}
	}
	for c := 0; c < 2; c++ {
		q := &m.ccFIFO[c]
		resetRing(q)
		cnt := d.count()
		for k := 0; k < cnt && d.err == nil; k++ {
			q.push(ccEntry{val: d.bool(), ready: d.i64()})
		}
	}
	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			m.streamIter[c][n] = d.i64()
		}
	}

	for _, s := range m.scus {
		s.active = d.bool()
		s.input = d.bool()
		s.class = rtl.Class(d.int())
		s.fifoN = d.int()
		s.base = d.i64()
		s.stride = d.i64()
		s.size = d.int()
		s.remaining = d.i64()
		if d.err == nil && (s.class > 1 || s.fifoN < 0 || s.fifoN > 1) {
			return fmt.Errorf("sim: checkpoint SCU references FIFO (%d,%d) out of range", s.class, s.fifoN)
		}
	}
	// The stream censuses are derived state; rebuild them.
	m.outStreams = [2][2]int{}
	m.activeSCUs = 0
	for _, s := range m.scus {
		if s.active {
			m.activeSCUs++
			if !s.input {
				m.outStreams[s.class][s.fifoN]++
			}
		}
	}

	for c := 0; c < 2; c++ {
		for n := 0; n < 2; n++ {
			q := &m.unmatchedStores[c][n]
			resetRing(q)
			cnt := d.count()
			for k := 0; k < cnt && d.err == nil; k++ {
				q.push(storeReq{addr: d.i64(), size: d.int(), seq: d.i64()})
			}
		}
	}
	{
		q := &m.writeQueue
		resetRing(q)
		cnt := d.count()
		for k := 0; k < cnt && d.err == nil; k++ {
			q.push(writeReq{addr: d.i64(), size: d.int(), val: d.u64(), seq: d.i64()})
		}
	}

	m.decodeStats(d)
	units := d.count()
	if d.err == nil && units != len(m.unitCounts) {
		return fmt.Errorf("sim: checkpoint has %d telemetry units, machine has %d", units, len(m.unitCounts))
	}
	for u := 0; u < units && d.err == nil; u++ {
		for c := range m.unitCounts[u].Counts {
			m.unitCounts[u].Counts[c] = d.i64()
		}
	}
	retired := d.count()
	if retired > 0 {
		if d.err == nil && (m.retired == nil || retired != len(m.retired)) {
			return fmt.Errorf("sim: checkpoint carries a profile the machine was not configured for")
		}
		for k := 0; k < retired && d.err == nil; k++ {
			m.retired[k] = d.i64()
		}
	} else if m.retired != nil {
		for k := range m.retired {
			m.retired[k] = 0
		}
	}
	mem := d.bytes()
	if d.err == nil && len(mem) != len(m.mem) {
		return fmt.Errorf("sim: checkpoint memory is %d bytes, machine has %d", len(mem), len(m.mem))
	}
	if d.err == nil {
		copy(m.mem, mem)
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("sim: %d trailing bytes after checkpoint", len(d.buf)-d.off)
	}
	m.finished = false
	m.termErr = nil
	m.err = nil
	// The next-event cache and ready mask are derived state: force a
	// rescan, and mark every register as possibly-ready (stale bits are
	// cleared lazily by the scan).
	m.nextEv = 0
	m.readyMask = [2]uint32{^uint32(0), ^uint32(0)}
	// Deferred SCU Idle charges belong to the machine that ran the
	// cycles, not to the restored state (the counts in the checkpoint
	// are already flushed).
	m.scuIdleDeferred = 0
	m.scuCauseIdle = false
	m.unitIdleDeferred = [2]int64{}
	m.unitCauseIdle = [2]bool{}
	return nil
}

// encodeHeader writes the machine parameters a checkpoint is only
// valid for; checkHeader verifies them field by field so a mismatch
// names the offending parameter.
func (m *Machine) encodeHeader(e *stateEnc) {
	for _, v := range m.headerFields() {
		e.i64(v.val)
	}
	e.bool(m.cfg.Profile)
}

func (m *Machine) checkHeader(d *stateDec) error {
	for _, v := range m.headerFields() {
		got := d.i64()
		if d.err == nil && got != v.val {
			return fmt.Errorf("sim: checkpoint %s is %d, machine has %d", v.name, got, v.val)
		}
	}
	profile := d.bool()
	if d.err == nil && profile != m.cfg.Profile {
		return fmt.Errorf("sim: checkpoint and machine disagree on Config.Profile")
	}
	return d.err
}

type headerField struct {
	name string
	val  int64
}

func (m *Machine) headerFields() []headerField {
	return []headerField{
		{"MemLatency", int64(m.cfg.MemLatency)},
		{"MemPorts", int64(m.cfg.MemPorts)},
		{"FIFODepth", int64(m.cfg.FIFODepth)},
		{"CCDepth", int64(m.cfg.CCDepth)},
		{"QueueDepth", int64(m.cfg.QueueDepth)},
		{"NumSCU", int64(m.cfg.NumSCU)},
		{"DivLatency", int64(m.cfg.DivLatency)},
		{"MathLatency", int64(m.cfg.MathLatency)},
		{"CvtLatency", int64(m.cfg.CvtLatency)},
		{"StackTop", m.cfg.StackTop},
		{"MemSize", int64(m.cfg.MemSize)},
		{"MaxCycles", m.cfg.MaxCycles},
		{"WatchdogSlack", int64(m.cfg.WatchdogSlack)},
		{"code length", int64(len(m.img.Code))},
		{"entry point", int64(m.img.Entry)},
		{"data end", m.img.DataEnd},
	}
}

// statsFields enumerates the scalar counters of Stats in encoding
// order (Units lives in unitCounts and is serialized separately).
func statsFields(st *Stats) []*int64 {
	return []*int64{
		&st.Cycles, &st.Dispatched, &st.IntIssued, &st.FloatIssued,
		&st.Branches, &st.BranchStalls, &st.MemReads, &st.MemWrites,
		&st.StreamElems, &st.LoadStalls, &st.IFUStallFull,
		&st.Instructions, &st.StreamsOpened,
	}
}

func (m *Machine) encodeStats(e *stateEnc) {
	for _, p := range statsFields(&m.stats) {
		e.i64(*p)
	}
}

func (m *Machine) decodeStats(d *stateDec) {
	for _, p := range statsFields(&m.stats) {
		*p = d.i64()
	}
}

// resetRing empties a ring in place, keeping its storage.
func resetRing[T any](r *ring[T]) {
	r.head = 0
	r.n = 0
}

// --- primitive little-endian encoding ------------------------------------

type stateEnc struct{ buf []byte }

func (e *stateEnc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *stateEnc) i64(v int64)  { e.u64(uint64(v)) }
func (e *stateEnc) int(v int)    { e.i64(int64(v)) }
func (e *stateEnc) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}
func (e *stateEnc) bytes(p []byte) {
	e.int(len(p))
	e.buf = append(e.buf, p...)
}
func (e *stateEnc) str(s string) { e.bytes([]byte(s)) }

// stateDec decodes with a sticky error: after the first failure every
// read returns a zero value, so decode loops need no per-read checks.
type stateDec struct {
	buf []byte
	off int
	err error
}

func (d *stateDec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("sim: corrupt checkpoint: "+format, args...)
	}
}

func (d *stateDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *stateDec) i64() int64 { return int64(d.u64()) }

func (d *stateDec) int() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

// count reads a non-negative element count with a sanity bound.
func (d *stateDec) count() int {
	v := d.int()
	if d.err == nil && (v < 0 || v > stateMaxCount) {
		d.fail("implausible element count %d", v)
		return 0
	}
	return v
}

func (d *stateDec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

func (d *stateDec) bytes() []byte {
	n := d.int()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("truncated at offset %d", d.off)
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

func (d *stateDec) str() string { return string(d.bytes()) }
