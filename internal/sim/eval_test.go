package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// Edge cases of the compiled-expression evaluator (decode.go/eval.go):
// arithmetic faults must trap with the pre-formatted decode-time
// message, wrapping must follow two's complement, and the two engines
// must agree on all of it.

// runBothEngines assembles and executes a program under the reference
// and fast engines, asserts they agree on the outcome, and returns the
// fast machine and the shared error ("" on success).
func runBothEngines(t *testing.T, cfg Config, src string) (*Machine, string) {
	t.Helper()
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	exec := func(eng Engine) (*Machine, string, string) {
		c := cfg
		c.Engine = eng
		var out bytes.Buffer
		c.Output = &out
		m := New(img, c)
		_, rerr := m.Run()
		es := ""
		if rerr != nil {
			es = rerr.Error()
		}
		return m, out.String(), es
	}
	_, refOut, refErr := exec(EngineReference)
	fm, fastOut, fastErr := exec(EngineFast)
	if refErr != fastErr {
		t.Fatalf("engines disagree on error:\nreference: %s\nfast:      %s", refErr, fastErr)
	}
	if refOut != fastOut {
		t.Fatalf("engines disagree on output: %q vs %q", refOut, fastOut)
	}
	return fm, fastErr
}

// expectTrap runs the program and requires a *TrapError whose reason
// contains want, identically under both engines.
func expectTrap(t *testing.T, src, want string) {
	t.Helper()
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	for _, eng := range []Engine{EngineReference, EngineFast} {
		cfg := DefaultConfig()
		cfg.Engine = eng
		m := New(img, cfg)
		_, rerr := m.Run()
		var trap *TrapError
		if !errors.As(rerr, &trap) {
			t.Fatalf("engine %d: error is %T (%v), want *TrapError", eng, rerr, rerr)
		}
		if !strings.Contains(trap.Reason, want) {
			t.Errorf("engine %d: trap reason %q, want substring %q", eng, trap.Reason, want)
		}
	}
}

func TestEvalDivideByZeroTrap(t *testing.T) {
	expectTrap(t, `
.entry main
.func main
r2 := 0
r3 := (4 / r2)
halt
.end
`, "int op / failed (division by zero or bad shift)")
}

func TestEvalRemainderByZeroTrap(t *testing.T) {
	// The remainder operator prints as % — the fault path must not
	// misinterpret it as a format directive.
	expectTrap(t, `
.entry main
.func main
r2 := 0
r3 := (4 % r2)
halt
.end
`, "int op % failed (division by zero or bad shift)")
}

func TestEvalShiftOutOfRangeTrap(t *testing.T) {
	expectTrap(t, `
.entry main
.func main
r2 := 64
r3 := (1 << r2)
halt
.end
`, "int op << failed (division by zero or bad shift)")
	expectTrap(t, `
.entry main
.func main
r2 := 0
r3 := (r2 - 1)
r4 := (1 >> r3)
halt
.end
`, "int op >> failed (division by zero or bad shift)")
}

func TestEvalFloatDivideByZeroTrap(t *testing.T) {
	expectTrap(t, `
.entry main
.func main
f2 := 1.5f
f3 := 0.0f
f4 := (f2 / f3)
halt
.end
`, "float op / failed (division by zero?)")
}

func TestEvalIntegerOverflowWraps(t *testing.T) {
	// (2^62 + (2^62 - 1)) = MaxInt64; adding 1 must wrap to MinInt64,
	// and negating MinInt64 must stay MinInt64 (two's complement).
	m, errStr := runBothEngines(t, DefaultConfig(), `
.entry main
.func main
r2 := 1
r3 := (r2 << 62)
r4 := ((r3 - 1) + r3)
r5 := (r4 + 1)
r6 := (0 - r5)
halt
.end
`)
	if errStr != "" {
		t.Fatalf("run: %s", errStr)
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	if got := int64(m.Reg(rtl.R(4))); got != maxInt64 {
		t.Errorf("r4 = %d, want MaxInt64", got)
	}
	if got := int64(m.Reg(rtl.R(5))); got != -maxInt64-1 {
		t.Errorf("r5 = %d, want MinInt64", got)
	}
	if got := int64(m.Reg(rtl.R(6))); got != -maxInt64-1 {
		t.Errorf("r6 = %d, want MinInt64 (negation wraps)", got)
	}
}

func TestEvalMixedFIFOAndScalarOperands(t *testing.T) {
	// A FIFO dequeue inside a larger expression: operand order is the
	// compiled left-to-right order, so r0 pops exactly once per read
	// and interleaves with scalar operands identically in both engines.
	data := make([]byte, 3*4)
	for k, v := range []uint32{10, 20, 30} {
		data[k*4] = byte(v)
	}
	m, errStr := runBothEngines(t, DefaultConfig(), `
.entry main
.data seq 12 align=4 init=`+hexOf(data)+`
.func main
r5 := 3
r6 := _seq
sin32r r0, r6, r5, 4
r3 := ((r0 + r0) * 2)
r4 := (r0 + 1)
halt
.end
`)
	if errStr != "" {
		t.Fatalf("run: %s", errStr)
	}
	if got := int64(m.Reg(rtl.R(3))); got != 60 {
		t.Errorf("r3 = %d, want 60", got)
	}
	if got := int64(m.Reg(rtl.R(4))); got != 31 {
		t.Errorf("r4 = %d, want 31", got)
	}
}
