package sim

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// scalarTelemetrySrc exercises the IFU, IEU and FEU plus a branch, so
// every non-SCU unit accrues a mix of causes.
const scalarTelemetrySrc = `
.entry main
.func main
r2 := 0
r3 := 50
f2 := 0.0f
L1:
f2 := (f2 + 1.5f)
r2 := (r2 + 1)
r31 := (r2 < r3)
jumpTr L1
halt
.end
`

// streamTelemetrySrc drives an SCU: sum 64 doubles from memory.
func streamTelemetrySrc() string {
	const n = 64
	a := make([]byte, n*8)
	for k := 0; k < n; k++ {
		binary.LittleEndian.PutUint64(a[k*8:], math.Float64bits(float64(k)))
	}
	return `
.entry main
.data a 512 align=8 init=` + hexOf(a) + `
.func main
r5 := 64
r6 := _a
f4 := f31
sin64f f0, r6, r5, 8
L1:
f4 := (f4 + f0)
jnd f0, L1
halt
.end
`
}

// TestAttributionSumsToCycles locks in the accounting invariant: every
// functional unit is charged exactly one cause per simulated cycle, so
// each unit's counts sum to the run's cycle total.
func TestAttributionSumsToCycles(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"scalar", scalarTelemetrySrc},
		{"stream", streamTelemetrySrc()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, stats, _ := run(t, DefaultConfig(), tc.src)
			wantUnits := []string{"IFU", "IEU", "FEU", "SCU0", "SCU1", "SCU2", "SCU3"}
			if len(stats.Units) != len(wantUnits) {
				t.Fatalf("got %d units, want %d", len(stats.Units), len(wantUnits))
			}
			for n, u := range stats.Units {
				if u.Name != wantUnits[n] {
					t.Errorf("unit %d = %q, want %q", n, u.Name, wantUnits[n])
				}
				if got := u.Total(); got != stats.Cycles {
					t.Errorf("%s: attributed %d cycles, run took %d\n%s",
						u.Name, got, stats.Cycles, telemetry.FormatUnits(stats.Units))
				}
			}
			// The programs do real work, so the issue counts cannot be
			// degenerate.
			if stats.Units[0].Issued() == 0 || stats.Units[1].Issued() == 0 {
				t.Errorf("IFU/IEU issued nothing:\n%s", telemetry.FormatUnits(stats.Units))
			}
		})
	}
}

// TestTraceSchema checks the shape of the Chrome trace: valid JSON, a
// named process, one named track per unit, well-formed spans, and
// counter samples restricted to the documented counter set.
func TestTraceSchema(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceSink = telemetry.NewTrace()
	_, stats, _ := run(t, cfg, streamTelemetrySrc())

	var b strings.Builder
	if _, err := cfg.TraceSink.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Name string `json:"name"`
			Args struct {
				Name  string `json:"name"`
				Value *int64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	knownCounter := map[string]bool{}
	for _, n := range counterNames {
		knownCounter[n] = true
	}
	tracks := map[string]bool{}
	spans, counters := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" && e.Pid == telemetry.PidSim {
				tracks[e.Args.Name] = true
			}
		case "X":
			spans++
			if e.Pid != telemetry.PidSim {
				t.Errorf("span %q on pid %d, want %d", e.Name, e.Pid, telemetry.PidSim)
			}
			if e.Dur < 1 || e.Ts < 0 || e.Ts+e.Dur > stats.Cycles+1 {
				t.Errorf("span %q out of range: ts=%d dur=%d cycles=%d", e.Name, e.Ts, e.Dur, stats.Cycles)
			}
		case "C":
			counters++
			if !knownCounter[e.Name] {
				t.Errorf("unknown counter %q", e.Name)
			}
			if e.Args.Value == nil {
				t.Errorf("counter %q sample has no value", e.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	for _, want := range []string{"IFU", "IEU", "FEU", "SCU0"} {
		if !tracks[want] {
			t.Errorf("no track named %q (have %v)", want, tracks)
		}
	}
	if spans == 0 || counters == 0 {
		t.Errorf("trace has %d spans and %d counter samples, want both > 0", spans, counters)
	}
}

// TestTraceDeterminism: the same program twice produces byte-identical
// trace files — the property that makes traces diffable.
func TestTraceDeterminism(t *testing.T) {
	render := func() string {
		cfg := DefaultConfig()
		cfg.TraceSink = telemetry.NewTrace()
		run(t, cfg, streamTelemetrySrc())
		var b strings.Builder
		if _, err := cfg.TraceSink.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two identical runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestProfileRetires: profiling counts issue events per code index only
// when enabled.
func TestProfileRetires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	m, stats, _ := run(t, cfg, scalarTelemetrySrc)
	var total int64
	for _, n := range m.Retired() {
		total += n
	}
	if total == 0 {
		t.Fatal("profiling enabled but no retirements recorded")
	}
	if total < stats.Instructions {
		t.Errorf("retired %d < %d instructions executed", total, stats.Instructions)
	}

	m2, _, _ := run(t, DefaultConfig(), scalarTelemetrySrc)
	if m2.Retired() != nil {
		t.Error("profiling disabled but Retired() is non-nil")
	}
}

// TestInheritLines: instructions without a source line inherit the
// nearest preceding annotated line; leading gaps backfill from the
// first annotation.
func TestInheritLines(t *testing.T) {
	lines := []int{0, 0, 3, 0, 5, 0}
	inheritLines(lines)
	want := []int{3, 3, 3, 3, 5, 5}
	for n := range want {
		if lines[n] != want[n] {
			t.Fatalf("inheritLines = %v, want %v", lines, want)
		}
	}
	empty := []int{0, 0}
	inheritLines(empty)
	if empty[0] != 0 || empty[1] != 0 {
		t.Errorf("inheritLines on unannotated code = %v, want zeros", empty)
	}
}

// TestImageLineTable: the linker carries @line annotations into the
// image, aligned with the code array.
func TestImageLineTable(t *testing.T) {
	p, err := rtl.Parse(`
.entry main
.func main
r2 := 1 @4
r3 := (r2 + 1)
halt @9
.end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if len(img.Line) != len(img.Code) {
		t.Fatalf("line table has %d entries for %d instructions", len(img.Line), len(img.Code))
	}
	// r2:=1 at line 4; the unannotated add inherits 4; halt at 9.
	want := []int{4, 4, 9}
	for n, w := range want {
		if img.Line[n] != w {
			t.Errorf("img.Line[%d] = %d, want %d (table %v)", n, img.Line[n], w, img.Line[:len(want)])
		}
	}
}
