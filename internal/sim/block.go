package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// The closure compilers of the translated engine.  Each instruction of
// an image is lowered once into specialized Go closures — the unit-side
// issue function (hazard checks fused with the instruction's effect)
// and the IFU-side step function (control transfers and dispatch) —
// and each expression program into a closure tree, so the hot loop
// performs no decode, no expression interpretation, no hazard-kind
// dispatch and no map lookups.  The closures capture only translation
// data (code indices, operand lists, pre-formatted fault messages);
// all machine state is reached through the *Machine parameter, which
// is what lets one translation serve every machine running the image.
//
// Semantics are replicated check for check from units.go/ifu.go/eval.go:
// the same hazard order, the same stall causes, the same stat and
// progress updates, the same lazy fault messages.  The differential
// matrix in internal/bench holds the translated engine bit-identical
// to the reference interpreter.

// superblock is a translation unit: a maximal straight-line run of
// instructions entered only at its head.  Blocks start at the image
// entry and at every branch target, and are extended across
// fall-through edges (conditional branches, stream-count branches and
// calls all fall through), ending only at an unconditional control
// break (jump, return, halt) or the next leader.
type superblock struct {
	start, end int // code index range [start, end)
}

// superblocks partitions the code array.
func superblocks(img *Image) []superblock {
	n := len(img.Code)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	if img.Entry >= 0 && img.Entry < n {
		leader[img.Entry] = true
	}
	for k, i := range img.Code {
		if t := img.Target[k]; t >= 0 && t < n {
			leader[t] = true
		}
		// The instruction after an unconditional break starts a block
		// (it is reachable only as a branch target or dead code; either
		// way it cannot extend the previous block).
		switch i.Kind {
		case rtl.KJump, rtl.KRet, rtl.KHalt:
			if k+1 < n {
				leader[k+1] = true
			}
		}
	}
	var blocks []superblock
	start := 0
	for k := 1; k < n; k++ {
		if leader[k] {
			blocks = append(blocks, superblock{start, k})
			start = k
		}
	}
	return append(blocks, superblock{start, n})
}

// evalFn is a compiled expression program: it returns the raw result
// bits, or false after recording a machine fault (exactly like
// Machine.evalProg, whose fault messages it reuses).
type evalFn func(m *Machine) (uint64, bool)

// compileEval lowers a postfix expression program into a closure tree.
// Operand order (and therefore FIFO dequeue order and lazy-fault order)
// is the compiled left-to-right order, matching the interpreter.
func compileEval(p eprog) evalFn {
	if len(p) == 0 {
		return nil
	}
	interp := func() evalFn { // defensive fallback; never taken for well-formed programs
		prog := p
		return func(m *Machine) (uint64, bool) { return m.evalProg(prog) }
	}
	var stack []evalFn
	for k := range p {
		s := p[k]
		switch s.op {
		case eoConst:
			bits := s.bits
			stack = append(stack, func(m *Machine) (uint64, bool) { return bits, true })
		case eoReg:
			cls, n := s.cls, s.n
			stack = append(stack, func(m *Machine) (uint64, bool) { return m.regs[cls][n], true })
		case eoFIFO:
			cls, n, msg := s.cls, s.n, s.msg
			stack = append(stack, func(m *Machine) (uint64, bool) {
				q := &m.inFIFO[cls][n]
				if q.n == 0 || !q.at(0).served || q.at(0).ready > m.now {
					m.fail("%s", msg)
					return 0, false
				}
				return q.pop().val, true
			})
		case eoBinInt, eoBinFloat, eoBinFloatRel:
			if len(stack) < 2 {
				return interp()
			}
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if s.op == eoBinInt {
				stack = append(stack, makeBinInt(s.rop, s.msg, a, b))
			} else {
				stack = append(stack, makeBinFloat(s.op == eoBinFloatRel, s.rop, s.msg, a, b))
			}
		case eoUnInt, eoUnFloat:
			if len(stack) < 1 {
				return interp()
			}
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack = append(stack, makeUnary(s.op, s.rop, s.msg, a))
		case eoCvtIF:
			if len(stack) < 1 {
				return interp()
			}
			a := stack[len(stack)-1]
			stack[len(stack)-1] = func(m *Machine) (uint64, bool) {
				v, ok := a(m)
				if !ok {
					return 0, false
				}
				return math.Float64bits(float64(int64(v))), true
			}
		case eoCvtFI:
			if len(stack) < 1 {
				return interp()
			}
			a := stack[len(stack)-1]
			stack[len(stack)-1] = func(m *Machine) (uint64, bool) {
				v, ok := a(m)
				if !ok {
					return 0, false
				}
				return uint64(int64(math.Float64frombits(v))), true
			}
		default: // eoFail: an operand-shaped node that faults when reached
			msg := s.msg
			stack = append(stack, func(m *Machine) (uint64, bool) {
				m.fail("%s", msg)
				return 0, false
			})
		}
	}
	if len(stack) != 1 {
		return interp()
	}
	return stack[0]
}

// compileEvalOrInterp compiles the program, falling back to the
// interpreter closure for programs compileEval declines (empty or
// malformed — the interpreter then reproduces the reference behavior,
// including its fault messages, exactly).
func compileEvalOrInterp(p eprog) evalFn {
	if f := compileEval(p); f != nil {
		return f
	}
	prog := p
	return func(m *Machine) (uint64, bool) { return m.evalProg(prog) }
}

// makeBinInt specializes an integer binary operator.  Two's-complement
// identities make the uint64 arithmetic bit-identical to the
// interpreter's int64 round trip; the failing operators (division,
// shifts) keep the generic evaluator and its fault message.
func makeBinInt(op rtl.Op, msg string, a, b evalFn) evalFn {
	bin := func(f func(x, y uint64) uint64) evalFn {
		return func(m *Machine) (uint64, bool) {
			x, ok := a(m)
			if !ok {
				return 0, false
			}
			y, ok := b(m)
			if !ok {
				return 0, false
			}
			return f(x, y), true
		}
	}
	switch op {
	case rtl.Add:
		return bin(func(x, y uint64) uint64 { return x + y })
	case rtl.Sub:
		return bin(func(x, y uint64) uint64 { return x - y })
	case rtl.Mul:
		return bin(func(x, y uint64) uint64 { return x * y })
	case rtl.And:
		return bin(func(x, y uint64) uint64 { return x & y })
	case rtl.Or:
		return bin(func(x, y uint64) uint64 { return x | y })
	case rtl.Xor:
		return bin(func(x, y uint64) uint64 { return x ^ y })
	case rtl.Eq:
		return bin(func(x, y uint64) uint64 { return b2u(x == y) })
	case rtl.Ne:
		return bin(func(x, y uint64) uint64 { return b2u(x != y) })
	case rtl.Lt:
		return bin(func(x, y uint64) uint64 { return b2u(int64(x) < int64(y)) })
	case rtl.Le:
		return bin(func(x, y uint64) uint64 { return b2u(int64(x) <= int64(y)) })
	case rtl.Gt:
		return bin(func(x, y uint64) uint64 { return b2u(int64(x) > int64(y)) })
	case rtl.Ge:
		return bin(func(x, y uint64) uint64 { return b2u(int64(x) >= int64(y)) })
	default: // Div, Rem, Shl, Shr: may fault
		return func(m *Machine) (uint64, bool) {
			x, ok := a(m)
			if !ok {
				return 0, false
			}
			y, ok := b(m)
			if !ok {
				return 0, false
			}
			v, ok := rtl.EvalIntOp(op, int64(x), int64(y))
			if !ok {
				m.fail("%s", msg)
				return 0, false
			}
			return uint64(v), true
		}
	}
}

// makeBinFloat specializes a floating binary operator (rel: relational,
// producing an integer 0/1).
func makeBinFloat(rel bool, op rtl.Op, msg string, a, b evalFn) evalFn {
	bin := func(f func(x, y float64) uint64) evalFn {
		return func(m *Machine) (uint64, bool) {
			x, ok := a(m)
			if !ok {
				return 0, false
			}
			y, ok := b(m)
			if !ok {
				return 0, false
			}
			return f(math.Float64frombits(x), math.Float64frombits(y)), true
		}
	}
	switch op {
	case rtl.Add:
		return bin(func(x, y float64) uint64 { return math.Float64bits(x + y) })
	case rtl.Sub:
		return bin(func(x, y float64) uint64 { return math.Float64bits(x - y) })
	case rtl.Mul:
		return bin(func(x, y float64) uint64 { return math.Float64bits(x * y) })
	case rtl.Eq:
		return bin(func(x, y float64) uint64 { return b2u(x == y) })
	case rtl.Ne:
		return bin(func(x, y float64) uint64 { return b2u(x != y) })
	case rtl.Lt:
		return bin(func(x, y float64) uint64 { return b2u(x < y) })
	case rtl.Le:
		return bin(func(x, y float64) uint64 { return b2u(x <= y) })
	case rtl.Gt:
		return bin(func(x, y float64) uint64 { return b2u(x > y) })
	case rtl.Ge:
		return bin(func(x, y float64) uint64 { return b2u(x >= y) })
	default: // Div (faults on zero) and anything unexpected
		return func(m *Machine) (uint64, bool) {
			x, ok := a(m)
			if !ok {
				return 0, false
			}
			y, ok := b(m)
			if !ok {
				return 0, false
			}
			v, ok := rtl.EvalFloatOp(op, math.Float64frombits(x), math.Float64frombits(y))
			if !ok {
				m.fail("%s", msg)
				return 0, false
			}
			if rel {
				return uint64(int64(v)), true
			}
			return math.Float64bits(v), true
		}
	}
}

// makeUnary specializes a unary operator.
func makeUnary(op evalOp, rop rtl.Op, msg string, a evalFn) evalFn {
	if op == eoUnInt && rop == rtl.Neg {
		return func(m *Machine) (uint64, bool) {
			v, ok := a(m)
			if !ok {
				return 0, false
			}
			return -v, true
		}
	}
	if op == eoUnInt && rop == rtl.Not {
		return func(m *Machine) (uint64, bool) {
			v, ok := a(m)
			if !ok {
				return 0, false
			}
			return ^v, true
		}
	}
	if op == eoUnFloat && rop == rtl.Neg {
		return func(m *Machine) (uint64, bool) {
			v, ok := a(m)
			if !ok {
				return 0, false
			}
			return math.Float64bits(-math.Float64frombits(v)), true
		}
	}
	isInt := op == eoUnInt
	return func(m *Machine) (uint64, bool) {
		v, ok := a(m)
		if !ok {
			return 0, false
		}
		if isInt {
			r, ok := rtl.EvalUnInt(rop, int64(v))
			if !ok {
				m.fail("%s", msg)
				return 0, false
			}
			return uint64(r), true
		}
		r, ok := rtl.EvalUnFloat(rop, math.Float64frombits(v))
		if !ok {
			m.fail("%s", msg)
			return 0, false
		}
		return math.Float64bits(r), true
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// issueFn is the translated unit-side step for one instruction: called
// with the instruction at the head of its unit queue, it either returns
// the stall cause holding it back, or pops, executes, and returns
// CauseIssued — replicating issueHazard + stepUnit's issue path +
// execute, with the hazard→cause mapping resolved at translation time.
type issueFn func(m *Machine, d *dispatched) telemetry.Cause

// opCheck is a pre-extracted scalar operand hazard check.
type opCheck struct {
	cls   rtl.Class
	n     int
	outer bool
}

// makeIssue lowers one dispatched-kind instruction.  The hot scalar
// shape — no FIFO reads, no space checks, at most two operands — gets
// dedicated closures with the operand checks captured directly; every
// other shape takes the general closure.  Both share the issue body.
func makeIssue(idx int, i *rtl.Instr, dec *decoded) issueFn {
	unit := int(dec.unit)
	ops := make([]opCheck, len(dec.ops))
	for k, op := range dec.ops {
		ops[k] = opCheck{op.reg.Class, op.reg.N, op.outer}
	}
	readList := append([]fifoNeed(nil), dec.readList...)
	hasDef, defCls, defN := dec.hasDef, dec.def.Class, dec.def.N
	isCompare, fifoWrite := dec.isCompare, dec.fifoWrite
	dstCls, dstN := i.Dst.Class, i.Dst.N
	isLoad := i.Kind == rtl.KLoad
	loadCls, loadN := i.MemClass, i.FIFO.N
	isInt := dec.unit == rtl.Int
	unitName := "IEU"
	if !isInt {
		unitName = "FEU"
	}
	clsName := dec.unit.String()
	instr := i
	exec := makeExec(i, dec)

	// The registers whose pend lists carry this instruction's accesses
	// (addPend's set: every operand occurrence plus the definition).
	pends := append([]opCheck(nil), ops...)
	if hasDef {
		pends = append(pends, opCheck{defCls, defN, false})
	}

	// issue is the hazard-free path: pop before executing, execute,
	// then progress — even when the execution faults (matching
	// stepUnit).  Pend removal is inlined over the captured registers
	// (removePend's loop, without the per-register closure calls).
	issue := func(m *Machine) telemetry.Cause {
		dv := m.queues[unit].pop()
		seq := dv.seq
		for k := range pends {
			p := &pends[k]
			list := m.pend[p.cls][p.n]
			out := list[:0]
			for _, pa := range list {
				if pa.seq != seq {
					out = append(out, pa)
				}
			}
			m.pend[p.cls][p.n] = out
		}
		m.profTick(idx)
		m.stats.Instructions++
		m.lastRetired = idx
		if isInt {
			m.stats.IntIssued++
		} else {
			m.stats.FloatIssued++
		}
		m.lastUnit = unitName
		if m.cfg.Trace != nil {
			writeTrace(m.cfg.Trace, m.now, clsName, instr)
		}
		exec(m)
		m.progress()
		return telemetry.CauseIssued
	}

	// defClear replicates the destination hazard (WAW and WAR against
	// earlier accesses); opClear one scalar operand's pending-write and
	// forwarding-distance checks.  Shared by the specialized shapes.
	defClear := func(m *Machine, seq int64) bool {
		for _, p := range m.pend[defCls][defN] {
			if p.seq < seq {
				return false
			}
		}
		return true
	}
	opClear := func(m *Machine, op *opCheck, seq int64) bool {
		for _, p := range m.pend[op.cls][op.n] {
			if p.write && p.seq < seq {
				return false
			}
		}
		limit := m.now
		if op.outer {
			limit++
		}
		return m.readyAt[op.cls][op.n] <= limit
	}

	// scalars bundles the operand and destination hazard checks for the
	// shapes below (same order as the general closure: operands, then
	// destination).
	scalars := func(m *Machine, seq int64) bool {
		for k := range ops {
			if !opClear(m, &ops[k], seq) {
				return false
			}
		}
		return !hasDef || defClear(m, seq)
	}

	if !isCompare && !fifoWrite {
		// Loads: scalar address operands, then input-FIFO space, then
		// the stream-unit conflict.
		if isLoad && len(readList) == 0 {
			return func(m *Machine, d *dispatched) telemetry.Cause {
				if !scalars(m, d.seq) {
					return telemetry.CauseResultLatency
				}
				if m.inFIFO[loadCls][loadN].n >= m.cfg.FIFODepth {
					return telemetry.CauseFIFOFull
				}
				if m.inputStreamIssuing(loadCls, loadN) {
					return telemetry.CauseStreamBusy
				}
				return issue(m)
			}
		}
		// One FIFO read of one element (stores of streamed data, and
		// assignments consuming a single FIFO operand).
		if !isLoad && len(readList) == 1 && readList[0].need == 1 {
			rc, rn := readList[0].cls, readList[0].n
			return func(m *Machine, d *dispatched) telemetry.Cause {
				if !scalars(m, d.seq) {
					return telemetry.CauseResultLatency
				}
				q := &m.inFIFO[rc][rn]
				if q.n == 0 {
					return telemetry.CauseFIFOEmpty
				}
				if en := q.at(0); !en.served || en.ready > m.now {
					return telemetry.CauseFIFOEmpty
				}
				return issue(m)
			}
		}
	}

	if len(readList) == 0 && !isCompare && !fifoWrite && !isLoad {
		switch len(ops) {
		case 0:
			if !hasDef {
				return func(m *Machine, d *dispatched) telemetry.Cause {
					return issue(m)
				}
			}
			return func(m *Machine, d *dispatched) telemetry.Cause {
				if !defClear(m, d.seq) {
					return telemetry.CauseResultLatency
				}
				return issue(m)
			}
		case 1:
			op0 := ops[0]
			return func(m *Machine, d *dispatched) telemetry.Cause {
				if !opClear(m, &op0, d.seq) {
					return telemetry.CauseResultLatency
				}
				if hasDef && !defClear(m, d.seq) {
					return telemetry.CauseResultLatency
				}
				return issue(m)
			}
		case 2:
			op0, op1 := ops[0], ops[1]
			return func(m *Machine, d *dispatched) telemetry.Cause {
				if !opClear(m, &op0, d.seq) || !opClear(m, &op1, d.seq) {
					return telemetry.CauseResultLatency
				}
				if hasDef && !defClear(m, d.seq) {
					return telemetry.CauseResultLatency
				}
				return issue(m)
			}
		}
	}

	return func(m *Machine, d *dispatched) telemetry.Cause {
		now := m.now
		// Scalar operands: cross-unit pending writes and forwarding
		// distances (outer operands forward one cycle earlier).
		for k := range ops {
			if !opClear(m, &ops[k], d.seq) {
				return telemetry.CauseResultLatency
			}
		}
		// Destination hazards (WAW and WAR against earlier accesses).
		if hasDef && !defClear(m, d.seq) {
			return telemetry.CauseResultLatency
		}
		// FIFO reads: enough arrived data at the head of each FIFO.
		for k := range readList {
			fr := &readList[k]
			q := &m.inFIFO[fr.cls][fr.n]
			if q.n < fr.need {
				return telemetry.CauseFIFOEmpty
			}
			for e := 0; e < fr.need; e++ {
				en := q.at(e)
				if !en.served || en.ready > now {
					return telemetry.CauseFIFOEmpty
				}
			}
		}
		// Space checks.
		if isCompare && m.ccFIFO[dstCls].n >= m.cfg.CCDepth {
			return telemetry.CauseCCWait
		}
		if fifoWrite && m.outFIFO[dstCls][dstN].n >= m.cfg.FIFODepth {
			return telemetry.CauseFIFOFull
		}
		if isLoad {
			if m.inFIFO[loadCls][loadN].n >= m.cfg.FIFODepth {
				return telemetry.CauseFIFOFull
			}
			if m.inputStreamIssuing(loadCls, loadN) {
				return telemetry.CauseStreamBusy
			}
		}
		return issue(m)
	}
}

// makeExec lowers the instruction's effect (the body of execute), with
// the destination variant resolved at translation time.
func makeExec(i *rtl.Instr, dec *decoded) func(m *Machine) {
	switch i.Kind {
	case rtl.KAssign:
		eval := compileEvalOrInterp(dec.src)
		switch {
		case dec.isCompare:
			dstCls := i.Dst.Class
			return func(m *Machine) {
				val, ok := eval(m)
				if !ok {
					return
				}
				m.ccFIFO[dstCls].push(ccEntry{val != 0, m.now + 1})
				m.noteEvent(m.now + 1)
			}
		case i.Dst.IsZero():
			return func(m *Machine) { eval(m) }
		case i.Dst.IsFIFO():
			dstCls, dstN := i.Dst.Class, i.Dst.N
			return func(m *Machine) {
				val, ok := eval(m)
				if !ok {
					return
				}
				m.outFIFO[dstCls][dstN].push(val)
			}
		default:
			dstCls, dstN, latency := i.Dst.Class, i.Dst.N, dec.latency
			return func(m *Machine) {
				val, ok := eval(m)
				if !ok {
					return
				}
				m.regs[dstCls][dstN] = val
				m.setReady(dstCls, dstN, m.now+latency)
			}
		}
	case rtl.KLoad:
		eval := compileEvalOrInterp(dec.addr)
		cls, n, size := i.MemClass, i.FIFO.N, i.MemSize
		return func(m *Machine) {
			addr, ok := eval(m)
			if !ok {
				return
			}
			m.memSeq++
			m.inFIFO[cls][n].push(fifoEntry{addr: int64(addr), size: size, seq: m.memSeq})
			m.unserved++
		}
	case rtl.KStore:
		eval := compileEvalOrInterp(dec.addr)
		cls, n, size := i.MemClass, i.FIFO.N, i.MemSize
		return func(m *Machine) {
			addr, ok := eval(m)
			if !ok {
				return
			}
			m.memSeq++
			m.unmatchedStores[cls][n].push(storeReq{int64(addr), size, m.memSeq})
		}
	default:
		msg := fmt.Sprintf("unit cannot execute %s", i)
		return func(m *Machine) { m.fail("%s", msg) }
	}
}

// ifuFn is the translated IFU step for one code index.  The second
// return value tells the driving loop what happened:
//
//	ifuCont  — a zero-cost control transfer executed; keep going.
//	ifuStop  — the cycle is over; the cause is final (Issued paths).
//	ifuStall — the instruction stalled; promote to Issued if any
//	           zero-cost op already executed this cycle (stall()).
type ifuFn func(m *Machine) (telemetry.Cause, uint8)

const (
	ifuCont uint8 = iota
	ifuStop
	ifuStall
)

// makeIFU lowers one instruction's IFU behavior.  fn is the compiled
// issue function for this index (nil for IFU-resident kinds), cached in
// the dispatched entry so the unit step skips the table indirection.
func makeIFU(idx int, i *rtl.Instr, target int, dec *decoded, codeLen int, fn issueFn) ifuFn {
	switch i.Kind {
	case rtl.KJump:
		return func(m *Machine) (telemetry.Cause, uint8) {
			m.profTick(idx)
			m.pc = target
			m.stats.Branches++
			m.progress()
			return 0, ifuCont
		}

	case rtl.KCondJump:
		cc, sense := i.CCClass, i.Sense
		return func(m *Machine) (telemetry.Cause, uint8) {
			q := &m.ccFIFO[cc]
			if q.n == 0 || q.at(0).ready > m.now {
				m.stats.BranchStalls++
				return telemetry.CauseCCWait, ifuStall
			}
			e := q.pop()
			m.profTick(idx)
			if e.val == sense {
				m.pc = target
			} else {
				m.pc = idx + 1
			}
			m.stats.Branches++
			m.progress()
			return 0, ifuCont
		}

	case rtl.KJumpNotDone:
		fc, fn := i.FIFO.Class, i.FIFO.N
		return func(m *Machine) (telemetry.Cause, uint8) {
			m.profTick(idx)
			cnt := m.streamIter[fc][fn]
			if cnt < 0 { // infinite stream: always taken
				m.pc = target
			} else if cnt > 1 {
				m.streamIter[fc][fn] = cnt - 1
				m.pc = target
			} else {
				m.streamIter[fc][fn] = 0
				m.pc = idx + 1
			}
			m.stats.Branches++
			m.progress()
			return 0, ifuCont
		}

	case rtl.KCall:
		return func(m *Machine) (telemetry.Cause, uint8) {
			if len(m.pend[rtl.Int][rtl.LR]) > 0 {
				return telemetry.CauseResultLatency, ifuStall
			}
			m.profTick(idx)
			m.regs[rtl.Int][rtl.LR] = uint64(idx + 1)
			m.readyAt[rtl.Int][rtl.LR] = m.now
			m.pc = target
			m.progress()
			return 0, ifuCont
		}

	case rtl.KRet:
		return func(m *Machine) (telemetry.Cause, uint8) {
			if len(m.pend[rtl.Int][rtl.LR]) > 0 || m.readyAt[rtl.Int][rtl.LR] > m.now {
				return telemetry.CauseResultLatency, ifuStall
			}
			ret := int(m.regs[rtl.Int][rtl.LR])
			if ret < 0 || ret >= codeLen {
				m.fail("return to bad address %d", ret)
				return telemetry.CauseIdle, ifuStall
			}
			m.profTick(idx)
			m.pc = ret
			m.progress()
			return 0, ifuCont
		}

	case rtl.KHalt:
		return func(m *Machine) (telemetry.Cause, uint8) {
			m.profTick(idx)
			m.halted = true
			m.progress()
			return telemetry.CauseIssued, ifuStop
		}

	case rtl.KPut:
		srcRegs := dec.srcRegs
		eval := compileEvalOrInterp(dec.src)
		format, srcCls := i.Fmt, dec.srcClass
		return func(m *Machine) (telemetry.Cause, uint8) {
			if !m.regsQuietList(srcRegs) {
				return telemetry.CauseResultLatency, ifuStall
			}
			val, ok := eval(m)
			if !ok {
				return telemetry.CauseIdle, ifuStall
			}
			m.profTick(idx)
			m.put(format, val, srcCls)
			m.pc = idx + 1
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued, ifuStop // consumes the dispatch slot
		}

	case rtl.KStreamIn, rtl.KStreamOut, rtl.KStreamStop:
		instr, d := i, dec
		return func(m *Machine) (telemetry.Cause, uint8) {
			if !m.startStream(instr, d) {
				return telemetry.CauseStreamBusy, ifuStall
			}
			m.profTick(idx)
			m.pc = idx + 1
			m.stats.Dispatched++
			m.stats.Instructions++
			m.progress()
			return telemetry.CauseIssued, ifuStop
		}

	default:
		// Dispatch into a unit queue.  The pend-list appends are
		// addPend's, inlined over registers captured at translation
		// time (one entry per operand occurrence, then the definition).
		instr, d := i, dec
		unit := int(dec.unit)
		wait := dec.words - 1
		pendOps := make([]opCheck, len(dec.ops))
		for k, op := range dec.ops {
			pendOps[k] = opCheck{op.reg.Class, op.reg.N, false}
		}
		hasDef, defCls, defN := dec.hasDef, dec.def.Class, dec.def.N
		return func(m *Machine) (telemetry.Cause, uint8) {
			if m.queues[unit].n >= m.cfg.QueueDepth {
				m.stats.IFUStallFull++
				return telemetry.CauseQueueFull, ifuStall
			}
			m.seq++
			seq := m.seq
			m.queues[unit].push(dispatched{idx: idx, i: instr, dec: d, seq: seq, fn: fn})
			for k := range pendOps {
				p := &pendOps[k]
				m.pend[p.cls][p.n] = append(m.pend[p.cls][p.n], pendAccess{seq, false})
			}
			if hasDef {
				m.pend[defCls][defN] = append(m.pend[defCls][defN], pendAccess{seq, true})
			}
			m.pc = idx + 1
			m.stats.Dispatched++
			m.ifuWait = wait
			m.progress()
			return telemetry.CauseIssued, ifuStop
		}
	}
}
