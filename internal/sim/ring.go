package sim

// ring is a preallocated power-of-two circular buffer, the storage for
// every queue in the machine: the eight data FIFOs, the two
// condition-code FIFOs, the unit instruction queues, the store matcher
// and the memory write queue.  The previous slice representation popped
// the front by reslicing, which made every steady-state producer/
// consumer pair reallocate and memmove continuously; the ring pops in
// O(1) and stops allocating once it has grown to the working depth.
//
// The zero value is an empty ring; push grows it on demand.  pop does
// not zero the vacated slot: queued entries reference only
// machine-lifetime data (the code image and the decode cache), so a
// stale slot keeps nothing alive that the Machine does not.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// push appends v at the tail.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow(2 * len(r.buf))
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the head entry.  Like indexing an empty
// slice, popping an empty ring is a caller bug; callers guard on n.
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// at returns a pointer to the i-th entry counted from the head (0 =
// next to pop).  The pointer is invalidated by the next push.
func (r *ring[T]) at(i int) *T {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// reserve grows the buffer so at least c entries fit without further
// allocation.
func (r *ring[T]) reserve(c int) {
	if c > len(r.buf) {
		r.grow(c)
	}
}

// reset empties the ring, keeping its buffer.
func (r *ring[T]) reset() {
	r.head = 0
	r.n = 0
}

// grow reallocates to the smallest power of two >= max(c, 8), moving
// the live entries to the front.
func (r *ring[T]) grow(c int) {
	size := 8
	for size < c {
		size <<= 1
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
