package sim

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// checkpointImage builds a streaming reduction long enough (hundreds
// of cycles) that a mid-run checkpoint captures live FIFOs, an active
// SCU, pending register writes, and in-flight memory traffic.
func checkpointImage(t *testing.T) *Image {
	t.Helper()
	const n = 512
	data := make([]byte, n*4)
	for k := 0; k < n; k++ {
		binary.LittleEndian.PutUint32(data[k*4:], uint32(k))
	}
	src := `
.entry main
.data w ` + strconv.Itoa(n*4) + ` align=4 init=` + hexOf(data) + `
.func main
r5 := ` + strconv.Itoa(n) + `
r6 := _w
sin32r r0, r6, r5, 4
r2 := 0
L1:
r2 := (r2 + r0)
jnd r0, L1
puti r2
halt
.end
`
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func runUninterrupted(t *testing.T, img *Image, cfg Config) (Stats, string, []byte) {
	t.Helper()
	var out bytes.Buffer
	cfg.Output = &out
	m := New(img, cfg)
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	return stats, out.String(), m.Mem()
}

// TestStateRoundTripMidRun checkpoints a run mid-flight, restores it
// into a freshly built machine, finishes there, and requires the
// result to be bit-identical to the uninterrupted run — statistics
// (including telemetry sums), output, and final memory.
func TestStateRoundTripMidRun(t *testing.T) {
	img := checkpointImage(t)
	for _, e := range []struct {
		name string
		eng  Engine
	}{{"ref", EngineReference}, {"fast", EngineFast}, {"translated", EngineTranslated}} {
		e := e
		t.Run(e.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Engine = e.eng
			wantStats, wantOut, wantMem := runUninterrupted(t, img, cfg)

			var out bytes.Buffer
			cfg.Output = &out
			m := New(img, cfg)
			done, err := m.RunSlice(137)
			if err != nil || done {
				t.Fatalf("run ended before the checkpoint (done=%v err=%v)", done, err)
			}
			blob, err := m.SaveState()
			if err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			m2 := New(img, cfg)
			if err := m2.RestoreState(blob); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			if got := m2.Progress().Cycles; got != 137 {
				t.Errorf("restored machine at cycle %d, want 137", got)
			}
			stats, err := m2.Run()
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(stats, wantStats) {
				t.Errorf("stats mismatch:\nuninterrupted: %+v\nresumed:       %+v", wantStats, stats)
			}
			if out.String() != wantOut {
				t.Errorf("output %q, want %q", out.String(), wantOut)
			}
			if !bytes.Equal(m2.Mem(), wantMem) {
				t.Errorf("final memory images differ")
			}
		})
	}
}

// TestStateCrossEngineResume saves under the reference engine and
// resumes under the fast engine: the encoding is engine-independent,
// so the spliced run must match the uninterrupted reference run.
func TestStateCrossEngineResume(t *testing.T) {
	img := checkpointImage(t)
	refCfg := DefaultConfig()
	refCfg.Engine = EngineReference
	wantStats, wantOut, wantMem := runUninterrupted(t, img, refCfg)

	var out bytes.Buffer
	refCfg.Output = &out
	m := New(img, refCfg)
	if done, err := m.RunSlice(200); err != nil || done {
		t.Fatalf("run ended before the checkpoint (done=%v err=%v)", done, err)
	}
	blob, err := m.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	fastCfg := DefaultConfig()
	fastCfg.Engine = EngineFast
	fastCfg.Output = &out
	m2 := New(img, fastCfg)
	if err := m2.RestoreState(blob); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	stats, err := m2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch:\nreference:        %+v\ncross-engine:     %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
	if !bytes.Equal(m2.Mem(), wantMem) {
		t.Errorf("final memory images differ")
	}
}

// TestStateCrossEngineChain splices one run across all three engines —
// a slice under the translated engine, a slice under the fast engine,
// the rest under the reference — through checkpoints at each seam.  The
// encoding is engine-independent and every engine is bit-identical, so
// the spliced run must match the uninterrupted reference run exactly.
func TestStateCrossEngineChain(t *testing.T) {
	img := checkpointImage(t)
	refCfg := DefaultConfig()
	refCfg.Engine = EngineReference
	wantStats, wantOut, wantMem := runUninterrupted(t, img, refCfg)

	hop := func(blob []byte, eng Engine, out *bytes.Buffer, slice int64) ([]byte, *Machine) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Engine = eng
		cfg.Output = out
		m := New(img, cfg)
		if blob != nil {
			if err := m.RestoreState(blob); err != nil {
				t.Fatalf("RestoreState under engine %d: %v", eng, err)
			}
		}
		if slice >= 0 {
			if done, err := m.RunSlice(slice); err != nil || done {
				t.Fatalf("engine %d slice ended early (done=%v err=%v)", eng, done, err)
			}
			next, err := m.SaveState()
			if err != nil {
				t.Fatalf("SaveState under engine %d: %v", eng, err)
			}
			return next, m
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("final run under engine %d: %v", eng, err)
		}
		return nil, m
	}

	var out bytes.Buffer
	blob, _ := hop(nil, EngineTranslated, &out, 101)
	blob, _ = hop(blob, EngineFast, &out, 97)
	_, last := hop(blob, EngineReference, &out, -1)

	if stats := last.Stats(); !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch:\nreference: %+v\nspliced:   %+v", wantStats, stats)
	}
	if out.String() != wantOut {
		t.Errorf("output %q, want %q", out.String(), wantOut)
	}
	if !bytes.Equal(last.Mem(), wantMem) {
		t.Errorf("final memory images differ")
	}
}

// TestSaveStateRefusals: a traced run carries unreplayable recorder
// state, and a finished run has nothing left to resume.
func TestSaveStateRefusals(t *testing.T) {
	img := checkpointImage(t)

	cfg := DefaultConfig()
	cfg.TraceSink = telemetry.NewTrace()
	if _, err := New(img, cfg).SaveState(); err == nil || !strings.Contains(err.Error(), "traced") {
		t.Errorf("SaveState on traced machine: err = %v, want traced-run refusal", err)
	}

	m := New(img, DefaultConfig())
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := m.SaveState(); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Errorf("SaveState on finished machine: err = %v, want finished-run refusal", err)
	}
}

// TestRestoreStateHeaderMismatch: a checkpoint only restores into a
// machine with identical parameters, and the error names the field.
func TestRestoreStateHeaderMismatch(t *testing.T) {
	img := checkpointImage(t)
	m := New(img, DefaultConfig())
	if done, err := m.RunSlice(50); err != nil || done {
		t.Fatalf("run ended early (done=%v err=%v)", done, err)
	}
	blob, err := m.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MemLatency += 3
	err = New(img, cfg).RestoreState(blob)
	if err == nil || !strings.Contains(err.Error(), "MemLatency") {
		t.Errorf("RestoreState into different machine: err = %v, want MemLatency mismatch", err)
	}
}

// TestRestoreStateCorrupt: truncation, a foreign blob, and trailing
// garbage are all rejected rather than half-applied.
func TestRestoreStateCorrupt(t *testing.T) {
	img := checkpointImage(t)
	m := New(img, DefaultConfig())
	if done, err := m.RunSlice(50); err != nil || done {
		t.Fatalf("run ended early (done=%v err=%v)", done, err)
	}
	blob, err := m.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	if err := New(img, DefaultConfig()).RestoreState(blob[:len(blob)/2]); err == nil {
		t.Error("RestoreState accepted a truncated checkpoint")
	}
	bad := append([]byte(nil), blob...)
	bad[8] ^= 0xff // first byte of the magic string
	if err := New(img, DefaultConfig()).RestoreState(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("RestoreState on foreign blob: err = %v, want bad-magic refusal", err)
	}
	if err := New(img, DefaultConfig()).RestoreState(append(append([]byte(nil), blob...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("RestoreState with trailing bytes: err = %v, want trailing-bytes refusal", err)
	}

	// A valid blob still restores after all those rejections touched
	// (copies of) it.
	if err := New(img, DefaultConfig()).RestoreState(blob); err != nil {
		t.Errorf("RestoreState on pristine blob after corruption tests: %v", err)
	}
}

// TestRestoreStateOnDiskCorruption round-trips a checkpoint through a
// file — the durable-store path — and damages it the ways disks do:
// structural bit-flips, truncation at every interesting boundary, a
// foreign file, an empty file.  Every case must be rejected cleanly
// (an error, never a panic or a half-applied machine), and a machine
// that saw a rejected blob must still run a clean pass to the same
// result as an undisturbed run.
func TestRestoreStateOnDiskCorruption(t *testing.T) {
	img := checkpointImage(t)
	wantStats, wantOut, wantMem := runUninterrupted(t, img, DefaultConfig())

	m := New(img, DefaultConfig())
	if done, err := m.RunSlice(137); err != nil || done {
		t.Fatalf("run ended early (done=%v err=%v)", done, err)
	}
	blob, err := m.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}

	load := func(t *testing.T) []byte {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read checkpoint: %v", err)
		}
		return raw
	}

	// The undamaged on-disk copy restores and replays to the
	// uninterrupted result.
	raw := load(t)
	m2 := New(img, DefaultConfig())
	if err := m2.RestoreState(raw); err != nil {
		t.Fatalf("RestoreState from disk: %v", err)
	}

	cases := []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"bit-flip-header", func(b []byte) []byte { b[4] ^= 0x80; return b }},
		{"bit-flip-magic", func(b []byte) []byte { b[8] ^= 0x01; return b }},
		{"truncated-header", func(b []byte) []byte { return b[:6] }},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-one-byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"foreign-magic", func(b []byte) []byte {
			return append([]byte("not a checkpoint at all"), b[8:]...)
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.damage(load(t))
			fresh := New(img, DefaultConfig())
			if err := fresh.RestoreState(bad); err == nil {
				t.Fatal("RestoreState accepted a damaged on-disk checkpoint")
			}
			// The fallback path: the machine that rejected the blob is
			// untouched and still runs cleanly from cycle zero.
			var out bytes.Buffer
			cfg := DefaultConfig()
			cfg.Output = &out
			clean := New(img, cfg)
			stats, err := clean.Run()
			if err != nil {
				t.Fatalf("clean fallback run: %v", err)
			}
			if !reflect.DeepEqual(stats, wantStats) || out.String() != wantOut ||
				!bytes.Equal(clean.Mem(), wantMem) {
				t.Error("clean fallback run diverged from the uninterrupted result")
			}
		})
	}
}
