package sim

import "wmstream/internal/telemetry"

// recorder streams the per-cycle accounting into a telemetry.Trace as
// Chrome trace events.  Each functional unit gets one span track:
// issued instructions become one-cycle spans named after the
// instruction, runs of consecutive stall cycles coalesce into one span
// named after the cause, and idle cycles emit nothing.  Occupancy
// gauges (FIFOs, CC queues, unit queues, write queue) become counter
// tracks, emitting a sample only when the value changes.
//
// Cycle N maps to trace timestamp base+N-1 (the machine's cycle
// counter starts at 1), where base is the trace cursor at attach time —
// after compile-phase spans, so one timeline shows the compiler
// followed by the machine.
type recorder struct {
	trace *telemetry.Trace
	base  int64

	units []recUnit
	last  []int64 // previously emitted counter values, -1 = none
}

type recUnit struct {
	tid      int
	runCause telemetry.Cause // open coalesced run; CauseIssued = none open
	runStart int64           // first cycle of the open run
}

// counterNames index-matches Machine.sampleCounters' sampling order.
var counterNames = []string{
	"fifo.in.r0", "fifo.in.r1", "fifo.in.f0", "fifo.in.f1",
	"fifo.out.r0", "fifo.out.r1", "fifo.out.f0", "fifo.out.f1",
	"cc.r", "cc.f",
	"queue.IEU", "queue.FEU",
	"mem.writeq",
}

func newRecorder(t *telemetry.Trace, units []telemetry.Unit) *recorder {
	r := &recorder{
		trace: t,
		base:  t.Cursor(),
		units: make([]recUnit, len(units)),
		last:  make([]int64, len(counterNames)),
	}
	t.ProcessName(telemetry.PidSim, "wm machine")
	for n, u := range units {
		r.units[n] = recUnit{tid: n + 1}
		t.ThreadName(telemetry.PidSim, n+1, u.Name)
	}
	for n := range r.last {
		r.last[n] = -1
	}
	return r
}

// record charges unit u's cycle `now` to the cause.  name, when
// non-empty, is the issued instruction (its span is emitted
// immediately); issued cycles without a name (IFU dispatch work, SCU
// element transfers) coalesce into "busy" runs like stalls do.
func (r *recorder) record(u int, cause telemetry.Cause, name string, now int64) {
	ru := &r.units[u]
	if name != "" {
		r.closeRun(ru, now)
		r.trace.Span(telemetry.PidSim, ru.tid, r.base+now-1, 1, name)
		return
	}
	if cause == ru.runCause && ru.runStart > 0 {
		return // run continues
	}
	r.closeRun(ru, now)
	ru.runCause = cause
	ru.runStart = now
}

// closeRun emits the open coalesced run, which ended before cycle now.
func (r *recorder) closeRun(ru *recUnit, now int64) {
	if ru.runStart == 0 || now <= ru.runStart {
		ru.runStart = 0
		return
	}
	if ru.runCause != telemetry.CauseIdle { // idle gaps stay blank
		name := ru.runCause.String()
		if ru.runCause == telemetry.CauseIssued {
			name = "busy"
		}
		r.trace.Span(telemetry.PidSim, ru.tid, r.base+ru.runStart-1, now-ru.runStart, name)
	}
	ru.runStart = 0
}

// counter emits gauge k's sample for cycle now when it changed.
func (r *recorder) counter(k int, v, now int64) {
	if r.last[k] == v {
		return
	}
	r.last[k] = v
	r.trace.Counter(telemetry.PidSim, r.base+now-1, counterNames[k], v)
}

// flush closes every open run; end is one past the last simulated
// cycle.
func (r *recorder) flush(end int64) {
	for n := range r.units {
		r.closeRun(&r.units[n], end)
	}
}
