package sim

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"wmstream/internal/rtl"
)

// run assembles and executes a program, returning the machine, stats
// and output text.
func run(t *testing.T, cfg Config, src string) (*Machine, Stats, string) {
	t.Helper()
	p, err := rtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	var out bytes.Buffer
	cfg.Output = &out
	m := New(img, cfg)
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return m, stats, out.String()
}

func TestArithmetic(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 6
r3 := 7
r4 := (r2 * r3)
r5 := ((r2 << 2) + r3)
halt
.end
`)
	if got := int64(m.Reg(rtl.R(4))); got != 42 {
		t.Errorf("r4 = %d", got)
	}
	if got := int64(m.Reg(rtl.R(5))); got != 31 {
		t.Errorf("r5 = %d", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
f2 := 1.5f
f3 := 2.5f
f4 := (f2 * f3)
f5 := sqrt(f4)
r2 := cvtr(f4)
f6 := cvtf(r2)
halt
.end
`)
	if got := math.Float64frombits(m.Reg(rtl.F(4))); got != 3.75 {
		t.Errorf("f4 = %g", got)
	}
	if got := math.Float64frombits(m.Reg(rtl.F(5))); math.Abs(got-math.Sqrt(3.75)) > 1e-12 {
		t.Errorf("f5 = %g", got)
	}
	if got := int64(m.Reg(rtl.R(2))); got != 3 {
		t.Errorf("r2 = %d", got)
	}
	if got := math.Float64frombits(m.Reg(rtl.F(6))); got != 3 {
		t.Errorf("f6 = %g", got)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.data g 16 align=8
.func main
r2 := _g
r0 := 12345
s32r r0, r2
l32r r0, r2
r3 := r0
r0 := -7
s8r r0, (r2 + 8)
l8r r0, (r2 + 8)
r4 := r0
halt
.end
`)
	if got := int64(m.Reg(rtl.R(3))); got != 12345 {
		t.Errorf("r3 = %d (store/load conflict interlock broken?)", got)
	}
	if got := int64(m.Reg(rtl.R(4))); got != -7 {
		t.Errorf("r4 = %d (sign extension broken?)", got)
	}
}

func TestFloatMemory(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.data g 8 align=8
.func main
r2 := _g
f0 := 2.25f
s64f f0, r2
l64f f0, r2
f3 := f0
halt
.end
`)
	if got := math.Float64frombits(m.Reg(rtl.F(3))); got != 2.25 {
		t.Errorf("f3 = %g", got)
	}
}

func TestLoopSum(t *testing.T) {
	m, stats, _ := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 0
r3 := 1
L1:
r2 := (r2 + r3)
r3 := (r3 + 1)
r31 := (r3 <= 10)
jumpTr L1
halt
.end
`)
	if got := int64(m.Reg(rtl.R(2))); got != 55 {
		t.Errorf("sum = %d", got)
	}
	if stats.Branches < 10 {
		t.Errorf("branches = %d", stats.Branches)
	}
}

func TestConditionalBothSenses(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 0
r31 := (1 < 2)
jumpFr L1
r2 := (r2 + 1)
L1:
r31 := (1 > 2)
jumpTr L2
r2 := (r2 + 10)
L2:
halt
.end
`)
	if got := int64(m.Reg(rtl.R(2))); got != 11 {
		t.Errorf("r2 = %d", got)
	}
}

func TestGlobalInitData(t *testing.T) {
	init := make([]byte, 8)
	binary.LittleEndian.PutUint32(init, 99)
	binary.LittleEndian.PutUint32(init[4:], uint32(0xfffffffe)) // -2
	src := `
.entry main
.data tab 8 align=4 init=` + hexOf(init) + `
.func main
r2 := _tab
l32r r0, r2
r3 := r0
l32r r0, (r2 + 4)
r4 := r0
halt
.end
`
	m, _, _ := run(t, DefaultConfig(), src)
	if got := int64(m.Reg(rtl.R(3))); got != 99 {
		t.Errorf("r3 = %d", got)
	}
	if got := int64(m.Reg(rtl.R(4))); got != -2 {
		t.Errorf("r4 = %d", got)
	}
}

func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	var sb strings.Builder
	for _, x := range b {
		sb.WriteByte(digits[x>>4])
		sb.WriteByte(digits[x&15])
	}
	return sb.String()
}

// TestDotProductStream reproduces the paper's headline claim: the
// streamed dot-product loop is two instructions (one FEU op plus a
// zero-cost IFU branch) and runs in Θ(N) cycles.
func TestDotProductStream(t *testing.T) {
	const n = 1024
	a := make([]byte, n*8)
	b := make([]byte, n*8)
	var want float64
	for k := 0; k < n; k++ {
		av := float64(k%10) + 0.5
		bv := float64(k%7) + 0.25
		binary.LittleEndian.PutUint64(a[k*8:], math.Float64bits(av))
		binary.LittleEndian.PutUint64(b[k*8:], math.Float64bits(bv))
		want += av * bv
	}
	src := `
.entry main
.data a 8192 align=8 init=` + hexOf(a) + `
.data b 8192 align=8 init=` + hexOf(b) + `
.func main
r5 := 1024
r6 := _a
r7 := _b
f4 := f31
sin64f f0, r6, r5, 8
sin64f f1, r7, r5, 8
L1:
f4 := ((f0 * f1) + f4)
jnd f0, L1
halt
.end
`
	m, stats, _ := run(t, DefaultConfig(), src)
	if got := math.Float64frombits(m.Reg(rtl.F(4))); math.Abs(got-want) > 1e-9 {
		t.Errorf("dot = %g, want %g", got, want)
	}
	// Θ(N): one FEU instruction per element plus pipeline fill.
	if stats.Cycles > n+100 {
		t.Errorf("cycles = %d, want ≈%d (stream loop not at one element/cycle)", stats.Cycles, n)
	}
	if stats.Cycles < n {
		t.Errorf("cycles = %d < N, impossible", stats.Cycles)
	}
	if stats.StreamElems != 2*n {
		t.Errorf("stream elements = %d, want %d", stats.StreamElems, 2*n)
	}
}

// TestOuterOperandForwarding verifies the Figure 2 pipeline rule: a
// dependent chain through outer operands runs at one cycle per
// instruction, while a chain through inner operands needs two.
func TestOuterOperandForwarding(t *testing.T) {
	mkChain := func(inner bool) string {
		var sb strings.Builder
		sb.WriteString(".entry main\n.func main\nr2 := 1\n")
		for k := 0; k < 64; k++ {
			if inner {
				sb.WriteString("r2 := ((r2 + 1) + r31)\n") // r2 inner
			} else {
				sb.WriteString("r2 := ((1 + 1) + r2)\n") // r2 outer
			}
		}
		sb.WriteString("halt\n.end\n")
		return sb.String()
	}
	_, fastStats, _ := run(t, DefaultConfig(), mkChain(false))
	_, slowStats, _ := run(t, DefaultConfig(), mkChain(true))
	if slowStats.Cycles <= fastStats.Cycles+32 {
		t.Errorf("inner chain %d cycles, outer chain %d cycles; expected ~2x",
			slowStats.Cycles, fastStats.Cycles)
	}
}

func TestCallReturn(t *testing.T) {
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 5
call double_it
r4 := r2
halt
.end
.func double_it
r2 := (r2 + r2)
ret
.end
`)
	if got := int64(m.Reg(rtl.R(4))); got != 10 {
		t.Errorf("r4 = %d", got)
	}
}

func TestCallSavesLR(t *testing.T) {
	// Nested calls with explicit LR save/restore through memory.
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 3
call outer
r5 := r2
halt
.end
.func outer
r29 := (r29 - 8)
r0 := r30
s64r r0, r29
call inner
r2 := (r2 + 1)
l64r r0, r29
r30 := r0
r29 := (r29 + 8)
ret
.end
.func inner
r2 := (r2 * 10)
ret
.end
`)
	if got := int64(m.Reg(rtl.R(5))); got != 31 {
		t.Errorf("r5 = %d", got)
	}
}

func TestPutOutput(t *testing.T) {
	_, _, out := run(t, DefaultConfig(), `
.entry main
.func main
r2 := 72
putc r2
r3 := 105
putc r3
r4 := -42
puti r4
f2 := 2.5f
putd f2
halt
.end
`)
	if out != "Hi-422.5" {
		t.Errorf("output = %q", out)
	}
}

func TestStreamOut(t *testing.T) {
	// Fill an 8-element array with a constant via an output stream.
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.data v 64 align=8
.func main
r5 := 8
r6 := _v
sout64f f0, r6, r5, 8
r7 := 0
L1:
f0 := 3.25f
r7 := (r7 + 1)
r31 := (r7 < 8)
jumpTr L1
halt
.end
`)
	addr := m.GlobalAddr("v")
	for k := 0; k < 8; k++ {
		bits := binary.LittleEndian.Uint64(m.Mem()[addr+int64(k*8):])
		if got := math.Float64frombits(bits); got != 3.25 {
			t.Fatalf("v[%d] = %g", k, got)
		}
	}
}

func TestStreamInIntegers(t *testing.T) {
	data := make([]byte, 6*4)
	for k := 0; k < 6; k++ {
		binary.LittleEndian.PutUint32(data[k*4:], uint32(k+1))
	}
	src := `
.entry main
.data w 24 align=4 init=` + hexOf(data) + `
.func main
r5 := 6
r6 := _w
sin32r r0, r6, r5, 4
r2 := 0
L1:
r2 := (r2 + r0)
jnd r0, L1
halt
.end
`
	m, _, _ := run(t, DefaultConfig(), src)
	if got := int64(m.Reg(rtl.R(2))); got != 21 {
		t.Errorf("sum = %d", got)
	}
}

func TestStridedStream(t *testing.T) {
	// Read every second element.
	data := make([]byte, 8*4)
	for k := 0; k < 8; k++ {
		binary.LittleEndian.PutUint32(data[k*4:], uint32(k))
	}
	src := `
.entry main
.data w 32 align=4 init=` + hexOf(data) + `
.func main
r5 := 4
r6 := _w
sin32r r0, r6, r5, 8
r2 := 0
L1:
r2 := (r2 + r0)
jnd r0, L1
halt
.end
`
	m, _, _ := run(t, DefaultConfig(), src)
	if got := int64(m.Reg(rtl.R(2))); got != 0+2+4+6 {
		t.Errorf("sum = %d", got)
	}
}

func TestInfiniteStreamWithStop(t *testing.T) {
	data := make([]byte, 16*4)
	for k := 0; k < 16; k++ {
		binary.LittleEndian.PutUint32(data[k*4:], uint32(k+1))
	}
	// Sum until the value 5 appears, using an infinite stream plus
	// sstop at the exit.
	src := `
.entry main
.data w 64 align=4 init=` + hexOf(data) + `
.func main
r5 := -1
r6 := _w
sin32r r0, r6, r5, 4
r2 := 0
L1:
r3 := r0
r31 := (r3 == 5)
jumpTr L2
r2 := (r2 + r3)
jump L1
L2:
sstop r0
halt
.end
`
	m, _, _ := run(t, DefaultConfig(), src)
	if got := int64(m.Reg(rtl.R(2))); got != 1+2+3+4 {
		t.Errorf("sum = %d", got)
	}
}

func TestMemoryLatencyMatters(t *testing.T) {
	prog := `
.entry main
.data g 8 align=8
.func main
r2 := _g
r0 := 1
s64r r0, r2
l64r r0, r2
r3 := r0
l64r r0, r2
r4 := r0
l64r r0, r2
r5 := r0
halt
.end
`
	fast := DefaultConfig()
	fast.MemLatency = 1
	slow := DefaultConfig()
	slow.MemLatency = 40
	_, fs, _ := run(t, fast, prog)
	_, ss, _ := run(t, slow, prog)
	if ss.Cycles <= fs.Cycles {
		t.Errorf("latency 40 (%d cycles) not slower than latency 1 (%d cycles)", ss.Cycles, fs.Cycles)
	}
}

// TestDecoupledLoadsHideLatency shows the access/execute benefit: many
// independent loads issued ahead of consumption overlap their
// latencies, so doubling memory latency costs far less than double.
func TestDecoupledLoadsHideLatency(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".entry main\n.data g 256 align=8\n.func main\nr2 := _g\n")
	for k := 0; k < 16; k++ {
		sb.WriteString("l64r r0, (r2 + " + itoa(k*8) + ")\n")
	}
	for k := 0; k < 16; k++ {
		sb.WriteString("r3 := (r3 + r0)\n")
	}
	sb.WriteString("halt\n.end\n")
	cfg := DefaultConfig()
	cfg.MemLatency = 2
	cfg.FIFODepth = 32
	_, s2, _ := run(t, cfg, sb.String())
	cfg.MemLatency = 12
	_, s12, _ := run(t, cfg, sb.String())
	if s12.Cycles-s2.Cycles > 20 {
		t.Errorf("pipelined loads should hide most latency: %d vs %d cycles", s12.Cycles, s2.Cycles)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestDeadlockDetected(t *testing.T) {
	p, err := rtl.Parse(`
.entry main
.func main
r2 := r0
halt
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("expected deadlock error for FIFO read with no data")
	}
}

func TestVirtualRegistersRejected(t *testing.T) {
	p, err := rtl.Parse(`
.entry main
.func main
rv0 := 1
halt
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(p); err == nil {
		t.Fatal("expected link error for virtual registers")
	}
}

func TestDivisionByZeroFails(t *testing.T) {
	p, _ := rtl.Parse(`
.entry main
.func main
r2 := 0
r3 := (4 / r2)
halt
.end
`)
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(img, DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestCompareCCOrder(t *testing.T) {
	// Two compares enqueued before their branches are consumed in FIFO
	// order.
	m, _, _ := run(t, DefaultConfig(), `
.entry main
.func main
r31 := (1 < 2)
r31 := (2 < 1)
jumpTr L1
r2 := 100
jump L2
L1:
r2 := 1
jumpFr L3
r2 := (r2 + 200)
jump L2
L3:
r2 := (r2 + 10)
L2:
halt
.end
`)
	if got := int64(m.Reg(rtl.R(2))); got != 11 {
		t.Errorf("r2 = %d", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	_, stats, _ := run(t, DefaultConfig(), `
.entry main
.data g 8 align=8
.func main
r2 := _g
r0 := 1
s64r r0, r2
l64r r0, r2
r3 := r0
halt
.end
`)
	if stats.MemReads != 1 || stats.MemWrites != 1 {
		t.Errorf("mem reads/writes = %d/%d", stats.MemReads, stats.MemWrites)
	}
	if stats.Dispatched == 0 || stats.Instructions == 0 || stats.Cycles == 0 {
		t.Errorf("stats = %+v", stats)
	}
}
