package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// TestPoolBitIdentity runs the same program on a fresh machine, a
// pooled machine, and a machine recycled through Release/Acquire, and
// requires identical statistics, output and memory from all three.
func TestPoolBitIdentity(t *testing.T) {
	img := checkpointImage(t)
	for _, e := range []struct {
		name string
		eng  Engine
	}{{"translated", EngineTranslated}, {"fast", EngineFast}, {"ref", EngineReference}} {
		e := e
		t.Run(e.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Engine = e.eng
			wantStats, wantOut, wantMem := runUninterrupted(t, img, cfg)
			wantMem = append([]byte(nil), wantMem...)

			run := func(m *Machine, out *bytes.Buffer, label string) {
				t.Helper()
				stats, err := m.Run()
				if err != nil {
					t.Fatalf("%s run: %v", label, err)
				}
				if !reflect.DeepEqual(stats, wantStats) {
					t.Errorf("%s stats mismatch:\nfresh:  %+v\npooled: %+v", label, wantStats, stats)
				}
				if out.String() != wantOut {
					t.Errorf("%s output %q, want %q", label, out.String(), wantOut)
				}
				if !bytes.Equal(m.Mem(), wantMem) {
					t.Errorf("%s final memory differs", label)
				}
			}

			var out1 bytes.Buffer
			acfg := cfg
			acfg.Output = &out1
			m := Acquire(img, acfg)
			if !m.pooled {
				t.Fatalf("Acquire returned an unpooled machine for a poolable config")
			}
			run(m, &out1, "first acquire")
			Release(m)

			// The recycled machine must start from power-on state.
			var out2 bytes.Buffer
			acfg.Output = &out2
			m2 := Acquire(img, acfg)
			run(m2, &out2, "recycled")
			Release(m2)
		})
	}
}

// TestPoolBypassesObservers: configurations with per-cycle observers
// never pool (their machines carry run-specific state).
func TestPoolBypassesObservers(t *testing.T) {
	img := checkpointImage(t)
	cfg := DefaultConfig()
	cfg.Profile = true
	m := Acquire(img, cfg)
	if m.pooled {
		t.Error("profiled machine was pooled")
	}
	Release(m) // must be a no-op, not a panic
}

// TestPoolRecycledCheckpoint: a rearmed machine restores and resumes a
// checkpoint exactly like a fresh one (rearm resets everything
// RestoreState does not overwrite).
func TestPoolRecycledCheckpoint(t *testing.T) {
	img := checkpointImage(t)
	cfg := DefaultConfig()
	wantStats, wantOut, wantMem := runUninterrupted(t, img, cfg)
	wantMem = append([]byte(nil), wantMem...)

	var mid bytes.Buffer
	mcfg := cfg
	mcfg.Output = &mid
	src := New(img, mcfg)
	if done, err := src.RunSlice(137); err != nil || done {
		t.Fatalf("run ended before the checkpoint (done=%v err=%v)", done, err)
	}
	blob, err := src.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	// Dirty a pooled machine with a full run, recycle it, then restore
	// the checkpoint into it.
	var scratch bytes.Buffer
	dcfg := cfg
	dcfg.Output = &scratch
	dirty := Acquire(img, dcfg)
	if _, err := dirty.Run(); err != nil {
		t.Fatalf("dirtying run: %v", err)
	}
	Release(dirty)

	rcfg := cfg
	rcfg.Output = &mid
	m := Acquire(img, rcfg)
	if err := m.RestoreState(blob); err != nil {
		t.Fatalf("RestoreState into recycled machine: %v", err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats mismatch:\nfresh:    %+v\nrecycled: %+v", wantStats, stats)
	}
	if mid.String() != wantOut {
		t.Errorf("output %q, want %q", mid.String(), wantOut)
	}
	if !bytes.Equal(m.Mem(), wantMem) {
		t.Errorf("final memory images differ")
	}
}

// TestPoolAllocs guards the recycling benefit: running a pooled
// machine must allocate far less than building one from scratch
// (the memory image alone dominates a fresh build).
func TestPoolAllocs(t *testing.T) {
	img := checkpointImage(t)
	cfg := DefaultConfig()

	// Warm the pool and the translation cache.
	m := Acquire(img, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	Release(m)

	pooled := testing.AllocsPerRun(5, func() {
		m := Acquire(img, cfg)
		if _, err := m.Run(); err != nil {
			t.Fatalf("pooled run: %v", err)
		}
		Release(m)
	})
	fresh := testing.AllocsPerRun(5, func() {
		m := New(img, cfg)
		if _, err := m.Run(); err != nil {
			t.Fatalf("fresh run: %v", err)
		}
	})
	t.Logf("allocs/run: pooled=%.0f fresh=%.0f", pooled, fresh)
	// The pooled path should be nearly allocation-free; 32 leaves
	// headroom for runtime noise while still failing if pooling breaks.
	if pooled > 32 {
		t.Errorf("pooled run allocates %.0f times, want <= 32", pooled)
	}
	if pooled >= fresh {
		t.Errorf("pooling saves nothing: pooled=%.0f fresh=%.0f", pooled, fresh)
	}
}
