package sim

import (
	"fmt"

	"wmstream/internal/rtl"
	"wmstream/internal/telemetry"
)

// hazard is the single source of truth for why a queued instruction
// cannot issue.  stepUnit uses the telemetry cause to charge the stall
// cycle, and snapshot uses reason() to render the forensic message —
// one classification, two consumers, so the issue logic and the
// diagnostics can never drift apart.
type hzKind uint8

const (
	hzNone hzKind = iota
	// hzPendingWriter: an operand has an in-flight (dispatched, not yet
	// executed) writer on the other unit.
	hzPendingWriter
	// hzResultWait: an operand's producing instruction has issued but
	// its result has not traveled the forwarding distance.
	hzResultWait
	// hzDestPending: the destination has an in-flight earlier access
	// (WAW/WAR).
	hzDestPending
	// hzFIFOEmpty: an input FIFO read lacks arrived data.
	hzFIFOEmpty
	// hzFIFOInFlight: the FIFO head exists but its datum is still in
	// flight from memory.
	hzFIFOInFlight
	// hzCCFull: the condition-code FIFO the compare feeds is full.
	hzCCFull
	// hzOutFull: the output FIFO the assignment feeds is full.
	hzOutFull
	// hzLoadFull: the input FIFO the load targets is full.
	hzLoadFull
	// hzLoadStream: a scalar load must wait for an input stream still
	// issuing into the same FIFO.
	hzLoadStream
)

type hazard struct {
	kind hzKind
	reg  rtl.Reg // the register or FIFO involved
	cc   rtl.Class
	a, b int // detail operands (counts, cycle numbers)
}

// blocked reports whether the hazard actually holds the instruction.
func (h hazard) blocked() bool { return h.kind != hzNone }

// cause maps the hazard to its telemetry attribution bucket.
func (h hazard) cause() telemetry.Cause {
	switch h.kind {
	case hzPendingWriter, hzResultWait, hzDestPending:
		return telemetry.CauseResultLatency
	case hzFIFOEmpty, hzFIFOInFlight:
		return telemetry.CauseFIFOEmpty
	case hzCCFull:
		return telemetry.CauseCCWait
	case hzOutFull, hzLoadFull:
		return telemetry.CauseFIFOFull
	case hzLoadStream:
		return telemetry.CauseStreamBusy
	}
	return telemetry.CauseIssued
}

// reason renders the hazard as the diagnostic string embedded in
// Snapshot (the exact strings fault-containment tests golden against).
func (h hazard) reason() string {
	switch h.kind {
	case hzPendingWriter:
		return fmt.Sprintf("operand %s (in-flight writer)", h.reg)
	case hzResultWait:
		return fmt.Sprintf("operand %s (result not ready until cycle %d)", h.reg, h.a)
	case hzDestPending:
		return fmt.Sprintf("destination %s (in-flight access)", h.reg)
	case hzFIFOEmpty:
		return fmt.Sprintf("input FIFO %s (empty: %d of %d operands arrived)", h.reg, h.a, h.b)
	case hzFIFOInFlight:
		return fmt.Sprintf("input FIFO %s (head datum still in flight)", h.reg)
	case hzCCFull:
		return fmt.Sprintf("CC FIFO %s (full)", h.cc)
	case hzOutFull:
		return fmt.Sprintf("output FIFO %s (full)", h.reg)
	case hzLoadFull:
		return fmt.Sprintf("input FIFO %s (full)", h.reg)
	case hzLoadStream:
		return fmt.Sprintf("input FIFO %s (stream still issuing)", h.reg)
	}
	return ""
}

// issueHazard applies the issue checks in canIssue order and returns
// the first hazard holding the instruction back (hzNone when it can
// issue).  It is pure: stat side effects belong to the caller.
func (m *Machine) issueHazard(d *dispatched) hazard {
	i := d.i
	dec := d.dec
	// Register operands: cross-unit pending writes and forwarding
	// distances (outer operands forward one cycle earlier).
	for _, op := range dec.ops {
		r := op.reg
		if m.pendingWriterBefore(r, d.seq) {
			return hazard{kind: hzPendingWriter, reg: r}
		}
		limit := m.now
		if op.outer {
			limit = m.now + 1
		}
		if m.readyAt[r.Class][r.N] > limit {
			return hazard{kind: hzResultWait, reg: r, a: int(m.readyAt[r.Class][r.N])}
		}
	}
	// Destination hazards (WAW and WAR against earlier accesses).
	if dec.hasDef && m.pendingAccessBefore(dec.def, d.seq) {
		return hazard{kind: hzDestPending, reg: dec.def}
	}
	// FIFO reads: enough arrived data at the head of each input FIFO.
	for _, fr := range dec.readList {
		fifo := rtl.Reg{Class: fr.cls, N: fr.n}
		q := &m.inFIFO[fr.cls][fr.n]
		if q.n < fr.need {
			return hazard{kind: hzFIFOEmpty, reg: fifo, a: q.n, b: fr.need}
		}
		for k := 0; k < fr.need; k++ {
			e := q.at(k)
			if !e.served || e.ready > m.now {
				return hazard{kind: hzFIFOInFlight, reg: fifo}
			}
		}
	}
	// Space checks.
	if dec.isCompare && m.ccFIFO[i.Dst.Class].n >= m.cfg.CCDepth {
		return hazard{kind: hzCCFull, cc: i.Dst.Class}
	}
	if dec.fifoWrite && m.outFIFO[i.Dst.Class][i.Dst.N].n >= m.cfg.FIFODepth {
		return hazard{kind: hzOutFull, reg: i.Dst}
	}
	if i.Kind == rtl.KLoad {
		fifo := rtl.Reg{Class: i.MemClass, N: i.FIFO.N}
		if m.inFIFO[i.MemClass][i.FIFO.N].n >= m.cfg.FIFODepth {
			return hazard{kind: hzLoadFull, reg: fifo}
		}
		// A scalar load request must not interleave with an input
		// stream still issuing into the same FIFO: its datum would land
		// between stream elements and corrupt the queue order.  The
		// hardware holds the load until the SCU has issued its last
		// element.
		if m.inputStreamIssuing(i.MemClass, i.FIFO.N) {
			return hazard{kind: hzLoadStream, reg: fifo}
		}
	}
	return hazard{}
}
