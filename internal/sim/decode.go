package sim

import (
	"fmt"
	"math"

	"wmstream/internal/rtl"
)

// The decode cache pre-resolves, once at machine construction,
// everything the engines used to recompute from the instruction's
// expression tree on every issue attempt: operand lists with their
// pipeline stages, FIFO read counts, result latencies, and a flat
// postfix program per expression so evaluation stops re-switching on
// AST shape.  The hot loop then works exclusively on flat arrays.

// evalOp is one opcode of a compiled expression program.
type evalOp uint8

const (
	eoConst       evalOp = iota // push bits
	eoReg                       // push a scalar register
	eoFIFO                      // dequeue an input FIFO
	eoBinInt                    // integer binary op
	eoBinFloat                  // float binary op (non-relational)
	eoBinFloatRel               // float relational op (integer result)
	eoUnInt                     // integer unary op
	eoUnFloat                   // float unary op
	eoCvtIF                     // int -> float conversion
	eoCvtFI                     // float -> int conversion
	eoFail                      // machine fault with a pre-formatted message
)

// evalStep is one step of a compiled expression program.
type evalStep struct {
	op   evalOp
	rop  rtl.Op    // eoBin*/eoUn*
	cls  rtl.Class // eoReg/eoFIFO: register class
	n    int       // eoReg/eoFIFO: register number
	bits uint64    // eoConst
	msg  string    // fault text for eoFail and for failing operators
}

type eprog []evalStep

// fifoNeed is one input FIFO an instruction dequeues from, with the
// number of entries it consumes.
type fifoNeed struct {
	cls  rtl.Class
	n    int
	need int
}

// decoded caches the per-instruction facts consulted every cycle.
// Index-matched with Image.Code.
type decoded struct {
	ops      []operand  // scalar register operands (zero/FIFO regs filtered out)
	reads    [2][2]int  // FIFO dequeues per (class, fifo number)
	readList []fifoNeed // same, in hazard-check order
	unit     rtl.Class  // executing unit for dispatched kinds
	latency  int64      // result forwarding latency (KAssign)
	words    int        // instruction words (extra IFU fetch cycles)

	isCompare bool
	fifoWrite bool
	def       rtl.Reg // pend-tracked destination
	hasDef    bool    // def exists and is neither zero nor a FIFO

	// busyFIFO[c][n] reports that the instruction references FIFO (c,n)
	// as a load/store channel, an operand, or a destination — the facts
	// the stream-start interlock (fifoBusy) scans the queues for.
	busyFIFO [2][2]bool

	srcClass rtl.Class // class of Src (KPut formatting)

	// Compiled expression programs (nil when the field is unused).
	src, addr, base, count, stride eprog

	// Register lists for the IFU's operand-quiet checks, in evaluation
	// order with zero registers filtered out.
	srcRegs, baseRegs, countRegs, strideRegs []rtl.Reg
}

// decodeImage builds the decode cache for a linked image under the
// given machine parameters (the latencies are configuration-dependent).
func decodeImage(img *Image, cfg Config) []decoded {
	dec := make([]decoded, len(img.Code))
	for k, i := range img.Code {
		d := &dec[k]
		for _, op := range operandsOf(i) {
			if op.reg.IsZero() || op.reg.IsFIFO() {
				continue
			}
			d.ops = append(d.ops, op)
		}
		d.reads = fifoReads(i)
		for c := 0; c < 2; c++ {
			for n := 0; n < 2; n++ {
				if need := d.reads[c][n]; need > 0 {
					d.readList = append(d.readList, fifoNeed{rtl.Class(c), n, need})
				}
			}
		}
		d.unit = unitOf(i)
		d.latency = latencyOf(i, cfg)
		d.words = i.Words()
		d.isCompare = i.IsCompare()
		d.fifoWrite = i.HasFIFOWrite()
		if def, ok := i.Def(); ok && !def.IsZero() && !def.IsFIFO() {
			d.def, d.hasDef = def, true
		}
		switch i.Kind {
		case rtl.KLoad, rtl.KStore:
			d.busyFIFO[i.MemClass][i.FIFO.N] = true
		case rtl.KAssign:
			if i.Dst.IsFIFO() {
				d.busyFIFO[i.Dst.Class][i.Dst.N] = true
			}
		}
		for _, r := range i.Uses(nil) {
			if r.IsFIFO() {
				d.busyFIFO[r.Class][r.N] = true
			}
		}
		if i.Src != nil {
			d.srcClass = i.Src.Class()
		}
		d.src = compileExpr(i.Src, img)
		d.addr = compileExpr(i.Addr, img)
		d.base = compileExpr(i.Base, img)
		d.count = compileExpr(i.Count, img)
		d.stride = compileExpr(i.Stride, img)
		d.srcRegs = quietList(i.Src)
		d.baseRegs = quietList(i.Base)
		d.countRegs = quietList(i.Count)
		d.strideRegs = quietList(i.Stride)
	}
	return dec
}

// quietList lists the registers the IFU must see quiet before touching
// the expression, in order, zero registers excluded.
func quietList(e rtl.Expr) []rtl.Reg {
	if e == nil {
		return nil
	}
	var out []rtl.Reg
	rtl.ExprRegs(e, func(r rtl.Reg) {
		if !r.IsZero() {
			out = append(out, r)
		}
	})
	return out
}

// compileExpr flattens an expression tree to postfix.  The program
// replicates the recursive evaluator exactly: left-to-right operand
// order (so FIFO dequeues interleave identically), lazy faults (an
// unknown symbol or illegal Mem operand faults only when evaluation
// reaches it, after the side effects of anything evaluated before it),
// and the reference fault messages, pre-formatted here so the hot path
// never touches fmt.
func compileExpr(e rtl.Expr, img *Image) eprog {
	if e == nil {
		return nil
	}
	return appendExpr(nil, e, img)
}

func appendExpr(p eprog, e rtl.Expr, img *Image) eprog {
	switch x := e.(type) {
	case rtl.RegX:
		r := x.Reg
		switch {
		case r.IsZero():
			return append(p, evalStep{op: eoConst})
		case r.IsFIFO():
			return append(p, evalStep{op: eoFIFO, cls: r.Class, n: r.N,
				msg: fmt.Sprintf("FIFO %s read with no available data", r)})
		default:
			return append(p, evalStep{op: eoReg, cls: r.Class, n: r.N})
		}
	case rtl.Imm:
		return append(p, evalStep{op: eoConst, bits: uint64(x.V)})
	case rtl.FImm:
		return append(p, evalStep{op: eoConst, bits: math.Float64bits(x.V)})
	case rtl.Sym:
		addr, ok := img.Globals[x.Name]
		if !ok {
			return append(p, evalStep{op: eoFail,
				msg: fmt.Sprintf("unknown symbol %q", x.Name)})
		}
		return append(p, evalStep{op: eoConst, bits: uint64(addr + x.Off)})
	case rtl.Bin:
		p = appendExpr(p, x.L, img)
		p = appendExpr(p, x.R, img)
		if x.L.Class() == rtl.Float {
			op := eoBinFloat
			if x.Op.IsRelational() {
				op = eoBinFloatRel
			}
			return append(p, evalStep{op: op, rop: x.Op,
				msg: fmt.Sprintf("float op %s failed (division by zero?)", x.Op)})
		}
		return append(p, evalStep{op: eoBinInt, rop: x.Op,
			msg: fmt.Sprintf("int op %s failed (division by zero or bad shift)", x.Op)})
	case rtl.Un:
		p = appendExpr(p, x.X, img)
		if x.X.Class() == rtl.Float {
			return append(p, evalStep{op: eoUnFloat, rop: x.Op,
				msg: fmt.Sprintf("bad float unary %s", x.Op)})
		}
		return append(p, evalStep{op: eoUnInt, rop: x.Op,
			msg: fmt.Sprintf("bad int unary %s", x.Op)})
	case rtl.Cvt:
		p = appendExpr(p, x.X, img)
		if x.To == rtl.Float && x.X.Class() == rtl.Int {
			return append(p, evalStep{op: eoCvtIF})
		}
		if x.To == rtl.Int && x.X.Class() == rtl.Float {
			return append(p, evalStep{op: eoCvtFI})
		}
		return p // same-class conversion passes through
	case rtl.Mem:
		// Faults without evaluating the address, like the reference.
		return append(p, evalStep{op: eoFail,
			msg: fmt.Sprintf("memory operand %s in WM code (run legalization)", x)})
	}
	return append(p, evalStep{op: eoFail, msg: fmt.Sprintf("cannot evaluate %T", e)})
}

// latencyOf returns the cycles after issue at which the result becomes
// available to inner operands of later instructions.
func latencyOf(i *rtl.Instr, cfg Config) int64 {
	base := int64(2)
	extra := int64(0)
	if i.Src != nil {
		rtl.WalkExpr(i.Src, func(e rtl.Expr) {
			switch x := e.(type) {
			case rtl.Bin:
				if x.Op == rtl.Div || x.Op == rtl.Rem {
					extra = maxI64(extra, int64(cfg.DivLatency))
				}
			case rtl.Un:
				if x.Op >= rtl.Sqrt {
					extra = maxI64(extra, int64(cfg.MathLatency))
				}
			case rtl.Cvt:
				extra = maxI64(extra, int64(cfg.CvtLatency))
			}
		})
	}
	return base + extra
}
