// Package cli holds the small bits shared by the wmstream command-line
// binaries: uniform rendering of simulator faults so every tool that
// can hit a deadlock or trap reports it the same way, with the machine
// snapshot, before exiting nonzero.
package cli

import (
	"errors"
	"fmt"
	"strings"

	"wmstream/internal/sim"
)

// RenderError formats err for stderr under the given tool name.
// Simulator deadlocks and traps get the full machine snapshot —
// which unit is blocked, on which FIFO, and what it was trying to
// issue; anything else renders as "tool: err".
func RenderError(tool string, err error) string {
	var dl *sim.DeadlockError
	var tr *sim.TrapError
	switch {
	case errors.As(err, &dl):
		return fmt.Sprintf("%s: deadlock at cycle %d\n%s", tool, dl.Snapshot.Cycle, indent(dl.Snapshot.String()))
	case errors.As(err, &tr):
		return fmt.Sprintf("%s: trap at cycle %d: %s\n%s", tool, tr.Snapshot.Cycle, tr.Reason, indent(tr.Snapshot.String()))
	default:
		return fmt.Sprintf("%s: %v", tool, err)
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
