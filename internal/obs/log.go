package obs

import (
	"context"
	"log/slog"
)

// LogHandler is a slog.Handler wrapper that stamps every record whose
// context carries an active span with trace and span IDs, so request
// and job-transition log lines correlate with /debug/traces without
// per-call-site plumbing.  Callers log through the Context variants
// (InfoContext, LogAttrs, ...) with the request context; records
// without a span pass through untouched.
type LogHandler struct {
	inner slog.Handler
}

// WrapHandler wraps h; a nil h yields a nil-safe no-op wrap of the
// default handler.
func WrapHandler(h slog.Handler) *LogHandler {
	if h == nil {
		h = slog.Default().Handler()
	}
	return &LogHandler{inner: h}
}

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := FromContext(ctx); sp != nil {
		rec.AddAttrs(
			slog.String("trace", sp.Trace().ID().String()),
			slog.String("span", sp.ID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
