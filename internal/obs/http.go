package obs

import (
	"encoding/json"
	"net/http"
)

// HTTP surface of the collector: the serving layer mounts these on its
// mux (and optionally on a private -debug-addr listener alongside
// net/http/pprof).

// HandleIndex serves GET /debug/traces: the JSON index of live,
// recently completed, and retained slow/errored traces.
func (c *Collector) HandleIndex(w http.ResponseWriter, r *http.Request) {
	if c == nil {
		http.Error(w, `{"error":"tracing disabled"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Index())
}

// HandleGet serves GET /debug/traces/{id}: the full span tree as JSON,
// or, with ?format=perfetto, as a Chrome trace-event file that loads in
// Perfetto with service spans and simulator unit cycles on one
// timeline.
func (c *Collector) HandleGet(w http.ResponseWriter, r *http.Request) {
	t := c.Get(r.PathValue("id"))
	if t == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such trace: " + r.PathValue("id")})
		return
	}
	snap := t.Snapshot()
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace-`+snap.TraceID+`.json"`)
		WritePerfetto(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
