package obs

import (
	"fmt"
	"io"

	"wmstream/internal/telemetry"
)

// WritePerfetto renders a trace snapshot as Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load), reusing the
// telemetry package's builder so service traces use the same idiom —
// and mix cleanly with — the simulator's cycle-level traces:
//
//   - service spans land on telemetry.PidService, one thread row per
//     tree depth, timestamps in microseconds since the trace start;
//   - bridged compile-pass spans land on telemetry.PidCompile;
//   - sim spans carrying UnitCycles additionally expand into one
//     thread row per functional unit on telemetry.PidSim, with
//     issued/stall/idle segments scaled into the span's wall-clock
//     extent, so a request's service timeline and its simulation's
//     unit attribution render on one timeline.
func WritePerfetto(w io.Writer, snap TraceSnapshot) error {
	tr := telemetry.NewTrace()
	tr.ProcessName(telemetry.PidService, "wmserved: "+snap.Name+" ["+snap.TraceID+"]")

	depth := spanDepths(snap)
	maxDepth := 0
	hasCompile := false
	for i, sp := range snap.Spans {
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		if sp.Kind == "compile" {
			hasCompile = true
		}
	}
	for d := 0; d <= maxDepth; d++ {
		name := "request"
		if d > 0 {
			name = fmt.Sprintf("depth %d", d)
		}
		tr.ThreadName(telemetry.PidService, d, name)
	}
	if hasCompile {
		tr.ProcessName(telemetry.PidCompile, "wm compiler")
		tr.ThreadName(telemetry.PidCompile, 1, "passes")
	}

	simTid := 0
	for i, sp := range snap.Spans {
		name := sp.Name
		if sp.Error != "" {
			name += " [error]"
		}
		switch sp.Kind {
		case "compile":
			tr.Span(telemetry.PidCompile, 1, sp.StartUs, sp.DurUs, name)
		default:
			tr.Span(telemetry.PidService, depth[i], sp.StartUs, sp.DurUs, name)
		}
		if len(sp.Units) > 0 {
			if simTid == 0 {
				tr.ProcessName(telemetry.PidSim, "wm simulator (per-run attribution)")
			}
			simTid = emitUnits(tr, sp, simTid)
		}
	}
	_, err := tr.WriteTo(w)
	return err
}

// emitUnits lays one sim span's per-unit cycle attribution as
// proportional segments across the span's wall-clock extent, one
// thread row per unit.  Returns the next free sim tid.
func emitUnits(tr *telemetry.Trace, sp SpanSnapshot, tid int) int {
	for _, u := range sp.Units {
		total := u.Issued + u.Idle
		for _, st := range u.Stalls {
			total += st.Cycles
		}
		if total <= 0 {
			continue
		}
		tr.ThreadName(telemetry.PidSim, tid, u.Unit)
		ts := sp.StartUs
		emit := func(name string, cycles int64) {
			if cycles <= 0 {
				return
			}
			dur := sp.DurUs * cycles / total
			tr.Span(telemetry.PidSim, tid, ts, dur,
				fmt.Sprintf("%s (%d cycles)", name, cycles))
			ts += dur
		}
		emit("issued", u.Issued)
		for _, st := range u.Stalls {
			emit("stall:"+st.Cause, st.Cycles)
		}
		emit("idle", u.Idle)
		tid++
	}
	return tid
}

// spanDepths computes each span's depth in the tree (root = 0;
// orphaned parents — e.g. dropped spans — count as depth 1).
func spanDepths(snap TraceSnapshot) []int {
	byID := make(map[string]int, len(snap.Spans))
	for i, sp := range snap.Spans {
		byID[sp.SpanID] = i
	}
	depth := make([]int, len(snap.Spans))
	for i := range snap.Spans {
		d, at := 0, i
		for snap.Spans[at].ParentID != "" {
			p, ok := byID[snap.Spans[at].ParentID]
			if !ok {
				d++
				break
			}
			at = p
			d++
			if d > len(snap.Spans) { // cycle guard; cannot happen
				break
			}
		}
		depth[i] = d
	}
	return depth
}
