package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundtrip(t *testing.T) {
	id := NewTraceID()
	span := NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(id, span, sampled)
		if len(h) != 55 {
			t.Fatalf("header %q is %d chars, want 55", h, len(h))
		}
		gid, gparent, gsampled, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) not ok", h)
		}
		if gid != id || gparent != span || gsampled != sampled {
			t.Fatalf("roundtrip mismatch: got %v %v %v", gid, gparent, gsampled)
		}
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), NewSpanID(), true)
	cases := map[string]string{
		"empty":            "",
		"short":            valid[:54],
		"reserved version": "ff" + valid[2:],
		"bad version hex":  "zz" + valid[2:],
		"zero trace id":    "00-00000000000000000000000000000000-" + valid[36:],
		"zero parent":      valid[:36] + "0000000000000000-01",
		"bad flags":        valid[:53] + "zz",
		"uppercase hex":    strings.ToUpper(valid),
		"wrong separator":  valid[:35] + "_" + valid[36:],
		"v00 with suffix":  valid + "-extra",
	}
	for name, h := range cases {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
	// Future versions may carry extra dash-separated fields.
	future := "cc" + valid[2:] + "-extrafield"
	if _, _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future version %q rejected, want accept", future)
	}
}

func TestParseTraceIDErrors(t *testing.T) {
	for _, s := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, err := ParseTraceID(s); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", s)
		}
	}
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID roundtrip: %v, %v", got, err)
	}
}

// TestNilSafety drives every span and trace method through nil
// receivers: instrumented code paths must not care whether tracing is
// on.
func TestNilSafety(t *testing.T) {
	var sp *Span
	child := sp.StartChild("x")
	if child != nil {
		t.Fatal("nil span returned non-nil child")
	}
	sp.AddChildAt("y", KindCompile, time.Now(), time.Millisecond)
	sp.SetKind(KindSim)
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetError("boom")
	sp.SetUnits([]UnitCycles{{Unit: "alu"}})
	sp.End()
	sp.EndErr(nil)
	if sp.Trace() != nil || !sp.ID().IsZero() || sp.IsRoot() || !sp.StartTime().IsZero() {
		t.Fatal("nil span accessors returned non-zero values")
	}

	var tr *Trace
	tr.SetBusy(time.Second)
	tr.Finish()
	if !tr.ID().IsZero() || tr.Root() != nil || tr.DurationsByName() != nil {
		t.Fatal("nil trace accessors returned non-zero values")
	}

	var c *Collector
	if ct, cs := c.Start("x", TraceID{}, SpanID{}); ct != nil || cs != nil {
		t.Fatal("nil collector started a trace")
	}
	if c.Get("x") != nil || c.SlowThreshold() != 0 {
		t.Fatal("nil collector lookup misbehaved")
	}
	c.Index()
	c.Stats()
	c.SlowTraces(5)

	// A context without a span yields a nil (no-op) span.
	ctx, s2 := StartSpan(context.Background(), "x")
	if s2 != nil || FromContext(ctx) != nil {
		t.Fatal("span materialized from empty context")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr, root := NewTrace("req", TraceID{}, SpanID{})
	if !root.IsRoot() {
		t.Fatal("root is not root")
	}
	a := root.StartChild("compile")
	a.SetKind(KindCompile)
	a.SetAttr("level", "2")
	a.End()
	b := root.StartChild("sim")
	b.SetError("divide by zero")
	b.End()
	root.AddChildAt("pass:parse", KindCompile, tr.Start(), 2*time.Millisecond)
	tr.SetBusy(7 * time.Millisecond)
	tr.Finish()

	snap := tr.Snapshot()
	if !snap.Finished || snap.Error != "" {
		t.Fatalf("root-level snapshot wrong: finished=%v err=%q", snap.Finished, snap.Error)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	if snap.Name != "req" || snap.BusyUs != 7000 {
		t.Fatalf("name=%q busy=%d", snap.Name, snap.BusyUs)
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["compile"].Kind != "compile" || byName["compile"].Attrs["level"] != "2" {
		t.Fatalf("compile span: %+v", byName["compile"])
	}
	if byName["sim"].Error != "divide by zero" {
		t.Fatalf("sim span error: %+v", byName["sim"])
	}
	if byName["pass:parse"].DurUs != 2000 {
		t.Fatalf("bridged span dur %d, want 2000", byName["pass:parse"].DurUs)
	}
	if byName["compile"].ParentID != root.ID().String() {
		t.Fatalf("compile parent %q, want root %q", byName["compile"].ParentID, root.ID())
	}

	// Finished traces drop new spans and a second Finish is a no-op.
	if late := root.StartChild("late"); late != nil {
		t.Fatal("span started after Finish")
	}
	tr.Finish()
}

func TestTraceMaxSpans(t *testing.T) {
	tr, root := NewTrace("req", TraceID{}, SpanID{})
	tr.maxSpans = 4
	for i := 0; i < 10; i++ {
		root.StartChild("c").End()
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 4 || snap.DroppedSpans != 7 {
		t.Fatalf("spans=%d dropped=%d, want 4/7", len(snap.Spans), snap.DroppedSpans)
	}
}

func TestDurationsByName(t *testing.T) {
	tr, root := NewTrace("req", TraceID{}, SpanID{})
	start := tr.Start()
	root.AddChildAt("compile", KindCompile, start, 3*time.Millisecond)
	root.AddChildAt("compile", KindCompile, start, 2*time.Millisecond)
	root.AddChildAt("sim", KindSim, start, 5*time.Millisecond)
	open := root.StartChild("open") // never ended: excluded
	_ = open
	d := tr.DurationsByName()
	if d["compile"] != 5*time.Millisecond || d["sim"] != 5*time.Millisecond {
		t.Fatalf("durations %v", d)
	}
	if _, ok := d["open"]; ok {
		t.Fatal("open span contributed a duration")
	}
}

func TestCollectorRetention(t *testing.T) {
	c := NewCollector(CollectorOptions{
		Ring:          4,
		SlowRing:      16,
		HeadRate:      2,
		SlowThreshold: 10 * time.Millisecond,
	})

	// Fast, clean traces: head-sampled 1 in 2.
	var fastIDs []string
	for i := 0; i < 4; i++ {
		tr, _ := c.Start("fast", TraceID{}, SpanID{})
		tr.SetBusy(time.Millisecond)
		fastIDs = append(fastIDs, tr.ID().String())
		tr.Finish()
	}
	// A slow trace and an errored trace always survive.
	slow, _ := c.Start("slow", TraceID{}, SpanID{})
	slow.SetBusy(50 * time.Millisecond)
	slow.Finish()
	errored, eroot := c.Start("errored", TraceID{}, SpanID{})
	errored.SetBusy(time.Millisecond)
	eroot.SetError("exploded")
	errored.Finish()

	st := c.Stats()
	if st.Started != 6 || st.Finished != 6 {
		t.Fatalf("stats %+v", st)
	}
	if st.KeptSlow != 2 {
		t.Fatalf("kept slow %d, want 2 (slow + errored)", st.KeptSlow)
	}
	if st.KeptHead != 2 || st.Discarded != 2 {
		t.Fatalf("head sampling: kept %d discarded %d, want 2/2", st.KeptHead, st.Discarded)
	}

	if c.Get(slow.ID().String()) == nil || c.Get(errored.ID().String()) == nil {
		t.Fatal("slow/errored trace not retrievable")
	}
	kept := 0
	for _, id := range fastIDs {
		if c.Get(id) != nil {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("%d fast traces retained, want 2", kept)
	}

	idx := c.Index()
	if len(idx.Slow) != 2 || len(idx.Recent) != 2 || len(idx.Active) != 0 {
		t.Fatalf("index sizes slow=%d recent=%d active=%d", len(idx.Slow), len(idx.Recent), len(idx.Active))
	}
	if rows := c.SlowTraces(1); len(rows) != 1 || rows[0].Name != "errored" {
		t.Fatalf("SlowTraces(1) = %+v, want newest-first errored", rows)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := NewCollector(CollectorOptions{Ring: 2, SlowThreshold: time.Hour})
	var ids []string
	for i := 0; i < 5; i++ {
		tr, _ := c.Start("t", TraceID{}, SpanID{})
		ids = append(ids, tr.ID().String())
		tr.Finish()
	}
	for _, id := range ids[:3] {
		if c.Get(id) != nil {
			t.Fatalf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[3:] {
		if c.Get(id) == nil {
			t.Fatalf("recent trace %s evicted early", id)
		}
	}
}

func TestCollectorActiveVisible(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	tr, _ := c.Start("live", TraceID{}, SpanID{})
	if c.Get(tr.ID().String()) != tr {
		t.Fatal("live trace not visible")
	}
	idx := c.Index()
	if len(idx.Active) != 1 || !idx.Active[0].Active {
		t.Fatalf("index active: %+v", idx.Active)
	}
	tr.Finish()
	if c.Stats().Active != 0 {
		t.Fatal("finished trace still counted active")
	}
}

func TestContextPropagation(t *testing.T) {
	tr, root := NewTrace("req", TraceID{}, SpanID{})
	ctx := ContextWith(context.Background(), root)
	ctx2, child := StartSpan(ctx, "stage")
	if child == nil || FromContext(ctx2) != child {
		t.Fatal("StartSpan did not thread the child")
	}
	if child.Trace() != tr {
		t.Fatal("child belongs to the wrong trace")
	}
	child.End()
	tr.Finish()
}

// TestPerfettoSchema validates the Chrome trace-event export: valid
// JSON, service spans on PidService, sim unit segments on PidSim, and
// bridged compile passes on PidCompile.
func TestPerfettoSchema(t *testing.T) {
	tr, root := NewTrace("run", TraceID{}, SpanID{})
	start := tr.Start()
	c := root.AddChildAt("compile", KindCompile, start, 4*time.Millisecond)
	c.SetAttr("level", "2")
	root.AddChildAt("pass:parse", KindCompile, start, 2*time.Millisecond)
	sim := root.AddChildAt("sim.slice", KindSim, start.Add(4*time.Millisecond), 6*time.Millisecond)
	sim.SetUnits([]UnitCycles{{
		Unit:   "alu",
		Issued: 70,
		Idle:   10,
		Stalls: []CauseCycles{{Cause: "raw", Cycles: 20}},
	}})
	tr.Finish()

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Ts   int64           `json:"ts"`
			Dur  int64           `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v\n%s", err, buf.String())
	}
	pids := map[int]int{}
	var sawIssued, sawStall bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid]++
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("negative ts/dur in %+v", ev)
		}
		if strings.HasPrefix(ev.Name, "issued") {
			sawIssued = true
		}
		if strings.HasPrefix(ev.Name, "stall:raw") {
			sawStall = true
		}
	}
	// 3 = service, 1 = compile, 2 = sim (telemetry pid conventions).
	for _, pid := range []int{1, 2, 3} {
		if pids[pid] == 0 {
			t.Fatalf("no complete events on pid %d: %v", pid, pids)
		}
	}
	if !sawIssued || !sawStall {
		t.Fatalf("unit segments missing: issued=%v stall=%v", sawIssued, sawStall)
	}
}

func TestLogHandlerAddsTraceAttrs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(WrapHandler(slog.NewTextHandler(&buf, nil)))

	tr, root := NewTrace("req", TraceID{}, SpanID{})
	ctx := ContextWith(context.Background(), root)
	logger.InfoContext(ctx, "with span")
	logger.Info("without span")
	tr.Finish()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines", len(lines))
	}
	if !strings.Contains(lines[0], "trace="+tr.ID().String()) ||
		!strings.Contains(lines[0], "span="+root.ID().String()) {
		t.Fatalf("traced line missing IDs: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace=") {
		t.Fatalf("untraced line gained a trace attr: %s", lines[1])
	}
}
