// Package obs is the request-scoped tracing and live-introspection
// subsystem of the serving layer: a lightweight span model (trace ID +
// span ID, W3C traceparent accepted inbound and emitted outbound)
// threaded through context.Context across every serve path, a bounded
// in-memory ring of completed traces with head sampling plus tail-keep
// for slow or errored requests (collector.go), Chrome trace-event
// export reusing internal/telemetry's builder so service spans and
// simulator unit cycles render on one Perfetto timeline (perfetto.go),
// debug HTTP handlers (http.go), and a slog.Handler wrapper that stamps
// every log line with the active trace ID (log.go).
//
// Everything is nil-safe: a nil *Span (no trace in the context, or a
// span dropped by the per-trace cap) accepts every method as a no-op,
// so instrumented paths pay one nil check when tracing is off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request or job trace (the W3C
// trace-id: 16 bytes, rendered as 32 lowercase hex digits).
type TraceID [16]byte

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: reading random trace id: " + err.Error())
		}
	}
	return id
}

// NewSpanID returns a random, non-zero span ID (exported for clients
// — the load generator — that mint their own traceparent headers).
func NewSpanID() SpanID { return newSpanID() }

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: reading random span id: " + err.Error())
		}
	}
	return id
}

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: bad trace id: %w", err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("obs: all-zero trace id is invalid")
	}
	return id, nil
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").  Unknown
// versions are accepted per the spec (except the reserved "ff");
// malformed headers report ok=false.  sampled is bit 0 of the flags.
func ParseTraceparent(h string) (id TraceID, parent SpanID, sampled, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, parent, false, false
	}
	ver := h[:2]
	if !isHex(ver) || ver == "ff" {
		return id, parent, false, false
	}
	// Version 00 is exactly 55 chars; future versions may append fields
	// after another dash.
	if len(h) > 55 && (ver == "00" || h[55] != '-') {
		return id, parent, false, false
	}
	tid, perr := ParseTraceID(h[3:35])
	if perr != nil {
		return id, parent, false, false
	}
	if !isHex(h[36:52]) {
		return id, parent, false, false
	}
	hex.Decode(parent[:], []byte(h[36:52]))
	if parent.IsZero() {
		return id, parent, false, false
	}
	flags := h[53:55]
	if !isHex(flags) {
		return id, parent, false, false
	}
	var f [1]byte
	hex.Decode(f[:], []byte(flags))
	return tid, parent, f[0]&1 == 1, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(id TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + id.String() + "-" + span.String() + "-" + flags
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// Kind classifies a span for timeline rendering: service spans are the
// serving pipeline's own work, compile spans are bridged per-pass
// compiler times, sim spans are simulator execution slices.
type Kind uint8

const (
	KindService Kind = iota
	KindCompile
	KindSim
)

func (k Kind) String() string {
	switch k {
	case KindCompile:
		return "compile"
	case KindSim:
		return "sim"
	default:
		return "service"
	}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// CauseCycles is one stall cause's cycle count within a UnitCycles.
type CauseCycles struct {
	Cause  string `json:"cause"`
	Cycles int64  `json:"cycles"`
}

// UnitCycles is one functional unit's cycle attribution, attached to a
// sim span so the Perfetto export can render the unit timeline
// alongside the service spans.  Stalls are in a deterministic order.
type UnitCycles struct {
	Unit   string        `json:"unit"`
	Issued int64         `json:"issued"`
	Idle   int64         `json:"idle"`
	Stalls []CauseCycles `json:"stalls,omitempty"`
}

// DefaultMaxSpans bounds the spans one trace retains; spans started
// beyond it are counted as dropped rather than recorded, so a runaway
// job cannot grow a trace without bound.
const DefaultMaxSpans = 512

// Trace is one request's (or job's) span tree.  Spans are recorded in
// start order; spans[0] is the root.  All span mutation goes through
// the trace mutex, so spans may be started and ended from any
// goroutine (the job tier ends queue-wait spans from workers).
type Trace struct {
	id     TraceID
	remote bool // the trace ID arrived in an inbound traceparent
	parent SpanID

	mu       sync.Mutex
	start    time.Time
	spans    []*Span
	dropped  int
	maxSpans int
	busy     time.Duration // service time excluding long-poll waits
	finished bool
	onFinish func(*Trace)
}

// Span is one timed operation within a trace.  The zero of *Span (nil)
// is a valid no-op target for every method.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	kind   Kind
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
	errMsg string
	units  []UnitCycles
}

// NewTrace builds a free-standing trace (not registered with any
// collector) plus its root span.  id may be zero to allocate a fresh
// one; parent is the inbound traceparent's span ID (zero for locally
// originated traces).
func NewTrace(name string, id TraceID, parent SpanID) (*Trace, *Span) {
	remote := !id.IsZero()
	if id.IsZero() {
		id = NewTraceID()
	}
	t := &Trace{
		id:       id,
		remote:   remote,
		parent:   parent,
		start:    time.Now(),
		maxSpans: DefaultMaxSpans,
	}
	root := &Span{tr: t, id: newSpanID(), parent: parent, name: name, start: t.start}
	t.spans = append(t.spans, root)
	return t, root
}

// ID is the trace's identifier.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Start reports when the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	return t.spans[0]
}

// SetBusy records the trace's service time excluding intentional waits
// (long-poll parking); the collector classifies slowness on it instead
// of the raw duration when set.
func (t *Trace) SetBusy(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.busy = d
	t.mu.Unlock()
}

// startSpan allocates and records a child span.  Caller must not hold
// t.mu.
func (t *Trace) startSpan(parent SpanID, name string, kind Kind, start time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished || len(t.spans) >= t.maxSpans {
		t.dropped++
		return nil
	}
	s := &Span{tr: t, id: newSpanID(), parent: parent, kind: kind, name: name, start: start}
	t.spans = append(t.spans, s)
	return s
}

// StartChild opens a new span under s.  Nil-safe: a nil receiver (or a
// dropped span) returns nil, which is itself a valid no-op span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.id, name, KindService, time.Now())
}

// AddChildAt records an already-measured child span (the bridge for
// per-pass compile times, which are known only after the compilation
// returns).  Nil-safe.
func (s *Span) AddChildAt(name string, kind Kind, start time.Time, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.startSpan(s.id, name, kind, start)
	if c != nil {
		c.tr.mu.Lock()
		c.end = start.Add(dur)
		c.tr.mu.Unlock()
	}
	return c
}

// Trace returns the span's owning trace (nil for a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// ID returns the span's identifier (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// StartTime reports when the span started (zero for a nil span).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// IsRoot reports whether s is its trace's root span.
func (s *Span) IsRoot() bool {
	if s == nil {
		return false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return len(s.tr.spans) > 0 && s.tr.spans[0] == s
}

// SetKind reclassifies the span for timeline rendering.
func (s *Span) SetKind(k Kind) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.kind = k
	s.tr.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// SetError marks the span (and therefore the trace) as errored.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.tr.mu.Lock()
	s.errMsg = msg
	s.tr.mu.Unlock()
}

// SetUnits attaches per-unit cycle attribution to the span (sim spans
// only; rendered as unit tracks by the Perfetto export).
func (s *Span) SetUnits(u []UnitCycles) {
	if s == nil || len(u) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.units = u
	s.tr.mu.Unlock()
}

// End closes the span.  Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// EndErr closes the span, recording err (when non-nil) as its error.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetError(err.Error())
	}
	s.End()
}

// Finish closes the trace: any still-open span (including the root) is
// ended, and the trace is handed to its collector exactly once.
// Further StartChild calls are dropped.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	now := time.Now()
	for _, s := range t.spans {
		if s.end.IsZero() {
			s.end = now
		}
	}
	done := t.onFinish
	t.mu.Unlock()
	if done != nil {
		done(t)
	}
}

// SpanSnapshot is the JSON form of one span.
type SpanSnapshot struct {
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Kind     string            `json:"kind,omitempty"` // omitted for service spans
	StartUs  int64             `json:"start_us"`       // microseconds since trace start
	DurUs    int64             `json:"dur_us"`
	Open     bool              `json:"open,omitempty"` // still running at snapshot time
	Attrs    map[string]string `json:"attrs,omitempty"`
	Error    string            `json:"error,omitempty"`
	Units    []UnitCycles      `json:"units,omitempty"`
}

// TraceSnapshot is the JSON form of a whole trace, the body of
// GET /debug/traces/{id}.
type TraceSnapshot struct {
	TraceID      string         `json:"trace_id"`
	Name         string         `json:"name"`
	Remote       bool           `json:"remote,omitempty"` // trace ID arrived via traceparent
	ParentSpan   string         `json:"parent_span,omitempty"`
	Start        time.Time      `json:"start"`
	DurUs        int64          `json:"dur_us"`
	BusyUs       int64          `json:"busy_us,omitempty"`
	Finished     bool           `json:"finished"`
	Error        string         `json:"error,omitempty"`
	DroppedSpans int            `json:"dropped_spans,omitempty"`
	Spans        []SpanSnapshot `json:"spans"`
}

// Snapshot renders the trace's current state.  Safe to call on live
// traces (open spans report their duration so far, marked Open).
func (t *Trace) Snapshot() TraceSnapshot {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		TraceID:      t.id.String(),
		Remote:       t.remote,
		Start:        t.start,
		BusyUs:       t.busy.Microseconds(),
		Finished:     t.finished,
		DroppedSpans: t.dropped,
	}
	if !t.parent.IsZero() {
		snap.ParentSpan = t.parent.String()
	}
	var last time.Time
	for i, s := range t.spans {
		ss := SpanSnapshot{
			SpanID:  s.id.String(),
			Name:    s.name,
			StartUs: s.start.Sub(t.start).Microseconds(),
			Error:   s.errMsg,
		}
		if s.kind != KindService {
			ss.Kind = s.kind.String()
		}
		if !s.parent.IsZero() && s.parent != t.parent {
			ss.ParentID = s.parent.String()
		}
		end := s.end
		if end.IsZero() {
			end, ss.Open = now, true
		}
		ss.DurUs = end.Sub(s.start).Microseconds()
		if end.After(last) {
			last = end
		}
		if len(s.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		ss.Units = s.units
		if i == 0 {
			snap.Name = s.name
			snap.Error = s.errMsg
		}
		snap.Spans = append(snap.Spans, ss)
	}
	if last.After(t.start) {
		snap.DurUs = last.Sub(t.start).Microseconds()
	}
	return snap
}

// DurationsByName sums completed spans' durations per span name — the
// source of the Server-Timing response header's per-stage breakdown.
func (t *Trace) DurationsByName() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, s := range t.spans {
		if !s.end.IsZero() {
			out[s.name] += s.end.Sub(s.start)
		}
	}
	return out
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the active span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of ctx's active span and returns a context
// carrying the child.  Without an active span it returns ctx unchanged
// and a nil (no-op) span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWith(ctx, sp), sp
}
