package obs

import (
	"sort"
	"sync"
	"time"
)

// CollectorOptions configures trace retention.
type CollectorOptions struct {
	// Ring caps the completed-trace ring (default 256; 0 uses the
	// default, negative disables collection entirely).
	Ring int
	// SlowRing caps the slow/errored tail-keep ring (default Ring/4,
	// minimum 16).
	SlowRing int
	// HeadRate keeps 1 in HeadRate ordinary completed traces in the
	// ring (default 1: keep every trace until the ring evicts it).
	// Slow and errored traces bypass head sampling entirely.
	HeadRate int
	// SlowThreshold classifies a trace as slow by its busy time (its
	// duration minus intentional long-poll waits); slow traces are
	// always kept (default 500ms).
	SlowThreshold time.Duration
	// MaxSpans bounds spans retained per trace (default
	// DefaultMaxSpans).
	MaxSpans int
}

// CollectorStats reports the collector's lifetime accounting.
type CollectorStats struct {
	Active    int   `json:"active"`
	Started   int64 `json:"started"`
	Finished  int64 `json:"finished"`
	KeptHead  int64 `json:"kept_head"`
	KeptSlow  int64 `json:"kept_slow"`
	Discarded int64 `json:"discarded"` // finished, sampled out
}

// Collector owns every live trace and two bounded rings of completed
// ones: "recent" receives head-sampled ordinary traces, "slow" always
// receives traces over the slow threshold or carrying an error, so
// tail latency and failures survive even under heavy traffic that
// cycles the recent ring quickly.
type Collector struct {
	opts CollectorOptions

	mu       sync.Mutex
	active   map[TraceID]*Trace
	recent   []*Trace // ring, recentPos is the next slot
	recentN  int
	slow     []*Trace
	slowN    int
	headTick int64
	stats    CollectorStats
}

// NewCollector builds a collector.  A nil collector is valid and
// collects nothing.
func NewCollector(o CollectorOptions) *Collector {
	if o.Ring < 0 {
		return nil
	}
	if o.Ring == 0 {
		o.Ring = 256
	}
	if o.SlowRing <= 0 {
		o.SlowRing = max(o.Ring/4, 16)
	}
	if o.HeadRate <= 0 {
		o.HeadRate = 1
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 500 * time.Millisecond
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	return &Collector{
		opts:   o,
		active: make(map[TraceID]*Trace),
		recent: make([]*Trace, o.Ring),
		slow:   make([]*Trace, o.SlowRing),
	}
}

// SlowThreshold reports the configured slow-trace classification bound.
func (c *Collector) SlowThreshold() time.Duration {
	if c == nil {
		return 0
	}
	return c.opts.SlowThreshold
}

// Start begins a new trace registered with the collector.  id may be
// zero (a fresh one is allocated); parent carries the inbound
// traceparent's span ID.  A nil collector returns a nil trace and
// span, so every downstream instrumentation no-ops.
func (c *Collector) Start(name string, id TraceID, parent SpanID) (*Trace, *Span) {
	if c == nil {
		return nil, nil
	}
	t, root := NewTrace(name, id, parent)
	t.maxSpans = c.opts.MaxSpans
	t.onFinish = c.finished
	c.mu.Lock()
	c.stats.Started++
	c.active[t.id] = t
	c.mu.Unlock()
	return t, root
}

// finished is every trace's onFinish hook: retention is decided here.
func (c *Collector) finished(t *Trace) {
	snap := func() (busy time.Duration, errored bool) {
		t.mu.Lock()
		defer t.mu.Unlock()
		busy = t.busy
		if busy == 0 {
			var last time.Time
			for _, s := range t.spans {
				if s.end.After(last) {
					last = s.end
				}
			}
			busy = last.Sub(t.start)
		}
		for _, s := range t.spans {
			if s.errMsg != "" {
				errored = true
				break
			}
		}
		return busy, errored
	}
	busy, errored := snap()

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.active, t.id)
	c.stats.Finished++
	if busy >= c.opts.SlowThreshold || errored {
		c.stats.KeptSlow++
		c.slow[c.slowN%len(c.slow)] = t
		c.slowN++
		return
	}
	c.headTick++
	if c.headTick%int64(c.opts.HeadRate) == 0 {
		c.stats.KeptHead++
		c.recent[c.recentN%len(c.recent)] = t
		c.recentN++
		return
	}
	c.stats.Discarded++
}

// Get returns the trace with the given ID — live or retained — or nil.
func (c *Collector) Get(id string) *Trace {
	if c == nil {
		return nil
	}
	tid, err := ParseTraceID(id)
	if err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.active[tid]; t != nil {
		return t
	}
	for _, t := range c.recent {
		if t != nil && t.id == tid {
			return t
		}
	}
	for _, t := range c.slow {
		if t != nil && t.id == tid {
			return t
		}
	}
	return nil
}

// TraceSummary is one index row of GET /debug/traces.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	DurUs   int64     `json:"dur_us"`
	BusyUs  int64     `json:"busy_us,omitempty"`
	Spans   int       `json:"spans"`
	Error   string    `json:"error,omitempty"`
	Active  bool      `json:"active,omitempty"`
	Slow    bool      `json:"slow,omitempty"`
}

func summarize(t *Trace, active, slow bool) TraceSummary {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSummary{
		TraceID: t.id.String(),
		Start:   t.start,
		BusyUs:  t.busy.Microseconds(),
		Spans:   len(t.spans),
		Active:  active,
		Slow:    slow,
	}
	var last time.Time
	for _, sp := range t.spans {
		end := sp.end
		if end.IsZero() {
			end = now
		}
		if end.After(last) {
			last = end
		}
	}
	if last.After(t.start) {
		s.DurUs = last.Sub(t.start).Microseconds()
	}
	if len(t.spans) > 0 {
		s.Name = t.spans[0].name
		s.Error = t.spans[0].errMsg
	}
	return s
}

// Index reports every retained and live trace, newest first within
// each section.
type Index struct {
	Stats  CollectorStats `json:"stats"`
	Active []TraceSummary `json:"active,omitempty"`
	Slow   []TraceSummary `json:"slow,omitempty"`
	Recent []TraceSummary `json:"recent,omitempty"`
}

// Index snapshots the collector's contents.
func (c *Collector) Index() Index {
	if c == nil {
		return Index{}
	}
	c.mu.Lock()
	actives := make([]*Trace, 0, len(c.active))
	for _, t := range c.active {
		actives = append(actives, t)
	}
	slow := ringContents(c.slow, c.slowN)
	recent := ringContents(c.recent, c.recentN)
	stats := c.stats
	stats.Active = len(c.active)
	c.mu.Unlock()

	sort.Slice(actives, func(i, j int) bool { return actives[i].start.After(actives[j].start) })
	idx := Index{Stats: stats}
	for _, t := range actives {
		idx.Active = append(idx.Active, summarize(t, true, false))
	}
	for _, t := range slow {
		idx.Slow = append(idx.Slow, summarize(t, false, true))
	}
	for _, t := range recent {
		idx.Recent = append(idx.Recent, summarize(t, false, false))
	}
	return idx
}

// SlowTraces returns up to n retained slow/errored traces, newest
// first (the statusz page's "recent slow requests" table).
func (c *Collector) SlowTraces(n int) []TraceSummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	slow := ringContents(c.slow, c.slowN)
	c.mu.Unlock()
	var out []TraceSummary
	for _, t := range slow {
		if n > 0 && len(out) >= n {
			break
		}
		out = append(out, summarize(t, false, true))
	}
	return out
}

// Stats snapshots the collector accounting.
func (c *Collector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Active = len(c.active)
	return s
}

// ringContents returns the ring's live entries, newest first.
func ringContents(ring []*Trace, n int) []*Trace {
	var out []*Trace
	count := min(n, len(ring))
	for i := 0; i < count; i++ {
		// n is the next write position; walk backward from it.
		out = append(out, ring[((n-1-i)%len(ring)+len(ring))%len(ring)])
	}
	return out
}
