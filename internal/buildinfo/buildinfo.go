// Package buildinfo carries build-time identity shared by every
// wmstream binary.  Release builds inject the variables with
//
//	go build -ldflags "-X wmstream/internal/buildinfo.Version=v1.2.3 \
//	                   -X wmstream/internal/buildinfo.Commit=abc1234"
//
// Uninjected (plain `go build`) binaries fall back to the module
// version recorded by the Go toolchain, or "dev".
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Injected via -ldflags -X; see the package comment.
var (
	Version = ""
	Commit  = ""
	Date    = ""
)

// String renders the one-line version stamp printed by every binary's
// -version flag and reported by wmserved's /healthz.
func String() string {
	s := resolveVersion()
	if Commit != "" {
		s += " (" + Commit + ")"
	}
	if Date != "" {
		s += " built " + Date
	}
	return s
}

// resolveVersion prefers the ldflags-injected version, then the module
// build info stamped by the Go toolchain, then "dev".
func resolveVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// Print writes "<name> <stamp>" the way -version handlers expect.
func Print(name string) string {
	return fmt.Sprintf("%s %s", name, String())
}
