package bench

import (
	"bytes"
	"reflect"
	"testing"

	"wmstream/internal/sim"
)

// FuzzFastEngine compiles arbitrary Mini-C at every optimization level
// and runs whatever compiles through all three simulation engines with
// a tight cycle budget, cross-checking every observable: statistics
// (including per-unit telemetry), program output, and error text.  Any
// divergence is an accelerated-engine soundness bug — the fast engine's
// event-stepped skips and the translated engine's compiled closures
// must both be invisible.
func FuzzFastEngine(f *testing.F) {
	for _, p := range append(Programs(), Livermore5(32)) {
		f.Add(p.Source)
	}
	f.Add("int main(void) { int i; for (i = 0; i < 100; i++) ; return 0; }")
	f.Add("double a[64];\nint main(void) { int i; double s; for (i = 0; i < 64; i++) a[i] = i * 0.5; s = 0.0; for (i = 0; i < 64; i++) s = s + a[i]; putd(s); return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		for lvl := 0; lvl <= 3; lvl++ {
			p, err := Compile(Program{Name: "fuzz", Source: src}, lvl)
			if err != nil {
				continue
			}
			img, err := sim.Link(p)
			if err != nil {
				continue
			}
			exec := func(eng sim.Engine) (sim.Stats, string, string) {
				cfg := sim.DefaultConfig()
				cfg.MaxCycles = 50_000
				cfg.WatchdogSlack = 200
				cfg.Engine = eng
				var out bytes.Buffer
				cfg.Output = &out
				stats, rerr := sim.New(img, cfg).Run()
				es := ""
				if rerr != nil {
					es = rerr.Error()
				}
				return stats, out.String(), es
			}
			refStats, refOut, refErr := exec(sim.EngineReference)
			for _, e := range acceleratedEngines {
				gotStats, gotOut, gotErr := exec(e.eng)
				if refErr != gotErr {
					t.Fatalf("O%d/%s: engines disagree on error:\nreference: %s\n%-9s %s",
						lvl, e.name, refErr, e.name+":", gotErr)
				}
				if !reflect.DeepEqual(refStats, gotStats) {
					t.Fatalf("O%d/%s: engines disagree on stats:\nreference: %+v\n%-9s %+v",
						lvl, e.name, refStats, e.name+":", gotStats)
				}
				if refOut != gotOut {
					t.Fatalf("O%d/%s: engines disagree on output: %q vs %q",
						lvl, e.name, refOut, gotOut)
				}
			}
		}
	})
}
