package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"wmstream/internal/acode"
	"wmstream/internal/exec"
	"wmstream/internal/minic"
	"wmstream/internal/opt"
	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// Result is one benchmark execution.
type Result struct {
	Program string
	Level   int
	// Engine is the simulation engine that executed the run (auto
	// resolved to the engine it picks).
	Engine sim.Engine
	Stats  sim.Stats
	Output string
	// HostNS is the host wall-clock time of the simulation itself
	// (linking and running, not compilation), for tracking simulator
	// performance.
	HostNS int64
}

// expand runs the front end and the code expander, producing naive RTL
// with virtual registers — the shared first half of every Compile*
// variant.
func expand(p Program) (*rtl.Program, error) {
	ast, err := minic.Compile(p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: frontend: %w", p.Name, err)
	}
	rp, err := acode.Gen(ast)
	if err != nil {
		return nil, fmt.Errorf("%s: expand: %w", p.Name, err)
	}
	return rp, nil
}

// Compile builds a benchmark at the given optimization level.
func Compile(p Program, level int) (*rtl.Program, error) {
	return CompileOptions(p, opt.Level(level))
}

// CompileNone runs the front end and code expander only, leaving naive
// RTL with virtual registers (callers pick their own optimization
// pipeline, e.g. opt.OptimizeScalar or a custom opt.Pipeline).
func CompileNone(p Program) (*rtl.Program, error) { return expand(p) }

// CompileOptions builds with explicit optimizer options (ablations).
func CompileOptions(p Program, o opt.Options) (*rtl.Program, error) {
	rp, err := expand(p)
	if err != nil {
		return nil, err
	}
	if err := opt.Optimize(rp, o); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return rp, nil
}

// Run executes a compiled benchmark on the simulator, through the
// same execution core (internal/exec) the CLI and the serving layer
// use, so benchmark numbers measure the loop everything ships with.
func Run(rp *rtl.Program, cfg sim.Config) (sim.Stats, string, error) {
	img, err := sim.Link(rp)
	if err != nil {
		return sim.Stats{}, "", err
	}
	var out bytes.Buffer
	cfg.Output = &out
	m := sim.New(img, cfg)
	stats, err := exec.Run(context.Background(), m, exec.Options{})
	return stats, out.String(), err
}

// Measure compiles and runs one benchmark at one level with the
// default machine, timing the simulation (not the compile).
func Measure(p Program, level int) (Result, error) {
	return MeasureEngine(p, level, sim.EngineAuto)
}

// MeasureEngine is Measure on an explicit simulation engine, so
// benchmark reports can compare engine speeds on identical work.
func MeasureEngine(p Program, level int, engine sim.Engine) (Result, error) {
	rp, err := Compile(p, level)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.Engine = engine
	start := time.Now()
	stats, out, err := Run(rp, cfg)
	host := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("%s O%d: %w", p.Name, level, err)
	}
	return Result{Program: p.Name, Level: level, Engine: engine.Resolve(),
		Stats: stats, Output: out, HostNS: host.Nanoseconds()}, nil
}

// StreamingReduction measures the paper's Table II quantity for one
// program: the percent reduction in cycles executed between the
// optimized compiler without streaming (O2: standard + recurrence) and
// with streaming (O3).
func StreamingReduction(p Program) (without, with int64, pct float64, err error) {
	r2, err := Measure(p, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	r3, err := Measure(p, 3)
	if err != nil {
		return 0, 0, 0, err
	}
	if r2.Output != r3.Output {
		return 0, 0, 0, fmt.Errorf("%s: O2 output %q != O3 output %q", p.Name, r2.Output, r3.Output)
	}
	without, with = r2.Stats.Cycles, r3.Stats.Cycles
	pct = 100 * float64(without-with) / float64(without)
	return without, with, pct, nil
}
