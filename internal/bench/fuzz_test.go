package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

// TestDifferentialRandomPrograms generates random Mini-C programs and
// checks that every optimization level computes the same output — the
// strongest whole-pipeline correctness property available: any
// miscompilation by any pass shows up as a cross-level divergence.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := randomProgram(rand.New(rand.NewSource(int64(seed))))
			p := Program{Name: fmt.Sprintf("fuzz%d", seed), Source: src}
			var ref string
			for lvl := 0; lvl <= 3; lvl++ {
				r, err := Measure(p, lvl)
				if err != nil {
					t.Fatalf("O%d: %v\nprogram:\n%s", lvl, err, src)
				}
				if lvl == 0 {
					ref = r.Output
				} else if r.Output != ref {
					rp, _ := Compile(p, lvl)
					t.Fatalf("O%d output %q != O0 %q\nprogram:\n%s\nlisting:\n%s",
						lvl, r.Output, ref, src, rp.String())
				}
			}
		})
	}
}

// TestDifferentialAblatedPipelines crosses individual optimizer passes
// over a fixed set of tricky programs.
func TestDifferentialAblatedPipelines(t *testing.T) {
	tricky := []string{
		// Loop-carried dependence at distance 2 with an alias-free
		// second array.
		`
double a[64], b[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) { a[i] = i * 0.5; b[i] = i * 0.25; }
    for (i = 2; i < 64; i++) a[i] = a[i-2] + b[i];
    putd(a[63]);
    return 0;
}`,
		// Write-then-read of the same element in one iteration.
		`
int v[32];
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 32; i++) { v[i] = i * 3; s = s + v[i]; }
    puti(s);
    return 0;
}`,
		// Forward dependence (anti): must not be treated as recurrence.
		`
int v[32];
int main(void) {
    int i, s;
    for (i = 0; i < 32; i++) v[i] = i;
    for (i = 0; i < 31; i++) v[i] = v[i+1] * 2;
    s = 0;
    for (i = 0; i < 32; i++) s = s + v[i];
    puti(s);
    return 0;
}`,
		// Pointer aliasing: p aliases the global array.
		`
int g[16];
void bump(int *p, int n) {
    int i;
    for (i = 0; i < n; i++) p[i] = p[i] + 1;
}
int main(void) {
    int i, s;
    for (i = 0; i < 16; i++) g[i] = i;
    bump(g, 16);
    bump(&g[4], 8);
    s = 0;
    for (i = 0; i < 16; i++) s = s + g[i];
    puti(s);
    return 0;
}`,
		// Downward-counting loop.
		`
int v[40];
int main(void) {
    int i, s;
    for (i = 39; i >= 0; i--) v[i] = i * i;
    s = 0;
    for (i = 39; i > 0; i--) s = s + v[i] - v[i-1];
    puti(s);
    return 0;
}`,
		// Nested loops with the inner bound depending on the outer IV.
		`
int m[100];
int main(void) {
    int i, j, s;
    s = 0;
    for (i = 0; i < 10; i++)
        for (j = 0; j <= i; j++)
            m[i * 10 + j] = i + j;
    for (i = 0; i < 100; i++) s = s + m[i];
    puti(s);
    return 0;
}`,
	}
	var configs []opt.Options
	for _, std := range []bool{true} {
		for _, rec := range []bool{false, true} {
			for _, stream := range []bool{false, true} {
				for _, comb := range []bool{false, true} {
					configs = append(configs, opt.Options{
						Standard: std, Recurrence: rec, Stream: stream,
						Combine: comb, StrengthReduce: true,
						MinTrip: 4, MaxRecurrenceDegree: 4,
					})
				}
			}
		}
	}
	for tn, src := range tricky {
		p := Program{Name: fmt.Sprintf("tricky%d", tn), Source: src}
		base, err := Measure(p, 0)
		if err != nil {
			t.Fatalf("tricky%d O0: %v", tn, err)
		}
		for cn, o := range configs {
			rp, err := CompileOptions(p, o)
			if err != nil {
				t.Fatalf("tricky%d config%d: %v", tn, cn, err)
			}
			_, out, err := Run(rp, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("tricky%d config%d run: %v", tn, cn, err)
			}
			if out != base.Output {
				t.Fatalf("tricky%d config%+v: output %q != %q\n%s",
					tn, o, out, base.Output, rp.String())
			}
		}
	}
}

// randomProgram emits a random but well-defined Mini-C program: global
// int arrays, a handful of loops with random linear accesses (offsets
// kept in bounds), random arithmetic, and a final checksum.  Division
// and remainder only appear with non-zero constant divisors, so every
// program terminates and is deterministic.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	nArrays := 2 + r.Intn(2)
	size := 32 + r.Intn(64)
	for a := 0; a < nArrays; a++ {
		fmt.Fprintf(&b, "int g%d[%d];\n", a, size)
	}
	fmt.Fprintf(&b, "int main(void) {\n    int i, s;\n")
	// Initialize all arrays.
	for a := 0; a < nArrays; a++ {
		fmt.Fprintf(&b, "    for (i = 0; i < %d; i++) g%d[i] = i * %d + %d;\n",
			size, a, 1+r.Intn(7), r.Intn(13))
	}
	// Random loop nests.
	loops := 1 + r.Intn(4)
	for l := 0; l < loops; l++ {
		maxOff := 1 + r.Intn(3)
		lo := maxOff
		hi := size - maxOff
		dst := r.Intn(nArrays)
		expr := randomExpr(r, nArrays, maxOff, 3)
		fmt.Fprintf(&b, "    for (i = %d; i < %d; i++) g%d[i] = %s;\n", lo, hi, dst, expr)
	}
	// Checksum.
	fmt.Fprintf(&b, "    s = 0;\n")
	for a := 0; a < nArrays; a++ {
		fmt.Fprintf(&b, "    for (i = 0; i < %d; i++) s = s + g%d[i] %% 9973;\n", size, a)
	}
	fmt.Fprintf(&b, "    puti(s);\n    return 0;\n}\n")
	return b.String()
}

func randomExpr(r *rand.Rand, nArrays, maxOff, depth int) string {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(50)-10)
		case 1:
			return "i"
		default:
			off := r.Intn(2*maxOff+1) - maxOff
			arr := r.Intn(nArrays)
			if off < 0 {
				return fmt.Sprintf("g%d[i - %d]", arr, -off)
			}
			if off == 0 {
				return fmt.Sprintf("g%d[i]", arr)
			}
			return fmt.Sprintf("g%d[i + %d]", arr, off)
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[r.Intn(len(ops))]
	l := randomExpr(r, nArrays, maxOff, depth-1)
	rr := randomExpr(r, nArrays, maxOff, depth-1)
	if r.Intn(4) == 0 {
		return fmt.Sprintf("(%s %s %s) %% %d", l, op, rr, 2+r.Intn(97))
	}
	return fmt.Sprintf("(%s %s %s)", l, op, rr)
}
