package bench

import (
	"strings"
	"testing"
)

// TestInfiniteStreamStringScan: the paper's Unix-utility claim —
// string scanning loops with unknown trip counts stream with an
// infinite count and stream-stops at the exits.
func TestInfiniteStreamStringScan(t *testing.T) {
	p := Program{Name: "strscan", Source: `
char buf[64] = "the quick brown fox jumps over the lazy dog";
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; buf[i]; i++)
        s = s + buf[i];
    puti(s);
    return 0;
}`}
	var ref string
	for lvl := 0; lvl <= 3; lvl++ {
		r, err := Measure(p, lvl)
		if err != nil {
			t.Fatalf("O%d: %v", lvl, err)
		}
		if lvl == 0 {
			ref = r.Output
		} else if r.Output != ref {
			t.Fatalf("O%d output %q != %q", lvl, r.Output, ref)
		}
	}
	rp, err := Compile(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	text := rp.Func("main").Listing()
	if !strings.Contains(text, "(infinite)") || !strings.Contains(text, "sstop") {
		t.Errorf("no infinite stream generated:\n%s", text)
	}
	t.Logf("\n%s", text)
}
