package bench

import (
	"strings"
	"testing"

	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

// standardOrders returns several deterministic shuffles of the
// standard-optimization fixpoint group.
func standardOrders() map[string][]opt.Pass {
	base := opt.StandardPasses()
	n := len(base)
	rotate := func(k int) []opt.Pass {
		out := make([]opt.Pass, 0, n)
		out = append(out, base[k:]...)
		out = append(out, base[:k]...)
		return out
	}
	reversed := make([]opt.Pass, n)
	for i, p := range base {
		reversed[n-1-i] = p
	}
	swapped := append([]opt.Pass{}, base...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	swapped[n-2], swapped[n-1] = swapped[n-1], swapped[n-2]
	return map[string][]opt.Pass{
		"canonical": base,
		"reversed":  reversed,
		"rotate1":   rotate(1),
		"rotate3":   rotate(3),
		"swapped":   swapped,
	}
}

// TestStandardPassOrderIrrelevant exercises the paper's "phases can be
// re-invoked in any order" property: because the standard passes run
// in a fixpoint group, any order of the group must converge to code
// with identical observable behavior.  Cycle counts are asserted to a
// 1% band rather than exactly: the fixpoint guarantees *a* stable
// form, not a unique one, and a few orders settle on a differently
// shaped (equally stable) body — measured spread across this suite is
// 0 for 8 of 10 programs and 0.43% worst case.
func TestStandardPassOrderIrrelevant(t *testing.T) {
	orders := standardOrders()
	for _, prog := range Programs() {
		type run struct {
			cycles int64
			output string
		}
		var want *run
		var wantOrder string
		for name, order := range orders {
			rp, err := CompileNone(prog)
			if err != nil {
				t.Fatal(err)
			}
			ctx := opt.NewContext(opt.Level(3))
			ctx.Verify = true
			if err := opt.WMPipelineOrdered(ctx.Opts, order).Run(rp, ctx); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, name, err)
			}
			stats, out, err := Run(rp, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/%s: run: %v", prog.Name, name, err)
			}
			got := &run{stats.Cycles, out}
			if want == nil {
				want, wantOrder = got, name
				continue
			}
			if got.output != want.output {
				t.Errorf("%s: order %s output differs from %s", prog.Name, name, wantOrder)
			}
			lo, hi := want.cycles, got.cycles
			if lo > hi {
				lo, hi = hi, lo
			}
			if float64(hi-lo) > 0.01*float64(lo) {
				t.Errorf("%s: order %s = %d cycles, order %s = %d cycles (spread > 1%%)",
					prog.Name, name, got.cycles, wantOrder, want.cycles)
			}
		}
	}
}

// TestPermutedOrderKeepsStreaming asserts the headline transformation
// survives any standard-pass order on the figure kernel: every order
// must stream the loop (sin/sout + jnd) and cost exactly the same
// number of cycles.
func TestPermutedOrderKeepsStreaming(t *testing.T) {
	prog := Livermore5(256)
	var wantCycles int64
	var wantOrder string
	for name, order := range standardOrders() {
		rp, err := CompileNone(prog)
		if err != nil {
			t.Fatal(err)
		}
		ctx := opt.NewContext(opt.Level(3))
		ctx.Verify = true
		if err := opt.WMPipelineOrdered(ctx.Opts, order).Run(rp, ctx); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		listing := rp.String()
		if !strings.Contains(listing, "sin64f") || !strings.Contains(listing, "jnd") {
			t.Errorf("order %s lost the stream transformation:\n%s", name, listing)
		}
		stats, _, err := Run(rp, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if wantOrder == "" {
			wantCycles, wantOrder = stats.Cycles, name
			continue
		}
		if stats.Cycles != wantCycles {
			t.Errorf("order %s = %d cycles, order %s = %d cycles",
				name, stats.Cycles, wantOrder, wantCycles)
		}
	}
}
