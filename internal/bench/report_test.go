package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"wmstream/internal/sim"
)

// TestWriteJSON: the machine-readable report is valid JSON with one
// record per program×level, carrying the per-unit attribution, and two
// generations of it are byte-identical.
func TestWriteJSON(t *testing.T) {
	programs := []Program{Livermore5(64)}
	levels := []int{0, 3}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, programs, levels, sim.EngineAuto); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var records []Record
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(records) != len(programs)*len(levels) {
		t.Fatalf("got %d records, want %d", len(records), len(programs)*len(levels))
	}
	for _, r := range records {
		if r.Program != "livermore5" || r.Cycles <= 0 {
			t.Errorf("bad record: %+v", r)
		}
		if r.Engine != "translated" {
			t.Errorf("%s -O%d: engine %q, want translated (auto resolved)", r.Program, r.Level, r.Engine)
		}
		if len(r.Units) < 4 {
			t.Errorf("%s -O%d: %d units, want IFU+IEU+FEU+SCUs", r.Program, r.Level, len(r.Units))
		}
		for _, u := range r.Units {
			sum := u.Issued + u.Idle
			for _, n := range u.Stalls {
				sum += n
			}
			if sum != r.Cycles {
				t.Errorf("%s -O%d %s: attribution sums to %d, cycles %d", r.Program, r.Level, u.Unit, sum, r.Cycles)
			}
		}
	}
	// Streaming makes -O3 faster and gives it stream throughput.
	if records[1].Cycles >= records[0].Cycles {
		t.Errorf("-O3 (%d cycles) not faster than -O0 (%d)", records[1].Cycles, records[0].Cycles)
	}
	if records[1].StreamThroughput <= 0 {
		t.Errorf("-O3 stream throughput = %g, want > 0", records[1].StreamThroughput)
	}
	for _, r := range records {
		if r.HostNS <= 0 || r.SimCyclesPerSec <= 0 {
			t.Errorf("%s -O%d: host_ns=%d sim_cycles_per_sec=%g, want both > 0",
				r.Program, r.Level, r.HostNS, r.SimCyclesPerSec)
		}
	}

	// Everything except the host wall-clock fields is deterministic
	// across generations.
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, programs, levels, sim.EngineAuto); err != nil {
		t.Fatalf("WriteJSON again: %v", err)
	}
	var records2 []Record
	if err := json.Unmarshal(buf2.Bytes(), &records2); err != nil {
		t.Fatalf("second report is not valid JSON: %v", err)
	}
	for i := range records {
		a, b := records[i], records2[i]
		a.HostNS, a.SimCyclesPerSec = 0, 0
		b.HostNS, b.SimCyclesPerSec = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("record %d differs across generations:\n%+v\n%+v", i, a, b)
		}
	}
}
