package bench

import (
	"testing"

	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

// TestParallelCompilationDeterministic compiles the full benchmark
// suite with a single worker and with several workers and asserts the
// optimized programs are byte-identical: per-function optimization is
// embarrassingly parallel, so scheduling must never leak into the
// generated code.  Run under -race this also proves the passes share
// no mutable state across functions.
func TestParallelCompilationDeterministic(t *testing.T) {
	progs := append(Programs(), Livermore5(256))
	for _, prog := range progs {
		listings := map[int]string{}
		for _, workers := range []int{1, 8} {
			rp, err := CompileNone(prog)
			if err != nil {
				t.Fatal(err)
			}
			ctx := opt.NewContext(opt.Level(3))
			ctx.Workers = workers
			if err := opt.WMPipeline(ctx.Opts).Run(rp, ctx); err != nil {
				t.Fatalf("%s workers=%d: %v", prog.Name, workers, err)
			}
			listings[workers] = rp.String()
		}
		if listings[1] != listings[8] {
			t.Errorf("%s: 1-worker and 8-worker listings differ", prog.Name)
		}
	}
}

// TestParallelCompilationRuns sanity-checks that a parallel-optimized
// program still executes correctly (same output as the sequential
// build) for one representative benchmark.
func TestParallelCompilationRuns(t *testing.T) {
	prog := Livermore5(256)
	var outputs []string
	for _, workers := range []int{1, 4} {
		rp, err := CompileNone(prog)
		if err != nil {
			t.Fatal(err)
		}
		ctx := opt.NewContext(opt.Level(3))
		ctx.Workers = workers
		if err := opt.WMPipeline(ctx.Opts).Run(rp, ctx); err != nil {
			t.Fatal(err)
		}
		_, out, err := Run(rp, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out)
	}
	if outputs[0] != outputs[1] {
		t.Errorf("parallel build output %q differs from sequential %q", outputs[1], outputs[0])
	}
}
