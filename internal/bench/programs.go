// Package bench contains the Mini-C benchmark suite of the paper's
// evaluation: the nine Table II programs (banner, bubblesort, cal,
// dhrystone, dot-product, iir, quicksort, sieve, whetstone), the 5th
// Livermore loop of Table I, and the harness that compiles and runs
// them on the simulated WM machine at each optimization level.
//
// The original sources are period Unix/benchmark programs; these are
// functionally equivalent rewrites in the Mini-C subset (no structs,
// one-dimensional arrays).  Each program prints a small checksum so
// that every optimization level can be verified to compute the same
// result.
package bench

// Program is one benchmark.
type Program struct {
	Name   string
	Source string
	// Expect is the exact expected output, or "" when only
	// cross-level agreement is checked.
	Expect string
}

// Livermore5 returns the 5th Livermore loop (tri-diagonal elimination
// below the diagonal), the paper's running example, with the given
// array size.
func Livermore5(n int) Program {
	return Program{
		Name: "livermore5",
		Source: `
double x[` + itoa(n) + `], y[` + itoa(n) + `], z[` + itoa(n) + `];
int n = ` + itoa(n) + `;

void setup(void) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = (i % 9) * 0.25 + 1.0;
        y[i] = (i % 7) * 0.5 + 2.0;
        z[i] = (i % 5) * 0.125 + 0.5;
    }
}

void kernel(void) {
    int i;
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
}

int main(void) {
    double sum;
    int i;
    setup();
    kernel();
    sum = 0.0;
    for (i = 0; i < n; i++)
        sum = sum + x[i];
    putd(sum);
    return 0;
}
`,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Programs returns the nine Table II benchmarks.
func Programs() []Program {
	return []Program{
		Banner, Bubblesort, Cal, Dhrystone, DotProduct,
		IIR, Quicksort, Sieve, Whetstone,
	}
}

// ByName returns the named benchmark (Table II names) or ok=false.
func ByName(name string) (Program, bool) {
	if name == "livermore5" {
		return Livermore5(100000), true
	}
	for _, p := range Programs() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// Banner renders a word in large block letters, like the Unix banner
// utility: a font table is expanded into a raster buffer which is then
// printed.  The raster fill and copy loops are where streaming applies.
var Banner = Program{
	Name: "banner",
	Source: `
/* 5x7 block-letter banner. Font rows are bitmasks for A..Z. */
int font[182] = {
    14,17,17,31,17,17,17,  30,17,30,17,17,17,30,  14,17,16,16,16,17,14,
    30,17,17,17,17,17,30,  31,16,30,16,16,16,31,  31,16,30,16,16,16,16,
    14,17,16,23,17,17,14,  17,17,31,17,17,17,17,  14,4,4,4,4,4,14,
    1,1,1,1,17,17,14,      17,18,28,20,18,17,17,  16,16,16,16,16,16,31,
    17,27,21,17,17,17,17,  17,25,21,19,17,17,17,  14,17,17,17,17,17,14,
    30,17,17,30,16,16,16,  14,17,17,17,21,18,13,  30,17,17,30,20,18,17,
    14,17,16,14,1,17,14,   31,4,4,4,4,4,4,        17,17,17,17,17,17,14,
    17,17,17,17,17,10,4,   17,17,17,17,21,27,17,  17,10,4,4,4,10,17,
    17,10,4,4,4,4,4,       31,1,2,4,8,16,31
};
char msg[9] = "WMSTREAM";
char raster[378]; /* 8 chars * (5+1) cols + pad = 54 wide, 7 rows */
int width = 54;
char obuf[512];
int opos;

/* Buffered character output, like stdio putc: the call and the buffer
   bookkeeping are the non-streamable cost the real utility pays. */
void putch(int c) {
    obuf[opos] = c;
    opos = opos + 1;
}

int main(void) {
    int i, row, col, ch, bits, x0, checksum;
    /* Clear the raster (streamable write loop). */
    for (i = 0; i < 378; i++)
        raster[i] = ' ';
    /* Paint each letter. */
    for (i = 0; i < 8; i++) {
        ch = msg[i] - 'A';
        x0 = i * 6;
        for (row = 0; row < 7; row++) {
            bits = font[ch * 7 + row];
            for (col = 0; col < 5; col++) {
                if (bits & (16 >> col))
                    raster[row * width + x0 + col] = '#';
            }
        }
    }
    /* Emit through the buffered writer, computing a checksum. */
    checksum = 0;
    opos = 0;
    for (row = 0; row < 7; row++) {
        for (col = 0; col < 54; col++) {
            putch(raster[row * width + col]);
            checksum = checksum + raster[row * width + col];
        }
        putch('\n');
    }
    for (i = 0; i < opos; i++)
        putchar(obuf[i]);
    puti(checksum);
    return 0;
}
`,
}

// Bubblesort sorts integers; the swap loop's read/write pattern defeats
// both recurrence removal and streaming (adjacent-element exchange),
// but the fill and checksum loops stream.
var Bubblesort = Program{
	Name: "bubblesort",
	Source: `
int a[500];
int n = 500;

int main(void) {
    int i, j, t, sum;
    for (i = 0; i < n; i++)
        a[i] = (n - i) * 7 % 101;
    for (i = 0; i < n - 1; i++) {
        for (j = 0; j < n - 1 - i; j++) {
            if (a[j] > a[j+1]) {
                t = a[j];
                a[j] = a[j+1];
                a[j+1] = t;
            }
        }
    }
    sum = 0;
    for (i = 0; i < n; i++)
        sum = sum + a[i] * i;
    /* sorted check */
    for (i = 1; i < n; i++)
        if (a[i-1] > a[i])
            sum = -1;
    puti(sum);
    return 0;
}
`,
}

// Cal prints a year calendar, like the Unix cal utility the paper
// compiled: month grids are composed into line buffers (strided copies
// the optimizer can stream) and printed.
var Cal = Program{
	Name: "cal",
	Source: `
int mlen[12] = {31,28,31,30,31,30,31,31,30,31,30,31};
char grid[768];   /* 12 months * 64 bytes: 6 rows x 7 cols + pad */
char line[128];
int checksum;

void build(int month, int firstday) {
    int d, pos, len;
    len = mlen[month];
    for (pos = 0; pos < 64; pos++)
        grid[month * 64 + pos] = 0;
    for (d = 1; d <= len; d++) {
        pos = firstday + d - 1;
        grid[month * 64 + pos] = d;
    }
}

void emit(int month) {
    int row, col, v;
    for (row = 0; row < 6; row++) {
        for (col = 0; col < 7; col++) {
            v = grid[month * 64 + row * 7 + col];
            if (v == 0) {
                putchar(' ');
                putchar(' ');
            } else {
                if (v < 10)
                    putchar(' ');
                else
                    putchar('0' + v / 10);
                putchar('0' + v % 10);
            }
            putchar(' ');
            checksum = checksum + v * (col + 1);
        }
        putchar('\n');
    }
}

int main(void) {
    int m, first;
    first = 3; /* 1991 began on a Tuesday(2); use 3 for display offset */
    checksum = 0;
    for (m = 0; m < 12; m++) {
        build(m, first % 7);
        first = first + mlen[m];
    }
    for (m = 0; m < 12; m++)
        emit(m);
    puti(checksum);
    return 0;
}
`,
}

// Dhrystone is a synthetic systems benchmark in the spirit of the
// original: integer arithmetic, array indexing, function calls, and
// repeated buffer copies (the copies are what streaming accelerates).
var Dhrystone = Program{
	Name: "dhrystone",
	Source: `
int arr1[16];
int arr2[16];
char buf1[32] = "DHRYSTONE PROGRAM, SOME";
char buf2[32];
int intglob;

int func1(int a, int b) {
    int c;
    c = a + b;
    if (c > 30)
        return c - 30;
    return c;
}

int func2(int x) {
    int i, acc;
    acc = x;
    for (i = 0; i < 40; i++) {
        if (acc & 1)
            acc = acc * 3 + 1;
        else
            acc = acc / 2;
        if (acc == 0)
            acc = i + 7;
    }
    return acc;
}

void proc1(int x) {
    int i;
    for (i = 0; i < 16; i++)
        arr1[i] = x + i;
    for (i = 0; i < 16; i++)
        arr2[i] = arr1[i] + x;
    intglob = arr2[10];
}

void strcopy(void) {
    int i;
    for (i = 0; i < 32; i++)
        buf2[i] = buf1[i];
}

int main(void) {
    int run, i, sum;
    sum = 0;
    for (run = 0; run < 50; run++) {
        proc1(run);
        strcopy();
        sum = sum + func1(run % 17, run % 13);
        sum = sum + func2(run + 3) % 11;
        sum = sum + func2(sum & 1023) % 13;
        sum = sum + intglob % 7;
    }
    for (i = 0; i < 20; i++)
        sum = sum + buf2[i];
    puti(sum);
    return 0;
}
`,
}

// DotProduct is the paper's headline example: with streams the loop is
// a single FEU instruction plus a free branch.
var DotProduct = Program{
	Name: "dot-product",
	Source: `
double a[4096], b[4096];
int n = 4096;

int main(void) {
    int i, pass;
    double sum;
    for (i = 0; i < n; i++) {
        a[i] = (i % 10) * 0.5 + 0.25;
        b[i] = (i % 8) * 0.25 + 0.5;
    }
    sum = 0.0;
    for (pass = 0; pass < 4; pass++)
        for (i = 0; i < n; i++)
            sum = sum + a[i] * b[i];
    putd(sum);
    return 0;
}
`,
}

// IIR is a direct-form-II-ish infinite impulse response filter: the
// output recurrence y[i-1] is carried in a register (recurrence
// optimization) and the x taps plus the y writes stream.
var IIR = Program{
	Name: "iir",
	Source: `
double x[4096], y[4096];
int n = 4096;

int main(void) {
    int i;
    double b0, b1, a1, sum;
    b0 = 0.2929;
    b1 = 0.2929;
    a1 = -0.4142;
    for (i = 0; i < n; i++)
        x[i] = ((i % 16) - 8) * 0.125;
    y[0] = b0 * x[0];
    for (i = 1; i < n; i++)
        y[i] = b0 * x[i] + b1 * x[i-1] - a1 * y[i-1];
    sum = 0.0;
    for (i = 0; i < n; i++)
        sum = sum + y[i];
    putd(sum);
    return 0;
}
`,
}

// Quicksort is recursive and pointer-driven, like the original qsort:
// every access inside the sort goes through a pointer parameter, so
// the partitioning step cannot prove disjointness and the
// data-dependent exchange loops stay scalar (the paper measured 1%).
var Quicksort = Program{
	Name: "quicksort",
	Source: `
int data[2000];
int n = 2000;

void qsort2(int *a, int lo, int hi) {
    int i, j, pivot, t;
    if (lo >= hi)
        return;
    pivot = a[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    qsort2(a, lo, j);
    qsort2(a, i, hi);
}

int main(void) {
    int i, sum;
    for (i = 0; i < n; i++)
        data[i] = (i * 1103515245 + 12345) % 10007;
    qsort2(data, 0, n - 1);
    sum = 0;
    for (i = 0; i < n; i++)
        sum = sum + data[i] % 97;
    for (i = 1; i < n; i++)
        if (data[i-1] > data[i])
            sum = -1;
    puti(sum);
    return 0;
}
`,
}

// Sieve of Eratosthenes: the flag-initialization loop streams; the
// marking loop's stride is a runtime value (the prime), which this
// compiler does not stream.
var Sieve = Program{
	Name: "sieve",
	Source: `
char flags[8192];
int n = 8192;

int main(void) {
    int i, k, count, iter;
    count = 0;
    for (iter = 0; iter < 10; iter++) {
        for (i = 0; i < n; i++)
            flags[i] = 1;
        count = 0;
        for (i = 2; i < n; i++) {
            if (flags[i]) {
                count++;
                for (k = i + i; k < n; k = k + i)
                    flags[k] = 0;
            }
        }
    }
    puti(count);
    return 0;
}
`,
	Expect: "1028",
}

// Whetstone-like: floating-point modules dominated by transcendental
// operations, with small cyclic array references — little for
// streaming to do (the paper measured 3%).
var Whetstone = Program{
	Name: "whetstone",
	Source: `
double e1[4];
double v1[64], v2[64];
int j, k, l;

void p3(double x, double y) {
    double xt, yt, t, t2;
    t = 0.499975;
    t2 = 2.0;
    xt = t * (x + y);
    yt = t * (xt + y);
    e1[2] = (xt + yt) / t2;
}

void pa(void) {
    int i;
    double t, t2;
    t = 0.499975;
    t2 = 2.0;
    i = 0;
    while (i < 6) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) / t2;
        i++;
    }
}

int main(void) {
    int i, nloops;
    double x, y, z, t;
    nloops = 200;
    t = 0.499975;
    e1[0] = 1.0;
    e1[1] = -1.0;
    e1[2] = -1.0;
    e1[3] = -1.0;
    /* module 1: simple identifiers */
    x = 1.0;
    y = -1.0;
    z = -1.0;
    for (i = 0; i < nloops; i++) {
        x = (x + y + z) * t;
        y = (x + y - z) * t;
        z = (x - y + z) * t;
    }
    /* module 2: array elements */
    for (i = 0; i < nloops; i++)
        pa();
    /* module 7: trig */
    x = 0.5;
    y = 0.5;
    for (i = 0; i < nloops; i++) {
        x = t * atan(2.0 * sin(x) * cos(x) / (cos(x + y) + cos(x - y) - 1.0));
        y = t * atan(2.0 * sin(y) * cos(y) / (cos(x + y) + cos(x - y) - 1.0));
    }
    /* module 8: sqrt/exp/log */
    x = 0.75;
    for (i = 0; i < nloops; i++)
        x = sqrt(exp(log(x + 1.0) / 2.0));
    /* module 6-like: a short vector pass (the only streamable part) */
    for (i = 0; i < 64; i++)
        v1[i] = (i & 3) * 0.25;
    for (i = 0; i < 64; i++)
        v2[i] = v1[i] * t + 0.125;
    for (i = 0; i < 64; i++)
        x = x + v2[i] * 0.001;
    p3(x, y);
    putd(x + y + z + e1[2]);
    return 0;
}
`,
}
