// Ablation benchmarks over the design parameters called out in
// DESIGN.md, plus raw compiler/simulator throughput:
//
//	BenchmarkAblation*    FIFO depth / ports / latency / min-trip /
//	                      combining sweeps
//	BenchmarkCompiler     compilations of the whole suite per second
//	BenchmarkSimulator    simulated instructions per second
package bench

import (
	"fmt"
	"testing"

	"wmstream/internal/opt"
	"wmstream/internal/sim"
)

// benchConfigured runs the Livermore program under a machine variant.
func benchConfigured(b *testing.B, level int, mutate func(*sim.Config)) int64 {
	b.Helper()
	p, err := Compile(Livermore5(2000), level)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	stats, _, err := Run(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return stats.Cycles
}

// BenchmarkAblationFIFODepth sweeps the FIFO depth: shallow FIFOs
// throttle the stream units' ability to run ahead.
func BenchmarkAblationFIFODepth(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16, 64} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := benchConfigured(b, 3, func(cfg *sim.Config) { cfg.FIFODepth = depth })
				b.ReportMetric(float64(c), "cycles")
			}
		})
	}
}

// BenchmarkAblationMemPorts sweeps memory ports: the streamed loop
// needs two reads and a write per iteration.
func BenchmarkAblationMemPorts(b *testing.B) {
	for _, ports := range []int{1, 2, 4} {
		ports := ports
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := benchConfigured(b, 3, func(cfg *sim.Config) { cfg.MemPorts = ports })
				b.ReportMetric(float64(c), "cycles")
			}
		})
	}
}

// BenchmarkAblationMemLatency shows the access/execute property: the
// decoupled, streamed code is far less sensitive to memory latency
// than the unstreamed code.
func BenchmarkAblationMemLatency(b *testing.B) {
	for _, level := range []int{1, 3} {
		for _, lat := range []int{1, 4, 8, 16} {
			level, lat := level, lat
			b.Run(fmt.Sprintf("O%d/latency=%d", level, lat), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					c := benchConfigured(b, level, func(cfg *sim.Config) { cfg.MemLatency = lat })
					b.ReportMetric(float64(c), "cycles")
				}
			})
		}
	}
}

// BenchmarkAblationMinTrip sweeps the paper's step-1 threshold on a
// program full of short loops.
func BenchmarkAblationMinTrip(b *testing.B) {
	src := `
int t[6];
int main(void) {
    int i, r, s;
    s = 0;
    for (r = 0; r < 2000; r++) {
        for (i = 0; i < 6; i++)
            t[i] = i + r;
        for (i = 0; i < 6; i++)
            s = s + t[i];
    }
    puti(s);
    return 0;
}`
	for _, minTrip := range []int64{1, 4, 16} {
		minTrip := minTrip
		b.Run(fmt.Sprintf("mintrip=%d", minTrip), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				o := opt.Level(3)
				o.MinTrip = minTrip
				p, err := CompileOptions(Program{Name: "short", Source: src}, o)
				if err != nil {
					b.Fatal(err)
				}
				stats, _, err := Run(p, sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationCombine measures WM's dual-operation instruction
// combining (off vs on) on the recurrence-optimized Livermore loop.
func BenchmarkAblationCombine(b *testing.B) {
	for _, combine := range []bool{false, true} {
		combine := combine
		b.Run(fmt.Sprintf("combine=%v", combine), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				o := opt.Level(2)
				o.Combine = combine
				p, err := CompileOptions(Livermore5(2000), o)
				if err != nil {
					b.Fatal(err)
				}
				stats, _, err := Run(p, sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationRecurrenceStream crosses the two headline passes:
// streaming is blocked where a memory recurrence survives (step 2a), so
// the combination matters.
func BenchmarkAblationRecurrenceStream(b *testing.B) {
	for _, rec := range []bool{false, true} {
		for _, stream := range []bool{false, true} {
			rec, stream := rec, stream
			b.Run(fmt.Sprintf("rec=%v/stream=%v", rec, stream), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					o := opt.Level(1)
					o.Recurrence = rec
					o.Stream = stream
					p, err := CompileOptions(Livermore5(2000), o)
					if err != nil {
						b.Fatal(err)
					}
					stats, _, err := Run(p, sim.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(stats.Cycles), "cycles")
				}
			})
		}
	}
}

// BenchmarkCompiler measures raw compilation speed over the suite.
func BenchmarkCompiler(b *testing.B) {
	progs := Programs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, p := range progs {
			if _, err := Compile(p, 3); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulator measures simulator throughput (simulated
// instructions per second) on the quicksort benchmark.
func BenchmarkSimulator(b *testing.B) {
	p, err := Compile(Quicksort, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for n := 0; n < b.N; n++ {
		stats, _, err := Run(p, sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		instrs += stats.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkSimulatorEngines measures every engine on identical work
// (quicksort at O3), so engine-to-engine speedups come from one binary
// on one host rather than from numbers recorded months apart.
func BenchmarkSimulatorEngines(b *testing.B) {
	p, err := Compile(Quicksort, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []sim.Engine{sim.EngineTranslated, sim.EngineFast, sim.EngineReference} {
		b.Run(e.String(), func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.Engine = e
			var instrs int64
			for n := 0; n < b.N; n++ {
				stats, _, err := Run(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				instrs += stats.Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
		})
	}
}
