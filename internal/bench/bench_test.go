package bench

import (
	"fmt"
	"testing"
)

// TestAllProgramsAllLevels is the central correctness harness: every
// benchmark must produce identical output at every optimization level,
// and cycles must not increase as optimization increases... (levels
// are allowed to tie; streaming must never lose to O2 on these
// workloads).
func TestAllProgramsAllLevels(t *testing.T) {
	progs := append(Programs(), Livermore5(500))
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var ref string
			var prevCycles int64
			for lvl := 0; lvl <= 3; lvl++ {
				r, err := Measure(p, lvl)
				if err != nil {
					t.Fatalf("O%d: %v", lvl, err)
				}
				if r.Output == "" {
					t.Fatalf("O%d: no output", lvl)
				}
				if lvl == 0 {
					ref = r.Output
					if p.Expect != "" && ref != p.Expect {
						t.Fatalf("output %q, want %q", ref, p.Expect)
					}
				} else if r.Output != ref {
					t.Fatalf("O%d output %q != O0 output %q", lvl, r.Output, ref)
				}
				t.Logf("O%d: %10d cycles  %8d memreads  %8d streamed",
					lvl, r.Stats.Cycles, r.Stats.MemReads, r.Stats.StreamElems)
				if lvl >= 1 && prevCycles > 0 && r.Stats.Cycles > prevCycles*11/10 {
					t.Errorf("O%d (%d cycles) much slower than O%d (%d cycles)",
						lvl, r.Stats.Cycles, lvl-1, prevCycles)
				}
				prevCycles = r.Stats.Cycles
			}
		})
	}
}

// TestGoldenChecksums verifies a few benchmarks against values
// computed independently in Go, catching compiler+simulator systematic
// agreement bugs.
func TestGoldenChecksums(t *testing.T) {
	// bubblesort: a[i] = (n-i)*7 % 101 sorted, sum of a[i]*i.
	n := 500
	a := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = (n - i) * 7 % 101
	}
	// insertion sort for the reference
	for i := 1; i < n; i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += a[i] * i
	}
	r, err := Measure(Bubblesort, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != itoa(sum) {
		t.Errorf("bubblesort = %s, want %d", r.Output, sum)
	}

	// quicksort: a[i] = (i*1103515245+12345) % 10007 sorted, sum of a[i]%97.
	qn := 2000
	q := make([]int, qn)
	for i := 0; i < qn; i++ {
		q[i] = (i*1103515245 + 12345) % 10007
	}
	for i := 1; i < qn; i++ {
		for j := i; j > 0 && q[j-1] > q[j]; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
	qsum := 0
	for i := 0; i < qn; i++ {
		qsum += q[i] % 97
	}
	rq, err := Measure(Quicksort, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Output != itoa(qsum) {
		t.Errorf("quicksort = %s, want %d", rq.Output, qsum)
	}

	// dot product (the kernel runs four passes, accumulating).
	var dsum float64
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 4096; i++ {
			av := float64(i%10)*0.5 + 0.25
			bv := float64(i%8)*0.25 + 0.5
			dsum += av * bv
		}
	}
	rd, err := Measure(DotProduct, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := trimFloat(dsum)
	if rd.Output != want {
		t.Errorf("dot-product = %s, want %s", rd.Output, want)
	}
}

func trimFloat(f float64) string {
	// Matches the simulator's putd formatting (%g).
	return fmt.Sprintf("%g", f)
}
