package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// The accelerated engines' correctness contract: for every program,
// every optimization level, and every machine shape, the fast engine
// and the translated engine must be cycle-exact against the reference
// interpreter — same statistics (including the per-unit telemetry
// attribution), same output, same final memory image, same error.
// These tests are that contract.

// acceleratedEngines lists every engine validated against the
// reference.
var acceleratedEngines = []struct {
	name string
	eng  sim.Engine
}{
	{"fast", sim.EngineFast},
	{"translated", sim.EngineTranslated},
}

// engineResult is everything externally observable about one run.
type engineResult struct {
	stats  sim.Stats
	output string
	mem    []byte
	errStr string
}

func runEngine(img *sim.Image, cfg sim.Config, eng sim.Engine) engineResult {
	var out bytes.Buffer
	cfg.Output = &out
	cfg.Engine = eng
	m := sim.New(img, cfg)
	stats, err := m.Run()
	r := engineResult{stats: stats, output: out.String(), mem: m.Mem()}
	if err != nil {
		r.errStr = err.Error()
	}
	return r
}

// diffEngines compiles the program at the level, runs it under the
// reference and every accelerated engine, and fails the test on any
// observable divergence.
func diffEngines(t *testing.T, p Program, level int, cfg sim.Config) {
	t.Helper()
	rp, err := Compile(p, level)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	ref := runEngine(img, cfg, sim.EngineReference)
	for _, e := range acceleratedEngines {
		got := runEngine(img, cfg, e.eng)
		if ref.errStr != got.errStr {
			t.Fatalf("%s: error mismatch:\nreference: %s\n%-9s %s",
				e.name, ref.errStr, e.name+":", got.errStr)
		}
		if !reflect.DeepEqual(ref.stats, got.stats) {
			t.Errorf("%s: stats mismatch:\nreference: %+v\n%-9s %+v",
				e.name, ref.stats, e.name+":", got.stats)
		}
		if ref.output != got.output {
			t.Errorf("%s: output mismatch:\nreference: %q\n%-9s %q",
				e.name, ref.output, e.name+":", got.output)
		}
		if !bytes.Equal(ref.mem, got.mem) {
			t.Errorf("%s: final memory images differ (lengths %d vs %d)",
				e.name, len(ref.mem), len(got.mem))
		}
		if ref.errStr != "" {
			continue // attribution sums only hold for completed runs
		}
		for _, r := range []engineResult{ref, got} {
			for _, u := range r.stats.Units {
				if u.Total() != r.stats.Cycles {
					t.Errorf("unit %s attribution sums to %d, want Cycles=%d",
						u.Name, u.Total(), r.stats.Cycles)
				}
			}
		}
		if p.Expect != "" && got.output != p.Expect {
			t.Errorf("%s: output %q, want %q", e.name, got.output, p.Expect)
		}
	}
}

// TestEngineDifferential runs the whole Table II suite (plus the
// Livermore loop) at every optimization level through both engines.
func TestEngineDifferential(t *testing.T) {
	progs := append(Programs(), Livermore5(500))
	for _, p := range progs {
		for level := 0; level <= 3; level++ {
			p, level := p, level
			t.Run(fmt.Sprintf("%s/O%d", p.Name, level), func(t *testing.T) {
				t.Parallel()
				diffEngines(t, p, level, sim.DefaultConfig())
			})
		}
	}
}

// TestEngineDifferentialStressed re-runs a streaming-heavy subset under
// machine shapes that exercise every fast-path boundary: unit memory
// latency (events land immediately), a single memory port (SCU/write
// contention), tiny FIFOs (constant backpressure), one SCU (stream
// serialization), and tiny unit queues (IFU dispatch stalls).
func TestEngineDifferentialStressed(t *testing.T) {
	stress := []struct {
		name   string
		adjust func(*sim.Config)
	}{
		{"mem-latency-1", func(c *sim.Config) { c.MemLatency = 1 }},
		{"mem-ports-1", func(c *sim.Config) { c.MemPorts = 1 }},
		{"fifo-depth-2", func(c *sim.Config) { c.FIFODepth = 2 }},
		{"num-scu-1", func(c *sim.Config) { c.NumSCU = 1 }},
		{"queue-depth-2", func(c *sim.Config) { c.QueueDepth = 2 }},
	}
	progs := []Program{Banner, IIR, DotProduct, Livermore5(256)}
	for _, s := range stress {
		for _, p := range progs {
			for _, level := range []int{0, 2, 3} {
				s, p, level := s, p, level
				t.Run(fmt.Sprintf("%s/%s/O%d", s.name, p.Name, level), func(t *testing.T) {
					t.Parallel()
					cfg := sim.DefaultConfig()
					s.adjust(&cfg)
					diffEngines(t, p, level, cfg)
				})
			}
		}
	}
}

// runSliced executes the image in bounded slices through RunSlice.
// With roundTrip set, every slice boundary serializes the machine with
// SaveState and resumes on a freshly constructed machine via
// RestoreState — the checkpoint/resume path the execution core and the
// job tier depend on.
func runSliced(t *testing.T, img *sim.Image, cfg sim.Config, eng sim.Engine, next func() int64, roundTrip bool) engineResult {
	t.Helper()
	var out bytes.Buffer
	cfg.Output = &out
	cfg.Engine = eng
	m := sim.New(img, cfg)
	var rerr error
	for {
		done, err := m.RunSlice(next())
		if err != nil {
			rerr = err
			break
		}
		if done {
			break
		}
		if roundTrip {
			blob, err := m.SaveState()
			if err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			m = sim.New(img, cfg)
			if err := m.RestoreState(blob); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
		}
	}
	r := engineResult{stats: m.Stats(), output: out.String(), mem: m.Mem()}
	if rerr != nil {
		r.errStr = rerr.Error()
	}
	return r
}

// requireSameResult fails the test on any observable difference
// between two runs: error, statistics (including the per-unit
// telemetry sums), program output, final memory image.
func requireSameResult(t *testing.T, label string, want, got engineResult) {
	t.Helper()
	if want.errStr != got.errStr {
		t.Fatalf("%s: error mismatch:\nuninterrupted: %s\nsliced:        %s", label, want.errStr, got.errStr)
	}
	if !reflect.DeepEqual(want.stats, got.stats) {
		t.Errorf("%s: stats mismatch:\nuninterrupted: %+v\nsliced:        %+v", label, want.stats, got.stats)
	}
	if want.output != got.output {
		t.Errorf("%s: output mismatch:\nuninterrupted: %q\nsliced:        %q", label, want.output, got.output)
	}
	if !bytes.Equal(want.mem, got.mem) {
		t.Errorf("%s: final memory images differ (lengths %d vs %d)", label, len(want.mem), len(got.mem))
	}
}

// TestSlicedRunDifferential is the execution core's correctness
// contract: a run chopped into arbitrary slices — including slice = 1
// cycle, and including full serialize/deserialize round trips at every
// boundary — is bit-identical to the uninterrupted run, for every
// program, optimization level, and engine.
func TestSlicedRunDifferential(t *testing.T) {
	progs := append(Programs(), Livermore5(256))
	engines := []struct {
		name string
		eng  sim.Engine
	}{
		{"ref", sim.EngineReference},
		{"fast", sim.EngineFast},
		{"translated", sim.EngineTranslated},
	}
	for _, p := range progs {
		for level := 0; level <= 3; level++ {
			for _, e := range engines {
				p, level, e := p, level, e
				t.Run(fmt.Sprintf("%s/O%d/%s", p.Name, level, e.name), func(t *testing.T) {
					t.Parallel()
					rp, err := Compile(p, level)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					img, err := sim.Link(rp)
					if err != nil {
						t.Fatalf("link: %v", err)
					}
					want := runEngine(img, sim.DefaultConfig(), e.eng)

					got := runSliced(t, img, sim.DefaultConfig(), e.eng,
						func() int64 { return 1 }, false)
					requireSameResult(t, "slice=1", want, got)

					got = runSliced(t, img, sim.DefaultConfig(), e.eng,
						func() int64 { return 8192 }, true)
					requireSameResult(t, "slice=8192+checkpoint", want, got)

					rng := rand.New(rand.NewSource(int64(level+1)*7919 + int64(len(p.Name))))
					got = runSliced(t, img, sim.DefaultConfig(), e.eng,
						func() int64 { return 1 + rng.Int63n(20000) }, true)
					requireSameResult(t, "slice=random+checkpoint", want, got)
				})
			}
		}
	}
}

// TestEngineDifferentialDeadlock checks that both engines diagnose a
// hung machine identically: same watchdog cycle, same snapshot.  The
// program reads a FIFO that nothing ever feeds.
func TestEngineDifferentialDeadlock(t *testing.T) {
	rp, err := rtl.Parse(`
.entry main
.func main
r2 := r0
halt
.end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := sim.DefaultConfig()
	cfg.WatchdogSlack = 50
	img, errl := sim.Link(rp)
	if errl != nil {
		t.Fatalf("link: %v", errl)
	}
	ref := runEngine(img, cfg, sim.EngineReference)
	if ref.errStr == "" {
		t.Fatalf("expected deadlock from the reference engine")
	}
	for _, e := range acceleratedEngines {
		got := runEngine(img, cfg, e.eng)
		if got.errStr == "" {
			t.Fatalf("%s: expected a deadlock; reference said %q", e.name, ref.errStr)
		}
		if ref.errStr != got.errStr {
			t.Fatalf("%s: deadlock diagnosis mismatch:\nreference: %s\n%-9s %s",
				e.name, ref.errStr, e.name+":", got.errStr)
		}
		if !reflect.DeepEqual(ref.stats, got.stats) {
			t.Errorf("%s: stats mismatch:\nreference: %+v\n%-9s %+v",
				e.name, ref.stats, e.name+":", got.stats)
		}
	}
}

// TestEngineDifferentialMaxCycles checks the MaxCycles trap fires at
// the same cycle with the same statistics under both engines, including
// when the bound lands inside a stalled stretch the fast engine skips.
func TestEngineDifferentialMaxCycles(t *testing.T) {
	p := Livermore5(256)
	rp, err := Compile(p, 3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	for _, max := range []int64{1, 7, 100, 1001, 4999} {
		max := max
		t.Run(fmt.Sprintf("max-%d", max), func(t *testing.T) {
			t.Parallel()
			cfg := sim.DefaultConfig()
			cfg.MaxCycles = max
			ref := runEngine(img, cfg, sim.EngineReference)
			if ref.errStr == "" {
				t.Fatalf("expected a MaxCycles trap at %d cycles", max)
			}
			for _, e := range acceleratedEngines {
				got := runEngine(img, cfg, e.eng)
				if ref.errStr != got.errStr {
					t.Fatalf("%s: trap mismatch:\nreference: %s\n%-9s %s",
						e.name, ref.errStr, e.name+":", got.errStr)
				}
				if !reflect.DeepEqual(ref.stats, got.stats) {
					t.Errorf("%s: stats mismatch:\nreference: %+v\n%-9s %+v",
						e.name, ref.stats, e.name+":", got.stats)
				}
			}
		})
	}
}
