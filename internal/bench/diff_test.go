package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"wmstream/internal/rtl"
	"wmstream/internal/sim"
)

// The fast engine's correctness contract: for every program, every
// optimization level, and every machine shape, it must be cycle-exact
// against the reference interpreter — same statistics (including the
// per-unit telemetry attribution), same output, same final memory
// image, same error.  These tests are that contract.

// engineResult is everything externally observable about one run.
type engineResult struct {
	stats  sim.Stats
	output string
	mem    []byte
	errStr string
}

func runEngine(img *sim.Image, cfg sim.Config, eng sim.Engine) engineResult {
	var out bytes.Buffer
	cfg.Output = &out
	cfg.Engine = eng
	m := sim.New(img, cfg)
	stats, err := m.Run()
	r := engineResult{stats: stats, output: out.String(), mem: m.Mem()}
	if err != nil {
		r.errStr = err.Error()
	}
	return r
}

// diffEngines compiles the program at the level, runs it under both
// engines, and fails the test on any observable divergence.
func diffEngines(t *testing.T, p Program, level int, cfg sim.Config) {
	t.Helper()
	rp, err := Compile(p, level)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	ref := runEngine(img, cfg, sim.EngineReference)
	fast := runEngine(img, cfg, sim.EngineFast)

	if ref.errStr != fast.errStr {
		t.Fatalf("error mismatch:\nreference: %s\nfast:      %s", ref.errStr, fast.errStr)
	}
	if !reflect.DeepEqual(ref.stats, fast.stats) {
		t.Errorf("stats mismatch:\nreference: %+v\nfast:      %+v", ref.stats, fast.stats)
	}
	if ref.output != fast.output {
		t.Errorf("output mismatch:\nreference: %q\nfast:      %q", ref.output, fast.output)
	}
	if !bytes.Equal(ref.mem, fast.mem) {
		t.Errorf("final memory images differ (lengths %d vs %d)", len(ref.mem), len(fast.mem))
	}
	if ref.errStr != "" {
		return // attribution sums only hold for completed runs
	}
	for _, r := range []engineResult{ref, fast} {
		for _, u := range r.stats.Units {
			if u.Total() != r.stats.Cycles {
				t.Errorf("unit %s attribution sums to %d, want Cycles=%d",
					u.Name, u.Total(), r.stats.Cycles)
			}
		}
	}
	if p.Expect != "" && fast.output != p.Expect {
		t.Errorf("output %q, want %q", fast.output, p.Expect)
	}
}

// TestEngineDifferential runs the whole Table II suite (plus the
// Livermore loop) at every optimization level through both engines.
func TestEngineDifferential(t *testing.T) {
	progs := append(Programs(), Livermore5(500))
	for _, p := range progs {
		for level := 0; level <= 3; level++ {
			p, level := p, level
			t.Run(fmt.Sprintf("%s/O%d", p.Name, level), func(t *testing.T) {
				t.Parallel()
				diffEngines(t, p, level, sim.DefaultConfig())
			})
		}
	}
}

// TestEngineDifferentialStressed re-runs a streaming-heavy subset under
// machine shapes that exercise every fast-path boundary: unit memory
// latency (events land immediately), a single memory port (SCU/write
// contention), tiny FIFOs (constant backpressure), one SCU (stream
// serialization), and tiny unit queues (IFU dispatch stalls).
func TestEngineDifferentialStressed(t *testing.T) {
	stress := []struct {
		name   string
		adjust func(*sim.Config)
	}{
		{"mem-latency-1", func(c *sim.Config) { c.MemLatency = 1 }},
		{"mem-ports-1", func(c *sim.Config) { c.MemPorts = 1 }},
		{"fifo-depth-2", func(c *sim.Config) { c.FIFODepth = 2 }},
		{"num-scu-1", func(c *sim.Config) { c.NumSCU = 1 }},
		{"queue-depth-2", func(c *sim.Config) { c.QueueDepth = 2 }},
	}
	progs := []Program{Banner, IIR, DotProduct, Livermore5(256)}
	for _, s := range stress {
		for _, p := range progs {
			for _, level := range []int{0, 2, 3} {
				s, p, level := s, p, level
				t.Run(fmt.Sprintf("%s/%s/O%d", s.name, p.Name, level), func(t *testing.T) {
					t.Parallel()
					cfg := sim.DefaultConfig()
					s.adjust(&cfg)
					diffEngines(t, p, level, cfg)
				})
			}
		}
	}
}

// TestEngineDifferentialDeadlock checks that both engines diagnose a
// hung machine identically: same watchdog cycle, same snapshot.  The
// program reads a FIFO that nothing ever feeds.
func TestEngineDifferentialDeadlock(t *testing.T) {
	rp, err := rtl.Parse(`
.entry main
.func main
r2 := r0
halt
.end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := sim.DefaultConfig()
	cfg.WatchdogSlack = 50
	img, errl := sim.Link(rp)
	if errl != nil {
		t.Fatalf("link: %v", errl)
	}
	ref := runEngine(img, cfg, sim.EngineReference)
	fast := runEngine(img, cfg, sim.EngineFast)
	if ref.errStr == "" || fast.errStr == "" {
		t.Fatalf("expected deadlock from both engines; reference=%q fast=%q",
			ref.errStr, fast.errStr)
	}
	if ref.errStr != fast.errStr {
		t.Fatalf("deadlock diagnosis mismatch:\nreference: %s\nfast:      %s",
			ref.errStr, fast.errStr)
	}
	if !reflect.DeepEqual(ref.stats, fast.stats) {
		t.Errorf("stats mismatch:\nreference: %+v\nfast:      %+v", ref.stats, fast.stats)
	}
}

// TestEngineDifferentialMaxCycles checks the MaxCycles trap fires at
// the same cycle with the same statistics under both engines, including
// when the bound lands inside a stalled stretch the fast engine skips.
func TestEngineDifferentialMaxCycles(t *testing.T) {
	p := Livermore5(256)
	rp, err := Compile(p, 3)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := sim.Link(rp)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	for _, max := range []int64{1, 7, 100, 1001, 4999} {
		max := max
		t.Run(fmt.Sprintf("max-%d", max), func(t *testing.T) {
			t.Parallel()
			cfg := sim.DefaultConfig()
			cfg.MaxCycles = max
			ref := runEngine(img, cfg, sim.EngineReference)
			fast := runEngine(img, cfg, sim.EngineFast)
			if ref.errStr == "" {
				t.Fatalf("expected a MaxCycles trap at %d cycles", max)
			}
			if ref.errStr != fast.errStr {
				t.Fatalf("trap mismatch:\nreference: %s\nfast:      %s", ref.errStr, fast.errStr)
			}
			if !reflect.DeepEqual(ref.stats, fast.stats) {
				t.Errorf("stats mismatch:\nreference: %+v\nfast:      %+v", ref.stats, fast.stats)
			}
		})
	}
}
